// Package fairsqg generates subgraph queries with fairness and diversity
// guarantees, implementing the FairSQG framework of "Subgraph Query
// Generation with Fairness and Diversity Constraints" (ICDE 2022).
//
// Given an attributed directed graph G, a query template Q(u_o) whose
// search predicates carry range variables and whose edges may carry
// Boolean presence variables, and a set of disjoint node groups P with
// per-group coverage constraints, the library computes an ε-Pareto set of
// query instances: concrete queries whose answers trade off max-sum
// diversity δ(q, G) against the group-coverage quality f(q, P), such that
// every possible instance is ε-dominated by a returned one.
//
// # Quick start
//
//	g := fairsqg.NewGraph()
//	// ... add nodes and edges, then:
//	g.Freeze()
//
//	tpl, _ := fairsqg.ParseTemplate(`
//	template talent
//	node u_o Person title = "Director"
//	node u1 Person yearsOfExp >= $x1
//	edge u1 u_o recommend ?e1
//	output u_o
//	`)
//	tpl.BindDomains(g, fairsqg.DomainOptions{MaxValues: 8})
//
//	set := fairsqg.EqualOpportunity(
//	    fairsqg.GroupsByAttribute(g, "Person", "gender"), 100)
//
//	gen, _ := fairsqg.NewGenerator(&fairsqg.Config{
//	    G: g, Template: tpl, Groups: set, Eps: 0.05,
//	})
//	res, _ := gen.Bidirectional() // BiQGen
//	for _, v := range res.Set {
//	    fmt.Println(v.Q, v.Point.Div, v.Point.Cov)
//	}
//
// # Algorithms
//
// Four generation strategies are provided, all with the guarantees of the
// paper's Theorem 2 (correct ε-Pareto maintenance, size-bounded results):
//
//   - Generator.Enumerate (EnumQGen): exhaustive baseline.
//   - Generator.Refine (RfQGen): depth-first lattice refinement with
//     infeasibility pruning; converges to high-diversity instances first.
//   - Generator.Bidirectional (BiQGen): interleaved refine/relax search
//     with sandwich pruning; balanced convergence and the best runtime.
//   - Generator.Online (OnlineQGen): maintains a fixed-size ε-Pareto set
//     over an instance stream with bounded delay, enlarging ε only when
//     forced.
//
// Generator.ExactPareto (Kung's algorithm) and Generator.CBM (ε-constraint
// bisection) are the evaluation baselines.
//
// # Performance
//
// Freezing a graph materializes typed per-attribute columns (with
// presence bitmaps) in place of per-node attribute maps, and builds a
// sorted permutation index for every (label, attribute) pair. Literal
// evaluation reads columns through interned attribute IDs, and candidate
// selection binary-searches the most selective literal's index instead of
// scanning the label, falling back to the scan for unselective ranges.
//
// Backtracking itself is selectivity-driven: candidate sets live in
// dense bitsets propagated to arc consistency before search, nodes are
// pre-screened by degree and neighborhood-label signatures (rejections
// counted in Stats.Matcher.SigPruned), and the search assigns the
// cheapest frontier variable first rather than following template order.
//
// Four Config knobs control how each instance's answer set is computed;
// all leave results bit-identical to the sequential defaults:
//
//   - Config.MatchWorkers: 0 or 1 evaluates matches sequentially; a value
//     above 1 routes verification through a concurrent match engine
//     (MatchEngine) that partitions the output node's candidates across
//     that many goroutines and merges the per-worker match sets
//     deterministically; negative uses GOMAXPROCS workers.
//   - Config.CandCacheSize: bounds the engine's shared LRU cache of
//     label+predicate candidate lists, reused across the many instances of
//     one template that share bound literals. 0 picks a default size;
//     negative disables the cache. Hit/miss/eviction counts are reported
//     in Stats.Cache.
//   - Config.DisableAttrIndex: forces candidate selection onto the
//     linear-scan reference path (ablation). Access-path counts are
//     reported in Stats.Matcher.IndexSelections and ScanSelections; a
//     frozen graph's column and index footprint is available from
//     Graph.Memory (GraphMemoryStats).
//   - Config.Order: backtracking variable order. OrderDynamic (the
//     default) picks the cheapest frontier variable at each step;
//     OrderStatic follows template order (ablation / escape hatch, also
//     -order=static on the CLIs). Both orders return identical match
//     sets; only exploration order — and, under a MaxBacktrackNodes
//     budget, which prefix gets explored — differs.
//
// Diversity scoring is incremental: attribute distance functions compile
// into per-graph feature tables, pair distances are memoized in a cache
// scoped by distance fingerprint (shared across jobs when an engine is
// injected), and instances refined from a scored parent are re-scored by
// subtracting the removed matches' contributions rather than recomputing
// the O(n²) pair loop. Pair sums accumulate in fixed point, so scores
// are bit-identical to the exact recompute in every setting:
//
//   - Config.DisableIncScore: ablation switch back to from-scratch
//     scoring. Delta-path uses are counted in Stats.IncScores, pair-cache
//     traffic in Stats.DistCache.
//   - Config.MaxPairs: pair-sampling threshold for very large answer
//     sets; 0 picks a default cap, negative forces exact scoring.
//   - Config.Lambda / Config.LambdaSet: the relevance/distance mix;
//     LambdaSet lets an explicit 0 override the 0.5 default.
//
// NewMatchEngine exposes the engine directly for callers that evaluate
// instances outside a Generator; it is safe for concurrent use and honors
// context cancellation.
//
// Frozen graphs serialize to versioned, CRC-checked binary snapshots
// (WriteGraphSnapshot / ReadGraphSnapshot) that restore the columnar
// layout and sorted indexes directly — loading a snapshot skips Freeze
// entirely, which is how the fairsqgd server's -snapshot-dir warm restart
// and the .fsnap files written by graphgen/fairsqg get large graphs back
// into memory at I/O speed. Snapshots are a cache format: readers reject
// other versions and corrupt files with descriptive errors, and TSV/JSON
// remain the durable interchange formats.
//
// Generation also scales horizontally: the fairsqgd daemon runs as a
// standalone server, a cluster worker, or a coordinator (-role) that
// fans Generator.Parallel's lattice slabs out across worker processes,
// shipping graphs as snapshots and merging the per-slab ε-Pareto
// archives deterministically — the distributed result equals the
// single-process one. See README.md ("Running a cluster") and
// DESIGN.md §5f.
//
// Frozen graphs also mutate without a rebuild: ApplyMutations applies an
// atomic batch (add/remove nodes and edges, attribute writes) by
// copy-on-write, producing a new frozen generation that shares every
// untouched column and index with its base — orders of magnitude cheaper
// than re-parsing, with node IDs stable across generations. NewLiveGraph
// wraps the current generation behind retained references so readers
// keep a consistent graph while writers advance it, and OpenMutationLog
// / ReplayMutationLog persist batches to a CRC-framed write-ahead delta
// log beside the snapshot (the fairsqgd mutate endpoint's crash
// consistency). A Generator.Online run can follow a mutating graph via
// OnlineOptions.Mutations, re-scoring its archive as generations land.
// See README.md ("Live graphs") and DESIGN.md §5h.
//
// Synthetic datasets mirroring the paper's evaluation graphs and the full
// experiment harness live in cmd/experiments; see DESIGN.md and
// EXPERIMENTS.md.
package fairsqg
