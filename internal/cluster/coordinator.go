package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fairsqg/internal/core"
	"fairsqg/internal/graph"
	"fairsqg/internal/pareto"
)

// CoordinatorOptions configures a cluster coordinator.
type CoordinatorOptions struct {
	// Workers lists the worker daemons as host:port or full base URLs.
	Workers []string
	// Replicas is how many workers each graph is placed on (rendezvous
	// hashing of graph name over the fleet; default 2, clamped to the
	// fleet size). Extra replicas buy fast failover and read scaling.
	Replicas int
	// MaxInFlight bounds concurrently executing slabs per worker
	// (default 4).
	MaxInFlight int
	// SlabTimeout bounds one slab dispatch attempt (default 60s).
	SlabTimeout time.Duration
	// SlabRetries is the total attempts per slab before the job fails
	// (default 4); attempts back off exponentially from RetryBase
	// (default 100ms) capped at RetryMax (default 5s), with ±50% jitter.
	SlabRetries int
	RetryBase   time.Duration
	RetryMax    time.Duration
	// HealthInterval paces the /readyz sweep that revives dead workers
	// (default 1s). Workers are marked dead immediately on transport
	// errors; the sweep is what brings them back.
	HealthInterval time.Duration
	// Client performs the HTTP calls (default http.DefaultTransport with
	// no overall timeout; per-attempt contexts bound each call).
	Client *http.Client
	// Logger receives placement, retry and failover logs; nil silences.
	Logger Logger
	// Seed fixes the retry jitter for reproducible tests (0 = seeded from
	// the fleet configuration, still deterministic).
	Seed int64
}

func (o *CoordinatorOptions) withDefaults() CoordinatorOptions {
	out := *o
	if out.Replicas <= 0 {
		out.Replicas = 2
	}
	if out.Replicas > len(out.Workers) {
		out.Replicas = len(out.Workers)
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = 4
	}
	if out.SlabTimeout <= 0 {
		out.SlabTimeout = 60 * time.Second
	}
	if out.SlabRetries <= 0 {
		out.SlabRetries = 4
	}
	if out.RetryBase <= 0 {
		out.RetryBase = 100 * time.Millisecond
	}
	if out.RetryMax <= 0 {
		out.RetryMax = 5 * time.Second
	}
	if out.HealthInterval <= 0 {
		out.HealthInterval = time.Second
	}
	if out.Client == nil {
		out.Client = &http.Client{}
	}
	return out
}

// clusterWorker is the coordinator's view of one worker daemon.
type clusterWorker struct {
	url   string
	alive atomic.Bool
	// sem bounds in-flight slabs on this worker.
	sem chan struct{}
	// pushMu serializes snapshot pushes; pushed maps graph name → CRC the
	// worker is known to hold.
	pushMu sync.Mutex
	pushed map[string]uint32

	dispatched atomic.Int64
	retried    atomic.Int64
	failed     atomic.Int64
}

// errGraphMissing marks a 412 slab answer: the worker lacks the graph
// version, so the dispatcher invalidates its push record and retries.
var errGraphMissing = errors.New("cluster: worker missing graph version")

// Coordinator fans a job's slab plan out over a fleet of worker daemons
// and merges their ε-Pareto slab archives. It owns worker health,
// placement, snapshot shipping and retry/failover policy; it does not own
// the job lifecycle — fairsqgd's job manager drives RunJob under the
// job's deadline context.
type Coordinator struct {
	opts    CoordinatorOptions
	workers []*clusterWorker

	snapMu sync.Mutex
	snaps  map[string]*snapBlob

	rngMu sync.Mutex
	rng   *rand.Rand

	jobsRun      atomic.Int64
	jobsFailed   atomic.Int64
	pushes       atomic.Int64
	pushBytes    atomic.Int64
	slabLatency  *latencyHistogram
	healthSweeps atomic.Int64

	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// snapBlob caches one graph's encoded snapshot; identity-checked against
// the *graph.Graph pointer so a re-registered graph re-encodes.
type snapBlob struct {
	g     *graph.Graph
	bytes []byte
	crc   uint32
}

// NewCoordinator validates the fleet and starts the health sweeper.
// Callers must Close to stop it.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one worker")
	}
	o := opts.withDefaults()
	c := &Coordinator{
		opts:        o,
		snaps:       make(map[string]*snapBlob),
		slabLatency: newLatencyHistogram(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, raw := range o.Workers {
		u, err := normalizeWorkerURL(raw)
		if err != nil {
			return nil, err
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate worker %s", u)
		}
		seen[u] = true
		w := &clusterWorker{
			url:    u,
			sem:    make(chan struct{}, o.MaxInFlight),
			pushed: make(map[string]uint32),
		}
		// Optimistically alive: the first dispatch probes reality, and
		// transport errors flip the bit immediately.
		w.alive.Store(true)
		c.workers = append(c.workers, w)
	}
	seed := o.Seed
	if seed == 0 {
		h := fnv.New64a()
		for _, w := range c.workers {
			_, _ = io.WriteString(h, w.url)
		}
		seed = int64(h.Sum64())
	}
	c.rng = rand.New(rand.NewSource(seed))
	go c.healthLoop()
	return c, nil
}

// normalizeWorkerURL accepts host:port or a full URL and returns a base
// URL without a trailing slash.
func normalizeWorkerURL(raw string) (string, error) {
	u := strings.TrimSpace(raw)
	if u == "" {
		return "", fmt.Errorf("cluster: empty worker address")
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimRight(u, "/"), nil
}

// Close stops the health sweeper; idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
		<-c.done
	})
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logger != nil {
		c.opts.Logger.Printf(format, args...)
	}
}

// healthLoop sweeps /readyz on every worker, reviving dead ones. Dispatch
// errors mark workers dead synchronously; this loop is the only way back.
func (c *Coordinator) healthLoop() {
	defer close(c.done)
	t := time.NewTicker(c.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.sweepHealth()
		case <-c.stop:
			return
		}
	}
}

// sweepHealth probes every worker once.
func (c *Coordinator) sweepHealth() {
	c.healthSweeps.Add(1)
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *clusterWorker) {
			defer wg.Done()
			ok := c.probe(w)
			was := w.alive.Swap(ok)
			if was != ok {
				if ok {
					c.logf("worker %s is back", w.url)
				} else {
					c.logf("worker %s is down", w.url)
				}
			}
			if !ok {
				// Whatever we thought was pushed may be gone with the
				// process; re-verify on revival.
				w.pushMu.Lock()
				w.pushed = make(map[string]uint32)
				w.pushMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}

func (c *Coordinator) probe(w *clusterWorker) bool {
	// The probe deadline is independent of the sweep cadence: a tight
	// HealthInterval must not turn slow-but-healthy workers dead.
	timeout := c.opts.HealthInterval
	if timeout < 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode == http.StatusOK
}

// markDead flips a worker dead after a transport error, without waiting
// for the sweep.
func (c *Coordinator) markDead(w *clusterWorker, err error) {
	if w.alive.Swap(false) {
		c.logf("worker %s marked dead: %v", w.url, err)
	}
}

// LiveWorkers counts workers currently believed alive.
func (c *Coordinator) LiveWorkers() int {
	n := 0
	for _, w := range c.workers {
		if w.alive.Load() {
			n++
		}
	}
	return n
}

// WorkerURLs returns the normalized fleet addresses.
func (c *Coordinator) WorkerURLs() []string {
	urls := make([]string, len(c.workers))
	for i, w := range c.workers {
		urls[i] = w.url
	}
	return urls
}

// rankWorkers orders the fleet for a graph by rendezvous (highest random
// weight) hashing: every coordinator instance derives the same preference
// order from the graph name alone, so placement survives coordinator
// restarts and needs no shared state.
func (c *Coordinator) rankWorkers(graphName string) []*clusterWorker {
	type scored struct {
		w     *clusterWorker
		score uint64
	}
	ranked := make([]scored, len(c.workers))
	for i, w := range c.workers {
		h := fnv.New64a()
		_, _ = io.WriteString(h, w.url)
		_, _ = h.Write([]byte{0})
		_, _ = io.WriteString(h, graphName)
		ranked[i] = scored{w: w, score: mix64(h.Sum64())}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].w.url < ranked[j].w.url
	})
	out := make([]*clusterWorker, len(ranked))
	for i, s := range ranked {
		out[i] = s.w
	}
	return out
}

// mix64 is the splitmix64 finalizer; FNV alone avalanches poorly on the
// short url+name keys rendezvous hashing feeds it, which skews placement.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// candidates returns the workers a slab may run on, in preference order:
// the graph's live owners (top-Replicas of the rendezvous ranking), or —
// when every owner is dead — any live worker, which re-places the slab
// and ships the snapshot on demand (failover).
func (c *Coordinator) candidates(graphName string) []*clusterWorker {
	ranked := c.rankWorkers(graphName)
	owners := make([]*clusterWorker, 0, c.opts.Replicas)
	for _, w := range ranked[:c.opts.Replicas] {
		if w.alive.Load() {
			owners = append(owners, w)
		}
	}
	if len(owners) > 0 {
		return owners
	}
	var live []*clusterWorker
	for _, w := range ranked {
		if w.alive.Load() {
			live = append(live, w)
		}
	}
	return live
}

// snapshot returns the graph's cached snapshot encoding and content CRC.
func (c *Coordinator) snapshot(name string, g *graph.Graph) (*snapBlob, error) {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	if b, ok := c.snaps[name]; ok && b.g == g {
		return b, nil
	}
	var buf bytes.Buffer
	if err := graph.WriteSnapshot(&buf, g); err != nil {
		return nil, fmt.Errorf("cluster: encode snapshot of %q: %w", name, err)
	}
	b := &snapBlob{g: g, bytes: buf.Bytes(), crc: crc32.ChecksumIEEE(buf.Bytes())}
	c.snaps[name] = b
	return b, nil
}

// ForgetGraph drops the coordinator's cached snapshot for name; the
// registry calls it on Remove so a later same-name registration
// re-encodes and re-places.
func (c *Coordinator) ForgetGraph(name string) {
	c.snapMu.Lock()
	delete(c.snaps, name)
	c.snapMu.Unlock()
}

// JobRequest is one distributed generation job.
type JobRequest struct {
	// Graph names the graph (the placement key); G is the coordinator's
	// local copy, the version every slab must run against.
	Graph string
	G     *graph.Graph
	// Payload rebuilds the run configuration on each worker.
	Payload JobPayload
	// RequestID correlates the job's slab fan-out in worker logs.
	RequestID string
	// OnSlab, when set, observes slab completions: done of total, and
	// which worker ran the slab.
	OnSlab func(done, total int, worker string)
}

// DistResult is a distributed job's merged outcome.
type DistResult struct {
	// Entries is the merged ε-Pareto archive, ordered by decreasing
	// diversity (ties by increasing coverage), matching the single-process
	// result presentation.
	Entries []core.SlabEntry
	// Eps is the tolerance the set satisfies.
	Eps float64
	// Stats sums the slabs' private work counters.
	Stats core.SlabStats
	// Merge tallies the coordinator-side archive union.
	Merge pareto.MergeStats
	// Slabs is the plan size; Retried counts extra dispatch attempts the
	// job needed beyond one per slab.
	Slabs   int
	Retried int
	Elapsed time.Duration
}

// RunJob plans the job's lattice into slabs, dispatches every slab to the
// fleet and merges the returned archives in deterministic plan order. The
// context bounds the whole job (the job manager's deadline); per-attempt
// timeouts, retry with exponential backoff and jitter, and failover to
// other live workers happen per slab inside.
func (c *Coordinator) RunJob(ctx context.Context, req JobRequest) (*DistResult, error) {
	start := time.Now()
	cfg, err := BuildConfig(req.Payload, req.G)
	if err != nil {
		return nil, err
	}
	plan := core.PlanSlabs(cfg.Template)
	blob, err := c.snapshot(req.Graph, req.G)
	if err != nil {
		return nil, err
	}
	c.logf("req=%s distributing %s over %d slabs (splitVar %d) to %d live workers",
		req.RequestID, req.Graph, plan.NumSlabs(), plan.SplitVar, c.LiveWorkers())

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	responses := make([]*SlabResponse, plan.NumSlabs())
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
		retried  int
	)
	for i, level := range plan.Levels {
		wg.Add(1)
		go func(slabIdx, level int) {
			defer wg.Done()
			resp, attempts, err := c.runSlab(ctx, req, blob, plan.SplitVar, level, slabIdx)
			mu.Lock()
			defer mu.Unlock()
			retried += attempts - 1
			if err != nil {
				if firstErr == nil && ctx.Err() == nil {
					firstErr = err
				}
				cancel()
				return
			}
			// Exactly-once by construction: each slab has one goroutine,
			// and the first successful attempt is the only one recorded.
			responses[slabIdx] = resp
			done++
			if req.OnSlab != nil {
				req.OnSlab(done, plan.NumSlabs(), resp.worker)
			}
		}(i, level)
	}
	wg.Wait()
	if firstErr != nil {
		c.jobsFailed.Add(1)
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		c.jobsFailed.Add(1)
		return nil, err
	}

	// Deterministic merge: slabs in plan order, each slab's entries in its
	// worker's depth-first insertion order. Update keeps the incumbent on
	// in-box ties, so the merged archive is a pure function of the slab
	// results — re-running the job (or failing slabs over to different
	// workers, which return identical results) cannot change it.
	archive := pareto.NewArchive[core.SlabEntry](cfg.Eps)
	res := &DistResult{Eps: cfg.Eps, Slabs: plan.NumSlabs(), Retried: retried}
	for _, resp := range responses {
		entries := make([]pareto.Entry[core.SlabEntry], len(resp.Entries))
		for j, e := range resp.Entries {
			entries[j] = pareto.Entry[core.SlabEntry]{Point: e.Point(), Payload: e}
		}
		res.Merge.Add(archive.Merge(entries))
		res.Stats.Add(resp.Stats)
	}
	res.Entries = archive.Payloads()
	sort.Slice(res.Entries, func(i, j int) bool {
		if res.Entries[i].Div != res.Entries[j].Div {
			return res.Entries[i].Div > res.Entries[j].Div
		}
		return res.Entries[i].Cov < res.Entries[j].Cov
	})
	res.Elapsed = time.Since(start)
	c.jobsRun.Add(1)
	return res, nil
}

// runSlab drives one slab to completion: pick a candidate worker, ensure
// it holds the graph, dispatch with the per-attempt timeout, and on any
// failure back off and try again — rotating through candidates so a dead
// or failing worker's slabs fail over to its peers.
func (c *Coordinator) runSlab(ctx context.Context, req JobRequest, blob *snapBlob, splitVar, level, slabIdx int) (*SlabResponse, int, error) {
	var lastErr error
	for attempt := 0; attempt < c.opts.SlabRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, attempt + 1, err
		}
		if attempt > 0 {
			if err := c.backoff(ctx, attempt); err != nil {
				return nil, attempt + 1, err
			}
		}
		cands := c.candidates(req.Graph)
		if len(cands) == 0 {
			lastErr = fmt.Errorf("cluster: no live workers for graph %q", req.Graph)
			continue
		}
		w := cands[(slabIdx+attempt)%len(cands)]
		resp, err := c.attemptSlab(ctx, w, req, blob, splitVar, level, slabIdx, attempt)
		if err == nil {
			return resp, attempt + 1, nil
		}
		w.retried.Add(1)
		lastErr = fmt.Errorf("worker %s: %w", w.url, err)
		if ctx.Err() == nil {
			c.logf("req=%s slab %d attempt %d on %s failed: %v", req.RequestID, slabIdx, attempt+1, w.url, err)
		}
	}
	return nil, c.opts.SlabRetries, fmt.Errorf("cluster: slab %d (var %d level %d) failed after %d attempts: %w",
		slabIdx, splitVar, level, c.opts.SlabRetries, lastErr)
}

// attemptSlab performs one dispatch attempt on one worker.
func (c *Coordinator) attemptSlab(ctx context.Context, w *clusterWorker, req JobRequest, blob *snapBlob, splitVar, level, slabIdx, attempt int) (*SlabResponse, error) {
	// Bounded in-flight per worker; respect cancellation while queued.
	select {
	case w.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-w.sem }()
	reqID := fmt.Sprintf("%s/s%d/a%d", req.RequestID, slabIdx, attempt+1)
	if err := c.ensureGraph(ctx, w, req.Graph, blob, reqID); err != nil {
		return nil, err
	}
	resp, err := c.postSlab(ctx, w, req, blob, splitVar, level, reqID)
	if errors.Is(err, errGraphMissing) {
		// The worker restarted (or was never pushed) since our record;
		// invalidate and push inline, then try once more in this attempt.
		w.pushMu.Lock()
		delete(w.pushed, req.Graph)
		w.pushMu.Unlock()
		if err := c.ensureGraph(ctx, w, req.Graph, blob, reqID); err != nil {
			return nil, err
		}
		resp, err = c.postSlab(ctx, w, req, blob, splitVar, level, reqID)
	}
	return resp, err
}

// ensureGraph makes sure the worker holds the graph at the planned CRC,
// consulting its content-addressed inventory first and pushing the cached
// snapshot bytes only when missing — so replicas and coordinator restarts
// never re-ship what a worker already has.
func (c *Coordinator) ensureGraph(ctx context.Context, w *clusterWorker, name string, blob *snapBlob, reqID string) error {
	w.pushMu.Lock()
	defer w.pushMu.Unlock()
	if w.pushed[name] == blob.crc {
		return nil
	}
	// Inventory check: the worker may already hold the version (preload,
	// earlier coordinator incarnation, another job).
	inv, err := c.fetchGraphs(ctx, w)
	if err != nil {
		c.markDead(w, err)
		return err
	}
	if inv[name] == blob.crc {
		w.pushed[name] = blob.crc
		return nil
	}
	pushCtx, cancel := context.WithTimeout(ctx, c.opts.SlabTimeout)
	defer cancel()
	url := fmt.Sprintf("%s%s/%s?crc=%08x", w.url, PathGraphs, name, blob.crc)
	httpReq, err := http.NewRequestWithContext(pushCtx, http.MethodPut, url, bytes.NewReader(blob.bytes))
	if err != nil {
		return err
	}
	httpReq.Header.Set(requestIDHeader, reqID)
	httpReq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.opts.Client.Do(httpReq)
	if err != nil {
		c.markDead(w, err)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("push graph %s: %s", name, readWireError(resp))
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	c.pushes.Add(1)
	c.pushBytes.Add(int64(len(blob.bytes)))
	w.pushed[name] = blob.crc
	c.logf("req=%s pushed graph %s (%d bytes, crc %08x) to %s", reqID, name, len(blob.bytes), blob.crc, w.url)
	return nil
}

// fetchGraphs reads a worker's graph inventory.
func (c *Coordinator) fetchGraphs(ctx context.Context, w *clusterWorker) (map[string]uint32, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.SlabTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+PathGraphs, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("list graphs: %s", readWireError(resp))
	}
	var out GraphsResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&out); err != nil {
		return nil, err
	}
	return out.Graphs, nil
}

// postSlab performs the slab POST under the per-attempt timeout.
func (c *Coordinator) postSlab(ctx context.Context, w *clusterWorker, req JobRequest, blob *snapBlob, splitVar, level int, reqID string) (*SlabResponse, error) {
	body, err := json.Marshal(SlabRequest{
		Graph:    req.Graph,
		GraphCRC: blob.crc,
		Job:      req.Payload,
		SplitVar: splitVar,
		Level:    level,
	})
	if err != nil {
		return nil, err
	}
	attemptCtx, cancel := context.WithTimeout(ctx, c.opts.SlabTimeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, w.url+PathSlab, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set(requestIDHeader, reqID)
	httpReq.Header.Set("Content-Type", "application/json")
	w.dispatched.Add(1)
	start := time.Now()
	resp, err := c.opts.Client.Do(httpReq)
	if err != nil {
		w.failed.Add(1)
		c.markDead(w, err)
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var out SlabResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&out); err != nil {
			w.failed.Add(1)
			return nil, fmt.Errorf("decode slab response: %w", err)
		}
		out.worker = w.url
		c.slabLatency.observe(float64(time.Since(start)) / float64(time.Millisecond))
		return &out, nil
	case http.StatusPreconditionFailed:
		w.failed.Add(1)
		return nil, fmt.Errorf("%w: %s", errGraphMissing, readWireError(resp))
	default:
		w.failed.Add(1)
		return nil, fmt.Errorf("slab: %s", readWireError(resp))
	}
}

// backoff sleeps the exponential backoff for attempt (1-based retry) with
// ±50% jitter, respecting cancellation.
func (c *Coordinator) backoff(ctx context.Context, attempt int) error {
	d := c.opts.RetryBase << (attempt - 1)
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	c.rngMu.Lock()
	jitter := 0.5 + c.rng.Float64() // in [0.5, 1.5)
	c.rngMu.Unlock()
	d = time.Duration(float64(d) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// readWireError extracts the JSON error body of a non-2xx response.
func readWireError(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var we wireError
	if json.Unmarshal(data, &we) == nil && we.Error != "" {
		return fmt.Sprintf("%d: %s", resp.StatusCode, we.Error)
	}
	return fmt.Sprintf("%d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
}

// MetricsSnapshot renders the coordinator's `cluster` metrics section:
// per-worker dispatch counters, the slab latency histogram, snapshot push
// volume and the live-worker gauge.
func (c *Coordinator) MetricsSnapshot() map[string]any {
	workers := make(map[string]any, len(c.workers))
	var dispatched, retried, failed int64
	for _, w := range c.workers {
		d, r, f := w.dispatched.Load(), w.retried.Load(), w.failed.Load()
		dispatched += d
		retried += r
		failed += f
		workers[w.url] = map[string]any{
			"alive":      w.alive.Load(),
			"dispatched": d,
			"retried":    r,
			"failed":     f,
		}
	}
	return map[string]any{
		"role":            "coordinator",
		"liveWorkers":     c.LiveWorkers(),
		"workers":         workers,
		"slabsDispatched": dispatched,
		"slabsRetried":    retried,
		"slabsFailed":     failed,
		"jobsDistributed": c.jobsRun.Load(),
		"jobsFailed":      c.jobsFailed.Load(),
		"snapshotPushes":  c.pushes.Load(),
		"snapshotBytes":   c.pushBytes.Load(),
		"slabLatencyMs":   c.slabLatency.snapshot(),
	}
}
