package cluster

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fairsqg/internal/core"
	"fairsqg/internal/graph"
	"fairsqg/internal/match"
)

// WorkerOptions configures a slab-execution worker.
type WorkerOptions struct {
	// MatchWorkers is each graph engine's fan-out (<= 0 = GOMAXPROCS);
	// CandCacheSize bounds each graph's candidate cache (0 default, < 0
	// disabled).
	MatchWorkers  int
	CandCacheSize int
	// DisableAttrIndex / Order / DisableIncScore propagate the standalone
	// daemon's ablation knobs so a cluster run can be ablated identically.
	DisableAttrIndex bool
	Order            match.Order
	DisableIncScore  bool
	// MaxSnapshotBytes bounds pushed snapshot bodies (default 64 MiB).
	MaxSnapshotBytes int64
	// Logger receives request logs; nil silences them.
	Logger Logger
}

// workerGraph is one registered graph with its shared evaluation state:
// like the standalone registry, a single engine (candidate cache, pair
// cache, matcher pool) serves every slab that targets the graph.
type workerGraph struct {
	g      *graph.Graph
	engine *match.Engine
	crc    uint32
}

// Worker executes slabs for a coordinator: it holds pushed (or preloaded)
// graphs keyed by name and snapshot CRC and runs core.RunSlab against
// them. One Worker instance backs `fairsqgd -role=worker`.
type Worker struct {
	opts WorkerOptions

	mu     sync.Mutex
	graphs map[string]*workerGraph

	slabsRun      atomic.Int64
	slabsFailed   atomic.Int64
	snapshotsIn   atomic.Int64
	snapshotBytes atomic.Int64
}

// NewWorker returns an empty worker.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.MaxSnapshotBytes <= 0 {
		opts.MaxSnapshotBytes = 64 << 20
	}
	return &Worker{opts: opts, graphs: make(map[string]*workerGraph)}
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logger != nil {
		w.opts.Logger.Printf(format, args...)
	}
}

// SnapshotCRC computes a frozen graph's content address: the CRC-32 of
// its deterministic binary snapshot encoding. Two processes that freeze
// the same logical graph — or decode the same snapshot — agree on it.
func SnapshotCRC(g *graph.Graph) (uint32, error) {
	var buf bytes.Buffer
	if err := graph.WriteSnapshot(&buf, g); err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(buf.Bytes()), nil
}

// RegisterGraph registers a frozen graph under name, computing its
// content address locally; the daemon's -graph preload uses it. A
// re-registration under the same name replaces the previous version.
func (w *Worker) RegisterGraph(name string, g *graph.Graph) error {
	if g == nil || !g.Frozen() {
		return fmt.Errorf("cluster: graph %q must be frozen", name)
	}
	crc, err := SnapshotCRC(g)
	if err != nil {
		return err
	}
	w.register(name, g, crc)
	return nil
}

func (w *Worker) register(name string, g *graph.Graph, crc uint32) {
	entry := &workerGraph{
		g:   g,
		crc: crc,
		engine: match.NewEngine(g, match.EngineOptions{
			Workers:          w.opts.MatchWorkers,
			CandCacheSize:    w.opts.CandCacheSize,
			Order:            w.opts.Order,
			DisableAttrIndex: w.opts.DisableAttrIndex,
		}),
	}
	w.mu.Lock()
	w.graphs[name] = entry
	w.mu.Unlock()
}

// Graphs returns the registered graph names and snapshot CRCs.
func (w *Worker) Graphs() map[string]uint32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]uint32, len(w.graphs))
	for name, e := range w.graphs {
		out[name] = e.crc
	}
	return out
}

// MetricsSnapshot renders the worker's /metrics document.
func (w *Worker) MetricsSnapshot() map[string]any {
	w.mu.Lock()
	names := make([]string, 0, len(w.graphs))
	for name := range w.graphs {
		names = append(names, name)
	}
	w.mu.Unlock()
	sort.Strings(names)
	return map[string]any{
		"role": "worker",
		"cluster": map[string]any{
			"slabsRun":         w.slabsRun.Load(),
			"slabsFailed":      w.slabsFailed.Load(),
			"snapshotsIn":      w.snapshotsIn.Load(),
			"snapshotBytes":    w.snapshotBytes.Load(),
			"graphs":           names,
			"graphsRegistered": len(names),
		},
	}
}

// Handler returns the worker's HTTP surface: the cluster protocol plus
// health and metrics endpoints.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		writeWireJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(rw http.ResponseWriter, r *http.Request) {
		writeWireJSON(rw, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		writeWireJSON(rw, http.StatusOK, w.MetricsSnapshot())
	})
	mux.HandleFunc("GET "+PathGraphs, w.handleListGraphs)
	mux.HandleFunc("PUT "+PathGraphs+"/{name}", w.handlePushGraph)
	mux.HandleFunc("POST "+PathSlab, w.handleSlab)
	return w.withRequestID(mux)
}

// withRequestID echoes (or assigns) the request ID the coordinator
// propagates, so one job's slab fan-out correlates across both processes'
// logs.
func (w *Worker) withRequestID(next http.Handler) http.Handler {
	var seq atomic.Uint64
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = fmt.Sprintf("w%08x", seq.Add(1))
		}
		rw.Header().Set(requestIDHeader, id)
		start := time.Now()
		next.ServeHTTP(rw, r)
		w.logf("req=%s %s %s (%s)", id, r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}

func (w *Worker) handleListGraphs(rw http.ResponseWriter, r *http.Request) {
	writeWireJSON(rw, http.StatusOK, GraphsResponse{Graphs: w.Graphs()})
}

// handlePushGraph ingests a binary snapshot. The body's CRC-32 is the
// graph's content address: when the ?crc= query parameter is present it
// must match, which catches truncation and lets the coordinator treat the
// push as idempotent.
func (w *Worker) handlePushGraph(rw http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, w.opts.MaxSnapshotBytes))
	if err != nil {
		writeWireError(rw, http.StatusRequestEntityTooLarge, "snapshot body exceeds %d bytes", w.opts.MaxSnapshotBytes)
		return
	}
	crc := crc32.ChecksumIEEE(body)
	if want := r.URL.Query().Get("crc"); want != "" && want != fmt.Sprintf("%08x", crc) {
		writeWireError(rw, http.StatusBadRequest, "snapshot CRC mismatch: body sums to %08x, caller said %s", crc, want)
		return
	}
	g, err := graph.ReadSnapshot(bytes.NewReader(body))
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, "bad snapshot: %v", err)
		return
	}
	w.register(name, g, crc)
	w.snapshotsIn.Add(1)
	w.snapshotBytes.Add(int64(len(body)))
	w.logf("graph %s registered from pushed snapshot (%d bytes, crc %08x)", name, len(body), crc)
	writeWireJSON(rw, http.StatusCreated, map[string]any{"name": name, "crc": crc, "nodes": g.NumNodes(), "edges": g.NumEdges()})
}

// handleSlab executes one slab. A graph mismatch answers 412 Precondition
// Failed — the coordinator's cue to push the snapshot and retry — keeping
// execution strictly content-addressed: a slab never runs against a graph
// version other than the one the coordinator planned with.
func (w *Worker) handleSlab(rw http.ResponseWriter, r *http.Request) {
	var req SlabRequest
	if err := readJSON(r.Body, &req); err != nil {
		writeWireError(rw, http.StatusBadRequest, "bad slab request: %v", err)
		return
	}
	w.mu.Lock()
	entry := w.graphs[req.Graph]
	w.mu.Unlock()
	if entry == nil {
		writeWireError(rw, http.StatusPreconditionFailed, "graph %q not registered on this worker", req.Graph)
		return
	}
	if entry.crc != req.GraphCRC {
		writeWireError(rw, http.StatusPreconditionFailed, "graph %q has crc %08x, coordinator wants %08x", req.Graph, entry.crc, req.GraphCRC)
		return
	}
	cfg, err := BuildConfig(req.Job, entry.g)
	if err != nil {
		w.slabsFailed.Add(1)
		writeWireError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	// The graph's shared engine: every slab on this graph reuses one warm
	// candidate cache, one pair-distance cache and one matcher pool —
	// mirroring the standalone registry. The request context carries the
	// coordinator's per-slab timeout, so an abandoned dispatch aborts here
	// too instead of burning the worker.
	cfg.Engine = entry.engine
	cfg.Ctx = r.Context()
	cfg.DisableIncScore = w.opts.DisableIncScore
	runner, err := core.NewRunner(cfg)
	if err != nil {
		w.slabsFailed.Add(1)
		writeWireError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := runner.RunSlab(req.SplitVar, req.Level)
	if err != nil {
		w.slabsFailed.Add(1)
		writeWireError(rw, http.StatusInternalServerError, "slab (%d,%d): %v", req.SplitVar, req.Level, err)
		return
	}
	w.slabsRun.Add(1)
	writeWireJSON(rw, http.StatusOK, SlabResponse{
		Entries:   res.Entries,
		Stats:     res.Stats,
		ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
	})
}
