package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"fairsqg/internal/core"
	"fairsqg/internal/graph"
	"fairsqg/internal/pareto"
)

// testGraph mirrors the core fixture: a seeded professional network small
// enough for exhaustive enumeration.
func testGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	numPersons, numOrgs := 200, 10
	persons := make([]graph.NodeID, numPersons)
	for i := range persons {
		gender := "male"
		if rng.Float64() < 0.4 {
			gender = "female"
		}
		title := "Engineer"
		if i%4 == 0 {
			title = "Director"
		}
		persons[i] = g.AddNode("Person", map[string]graph.Value{
			"gender":     graph.Str(gender),
			"title":      graph.Str(title),
			"yearsOfExp": graph.Int(int64(rng.Intn(20))),
		})
	}
	orgs := make([]graph.NodeID, numOrgs)
	for i := range orgs {
		orgs[i] = g.AddNode("Org", map[string]graph.Value{
			"employees": graph.Int(int64(10 + rng.Intn(5000))),
		})
	}
	for _, p := range persons {
		if err := g.AddEdge(p, orgs[rng.Intn(numOrgs)], "worksAt"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < numPersons*5; i++ {
		from := persons[rng.Intn(numPersons)]
		to := persons[rng.Intn(numPersons)]
		if from != to {
			if err := g.AddEdge(from, to, "recommend"); err != nil {
				t.Fatal(err)
			}
		}
	}
	g.Freeze()
	return g
}

const testTemplate = `
template talent
node u_o Person title = "Director"
node u1 Person yearsOfExp >= $x1
node o Org employees >= $x2
edge u1 u_o recommend ?e1
edge u1 o worksAt
output u_o
`

func testPayload() JobPayload {
	return JobPayload{
		Template:  testTemplate,
		Groups:    GroupsPayload{Label: "Person", Attr: "gender", Cover: 3},
		Eps:       0.3,
		MaxDomain: 5,
	}
}

// refResult runs the job single-process; the distributed path must match
// its archive at box granularity.
func refResult(t *testing.T, p JobPayload, g *graph.Graph) *core.Result {
	t.Helper()
	cfg, err := BuildConfig(p, g)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := core.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.ParQGen(4)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func boxSetOf(points []pareto.Point, eps float64) map[pareto.Box]bool {
	set := make(map[pareto.Box]bool, len(points))
	for _, p := range points {
		set[pareto.BoxOf(p, eps)] = true
	}
	return set
}

// assertMatchesReference checks the distributed archive against the
// single-process one: identical box sets and mutual ε-domination.
func assertMatchesReference(t *testing.T, dist *DistResult, ref *core.Result, eps float64) {
	t.Helper()
	distPoints := make([]pareto.Point, len(dist.Entries))
	for i, e := range dist.Entries {
		distPoints[i] = e.Point()
	}
	if got, want := boxSetOf(distPoints, eps), boxSetOf(ref.Points(), eps); !reflect.DeepEqual(got, want) {
		t.Errorf("distributed box set %v != single-process box set %v", got, want)
	}
	if em := pareto.MinEps(distPoints, ref.Points()); em > eps+1e-9 {
		t.Errorf("distributed set does not ε-dominate reference: ε_m = %v", em)
	}
	if em := pareto.MinEps(ref.Points(), distPoints); em > eps+1e-9 {
		t.Errorf("reference set does not ε-dominate distributed set: ε_m = %v", em)
	}
}

func newTestWorker(t *testing.T) (*Worker, *httptest.Server) {
	t.Helper()
	w := NewWorker(WorkerOptions{})
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return w, srv
}

func newTestCoordinator(t *testing.T, opts CoordinatorOptions) *Coordinator {
	t.Helper()
	if opts.SlabTimeout == 0 {
		opts.SlabTimeout = 30 * time.Second
	}
	if opts.RetryBase == 0 {
		opts.RetryBase = 5 * time.Millisecond
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 50 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNormalizeWorkerURL(t *testing.T) {
	for raw, want := range map[string]string{
		"localhost:9001":        "http://localhost:9001",
		"http://h:1/":           "http://h:1",
		" https://w.example:8 ": "https://w.example:8",
		"127.0.0.1:7000":        "http://127.0.0.1:7000",
	} {
		got, err := normalizeWorkerURL(raw)
		if err != nil || got != want {
			t.Errorf("normalize(%q) = %q, %v; want %q", raw, got, err, want)
		}
	}
	if _, err := normalizeWorkerURL("  "); err == nil {
		t.Error("blank worker address accepted")
	}
	if _, err := NewCoordinator(CoordinatorOptions{}); err == nil {
		t.Error("coordinator with no workers accepted")
	}
	if _, err := NewCoordinator(CoordinatorOptions{Workers: []string{"h:1", "http://h:1/"}}); err == nil {
		t.Error("duplicate workers accepted")
	}
}

// TestRendezvousDeterminism: the placement ranking is a pure function of
// the fleet and graph name — two coordinator incarnations agree — and
// different graphs spread over the fleet.
func TestRendezvousDeterminism(t *testing.T) {
	fleet := []string{"h0:1", "h1:1", "h2:1", "h3:1"}
	c1 := newTestCoordinator(t, CoordinatorOptions{Workers: fleet})
	c2 := newTestCoordinator(t, CoordinatorOptions{Workers: fleet})
	first := make(map[string]bool)
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("graph-%d", i)
		r1, r2 := c1.rankWorkers(name), c2.rankWorkers(name)
		for j := range r1 {
			if r1[j].url != r2[j].url {
				t.Fatalf("graph %s: rankings diverge at %d: %s vs %s", name, j, r1[j].url, r2[j].url)
			}
		}
		first[r1[0].url] = true
	}
	if len(first) < 3 {
		t.Errorf("32 graphs landed on only %d of 4 workers — rendezvous not spreading", len(first))
	}
}

// TestWorkerProtocol drives the worker HTTP surface end to end: inventory,
// 412 before push, CRC-checked snapshot push, slab execution, CRC pinning.
func TestWorkerProtocol(t *testing.T) {
	g := testGraph(t, 7)
	_, srv := newTestWorker(t)
	client := srv.Client()

	// Empty inventory.
	resp, err := client.Get(srv.URL + PathGraphs)
	if err != nil {
		t.Fatal(err)
	}
	var inv GraphsResponse
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(inv.Graphs) != 0 {
		t.Fatalf("fresh worker has graphs %v", inv.Graphs)
	}

	var snap bytes.Buffer
	if err := graph.WriteSnapshot(&snap, g); err != nil {
		t.Fatal(err)
	}
	crc, err := SnapshotCRC(g)
	if err != nil {
		t.Fatal(err)
	}

	// Slab against an unregistered graph → 412.
	slabReq, _ := json.Marshal(SlabRequest{Graph: "net", GraphCRC: crc, Job: testPayload(), SplitVar: -1, Level: 0})
	resp, err = client.Post(srv.URL+PathSlab, "application/json", bytes.NewReader(slabReq))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("slab before push: status %d, want 412", resp.StatusCode)
	}

	// Push with a wrong CRC claim → 400.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+PathGraphs+"/net?crc=deadbeef", bytes.NewReader(snap.Bytes()))
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("push with bad crc: status %d, want 400", resp.StatusCode)
	}

	// Proper push → 201, inventory shows the content address.
	req, _ = http.NewRequest(http.MethodPut, fmt.Sprintf("%s%s/net?crc=%08x", srv.URL, PathGraphs, crc), bytes.NewReader(snap.Bytes()))
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("push: status %d, want 201", resp.StatusCode)
	}
	resp, err = client.Get(srv.URL + PathGraphs)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if inv.Graphs["net"] != crc {
		t.Fatalf("inventory %v, want net@%08x", inv.Graphs, crc)
	}

	// Slab with a mismatched pin → 412 (the worker holds a different version).
	badPin, _ := json.Marshal(SlabRequest{Graph: "net", GraphCRC: crc + 1, Job: testPayload(), SplitVar: -1, Level: 0})
	resp, err = client.Post(srv.URL+PathSlab, "application/json", bytes.NewReader(badPin))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("slab with wrong pin: status %d, want 412", resp.StatusCode)
	}

	// A real slab executes and answers entries + stats; the request ID is
	// echoed back.
	cfg, err := BuildConfig(testPayload(), g)
	if err != nil {
		t.Fatal(err)
	}
	plan := core.PlanSlabs(cfg.Template)
	total := 0
	for _, level := range plan.Levels {
		body, _ := json.Marshal(SlabRequest{Graph: "net", GraphCRC: crc, Job: testPayload(), SplitVar: plan.SplitVar, Level: level})
		req, _ := http.NewRequest(http.MethodPost, srv.URL+PathSlab, bytes.NewReader(body))
		req.Header.Set(requestIDHeader, "test-req/s0/a1")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("slab level %d: status %d", level, resp.StatusCode)
		}
		if got := resp.Header.Get(requestIDHeader); got != "test-req/s0/a1" {
			t.Fatalf("request ID not echoed: %q", got)
		}
		var out SlabResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		total += len(out.Entries)
		if out.Stats.Verified == 0 {
			t.Fatalf("slab level %d verified nothing", level)
		}
	}
	if total == 0 {
		t.Fatal("no slab produced entries")
	}
}

// TestCoordinatorEquivalence: a distributed run over two in-process
// workers produces the single-process ParQGen archive at box granularity,
// pushing each snapshot at most once per worker.
func TestCoordinatorEquivalence(t *testing.T) {
	g := testGraph(t, 11)
	wa, sa := newTestWorker(t)
	wb, sb := newTestWorker(t)
	c := newTestCoordinator(t, CoordinatorOptions{Workers: []string{sa.URL, sb.URL}, Replicas: 2})

	p := testPayload()
	var slabsSeen atomic.Int64
	res, err := c.RunJob(context.Background(), JobRequest{
		Graph: "net", G: g, Payload: p, RequestID: "j000001",
		OnSlab: func(done, total int, worker string) {
			slabsSeen.Add(1)
			if worker == "" {
				t.Error("OnSlab without worker attribution")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := refResult(t, p, g)
	assertMatchesReference(t, res, ref, res.Eps)
	if int(slabsSeen.Load()) != res.Slabs {
		t.Errorf("OnSlab fired %d times for %d slabs", slabsSeen.Load(), res.Slabs)
	}
	if res.Stats.Spawned != ref.Stats.Spawned || res.Stats.Verified != ref.Stats.Verified ||
		res.Stats.Feasible != ref.Stats.Feasible || res.Stats.Pruned != ref.Stats.Pruned {
		t.Errorf("distributed stats %+v != reference spawned=%d verified=%d feasible=%d pruned=%d",
			res.Stats, ref.Stats.Spawned, ref.Stats.Verified, ref.Stats.Feasible, ref.Stats.Pruned)
	}
	// Entries are presented like the single-process result: diversity
	// descending.
	for i := 1; i < len(res.Entries); i++ {
		if res.Entries[i].Div > res.Entries[i-1].Div {
			t.Errorf("entries not sorted by diversity: %v before %v", res.Entries[i-1], res.Entries[i])
		}
	}

	// Both workers participated and each received the snapshot exactly once.
	if wa.snapshotsIn.Load()+wb.snapshotsIn.Load() != 2 {
		t.Errorf("snapshot pushes: worker A %d, worker B %d; want one each", wa.snapshotsIn.Load(), wb.snapshotsIn.Load())
	}
	if wa.slabsRun.Load() == 0 || wb.slabsRun.Load() == 0 {
		t.Errorf("slab spread: A ran %d, B ran %d; want both > 0", wa.slabsRun.Load(), wb.slabsRun.Load())
	}

	// A second job on the same graph re-pushes nothing: the content
	// address matches the workers' inventories.
	if _, err := c.RunJob(context.Background(), JobRequest{Graph: "net", G: g, Payload: p, RequestID: "j000002"}); err != nil {
		t.Fatal(err)
	}
	if wa.snapshotsIn.Load()+wb.snapshotsIn.Load() != 2 {
		t.Errorf("second job re-pushed snapshots: A %d, B %d", wa.snapshotsIn.Load(), wb.snapshotsIn.Load())
	}

	m := c.MetricsSnapshot()
	if m["liveWorkers"].(int) != 2 {
		t.Errorf("liveWorkers %v, want 2", m["liveWorkers"])
	}
	if m["jobsDistributed"].(int64) != 2 {
		t.Errorf("jobsDistributed %v, want 2", m["jobsDistributed"])
	}
}

// TestCoordinatorPreloadedWorker: a worker that already holds the graph
// (daemon -graph preload) is never pushed to — the coordinator trusts the
// content address in the worker's inventory.
func TestCoordinatorPreloadedWorker(t *testing.T) {
	g := testGraph(t, 13)
	w, srv := newTestWorker(t)
	if err := w.RegisterGraph("net", g); err != nil {
		t.Fatal(err)
	}
	c := newTestCoordinator(t, CoordinatorOptions{Workers: []string{srv.URL}})
	res, err := c.RunJob(context.Background(), JobRequest{Graph: "net", G: g, Payload: testPayload(), RequestID: "j1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("empty distributed result")
	}
	if w.snapshotsIn.Load() != 0 {
		t.Errorf("coordinator pushed %d snapshots to a preloaded worker", w.snapshotsIn.Load())
	}
	if c.pushes.Load() != 0 {
		t.Errorf("coordinator counted %d pushes", c.pushes.Load())
	}
}

// killableWorker lets a bounded number of slab requests through, then
// simulates the worker process dying: every later connection — slabs and
// health checks alike — is hijacked and dropped.
type killableWorker struct {
	inner http.Handler
	slabs atomic.Int64
	dead  atomic.Bool
}

func (k *killableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == PathSlab && k.slabs.Add(1) > 1 {
		k.dead.Store(true)
	}
	if k.dead.Load() {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server must support hijack")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	k.inner.ServeHTTP(w, r)
}

// TestCoordinatorFailover kills one of two workers after its first slab
// request: the job must complete via failover, with the slabs that died
// re-run on the survivor, and the merged archive must still match the
// single-process reference — no lost and no double-counted slabs.
func TestCoordinatorFailover(t *testing.T) {
	g := testGraph(t, 17)
	wa := NewWorker(WorkerOptions{})
	ka := &killableWorker{inner: wa.Handler()}
	sa := httptest.NewServer(ka)
	defer sa.Close()
	wb, sb := newTestWorker(t)
	c := newTestCoordinator(t, CoordinatorOptions{
		Workers: []string{sa.URL, sb.URL}, Replicas: 2,
		SlabRetries: 5,
	})

	p := testPayload()
	res, err := c.RunJob(context.Background(), JobRequest{
		Graph: "net", G: g, Payload: p, RequestID: "j-failover",
	})
	if err != nil {
		t.Fatalf("job did not survive worker death: %v", err)
	}
	ref := refResult(t, p, g)
	assertMatchesReference(t, res, ref, res.Eps)
	if res.Stats != (core.SlabStats{
		Spawned: ref.Stats.Spawned, Verified: ref.Stats.Verified,
		Feasible: ref.Stats.Feasible, Pruned: ref.Stats.Pruned, IncScores: res.Stats.IncScores,
	}) {
		t.Errorf("failover lost or duplicated slabs: stats %+v vs reference spawned=%d verified=%d feasible=%d pruned=%d",
			res.Stats, ref.Stats.Spawned, ref.Stats.Verified, ref.Stats.Feasible, ref.Stats.Pruned)
	}
	if wb.slabsRun.Load() == 0 {
		t.Error("survivor ran no slabs")
	}
	if !ka.dead.Load() {
		t.Fatal("doomed worker was never asked for a second slab; test exercised nothing")
	}
	if res.Retried == 0 {
		t.Error("worker died mid-job but no slab was retried")
	}
	if c.LiveWorkers() != 1 {
		t.Errorf("live workers %d after death, want 1", c.LiveWorkers())
	}
}

// TestCoordinatorWorkerRestart: a worker that loses its state (process
// restart) answers 412 on the next slab; the coordinator re-pushes inline
// and the job still succeeds.
func TestCoordinatorWorkerRestart(t *testing.T) {
	g := testGraph(t, 19)
	var cur atomic.Pointer[Worker]
	cur.Store(NewWorker(WorkerOptions{}))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()
	c := newTestCoordinator(t, CoordinatorOptions{Workers: []string{srv.URL}})

	p := testPayload()
	if _, err := c.RunJob(context.Background(), JobRequest{Graph: "net", G: g, Payload: p, RequestID: "j1"}); err != nil {
		t.Fatal(err)
	}
	// "Restart" the worker: fresh state behind the same address. The
	// coordinator's push record now lies.
	cur.Store(NewWorker(WorkerOptions{}))
	res, err := c.RunJob(context.Background(), JobRequest{Graph: "net", G: g, Payload: p, RequestID: "j2"})
	if err != nil {
		t.Fatalf("job after worker restart: %v", err)
	}
	assertMatchesReference(t, res, refResult(t, p, g), res.Eps)
	if cur.Load().snapshotsIn.Load() != 1 {
		t.Errorf("restarted worker received %d pushes, want exactly 1", cur.Load().snapshotsIn.Load())
	}
}

// TestCoordinatorAllWorkersDead: with every worker unreachable the job
// fails with a useful error instead of hanging.
func TestCoordinatorAllWorkersDead(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens anymore
	c := newTestCoordinator(t, CoordinatorOptions{
		Workers: []string{url}, SlabRetries: 2, RetryBase: time.Millisecond,
	})
	g := testGraph(t, 23)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := c.RunJob(ctx, JobRequest{Graph: "net", G: g, Payload: testPayload(), RequestID: "j1"})
	if err == nil {
		t.Fatal("job against a dead fleet succeeded")
	}
	if c.LiveWorkers() != 0 {
		t.Errorf("live workers %d, want 0", c.LiveWorkers())
	}
}

// TestCoordinatorHealthRevival: a worker that comes back is revived by
// the /readyz sweep and serves jobs again.
func TestCoordinatorHealthRevival(t *testing.T) {
	w, srv := newTestWorker(t)
	_ = w
	c := newTestCoordinator(t, CoordinatorOptions{Workers: []string{srv.URL}, HealthInterval: 20 * time.Millisecond})
	c.workers[0].alive.Store(false) // simulate a transport error verdict
	deadline := time.Now().Add(5 * time.Second)
	for c.LiveWorkers() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c.LiveWorkers() != 1 {
		t.Fatal("health sweep never revived a reachable worker")
	}
}

// TestBuildConfigValidation: the shared spec→config path rejects broken
// payloads with useful errors.
func TestBuildConfigValidation(t *testing.T) {
	g := testGraph(t, 29)
	cases := []struct {
		name string
		mut  func(*JobPayload)
	}{
		{"no template", func(p *JobPayload) { p.Template = "" }},
		{"bad template", func(p *JobPayload) { p.Template = "template x\nnode" }},
		{"no groups", func(p *JobPayload) { p.Groups = GroupsPayload{} }},
		{"unknown attr", func(p *JobPayload) { p.Groups.Attr = "nope" }},
		{"bad lambda", func(p *JobPayload) { l := 2.0; p.Lambda = &l }},
		{"negative eps", func(p *JobPayload) { p.Eps = -1 }},
	}
	for _, tc := range cases {
		p := testPayload()
		tc.mut(&p)
		if _, err := BuildConfig(p, g); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The happy path binds ladders deterministically: two independent
	// builds agree on every ladder.
	a, err := BuildConfig(testPayload(), g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildConfig(testPayload(), g)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range a.Template.Vars {
		if !reflect.DeepEqual(a.Template.Vars[vi].Ladder, b.Template.Vars[vi].Ladder) {
			t.Fatalf("var %d: ladders diverge between builds", vi)
		}
	}
}
