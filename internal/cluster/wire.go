package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"fairsqg/internal/core"
)

// Wire paths of the cluster protocol, served by workers.
const (
	// PathSlab executes one slab: POST SlabRequest → SlabResponse.
	PathSlab = "/cluster/slab"
	// PathGraphs lists registered graphs with their snapshot CRCs (GET)
	// and accepts pushed snapshots (PUT /cluster/graphs/{name}?crc=...).
	PathGraphs = "/cluster/graphs"
)

// requestIDHeader carries the coordinator's request ID across the
// coordinator→worker hop, so one job's slab fan-out correlates in both
// processes' logs.
const requestIDHeader = "X-Request-Id"

// SlabRequest asks a worker to execute one slab of a job's instance
// lattice against a locally registered graph.
type SlabRequest struct {
	// Graph names the graph; GraphCRC pins the exact snapshot content the
	// coordinator planned against. A worker holding a different (or no)
	// version answers 412 so the coordinator re-pushes and retries.
	Graph    string `json:"graph"`
	GraphCRC uint32 `json:"graphCrc"`
	// Job rebuilds the run configuration on the worker.
	Job JobPayload `json:"job"`
	// SplitVar and Level pin the slab (see core.SlabPlan).
	SplitVar int `json:"splitVar"`
	Level    int `json:"level"`
}

// SlabResponse is a worker's serialized slab result.
type SlabResponse struct {
	Entries   []core.SlabEntry `json:"entries"`
	Stats     core.SlabStats   `json:"stats"`
	ElapsedMs float64          `json:"elapsedMs"`

	// worker records which worker answered; coordinator-side only.
	worker string
}

// GraphsResponse lists a worker's registered graphs by snapshot CRC — the
// content-addressed inventory the coordinator consults before pushing.
type GraphsResponse struct {
	Graphs map[string]uint32 `json:"graphs"`
}

// wireError is the JSON error body of non-2xx cluster responses.
type wireError struct {
	Error string `json:"error"`
}

func writeWireJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeWireError(w http.ResponseWriter, code int, format string, args ...any) {
	writeWireJSON(w, code, wireError{Error: fmt.Sprintf(format, args...)})
}

// readJSON strictly decodes one JSON value from r, bounded at 8 MiB.
func readJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, 8<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// Logger is the minimal interface the cluster components log through;
// *log.Logger satisfies it. A nil logger silences output.
type Logger interface {
	Printf(format string, args ...any)
}
