package cluster

import (
	"fmt"
	"sync"
)

// slabBucketsMs are the upper bounds of the coordinator's slab latency
// histogram, in milliseconds; the implicit last bucket is +Inf. Slabs are
// coarser than single HTTP requests, so the scale starts higher than the
// daemon's request histogram.
var slabBucketsMs = []float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// latencyHistogram is a fixed-bucket histogram safe for concurrent use,
// mirroring the daemon's /metrics histogram shape.
type latencyHistogram struct {
	mu      sync.Mutex
	count   int64
	sumMs   float64
	buckets []int64 // len(slabBucketsMs)+1, last = overflow
}

func newLatencyHistogram() *latencyHistogram {
	return &latencyHistogram{buckets: make([]int64, len(slabBucketsMs)+1)}
}

func (h *latencyHistogram) observe(ms float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sumMs += ms
	for i, ub := range slabBucketsMs {
		if ms <= ub {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.buckets)-1]++
}

// snapshot renders cumulative "le" counts, the shape Prometheus-style
// scrapers expect.
func (h *latencyHistogram) snapshot() map[string]any {
	h.mu.Lock()
	defer h.mu.Unlock()
	le := make(map[string]int64, len(h.buckets))
	cum := int64(0)
	for i, ub := range slabBucketsMs {
		cum += h.buckets[i]
		le[fmt.Sprintf("%g", ub)] = cum
	}
	cum += h.buckets[len(h.buckets)-1]
	le["+Inf"] = cum
	return map[string]any{"count": h.count, "sumMs": h.sumMs, "le": le}
}
