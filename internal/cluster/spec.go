// Package cluster distributes fairsqgd's slab-parallel query generation
// across processes: a coordinator plans a job's instance lattice into
// slabs (core.PlanSlabs), places each graph on a subset of worker daemons
// by rendezvous hashing, ships the graph's binary snapshot to the workers
// that need it (content-addressed by snapshot CRC), dispatches slabs with
// bounded in-flight per worker plus timeout/retry/failover, and merges the
// returned slab archives through pareto.Archive.Update — so the
// distributed result stays inside the ε-Pareto contract and, with the
// deterministic merge order, matches a single-process ParQGen run at box
// granularity.
package cluster

import (
	"fmt"

	"fairsqg/internal/core"
	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/query"
)

// DefaultMaxPairs mirrors the service-level default pairwise-evaluation
// cap applied when a job payload leaves MaxPairs zero.
const DefaultMaxPairs = 20000

// JobPayload is the algorithm-independent job description that crosses
// the coordinator→worker wire: everything needed to rebuild an identical
// core.Config against a local copy of the graph. Ladder binding is
// deterministic for a given graph, and the graph itself is
// content-addressed by snapshot CRC, so a worker rebuilding the config
// from this payload explores exactly the lattice the coordinator planned.
type JobPayload struct {
	// Template is the query template in the textual DSL; range variables
	// without explicit ladders are bound against the graph, capped at
	// MaxDomain values.
	Template string `json:"template"`
	// Groups declares the fairness groups and coverage constraints.
	Groups GroupsPayload `json:"groups"`
	// Eps is the ε-dominance tolerance (default 0.05).
	Eps float64 `json:"eps,omitempty"`
	// Lambda balances relevance against dissimilarity (nil selects the
	// default 0.5; an explicit 0 requests the pure-relevance objective).
	Lambda *float64 `json:"lambda,omitempty"`
	// MaxDomain caps each bound value ladder (default 8).
	MaxDomain int `json:"maxDomain,omitempty"`
	// MaxPairs caps pairwise diversity evaluations (default
	// DefaultMaxPairs; negative requests exact scoring).
	MaxPairs int `json:"maxPairs,omitempty"`
	// DistanceAttrs restricts the tuple distance to these attributes.
	DistanceAttrs []string `json:"distanceAttrs,omitempty"`
}

// GroupsPayload selects the node groups P and their constraints c_i.
type GroupsPayload struct {
	// Label and Attr induce the groups: nodes with Label partitioned by
	// the values of Attr.
	Label string `json:"label"`
	Attr  string `json:"attr"`
	// Values restricts the partition to these attribute values (empty =
	// every value).
	Values []string `json:"values,omitempty"`
	// Cover is the per-group equal-opportunity constraint; Total, when
	// positive, overrides it by splitting a total budget evenly.
	Cover int `json:"cover,omitempty"`
	Total int `json:"total,omitempty"`
}

// BuildConfig materializes a payload into a validated core.Config against
// g. It is the single source of truth for spec→config semantics: the
// fairsqgd job API delegates here for local runs, and workers call it to
// rebuild a coordinator's job, which is what keeps the two sides'
// lattices identical. The returned config has no engine bound; callers
// attach their own.
func BuildConfig(p JobPayload, g *graph.Graph) (*core.Config, error) {
	if p.Template == "" {
		return nil, fmt.Errorf("cluster: job needs a template")
	}
	tpl, err := query.ParseString(p.Template)
	if err != nil {
		return nil, err
	}
	if err := bindMissingLadders(tpl, g, p.MaxDomain); err != nil {
		return nil, err
	}
	gs := p.Groups
	if gs.Label == "" || gs.Attr == "" {
		return nil, fmt.Errorf("cluster: job needs groups.label and groups.attr")
	}
	var set groups.Set
	if len(gs.Values) > 0 {
		set = groups.ByValues(g, gs.Label, gs.Attr, gs.Values...)
	} else {
		set = groups.ByAttribute(g, gs.Label, gs.Attr)
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("cluster: no groups for %s.%s", gs.Label, gs.Attr)
	}
	if gs.Total > 0 {
		set = groups.SplitEvenly(set, gs.Total)
	} else {
		set = groups.EqualOpportunity(set, gs.Cover)
	}
	eps := p.Eps
	if eps == 0 {
		eps = 0.05
	}
	maxPairs := p.MaxPairs
	if maxPairs == 0 {
		maxPairs = DefaultMaxPairs
	}
	cfg := &core.Config{
		G:             g,
		Template:      tpl,
		Groups:        set,
		Eps:           eps,
		MaxPairs:      maxPairs,
		DistanceAttrs: p.DistanceAttrs,
	}
	if p.Lambda != nil {
		cfg.Lambda = *p.Lambda
		cfg.LambdaSet = true
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// bindMissingLadders binds value ladders for range variables the DSL left
// unbound, preserving explicitly pinned ladders (Template.BindDomains
// overwrites every variable, so pinned ones are saved and restored).
// Binding scans the frozen graph deterministically, so two processes
// holding byte-identical snapshots derive identical ladders.
func bindMissingLadders(tpl *query.Template, g *graph.Graph, maxDomain int) error {
	if maxDomain <= 0 {
		maxDomain = 8
	}
	pinned := map[int][]graph.Value{}
	needsBind := false
	for vi := range tpl.Vars {
		v := &tpl.Vars[vi]
		if v.Kind != query.RangeVar {
			continue
		}
		if len(v.Ladder) > 0 {
			pinned[vi] = v.Ladder
		} else {
			needsBind = true
		}
	}
	if !needsBind {
		return nil
	}
	if err := tpl.BindDomains(g, query.DomainOptions{MaxValues: maxDomain}); err != nil {
		return err
	}
	for vi, ladder := range pinned {
		tpl.Vars[vi].Ladder = ladder
	}
	return nil
}
