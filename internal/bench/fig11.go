package bench

import (
	"fmt"

	"fairsqg/internal/core"
	"fairsqg/internal/gen"
	"fairsqg/internal/pareto"
)

// onlineWorkload builds the Exp-3 setting: the LKI dataset with a fixed
// template whose random instantiations form the instance stream.
func (h *Harness) onlineWorkload() (*workload, error) {
	return h.buildWorkload(workloadParams{
		dataset: gen.LKI, size: 4, rangeVars: 2, edgeVars: 1,
		numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: 0.05,
		maxDomain: 2 * h.opts.maxDomain(),
	})
}

// Fig11a reproduces Fig. 11(a): OnlineQGen's delay to process a batch of
// instances, varying k from 5 to 20 with (batch, window) ∈
// {(40, 10), (80, 40)}. Value is the mean per-batch delay in milliseconds.
func (h *Harness) Fig11a() ([]Row, error) {
	w, err := h.onlineWorkload()
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, bw := range []struct{ batch, window int }{{40, 10}, {80, 40}} {
		for _, k := range []int{5, 10, 15, 20} {
			r, err := core.NewRunner(w.cfg)
			if err != nil {
				return nil, err
			}
			stream := core.NewRandomStream(w.tpl, h.opts.streamLen(), h.opts.Seed+11)
			res, err := r.OnlineQGen(stream, core.OnlineOptions{
				K: k, Window: bw.window, InitialEps: w.cfg.Eps,
			})
			if err != nil {
				return nil, err
			}
			// Aggregate per-instance delays into batches.
			total := 0.0
			batches := 0
			cur := 0.0
			for i, d := range res.Delays {
				cur += d.Seconds()
				if (i+1)%bw.batch == 0 {
					total += cur
					batches++
					cur = 0
				}
			}
			if batches == 0 {
				batches, total = 1, cur
			}
			rows = append(rows, Row{
				Exp:    "fig11a",
				Series: fmt.Sprintf("batch=%d w=%d", bw.batch, bw.window),
				X:      fmt.Sprintf("k=%d", k),
				Value:  total / float64(batches) * 1000, // ms per batch
				Extra: map[string]float64{
					"finalEps": res.Eps,
					"size":     float64(len(res.Set)),
				},
			})
		}
	}
	return rows, nil
}

// Fig11b reproduces Fig. 11(b): OnlineQGen's anytime effectiveness — I_ε
// of the maintained set against the feasible instances seen so far — for
// k ∈ {10, 20} and w ∈ {40, 80}, sampled at eight checkpoints across the
// stream.
func (h *Harness) Fig11b() ([]Row, error) {
	w, err := h.onlineWorkload()
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, kw := range []struct{ k, window int }{{10, 40}, {10, 80}, {20, 40}, {20, 80}} {
		cfg := *w.cfg
		var seen []pareto.Point
		cfg.OnVerified = func(ev core.VerifyEvent) {
			if ev.Feasible {
				seen = append(seen, ev.Point)
			}
		}
		r, err := core.NewRunner(&cfg)
		if err != nil {
			return nil, err
		}
		series := fmt.Sprintf("k=%d w=%d", kw.k, kw.window)
		every := h.opts.streamLen() / 8
		if every < 1 {
			every = 1
		}
		stream := core.NewRandomStream(w.tpl, h.opts.streamLen(), h.opts.Seed+13)
		_, err = r.OnlineQGen(stream, core.OnlineOptions{
			K: kw.k, Window: kw.window, InitialEps: cfg.Eps,
			CheckpointEvery: every,
			OnCheckpoint: func(cp core.OnlineCheckpoint) {
				rows = append(rows, Row{
					Exp:    "fig11b",
					Series: series,
					X:      fmt.Sprintf("n=%d", cp.Processed),
					Value:  pareto.EpsIndicator(cp.Points, seen, cp.Eps),
					Extra:  map[string]float64{"eps": cp.Eps, "size": float64(len(cp.Points))},
				})
			},
		})
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
