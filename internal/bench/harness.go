// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section V) over the synthetic datasets.
// Each experiment is addressed by the identifier from DESIGN.md's
// per-experiment index (table2, fig9a … fig12, cbm, pruning) and returns
// rows mirroring the series the paper plots.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"fairsqg/internal/core"
	"fairsqg/internal/gen"
	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/match"
	"fairsqg/internal/measure"
	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// Options scales the harness.
type Options struct {
	// Nodes overrides the node budget per dataset; 0 entries use
	// gen.DefaultNodes. The "Quick" preset in tests shrinks everything.
	Nodes map[string]int
	// Seed drives dataset and template generation.
	Seed int64
	// TotalC overrides the default total coverage budget C (default 200).
	TotalC int
	// MaxDomain caps range-variable ladders (default 8).
	MaxDomain int
	// MaxPairs caps pairwise diversity evaluations (default 20000).
	MaxPairs int
	// StreamLen is the online experiments' stream length (default 240).
	StreamLen int
}

func (o Options) nodes(dataset string) int {
	if n := o.Nodes[dataset]; n > 0 {
		return n
	}
	return gen.DefaultNodes(dataset)
}

func (o Options) totalC() int {
	if o.TotalC > 0 {
		return o.TotalC
	}
	return 200
}

func (o Options) maxDomain() int {
	if o.MaxDomain > 0 {
		return o.MaxDomain
	}
	return 8
}

func (o Options) maxPairs() int {
	if o.MaxPairs > 0 {
		return o.MaxPairs
	}
	return 20000
}

func (o Options) streamLen() int {
	if o.StreamLen > 0 {
		return o.StreamLen
	}
	return 240
}

// Harness caches datasets and runs experiments.
type Harness struct {
	opts Options

	mu     sync.Mutex
	graphs map[string]*graph.Graph
}

// New returns a harness.
func New(opts Options) *Harness {
	return &Harness{opts: opts, graphs: make(map[string]*graph.Graph)}
}

// Row is one data point of an experiment: (series, x) → value, with
// secondary metrics in Extra.
type Row struct {
	Exp    string
	Series string
	X      string
	Value  float64
	Extra  map[string]float64
}

// Experiments lists the available experiment identifiers in run order.
func Experiments() []string {
	return []string{
		"table2", "fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f",
		"fig9gh", "cbm", "fig10a", "fig10b", "fig10c", "fig10d",
		"fig11a", "fig11b", "fig12", "pruning", "ablation",
	}
}

// Run executes one experiment by identifier.
func (h *Harness) Run(exp string) ([]Row, error) {
	switch exp {
	case "table2":
		return h.Table2()
	case "fig9a":
		return h.Fig9a()
	case "fig9b":
		return h.Fig9b()
	case "fig9c":
		return h.Fig9c()
	case "fig9d":
		return h.Fig9d()
	case "fig9e":
		return h.Fig9e()
	case "fig9f":
		return h.Fig9f()
	case "fig9gh":
		return h.Fig9gh()
	case "cbm":
		return h.CBMComparison()
	case "fig10a":
		return h.Fig10a()
	case "fig10b":
		return h.Fig10b()
	case "fig10c":
		return h.Fig10c()
	case "fig10d":
		return h.Fig10d()
	case "fig11a":
		return h.Fig11a()
	case "fig11b":
		return h.Fig11b()
	case "fig12":
		return h.Fig12()
	case "pruning":
		return h.Pruning()
	case "ablation":
		return h.Ablation()
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (want one of %s)",
			exp, strings.Join(Experiments(), ", "))
	}
}

// Dataset returns the (cached) synthetic graph for a dataset name.
func (h *Harness) Dataset(name string) (*graph.Graph, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if g, ok := h.graphs[name]; ok {
		return g, nil
	}
	g, err := gen.Build(name, gen.Options{Nodes: h.opts.nodes(name), Seed: h.opts.Seed})
	if err != nil {
		return nil, err
	}
	h.graphs[name] = g
	return g, nil
}

// groupAttr names the grouping attribute and its node label per dataset.
func groupAttr(dataset string) (label, attr string) {
	switch dataset {
	case gen.DBP:
		return "Movie", "genre"
	case gen.Cite:
		return "Paper", "topic"
	default:
		return "Person", "gender"
	}
}

// distanceAttrs restricts the tuple distance to the informative attributes
// per dataset (keeps δ cheap and meaningful).
func distanceAttrs(dataset string) []string {
	switch dataset {
	case gen.DBP:
		return []string{"genre", "rating", "year"}
	case gen.Cite:
		return []string{"topic", "numberOfCitations"}
	default:
		return []string{"major", "yearsOfExp"}
	}
}

// workloadParams selects a template shape.
type workloadParams struct {
	dataset   string
	size      int // |Q(u_o)|
	rangeVars int // |X_L|
	edgeVars  int // |X_E|
	numGroups int // |P|
	totalC    int // C, split evenly
	eps       float64
	// maxDomain overrides the per-variable ladder cap (0 = harness
	// default). Experiments with few range variables raise it so the
	// instance space reaches the paper's |I(Q)| regime (~10²-10³).
	maxDomain int
	// tightness, when positive, derives each c_i as tightness × the root
	// instance's answer count in P_i instead of splitting totalC. The
	// paper's settings (e.g. c=100 against 548 candidates) put the
	// constraints in this "biting" regime regardless of graph scale.
	tightness float64
}

// workload is a ready-to-run configuration.
type workload struct {
	g   *graph.Graph
	tpl *query.Template
	set groups.Set
	cfg *core.Config
}

// buildWorkload generates a feasible workload for the parameters: dataset
// graph, a generated template whose root instance is feasible, and the
// |P| largest groups of the dataset's grouping attribute with C split
// evenly (the paper's equal-opportunity setting).
func (h *Harness) buildWorkload(p workloadParams) (*workload, error) {
	g, err := h.Dataset(p.dataset)
	if err != nil {
		return nil, err
	}
	label, attr := groupAttr(p.dataset)
	all := groups.ByAttribute(g, label, attr)
	if len(all) < p.numGroups {
		return nil, fmt.Errorf("bench: dataset %s has only %d groups of %s", p.dataset, len(all), attr)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Size() > all[j].Size() })
	set := all[:p.numGroups]
	if p.tightness > 0 {
		// Constraints are derived from the root answer below; the probe
		// only requires every group to be represented at all.
		groups.EqualOpportunity(set, 1)
	} else {
		groups.SplitEvenly(set, p.totalC)
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	schema, err := gen.SchemaFor(p.dataset)
	if err != nil {
		return nil, err
	}
	m := match.New(g)
	probe := func(tpl *query.Template) bool {
		root := query.MustInstance(tpl, query.Root(tpl))
		matches := m.EvalOutput(root)
		return measure.Feasible(set, matches)
	}
	// LKI templates use the selective director filter only when the
	// director population can still satisfy the constraints; group sizes
	// are checked by the probe either way.
	params := gen.TemplateParams{
		Size:      p.size,
		RangeVars: p.rangeVars,
		EdgeVars:  p.edgeVars,
		Selective: p.dataset == gen.LKI,
		Seed:      h.opts.Seed + 1,
	}
	maxDomain := p.maxDomain
	if maxDomain <= 0 {
		maxDomain = h.opts.maxDomain()
	}
	tpl, err := gen.GenerateFeasibleTemplate(g, schema, params, maxDomain, 40, probe)
	if err != nil {
		return nil, fmt.Errorf("bench: %s workload: %w", p.dataset, err)
	}
	if p.tightness > 0 {
		root := query.MustInstance(tpl, query.Root(tpl))
		counts := set.Count(m.EvalOutput(root))
		for i := range set {
			want := int(p.tightness * float64(counts[i]))
			if want < 1 {
				want = 1
			}
			set[i].Want = want
		}
	}
	cfg := &core.Config{
		G:             g,
		Template:      tpl,
		Groups:        set,
		Eps:           p.eps,
		DistanceAttrs: distanceAttrs(p.dataset),
		MaxPairs:      h.opts.maxPairs(),
	}
	return &workload{g: g, tpl: tpl, set: set, cfg: cfg}, nil
}

// referencePoints enumerates the feasible instance space once and returns
// its quality points plus the objective maxima used for normalization.
func referencePoints(w *workload) ([]pareto.Point, float64, float64, error) {
	r, err := core.NewRunner(w.cfg)
	if err != nil {
		return nil, 0, 0, err
	}
	feasible, err := r.AllFeasible()
	if err != nil {
		return nil, 0, 0, err
	}
	pts := make([]pareto.Point, len(feasible))
	var divMax, covMax float64
	for i, v := range feasible {
		pts[i] = v.Point
		if v.Point.Div > divMax {
			divMax = v.Point.Div
		}
		if v.Point.Cov > covMax {
			covMax = v.Point.Cov
		}
	}
	return pts, divMax, covMax, nil
}

// domainForRangeVars picks a per-variable ladder cap so the instance space
// (md+1)^xl stays near the paper's |I(Q)| regime (hundreds to ~1500) as
// |X_L| grows: md ≈ (120·base)^(1/xl).
func domainForRangeVars(xl, base int) int {
	target := float64(120 * base)
	md := int(math.Pow(target, 1/float64(xl)))
	if md < 2 {
		md = 2
	}
	return md
}

// FormatCSV renders rows as CSV with a header, one line per row; Extra
// metrics are flattened into key=value pairs in the final column.
func FormatCSV(rows []Row) string {
	var b strings.Builder
	b.WriteString("experiment,series,x,value,extra\n")
	for _, r := range rows {
		keys := make([]string, 0, len(r.Extra))
		for k := range r.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var extras []string
		for _, k := range keys {
			extras = append(extras, fmt.Sprintf("%s=%g", k, r.Extra[k]))
		}
		fmt.Fprintf(&b, "%s,%s,%s,%g,%s\n",
			csvEscape(r.Exp), csvEscape(r.Series), csvEscape(r.X), r.Value,
			csvEscape(strings.Join(extras, ";")))
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// FormatRows renders rows as an aligned text table grouped by experiment.
func FormatRows(rows []Row) string {
	var b strings.Builder
	var lastExp string
	for _, r := range rows {
		if r.Exp != lastExp {
			fmt.Fprintf(&b, "== %s ==\n", r.Exp)
			lastExp = r.Exp
		}
		fmt.Fprintf(&b, "%-22s %-14s %10.4f", r.Series, r.X, r.Value)
		if len(r.Extra) > 0 {
			keys := make([]string, 0, len(r.Extra))
			for k := range r.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "  %s=%.4g", k, r.Extra[k])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
