package bench

import (
	"bytes"
	"testing"

	"fairsqg/internal/gen"
	"fairsqg/internal/graph"
)

// BenchmarkSnapshotLoad compares the two ways a server start can get a
// frozen 100k-node graph into memory: decoding the binary snapshot
// (frozen layout restored directly) versus parsing the TSV source and
// re-running Freeze (column transposition + index builds). The snapshot
// path is what fairsqgd's -snapshot-dir warm restart pays per graph.
func BenchmarkSnapshotLoad(b *testing.B) {
	g, err := gen.Build("lki", gen.Options{Nodes: 100000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var snap, tsv bytes.Buffer
	if err := graph.WriteSnapshot(&snap, g); err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteTSV(&tsv, g); err != nil {
		b.Fatal(err)
	}
	b.Logf("graph: %d nodes, %d edges; snapshot %d bytes, tsv %d bytes",
		g.NumNodes(), g.NumEdges(), snap.Len(), tsv.Len())

	b.Run("snapshot", func(b *testing.B) {
		b.SetBytes(int64(snap.Len()))
		for i := 0; i < b.N; i++ {
			got, err := graph.ReadSnapshot(bytes.NewReader(snap.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if got.NumNodes() != g.NumNodes() {
				b.Fatalf("decoded %d nodes, want %d", got.NumNodes(), g.NumNodes())
			}
		}
	})
	b.Run("parse+freeze", func(b *testing.B) {
		b.SetBytes(int64(tsv.Len()))
		for i := 0; i < b.N; i++ {
			got, err := graph.ReadTSV(bytes.NewReader(tsv.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if got.NumNodes() != g.NumNodes() {
				b.Fatalf("parsed %d nodes, want %d", got.NumNodes(), g.NumNodes())
			}
		}
	})
}
