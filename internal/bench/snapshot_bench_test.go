package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fairsqg/internal/gen"
	"fairsqg/internal/graph"
)

// BenchmarkSnapshotLoad compares the two ways a server start can get a
// frozen 100k-node graph into memory: decoding the binary snapshot
// (frozen layout restored directly) versus parsing the TSV source and
// re-running Freeze (column transposition + index builds). The snapshot
// path is what fairsqgd's -snapshot-dir warm restart pays per graph.
func BenchmarkSnapshotLoad(b *testing.B) {
	g, err := gen.Build("lki", gen.Options{Nodes: 100000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var snap, tsv bytes.Buffer
	if err := graph.WriteSnapshot(&snap, g); err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteTSV(&tsv, g); err != nil {
		b.Fatal(err)
	}
	b.Logf("graph: %d nodes, %d edges; snapshot %d bytes, tsv %d bytes",
		g.NumNodes(), g.NumEdges(), snap.Len(), tsv.Len())

	b.Run("snapshot", func(b *testing.B) {
		b.SetBytes(int64(snap.Len()))
		for i := 0; i < b.N; i++ {
			got, err := graph.ReadSnapshot(bytes.NewReader(snap.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if got.NumNodes() != g.NumNodes() {
				b.Fatalf("decoded %d nodes, want %d", got.NumNodes(), g.NumNodes())
			}
		}
	})
	b.Run("parse+freeze", func(b *testing.B) {
		b.SetBytes(int64(tsv.Len()))
		for i := 0; i < b.N; i++ {
			got, err := graph.ReadTSV(bytes.NewReader(tsv.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if got.NumNodes() != g.NumNodes() {
				b.Fatalf("parsed %d nodes, want %d", got.NumNodes(), g.NumNodes())
			}
		}
	})
}

// BenchmarkSnapshotMappedLoad measures open-to-first-query on the same
// 100k-node lki graph: how long until a freshly started process answers
// its first read. The mapped path (mmap + structural validation, no decode
// and no CRC pass) is the -mmap-graphs restore cost; the v1 and v2 heap
// decodes are what a full-decode restore pays. The "query" walks one label
// bucket and its out-edges — enough to fault real pages, small enough not
// to drown the open.
func BenchmarkSnapshotMappedLoad(b *testing.B) {
	g, err := gen.Build("lki", gen.Options{Nodes: 100000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	firstQuery := func(g *graph.Graph) int {
		sum := 0
		for _, v := range g.NodesByLabelID(0) {
			sum += len(g.EdgeRun(v, 0, true)) + g.OutDegree(v)
		}
		return sum
	}
	want := firstQuery(g)

	dir := b.TempDir()
	v2Path := filepath.Join(dir, "g.fsnap")
	v1Path := filepath.Join(dir, "g1.fsnap")
	var v2, v1 bytes.Buffer
	if err := graph.WriteSnapshot(&v2, g); err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteSnapshotV1(&v1, g); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(v2Path, v2.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(v1Path, v1.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("graph: %d nodes, %d edges; v2 snapshot %d bytes, v1 %d bytes",
		g.NumNodes(), g.NumEdges(), v2.Len(), v1.Len())

	b.Run("mapped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := graph.OpenSnapshotMapped(v2Path)
			if err != nil {
				b.Fatal(err)
			}
			if got := firstQuery(m); got != want {
				b.Fatalf("first query = %d, want %d", got, want)
			}
			b.StopTimer() // teardown is not part of open-to-first-query
			if err := m.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("v2-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h, err := graph.ReadSnapshotFile(v2Path)
			if err != nil {
				b.Fatal(err)
			}
			if got := firstQuery(h); got != want {
				b.Fatalf("first query = %d, want %d", got, want)
			}
		}
	})
	b.Run("v1-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h, err := graph.ReadSnapshotFile(v1Path)
			if err != nil {
				b.Fatal(err)
			}
			if got := firstQuery(h); got != want {
				b.Fatalf("first query = %d, want %d", got, want)
			}
		}
	})
}
