package bench

import (
	"fmt"
	"sort"

	"fairsqg/internal/core"
	"fairsqg/internal/gen"
	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// Table2 reproduces Table II: the dataset overview (|V|, |E|, average
// attribute count, group counts, largest active domain).
func (h *Harness) Table2() ([]Row, error) {
	var rows []Row
	for _, ds := range []string{gen.DBP, gen.LKI, gen.Cite} {
		g, err := h.Dataset(ds)
		if err != nil {
			return nil, err
		}
		s := graph.Summarize(g)
		label, attr := groupAttr(ds)
		numGroups := len(groups.ByAttribute(g, label, attr))
		rows = append(rows, Row{
			Exp: "table2", Series: ds, X: "overview",
			Value: float64(s.Nodes),
			Extra: map[string]float64{
				"E":          float64(s.Edges),
				"avgAttrs":   s.AvgAttrs,
				"nodeLabels": float64(s.NodeLabels),
				"edgeLabels": float64(s.EdgeLabels),
				"maxAdom":    float64(s.MaxAdom),
				"groups":     float64(numGroups),
			},
		})
	}
	return rows, nil
}

// CBMComparison reproduces the Exp-1 CBM discussion: under the Fig. 9(a)
// DBP setting it compares Kungs against the constraint-based method in
// runtime and BiQGen against CBM in I_R.
func (h *Harness) CBMComparison() ([]Row, error) {
	w, err := h.buildWorkload(workloadParams{
		dataset: gen.DBP, size: 3, rangeVars: 2, edgeVars: 1,
		numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: 0.01,
		maxDomain: 2 * h.opts.maxDomain(),
	})
	if err != nil {
		return nil, err
	}
	_, divMax, covMax, err := referencePoints(w)
	if err != nil {
		return nil, err
	}
	kr, err := core.NewRunner(w.cfg)
	if err != nil {
		return nil, err
	}
	kres, err := kr.Kungs()
	if err != nil {
		return nil, err
	}
	cr, err := core.NewRunner(w.cfg)
	if err != nil {
		return nil, err
	}
	cres, err := cr.CBM(core.CBMOptions{})
	if err != nil {
		return nil, err
	}
	br, err := core.NewRunner(w.cfg)
	if err != nil {
		return nil, err
	}
	bres, err := br.BiQGen()
	if err != nil {
		return nil, err
	}
	mk := func(name string, res *core.Result) Row {
		return Row{
			Exp: "cbm", Series: name, X: "dbp",
			Value: res.Elapsed.Seconds(),
			Extra: map[string]float64{
				"I_R":  pareto.RIndicator(res.Points(), 0.5, divMax, covMax),
				"size": float64(len(res.Set)),
			},
		}
	}
	return []Row{mk("Kungs", kres), mk("CBM", cres), mk("BiQGen", bres)}, nil
}

// Fig12 reproduces the Exp-4 case study: the movie-search template on DBP
// with equal coverage over two genre groups. For each algorithm it reports
// the three highest-coverage suggested instances with their per-group
// answer counts and the diversity of their answers.
func (h *Harness) Fig12() ([]Row, error) {
	g, err := h.Dataset(gen.DBP)
	if err != nil {
		return nil, err
	}
	tpl := gen.MovieTemplate()
	if err := tpl.BindDomains(g, query.DomainOptions{MaxValues: h.opts.maxDomain()}); err != nil {
		return nil, err
	}
	set := groups.ByValues(g, "Movie", "genre", "Romance", "Horror")
	if len(set) != 2 {
		return nil, fmt.Errorf("bench: fig12 needs Romance and Horror groups")
	}
	// Choose the largest equal constraint the template's root can satisfy,
	// starting from the paper's (100, 100).
	cfg := &core.Config{
		G: g, Template: tpl, Groups: set, Eps: 0.05,
		DistanceAttrs: distanceAttrs(gen.DBP),
		MaxPairs:      h.opts.maxPairs(),
	}
	want := h.opts.totalC() / 2
	for ; want > 0; want /= 2 {
		groups.EqualOpportunity(set, want)
		r, err := core.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		feas, err := r.AllFeasible()
		if err != nil {
			return nil, err
		}
		if len(feas) > 0 {
			break
		}
	}
	if want == 0 {
		return nil, fmt.Errorf("bench: fig12 workload infeasible at any coverage level")
	}
	var rows []Row
	for _, alg := range []algorithm{
		{"RfQGen", (*core.Runner).RfQGen},
		{"BiQGen", (*core.Runner).BiQGen},
	} {
		r, err := core.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		res, err := alg.run(r)
		if err != nil {
			return nil, err
		}
		picked := append([]*core.Verified(nil), res.Set...)
		sort.Slice(picked, func(i, j int) bool { return picked[i].Point.Cov > picked[j].Point.Cov })
		if len(picked) > 3 {
			picked = picked[:3]
		}
		for i, v := range picked {
			counts := set.Count(v.Matches)
			rows = append(rows, Row{
				Exp:    "fig12",
				Series: alg.name,
				X:      fmt.Sprintf("q%d %s", i+1, v.Q.String()),
				Value:  v.Point.Cov,
				Extra: map[string]float64{
					"div":     v.Point.Div,
					"romance": float64(counts[0]),
					"horror":  float64(counts[1]),
					"answers": float64(len(v.Matches)),
				},
			})
		}
	}
	return rows, nil
}

// Pruning quantifies the Exp-1/Exp-2 pruning claims: the fraction of the
// instance space each guided algorithm avoids verifying relative to
// EnumQGen, per dataset under the Fig. 9(a) setting.
func (h *Harness) Pruning() ([]Row, error) {
	var rows []Row
	for _, ds := range []string{gen.DBP, gen.LKI, gen.Cite} {
		w, err := h.buildWorkload(workloadParams{
			dataset: ds, size: 3, rangeVars: 2, edgeVars: 1,
			numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: 0.01,
			maxDomain: 2 * h.opts.maxDomain(),
		})
		if err != nil {
			return nil, err
		}
		er, err := core.NewRunner(w.cfg)
		if err != nil {
			return nil, err
		}
		eres, err := er.EnumQGen()
		if err != nil {
			return nil, err
		}
		for _, alg := range []algorithm{
			{"RfQGen", (*core.Runner).RfQGen},
			{"BiQGen", (*core.Runner).BiQGen},
		} {
			r, err := core.NewRunner(w.cfg)
			if err != nil {
				return nil, err
			}
			res, err := alg.run(r)
			if err != nil {
				return nil, err
			}
			saved := 1 - float64(res.Stats.Verified)/float64(eres.Stats.Verified)
			rows = append(rows, Row{
				Exp: "pruning", Series: alg.name, X: ds,
				Value: saved,
				Extra: map[string]float64{
					"verified":     float64(res.Stats.Verified),
					"enumVerified": float64(eres.Stats.Verified),
				},
			})
		}
	}
	return rows, nil
}

// Ablation benchmarks the design choices DESIGN.md calls out: template
// refinement in Spawn, incremental verification, and sandwich pruning —
// each on/off with runtime and verified counts.
func (h *Harness) Ablation() ([]Row, error) {
	w, err := h.buildWorkload(workloadParams{
		dataset: gen.LKI, size: 4, rangeVars: 2, edgeVars: 1,
		numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: 0.05,
		maxDomain: 2 * h.opts.maxDomain(),
	})
	if err != nil {
		return nil, err
	}
	type variant struct {
		name string
		mod  func(c *core.Config)
		run  func(*core.Runner) (*core.Result, error)
	}
	variants := []variant{
		{"RfQGen", func(*core.Config) {}, (*core.Runner).RfQGen},
		{"RfQGen -tmplrefine", func(c *core.Config) { c.DisableTemplateRefinement = true }, (*core.Runner).RfQGen},
		{"RfQGen -incremental", func(c *core.Config) { c.DisableIncremental = true }, (*core.Runner).RfQGen},
		{"BiQGen", func(*core.Config) {}, (*core.Runner).BiQGen},
		{"BiQGen -sandwich", func(c *core.Config) { c.DisableSandwich = true }, (*core.Runner).BiQGen},
		{"RfQGen -boundprune", func(c *core.Config) { c.DisableBoundPrune = true }, (*core.Runner).RfQGen},
		{"ParQGen w=4", func(*core.Config) {}, func(r *core.Runner) (*core.Result, error) { return r.ParQGen(4) }},
	}
	var rows []Row
	for _, v := range variants {
		cfg := *w.cfg
		v.mod(&cfg)
		r, err := core.NewRunner(&cfg)
		if err != nil {
			return nil, err
		}
		res, err := v.run(r)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Exp: "ablation", Series: v.name, X: "lki",
			Value: res.Elapsed.Seconds(),
			Extra: map[string]float64{
				"verified": float64(res.Stats.Verified),
				"pruned":   float64(res.Stats.Pruned),
				"size":     float64(len(res.Set)),
			},
		})
	}
	return rows, nil
}
