package bench

import (
	"fmt"

	"fairsqg/internal/core"
	"fairsqg/internal/gen"
)

// efficiencyRows runs every algorithm (including Kungs) on a workload and
// emits one runtime row per algorithm; Extra carries verified/spawned
// counts so the pruning factors are visible next to the times.
func (h *Harness) efficiencyRows(exp, x string, w *workload) ([]Row, error) {
	algs := append([]algorithm{{"Kungs", (*core.Runner).Kungs}}, approxAlgorithms()...)
	var rows []Row
	for _, alg := range algs {
		r, err := core.NewRunner(w.cfg)
		if err != nil {
			return nil, err
		}
		res, err := alg.run(r)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Exp: exp, Series: alg.name, X: x,
			Value: res.Elapsed.Seconds(),
			Extra: map[string]float64{
				"verified": float64(res.Stats.Verified),
				"spawned":  float64(res.Stats.Spawned),
				"pruned":   float64(res.Stats.Pruned),
			},
		})
	}
	return rows, nil
}

// Fig10a reproduces Fig. 10(a): runtime of the four algorithms per dataset
// under the Fig. 9(a) setting.
func (h *Harness) Fig10a() ([]Row, error) {
	var rows []Row
	for _, ds := range []string{gen.DBP, gen.LKI, gen.Cite} {
		w, err := h.buildWorkload(workloadParams{
			dataset: ds, size: 3, rangeVars: 2, edgeVars: 1,
			numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: 0.01,
			maxDomain: 2 * h.opts.maxDomain(),
		})
		if err != nil {
			return nil, err
		}
		r, err := h.efficiencyRows("fig10a", ds, w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig10b reproduces Fig. 10(b): runtime on LKI while ε varies (Fig. 9(b)
// setting).
func (h *Harness) Fig10b() ([]Row, error) {
	var rows []Row
	for _, eps := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		w, err := h.buildWorkload(workloadParams{
			dataset: gen.LKI, size: 4, rangeVars: 1, edgeVars: 2,
			numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: eps,
			maxDomain: 10 * h.opts.maxDomain(),
		})
		if err != nil {
			return nil, err
		}
		r, err := h.efficiencyRows("fig10b", fmt.Sprintf("eps=%.1f", eps), w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig10c reproduces Fig. 10(c): runtime on DBP while |X_L| varies
// (Fig. 9(c) setting).
func (h *Harness) Fig10c() ([]Row, error) {
	var rows []Row
	for _, xl := range []int{2, 3, 4, 5} {
		w, err := h.buildWorkload(workloadParams{
			dataset: gen.DBP, size: 4, rangeVars: xl, edgeVars: 1,
			numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: 0.01,
			maxDomain: domainForRangeVars(xl, h.opts.maxDomain()),
		})
		if err != nil {
			return nil, err
		}
		r, err := h.efficiencyRows("fig10c", fmt.Sprintf("|X_L|=%d", xl), w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig10d reproduces Fig. 10(d): runtime on LKI while |X_E| varies
// (Fig. 9(d) setting).
func (h *Harness) Fig10d() ([]Row, error) {
	var rows []Row
	for _, xe := range []int{2, 3, 4, 5} {
		w, err := h.buildWorkload(workloadParams{
			dataset: gen.LKI, size: 5, rangeVars: 1, edgeVars: xe,
			numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: 0.01,
			maxDomain: 4 * h.opts.maxDomain(),
		})
		if err != nil {
			return nil, err
		}
		r, err := h.efficiencyRows("fig10d", fmt.Sprintf("|X_E|=%d", xe), w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}
