package bench

import (
	"strings"
	"testing"

	"fairsqg/internal/gen"
)

// quickHarness shrinks every dataset so the whole experiment suite runs in
// test time.
func quickHarness() *Harness {
	return New(Options{
		Nodes:     map[string]int{gen.DBP: 2500, gen.LKI: 3000, gen.Cite: 2500},
		Seed:      1,
		TotalC:    20,
		MaxDomain: 4,
		MaxPairs:  2000,
		StreamLen: 64,
	})
}

func TestExperimentsListAndUnknown(t *testing.T) {
	h := quickHarness()
	if len(Experiments()) < 15 {
		t.Errorf("experiment registry too small: %v", Experiments())
	}
	if _, err := h.Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable2(t *testing.T) {
	rows, err := quickHarness().Run("table2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Value < 2000 || r.Extra["E"] <= 0 || r.Extra["groups"] < 2 {
			t.Errorf("row %+v implausible", r)
		}
	}
	out := FormatRows(rows)
	if !strings.Contains(out, "== table2 ==") || !strings.Contains(out, "lki") {
		t.Errorf("FormatRows output:\n%s", out)
	}
}

func TestFig9aQuick(t *testing.T) {
	rows, err := quickHarness().Run("fig9a")
	if err != nil {
		t.Fatal(err)
	}
	// 4 algorithms × 3 datasets.
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Series == "Kungs" {
			if r.Value < 0.999 {
				t.Errorf("Kungs I_ε = %v on %s, want 1", r.Value, r.X)
			}
			continue
		}
		// Approximation algorithms must respect their ε contract.
		if r.Value < -1e-6 || r.Value > 1+1e-6 {
			t.Errorf("%s on %s: I_ε = %v outside [0,1]", r.Series, r.X, r.Value)
		}
	}
}

func TestFig9bQuick(t *testing.T) {
	rows, err := quickHarness().Run("fig9b")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 { // 4 algorithms × 5 ε values
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig9eQuick(t *testing.T) {
	rows, err := quickHarness().Run("fig9e")
	if err != nil {
		t.Fatal(err)
	}
	// 2 algorithms × 2 λ_R × 10 deciles.
	if len(rows) != 40 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Anytime I_R is non-decreasing in explored fraction for a fixed
	// series (the archive only improves).
	bySeries := map[string][]Row{}
	for _, r := range rows {
		bySeries[r.Series] = append(bySeries[r.Series], r)
	}
	for s, rs := range bySeries {
		for i := 1; i < len(rs); i++ {
			if rs[i].Value < rs[i-1].Value-1e-9 {
				t.Errorf("%s: anytime I_R decreased at %s: %v -> %v", s, rs[i].X, rs[i-1].Value, rs[i].Value)
			}
		}
	}
}

func TestFig10aQuick(t *testing.T) {
	rows, err := quickHarness().Run("fig10a")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Value < 0 || r.Extra["verified"] <= 0 {
			t.Errorf("row %+v implausible", r)
		}
	}
}

func TestFig11aQuick(t *testing.T) {
	rows, err := quickHarness().Run("fig11a")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 (batch,w) × 4 k
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Extra["size"] <= 0 {
			t.Errorf("online run kept nothing: %+v", r)
		}
	}
}

func TestFig11bQuick(t *testing.T) {
	rows, err := quickHarness().Run("fig11b")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no checkpoints")
	}
	for _, r := range rows {
		// I_ε against the final enlarged ε must stay sane.
		if r.Value > 1+1e-9 {
			t.Errorf("checkpoint I_ε = %v > 1", r.Value)
		}
	}
}

func TestFig12Quick(t *testing.T) {
	rows, err := quickHarness().Run("fig12")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("case study produced nothing")
	}
	for _, r := range rows {
		if r.Extra["romance"] < 0 || r.Extra["horror"] < 0 || r.Extra["answers"] <= 0 {
			t.Errorf("row %+v implausible", r)
		}
	}
}

func TestPruningQuick(t *testing.T) {
	rows, err := quickHarness().Run("pruning")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Value < 0 || r.Value > 1 {
			t.Errorf("%s on %s saved %v of verifications", r.Series, r.X, r.Value)
		}
	}
}

func TestAblationQuick(t *testing.T) {
	rows, err := quickHarness().Run("ablation")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestCBMQuick(t *testing.T) {
	rows, err := quickHarness().Run("cbm")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig9cQuick(t *testing.T) {
	rows, err := quickHarness().Run("fig9c")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 4 algorithms × 4 |X_L| values
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig9dQuick(t *testing.T) {
	rows, err := quickHarness().Run("fig9d")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig9fQuick(t *testing.T) {
	rows, err := quickHarness().Run("fig9f")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 algorithms × 4 C values
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Value < 0 || r.Value > 0.5+1e-9 {
			t.Errorf("I_R = %v outside [0, 0.5]", r.Value)
		}
	}
}

func TestFig9ghQuick(t *testing.T) {
	rows, err := quickHarness().Run("fig9gh")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 algorithms × |P| ∈ {2..5}
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig10dQuick(t *testing.T) {
	rows, err := quickHarness().Run("fig10d")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Value < 0 || r.Extra["verified"] <= 0 {
			t.Errorf("row %+v implausible", r)
		}
	}
}
