package bench

import (
	"strings"
	"testing"
)

func TestFormatCSV(t *testing.T) {
	rows := []Row{
		{Exp: "fig9a", Series: "RfQGen", X: "dbp", Value: 0.5,
			Extra: map[string]float64{"sec": 1.25, "verified": 10}},
		{Exp: "fig9a", Series: "with,comma", X: `with"quote`, Value: 1},
	}
	out := FormatCSV(rows)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "experiment,series,x,value,extra" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "sec=1.25;verified=10") {
		t.Errorf("extras not flattened: %q", lines[1])
	}
	if !strings.Contains(lines[2], `"with,comma"`) || !strings.Contains(lines[2], `"with""quote"`) {
		t.Errorf("escaping wrong: %q", lines[2])
	}
}

func TestDomainForRangeVars(t *testing.T) {
	base := 6
	prev := 1 << 30
	for xl := 1; xl <= 6; xl++ {
		md := domainForRangeVars(xl, base)
		if md < 2 {
			t.Errorf("xl=%d: md=%d below floor", xl, md)
		}
		if md > prev {
			t.Errorf("xl=%d: md grew with more variables", xl)
		}
		prev = md
		// The induced space stays within an order of magnitude of the
		// target regime.
		space := 1
		for i := 0; i < xl; i++ {
			space *= md + 1
		}
		if space > 12000 {
			t.Errorf("xl=%d: space %d too large", xl, space)
		}
	}
}
