package bench

import (
	"fmt"

	"fairsqg/internal/core"
	"fairsqg/internal/gen"
	"fairsqg/internal/pareto"
)

// algorithm pairs a display name with a runner method.
type algorithm struct {
	name string
	run  func(*core.Runner) (*core.Result, error)
}

func approxAlgorithms() []algorithm {
	return []algorithm{
		{"EnumQGen", (*core.Runner).EnumQGen},
		{"RfQGen", (*core.Runner).RfQGen},
		{"BiQGen", (*core.Runner).BiQGen},
	}
}

// effectivenessRows runs Kungs plus the approximation algorithms on a
// workload and emits one I_ε row per algorithm (Extra: time in seconds,
// verified instance count, result size, and I_R at λ_R = 0.5).
func (h *Harness) effectivenessRows(exp, x string, w *workload) ([]Row, error) {
	ref, divMax, covMax, err := referencePoints(w)
	if err != nil {
		return nil, err
	}
	var rows []Row
	kr, err := core.NewRunner(w.cfg)
	if err != nil {
		return nil, err
	}
	kres, err := kr.Kungs()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{
		Exp: exp, Series: "Kungs", X: x,
		Value: pareto.EpsIndicator(kres.Points(), ref, w.cfg.Eps),
		Extra: map[string]float64{
			"sec":      kres.Elapsed.Seconds(),
			"verified": float64(kres.Stats.Verified),
			"size":     float64(len(kres.Set)),
			"I_R":      pareto.RIndicator(kres.Points(), 0.5, divMax, covMax),
		},
	})
	for _, alg := range approxAlgorithms() {
		r, err := core.NewRunner(w.cfg)
		if err != nil {
			return nil, err
		}
		res, err := alg.run(r)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Exp: exp, Series: alg.name, X: x,
			Value: pareto.EpsIndicator(res.Points(), ref, w.cfg.Eps),
			Extra: map[string]float64{
				"sec":      res.Elapsed.Seconds(),
				"verified": float64(res.Stats.Verified),
				"size":     float64(len(res.Set)),
				"I_R":      pareto.RIndicator(res.Points(), 0.5, divMax, covMax),
			},
		})
	}
	return rows, nil
}

// Fig9a reproduces Fig. 9(a): overall effectiveness (I_ε) of Kungs,
// EnumQGen, RfQGen and BiQGen over the three datasets with |Q|=3, |X|=3
// (1 edge + 2 range variables), |P|=2, equal opportunity, ε=0.01.
func (h *Harness) Fig9a() ([]Row, error) {
	var rows []Row
	for _, ds := range []string{gen.DBP, gen.LKI, gen.Cite} {
		w, err := h.buildWorkload(workloadParams{
			dataset: ds, size: 3, rangeVars: 2, edgeVars: 1,
			numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: 0.01,
			maxDomain: 2 * h.opts.maxDomain(),
		})
		if err != nil {
			return nil, err
		}
		r, err := h.effectivenessRows("fig9a", ds, w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig9b reproduces Fig. 9(b): I_ε on LKI while ε varies from 0.2 to 1.0,
// with |Q|=4 and |X|=3 (1 range + 2 edge variables).
func (h *Harness) Fig9b() ([]Row, error) {
	var rows []Row
	for _, eps := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		w, err := h.buildWorkload(workloadParams{
			dataset: gen.LKI, size: 4, rangeVars: 1, edgeVars: 2,
			numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: eps,
			maxDomain: 10 * h.opts.maxDomain(),
		})
		if err != nil {
			return nil, err
		}
		r, err := h.effectivenessRows("fig9b", fmt.Sprintf("eps=%.1f", eps), w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig9c reproduces Fig. 9(c): I_ε on DBP while |X_L| varies from 2 to 5
// (|Q|=4, |P|=2, ε=0.01).
func (h *Harness) Fig9c() ([]Row, error) {
	var rows []Row
	for _, xl := range []int{2, 3, 4, 5} {
		w, err := h.buildWorkload(workloadParams{
			dataset: gen.DBP, size: 4, rangeVars: xl, edgeVars: 1,
			numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: 0.01,
			maxDomain: domainForRangeVars(xl, h.opts.maxDomain()),
		})
		if err != nil {
			return nil, err
		}
		r, err := h.effectivenessRows("fig9c", fmt.Sprintf("|X_L|=%d", xl), w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig9d reproduces Fig. 9(d): I_ε on LKI while |X_E| varies from 2 to 5
// (|Q|=5, |P|=2, ε=0.01).
func (h *Harness) Fig9d() ([]Row, error) {
	var rows []Row
	for _, xe := range []int{2, 3, 4, 5} {
		w, err := h.buildWorkload(workloadParams{
			dataset: gen.LKI, size: 5, rangeVars: 1, edgeVars: xe,
			numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: 0.01,
			maxDomain: 4 * h.opts.maxDomain(),
		})
		if err != nil {
			return nil, err
		}
		r, err := h.effectivenessRows("fig9d", fmt.Sprintf("|X_E|=%d", xe), w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig9e reproduces Fig. 9(e): anytime quality. For λ_R ∈ {0.1, 0.9} it
// replays RfQGen's and BiQGen's verification streams through a shadow
// archive and reports I_R after each decile of the explored instances.
func (h *Harness) Fig9e() ([]Row, error) {
	w, err := h.buildWorkload(workloadParams{
		dataset: gen.DBP, size: 4, rangeVars: 2, edgeVars: 1,
		numGroups: 2, totalC: h.opts.totalC(), tightness: 0.7, eps: 0.01,
		maxDomain: 2 * h.opts.maxDomain(),
	})
	if err != nil {
		return nil, err
	}
	_, divMax, covMax, err := referencePoints(w)
	if err != nil {
		return nil, err
	}
	algs := []algorithm{
		{"RfQGen", (*core.Runner).RfQGen},
		{"BiQGen", (*core.Runner).BiQGen},
	}
	var rows []Row
	for _, alg := range algs {
		cfg := *w.cfg
		shadow := pareto.NewArchive[int](cfg.Eps)
		var trace []pareto.Point // best-so-far snapshot source
		var irTrace [][2]float64 // (I_R(0.1), I_R(0.9)) after each verification
		cfg.OnVerified = func(ev core.VerifyEvent) {
			if ev.Feasible {
				shadow.Update(ev.Point, 0)
			}
			trace = shadow.Points()
			irTrace = append(irTrace, [2]float64{
				pareto.RIndicator(trace, 0.1, divMax, covMax),
				pareto.RIndicator(trace, 0.9, divMax, covMax),
			})
		}
		r, err := core.NewRunner(&cfg)
		if err != nil {
			return nil, err
		}
		if _, err := alg.run(r); err != nil {
			return nil, err
		}
		n := len(irTrace)
		if n == 0 {
			continue
		}
		for decile := 1; decile <= 10; decile++ {
			idx := n*decile/10 - 1
			if idx < 0 {
				idx = 0
			}
			rows = append(rows,
				Row{Exp: "fig9e", Series: alg.name + " λR=0.1", X: fmt.Sprintf("%d%%", decile*10), Value: irTrace[idx][0]},
				Row{Exp: "fig9e", Series: alg.name + " λR=0.9", X: fmt.Sprintf("%d%%", decile*10), Value: irTrace[idx][1]},
			)
		}
	}
	return rows, nil
}

// Fig9f reproduces Fig. 9(f): I_R (λ_R = 0.5) on DBP while the total
// coverage requirement C varies, with |P|=3 and C split evenly.
func (h *Harness) Fig9f() ([]Row, error) {
	base := h.opts.totalC()
	var rows []Row
	for _, c := range []int{base * 3 / 5, base, base * 8 / 5, base * 12 / 5} {
		w, err := h.buildWorkload(workloadParams{
			dataset: gen.DBP, size: 4, rangeVars: 2, edgeVars: 1,
			numGroups: 3, totalC: c, eps: 0.01,
			maxDomain: 2 * h.opts.maxDomain(),
		})
		if err != nil {
			return nil, err
		}
		ref, divMax, covMax, err := referencePoints(w)
		if err != nil {
			return nil, err
		}
		_ = ref
		for _, alg := range approxAlgorithms() {
			r, err := core.NewRunner(w.cfg)
			if err != nil {
				return nil, err
			}
			res, err := alg.run(r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Exp: "fig9f", Series: alg.name, X: fmt.Sprintf("C=%d", c),
				Value: pareto.RIndicator(res.Points(), 0.5, divMax, covMax),
				Extra: map[string]float64{"feasible": float64(res.Stats.Feasible)},
			})
		}
	}
	return rows, nil
}

// Fig9gh reproduces Fig. 9(g) and 9(h): I_ε (Value) and I_R (Extra) on DBP
// while |P| varies from 2 to 5, with C split evenly (λ_R = 0.5).
func (h *Harness) Fig9gh() ([]Row, error) {
	var rows []Row
	for _, p := range []int{2, 3, 4, 5} {
		w, err := h.buildWorkload(workloadParams{
			dataset: gen.DBP, size: 4, rangeVars: 2, edgeVars: 1,
			numGroups: p, totalC: h.opts.totalC() * 6 / 5, tightness: 0.7, eps: 0.01,
			maxDomain: 2 * h.opts.maxDomain(),
		})
		if err != nil {
			return nil, err
		}
		ref, divMax, covMax, err := referencePoints(w)
		if err != nil {
			return nil, err
		}
		for _, alg := range approxAlgorithms() {
			r, err := core.NewRunner(w.cfg)
			if err != nil {
				return nil, err
			}
			res, err := alg.run(r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Exp: "fig9gh", Series: alg.name, X: fmt.Sprintf("|P|=%d", p),
				Value: pareto.EpsIndicator(res.Points(), ref, w.cfg.Eps),
				Extra: map[string]float64{
					"I_R":      pareto.RIndicator(res.Points(), 0.5, divMax, covMax),
					"feasible": float64(res.Stats.Feasible),
				},
			})
		}
	}
	return rows, nil
}
