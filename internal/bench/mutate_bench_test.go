package bench

import (
	"bytes"
	"testing"

	"fairsqg/internal/gen"
	"fairsqg/internal/graph"
)

// BenchmarkMutateBatch compares the two ways an edit reaches a served
// 100k-node graph: ApplyBatch — a copy-on-write overlay generation with
// incremental index maintenance — versus the only pre-mutation path,
// re-uploading the full TSV and re-running Freeze (column transposition
// plus index rebuilds from scratch). The batch is a realistic mixed edit:
// attribute updates, new edges, node churn. Acceptance bar for the live
// graph layer is ApplyBatch ≥ 10× faster; the measured gap is recorded
// in BENCH.md.
func BenchmarkMutateBatch(b *testing.B) {
	g, err := gen.Build("lki", gen.Options{Nodes: 100000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var tsv bytes.Buffer
	if err := graph.WriteTSV(&tsv, g); err != nil {
		b.Fatal(err)
	}

	// A mixed 100-op batch over live Person nodes: 40 attribute updates,
	// 30 new recommend edges, 20 removals, 10 fresh nodes. IDs step by a
	// prime so ops spread across the columns instead of clustering.
	persons := g.NodesByLabel("Person")
	var batch []graph.Mutation
	for i := 0; i < 40; i++ {
		batch = append(batch, graph.Mutation{
			Op: graph.MutSetAttr, Node: persons[(i*101)%len(persons)],
			Attr: "yearsOfExp", Value: graph.Int(int64(i % 30)),
		})
	}
	for i := 0; i < 30; i++ {
		from := persons[(i*211)%len(persons)]
		to := persons[(i*307+13)%len(persons)]
		if from == to {
			to = persons[(i*307+14)%len(persons)]
		}
		batch = append(batch, graph.Mutation{Op: graph.MutAddEdge, From: from, To: to, Label: "recommend"})
	}
	for i := 0; i < 20; i++ {
		batch = append(batch, graph.Mutation{Op: graph.MutRemoveNode, Node: persons[(i*401+7)%len(persons)]})
	}
	for i := 0; i < 10; i++ {
		batch = append(batch, graph.Mutation{
			Op: graph.MutAddNode, Label: "Person",
			Attrs: []graph.AttrPair{
				{Name: "gender", Value: graph.Str("female")},
				{Name: "title", Value: graph.Str("Director")},
				{Name: "yearsOfExp", Value: graph.Int(int64(i))},
			},
		})
	}
	b.Logf("graph: %d nodes, %d edges; batch %d ops; tsv %d bytes",
		g.NumNodes(), g.NumEdges(), len(batch), tsv.Len())

	b.Run("mutate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ng, res, err := graph.ApplyBatch(g, batch)
			if err != nil {
				b.Fatal(err)
			}
			if res.Ops != len(batch) || ng.Version() != g.Version()+1 {
				b.Fatalf("batch misapplied: %+v", res)
			}
		}
	})
	b.Run("reupload+refreeze", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ng, err := graph.ReadTSV(bytes.NewReader(tsv.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if ng.NumNodes() != g.NumNodes() {
				b.Fatalf("parsed %d nodes, want %d", ng.NumNodes(), g.NumNodes())
			}
		}
	})
}
