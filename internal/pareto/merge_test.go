package pareto

import (
	"math/rand"
	"testing"
)

// mergeSeed fixes the randomized merge fixtures; logged on failure.
const mergeSeed = 442271

// splitEntries partitions a point stream into k per-"worker" archives and
// returns their entry slices — the shape a cluster coordinator receives.
func splitEntries(rng *rand.Rand, eps float64, ps []Point, k int) [][]Entry[int] {
	archives := make([]*Archive[int], k)
	for i := range archives {
		archives[i] = NewArchive[int](eps)
	}
	for i, p := range ps {
		archives[rng.Intn(k)].Update(p, i)
	}
	out := make([][]Entry[int], k)
	for i, a := range archives {
		out[i] = append([]Entry[int](nil), a.Entries()...)
	}
	return out
}

// TestMergeStatsAccounting: every offered entry is either accepted or
// rejected, and the archive's growth is exactly accepted minus evicted.
func TestMergeStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(mergeSeed))
	for trial := 0; trial < 60; trial++ {
		ps := propertyPoints(rng, 1+rng.Intn(40))
		for _, eps := range propertyEpsilons {
			a := fillArchive(eps, ps[:len(ps)/2])
			before := a.Len()
			var offered []Entry[int]
			for i, p := range ps[len(ps)/2:] {
				offered = append(offered, Entry[int]{Point: p, Box: BoxOf(p, eps), Payload: 1000 + i})
			}
			st := a.Merge(offered)
			if st.Accepted+st.Rejected != len(offered) {
				t.Fatalf("seed %d trial %d eps=%v: accepted %d + rejected %d != offered %d",
					mergeSeed, trial, eps, st.Accepted, st.Rejected, len(offered))
			}
			if got := a.Len() - before; got != st.Accepted-st.Evicted {
				t.Fatalf("seed %d trial %d eps=%v: archive grew %d, stats say %d-%d",
					mergeSeed, trial, eps, got, st.Accepted, st.Evicted)
			}
		}
	}
}

// TestMergeOrderIndependentBoxSet: merging per-worker slab archives into a
// coordinator archive yields the same box set regardless of the order the
// workers' results arrive — the property that lets the cluster coordinator
// merge slab responses as they complete without losing determinism at box
// granularity. The merged box set also equals the box set of offering the
// original point stream directly to one archive.
func TestMergeOrderIndependentBoxSet(t *testing.T) {
	rng := rand.New(rand.NewSource(mergeSeed + 1))
	for trial := 0; trial < 60; trial++ {
		ps := propertyPoints(rng, 2+rng.Intn(50))
		for _, eps := range propertyEpsilons {
			want := boxSet(fillArchive(eps, ps))
			parts := splitEntries(rng, eps, ps, 2+rng.Intn(3))
			for perm := 0; perm < 6; perm++ {
				order := rng.Perm(len(parts))
				merged := NewArchive[int](eps)
				for _, pi := range order {
					merged.Merge(parts[pi])
				}
				if got := boxSet(merged); !equalBoxes(got, want) {
					t.Fatalf("seed %d trial %d eps=%v perm %d: merged box set depends on arrival order:\ngot  %v\nwant %v",
						mergeSeed, trial, eps, perm, got, want)
				}
			}
		}
	}
}

// TestMergePreservesEpsContract: after merging every worker's archive, the
// coordinator archive ε-dominates the complete original point stream (not
// just the per-worker survivors), and its entries stay pairwise
// box-incomparable — the ε-Pareto contract holds end to end.
func TestMergePreservesEpsContract(t *testing.T) {
	rng := rand.New(rand.NewSource(mergeSeed + 2))
	for trial := 0; trial < 60; trial++ {
		ps := propertyPoints(rng, 2+rng.Intn(50))
		for _, eps := range propertyEpsilons {
			parts := splitEntries(rng, eps, ps, 2+rng.Intn(3))
			merged := NewArchive[int](eps)
			for _, part := range parts {
				merged.Merge(part)
			}
			if !merged.EpsDominatesAll(ps) {
				t.Fatalf("seed %d trial %d eps=%v: merged archive %v does not ε-dominate original stream %v",
					mergeSeed, trial, eps, merged.Points(), ps)
			}
			es := merged.Entries()
			for i := range es {
				for j := range es {
					if i != j && es[i].Box.WeaklyDominates(es[j].Box) {
						t.Fatalf("seed %d trial %d eps=%v: merged boxes %v ⪰ %v", mergeSeed, trial, eps, es[i].Box, es[j].Box)
					}
				}
			}
		}
	}
}

// TestMergeAcrossEpsilons: merging entries archived under a smaller ε into
// a coarser archive recomputes boxes under the receiver's ε (Lemma 4:
// ε-dominance survives enlargement), so the contract holds for the
// combined stream at the coarser tolerance.
func TestMergeAcrossEpsilons(t *testing.T) {
	rng := rand.New(rand.NewSource(mergeSeed + 3))
	for trial := 0; trial < 40; trial++ {
		ps := propertyPoints(rng, 2+rng.Intn(40))
		fine := fillArchive(0.05, ps)
		coarse := NewArchive[int](0.8)
		coarse.Merge(fine.Entries())
		if !coarse.EpsDominatesAll(fine.Points()) {
			t.Fatalf("seed %d trial %d: coarse merge lost ε-dominance over fine survivors", mergeSeed, trial)
		}
		for _, e := range coarse.Entries() {
			if e.Box != BoxOf(e.Point, 0.8) {
				t.Fatalf("seed %d trial %d: entry box %v not recomputed under receiver eps (want %v)",
					mergeSeed, trial, e.Box, BoxOf(e.Point, 0.8))
			}
		}
	}
}
