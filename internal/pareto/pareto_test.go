package pareto

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	a := Point{Div: 2, Cov: 3}
	cases := []struct {
		b         Point
		dom, weak bool
		symDom    bool // b dominates a
	}{
		{Point{Div: 2, Cov: 3}, false, true, false}, // equal
		{Point{Div: 1, Cov: 3}, true, true, false},
		{Point{Div: 2, Cov: 2}, true, true, false},
		{Point{Div: 1, Cov: 2}, true, true, false},
		{Point{Div: 3, Cov: 2}, false, false, false}, // incomparable
		{Point{Div: 3, Cov: 4}, false, false, true},
	}
	for _, c := range cases {
		if got := Dominates(a, c.b); got != c.dom {
			t.Errorf("Dominates(%v, %v) = %v, want %v", a, c.b, got, c.dom)
		}
		if got := WeaklyDominates(a, c.b); got != c.weak {
			t.Errorf("WeaklyDominates(%v, %v) = %v, want %v", a, c.b, got, c.weak)
		}
		if got := Dominates(c.b, a); got != c.symDom {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.b, a, got, c.symDom)
		}
	}
}

func TestEpsDominates(t *testing.T) {
	// On the shifted scale the gap between (1, 1) and (1.2, 1.1) is
	// (1+1.2)/(1+1) − 1 = 0.1 on the diversity axis.
	a := Point{Div: 1, Cov: 1}
	b := Point{Div: 1.2, Cov: 1.1}
	if EpsDominates(a, b, 0.05) {
		t.Error("ε=0.05 should not suffice for a 10% shifted gap")
	}
	if !EpsDominates(a, b, 0.1) {
		t.Error("ε=0.1 should suffice")
	}
	// Lemma 4: ε-dominance is preserved under larger ε.
	f := func(ad, ac, bd, bc, e1, e2 float64) bool {
		a := Point{Div: math.Abs(ad), Cov: math.Abs(ac)}
		b := Point{Div: math.Abs(bd), Cov: math.Abs(bc)}
		lo := math.Mod(math.Abs(e1), 2) + 0.001
		hi := lo + math.Mod(math.Abs(e2), 2)
		if EpsDominates(a, b, lo) && !EpsDominates(a, b, hi) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRequiredEps(t *testing.T) {
	if got := RequiredEps(Point{1, 1}, Point{1, 1}); got != 0 {
		t.Errorf("equal points need ε = %v", got)
	}
	if got := RequiredEps(Point{2, 2}, Point{1, 1}); got != 0 {
		t.Errorf("dominating point needs ε = %v", got)
	}
	// Shifted scale: (1+1.5)/(1+1) − 1 = 0.25.
	if got := RequiredEps(Point{1, 1}, Point{1.5, 1}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("RequiredEps = %v, want 0.25", got)
	}
	// A zero objective needs a finite ε on the shifted scale:
	// (1+1)/(1+0) − 1 = 1.
	if got := RequiredEps(Point{0, 1}, Point{1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("zero objective RequiredEps = %v, want 1", got)
	}
	// Consistency with EpsDominates.
	f := func(ad, ac, bd, bc float64) bool {
		a := Point{Div: math.Abs(ad), Cov: math.Abs(ac)}
		b := Point{Div: math.Abs(bd), Cov: math.Abs(bc)}
		e := RequiredEps(a, b)
		if math.IsInf(e, 1) {
			return true
		}
		return EpsDominates(a, b, e+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxOf(t *testing.T) {
	eps := 0.5
	if got := BoxOf(Point{0, 0}, eps); got != (Box{0, 0}) {
		t.Errorf("box(0,0) = %v", got)
	}
	// log(1+0.6)/log(1.5) ≈ 1.159 → 1.
	if got := BoxOf(Point{0.6, 0}, eps); got.DI != 1 {
		t.Errorf("box(0.6) DI = %d", got.DI)
	}
	// Negative values clamp to box 0.
	if got := BoxOf(Point{-3, -3}, eps); got != (Box{0, 0}) {
		t.Errorf("negative box = %v", got)
	}
	// Two points in one box ε-dominate each other — exact now that
	// EpsDominates evaluates on the same shifted 1+v scale as the boxing.
	f := func(x, y float64) bool {
		a := Point{Div: math.Mod(math.Abs(x), 100), Cov: 1}
		b := Point{Div: math.Mod(math.Abs(y), 100), Cov: 1}
		if BoxOf(a, eps) != BoxOf(b, eps) {
			return true
		}
		return EpsDominates(a, b, eps) && EpsDominates(b, a, eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestBoxDominance(t *testing.T) {
	a := Box{2, 3}
	if !a.Dominates(Box{1, 3}) || !a.Dominates(Box{2, 2}) || !a.Dominates(Box{1, 2}) {
		t.Error("box dominance false negative")
	}
	if a.Dominates(a) {
		t.Error("box must not dominate itself")
	}
	if a.Dominates(Box{3, 2}) {
		t.Error("incomparable boxes dominated")
	}
	if !a.WeaklyDominates(a) {
		t.Error("weak dominance must be reflexive")
	}
}

func TestMaxBoxesPerAxis(t *testing.T) {
	if got := MaxBoxesPerAxis(0, 0.1); got != 1 {
		t.Errorf("zero range = %d", got)
	}
	got := MaxBoxesPerAxis(1000, 0.1)
	want := int(math.Log1p(1000)/math.Log1p(0.1)) + 1
	if got != want {
		t.Errorf("MaxBoxesPerAxis = %d, want %d", got, want)
	}
}

func randomPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]Point, n)
	for i := range ps {
		ps[i] = Point{Div: float64(rng.Intn(50)), Cov: float64(rng.Intn(50))}
	}
	return ps
}

func TestKungMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		ps := randomPoints(40, seed)
		kung := append([]int(nil), Kung(ps)...)
		naive := NaiveParetoSet(ps)
		// Compare as sets of points (duplicates keep one representative,
		// possibly a different index with equal coordinates).
		toSet := func(idx []int) map[Point]bool {
			m := map[Point]bool{}
			for _, i := range idx {
				m[ps[i]] = true
			}
			return m
		}
		ks, ns := toSet(kung), toSet(naive)
		if !reflect.DeepEqual(ks, ns) {
			t.Fatalf("seed %d: kung %v != naive %v", seed, ks, ns)
		}
		// No member of the front may dominate another.
		for _, i := range kung {
			for _, j := range kung {
				if i != j && Dominates(ps[i], ps[j]) {
					t.Fatalf("seed %d: front contains dominated point", seed)
				}
			}
		}
		// Every input point must be weakly dominated by some front member.
		for _, p := range ps {
			ok := false
			for _, i := range kung {
				if WeaklyDominates(ps[i], p) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("seed %d: point %v not covered by front", seed, p)
			}
		}
	}
}

func TestKungEdgeCases(t *testing.T) {
	if got := Kung(nil); got != nil {
		t.Errorf("Kung(nil) = %v", got)
	}
	if got := Kung([]Point{{1, 1}}); len(got) != 1 || got[0] != 0 {
		t.Errorf("singleton = %v", got)
	}
	// All identical: exactly one survives.
	same := []Point{{2, 2}, {2, 2}, {2, 2}}
	if got := Kung(same); len(got) != 1 {
		t.Errorf("identical points front = %v", got)
	}
	// A strictly increasing anti-chain survives whole.
	anti := []Point{{1, 9}, {2, 8}, {3, 7}, {4, 6}}
	if got := Kung(anti); len(got) != 4 {
		t.Errorf("anti-chain front = %v", got)
	}
}

func TestDistance(t *testing.T) {
	d := Distance(Point{0, 0}, Point{3, 4}, 0, 0)
	if math.Abs(d-5) > 1e-12 {
		t.Errorf("unnormalized distance = %v", d)
	}
	d = Distance(Point{0, 0}, Point{3, 4}, 3, 4)
	if math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("normalized distance = %v", d)
	}
}

func TestSortStability(t *testing.T) {
	// Kung must keep the earliest index among duplicates.
	ps := []Point{{5, 5}, {5, 5}}
	got := Kung(ps)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("duplicate representative = %v", got)
	}
	_ = sort.IntsAreSorted // keep sort imported for the helper below
}
