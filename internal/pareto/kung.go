package pareto

import "sort"

// Kung computes the exact Pareto (non-dominated) subset of points using
// Kung's divide-and-conquer maxima algorithm [Kung, Luccio, Preparata; used
// via Ding et al. 2003 in the paper]. The returned indices reference the
// input slice and are ordered by strictly decreasing Div and strictly
// increasing Cov. Duplicate points keep the earliest index.
func Kung(points []Point) []int {
	if len(points) == 0 {
		return nil
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	// Sort by Div descending, breaking ties by Cov descending then original
	// index so the first element of each tie group dominates its peers.
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa.Div != pb.Div {
			return pa.Div > pb.Div
		}
		if pa.Cov != pb.Cov {
			return pa.Cov > pb.Cov
		}
		return idx[a] < idx[b]
	})
	front := kungRec(points, idx)
	// Drop duplicates (identical points) that survive the weak filter.
	out := front[:0]
	for i, id := range front {
		if i > 0 && points[id] == points[front[i-1]] {
			continue
		}
		out = append(out, id)
	}
	return out
}

// kungRec computes maxima of idx (sorted by Div desc): split, solve halves,
// and keep from the back half only points whose Cov exceeds the best Cov of
// the front half.
func kungRec(points []Point, idx []int) []int {
	if len(idx) == 1 {
		return idx
	}
	mid := len(idx) / 2
	front := kungRec(points, idx[:mid])
	back := kungRec(points, idx[mid:])
	maxCov := front[0]
	for _, id := range front {
		if points[id].Cov > points[maxCov].Cov {
			maxCov = id
		}
	}
	merged := append([]int(nil), front...)
	for _, id := range back {
		if points[id].Cov > points[maxCov].Cov {
			merged = append(merged, id)
		}
	}
	return merged
}

// NaiveParetoSet returns the non-dominated indices by pairwise comparison;
// the O(n²) reference used to cross-check Kung in tests and by EnumQGen.
// Of a group of identical points only the earliest index is kept.
func NaiveParetoSet(points []Point) []int {
	var out []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if Dominates(q, p) || (q == p && j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}
