package pareto

import (
	"math/rand"
	"testing"
)

func TestArchiveUpdateCases(t *testing.T) {
	a := NewArchive[string](0.5)
	// First instance: new box (Case 3).
	res := a.Update(Point{1, 1}, "p1")
	if res.Case != AddedBox || !res.Accepted || a.Len() != 1 {
		t.Fatalf("first update: %+v", res)
	}
	// Dominating box: Case 1 evicts.
	res = a.Update(Point{10, 10}, "p2")
	if res.Case != ReplacedBoxes || len(res.Evicted) != 1 || res.Evicted[0] != "p1" {
		t.Fatalf("case 1: %+v", res)
	}
	if a.Len() != 1 {
		t.Fatalf("len = %d", a.Len())
	}
	// Same box, dominating point: Case 2 swap. At ε=0.5 the box index of
	// 10 is ⌊log1p(10)/log1p(0.5)⌋ = 5, covering values in [6.59, 10.39),
	// so (10.3, 10.2) shares the box and dominates (10, 10).
	res = a.Update(Point{10.3, 10.2}, "p3")
	if res.Case != ReplacedInstance || res.Evicted[0] != "p2" {
		t.Fatalf("case 2: %+v", res)
	}
	// Same box, dominated point: rejected.
	res = a.Update(Point{10.1, 10.1}, "p4")
	if res.Case != Rejected || res.Accepted {
		t.Fatalf("reject in box: %+v", res)
	}
	// Incomparable box: added.
	res = a.Update(Point{0.2, 100}, "p5")
	if res.Case != AddedBox || a.Len() != 2 {
		t.Fatalf("incomparable: %+v len=%d", res, a.Len())
	}
	// Dominated box: rejected.
	res = a.Update(Point{0.1, 50}, "p6")
	if res.Case != Rejected {
		t.Fatalf("dominated box: %+v", res)
	}
}

func TestArchiveClassifyMatchesUpdate(t *testing.T) {
	const seed = 5 // fixed and logged so a failing iteration reproduces
	rng := rand.New(rand.NewSource(seed))
	a := NewArchive[int](0.3)
	for i := 0; i < 500; i++ {
		p := Point{Div: float64(rng.Intn(40)), Cov: float64(rng.Intn(40))}
		want := a.Classify(p)
		got := a.Update(p, i)
		if got.Case != want {
			t.Fatalf("seed %d iteration %d: Classify=%v Update=%v for %v", seed, i, want, got.Case, p)
		}
	}
}

// TestArchiveInvariants feeds random points and checks after every update:
// entries are mutually box-non-dominated, every offered point is
// ε-dominated by some entry, and the size bound holds.
func TestArchiveInvariants(t *testing.T) {
	const seed = 77 // fixed and logged so a failing stream reproduces
	for _, eps := range []float64{0.05, 0.2, 0.5, 1.0} {
		rng := rand.New(rand.NewSource(seed))
		a := NewArchive[int](eps)
		var seen []Point
		maxVal := 60.0
		for i := 0; i < 400; i++ {
			p := Point{Div: rng.Float64() * maxVal, Cov: rng.Float64() * maxVal}
			seen = append(seen, p)
			a.Update(p, i)
			// (1) mutual non-dominance at box level.
			es := a.Entries()
			for x := range es {
				for y := range es {
					if x != y && es[x].Box.WeaklyDominates(es[y].Box) {
						t.Fatalf("seed %d eps=%v: archive boxes %v ⪰ %v", seed, eps, es[x].Box, es[y].Box)
					}
				}
			}
			// (2) ε-domination of everything seen.
			if !a.EpsDominatesAll(seen) {
				t.Fatalf("seed %d eps=%v iter %d: archive does not ε-dominate the stream", seed, eps, i)
			}
			// (3) size bound: one representative per non-dominated box on a
			// staircase — at most boxes-per-axis entries.
			bound := MaxBoxesPerAxis(maxVal, eps)
			if a.Len() > bound {
				t.Fatalf("seed %d eps=%v: |archive| = %d > bound %d", seed, eps, a.Len(), bound)
			}
		}
	}
}

func TestArchiveSetEps(t *testing.T) {
	a := NewArchive[int](0.05)
	rng := rand.New(rand.NewSource(3))
	var seen []Point
	for i := 0; i < 200; i++ {
		p := Point{Div: rng.Float64() * 30, Cov: rng.Float64() * 30}
		seen = append(seen, p)
		a.Update(p, i)
	}
	before := a.Len()
	a.SetEps(0.5)
	if a.Eps() != 0.5 {
		t.Error("eps not updated")
	}
	if a.Len() > before {
		t.Error("coarser boxes cannot grow the archive")
	}
	if !a.EpsDominatesAll(seen) {
		t.Error("after SetEps the archive must still ε-dominate all seen points (Lemma 4)")
	}
}

func TestArchiveRemoveAndNearest(t *testing.T) {
	a := NewArchive[string](0.3)
	a.Update(Point{10, 1}, "hiDiv")
	a.Update(Point{1, 10}, "hiCov")
	idx, d := a.NearestNeighbor(Point{9, 1.5}, 10, 10)
	if idx < 0 || a.Entries()[idx].Payload != "hiDiv" {
		t.Fatalf("nearest = %d (d=%v)", idx, d)
	}
	got := a.Remove(idx)
	if got != "hiDiv" || a.Len() != 1 {
		t.Errorf("Remove = %q len=%d", got, a.Len())
	}
	idx, _ = a.NearestNeighbor(Point{0, 0}, 0, 0)
	if a.Entries()[idx].Payload != "hiCov" {
		t.Error("nearest after remove wrong")
	}
	empty := NewArchive[string](0.3)
	if idx, _ := empty.NearestNeighbor(Point{1, 1}, 1, 1); idx != -1 {
		t.Error("empty archive nearest should be -1")
	}
}

func TestArchivePanicsOnBadEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for eps <= 0")
		}
	}()
	NewArchive[int](0)
}

func TestArchiveAccessors(t *testing.T) {
	a := NewArchive[string](0.4)
	a.Update(Point{5, 1}, "x")
	a.Update(Point{1, 5}, "y")
	if len(a.Points()) != 2 || len(a.Payloads()) != 2 {
		t.Error("accessors wrong")
	}
	if got := UpdateCase(99).String(); got != "unknown" {
		t.Errorf("unknown case = %q", got)
	}
	for c, want := range map[UpdateCase]string{
		Rejected: "rejected", ReplacedBoxes: "replaced-boxes",
		ReplacedInstance: "replaced-instance", AddedBox: "added-box",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestIndicators(t *testing.T) {
	ref := []Point{{10, 1}, {5, 5}, {1, 10}}
	// The reference itself is a perfect approximation.
	if got := MinEps(ref, ref); got != 0 {
		t.Errorf("MinEps(ref, ref) = %v", got)
	}
	if got := EpsIndicator(ref, ref, 0.5); got != 1 {
		t.Errorf("I_eps(ref) = %v", got)
	}
	// A subset needs some ε.
	sub := []Point{{10, 1}, {1, 10}}
	em := MinEps(sub, ref)
	if em <= 0 {
		t.Errorf("MinEps(sub) = %v, want > 0", em)
	}
	// Empty approximation set.
	if got := MinEps(nil, ref); got == 0 {
		t.Error("empty approx should need infinite ε")
	}
	if got := MinEps(sub, nil); got != 0 {
		t.Error("empty reference needs ε = 0")
	}
	// R-indicator favors coverage under high λ_R.
	hiCov := []Point{{1, 10}}
	hiDiv := []Point{{10, 1}}
	rc := RIndicator(hiCov, 0.9, 10, 10)
	rd := RIndicator(hiDiv, 0.9, 10, 10)
	if rc <= rd {
		t.Errorf("λ_R=0.9 must reward coverage: %v vs %v", rc, rd)
	}
	if got := RIndicator(nil, 0.5, 10, 10); got != 0 {
		t.Errorf("I_R(∅) = %v", got)
	}
	// Values above the normalizer clamp into [0,1].
	if got := RIndicator([]Point{{20, 20}}, 0.5, 10, 10); got != 0.5 {
		t.Errorf("clamped I_R = %v, want 0.5", got)
	}
}

func TestHypervolume(t *testing.T) {
	if got := Hypervolume(nil, 10, 10); got != 0 {
		t.Errorf("HV(∅) = %v", got)
	}
	// A single point at the corner dominates everything.
	if got := Hypervolume([]Point{{10, 10}}, 10, 10); got != 1 {
		t.Errorf("HV(corner) = %v", got)
	}
	// Half coverage.
	if got := Hypervolume([]Point{{5, 10}}, 10, 10); got != 0.5 {
		t.Errorf("HV(half) = %v", got)
	}
	// Staircase is additive.
	got := Hypervolume([]Point{{10, 5}, {5, 10}}, 10, 10)
	if got != 0.75 {
		t.Errorf("HV(staircase) = %v, want 0.75", got)
	}
}
