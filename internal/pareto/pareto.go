// Package pareto implements the bi-objective machinery of FairSQG:
// dominance and ε-dominance over (diversity, coverage) points, the
// log-scale "boxing" discretization, the box-level archive implementing the
// paper's Update procedure (Fig. 5), Kung's algorithm for exact Pareto
// sets, and the ε- and R-quality indicators used in the evaluation.
package pareto

import "math"

// Point is one instance's quality coordinates (δ(q), f(q)); both objectives
// are maximized.
type Point struct {
	Div float64 // diversity δ(q)
	Cov float64 // coverage f(q)
}

// Dominates reports whether a dominates b: a is at least as good on both
// objectives and strictly better on at least one.
func Dominates(a, b Point) bool {
	return (a.Div >= b.Div && a.Cov > b.Cov) || (a.Div > b.Div && a.Cov >= b.Cov)
}

// WeaklyDominates reports a ⪰ b: at least as good on both objectives.
func WeaklyDominates(a, b Point) bool {
	return a.Div >= b.Div && a.Cov >= b.Cov
}

// EpsDominates reports a ≻_ε b on the shifted scale the boxing uses:
// (1+ε)·(1+δ(a)) ≥ 1+δ(b) and (1+ε)·(1+f(a)) ≥ 1+f(b). Evaluating the
// ratio on 1+v rather than v matches BoxOf's ⌊log(1+v)/log(1+ε)⌋
// discretization exactly, so the boxing guarantees hold everywhere,
// including at zero-valued objectives: two points in one box ε-dominate
// each other, and a point whose box weakly dominates another point's box
// ε-dominates that point. (On the raw scale those guarantees fail near
// zero — e.g. 0.01 and 0.45 share Div-box 0 at ε = 0.5 but (1.5)·0.01 <
// 0.45 — which would break the archive's ε-Pareto contract.)
// By Lemma 4, a ≻_ε b implies a ≻_ε' b for every ε' > ε.
func EpsDominates(a, b Point, eps float64) bool {
	return (1+eps)*(1+a.Div) >= 1+b.Div && (1+eps)*(1+a.Cov) >= 1+b.Cov
}

// RequiredEps returns the smallest ε ≥ 0 such that a ≻_ε b; on the shifted
// scale a finite ε always suffices.
func RequiredEps(a, b Point) float64 {
	need := 0.0
	for _, pair := range [2][2]float64{{a.Div, b.Div}, {a.Cov, b.Cov}} {
		av, bv := pair[0], pair[1]
		if bv <= av {
			continue
		}
		if e := (1+bv)/(1+av) - 1; e > need {
			need = e
		}
	}
	return need
}

// Distance returns the Euclidean distance of two points after normalizing
// each axis by the given ranges (maximum diversity and coverage). The
// OnlineQGen ε-enlargement step uses it so that the adjusted ε stays
// commensurate with the ε-dominance scale regardless of the absolute
// magnitudes of δ and f.
func Distance(a, b Point, divMax, covMax float64) float64 {
	dd, dc := a.Div-b.Div, a.Cov-b.Cov
	if divMax > 0 {
		dd /= divMax
	}
	if covMax > 0 {
		dc /= covMax
	}
	return math.Sqrt(dd*dd + dc*dc)
}

// Box is the discretized cell of a point in the bi-objective space; cells
// grow geometrically with ε so that any two points in one cell ε-dominate
// each other.
type Box struct {
	DI int // diversity box index
	FI int // coverage box index
}

// BoxOf computes the boxing coordinates (⌊log(1+δ)/log(1+ε)⌋,
// ⌊log(1+f)/log(1+ε)⌋) of a point.
func BoxOf(p Point, eps float64) Box {
	return Box{DI: boxIndex(p.Div, eps), FI: boxIndex(p.Cov, eps)}
}

func boxIndex(v, eps float64) int {
	if v <= 0 {
		return 0
	}
	return int(math.Log1p(v) / math.Log1p(eps))
}

// Dominates reports strict box-level dominance: b is at least as high on
// both axes and strictly higher on one.
func (b Box) Dominates(c Box) bool {
	return (b.DI >= c.DI && b.FI > c.FI) || (b.DI > c.DI && b.FI >= c.FI)
}

// WeaklyDominates reports b ⪰ c at box level (dominates or equal).
func (b Box) WeaklyDominates(c Box) bool {
	return b.DI >= c.DI && b.FI >= c.FI
}

// MaxBoxesPerAxis returns the number of distinct box indices an objective
// bounded by maxValue can produce: the per-axis factor of the Theorem 2
// size bound |Q_ε| ≤ log(maxValue)/log(1+ε) (+1 for the zero box).
func MaxBoxesPerAxis(maxValue, eps float64) int {
	if maxValue <= 0 {
		return 1
	}
	return boxIndex(maxValue, eps) + 1
}
