package pareto

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// propertySeed fixes the randomized property-test fixtures; it is logged on
// every failure so a counterexample reproduces exactly.
const propertySeed = 90317

// propertyEpsilons spans small and coarse boxing scales.
var propertyEpsilons = []float64{0.05, 0.25, 0.8}

// randomPoints draws n points with ties made likely: coordinates are drawn
// from a small grid plus occasional jitter, so same-box and exactly-equal
// points both occur.
func propertyPoints(rng *rand.Rand, n int) []Point {
	ps := make([]Point, n)
	for i := range ps {
		ps[i] = Point{
			Div: float64(rng.Intn(12)) * 0.7,
			Cov: float64(rng.Intn(12)),
		}
		if rng.Intn(3) == 0 {
			ps[i].Div += rng.Float64()
			ps[i].Cov += rng.Float64()
		}
	}
	return ps
}

// fillArchive offers points in order; payload is the insertion index.
func fillArchive(eps float64, ps []Point) *Archive[int] {
	a := NewArchive[int](eps)
	for i, p := range ps {
		a.Update(p, i)
	}
	return a
}

// boxSet renders the occupied boxes in canonical sorted order.
func boxSet(a *Archive[int]) []Box {
	out := make([]Box, 0, a.Len())
	for _, e := range a.Entries() {
		out = append(out, e.Box)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DI != out[j].DI {
			return out[i].DI < out[j].DI
		}
		return out[i].FI < out[j].FI
	})
	return out
}

// pointSet renders the archived points keyed by box in canonical order.
func pointSet(a *Archive[int]) []string {
	out := make([]string, 0, a.Len())
	for _, e := range a.Entries() {
		out = append(out, fmt.Sprintf("%d,%d:%.9f,%.9f", e.Box.DI, e.Box.FI, e.Point.Div, e.Point.Cov))
	}
	sort.Strings(out)
	return out
}

func equalBoxes(a, b []Box) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestArchiveBoxSetOrderIndependent: for any point set, the set of occupied
// boxes after offering every point is independent of insertion order — it is
// exactly the maximal boxes under box dominance, a function of the point set
// alone. (The representative chosen inside a box is order-dependent when a
// box receives incomparable points: Case 2 keeps the incumbent on ties. The
// full-archive equality is therefore asserted separately, on point sets with
// at most one point per box.)
func TestArchiveBoxSetOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed))
	for trial := 0; trial < 60; trial++ {
		ps := propertyPoints(rng, 1+rng.Intn(40))
		for _, eps := range propertyEpsilons {
			want := boxSet(fillArchive(eps, ps))
			for perm := 0; perm < 8; perm++ {
				shuffled := append([]Point(nil), ps...)
				rng.Shuffle(len(shuffled), func(i, j int) {
					shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				})
				if got := boxSet(fillArchive(eps, shuffled)); !equalBoxes(got, want) {
					t.Fatalf("seed %d trial %d eps=%v perm %d: box set depends on insertion order:\ngot  %v\nwant %v\npoints %v",
						propertySeed, trial, eps, perm, got, want, shuffled)
				}
			}
		}
	}
}

// TestArchiveOrderIndependentDistinctBoxes: when every offered point
// occupies a distinct box, the whole archive — boxes and their
// representative points — is insertion-order independent.
func TestArchiveOrderIndependentDistinctBoxes(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed + 1))
	for trial := 0; trial < 60; trial++ {
		raw := propertyPoints(rng, 1+rng.Intn(40))
		for _, eps := range propertyEpsilons {
			seen := map[Box]bool{}
			var ps []Point
			for _, p := range raw {
				if b := BoxOf(p, eps); !seen[b] {
					seen[b] = true
					ps = append(ps, p)
				}
			}
			want := pointSet(fillArchive(eps, ps))
			for perm := 0; perm < 8; perm++ {
				shuffled := append([]Point(nil), ps...)
				rng.Shuffle(len(shuffled), func(i, j int) {
					shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				})
				a := fillArchive(eps, shuffled)
				if got := pointSet(a); !equalStringSlices(got, want) {
					t.Fatalf("seed %d trial %d eps=%v perm %d: archive depends on insertion order:\ngot  %v\nwant %v\npoints %v",
						propertySeed, trial, eps, perm, got, want, shuffled)
				}
			}
		}
	}
}

// TestArchiveMutualIncomparability: archived entries are pairwise
// incomparable at both levels the Update procedure works at — no archived
// point dominates another, and no archived box weakly dominates another
// (distinct boxes, none ε-redundant). Box incomparability is the archive's
// ε-non-redundancy guarantee: pointwise ε-dominance between entries in
// adjacent incomparable boxes is possible by construction (e.g. ε=0.5,
// (2.3, 1.24) in box (2,1) ε-dominates (1.2, 1.26) in box (1,2), yet the
// boxes are incomparable and both points are archived), so the invariant is
// stated, and tested, at box granularity.
func TestArchiveMutualIncomparability(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed + 2))
	for trial := 0; trial < 120; trial++ {
		ps := propertyPoints(rng, 1+rng.Intn(50))
		for _, eps := range propertyEpsilons {
			a := fillArchive(eps, ps)
			es := a.Entries()
			for i := range es {
				for j := range es {
					if i == j {
						continue
					}
					if Dominates(es[i].Point, es[j].Point) {
						t.Fatalf("seed %d trial %d eps=%v: archived point %v dominates archived %v",
							propertySeed, trial, eps, es[i].Point, es[j].Point)
					}
					if es[i].Box.WeaklyDominates(es[j].Box) {
						t.Fatalf("seed %d trial %d eps=%v: archived box %v weakly dominates archived %v (points %v, %v)",
							propertySeed, trial, eps, es[i].Box, es[j].Box, es[i].Point, es[j].Point)
					}
				}
			}
		}
	}
}

// TestArchiveEpsContractUnderShuffles ties the two halves together: in every
// insertion order the final archive ε-dominates the complete offered set.
func TestArchiveEpsContractUnderShuffles(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed + 3))
	for trial := 0; trial < 60; trial++ {
		ps := propertyPoints(rng, 1+rng.Intn(40))
		for _, eps := range propertyEpsilons {
			for perm := 0; perm < 4; perm++ {
				shuffled := append([]Point(nil), ps...)
				rng.Shuffle(len(shuffled), func(i, j int) {
					shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				})
				if a := fillArchive(eps, shuffled); !a.EpsDominatesAll(ps) {
					t.Fatalf("seed %d trial %d eps=%v perm %d: archive %v does not ε-dominate offered set %v",
						propertySeed, trial, eps, perm, a.Points(), ps)
				}
			}
		}
	}
}

func equalStringSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
