package pareto

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// pointSeq is a quick-generatable sequence of bounded points.
type pointSeq []Point

func (pointSeq) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(size+1)
	ps := make(pointSeq, n)
	for i := range ps {
		ps[i] = Point{Div: r.Float64() * 50, Cov: float64(r.Intn(50))}
	}
	return reflect.ValueOf(ps)
}

// TestQuickArchiveEpsContract: for any point sequence, the archive
// ε-dominates every offered point, in any of several tolerances.
func TestQuickArchiveEpsContract(t *testing.T) {
	f := func(ps pointSeq) bool {
		for _, eps := range []float64{0.1, 0.4} {
			a := NewArchive[int](eps)
			for i, p := range ps {
				a.Update(p, i)
			}
			if !a.EpsDominatesAll(ps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickArchiveMutualNonDominance: no archived point ever dominates
// another archived point.
func TestQuickArchiveMutualNonDominance(t *testing.T) {
	f := func(ps pointSeq) bool {
		a := NewArchive[int](0.25)
		for i, p := range ps {
			a.Update(p, i)
		}
		pts := a.Points()
		for i := range pts {
			for j := range pts {
				if i != j && Dominates(pts[i], pts[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickKungCoversAll: the Kung front weakly dominates every input.
func TestQuickKungCoversAll(t *testing.T) {
	f := func(ps pointSeq) bool {
		front := Kung(ps)
		for _, p := range ps {
			ok := false
			for _, i := range front {
				if WeaklyDominates(ps[i], p) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDominanceIrreflexiveAntisymmetric.
func TestQuickDominanceProperties(t *testing.T) {
	f := func(ad, ac, bd, bc float64) bool {
		a := Point{Div: math.Abs(ad), Cov: math.Abs(ac)}
		b := Point{Div: math.Abs(bd), Cov: math.Abs(bc)}
		if Dominates(a, a) {
			return false // irreflexive
		}
		if Dominates(a, b) && Dominates(b, a) {
			return false // antisymmetric
		}
		// Dominance implies weak dominance and 0-ε-dominance.
		if Dominates(a, b) && (!WeaklyDominates(a, b) || !EpsDominates(a, b, 1e-12)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickBoxMonotone: box indices are monotone in the point coordinates.
func TestQuickBoxMonotone(t *testing.T) {
	f := func(x, y float64, e uint8) bool {
		eps := 0.05 + float64(e%40)/40
		a, b := math.Abs(x), math.Abs(y)
		if a > b {
			a, b = b, a
		}
		ba := BoxOf(Point{Div: a, Cov: a}, eps)
		bb := BoxOf(Point{Div: b, Cov: b}, eps)
		return bb.DI >= ba.DI && bb.FI >= ba.FI
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinEpsIsSufficient: the returned ε_m actually makes the set an
// ε_m-Pareto set of the reference.
func TestQuickMinEpsIsSufficient(t *testing.T) {
	f := func(approx, ref pointSeq) bool {
		em := MinEps(approx, ref)
		if math.IsInf(em, 1) {
			return true
		}
		for _, r := range ref {
			ok := false
			for _, a := range approx {
				if EpsDominates(a, r, em+1e-9) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
