package pareto

import (
	"math/rand"
	"testing"
)

func BenchmarkArchiveUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	points := make([]Point, 4096)
	for i := range points {
		points[i] = Point{Div: rng.Float64() * 100, Cov: rng.Float64() * 100}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewArchive[int](0.1)
		for j, p := range points {
			a.Update(p, j)
		}
	}
}

func BenchmarkKung(b *testing.B) {
	points := randomPoints(4096, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Kung(points)
	}
}

func BenchmarkNaiveParetoSet(b *testing.B) {
	points := randomPoints(1024, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveParetoSet(points)
	}
}

func BenchmarkMinEps(b *testing.B) {
	approx := randomPoints(32, 3)
	ref := randomPoints(2048, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinEps(approx, ref)
	}
}
