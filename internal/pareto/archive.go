package pareto

// UpdateCase identifies which branch of the paper's Update procedure
// (Fig. 5) handled an instance.
type UpdateCase uint8

const (
	// Rejected means the instance was dominated and not added.
	Rejected UpdateCase = iota
	// ReplacedBoxes is Case 1: the instance's box dominates existing boxes,
	// whose representatives were evicted.
	ReplacedBoxes
	// ReplacedInstance is Case 2: the instance falls into an occupied box
	// and dominates that box's representative.
	ReplacedInstance
	// AddedBox is Case 3: the instance opens a new non-dominated box.
	AddedBox
)

// String names the case.
func (c UpdateCase) String() string {
	switch c {
	case Rejected:
		return "rejected"
	case ReplacedBoxes:
		return "replaced-boxes"
	case ReplacedInstance:
		return "replaced-instance"
	case AddedBox:
		return "added-box"
	default:
		return "unknown"
	}
}

// Entry pairs a payload with its quality point and box.
type Entry[T any] struct {
	Point   Point
	Box     Box
	Payload T
}

// Result reports what Update did.
type Result[T any] struct {
	Case UpdateCase
	// Accepted is true when the instance entered the archive.
	Accepted bool
	// Evicted lists payloads removed to make room (Cases 1 and 2).
	Evicted []T
}

// Archive maintains an ε-Pareto set over a stream of (point, payload)
// pairs: each occupied box holds exactly one representative, boxes never
// dominate each other, and every instance ever offered is ε-dominated by
// some archived representative. It implements procedure Update of the
// paper with its three cases.
type Archive[T any] struct {
	eps     float64
	entries []Entry[T]
}

// NewArchive returns an empty archive with tolerance eps (> 0).
func NewArchive[T any](eps float64) *Archive[T] {
	if eps <= 0 {
		panic("pareto: archive eps must be positive")
	}
	return &Archive[T]{eps: eps}
}

// Eps returns the current tolerance.
func (a *Archive[T]) Eps() float64 { return a.eps }

// Len returns the number of archived representatives.
func (a *Archive[T]) Len() int { return len(a.entries) }

// Entries returns the archived entries; callers must not mutate the slice.
func (a *Archive[T]) Entries() []Entry[T] { return a.entries }

// Points returns the archived quality points.
func (a *Archive[T]) Points() []Point {
	ps := make([]Point, len(a.entries))
	for i := range a.entries {
		ps[i] = a.entries[i].Point
	}
	return ps
}

// Payloads returns the archived payloads.
func (a *Archive[T]) Payloads() []T {
	out := make([]T, len(a.entries))
	for i := range a.entries {
		out[i] = a.entries[i].Payload
	}
	return out
}

// Update offers one instance to the archive, applying the paper's case
// analysis:
//
//	Case 1 — the instance's box strictly dominates one or more archived
//	boxes: evict their representatives, add the instance.
//	Case 2 — the instance lands in an occupied box: keep whichever of the
//	two representatives dominates the other (ties keep the incumbent).
//	Case 3 — no archived box weakly dominates the instance's box: add it
//	as a new box representative.
//	Otherwise the instance is rejected.
func (a *Archive[T]) Update(p Point, payload T) Result[T] {
	box := BoxOf(p, a.eps)
	// Case 1: box-level dominance over existing boxes.
	var dominated []int
	for i := range a.entries {
		if box.Dominates(a.entries[i].Box) {
			dominated = append(dominated, i)
		}
	}
	if len(dominated) > 0 {
		res := Result[T]{Case: ReplacedBoxes, Accepted: true}
		kept := a.entries[:0]
		di := 0
		for i := range a.entries {
			if di < len(dominated) && dominated[di] == i {
				res.Evicted = append(res.Evicted, a.entries[i].Payload)
				di++
				continue
			}
			kept = append(kept, a.entries[i])
		}
		a.entries = append(kept, Entry[T]{Point: p, Box: box, Payload: payload})
		return res
	}
	// Case 2: same box as an incumbent.
	for i := range a.entries {
		if a.entries[i].Box == box {
			if Dominates(p, a.entries[i].Point) {
				evicted := a.entries[i].Payload
				a.entries[i] = Entry[T]{Point: p, Box: box, Payload: payload}
				return Result[T]{Case: ReplacedInstance, Accepted: true, Evicted: []T{evicted}}
			}
			return Result[T]{Case: Rejected}
		}
	}
	// Case 3: add if no box weakly dominates ours.
	for i := range a.entries {
		if a.entries[i].Box.WeaklyDominates(box) {
			return Result[T]{Case: Rejected}
		}
	}
	a.entries = append(a.entries, Entry[T]{Point: p, Box: box, Payload: payload})
	return Result[T]{Case: AddedBox, Accepted: true}
}

// MergeStats tallies what a bulk Merge did.
type MergeStats struct {
	// Accepted counts offered entries that entered the archive (Cases 1-3).
	Accepted int `json:"accepted"`
	// Rejected counts offered entries the archive dominated away.
	Rejected int `json:"rejected"`
	// Evicted counts previously archived representatives displaced by
	// accepted entries.
	Evicted int `json:"evicted"`
}

// Add folds another merge's tallies in.
func (s *MergeStats) Add(o MergeStats) {
	s.Accepted += o.Accepted
	s.Rejected += o.Rejected
	s.Evicted += o.Evicted
}

// Merge unions a batch of entries into the archive by offering each to
// Update in order, so the result stays inside the ε-Pareto contract for
// the combined point stream. The surviving *box set* is independent of
// offer order (each box survives iff no offered box strictly dominates
// it), which is what lets a cluster coordinator merge per-worker slab
// archives in any arrival order and still converge on one box set; the
// chosen *representative* within a box follows Update's keep-the-incumbent
// tie-break, so a deterministic merge order yields a fully deterministic
// archive. Entry Box fields are recomputed under the receiver's ε, so
// archives with different tolerances merge correctly (Lemma 4: established
// ε-dominance survives any larger ε').
func (a *Archive[T]) Merge(entries []Entry[T]) MergeStats {
	var st MergeStats
	for i := range entries {
		res := a.Update(entries[i].Point, entries[i].Payload)
		if res.Accepted {
			st.Accepted++
		} else {
			st.Rejected++
		}
		st.Evicted += len(res.Evicted)
	}
	return st
}

// Classify reports which Update case would apply for p without mutating the
// archive; OnlineQGen uses it to decide whether an arrival would grow the
// set before committing.
func (a *Archive[T]) Classify(p Point) UpdateCase {
	box := BoxOf(p, a.eps)
	for i := range a.entries {
		if box.Dominates(a.entries[i].Box) {
			return ReplacedBoxes
		}
	}
	for i := range a.entries {
		if a.entries[i].Box == box {
			if Dominates(p, a.entries[i].Point) {
				return ReplacedInstance
			}
			return Rejected
		}
	}
	for i := range a.entries {
		if a.entries[i].Box.WeaklyDominates(box) {
			return Rejected
		}
	}
	return AddedBox
}

// SetEps changes the tolerance and re-buckets every archived entry,
// re-running the case analysis so the archive's invariants hold under the
// new, larger ε (Lemma 4 guarantees previously established ε-dominance is
// preserved). Entries that become dominated are dropped and returned.
func (a *Archive[T]) SetEps(eps float64) []T {
	if eps <= 0 {
		panic("pareto: archive eps must be positive")
	}
	old := a.entries
	a.eps = eps
	a.entries = nil
	var dropped []T
	for _, e := range old {
		res := a.Update(e.Point, e.Payload)
		if !res.Accepted {
			dropped = append(dropped, e.Payload)
		}
		dropped = append(dropped, res.Evicted...)
	}
	return dropped
}

// Remove deletes the entry at index i and returns its payload.
func (a *Archive[T]) Remove(i int) T {
	e := a.entries[i]
	a.entries = append(a.entries[:i], a.entries[i+1:]...)
	return e.Payload
}

// NearestNeighbor returns the index of the archived entry closest to p in
// the range-normalized (δ, f) space and the distance; -1 when empty.
func (a *Archive[T]) NearestNeighbor(p Point, divMax, covMax float64) (int, float64) {
	best, bestD := -1, 0.0
	for i := range a.entries {
		d := Distance(p, a.entries[i].Point, divMax, covMax)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// EpsDominatesAll reports whether every point in ref is ε-dominated by some
// archived entry under the archive's current ε: the archive is a valid
// ε-Pareto set for ref.
func (a *Archive[T]) EpsDominatesAll(ref []Point) bool {
	for _, r := range ref {
		ok := false
		for i := range a.entries {
			if EpsDominates(a.entries[i].Point, r, a.eps) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
