package pareto

import "math"

// MinEps returns ε_m: the smallest ε ≥ 0 for which approx is an ε-Pareto
// set of ref — every reference point is ε_m-dominated by some approximation
// point. It returns +Inf when approx is empty and ref is not.
func MinEps(approx, ref []Point) float64 {
	if len(ref) == 0 {
		return 0
	}
	if len(approx) == 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for _, r := range ref {
		best := math.Inf(1)
		for _, a := range approx {
			if e := RequiredEps(a, r); e < best {
				best = e
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// EpsIndicator computes the paper's normalized ε-indicator
// I_ε = 1 − ε_m/ε for an approximation set produced under tolerance eps.
// I_ε = 1 means the set is an exact Pareto approximation (ε_m = 0); values
// approaching 0 mean the full tolerance was needed. The result may be
// negative when the set fails its ε contract.
func EpsIndicator(approx, ref []Point, eps float64) float64 {
	em := MinEps(approx, ref)
	if math.IsInf(em, 1) {
		return math.Inf(-1)
	}
	return 1 - em/eps
}

// RIndicator computes the paper's preference-weighted quality indicator
// I_R = ((1−λ_R)·δ* + λ_R·f*)/2, where δ* (f*) is the best diversity
// (coverage) in the set normalized into [0,1] by divMax (covMax) — the
// maxima over the full instance space. λ_R near 1 rewards coverage, near 0
// rewards diversity.
func RIndicator(set []Point, lambdaR, divMax, covMax float64) float64 {
	if len(set) == 0 {
		return 0
	}
	bestDiv, bestCov := 0.0, 0.0
	for _, p := range set {
		if p.Div > bestDiv {
			bestDiv = p.Div
		}
		if p.Cov > bestCov {
			bestCov = p.Cov
		}
	}
	if divMax > 0 {
		bestDiv /= divMax
	}
	if covMax > 0 {
		bestCov /= covMax
	}
	if bestDiv > 1 {
		bestDiv = 1
	}
	if bestCov > 1 {
		bestCov = 1
	}
	return ((1-lambdaR)*bestDiv + lambdaR*bestCov) / 2
}

// Hypervolume returns the area of the objective space dominated by the set
// relative to the origin, normalized by divMax·covMax into [0,1]. It is an
// auxiliary indicator (not in the paper's figures) useful for ablations.
func Hypervolume(set []Point, divMax, covMax float64) float64 {
	if len(set) == 0 || divMax <= 0 || covMax <= 0 {
		return 0
	}
	front := Kung(set)
	// front is ordered by decreasing Div and increasing Cov; sweep it in
	// increasing Div, accumulating each point's vertical strip.
	area := 0.0
	prevDiv := 0.0
	for i := len(front) - 1; i >= 0; i-- {
		p := set[front[i]]
		cov := math.Min(p.Cov, covMax)
		div := math.Min(p.Div, divMax)
		if div > prevDiv {
			area += (div - prevDiv) * cov
			prevDiv = div
		}
	}
	return area / (divMax * covMax)
}
