package rpq

import (
	"sort"

	"fairsqg/internal/graph"
)

// NFA is a Thompson automaton over edge labels with ε-transitions already
// eliminated from the transition relation exposed to evaluation.
type NFA struct {
	numStates int
	start     int
	accept    map[int]bool
	// trans[state] lists (label, next) pairs after ε-closure folding.
	trans [][]transition
	// startClosure is the ε-closure of the start state.
	startClosure []int
}

type transition struct {
	label graph.LabelID
	next  int
}

// builder state during Thompson construction.
type nfaBuilder struct {
	eps    [][]int        // ε edges
	step   [][]rawStep    // labeled edges
	labels map[string]int // interned later against a graph
	names  []string
}

type rawStep struct {
	label string
	next  int
}

func (b *nfaBuilder) newState() int {
	b.eps = append(b.eps, nil)
	b.step = append(b.step, nil)
	return len(b.eps) - 1
}

// fragment is a partial automaton with one entry and one exit state.
type fragment struct{ in, out int }

// build recursively constructs the Thompson fragment for e.
func (b *nfaBuilder) build(e Expr) fragment {
	switch t := e.(type) {
	case Label:
		in, out := b.newState(), b.newState()
		b.step[in] = append(b.step[in], rawStep{label: t.Name, next: out})
		return fragment{in: in, out: out}
	case Concat:
		frags := make([]fragment, len(t.Parts))
		for i, p := range t.Parts {
			frags[i] = b.build(p)
			if i > 0 {
				b.eps[frags[i-1].out] = append(b.eps[frags[i-1].out], frags[i].in)
			}
		}
		return fragment{in: frags[0].in, out: frags[len(frags)-1].out}
	case Alt:
		in, out := b.newState(), b.newState()
		for _, br := range t.Branches {
			f := b.build(br)
			b.eps[in] = append(b.eps[in], f.in)
			b.eps[f.out] = append(b.eps[f.out], out)
		}
		return fragment{in: in, out: out}
	case Star:
		in, out := b.newState(), b.newState()
		f := b.build(t.Body)
		b.eps[in] = append(b.eps[in], f.in, out)
		b.eps[f.out] = append(b.eps[f.out], f.in, out)
		return fragment{in: in, out: out}
	case Plus:
		f := b.build(t.Body)
		out := b.newState()
		b.eps[f.out] = append(b.eps[f.out], f.in, out)
		return fragment{in: f.in, out: out}
	case Opt:
		in, out := b.newState(), b.newState()
		f := b.build(t.Body)
		b.eps[in] = append(b.eps[in], f.in, out)
		b.eps[f.out] = append(b.eps[f.out], out)
		return fragment{in: in, out: out}
	default:
		panic("rpq: unknown expression node")
	}
}

// Compile translates a path expression into an evaluation-ready NFA whose
// labels are interned against g (unknown labels produce dead transitions,
// which is correct: such edges cannot exist in g).
func Compile(e Expr, g *graph.Graph) *NFA {
	b := &nfaBuilder{}
	f := b.build(e)
	n := len(b.eps)

	// ε-closures.
	closure := make([][]int, n)
	for s := 0; s < n; s++ {
		seen := map[int]bool{s: true}
		stack := []int{s}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nxt := range b.eps[cur] {
				if !seen[nxt] {
					seen[nxt] = true
					stack = append(stack, nxt)
				}
			}
		}
		cl := make([]int, 0, len(seen))
		for st := range seen {
			cl = append(cl, st)
		}
		sort.Ints(cl)
		closure[s] = cl
	}

	nfa := &NFA{
		numStates: n,
		start:     f.in,
		accept:    map[int]bool{},
		trans:     make([][]transition, n),
	}
	// Accepting: any state whose closure reaches f.out.
	for s := 0; s < n; s++ {
		for _, c := range closure[s] {
			if c == f.out {
				nfa.accept[s] = true
			}
		}
	}
	// Fold ε-closures into the transition relation: from s, a labeled step
	// of any state in closure(s) is available.
	for s := 0; s < n; s++ {
		seen := map[transition]bool{}
		for _, c := range closure[s] {
			for _, rs := range b.step[c] {
				id := g.LookupLabel(rs.label)
				if id == graph.InvalidLabel {
					continue
				}
				tr := transition{label: id, next: rs.next}
				if !seen[tr] {
					seen[tr] = true
					nfa.trans[s] = append(nfa.trans[s], tr)
				}
			}
		}
	}
	nfa.startClosure = closure[f.in]
	return nfa
}

// AcceptsEmpty reports whether the empty word is in the language (a source
// node then matches itself as a target).
func (n *NFA) AcceptsEmpty() bool { return n.accept[n.start] }

// Eval computes the targets reachable from the given sources along paths
// whose label word is accepted, using at most maxHops edges. The result is
// sorted and deduplicated.
func (n *NFA) Eval(g *graph.Graph, sources []graph.NodeID, maxHops int) []graph.NodeID {
	type pair struct {
		node  graph.NodeID
		state int
	}
	seen := make(map[pair]bool, len(sources)*2)
	accepted := map[graph.NodeID]bool{}
	frontier := make([]pair, 0, len(sources))
	for _, s := range sources {
		p := pair{node: s, state: n.start}
		if !seen[p] {
			seen[p] = true
			frontier = append(frontier, p)
			if n.accept[n.start] {
				accepted[s] = true
			}
		}
	}
	for hop := 0; hop < maxHops && len(frontier) > 0; hop++ {
		var next []pair
		for _, p := range frontier {
			for _, tr := range n.trans[p.state] {
				for _, e := range g.Out(p.node) {
					if e.Label != tr.label {
						continue
					}
					np := pair{node: e.To, state: tr.next}
					if seen[np] {
						continue
					}
					seen[np] = true
					if n.accept[tr.next] {
						accepted[e.To] = true
					}
					next = append(next, np)
				}
			}
		}
		frontier = next
	}
	out := make([]graph.NodeID, 0, len(accepted))
	for v := range accepted {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
