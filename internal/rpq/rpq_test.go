package rpq

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/pareto"
)

func TestParse(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"cites", "cites"},
		{"cites/authored", "cites/authored"},
		{"cites|authored", "cites|authored"},
		{"cites*", "cites*"},
		{"cites+", "cites+"},
		{"cites?", "cites?"},
		{"(cites|refs)/authored", "(cites|refs)/authored"},
		{"cites/(refs|links)*", "cites/(refs|links)*"},
		{"a/b|c/d", "a/b|c/d"},
		{" a / b ", "a/b"},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if e.String() != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, e.String(), c.want)
		}
		// Round trip.
		e2, err := Parse(e.String())
		if err != nil || e2.String() != e.String() {
			t.Errorf("round trip of %q failed: %v", c.src, err)
		}
	}
	bad := []string{"", "(", "a|", "a/", "*", "a)b", "a$(b)"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestTopBranches(t *testing.T) {
	e := MustParse("a|b/c|d*")
	if got := len(TopBranches(e)); got != 3 {
		t.Errorf("branches = %d", got)
	}
	if got := len(TopBranches(MustParse("a/b"))); got != 1 {
		t.Errorf("single branch = %d", got)
	}
}

// pathGraph builds: s0 -a-> m1 -a-> m2 -a-> m3, s0 -b-> x1, x1 -a-> m2.
func pathGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.AddNode("N", map[string]graph.Value{"id": graph.Int(int64(i))})
	}
	edges := []struct {
		from, to int
		label    string
	}{
		{0, 1, "a"}, {1, 2, "a"}, {2, 3, "a"},
		{0, 4, "b"}, {4, 2, "a"},
	}
	for _, e := range edges {
		if err := g.AddEdge(graph.NodeID(e.from), graph.NodeID(e.to), e.label); err != nil {
			t.Fatal(err)
		}
	}
	g.Freeze()
	return g
}

func evalIDs(t *testing.T, g *graph.Graph, expr string, sources []graph.NodeID, hops int) []graph.NodeID {
	t.Helper()
	nfa := Compile(MustParse(expr), g)
	return nfa.Eval(g, sources, hops)
}

func TestNFAEval(t *testing.T) {
	g := pathGraph(t)
	s := []graph.NodeID{0}
	cases := []struct {
		expr string
		hops int
		want []graph.NodeID
	}{
		{"a", 10, []graph.NodeID{1}},
		{"a/a", 10, []graph.NodeID{2}},
		{"a*", 10, []graph.NodeID{0, 1, 2, 3}},
		{"a+", 10, []graph.NodeID{1, 2, 3}},
		{"a?", 10, []graph.NodeID{0, 1}},
		{"b/a", 10, []graph.NodeID{2}},
		{"a|b", 10, []graph.NodeID{1, 4}},
		{"(a|b)/a", 10, []graph.NodeID{2}},
		{"(a|b)*", 10, []graph.NodeID{0, 1, 2, 3, 4}},
		// Hop bounds truncate.
		{"a*", 1, []graph.NodeID{0, 1}},
		{"a*", 2, []graph.NodeID{0, 1, 2}},
		{"a/a", 1, nil},
		// Unknown label: dead.
		{"z", 10, nil},
		{"z|a", 10, []graph.NodeID{1}},
	}
	for _, c := range cases {
		got := evalIDs(t, g, c.expr, s, c.hops)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("eval(%q, hops=%d) = %v, want %v", c.expr, c.hops, got, c.want)
		}
	}
}

func TestNFAEmptyWord(t *testing.T) {
	g := pathGraph(t)
	if !Compile(MustParse("a*"), g).AcceptsEmpty() {
		t.Error("a* should accept the empty word")
	}
	if Compile(MustParse("a"), g).AcceptsEmpty() {
		t.Error("a should not accept the empty word")
	}
}

// bruteForcePaths enumerates all bounded paths and checks word membership
// via the NFA run on the word — the oracle for Eval.
func bruteForcePaths(g *graph.Graph, expr Expr, sources []graph.NodeID, maxHops int) []graph.NodeID {
	nfa := Compile(expr, g)
	found := map[graph.NodeID]bool{}
	var walk func(v graph.NodeID, states map[int]bool, depth int)
	walk = func(v graph.NodeID, states map[int]bool, depth int) {
		for st := range states {
			if nfa.accept[st] {
				found[v] = true
			}
		}
		if depth == maxHops {
			return
		}
		for _, e := range g.Out(v) {
			next := map[int]bool{}
			for st := range states {
				for _, tr := range nfa.trans[st] {
					if tr.label == e.Label {
						next[tr.next] = true
					}
				}
			}
			if len(next) > 0 {
				walk(e.To, next, depth+1)
			}
		}
	}
	for _, s := range sources {
		walk(s, map[int]bool{nfa.start: true}, 0)
	}
	var out []graph.NodeID
	for v := range found {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestNFAEvalAgainstBruteForce(t *testing.T) {
	const seed = 4 // fixed and logged so a failing trial reproduces
	rng := rand.New(rand.NewSource(seed))
	exprs := []string{"a", "a/b", "a|b", "a*", "(a|b)/a", "a/(a|b)*", "a+|b"}
	for trial := 0; trial < 50; trial++ {
		g := graph.New()
		n := 6 + rng.Intn(4)
		for i := 0; i < n; i++ {
			g.AddNode("N", nil)
		}
		for e := 0; e < n*2; e++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from != to {
				label := "a"
				if rng.Intn(2) == 0 {
					label = "b"
				}
				_ = g.AddEdge(graph.NodeID(from), graph.NodeID(to), label)
			}
		}
		g.Freeze()
		sources := []graph.NodeID{graph.NodeID(rng.Intn(n))}
		for _, src := range exprs {
			expr := MustParse(src)
			hops := 1 + rng.Intn(4)
			got := Compile(expr, g).Eval(g, sources, hops)
			want := bruteForcePaths(g, expr, sources, hops)
			if len(got) == 0 {
				got = nil
			}
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d trial %d expr %q hops %d: got %v want %v", seed, trial, src, hops, got, want)
			}
		}
	}
}

// citeGraph builds a small citation graph for generation tests.
func citeGraph(t *testing.T) (*graph.Graph, groups.Set) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	g := graph.New()
	topics := []string{"ml", "db"}
	n := 120
	for i := 0; i < n; i++ {
		g.AddNode("Paper", map[string]graph.Value{
			"topic": graph.Str(topics[rng.Intn(2)]),
			"year":  graph.Int(int64(2000 + i/6)),
		})
	}
	for i := 1; i < n; i++ {
		refs := 1 + rng.Intn(3)
		for r := 0; r < refs; r++ {
			j := rng.Intn(i)
			_ = g.AddEdge(graph.NodeID(i), graph.NodeID(j), "cites")
		}
	}
	g.Freeze()
	set := groups.EqualOpportunity(groups.ByAttribute(g, "Paper", "topic"), 3)
	return g, set
}

func TestTemplateBasics(t *testing.T) {
	g, _ := citeGraph(t)
	tpl, err := NewTemplate("lit", "Paper", MustParse("cites|cites/cites"), []int{4, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	tpl.AddVar("y", "year", graph.OpGE)
	if err := tpl.BindDomains(g, 5); err != nil {
		t.Fatal(err)
	}
	root := tpl.Root()
	if err := tpl.Validate(root); err != nil {
		t.Fatal(err)
	}
	// (5+1 var options) × 2^2 branches × 3 bounds = 72.
	if got := tpl.InstanceSpaceSize(); got != 72 {
		t.Errorf("space = %d", got)
	}
	// Refinement steps from the root: var wildcard→0, two branch flips,
	// bound 0→1.
	kids := tpl.RefineSteps(root)
	if len(kids) != 4 {
		t.Fatalf("root children = %d", len(kids))
	}
	for _, child := range kids {
		if !tpl.Refines(root, child) {
			t.Errorf("child %v does not refine root", child)
		}
		if tpl.Refines(child, root) {
			t.Errorf("root refines child %v", child)
		}
	}
	// Describe mentions the path and bound.
	d := tpl.Describe(root)
	if !strings.Contains(d, "hops<=4") || !strings.Contains(d, "cites") {
		t.Errorf("Describe = %q", d)
	}
	// All branches disabled → empty language.
	allOff := append(Instantiation(nil), root...)
	allOff[1], allOff[2] = 1, 1
	if tpl.EnabledExpr(allOff) != nil {
		t.Error("disabled branches should yield nil expr")
	}
	if !strings.Contains(tpl.Describe(allOff), "∅") {
		t.Error("Describe should mark the empty language")
	}
}

func TestTemplateErrors(t *testing.T) {
	if _, err := NewTemplate("x", "", MustParse("a"), []int{2}); err == nil {
		t.Error("empty source label accepted")
	}
	if _, err := NewTemplate("x", "P", MustParse("a"), nil); err == nil {
		t.Error("no bounds accepted")
	}
	if _, err := NewTemplate("x", "P", MustParse("a"), []int{0}); err == nil {
		t.Error("zero bound accepted")
	}
	if _, err := NewTemplate("x", "P", MustParse("a"), []int{2, 3}); err == nil {
		t.Error("ascending bounds accepted")
	}
}

// TestGenerateMatchesEnumerate: the refinement-based generator must produce
// a valid ε-Pareto set over the feasible space, with fewer verifications.
func TestGenerateMatchesEnumerate(t *testing.T) {
	g, set := citeGraph(t)
	tpl, err := NewTemplate("lit", "Paper", MustParse("cites|cites/cites"), []int{6, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	tpl.AddVar("y", "year", graph.OpGE)
	if err := tpl.BindDomains(g, 6); err != nil {
		t.Fatal(err)
	}
	cfg := &Config{G: g, Template: tpl, Groups: set, Eps: 0.2, DistanceAttrs: []string{"topic", "year"}}
	refRunner, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := refRunner.AllFeasible()
	if len(ref) == 0 {
		t.Fatal("no feasible RPQ instances in fixture")
	}
	refPoints := make([]pareto.Point, len(ref))
	for i, v := range ref {
		refPoints[i] = v.Point
	}
	for _, mode := range []string{"enumerate", "generate"} {
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var res *Result
		if mode == "enumerate" {
			res, err = r.Enumerate()
		} else {
			res, err = r.Generate()
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Set) == 0 {
			t.Fatalf("%s: empty set", mode)
		}
		if em := pareto.MinEps(res.Points(), refPoints); em > cfg.Eps+1e-9 {
			t.Errorf("%s: ε_m = %v > ε", mode, em)
		}
		if mode == "generate" && res.VerifiedCount > tpl.InstanceSpaceSize() {
			t.Errorf("generate verified %d > space %d", res.VerifiedCount, tpl.InstanceSpaceSize())
		}
	}
}

// TestMonotonicity: refining an RPQ instance never grows the target set.
func TestRPQMonotonicity(t *testing.T) {
	g, set := citeGraph(t)
	tpl, err := NewTemplate("lit", "Paper", MustParse("cites|cites/cites"), []int{6, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	tpl.AddVar("y", "year", graph.OpGE)
	if err := tpl.BindDomains(g, 4); err != nil {
		t.Fatal(err)
	}
	cfg := &Config{G: g, Template: tpl, Groups: set, Eps: 0.2}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(in Instantiation, parentTargets []graph.NodeID)
	seen := map[string]bool{}
	walk = func(in Instantiation, parentTargets []graph.NodeID) {
		if seen[in.Key()] {
			return
		}
		seen[in.Key()] = true
		v := r.verify(in)
		if parentTargets != nil && len(v.Targets) > len(parentTargets) {
			t.Fatalf("refinement grew targets: %d > %d at %v", len(v.Targets), len(parentTargets), in)
		}
		// Subset check.
		if parentTargets != nil {
			inParent := map[graph.NodeID]bool{}
			for _, p := range parentTargets {
				inParent[p] = true
			}
			for _, tg := range v.Targets {
				if !inParent[tg] {
					t.Fatalf("refinement introduced target %d at %v", tg, in)
				}
			}
		}
		for _, child := range tpl.RefineSteps(in) {
			walk(child, v.Targets)
		}
	}
	walk(tpl.Root(), nil)
}
