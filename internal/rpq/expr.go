// Package rpq extends FairSQG to regular path queries — the query class
// the paper's conclusion names as future work. An RPQ instance selects
// target nodes reachable from predicate-filtered source nodes along paths
// whose edge-label word belongs to a regular language, within a bounded
// number of hops. Templates parameterize the source predicates (range
// variables), the top-level alternation branches (Boolean variables, the
// analogue of edge variables) and the hop bound; the same
// diversity/coverage bi-objective machinery then generates ε-Pareto sets
// of RPQ instances.
package rpq

import (
	"fmt"
	"strings"
)

// Expr is a regular expression over edge labels.
type Expr interface {
	fmt.Stringer
	// precedence for parenthesization in String.
	prec() int
}

// Label matches one edge with the given label.
type Label struct{ Name string }

func (l Label) String() string { return l.Name }
func (l Label) prec() int      { return 3 }

// Concat matches the concatenation of its parts.
type Concat struct{ Parts []Expr }

func (c Concat) String() string {
	out := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		out[i] = wrap(p, c.prec())
	}
	return strings.Join(out, "/")
}
func (c Concat) prec() int { return 2 }

// Alt matches any one of its branches.
type Alt struct{ Branches []Expr }

func (a Alt) String() string {
	out := make([]string, len(a.Branches))
	for i, b := range a.Branches {
		out[i] = wrap(b, a.prec())
	}
	return strings.Join(out, "|")
}
func (a Alt) prec() int { return 1 }

// Star matches zero or more repetitions of its body.
type Star struct{ Body Expr }

func (s Star) String() string { return wrap(s.Body, 3) + "*" }
func (s Star) prec() int      { return 3 }

// Plus matches one or more repetitions of its body.
type Plus struct{ Body Expr }

func (p Plus) String() string { return wrap(p.Body, 3) + "+" }
func (p Plus) prec() int      { return 3 }

// Opt matches zero or one occurrence of its body.
type Opt struct{ Body Expr }

func (o Opt) String() string { return wrap(o.Body, 3) + "?" }
func (o Opt) prec() int      { return 3 }

func wrap(e Expr, outer int) string {
	if e.prec() < outer {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// Parse reads a path expression. Grammar (highest to lowest precedence):
//
//	atom   := LABEL | '(' alt ')'
//	unary  := atom ('*' | '+' | '?')*
//	concat := unary { '/' unary }
//	alt    := concat { '|' concat }
//
// Labels are identifiers ([A-Za-z0-9_]+).
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("rpq: unexpected %q at offset %d", p.src[p.pos:], p.pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) alt() (Expr, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	branches := []Expr{first}
	for p.peek() == '|' {
		p.pos++
		next, err := p.concat()
		if err != nil {
			return nil, err
		}
		branches = append(branches, next)
	}
	if len(branches) == 1 {
		return first, nil
	}
	return Alt{Branches: branches}, nil
}

func (p *parser) concat() (Expr, error) {
	first, err := p.unary()
	if err != nil {
		return nil, err
	}
	parts := []Expr{first}
	for {
		c := p.peek()
		if c == '/' {
			p.pos++
			next, err := p.unary()
			if err != nil {
				return nil, err
			}
			parts = append(parts, next)
			continue
		}
		break
	}
	if len(parts) == 1 {
		return first, nil
	}
	return Concat{Parts: parts}, nil
}

func (p *parser) unary() (Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			e = Star{Body: e}
		case '+':
			p.pos++
			e = Plus{Body: e}
		case '?':
			p.pos++
			e = Opt{Body: e}
		default:
			return e, nil
		}
	}
}

func (p *parser) atom() (Expr, error) {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("rpq: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	case isIdent(c):
		start := p.pos
		for p.pos < len(p.src) && isIdent(p.src[p.pos]) {
			p.pos++
		}
		return Label{Name: p.src[start:p.pos]}, nil
	case c == 0:
		return nil, fmt.Errorf("rpq: unexpected end of expression")
	default:
		return nil, fmt.Errorf("rpq: unexpected %q at offset %d", string(c), p.pos)
	}
}

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// TopBranches returns the branches of a top-level alternation, or the
// expression itself as a single branch.
func TopBranches(e Expr) []Expr {
	if a, ok := e.(Alt); ok {
		return a.Branches
	}
	return []Expr{e}
}
