package rpq

import (
	"math/rand"
	"testing"

	"fairsqg/internal/graph"
)

// TestQuickEvalMonotoneInHops: enlarging the hop bound never removes
// targets (the monotonicity the bound ladder's refinement order relies
// on).
func TestQuickEvalMonotoneInHops(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	exprs := []Expr{
		MustParse("a*"), MustParse("a/b"), MustParse("(a|b)+"), MustParse("a/(a|b)*"),
	}
	for trial := 0; trial < 40; trial++ {
		g := graph.New()
		n := 8 + rng.Intn(6)
		for i := 0; i < n; i++ {
			g.AddNode("N", nil)
		}
		for e := 0; e < n*2; e++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from != to {
				label := "a"
				if rng.Intn(2) == 0 {
					label = "b"
				}
				_ = g.AddEdge(graph.NodeID(from), graph.NodeID(to), label)
			}
		}
		g.Freeze()
		src := []graph.NodeID{graph.NodeID(rng.Intn(n))}
		for _, expr := range exprs {
			nfa := Compile(expr, g)
			prev := map[graph.NodeID]bool{}
			for hops := 0; hops <= 5; hops++ {
				cur := nfa.Eval(g, src, hops)
				curSet := map[graph.NodeID]bool{}
				for _, v := range cur {
					curSet[v] = true
				}
				for v := range prev {
					if !curSet[v] {
						t.Fatalf("trial %d expr %s: target %d lost when hops grew to %d",
							trial, expr, v, hops)
					}
				}
				prev = curSet
			}
		}
	}
}

// TestQuickBranchDisablingShrinks: disabling an alternation branch never
// adds targets.
func TestQuickBranchDisablingShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		g := graph.New()
		n := 10
		for i := 0; i < n; i++ {
			g.AddNode("N", map[string]graph.Value{"x": graph.Int(int64(i))})
		}
		for e := 0; e < 25; e++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from != to {
				label := []string{"a", "b", "c"}[rng.Intn(3)]
				_ = g.AddEdge(graph.NodeID(from), graph.NodeID(to), label)
			}
		}
		g.Freeze()
		tpl, err := NewTemplate("q", "N", MustParse("a|b|c/c"), []int{4})
		if err != nil {
			t.Fatal(err)
		}
		full := tpl.Root()
		fullNFA := Compile(tpl.EnabledExpr(full), g)
		sources := tpl.Sources(g, full)
		fullTargets := map[graph.NodeID]bool{}
		for _, v := range fullNFA.Eval(g, sources, 4) {
			fullTargets[v] = true
		}
		for bi := range tpl.Branches {
			in := append(Instantiation(nil), full...)
			in[len(tpl.Vars)+bi] = 1
			expr := tpl.EnabledExpr(in)
			if expr == nil {
				continue
			}
			sub := Compile(expr, g).Eval(g, sources, 4)
			for _, v := range sub {
				if !fullTargets[v] {
					t.Fatalf("trial %d: disabling branch %d added target %d", trial, bi, v)
				}
			}
		}
	}
}
