package rpq

import (
	"fmt"
	"sort"
	"strings"

	"fairsqg/internal/graph"
)

// Wildcard is the "don't care" binding level for range variables.
const Wildcard = -1

// Variable parameterizes one source-node predicate "source.Attr Op $x".
type Variable struct {
	Name   string
	Attr   string
	Op     graph.Op
	Ladder []graph.Value // relaxed → refined, installed by BindDomains
}

// Template is a parameterized regular path query: find targets reachable
// from predicate-filtered source nodes along paths in a regular language,
// within a bounded number of hops. Three kinds of parameters mirror the
// subgraph-template variables:
//
//   - range variables on the source predicates (literal refinement),
//   - one Boolean flag per top-level alternation branch (disabling a
//     branch shrinks the language — the analogue of an edge variable),
//   - the hop-bound ladder (smaller bounds admit fewer paths).
type Template struct {
	Name        string
	SourceLabel string
	Expr        Expr
	// Branches are the top-level alternation branches of Expr.
	Branches []Expr
	// Bounds is the hop-bound ladder, strictly descending (relaxed first).
	Bounds []int
	// Vars are the range variables over source attributes.
	Vars []Variable
}

// NewTemplate assembles a template; expr's top-level alternation branches
// become the Boolean structure variables. Bounds must be strictly
// descending positive hop limits.
func NewTemplate(name, sourceLabel string, expr Expr, bounds []int) (*Template, error) {
	if sourceLabel == "" {
		return nil, fmt.Errorf("rpq: template needs a source label")
	}
	if len(bounds) == 0 {
		return nil, fmt.Errorf("rpq: template needs at least one hop bound")
	}
	for i, b := range bounds {
		if b <= 0 {
			return nil, fmt.Errorf("rpq: hop bound %d must be positive", b)
		}
		if i > 0 && bounds[i] >= bounds[i-1] {
			return nil, fmt.Errorf("rpq: hop bounds must be strictly descending, got %v", bounds)
		}
	}
	return &Template{
		Name:        name,
		SourceLabel: sourceLabel,
		Expr:        expr,
		Branches:    TopBranches(expr),
		Bounds:      bounds,
	}, nil
}

// AddVar attaches a range variable "source.attr op $name".
func (t *Template) AddVar(name, attr string, op graph.Op) *Template {
	t.Vars = append(t.Vars, Variable{Name: name, Attr: attr, Op: op})
	return t
}

// BindDomains installs value ladders from the label-restricted active
// domain of each variable's attribute, like the subgraph templates.
func (t *Template) BindDomains(g *graph.Graph, maxValues int) error {
	for vi := range t.Vars {
		v := &t.Vars[vi]
		aid := g.AttrIDOf(v.Attr)
		var vals []graph.Value
		for _, node := range g.NodesByLabel(t.SourceLabel) {
			if a := g.AttrValue(node, aid); !a.IsNull() {
				vals = append(vals, a)
			}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
		dedup := vals[:0]
		for i, val := range vals {
			if i == 0 || !val.Equal(vals[i-1]) {
				dedup = append(dedup, val)
			}
		}
		if len(dedup) == 0 {
			return fmt.Errorf("rpq: variable %q: attribute %q empty for label %q", v.Name, v.Attr, t.SourceLabel)
		}
		if maxValues > 0 && len(dedup) > maxValues {
			sub := make([]graph.Value, maxValues)
			step := float64(len(dedup)-1) / float64(maxValues-1)
			for i := range sub {
				sub[i] = dedup[int(float64(i)*step+0.5)]
			}
			dedup = sub
		}
		if v.Op == graph.OpLT || v.Op == graph.OpLE {
			for i, j := 0, len(dedup)-1; i < j; i, j = i+1, j-1 {
				dedup[i], dedup[j] = dedup[j], dedup[i]
			}
		}
		v.Ladder = dedup
	}
	return nil
}

// Instantiation binds every parameter: one level per range variable
// (Wildcard or ladder index), one flag per branch (0 = enabled, 1 =
// disabled), and the hop-bound index. Layout: [vars..., branches..., bound].
type Instantiation []int

// arity returns the expected instantiation length.
func (t *Template) arity() int { return len(t.Vars) + len(t.Branches) + 1 }

// Root returns the most relaxed instantiation: every variable wildcarded,
// all branches enabled, the largest hop bound.
func (t *Template) Root() Instantiation {
	in := make(Instantiation, t.arity())
	for i := range t.Vars {
		in[i] = Wildcard
	}
	return in // branch flags 0 (enabled), bound index 0 (largest)
}

// Validate checks an instantiation's shape.
func (t *Template) Validate(in Instantiation) error {
	if len(in) != t.arity() {
		return fmt.Errorf("rpq: instantiation has %d entries, template needs %d", len(in), t.arity())
	}
	for vi := range t.Vars {
		if in[vi] < Wildcard || in[vi] >= len(t.Vars[vi].Ladder) {
			return fmt.Errorf("rpq: variable %q level %d out of range", t.Vars[vi].Name, in[vi])
		}
	}
	for bi := range t.Branches {
		f := in[len(t.Vars)+bi]
		if f != 0 && f != 1 {
			return fmt.Errorf("rpq: branch flag must be 0 or 1, got %d", f)
		}
	}
	b := in[t.arity()-1]
	if b < 0 || b >= len(t.Bounds) {
		return fmt.Errorf("rpq: bound index %d out of range", b)
	}
	return nil
}

// Refines reports whether b refines a: every predicate at least as
// selective, every disabled branch of a disabled in b, and b's hop bound
// no larger.
func (t *Template) Refines(a, b Instantiation) bool {
	for vi := range t.Vars {
		la, lb := a[vi], b[vi]
		if la == lb || la == Wildcard {
			continue
		}
		if lb == Wildcard || lb < la {
			return false
		}
	}
	for bi := range t.Branches {
		if b[len(t.Vars)+bi] < a[len(t.Vars)+bi] {
			return false
		}
	}
	return b[t.arity()-1] >= a[t.arity()-1]
}

// RefineSteps returns the one-step refinements of in.
func (t *Template) RefineSteps(in Instantiation) []Instantiation {
	var out []Instantiation
	step := func(i, level int) {
		child := make(Instantiation, len(in))
		copy(child, in)
		child[i] = level
		out = append(out, child)
	}
	for vi := range t.Vars {
		switch {
		case in[vi] == Wildcard:
			if len(t.Vars[vi].Ladder) > 0 {
				step(vi, 0)
			}
		case in[vi]+1 < len(t.Vars[vi].Ladder):
			step(vi, in[vi]+1)
		}
	}
	for bi := range t.Branches {
		if in[len(t.Vars)+bi] == 0 {
			step(len(t.Vars)+bi, 1)
		}
	}
	if b := in[t.arity()-1]; b+1 < len(t.Bounds) {
		step(t.arity()-1, b+1)
	}
	return out
}

// Key encodes the instantiation for maps.
func (in Instantiation) Key() string {
	parts := make([]string, len(in))
	for i, v := range in {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// EnabledExpr returns the expression restricted to the enabled branches,
// or nil when every branch is disabled (the empty language).
func (t *Template) EnabledExpr(in Instantiation) Expr {
	var enabled []Expr
	for bi, br := range t.Branches {
		if in[len(t.Vars)+bi] == 0 {
			enabled = append(enabled, br)
		}
	}
	switch len(enabled) {
	case 0:
		return nil
	case 1:
		return enabled[0]
	default:
		return Alt{Branches: enabled}
	}
}

// BranchMask packs the branch flags for NFA caching.
func (t *Template) BranchMask(in Instantiation) uint64 {
	var mask uint64
	for bi := range t.Branches {
		if in[len(t.Vars)+bi] == 0 {
			mask |= 1 << uint(bi)
		}
	}
	return mask
}

// Bound returns the hop limit selected by in.
func (t *Template) Bound(in Instantiation) int { return t.Bounds[in[t.arity()-1]] }

// Sources returns the source nodes satisfying the bound literals.
func (t *Template) Sources(g *graph.Graph, in Instantiation) []graph.NodeID {
	ids := make([]graph.AttrID, len(t.Vars))
	for vi := range t.Vars {
		ids[vi] = g.AttrIDOf(t.Vars[vi].Attr)
	}
	var out []graph.NodeID
	for _, v := range g.NodesByLabel(t.SourceLabel) {
		ok := true
		for vi := range t.Vars {
			level := in[vi]
			if level == Wildcard {
				continue
			}
			if !t.Vars[vi].Op.Apply(g.AttrValue(v, ids[vi]), t.Vars[vi].Ladder[level]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// Describe renders an instance for display.
func (t *Template) Describe(in Instantiation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{", t.Name)
	for vi := range t.Vars {
		if vi > 0 {
			b.WriteString(", ")
		}
		v := &t.Vars[vi]
		if in[vi] == Wildcard {
			fmt.Fprintf(&b, "%s=_", v.Name)
		} else {
			fmt.Fprintf(&b, "%s%s%s", v.Attr, v.Op, v.Ladder[in[vi]])
		}
	}
	if e := t.EnabledExpr(in); e != nil {
		fmt.Fprintf(&b, "; path=%s", e)
	} else {
		b.WriteString("; path=∅")
	}
	fmt.Fprintf(&b, "; hops<=%d}", t.Bound(in))
	return b.String()
}

// InstanceSpaceSize returns the number of distinct instantiations.
func (t *Template) InstanceSpaceSize() int {
	size := len(t.Bounds)
	for vi := range t.Vars {
		size *= len(t.Vars[vi].Ladder) + 1
	}
	for range t.Branches {
		size *= 2
	}
	return size
}
