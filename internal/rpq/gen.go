package rpq

import (
	"fmt"
	"time"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/measure"
	"fairsqg/internal/pareto"
)

// Config is the RPQ generation configuration, mirroring the subgraph one.
type Config struct {
	G        *graph.Graph
	Template *Template
	Groups   groups.Set
	Eps      float64

	// Lambda balances relevance and dissimilarity in δ (default 0.5).
	Lambda float64
	// Relevance defaults to degree relevance over the whole graph.
	Relevance measure.RelevanceFunc
	// Distance defaults to the tuple edit distance over all attributes.
	Distance measure.DistanceFunc
	// DistanceAttrs restricts the default distance.
	DistanceAttrs []string
	// MaxPairs caps pairwise diversity work (default 20000).
	MaxPairs int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.G == nil || !c.G.Frozen() {
		return fmt.Errorf("rpq: config needs a frozen graph")
	}
	if c.Template == nil {
		return fmt.Errorf("rpq: config needs a template")
	}
	for vi := range c.Template.Vars {
		if len(c.Template.Vars[vi].Ladder) == 0 {
			return fmt.Errorf("rpq: variable %q has no ladder; call BindDomains", c.Template.Vars[vi].Name)
		}
	}
	if len(c.Groups) == 0 {
		return fmt.Errorf("rpq: config needs groups")
	}
	if err := c.Groups.Validate(); err != nil {
		return err
	}
	if c.Eps <= 0 {
		return fmt.Errorf("rpq: eps must be positive")
	}
	return nil
}

// Verified is an evaluated RPQ instance.
type Verified struct {
	In       Instantiation
	Targets  []graph.NodeID
	Point    pareto.Point
	Feasible bool
}

// Result is a generation outcome.
type Result struct {
	Set     []*Verified
	Eps     float64
	Elapsed time.Duration
	// Verified counts instance evaluations; Pruned counts skipped
	// refinement children.
	VerifiedCount int
	Pruned        int
}

// Runner evaluates and generates RPQ instances for one configuration.
type Runner struct {
	cfg   *Config
	div   *measure.Diversity
	nfas  map[uint64]*NFA
	cache map[string]*Verified
	stats struct {
		verified int
		pruned   int
	}
}

// NewRunner validates and prepares shared state.
func NewRunner(cfg *Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lambda := cfg.Lambda
	if lambda == 0 {
		lambda = 0.5
	}
	rel := cfg.Relevance
	if rel == nil {
		rel = measure.ConstantRelevance(1)
	}
	dist := cfg.Distance
	if dist == nil {
		dist = measure.TupleDistance(cfg.G, cfg.DistanceAttrs)
	}
	maxPairs := cfg.MaxPairs
	if maxPairs == 0 {
		maxPairs = 20000
	}
	return &Runner{
		cfg: cfg,
		div: &measure.Diversity{
			Lambda:    lambda,
			Relevance: rel,
			Distance:  dist,
			// RPQ targets may span labels; normalize by the whole node
			// population (documented in DESIGN.md).
			LabelPopulation: cfg.G.NumNodes(),
			MaxPairs:        maxPairs,
		},
		nfas:  map[uint64]*NFA{},
		cache: map[string]*Verified{},
	}, nil
}

// nfaFor compiles (and caches) the NFA for an instantiation's enabled
// branches.
func (r *Runner) nfaFor(in Instantiation) *NFA {
	mask := r.cfg.Template.BranchMask(in)
	if nfa, ok := r.nfas[mask]; ok {
		return nfa
	}
	expr := r.cfg.Template.EnabledExpr(in)
	if expr == nil {
		r.nfas[mask] = nil
		return nil
	}
	nfa := Compile(expr, r.cfg.G)
	r.nfas[mask] = nfa
	return nfa
}

// verify evaluates one instantiation (cached).
func (r *Runner) verify(in Instantiation) *Verified {
	key := in.Key()
	if v, ok := r.cache[key]; ok {
		return v
	}
	t := r.cfg.Template
	v := &Verified{In: append(Instantiation(nil), in...)}
	if nfa := r.nfaFor(in); nfa != nil {
		sources := t.Sources(r.cfg.G, in)
		v.Targets = nfa.Eval(r.cfg.G, sources, t.Bound(in))
	}
	v.Feasible = measure.Feasible(r.cfg.Groups, v.Targets)
	if v.Feasible {
		v.Point = pareto.Point{
			Div: r.div.Eval(v.Targets),
			Cov: measure.Coverage(r.cfg.Groups, v.Targets),
		}
	}
	r.cache[key] = v
	r.stats.verified++
	return v
}

// Enumerate verifies the full instance space and reduces it through the
// Update archive — the EnumQGen analogue.
func (r *Runner) Enumerate() (*Result, error) {
	start := time.Now()
	archive := pareto.NewArchive[*Verified](r.cfg.Eps)
	t := r.cfg.Template
	var rec func(in Instantiation, i int)
	rec = func(in Instantiation, i int) {
		if i == t.arity() {
			v := r.verify(in)
			if v.Feasible {
				archive.Update(v.Point, v)
			}
			return
		}
		switch {
		case i < len(t.Vars):
			for l := Wildcard; l < len(t.Vars[i].Ladder); l++ {
				in[i] = l
				rec(in, i+1)
			}
		case i < len(t.Vars)+len(t.Branches):
			for f := 0; f <= 1; f++ {
				in[i] = f
				rec(in, i+1)
			}
		default:
			for b := 0; b < len(t.Bounds); b++ {
				in[i] = b
				rec(in, i+1)
			}
		}
	}
	rec(make(Instantiation, t.arity()), 0)
	return r.result(archive, start), nil
}

// Generate runs the RfQGen strategy on the RPQ lattice: depth-first
// refinement from the most relaxed instantiation with infeasibility
// subtree pruning (shrinking the language, tightening a predicate or
// lowering the bound can only shrink the target set, so Lemma 2 carries
// over verbatim).
func (r *Runner) Generate() (*Result, error) {
	start := time.Now()
	archive := pareto.NewArchive[*Verified](r.cfg.Eps)
	t := r.cfg.Template
	visited := map[string]bool{}
	var explore func(in Instantiation)
	explore = func(in Instantiation) {
		key := in.Key()
		if visited[key] {
			return
		}
		visited[key] = true
		v := r.verify(in)
		if !v.Feasible {
			r.stats.pruned += len(t.RefineSteps(in))
			return
		}
		archive.Update(v.Point, v)
		for _, child := range t.RefineSteps(in) {
			explore(child)
		}
	}
	explore(t.Root())
	return r.result(archive, start), nil
}

// AllFeasible enumerates and returns every feasible instance (reference
// set for indicators).
func (r *Runner) AllFeasible() []*Verified {
	t := r.cfg.Template
	var out []*Verified
	var rec func(in Instantiation, i int)
	rec = func(in Instantiation, i int) {
		if i == t.arity() {
			if v := r.verify(in); v.Feasible {
				out = append(out, v)
			}
			return
		}
		switch {
		case i < len(t.Vars):
			for l := Wildcard; l < len(t.Vars[i].Ladder); l++ {
				in[i] = l
				rec(in, i+1)
			}
		case i < len(t.Vars)+len(t.Branches):
			for f := 0; f <= 1; f++ {
				in[i] = f
				rec(in, i+1)
			}
		default:
			for b := 0; b < len(t.Bounds); b++ {
				in[i] = b
				rec(in, i+1)
			}
		}
	}
	rec(make(Instantiation, t.arity()), 0)
	return out
}

func (r *Runner) result(archive *pareto.Archive[*Verified], start time.Time) *Result {
	set := archive.Payloads()
	// Present by decreasing diversity like the subgraph algorithms.
	for i := 1; i < len(set); i++ {
		for j := i; j > 0 && set[j].Point.Div > set[j-1].Point.Div; j-- {
			set[j], set[j-1] = set[j-1], set[j]
		}
	}
	return &Result{
		Set:           set,
		Eps:           r.cfg.Eps,
		Elapsed:       time.Since(start),
		VerifiedCount: r.stats.verified,
		Pruned:        r.stats.pruned,
	}
}

// Points extracts quality coordinates.
func (res *Result) Points() []pareto.Point {
	ps := make([]pareto.Point, len(res.Set))
	for i, v := range res.Set {
		ps[i] = v.Point
	}
	return ps
}
