//go:build linux

package graph

import "syscall"

// mmapExtraFlags pre-faults the mapping at mmap time: the v2 loader's
// validation pass reads every section, so paying one populate syscall
// beats taking a soft fault per 4 KiB page.
const mmapExtraFlags = syscall.MAP_POPULATE
