package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"os"
	"sort"
)

// Binary graph snapshots serialize the *frozen* representation directly —
// interned label and attribute tables, per-node labels, both adjacency
// directions, typed attribute columns with presence bitmaps, active
// domains, the label index and the per-(label, attribute) sorted
// permutation indexes — so ReadSnapshot reconstructs a frozen graph with
// pure sequential decoding: no parsing, no column transposition and no
// re-sorting. Restart cost becomes proportional to I/O instead of to
// Freeze's O(n log n) index builds.
//
// Layout (all integers little-endian; "uvarint" is unsigned LEB128):
//
//	magic   [8]byte  "FSQGSNAP"
//	version uint32   (SnapshotVersion)
//	count   uint32   number of sections (fixed per version)
//	table   count × { tag [4]byte, offset uint64, length uint64, crc uint32 }
//	payloads, contiguous and in table order
//
// Sections appear in the fixed order of their version's section list with
// contiguous offsets; readers reject reordered, overlapping, truncated or
// trailing bytes, and (on the heap decode path) verify each section's
// CRC-32 (IEEE) before decoding it.
//
// Two layouts share this framing:
//
//   - Version 1 (this file) is varint-packed: a leading string table
//     (STRS) interns every string once and all later sections reference
//     it, so categorical attributes cost one uvarint per occurrence on
//     disk. It always decodes into heap slices.
//   - Version 2 (snapshot_v2.go) is the mmap layout: every hot section is
//     a little-endian fixed-width array at an 8-byte-aligned offset,
//     usable in place as an []int32/[]uint64/[]float64 view over the
//     mapped file; varint encoding is confined to a lazily-materialized
//     string table and a small mixed-kind spill section.
//
// Versioning policy: WriteSnapshot emits SnapshotVersion (2); readers
// accept both versions — v1 through the decode-to-heap path below (the
// counted fallback the server reports as v1Fallbacks), v2 through the
// view-based loader. OpenSnapshotMapped accepts only v2 and returns
// ErrSnapshotVersion for v1 so callers can fall back to a heap decode.
// Snapshots are a cache of a source graph, not an archival format — on an
// unknown version callers fall back to the TSV/JSON source and rewrite
// the snapshot.

// SnapshotVersion is the format version WriteSnapshot emits.
const SnapshotVersion = 2

// snapVersionV1 is the varint-packed decode-to-heap layout WriteSnapshotV1
// emits; ReadSnapshot still accepts it.
const snapVersionV1 = 1

// snapMagic identifies a fairsqg graph snapshot file.
const snapMagic = "FSQGSNAP"

// snapSectionOrder is the canonical section layout of version 1.
var snapSectionOrder = []string{
	"STRS", // interned string table
	"META", // counts, degree stats, memory stats
	"LBLS", // label dictionary (intern order)
	"ATTR", // attribute-name dictionary (intern order)
	"NODE", // per-node label ids
	"OUTE", // out-adjacency, sorted by (label, target)
	"INED", // in-adjacency, sorted by (label, source)
	"COLS", // typed attribute columns + presence bitmaps
	"DOMS", // active domains (sorted distinct values per attribute)
	"BYLB", // label index: nodes per label, ascending
	"IDXS", // sorted (label, attribute) permutation indexes
}

const snapHeaderBase = 8 + 4 + 4 // magic + version + section count
const snapTableEntry = 4 + 8 + 8 + 4

// snapValueOverhead is the minimum encoded size of one Value (kind byte).
const snapValueOverhead = 1

// WriteSnapshotV1 serializes a frozen graph in the varint-packed version 1
// layout. Kept for compatibility tooling (scripts/snapshot_compat.sh and
// the fallback tests); new snapshots should use WriteSnapshot, which emits
// the mappable version 2 layout. The write is deterministic: the same
// graph always produces the same bytes.
func WriteSnapshotV1(w io.Writer, g *Graph) error {
	if !g.frozen {
		return fmt.Errorf("graph: WriteSnapshot requires a frozen graph; call Freeze first")
	}
	if g.HasTombstones() {
		// The codecs represent every node slot as live; persisting a
		// tombstoned graph goes through Live.Checkpoint's resurrect
		// protocol (snapshot of the resurrected graph + a WAL tombstone
		// batch), never through a direct write.
		return fmt.Errorf("graph: WriteSnapshot on a graph with %d tombstoned node(s); checkpoint via the WAL instead", g.deadCount)
	}
	enc := &snapEncoder{strIdx: make(map[string]uint64)}

	// Payload sections first: encoding them interns into the string
	// table, which is then serialized as the leading STRS section.
	meta := enc.encodeMeta(g)
	lbls := enc.encodeStringRefs(g.labels)
	attr := enc.encodeStringRefs(g.attrTable)
	node := enc.encodeNodes(g)
	oute := enc.encodeAdjacency(g.out)
	ined := enc.encodeAdjacency(g.in)
	cols := enc.encodeColumns(g)
	doms := enc.encodeDomains(g)
	bylb := enc.encodeByLabel(g)
	idxs := enc.encodeIndexes(g)
	strs := enc.encodeStringTable()

	payloads := [][]byte{strs, meta, lbls, attr, node, oute, ined, cols, doms, bylb, idxs}

	var hdr bytes.Buffer
	hdr.WriteString(snapMagic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], snapVersionV1)
	hdr.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(payloads)))
	hdr.Write(u32[:])
	offset := uint64(snapHeaderBase + snapTableEntry*len(payloads))
	for i, p := range payloads {
		hdr.WriteString(snapSectionOrder[i])
		var u64 [8]byte
		binary.LittleEndian.PutUint64(u64[:], offset)
		hdr.Write(u64[:])
		binary.LittleEndian.PutUint64(u64[:], uint64(len(p)))
		hdr.Write(u64[:])
		binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(p))
		hdr.Write(u32[:])
		offset += uint64(len(p))
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("graph: writing snapshot header: %w", err)
	}
	for i, p := range payloads {
		if _, err := w.Write(p); err != nil {
			return fmt.Errorf("graph: writing snapshot section %s: %w", snapSectionOrder[i], err)
		}
	}
	return nil
}

// snapEncoder carries the string-interning state across sections.
type snapEncoder struct {
	strs   []string
	strIdx map[string]uint64
}

func (e *snapEncoder) ref(s string) uint64 {
	if i, ok := e.strIdx[s]; ok {
		return i
	}
	i := uint64(len(e.strs))
	e.strs = append(e.strs, s)
	e.strIdx[s] = i
	return i
}

func putUvarint(buf *bytes.Buffer, x uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], x)])
}

func (e *snapEncoder) putValue(buf *bytes.Buffer, v Value) {
	buf.WriteByte(byte(v.kind))
	switch v.kind {
	case KindBool:
		if v.num != 0 {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	case KindNumber:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.num))
		buf.Write(b[:])
	case KindString:
		putUvarint(buf, e.ref(v.str))
	}
}

func (e *snapEncoder) encodeMeta(g *Graph) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(len(g.nodeLabels)))
	putUvarint(&buf, uint64(g.numEdges))
	putUvarint(&buf, uint64(len(g.labels)))
	putUvarint(&buf, uint64(len(g.attrTable)))
	putUvarint(&buf, uint64(g.maxOutDeg))
	putUvarint(&buf, uint64(g.maxInDeg))
	putUvarint(&buf, uint64(g.mem.ColumnBytes))
	putUvarint(&buf, uint64(g.mem.IndexBytes))
	putUvarint(&buf, uint64(g.mem.Indexes))
	return buf.Bytes()
}

func (e *snapEncoder) encodeStringRefs(ss []string) []byte {
	var buf bytes.Buffer
	for _, s := range ss {
		putUvarint(&buf, e.ref(s))
	}
	return buf.Bytes()
}

func (e *snapEncoder) encodeNodes(g *Graph) []byte {
	var buf bytes.Buffer
	for _, l := range g.nodeLabels {
		putUvarint(&buf, uint64(l))
	}
	return buf.Bytes()
}

func (e *snapEncoder) encodeAdjacency(adj [][]Edge) []byte {
	var buf bytes.Buffer
	for _, es := range adj {
		putUvarint(&buf, uint64(len(es)))
		for _, ed := range es {
			putUvarint(&buf, uint64(ed.To))
			putUvarint(&buf, uint64(ed.Label))
		}
	}
	return buf.Bytes()
}

func (e *snapEncoder) encodeColumns(g *Graph) []byte {
	var buf bytes.Buffer
	var b8 [8]byte
	n := len(g.nodeLabels)
	for a := range g.cols {
		c := &g.cols[a]
		buf.WriteByte(byte(c.kind))
		putUvarint(&buf, uint64(c.count))
		for _, w := range c.present {
			binary.LittleEndian.PutUint64(b8[:], w)
			buf.Write(b8[:])
		}
		if c.count == 0 {
			continue
		}
		// Typed payload holds present values only, in NodeID order; the
		// decoder scatters them back through the presence bitmap.
		switch {
		case c.nums != nil:
			for i := 0; i < n; i++ {
				if c.has(NodeID(i)) {
					binary.LittleEndian.PutUint64(b8[:], math.Float64bits(c.nums[i]))
					buf.Write(b8[:])
				}
			}
		case c.strs != nil:
			for i := 0; i < n; i++ {
				if c.has(NodeID(i)) {
					putUvarint(&buf, e.ref(c.strs[i]))
				}
			}
		case c.refs != nil:
			// Mapped graphs keep string columns as string-table refs;
			// re-encoding (e.g. the cluster wire format) materializes them.
			for i := 0; i < n; i++ {
				if c.has(NodeID(i)) {
					putUvarint(&buf, e.ref(c.tab.str(c.refs[i])))
				}
			}
		case c.bools != nil:
			for _, w := range c.bools {
				binary.LittleEndian.PutUint64(b8[:], w)
				buf.Write(b8[:])
			}
		default:
			for i := 0; i < n; i++ {
				if c.has(NodeID(i)) {
					e.putValue(&buf, c.vals[i])
				}
			}
		}
	}
	return buf.Bytes()
}

func (e *snapEncoder) encodeDomains(g *Graph) []byte {
	var buf bytes.Buffer
	for _, dom := range g.domainList() {
		putUvarint(&buf, uint64(len(dom)))
		for _, v := range dom {
			e.putValue(&buf, v)
		}
	}
	return buf.Bytes()
}

func (e *snapEncoder) encodeByLabel(g *Graph) []byte {
	labels := make([]LabelID, 0, len(g.byLabel))
	for l := range g.byLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	var buf bytes.Buffer
	putUvarint(&buf, uint64(len(labels)))
	for _, l := range labels {
		nodes := g.byLabel[l]
		putUvarint(&buf, uint64(l))
		putUvarint(&buf, uint64(len(nodes)))
		for _, v := range nodes {
			putUvarint(&buf, uint64(v))
		}
	}
	return buf.Bytes()
}

func (e *snapEncoder) encodeIndexes(g *Graph) []byte {
	keys := make([]labelAttr, 0, len(g.indexes))
	for k := range g.indexes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].label != keys[j].label {
			return keys[i].label < keys[j].label
		}
		return keys[i].attr < keys[j].attr
	})
	var buf bytes.Buffer
	putUvarint(&buf, uint64(len(keys)))
	for _, k := range keys {
		perm := g.indexes[k]
		putUvarint(&buf, uint64(k.label))
		putUvarint(&buf, uint64(k.attr))
		putUvarint(&buf, uint64(len(perm)))
		for _, v := range perm {
			putUvarint(&buf, uint64(v))
		}
	}
	return buf.Bytes()
}

func (e *snapEncoder) encodeStringTable() []byte {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(len(e.strs)))
	for _, s := range e.strs {
		putUvarint(&buf, uint64(len(s)))
		buf.WriteString(s)
	}
	return buf.Bytes()
}

// ReadSnapshot reconstructs a frozen graph from the snapshot format. Every
// structural claim the file makes is validated before it drives an
// allocation — counts are bounded by the bytes that must carry them, IDs
// by the dictionaries, orderings by the frozen-graph invariants — so
// corrupt or hostile inputs produce an error (naming the failing section)
// rather than a panic or an outsized allocation.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading snapshot: %w", err)
	}
	return readSnapshotBytes(data)
}

// ReadSnapshotFile is ReadSnapshot for a local file: it stats the file and
// reads it in one pre-sized allocation instead of growing a buffer through
// an io.Reader copy, then decodes from that buffer. Both snapshot versions
// are accepted.
func ReadSnapshotFile(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("graph: reading snapshot %s: %w", path, err)
	}
	return readSnapshotBytes(data)
}

// snapSection is one decoded section-table entry plus its payload.
type snapSection struct {
	tag     string
	payload []byte
	crc     uint32
}

// snapVersionOf validates the magic and returns the header's version.
func snapVersionOf(data []byte) (uint32, error) {
	if len(data) < snapHeaderBase {
		return 0, fmt.Errorf("graph: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:8]) != snapMagic {
		return 0, fmt.Errorf("graph: bad snapshot magic %q", data[:8])
	}
	return binary.LittleEndian.Uint32(data[8:12]), nil
}

// parseSnapSections validates the framing — section table against the
// version's canonical order, contiguous offsets, no truncation, no
// trailing bytes — and returns the sections keyed by tag. Payloads alias
// data.
func parseSnapSections(data []byte, order []string) (map[string]*snapSection, error) {
	count := binary.LittleEndian.Uint32(data[12:16])
	if int(count) != len(order) {
		return nil, fmt.Errorf("graph: snapshot has %d sections, this version defines %d", count, len(order))
	}
	tableEnd := snapHeaderBase + snapTableEntry*int(count)
	if len(data) < tableEnd {
		return nil, fmt.Errorf("graph: snapshot truncated inside section table")
	}
	sections := make(map[string]*snapSection, count)
	running := uint64(tableEnd)
	for i := 0; i < int(count); i++ {
		ent := data[snapHeaderBase+snapTableEntry*i:]
		tag := string(ent[:4])
		offset := binary.LittleEndian.Uint64(ent[4:12])
		length := binary.LittleEndian.Uint64(ent[12:20])
		crc := binary.LittleEndian.Uint32(ent[20:24])
		if tag != order[i] {
			return nil, fmt.Errorf("graph: snapshot section %d is %q, want %q (unknown or out of order)", i, tag, order[i])
		}
		if offset != running {
			return nil, fmt.Errorf("graph: snapshot section %s at offset %d, want %d (sections must be contiguous)", tag, offset, running)
		}
		if length > uint64(len(data))-running {
			return nil, fmt.Errorf("graph: snapshot section %s truncated (claims %d bytes, %d remain)", tag, length, uint64(len(data))-running)
		}
		sections[tag] = &snapSection{tag: tag, payload: data[running : running+length], crc: crc}
		running += length
	}
	if running != uint64(len(data)) {
		return nil, fmt.Errorf("graph: snapshot carries %d trailing bytes after the last section", uint64(len(data))-running)
	}
	return sections, nil
}

func readSnapshotBytes(data []byte) (*Graph, error) {
	version, err := snapVersionOf(data)
	if err != nil {
		return nil, err
	}
	switch version {
	case snapVersionV1:
		sections, err := parseSnapSections(data, snapSectionOrder)
		if err != nil {
			return nil, err
		}
		dec := &snapDecoder{sections: sections}
		return dec.decode()
	case SnapshotVersion:
		// The v2 loader serves fixed-width sections as views over the
		// buffer, which requires 8-byte base alignment; heap buffers are
		// realigned by copy in the (rare) case the allocator misaligned one.
		data = alignSnapshotBuffer(data)
		sections, err := parseSnapSections(data, snapSectionOrderV2)
		if err != nil {
			return nil, err
		}
		return decodeSnapshotV2(data, sections, nil, true)
	default:
		return nil, fmt.Errorf("graph: unsupported snapshot version %d (this build reads versions %d and %d)", version, snapVersionV1, SnapshotVersion)
	}
}

// snapDecoder decodes the canonical sections in dependency order. The
// cursor always points into the current section's payload; all reads are
// bounds-checked against it.
type snapDecoder struct {
	sections map[string]*snapSection
	tag      string
	buf      []byte
	pos      int

	strs []string
}

// enter switches to a section after verifying its checksum.
func (d *snapDecoder) enter(tag string) error {
	s := d.sections[tag]
	if got := crc32.ChecksumIEEE(s.payload); got != s.crc {
		return fmt.Errorf("graph: snapshot section %s: CRC mismatch (file has %08x, payload sums to %08x)", tag, s.crc, got)
	}
	d.tag, d.buf, d.pos = tag, s.payload, 0
	return nil
}

// leave asserts the section was consumed exactly.
func (d *snapDecoder) leave() error {
	if d.pos != len(d.buf) {
		return d.errf("%d undecoded trailing bytes", len(d.buf)-d.pos)
	}
	return nil
}

func (d *snapDecoder) errf(format string, args ...any) error {
	return fmt.Errorf("graph: snapshot section %s: %s", d.tag, fmt.Sprintf(format, args...))
}

func (d *snapDecoder) remaining() int { return len(d.buf) - d.pos }

func (d *snapDecoder) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.errf("bad uvarint at byte %d", d.pos)
	}
	d.pos += n
	return x, nil
}

// count reads a length-prefix and validates it against the bytes that
// must back it (minSize per element), so a forged count can never force
// an allocation larger than a small multiple of the input itself.
func (d *snapDecoder) count(what string, minSize int) (int, error) {
	x, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if x > uint64(d.remaining()/minSize) {
		return 0, d.errf("%s count %d exceeds the %d bytes left in the section", what, x, d.remaining())
	}
	return int(x), nil
}

func (d *snapDecoder) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, d.errf("truncated 8-byte word at byte %d", d.pos)
	}
	x := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return x, nil
}

func (d *snapDecoder) words(n int) ([]uint64, error) {
	if d.remaining() < 8*n {
		return nil, d.errf("truncated %d-word bitmap at byte %d", n, d.pos)
	}
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = binary.LittleEndian.Uint64(d.buf[d.pos+8*i:])
	}
	d.pos += 8 * n
	return ws, nil
}

func (d *snapDecoder) stringRef() (string, error) {
	x, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if x >= uint64(len(d.strs)) {
		return "", d.errf("string ref %d out of range [0,%d)", x, len(d.strs))
	}
	return d.strs[x], nil
}

func (d *snapDecoder) value() (Value, error) {
	if d.remaining() < 1 {
		return Null, d.errf("truncated value at byte %d", d.pos)
	}
	kind := Kind(d.buf[d.pos])
	d.pos++
	switch kind {
	case KindNull:
		return Null, nil
	case KindBool:
		if d.remaining() < 1 {
			return Null, d.errf("truncated bool value at byte %d", d.pos)
		}
		b := d.buf[d.pos]
		d.pos++
		if b > 1 {
			return Null, d.errf("bool value byte %d is %d, want 0 or 1", d.pos-1, b)
		}
		return Bool(b == 1), nil
	case KindNumber:
		bits, err := d.u64()
		if err != nil {
			return Null, err
		}
		return Num(math.Float64frombits(bits)), nil
	case KindString:
		s, err := d.stringRef()
		if err != nil {
			return Null, err
		}
		return Str(s), nil
	default:
		return Null, d.errf("unknown value kind %d", kind)
	}
}

// meta carries the META section's counts through the decode.
type snapMeta struct {
	nodes, edges, labels, attrs int
	maxOutDeg, maxInDeg         int
	mem                         MemoryStats
}

func (d *snapDecoder) decode() (*Graph, error) {
	// STRS first — every later section references it.
	if err := d.enter("STRS"); err != nil {
		return nil, err
	}
	nstr, err := d.count("string", 1)
	if err != nil {
		return nil, err
	}
	d.strs = make([]string, nstr)
	for i := range d.strs {
		l, err := d.count("string byte", 1)
		if err != nil {
			return nil, err
		}
		d.strs[i] = string(d.buf[d.pos : d.pos+l])
		d.pos += l
	}
	if err := d.leave(); err != nil {
		return nil, err
	}

	meta, err := d.decodeMeta()
	if err != nil {
		return nil, err
	}
	g := &Graph{
		numEdges:  meta.edges,
		maxOutDeg: meta.maxOutDeg,
		maxInDeg:  meta.maxInDeg,
		mem:       meta.mem,
		version:   1,
		lineage:   nextLineage(),
		frozen:    true,
	}
	if g.labels, g.labelIDs, err = d.decodeDict("LBLS", meta.labels); err != nil {
		return nil, err
	}
	attrIDs := make(map[string]AttrID, meta.attrs)
	{
		names, ids, err := d.decodeDict("ATTR", meta.attrs)
		if err != nil {
			return nil, err
		}
		g.attrTable = names
		for s, l := range ids {
			attrIDs[s] = AttrID(l)
		}
	}
	g.attrIDs = attrIDs
	if err := d.decodeNodes(g, meta); err != nil {
		return nil, err
	}
	if g.out, err = d.decodeAdjacency("OUTE", meta, meta.maxOutDeg); err != nil {
		return nil, err
	}
	if g.in, err = d.decodeAdjacency("INED", meta, meta.maxInDeg); err != nil {
		return nil, err
	}
	if err := d.decodeColumns(g, meta); err != nil {
		return nil, err
	}
	if err := d.decodeDomains(g, meta); err != nil {
		return nil, err
	}
	if err := d.decodeByLabel(g, meta); err != nil {
		return nil, err
	}
	if err := d.decodeIndexes(g, meta); err != nil {
		return nil, err
	}
	g.attrNames = make([]string, len(g.attrTable))
	copy(g.attrNames, g.attrTable)
	sort.Strings(g.attrNames)
	// The label-position and neighborhood-signature tables are derived, not
	// serialized: rebuilding them from the restored adjacency keeps the
	// snapshot format stable and costs one linear pass.
	g.buildDerived()
	return g, nil
}

func (d *snapDecoder) decodeMeta() (*snapMeta, error) {
	if err := d.enter("META"); err != nil {
		return nil, err
	}
	var fields [9]uint64
	for i := range fields {
		x, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		fields[i] = x
	}
	if err := d.leave(); err != nil {
		return nil, err
	}
	const maxID = math.MaxInt32 // NodeID/LabelID/AttrID are int32
	for i, x := range fields[:4] {
		if x > maxID {
			return nil, fmt.Errorf("graph: snapshot section META: count %d is %d, beyond the int32 id space", i, x)
		}
	}
	m := &snapMeta{
		nodes: int(fields[0]), edges: int(fields[1]),
		labels: int(fields[2]), attrs: int(fields[3]),
		maxOutDeg: int(fields[4]), maxInDeg: int(fields[5]),
		mem: MemoryStats{
			ColumnBytes: int64(fields[6]),
			IndexBytes:  int64(fields[7]),
			Indexes:     int(fields[8]),
		},
	}
	// Cross-check declared counts against the sections that must carry
	// them (one byte minimum per element) before anything is allocated.
	words := uint64((m.nodes + 63) / 64)
	checks := []struct {
		tag  string
		need uint64
	}{
		{"LBLS", uint64(m.labels)},
		{"ATTR", uint64(m.attrs)},
		{"NODE", uint64(m.nodes)},
		{"OUTE", uint64(m.nodes) + 2*uint64(m.edges)},
		{"INED", uint64(m.nodes) + 2*uint64(m.edges)},
		// Every column carries at least a kind byte, a count byte and a
		// full presence bitmap, every domain at least a length byte —
		// so declared attribute and node counts are backed by real bytes
		// and decode allocations stay proportional to the input size.
		{"COLS", uint64(m.attrs) * (2 + 8*words)},
		{"DOMS", uint64(m.attrs)},
	}
	for _, c := range checks {
		if have := uint64(len(d.sections[c.tag].payload)); c.need > have {
			return nil, fmt.Errorf("graph: snapshot section META: declared sizes need >= %d bytes in %s, section has %d", c.need, c.tag, have)
		}
	}
	return m, nil
}

// decodeDict reads n string refs and rebuilds the string -> id map,
// rejecting duplicate entries (the dictionaries are injective by
// construction).
func (d *snapDecoder) decodeDict(tag string, n int) ([]string, map[string]LabelID, error) {
	if err := d.enter(tag); err != nil {
		return nil, nil, err
	}
	// nil (not empty) when n == 0, matching the builder's zero state.
	var names []string
	if n > 0 {
		names = make([]string, n)
	}
	ids := make(map[string]LabelID, n)
	for i := range names {
		s, err := d.stringRef()
		if err != nil {
			return nil, nil, err
		}
		if _, dup := ids[s]; dup {
			return nil, nil, d.errf("duplicate dictionary entry %q", s)
		}
		names[i] = s
		ids[s] = LabelID(i)
	}
	if err := d.leave(); err != nil {
		return nil, nil, err
	}
	return names, ids, nil
}

func (d *snapDecoder) decodeNodes(g *Graph, meta *snapMeta) error {
	if err := d.enter("NODE"); err != nil {
		return err
	}
	if meta.nodes > 0 {
		g.nodeLabels = make([]LabelID, meta.nodes)
	}
	for i := range g.nodeLabels {
		l, err := d.uvarint()
		if err != nil {
			return err
		}
		if l >= uint64(meta.labels) {
			return d.errf("node %d label %d out of range [0,%d)", i, l, meta.labels)
		}
		g.nodeLabels[i] = LabelID(l)
	}
	return d.leave()
}

// decodeAdjacency reads one direction's edge lists, enforcing the frozen
// (label, endpoint) sort order, the declared edge total and the declared
// maximum degree.
func (d *snapDecoder) decodeAdjacency(tag string, meta *snapMeta, wantMaxDeg int) ([][]Edge, error) {
	if err := d.enter(tag); err != nil {
		return nil, err
	}
	var adj [][]Edge
	if meta.nodes > 0 {
		adj = make([][]Edge, meta.nodes)
	}
	total, maxDeg := 0, 0
	for i := range adj {
		deg, err := d.count("edge", 2)
		if err != nil {
			return nil, err
		}
		if deg == 0 {
			continue
		}
		es := make([]Edge, deg)
		for j := range es {
			to, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			lb, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if to >= uint64(meta.nodes) {
				return nil, d.errf("node %d edge %d endpoint %d out of range [0,%d)", i, j, to, meta.nodes)
			}
			if lb >= uint64(meta.labels) {
				return nil, d.errf("node %d edge %d label %d out of range [0,%d)", i, j, lb, meta.labels)
			}
			es[j] = Edge{To: NodeID(to), Label: LabelID(lb)}
			if j > 0 {
				prev := es[j-1]
				if prev.Label > es[j].Label || (prev.Label == es[j].Label && prev.To > es[j].To) {
					return nil, d.errf("node %d edges not sorted by (label, endpoint) at position %d", i, j)
				}
			}
		}
		adj[i] = es
		total += deg
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	if total != meta.edges {
		return nil, d.errf("edge lists sum to %d, META declares %d", total, meta.edges)
	}
	if maxDeg != wantMaxDeg {
		return nil, d.errf("maximum degree %d, META declares %d", maxDeg, wantMaxDeg)
	}
	return adj, d.leave()
}

func (d *snapDecoder) decodeColumns(g *Graph, meta *snapMeta) error {
	if err := d.enter("COLS"); err != nil {
		return err
	}
	n := meta.nodes
	words := (n + 63) / 64
	g.cols = make([]column, meta.attrs)
	for a := range g.cols {
		c := &g.cols[a]
		if d.remaining() < 1 {
			return d.errf("attribute %d: truncated kind byte", a)
		}
		kind := Kind(d.buf[d.pos])
		d.pos++
		if kind > KindString {
			return d.errf("attribute %d: unknown column kind %d", a, kind)
		}
		cnt, err := d.uvarint()
		if err != nil {
			return err
		}
		if cnt > uint64(n) {
			return d.errf("attribute %d: count %d exceeds %d nodes", a, cnt, n)
		}
		c.kind, c.count = kind, int(cnt)
		if c.present, err = d.words(words); err != nil {
			return err
		}
		pop := 0
		for _, w := range c.present {
			pop += bits.OnesCount64(w)
		}
		if n%64 != 0 && words > 0 && c.present[words-1]>>(uint(n%64)) != 0 {
			return d.errf("attribute %d: presence bitmap has bits beyond node %d", a, n-1)
		}
		if pop != c.count {
			return d.errf("attribute %d: presence bitmap has %d bits, count says %d", a, pop, c.count)
		}
		if c.count == 0 {
			continue
		}
		switch kind {
		case KindNumber:
			if d.remaining() < 8*c.count {
				return d.errf("attribute %d: truncated float payload", a)
			}
			c.nums = make([]float64, n)
			for i := 0; i < n; i++ {
				if bitGet(c.present, i) {
					c.nums[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
					d.pos += 8
				}
			}
		case KindString:
			c.strs = make([]string, n)
			for i := 0; i < n; i++ {
				if bitGet(c.present, i) {
					if c.strs[i], err = d.stringRef(); err != nil {
						return err
					}
				}
			}
		case KindBool:
			if c.bools, err = d.words(words); err != nil {
				return err
			}
			for w := range c.bools {
				if c.bools[w]&^c.present[w] != 0 {
					return d.errf("attribute %d: bool bitmap sets bits outside the presence bitmap", a)
				}
			}
		default: // KindNull: mixed or all-null values
			c.vals = make([]Value, n)
			for i := 0; i < n; i++ {
				if bitGet(c.present, i) {
					if c.vals[i], err = d.value(); err != nil {
						return err
					}
				}
			}
		}
	}
	return d.leave()
}

func (d *snapDecoder) decodeDomains(g *Graph, meta *snapMeta) error {
	if err := d.enter("DOMS"); err != nil {
		return err
	}
	g.domains = make([][]Value, meta.attrs)
	for a := range g.domains {
		l, err := d.count("domain value", snapValueOverhead)
		if err != nil {
			return err
		}
		dom := make([]Value, l)
		for i := range dom {
			if dom[i], err = d.value(); err != nil {
				return err
			}
			if i > 0 && dom[i-1].Compare(dom[i]) >= 0 {
				return d.errf("attribute %d: active domain not sorted and distinct at position %d", a, i)
			}
		}
		g.domains[a] = dom
	}
	return d.leave()
}

func (d *snapDecoder) decodeByLabel(g *Graph, meta *snapMeta) error {
	if err := d.enter("BYLB"); err != nil {
		return err
	}
	nlabels, err := d.count("label bucket", 2)
	if err != nil {
		return err
	}
	g.byLabel = make(map[LabelID][]NodeID, nlabels)
	covered := 0
	for i := 0; i < nlabels; i++ {
		lb, err := d.uvarint()
		if err != nil {
			return err
		}
		if lb >= uint64(meta.labels) {
			return d.errf("bucket %d label %d out of range [0,%d)", i, lb, meta.labels)
		}
		if _, dup := g.byLabel[LabelID(lb)]; dup {
			return d.errf("duplicate bucket for label %d", lb)
		}
		l, err := d.count("label member", 1)
		if err != nil {
			return err
		}
		if l == 0 {
			return d.errf("bucket for label %d is empty", lb)
		}
		nodes := make([]NodeID, l)
		for j := range nodes {
			v, err := d.uvarint()
			if err != nil {
				return err
			}
			if v >= uint64(meta.nodes) {
				return d.errf("label %d member %d out of range [0,%d)", lb, v, meta.nodes)
			}
			if g.nodeLabels[v] != LabelID(lb) {
				return d.errf("node %d filed under label %d but carries label %d", v, lb, g.nodeLabels[v])
			}
			if j > 0 && nodes[j-1] >= NodeID(v) {
				return d.errf("label %d members not strictly ascending at position %d", lb, j)
			}
			nodes[j] = NodeID(v)
		}
		g.byLabel[LabelID(lb)] = nodes
		covered += l
	}
	if covered != meta.nodes {
		return d.errf("buckets cover %d nodes, graph has %d", covered, meta.nodes)
	}
	return d.leave()
}

func (d *snapDecoder) decodeIndexes(g *Graph, meta *snapMeta) error {
	if err := d.enter("IDXS"); err != nil {
		return err
	}
	nidx, err := d.count("index", 3)
	if err != nil {
		return err
	}
	if nidx != meta.mem.Indexes {
		return d.errf("%d indexes, META declares %d", nidx, meta.mem.Indexes)
	}
	g.indexes = make(map[labelAttr][]NodeID, nidx)
	for i := 0; i < nidx; i++ {
		lb, err := d.uvarint()
		if err != nil {
			return err
		}
		at, err := d.uvarint()
		if err != nil {
			return err
		}
		if lb >= uint64(meta.labels) || at >= uint64(meta.attrs) {
			return d.errf("index %d key (%d, %d) out of range", i, lb, at)
		}
		key := labelAttr{LabelID(lb), AttrID(at)}
		if _, dup := g.indexes[key]; dup {
			return d.errf("duplicate index for (label %d, attr %d)", lb, at)
		}
		l, err := d.count("index entry", 1)
		if err != nil {
			return err
		}
		if l != len(g.byLabel[key.label]) {
			return d.errf("index (%d, %d) has %d entries, label has %d nodes", lb, at, l, len(g.byLabel[key.label]))
		}
		perm := make([]NodeID, l)
		c := &g.cols[at]
		for j := range perm {
			v, err := d.uvarint()
			if err != nil {
				return err
			}
			if v >= uint64(meta.nodes) {
				return d.errf("index (%d, %d) entry %d out of range [0,%d)", lb, at, v, meta.nodes)
			}
			if g.nodeLabels[v] != key.label {
				return d.errf("index (%d, %d) lists node %d of label %d", lb, at, v, g.nodeLabels[v])
			}
			perm[j] = NodeID(v)
			if j > 0 {
				// The permutation must be sorted by value under the total
				// order with ties broken by ascending NodeID — the
				// invariant SortedIndex.Range binary-searches on.
				cmp := c.value(perm[j-1]).Compare(c.value(perm[j]))
				if cmp > 0 || (cmp == 0 && perm[j-1] >= perm[j]) {
					return d.errf("index (%d, %d) not sorted at position %d", lb, at, j)
				}
			}
		}
		g.indexes[key] = perm
	}
	return d.leave()
}
