package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// Corrupt SREF refs to out-of-range values and open mapped (CRC skipped).
func TestReviewCorruptSrefPanic(t *testing.T) {
	g := New()
	g.AddNode("L", map[string]Value{"s": Str("aaa")})
	g.AddNode("L", map[string]Value{"s": Str("bbb")})
	g.Freeze()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// locate SREF in the section table
	count := int(binary.LittleEndian.Uint32(data[12:16]))
	var off, ln uint64
	for i := 0; i < count; i++ {
		ent := data[snapHeaderBase+snapTableEntry*i:]
		if string(ent[:4]) == "SREF" {
			off = binary.LittleEndian.Uint64(ent[4:12])
			ln = binary.LittleEndian.Uint64(ent[12:20])
		}
	}
	if ln == 0 {
		t.Fatal("no SREF section")
	}
	// two nodes, refs at off and off+4: make them huge and distinct
	binary.LittleEndian.PutUint32(data[off:], 0x7ffffff0)
	binary.LittleEndian.PutUint32(data[off+4:], 0x7ffffff1)
	p := filepath.Join(t.TempDir(), "x.fsnap")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	mg, err := OpenSnapshotMapped(p)
	t.Logf("open: g=%v err=%v", mg != nil, err)
	if mg != nil {
		mg.Close()
	}
}
