package graph

import (
	"fmt"
	"math/bits"
	"sort"
)

// The differential oracle for the mutation layer: Equivalent proves a
// mutated graph logically equal to a rebuild-from-scratch of the same
// content, and CheckInvariants proves its internal frozen representation
// self-consistent (every derived structure equal to what a fresh Freeze
// would derive). Together they are the "mutated ≡ rebuilt" guarantee the
// mutation differential and fuzz suites assert after every batch.

// Equivalent reports (as an error describing the first discrepancy, nil
// when none) whether two frozen graphs carry the same logical content:
// same live nodes with the same labels, attribute tuples, edges, label
// buckets, active domains, sorted permutation indexes and degree stats —
// compared modulo the intern dictionaries and modulo tombstoned slots.
// The i-th live node of a corresponds to the i-th live node of b; both
// buckets and permutation tie-orders are NodeID-ascending, so the
// monotone mapping preserves every order the matcher depends on.
func Equivalent(a, b *Graph) error {
	if !a.Frozen() || !b.Frozen() {
		return fmt.Errorf("equivalent: both graphs must be frozen")
	}
	if a.NumLive() != b.NumLive() {
		return fmt.Errorf("equivalent: %d live nodes vs %d", a.NumLive(), b.NumLive())
	}
	if a.NumEdges() != b.NumEdges() {
		return fmt.Errorf("equivalent: %d edges vs %d", a.NumEdges(), b.NumEdges())
	}
	aLive, bLive := liveNodes(a), liveNodes(b)
	toB := make(map[NodeID]NodeID, len(aLive))
	for i, va := range aLive {
		toB[va] = bLive[i]
	}
	for i, va := range aLive {
		vb := bLive[i]
		if a.Label(va) != b.Label(vb) {
			return fmt.Errorf("equivalent: node %d/%d: label %q vs %q", va, vb, a.Label(va), b.Label(vb))
		}
		if err := equalAttrPairs(a.AttrPairs(va), b.AttrPairs(vb)); err != nil {
			return fmt.Errorf("equivalent: node %d/%d: %v", va, vb, err)
		}
		for _, outgoing := range []bool{true, false} {
			ea := mappedEdges(a, va, outgoing, toB)
			eb := mappedEdges(b, vb, outgoing, nil)
			dir := "out"
			if !outgoing {
				dir = "in"
			}
			if len(ea) != len(eb) {
				return fmt.Errorf("equivalent: node %d/%d: %d %s-edges vs %d", va, vb, len(ea), dir, len(eb))
			}
			for k := range ea {
				if ea[k] != eb[k] {
					return fmt.Errorf("equivalent: node %d/%d: %s-edge %d: %v vs %v", va, vb, dir, k, ea[k], eb[k])
				}
			}
		}
	}
	// Buckets, per label string, must map element for element: both sides
	// keep them NodeID-ascending.
	for _, name := range unionStrings(a.NodeLabels(), b.NodeLabels()) {
		ba := a.NodesByLabel(name)
		bb := b.NodesByLabel(name)
		if len(ba) != len(bb) {
			return fmt.Errorf("equivalent: label %q: bucket size %d vs %d", name, len(ba), len(bb))
		}
		for i := range ba {
			if toB[ba[i]] != bb[i] {
				return fmt.Errorf("equivalent: label %q: bucket[%d] = %d maps to %d, want %d", name, i, ba[i], toB[ba[i]], bb[i])
			}
		}
	}
	// Active domains per attribute name (union: an attribute absent from
	// one dictionary must have an empty domain in the other).
	for _, name := range unionStrings(a.attrNames, b.attrNames) {
		da := a.ActiveDomain(name)
		db := b.ActiveDomain(name)
		if len(da) != len(db) {
			return fmt.Errorf("equivalent: attr %q: domain size %d vs %d", name, len(da), len(db))
		}
		for i := range da {
			if !da[i].Equal(db[i]) || da[i].Kind() != db[i].Kind() {
				return fmt.Errorf("equivalent: attr %q: domain[%d] %v vs %v", name, i, da[i], db[i])
			}
		}
	}
	// Permutation indexes: same (label, attr) pairs, same order after
	// mapping.
	if a.mem.Indexes != b.mem.Indexes {
		return fmt.Errorf("equivalent: %d permutation indexes vs %d", a.mem.Indexes, b.mem.Indexes)
	}
	for k, pa := range a.indexes {
		labelName, attrName := a.labels[k.label], a.attrTable[k.attr]
		lb, ab := b.LookupLabel(labelName), b.AttrIDOf(attrName)
		pb, ok := b.indexes[labelAttr{lb, ab}]
		if !ok {
			return fmt.Errorf("equivalent: index (%q, %q) missing from second graph", labelName, attrName)
		}
		if len(pa) != len(pb) {
			return fmt.Errorf("equivalent: index (%q, %q): %d entries vs %d", labelName, attrName, len(pa), len(pb))
		}
		for i := range pa {
			if toB[pa[i]] != pb[i] {
				return fmt.Errorf("equivalent: index (%q, %q)[%d]: %d maps to %d, want %d",
					labelName, attrName, i, pa[i], toB[pa[i]], pb[i])
			}
		}
	}
	if a.maxOutDeg != b.maxOutDeg || a.maxInDeg != b.maxInDeg {
		return fmt.Errorf("equivalent: max degrees (%d,%d) vs (%d,%d)", a.maxOutDeg, a.maxInDeg, b.maxOutDeg, b.maxInDeg)
	}
	return nil
}

// mappedEdge is one adjacency entry in dictionary-free form.
type mappedEdge struct {
	Label string
	To    NodeID
}

func mappedEdges(g *Graph, v NodeID, outgoing bool, m map[NodeID]NodeID) []mappedEdge {
	rows := g.out
	if !outgoing {
		rows = g.in
	}
	out := make([]mappedEdge, 0, len(rows[v]))
	for _, e := range rows[v] {
		to := e.To
		if m != nil {
			to = m[e.To]
		}
		out = append(out, mappedEdge{Label: g.labels[e.Label], To: to})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].To < out[j].To
	})
	return out
}

func equalAttrPairs(pa, pb []AttrPair) error {
	if len(pa) != len(pb) {
		return fmt.Errorf("%d attributes vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name {
			return fmt.Errorf("attr[%d] name %q vs %q", i, pa[i].Name, pb[i].Name)
		}
		if pa[i].Value.Kind() != pb[i].Value.Kind() || !pa[i].Value.Equal(pb[i].Value) {
			return fmt.Errorf("attr %q: %v (%v) vs %v (%v)", pa[i].Name,
				pa[i].Value, pa[i].Value.Kind(), pb[i].Value, pb[i].Value.Kind())
		}
	}
	return nil
}

func liveNodes(g *Graph) []NodeID {
	out := make([]NodeID, 0, g.NumLive())
	for v := 0; v < g.NumNodes(); v++ {
		if g.Alive(NodeID(v)) {
			out = append(out, NodeID(v))
		}
	}
	return out
}

func unionStrings(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// CheckInvariants verifies a frozen graph's internal representation
// against what a fresh Freeze would derive: bucket/index membership and
// order, presence bitmaps vs counts, kind uniformity, derived
// label-position/signature/run tables, degree maxima, domain recomputes
// and tombstone exclusion. It is O(|V|·|A| + |E| log |E|) and meant for
// tests and fuzzing, not production paths.
func CheckInvariants(g *Graph) error {
	if !g.Frozen() {
		return fmt.Errorf("invariants: graph not frozen")
	}
	n := g.NumNodes()
	if len(g.out) != n || len(g.in) != n {
		return fmt.Errorf("invariants: adjacency length %d/%d, want %d", len(g.out), len(g.in), n)
	}
	if len(g.labelPos) != n || len(g.sigOut) != n || len(g.sigIn) != n {
		return fmt.Errorf("invariants: derived table lengths %d/%d/%d, want %d", len(g.labelPos), len(g.sigOut), len(g.sigIn), n)
	}
	// Tombstones.
	deadPop := 0
	for _, w := range g.dead {
		deadPop += bits.OnesCount64(w)
	}
	if deadPop != g.deadCount {
		return fmt.Errorf("invariants: deadCount %d but bitmap holds %d", g.deadCount, deadPop)
	}
	for v := 0; v < n; v++ {
		if g.Alive(NodeID(v)) {
			continue
		}
		if len(g.out[v]) != 0 || len(g.in[v]) != 0 {
			return fmt.Errorf("invariants: dead node %d still has edges", v)
		}
		if g.labelPos[v] != PackLabelPos(InvalidLabel, -1) {
			return fmt.Errorf("invariants: dead node %d labelPos not poisoned", v)
		}
		for a := range g.cols {
			if g.cols[a].has(NodeID(v)) {
				return fmt.Errorf("invariants: dead node %d present in column %q", v, g.attrTable[a])
			}
		}
	}
	// Buckets: ascending, label-consistent, exactly the live nodes.
	seen := make(map[NodeID]bool, n)
	for l, bucket := range g.byLabel {
		if len(bucket) == 0 {
			return fmt.Errorf("invariants: empty bucket for label %q", g.labels[l])
		}
		for i, v := range bucket {
			if i > 0 && bucket[i-1] >= v {
				return fmt.Errorf("invariants: bucket %q not ascending at %d", g.labels[l], i)
			}
			if !g.Alive(v) {
				return fmt.Errorf("invariants: dead node %d in bucket %q", v, g.labels[l])
			}
			if g.nodeLabels[v] != l {
				return fmt.Errorf("invariants: node %d in bucket %q but labeled %q", v, g.labels[l], g.Label(v))
			}
			if g.labelPos[v] != PackLabelPos(l, int32(i)) {
				return fmt.Errorf("invariants: node %d labelPos mismatch", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != g.NumLive() {
		return fmt.Errorf("invariants: buckets cover %d nodes, want %d live", len(seen), g.NumLive())
	}
	// Adjacency: sorted rows, mirrored multisets, edge count, signatures.
	edges := 0
	type fullEdge struct {
		from, to NodeID
		label    LabelID
	}
	outSet := make(map[fullEdge]int)
	for v := 0; v < n; v++ {
		var sig uint64
		for i, e := range g.out[v] {
			if i > 0 && (g.out[v][i-1].Label > e.Label || (g.out[v][i-1].Label == e.Label && g.out[v][i-1].To > e.To)) {
				return fmt.Errorf("invariants: out row %d not sorted", v)
			}
			if !g.Alive(e.To) {
				return fmt.Errorf("invariants: out edge %d->%d targets a dead node", v, e.To)
			}
			outSet[fullEdge{NodeID(v), e.To, e.Label}]++
			sig |= LabelSigBit(e.Label)
			edges++
		}
		if g.sigOut[v] != sig {
			return fmt.Errorf("invariants: node %d out signature stale", v)
		}
		sig = 0
		for i, e := range g.in[v] {
			if i > 0 && (g.in[v][i-1].Label > e.Label || (g.in[v][i-1].Label == e.Label && g.in[v][i-1].To > e.To)) {
				return fmt.Errorf("invariants: in row %d not sorted", v)
			}
			outSet[fullEdge{e.To, NodeID(v), e.Label}]--
			sig |= LabelSigBit(e.Label)
		}
		if g.sigIn[v] != sig {
			return fmt.Errorf("invariants: node %d in signature stale", v)
		}
	}
	for k, c := range outSet {
		if c != 0 {
			return fmt.Errorf("invariants: edge %d->%d (%q) out/in mirror off by %d", k.from, k.to, g.labels[k.label], c)
		}
	}
	if edges != g.numEdges {
		return fmt.Errorf("invariants: numEdges %d but rows hold %d", g.numEdges, edges)
	}
	maxOut, maxIn := 0, 0
	for v := 0; v < n; v++ {
		if len(g.out[v]) > maxOut {
			maxOut = len(g.out[v])
		}
		if len(g.in[v]) > maxIn {
			maxIn = len(g.in[v])
		}
	}
	if maxOut != g.maxOutDeg || maxIn != g.maxInDeg {
		return fmt.Errorf("invariants: max degrees (%d,%d) recorded (%d,%d)", maxOut, maxIn, g.maxOutDeg, g.maxInDeg)
	}
	// Run tables.
	for _, outgoing := range []bool{true, false} {
		starts, stride := g.RunStarts(outgoing)
		if starts == nil {
			continue
		}
		rows := g.out
		if !outgoing {
			rows = g.in
		}
		for v := 0; v < n; v++ {
			for l := 0; l < stride-1; l++ {
				run := rows[v][starts[v*stride+l]:starts[v*stride+l+1]]
				want := edgeRunSearch(rows[v], LabelID(l))
				if len(run) != len(want) || (len(run) > 0 && &run[0] != &want[0]) {
					return fmt.Errorf("invariants: run table (%d, label %d, out=%v) stale", v, l, outgoing)
				}
			}
		}
	}
	// Columns: presence counts, word width, kind uniformity.
	if len(g.cols) != len(g.attrTable) {
		return fmt.Errorf("invariants: %d columns for %d attributes", len(g.cols), len(g.attrTable))
	}
	words := (n + 63) / 64
	for a := range g.cols {
		c := &g.cols[a]
		if len(c.present) < words {
			return fmt.Errorf("invariants: column %q presence bitmap too short", g.attrTable[a])
		}
		pop := 0
		for _, w := range c.present {
			pop += bits.OnesCount64(w)
		}
		if pop != c.count {
			return fmt.Errorf("invariants: column %q count %d but bitmap holds %d", g.attrTable[a], c.count, pop)
		}
		typed := 0
		for _, set := range []bool{c.nums != nil, c.strs != nil, c.bools != nil, c.vals != nil, c.refs != nil} {
			if set {
				typed++
			}
		}
		if typed > 1 {
			return fmt.Errorf("invariants: column %q has %d value arrays", g.attrTable[a], typed)
		}
		for v := 0; v < n; v++ {
			if !c.has(NodeID(v)) {
				continue
			}
			k := c.value(NodeID(v)).Kind()
			if c.kind != KindNull && k != c.kind {
				return fmt.Errorf("invariants: column %q kind %v holds a %v at node %d", g.attrTable[a], c.kind, k, v)
			}
		}
	}
	// Domains match a recompute.
	doms := g.domainList()
	if len(doms) != len(g.cols) {
		return fmt.Errorf("invariants: %d domains for %d columns", len(doms), len(g.cols))
	}
	for a := range g.cols {
		want := computeDomain(&g.cols[a], n)
		if len(want) != len(doms[a]) {
			return fmt.Errorf("invariants: attr %q domain size %d, recompute %d", g.attrTable[a], len(doms[a]), len(want))
		}
		for i := range want {
			if !want[i].Equal(doms[a][i]) {
				return fmt.Errorf("invariants: attr %q domain[%d] %v, recompute %v", g.attrTable[a], i, doms[a][i], want[i])
			}
		}
	}
	// Indexes: exactly the occupied (label, attr) pairs, each a sorted
	// permutation of its bucket.
	wantPairs := 0
	for l, bucket := range g.byLabel {
		for a := range g.cols {
			occ := false
			for _, v := range bucket {
				if g.cols[a].has(v) {
					occ = true
					break
				}
			}
			if !occ {
				if _, ok := g.indexes[labelAttr{l, AttrID(a)}]; ok {
					return fmt.Errorf("invariants: index (%q, %q) exists but attribute absent from label", g.labels[l], g.attrTable[a])
				}
				continue
			}
			wantPairs++
			perm, ok := g.indexes[labelAttr{l, AttrID(a)}]
			if !ok {
				return fmt.Errorf("invariants: missing index (%q, %q)", g.labels[l], g.attrTable[a])
			}
			if len(perm) != len(bucket) {
				return fmt.Errorf("invariants: index (%q, %q) has %d entries for a %d-node bucket", g.labels[l], g.attrTable[a], len(perm), len(bucket))
			}
			c := &g.cols[a]
			inBucket := make(map[NodeID]bool, len(bucket))
			for _, v := range bucket {
				inBucket[v] = true
			}
			for i, v := range perm {
				if !inBucket[v] {
					return fmt.Errorf("invariants: index (%q, %q) holds non-bucket node %d", g.labels[l], g.attrTable[a], v)
				}
				if i > 0 {
					prev := perm[i-1]
					if cmp := c.value(prev).Compare(c.value(v)); cmp > 0 || (cmp == 0 && prev >= v) {
						return fmt.Errorf("invariants: index (%q, %q) out of order at %d", g.labels[l], g.attrTable[a], i)
					}
				}
			}
		}
	}
	if wantPairs != len(g.indexes) || g.mem.Indexes != len(g.indexes) {
		return fmt.Errorf("invariants: %d indexes, want %d (mem records %d)", len(g.indexes), wantPairs, g.mem.Indexes)
	}
	return nil
}
