package graph

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
)

// ---------------------------------------------------------------------------
// Map-based oracle: the simplest possible implementation of the mutation
// semantics, rebuilt from scratch through the ordinary builder + Freeze
// path. The differential tests assert the incremental merge and the oracle
// agree on every observable (via Equivalent) after every batch.

type mnode struct {
	label string
	attrs map[string]Value
	alive bool
}

type medge struct {
	from, to int
	label    string
}

type mutModel struct {
	nodes []*mnode
	edges []medge
}

func modelFrom(g *Graph) *mutModel {
	m := &mutModel{}
	for v := 0; v < g.NumNodes(); v++ {
		nd := &mnode{label: g.Label(NodeID(v)), attrs: map[string]Value{}, alive: g.Alive(NodeID(v))}
		if nd.alive {
			for _, p := range g.AttrPairs(NodeID(v)) {
				nd.attrs[p.Name] = p.Value
			}
		}
		m.nodes = append(m.nodes, nd)
		for _, e := range g.Out(NodeID(v)) {
			m.edges = append(m.edges, medge{from: v, to: int(e.To), label: g.labels[e.Label]})
		}
	}
	return m
}

func (m *mutModel) clone() *mutModel {
	c := &mutModel{nodes: make([]*mnode, len(m.nodes)), edges: append([]medge(nil), m.edges...)}
	for i, nd := range m.nodes {
		attrs := make(map[string]Value, len(nd.attrs))
		for k, v := range nd.attrs {
			attrs[k] = v
		}
		c.nodes[i] = &mnode{label: nd.label, attrs: attrs, alive: nd.alive}
	}
	return c
}

func (m *mutModel) aliveID(v NodeID) bool {
	return v >= 0 && int(v) < len(m.nodes) && m.nodes[v].alive
}

func (m *mutModel) applyOne(op Mutation) error {
	switch op.Op {
	case MutAddNode:
		attrs := map[string]Value{}
		for _, kv := range op.Attrs {
			if kv.Value.Kind() == KindNull {
				delete(attrs, kv.Name)
			} else {
				attrs[kv.Name] = kv.Value
			}
		}
		m.nodes = append(m.nodes, &mnode{label: op.Label, attrs: attrs, alive: true})
	case MutRemoveNode:
		if !m.aliveID(op.Node) {
			return fmt.Errorf("model: removeNode %d", op.Node)
		}
		nd := m.nodes[op.Node]
		nd.alive = false
		nd.attrs = nil
		keep := m.edges[:0]
		for _, e := range m.edges {
			if e.from != int(op.Node) && e.to != int(op.Node) {
				keep = append(keep, e)
			}
		}
		m.edges = keep
	case MutAddEdge:
		if !m.aliveID(op.From) || !m.aliveID(op.To) {
			return fmt.Errorf("model: addEdge %d->%d", op.From, op.To)
		}
		m.edges = append(m.edges, medge{from: int(op.From), to: int(op.To), label: op.Label})
	case MutRemoveEdge:
		if !m.aliveID(op.From) || !m.aliveID(op.To) {
			return fmt.Errorf("model: removeEdge %d->%d", op.From, op.To)
		}
		for i, e := range m.edges {
			if e.from == int(op.From) && e.to == int(op.To) && e.label == op.Label {
				m.edges = append(m.edges[:i], m.edges[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("model: removeEdge %d->%d %q: no instance", op.From, op.To, op.Label)
	case MutSetAttr:
		if !m.aliveID(op.Node) {
			return fmt.Errorf("model: setAttr on %d", op.Node)
		}
		if op.Attr == "" {
			return fmt.Errorf("model: setAttr: empty name")
		}
		if op.Value.Kind() == KindNull {
			delete(m.nodes[op.Node].attrs, op.Attr)
		} else {
			m.nodes[op.Node].attrs[op.Attr] = op.Value
		}
	default:
		return fmt.Errorf("model: unknown op %d", op.Op)
	}
	return nil
}

// applyBatch applies the whole batch or nothing, like ApplyBatch.
func (m *mutModel) applyBatch(ops []Mutation) error {
	if len(ops) == 0 {
		return fmt.Errorf("model: empty batch")
	}
	c := m.clone()
	for _, op := range ops {
		if err := c.applyOne(op); err != nil {
			return err
		}
	}
	*m = *c
	return nil
}

// build rebuilds the model's live content from scratch via builder+Freeze.
func (m *mutModel) build(tb testing.TB) *Graph {
	tb.Helper()
	g := New()
	remap := make(map[int]NodeID, len(m.nodes))
	for i, nd := range m.nodes {
		if !nd.alive {
			continue
		}
		remap[i] = g.AddNode(nd.label, nd.attrs)
	}
	for _, e := range m.edges {
		if err := g.AddEdge(remap[e.from], remap[e.to], e.label); err != nil {
			tb.Fatalf("model rebuild: %v", err)
		}
	}
	g.Freeze()
	return g
}

func (m *mutModel) liveIDs() []NodeID {
	var out []NodeID
	for i, nd := range m.nodes {
		if nd.alive {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// checkAgainstModel asserts graph ≡ model rebuild and internal soundness.
func checkAgainstModel(tb testing.TB, g *Graph, m *mutModel) {
	tb.Helper()
	if err := CheckInvariants(g); err != nil {
		tb.Fatalf("invariants: %v", err)
	}
	rebuilt := m.build(tb)
	if err := Equivalent(g, rebuilt); err != nil {
		tb.Fatalf("mutated vs rebuilt: %v", err)
	}
}

// ---------------------------------------------------------------------------

func TestApplyBatchBasic(t *testing.T) {
	g := buildSample(t)
	if got := g.Version(); got != 1 {
		t.Fatalf("fresh frozen graph version = %d, want 1", got)
	}
	batch := []Mutation{
		{Op: MutAddNode, Label: "Person", Attrs: []AttrPair{{Name: "age", Value: Int(55)}, {Name: "name", Value: Str("dee")}}},
		{Op: MutAddEdge, From: 5, To: 0, Label: "knows"},
		{Op: MutSetAttr, Node: 0, Attr: "age", Value: Int(31)},
		{Op: MutRemoveEdge, From: 1, To: 2, Label: "knows"},
		{Op: MutRemoveNode, Node: 4},
	}
	ng, res, err := ApplyBatch(g, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || ng.Version() != 2 {
		t.Errorf("version = %d/%d, want 2", res.Version, ng.Version())
	}
	if len(res.AddedNodes) != 1 || res.AddedNodes[0] != 5 {
		t.Errorf("AddedNodes = %v, want [5]", res.AddedNodes)
	}
	// removeNode 4 cascades the two worksAt edges into node 4.
	if res.NodesRemoved != 1 || res.EdgesAdded != 1 || res.EdgesRemoved != 3 {
		t.Errorf("counters = %+v", *res)
	}
	if ng.NumNodes() != 6 || ng.NumLive() != 5 || ng.NumEdges() != 4 {
		t.Errorf("|V|=%d live=%d |E|=%d, want 6/5/4", ng.NumNodes(), ng.NumLive(), ng.NumEdges())
	}
	if got := ng.Attr(0, "age"); !got.Equal(Int(31)) {
		t.Errorf("mutated attr = %v", got)
	}
	if got := ng.Attr(5, "name"); !got.Equal(Str("dee")) {
		t.Errorf("added node attr = %v", got)
	}
	if ng.Alive(4) {
		t.Error("node 4 should be tombstoned")
	}
	if ts := ng.Tombstones(); len(ts) != 1 || ts[0] != 4 {
		t.Errorf("Tombstones = %v", ts)
	}
	// Base stays untouched.
	if g.Version() != 1 || g.NumEdges() != 6 || !g.Attr(0, "age").Equal(Int(30)) {
		t.Error("base graph was modified by ApplyBatch")
	}
	if err := CheckInvariants(g); err != nil {
		t.Errorf("base invariants after ApplyBatch: %v", err)
	}
	m := modelFrom(g)
	if err := m.applyBatch(batch); err != nil {
		t.Fatal(err)
	}
	checkAgainstModel(t, ng, m)
}

func TestApplyBatchValidation(t *testing.T) {
	g := buildSample(t)
	bad := map[string][]Mutation{
		"empty":                 {},
		"remove missing node":   {{Op: MutRemoveNode, Node: 99}},
		"remove negative":       {{Op: MutRemoveNode, Node: -1}},
		"double remove":         {{Op: MutRemoveNode, Node: 0}, {Op: MutRemoveNode, Node: 0}},
		"edge to removed":       {{Op: MutRemoveNode, Node: 1}, {Op: MutAddEdge, From: 0, To: 1, Label: "knows"}},
		"edge from missing":     {{Op: MutAddEdge, From: 42, To: 0, Label: "x"}},
		"remove missing edge":   {{Op: MutRemoveEdge, From: 0, To: 2, Label: "knows"}},
		"remove edge twice":     {{Op: MutRemoveEdge, From: 0, To: 1, Label: "knows"}, {Op: MutRemoveEdge, From: 0, To: 1, Label: "knows"}},
		"setAttr on removed":    {{Op: MutRemoveNode, Node: 2}, {Op: MutSetAttr, Node: 2, Attr: "age", Value: Int(1)}},
		"setAttr empty name":    {{Op: MutSetAttr, Node: 0, Attr: "", Value: Int(1)}},
		"unknown op":            {{Op: MutOp(99)}},
		"remove cascaded edge":  {{Op: MutRemoveNode, Node: 1}, {Op: MutRemoveEdge, From: 0, To: 1, Label: "knows"}},
		"re-remove added":       {{Op: MutAddNode, Label: "P"}, {Op: MutRemoveNode, Node: 5}, {Op: MutRemoveNode, Node: 5}},
		"batch-local edge gone": {{Op: MutAddNode, Label: "P"}, {Op: MutAddEdge, From: 5, To: 0, Label: "x"}, {Op: MutRemoveNode, Node: 5}, {Op: MutRemoveEdge, From: 5, To: 0, Label: "x"}},
	}
	for name, batch := range bad {
		if _, _, err := ApplyBatch(g, batch); err == nil {
			t.Errorf("%s: batch unexpectedly accepted", name)
		}
	}
	if g.Version() != 1 || g.NumEdges() != 6 {
		t.Error("rejected batches must leave the base untouched")
	}
	// Mutating an unfrozen graph is rejected too.
	if _, _, err := ApplyBatch(New(), []Mutation{{Op: MutAddNode, Label: "P"}}); err == nil {
		t.Error("ApplyBatch on unfrozen graph should fail")
	}
}

func TestParallelEdgeAccounting(t *testing.T) {
	g := New()
	a := g.AddNode("N", nil)
	b := g.AddNode("N", nil)
	if err := g.AddEdge(a, b, "e"); err != nil {
		t.Fatal(err)
	}
	g.Freeze()

	// remove, re-add, remove again: net zero instances even though the
	// deletion count (2) exceeds the base multiplicity (1).
	ng, _, err := ApplyBatch(g, []Mutation{
		{Op: MutRemoveEdge, From: a, To: b, Label: "e"},
		{Op: MutAddEdge, From: a, To: b, Label: "e"},
		{Op: MutRemoveEdge, From: a, To: b, Label: "e"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumEdges() != 0 || len(ng.Out(a)) != 0 {
		t.Fatalf("net edge count = %d, want 0", ng.NumEdges())
	}
	if err := CheckInvariants(ng); err != nil {
		t.Fatal(err)
	}

	// Three parallel instances added on top of one: four total, removing
	// three leaves one.
	ng2, _, err := ApplyBatch(g, []Mutation{
		{Op: MutAddEdge, From: a, To: b, Label: "e"},
		{Op: MutAddEdge, From: a, To: b, Label: "e"},
		{Op: MutAddEdge, From: a, To: b, Label: "e"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ng3, _, err := ApplyBatch(ng2, []Mutation{
		{Op: MutRemoveEdge, From: a, To: b, Label: "e"},
		{Op: MutRemoveEdge, From: a, To: b, Label: "e"},
		{Op: MutRemoveEdge, From: a, To: b, Label: "e"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ng3.NumEdges() != 1 {
		t.Fatalf("4 - 3 parallel instances = %d, want 1", ng3.NumEdges())
	}
	if err := CheckInvariants(ng3); err != nil {
		t.Fatal(err)
	}
}

// randomBatch generates a mutation batch against the model's current
// state. Most ops are valid; a small fraction intentionally target dead
// or out-of-range nodes so the differential test also exercises rejection
// agreement.
func randomBatch(rng *rand.Rand, m *mutModel, size int) []Mutation {
	labels := []string{"P", "Q", "R"}
	elabels := []string{"e", "f"}
	attrs := []string{"a", "b", "c", "d"}
	randVal := func() Value {
		switch rng.Intn(6) {
		case 0:
			return Null // deletes
		case 1:
			return Str(fmt.Sprintf("s%d", rng.Intn(4)))
		case 2:
			return Bool(rng.Intn(2) == 0)
		case 3:
			return Num(float64(rng.Intn(10)) / 4)
		default:
			return Int(int64(rng.Intn(20)))
		}
	}
	pick := func() NodeID {
		if rng.Intn(12) == 0 { // sometimes invalid on purpose
			return NodeID(rng.Intn(len(m.nodes)+3)) - 1
		}
		live := m.liveIDs()
		if len(live) == 0 {
			return -1
		}
		return live[rng.Intn(len(live))]
	}
	sim := m.clone() // track in-batch state so most generated ops are valid
	batch := make([]Mutation, 0, size)
	for len(batch) < size {
		var op Mutation
		switch rng.Intn(10) {
		case 0, 1:
			var as []AttrPair
			for _, a := range attrs {
				if rng.Intn(3) == 0 {
					as = append(as, AttrPair{Name: a, Value: randVal()})
				}
			}
			op = Mutation{Op: MutAddNode, Label: labels[rng.Intn(len(labels))], Attrs: as}
		case 2:
			op = Mutation{Op: MutRemoveNode, Node: pickFrom(rng, sim)}
		case 3, 4, 5:
			op = Mutation{Op: MutAddEdge, From: pickFrom(rng, sim), To: pickFrom(rng, sim), Label: elabels[rng.Intn(len(elabels))]}
		case 6:
			if len(sim.edges) > 0 && rng.Intn(8) != 0 {
				e := sim.edges[rng.Intn(len(sim.edges))]
				op = Mutation{Op: MutRemoveEdge, From: NodeID(e.from), To: NodeID(e.to), Label: e.label}
			} else {
				op = Mutation{Op: MutRemoveEdge, From: pick(), To: pick(), Label: elabels[rng.Intn(len(elabels))]}
			}
		default:
			op = Mutation{Op: MutSetAttr, Node: pickFrom(rng, sim), Attr: attrs[rng.Intn(len(attrs))], Value: randVal()}
		}
		batch = append(batch, op)
		sim.applyOne(op) // ignore error: invalid ops just don't advance sim
	}
	return batch
}

func pickFrom(rng *rand.Rand, sim *mutModel) NodeID {
	if rng.Intn(12) == 0 {
		return NodeID(rng.Intn(len(sim.nodes)+3)) - 1
	}
	live := sim.liveIDs()
	if len(live) == 0 {
		return -1
	}
	return live[rng.Intn(len(live))]
}

func TestMutateDifferentialRandom(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			base := buildSample(t)
			l := NewLive(base)
			defer l.Close()
			m := modelFrom(base)
			for round := 0; round < 30; round++ {
				batch := randomBatch(rng, m, 1+rng.Intn(8))
				modelErr := m.applyBatch(batch)
				before := l.Version()
				_, applyErr := l.Apply(batch)
				if (modelErr == nil) != (applyErr == nil) {
					t.Fatalf("round %d: oracle err=%v, ApplyBatch err=%v\nbatch: %+v", round, modelErr, applyErr, batch)
				}
				if applyErr != nil {
					if l.Version() != before {
						t.Fatalf("round %d: rejected batch bumped version", round)
					}
					continue
				}
				checkAgainstModel(t, l.Graph(), m)
				if rng.Intn(6) == 0 {
					v := l.Version()
					compacted, resurrected := l.Compact()
					if compacted.Version() != v {
						t.Fatalf("round %d: compaction changed version %d -> %d", round, v, compacted.Version())
					}
					if resurrected.HasTombstones() {
						t.Fatalf("round %d: resurrected image has tombstones", round)
					}
					if err := CheckInvariants(resurrected); err != nil {
						t.Fatalf("round %d: resurrected invariants: %v", round, err)
					}
					checkAgainstModel(t, compacted, m)
				}
			}
		})
	}
}

func TestCompactPreservesCoordinates(t *testing.T) {
	base := buildSample(t)
	l := NewLive(base)
	defer l.Close()
	batches := [][]Mutation{
		{{Op: MutAddNode, Label: "Person", Attrs: []AttrPair{{Name: "age", Value: Int(19)}}},
			{Op: MutAddEdge, From: 5, To: 1, Label: "knows"}},
		{{Op: MutRemoveNode, Node: 2}, {Op: MutSetAttr, Node: 3, Attr: "employees", Value: Int(150)}},
		{{Op: MutAddNode, Label: "Tag"}, {Op: MutAddEdge, From: 6, To: 5, Label: "tags"}},
	}
	for _, b := range batches {
		if _, err := l.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	pre := l.Acquire()
	defer pre.Close()
	compacted, _ := l.Compact()

	// Every cache coordinate must be bit-identical: dictionaries, buckets,
	// permutation indexes, label positions — and therefore the version.
	if compacted.Version() != pre.Version() {
		t.Fatalf("version %d -> %d across compaction", pre.Version(), compacted.Version())
	}
	if fmt.Sprint(pre.DictLabels()) != fmt.Sprint(compacted.DictLabels()) {
		t.Errorf("label dict changed: %v -> %v", pre.DictLabels(), compacted.DictLabels())
	}
	if fmt.Sprint(pre.DictAttrs()) != fmt.Sprint(compacted.DictAttrs()) {
		t.Errorf("attr dict changed: %v -> %v", pre.DictAttrs(), compacted.DictAttrs())
	}
	for _, name := range pre.NodeLabels() {
		if fmt.Sprint(pre.NodesByLabel(name)) != fmt.Sprint(compacted.NodesByLabel(name)) {
			t.Errorf("bucket %q changed across compaction", name)
		}
	}
	for k, perm := range pre.indexes {
		cp, ok := compacted.indexes[k]
		if !ok || fmt.Sprint(perm) != fmt.Sprint(cp) {
			t.Errorf("index (%d,%d) changed: %v -> %v", k.label, k.attr, perm, cp)
		}
	}
	if len(pre.indexes) != len(compacted.indexes) {
		t.Errorf("index count changed: %d -> %d", len(pre.indexes), len(compacted.indexes))
	}
	for v := 0; v < pre.NumNodes(); v++ {
		if pre.labelPos[v] != compacted.labelPos[v] {
			t.Errorf("labelPos[%d] changed", v)
		}
	}
	if err := Equivalent(pre, compacted); err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(compacted); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotWritersRefuseTombstones(t *testing.T) {
	g := buildSample(t)
	ng, _, err := ApplyBatch(g, []Mutation{{Op: MutRemoveNode, Node: 4}})
	if err != nil {
		t.Fatal(err)
	}
	var sink discardWriter
	if err := WriteSnapshot(&sink, ng); err == nil {
		t.Error("WriteSnapshot accepted a tombstoned graph")
	}
	if err := WriteSnapshotV1(&sink, ng); err == nil {
		t.Error("WriteSnapshotV1 accepted a tombstoned graph")
	}
	// The resurrected image is the writable checkpoint form.
	l := NewLive(ng)
	defer l.Close()
	_, res := l.Compact()
	if err := WriteSnapshot(&sink, res); err != nil {
		t.Errorf("WriteSnapshot on resurrected image: %v", err)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestLiveConcurrentReaders(t *testing.T) {
	base := buildSample(t)
	l := NewLive(base)
	defer l.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := l.Acquire()
				n := 0
				for v := 0; v < g.NumNodes(); v++ {
					if g.Alive(NodeID(v)) {
						n += len(g.Out(NodeID(v))) + len(g.AttrPairs(NodeID(v)))
					}
				}
				_ = n
				g.Close()
			}
		}()
	}
	rng := rand.New(rand.NewSource(7))
	m := modelFrom(base)
	for round := 0; round < 40; round++ {
		batch := randomBatch(rng, m, 1+rng.Intn(5))
		modelErr := m.applyBatch(batch)
		_, applyErr := l.Apply(batch)
		if (modelErr == nil) != (applyErr == nil) {
			t.Fatalf("round %d: oracle and Apply disagree: %v vs %v", round, modelErr, applyErr)
		}
		if round%10 == 9 {
			l.Compact()
		}
	}
	close(stop)
	wg.Wait()
	checkAgainstModel(t, l.Graph(), m)
}

func TestMutateMappedBase(t *testing.T) {
	// Mutations on top of a memory-mapped snapshot must retain the mapping
	// for as long as any derived generation is alive.
	dir := t.TempDir()
	path := dir + "/g.fsnap"
	g := buildSample(t)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mg, err := OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLive(mg)
	m := modelFrom(mg)
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 10; round++ {
		batch := randomBatch(rng, m, 1+rng.Intn(6))
		modelErr := m.applyBatch(batch)
		_, applyErr := l.Apply(batch)
		if (modelErr == nil) != (applyErr == nil) {
			t.Fatalf("round %d: %v vs %v", round, modelErr, applyErr)
		}
	}
	cur := l.Acquire()
	checkAgainstModel(t, cur, m)
	// Close the Live first: the acquired generation must keep the mapping
	// (and thus all string data) alive on its own.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	checkAgainstModel(t, cur, m)
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionMonotonic(t *testing.T) {
	g := buildSample(t)
	l := NewLive(g)
	defer l.Close()
	last := l.Version()
	for i := 0; i < 5; i++ {
		res, err := l.Apply([]Mutation{{Op: MutAddNode, Label: "P"}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != last+1 || l.Version() != last+1 {
			t.Fatalf("version %d after %d", res.Version, last)
		}
		last = res.Version
	}
	if l.OpsSinceCompact() != 5 {
		t.Errorf("OpsSinceCompact = %d, want 5", l.OpsSinceCompact())
	}
	l.Compact()
	if l.OpsSinceCompact() != 0 {
		t.Errorf("OpsSinceCompact after Compact = %d, want 0", l.OpsSinceCompact())
	}
	if l.Version() != last {
		t.Errorf("Compact changed version %d -> %d", last, l.Version())
	}
}
