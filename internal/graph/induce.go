package graph

import "sort"

// Induce builds the subgraph of g induced by the given node set: the
// selected nodes (with their labels and attribute tuples) and every edge
// whose endpoints are both selected. Node IDs are remapped densely in
// ascending order of the original IDs; the mapping from old to new IDs is
// returned alongside the frozen subgraph. Induce is how neighborhood
// samples are materialized as standalone graphs (e.g. to ship a
// reproduction of a generation run without the full dataset).
func Induce(g *Graph, nodes []NodeID) (*Graph, map[NodeID]NodeID) {
	g.mustFrozen("Induce")
	selected := make([]NodeID, 0, len(nodes))
	seen := make(map[NodeID]bool, len(nodes))
	for _, v := range nodes {
		if v >= 0 && int(v) < g.NumNodes() && !seen[v] {
			seen[v] = true
			selected = append(selected, v)
		}
	}
	sort.Slice(selected, func(i, j int) bool { return selected[i] < selected[j] })
	sub := New()
	remap := make(map[NodeID]NodeID, len(selected))
	for _, v := range selected {
		nv := sub.AddNode(g.Label(v), nil)
		for _, p := range g.AttrPairs(v) {
			sub.SetAttr(nv, p.Name, p.Value)
		}
		remap[v] = nv
	}
	for _, v := range selected {
		for _, e := range g.Out(v) {
			to, ok := remap[e.To]
			if !ok {
				continue
			}
			// Endpoints are validated above; AddEdge cannot fail.
			if err := sub.AddEdge(remap[v], to, g.LabelOf(e.Label)); err != nil {
				panic(err)
			}
		}
	}
	sub.Freeze()
	return sub, remap
}
