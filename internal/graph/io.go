package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonGraph is the on-disk JSON form of a graph. Counts is a load hint
// (it lets the reader pre-allocate); readers treat it as untrusted and
// clamp it, never as authoritative sizes.
type jsonGraph struct {
	Counts *jsonCounts `json:"counts,omitempty"`
	Nodes  []jsonNode  `json:"nodes"`
	Edges  []jsonEdge  `json:"edges"`
}

type jsonCounts struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
}

type jsonNode struct {
	ID    int               `json:"id"`
	Label string            `json:"label"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

type jsonEdge struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Label string `json:"label"`
}

// WriteJSON serializes g (frozen or not) as a single JSON document.
func WriteJSON(w io.Writer, g *Graph) error {
	doc := jsonGraph{
		Counts: &jsonCounts{Nodes: g.NumNodes(), Edges: g.NumEdges()},
		Nodes:  make([]jsonNode, g.NumNodes()),
	}
	for i := range g.nodeLabels {
		n := jsonNode{ID: i, Label: g.labels[g.nodeLabels[i]]}
		if pairs := g.AttrPairs(NodeID(i)); len(pairs) > 0 {
			n.Attrs = make(map[string]string, len(pairs))
			for _, p := range pairs {
				n.Attrs[p.Name] = p.Value.String()
			}
		}
		doc.Nodes[i] = n
	}
	for from := range g.out {
		for _, e := range g.out[from] {
			doc.Edges = append(doc.Edges, jsonEdge{From: from, To: int(e.To), Label: g.labels[e.Label]})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadJSON parses a graph previously produced by WriteJSON and freezes it.
// Node IDs in the document must be dense, 0-based and in order.
func ReadJSON(r io.Reader) (*Graph, error) {
	var doc jsonGraph
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("graph: decoding JSON graph: %w", err)
	}
	g := New()
	// The declared count is a pre-allocation hint only: Grow clamps it,
	// so a forged header can't force an allocation the document's actual
	// size doesn't justify.
	if doc.Counts != nil {
		g.Grow(doc.Counts.Nodes)
	} else {
		g.Grow(len(doc.Nodes))
	}
	for i, n := range doc.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("graph: node %d has id %d; ids must be dense and ordered", i, n.ID)
		}
		// Feed attributes straight into the builder columns: sorted names
		// keep AttrID assignment deterministic, and no intermediate map is
		// allocated per node.
		id := g.AddNode(n.Label, nil)
		names := make([]string, 0, len(n.Attrs))
		for a := range n.Attrs {
			names = append(names, a)
		}
		sort.Strings(names)
		for _, a := range names {
			g.SetAttr(id, a, ParseValue(n.Attrs[a]))
		}
	}
	for _, e := range doc.Edges {
		if err := g.AddEdge(NodeID(e.From), NodeID(e.To), e.Label); err != nil {
			return nil, err
		}
	}
	g.Freeze()
	return g, nil
}

// WriteTSV serializes g as two tab-separated sections:
//
//	N <id> <label> <attr>=<value> ...
//	E <from> <to> <label>
//
// The format loads faster than JSON on large graphs and diffs cleanly.
func WriteTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	// A comment header with the counts: old readers skip it ('#' lines
	// are comments), new ones use it as a clamped pre-allocation hint.
	fmt.Fprintf(bw, "# fairsqg-graph nodes=%d edges=%d\n", g.NumNodes(), g.NumEdges())
	for i := range g.nodeLabels {
		fmt.Fprintf(bw, "N\t%d\t%s", i, g.labels[g.nodeLabels[i]])
		for _, p := range g.AttrPairs(NodeID(i)) {
			fmt.Fprintf(bw, "\t%s=%s", p.Name, p.Value.String())
		}
		fmt.Fprintln(bw)
	}
	for from := range g.out {
		for _, e := range g.out[from] {
			fmt.Fprintf(bw, "E\t%d\t%d\t%s\n", from, e.To, g.labels[e.Label])
		}
	}
	return bw.Flush()
}

// ReadTSV parses the WriteTSV format and freezes the resulting graph.
func ReadTSV(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			// The WriteTSV count header is a pre-allocation hint; Grow
			// clamps it, so forged counts cost nothing. Any other comment
			// is skipped.
			var nodes, edges int
			if n, _ := fmt.Sscanf(line, "# fairsqg-graph nodes=%d edges=%d", &nodes, &edges); n == 2 {
				g.Grow(nodes)
			}
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "N":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: node record needs id and label", lineNo)
			}
			var id int
			if _, err := fmt.Sscanf(fields[1], "%d", &id); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, fields[1])
			}
			if id != g.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: node id %d out of order (expected %d)", lineNo, id, g.NumNodes())
			}
			nid := g.AddNode(fields[2], nil)
			for _, kv := range fields[3:] {
				eq := strings.IndexByte(kv, '=')
				if eq < 0 {
					return nil, fmt.Errorf("graph: line %d: bad attribute %q", lineNo, kv)
				}
				g.SetAttr(nid, kv[:eq], ParseValue(kv[eq+1:]))
			}
		case "E":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: edge record needs from, to, label", lineNo)
			}
			var from, to int
			if _, err := fmt.Sscanf(fields[1], "%d", &from); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge source %q", lineNo, fields[1])
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &to); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge target %q", lineNo, fields[2])
			}
			if err := g.AddEdge(NodeID(from), NodeID(to), fields[3]); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g.Freeze()
	return g, nil
}
