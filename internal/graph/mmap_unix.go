//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mmapSupported gates OpenSnapshotMapped; on platforms without the build
// tag the stub reports false and callers fall back to the heap decode.
const mmapSupported = true

// mmapFile maps the whole file read-only and shared. The returned slice
// stays valid until munmapBytes; page-cache-resident pages cost no read
// I/O, cold ones fault in on first access. On Linux the map is
// pre-populated (mmapExtraFlags): the open's validation pass touches every
// section anyway, and wiring the page tables in one syscall is far cheaper
// than thousands of demand faults.
func mmapFile(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil
	}
	if size != int64(int(size)) {
		return nil, syscall.EFBIG
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED|mmapExtraFlags)
}

func munmapBytes(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
