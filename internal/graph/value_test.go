package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Num(3.5), KindNumber},
		{Int(42), KindNumber},
		{Str("abc"), KindString},
		{Bool(true), KindBool},
		{Bool(false), KindBool},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind(%v) = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	if Num(0).IsNull() {
		t.Error("Num(0).IsNull() = true")
	}
}

func TestValueAccessors(t *testing.T) {
	if got := Num(2.5).Float(); got != 2.5 {
		t.Errorf("Float() = %v", got)
	}
	if got := Int(7).Float(); got != 7 {
		t.Errorf("Int Float() = %v", got)
	}
	if got := Bool(true).Float(); got != 1 {
		t.Errorf("Bool(true).Float() = %v", got)
	}
	if got := Str("x").Float(); got != 0 {
		t.Errorf("Str Float() = %v", got)
	}
	if got := Str("hey").Text(); got != "hey" {
		t.Errorf("Text() = %q", got)
	}
	if got := Num(1).Text(); got != "" {
		t.Errorf("Num Text() = %q", got)
	}
	if !Bool(true).IsTrue() || Bool(false).IsTrue() || Num(1).IsTrue() {
		t.Error("IsTrue misbehaves")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int // sign
	}{
		{Num(1), Num(2), -1},
		{Num(2), Num(2), 0},
		{Num(3), Num(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Null, Num(0), -1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Num(0), -1}, // bool < number across kinds
		{Num(999), Str(""), -1},  // number < string across kinds
	}
	for _, c := range cases {
		got := c.a.Compare(c.b)
		if sign(got) != c.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
		if sign(c.b.Compare(c.a)) != -c.want {
			t.Errorf("Compare(%v, %v) not antisymmetric", c.b, c.a)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{Int(42), "42"},
		{Num(3.5), "3.5"},
		{Num(-2), "-2"},
		{Str("abc"), "abc"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	cases := []Value{Null, Int(7), Num(2.25), Str("hello"), Bool(true), Bool(false)}
	for _, v := range cases {
		got := ParseValue(v.String())
		if !got.Equal(v) {
			t.Errorf("ParseValue(%q) = %v, want %v", v.String(), got, v)
		}
	}
	if got := ParseValue("12e3"); got.Kind() != KindNumber || got.Float() != 12000 {
		t.Errorf("ParseValue(12e3) = %v", got)
	}
	if got := ParseValue("hello world"); got.Kind() != KindString {
		t.Errorf("ParseValue string = %v", got)
	}
}

func TestOpApply(t *testing.T) {
	ops := []struct {
		op               Op
		lt, eq, gt, want bool // expected for left<right, =, >
	}{
		{OpLT, true, false, false, true},
		{OpLE, true, true, false, true},
		{OpEQ, false, true, false, true},
		{OpGE, false, true, true, true},
		{OpGT, false, false, true, true},
	}
	for _, c := range ops {
		if got := c.op.Apply(Num(1), Num(2)); got != c.lt {
			t.Errorf("%s: 1 op 2 = %v, want %v", c.op, got, c.lt)
		}
		if got := c.op.Apply(Num(2), Num(2)); got != c.eq {
			t.Errorf("%s: 2 op 2 = %v, want %v", c.op, got, c.eq)
		}
		if got := c.op.Apply(Num(3), Num(2)); got != c.gt {
			t.Errorf("%s: 3 op 2 = %v, want %v", c.op, got, c.gt)
		}
	}
}

func TestParseOp(t *testing.T) {
	for _, s := range []string{"<", "<=", "=", ">=", ">"} {
		op, err := ParseOp(s)
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", s, err)
		}
		if op.String() != s {
			t.Errorf("ParseOp(%q).String() = %q", s, op.String())
		}
	}
	if op, err := ParseOp("=="); err != nil || op != OpEQ {
		t.Errorf("ParseOp(==) = %v, %v", op, err)
	}
	if _, err := ParseOp("!="); err == nil {
		t.Error("ParseOp(!=) should fail")
	}
}

// TestTightensSemantics verifies the refinement test against the semantics
// of Apply: if Tightens(a→b), every x with "x op b" must satisfy "x op a".
func TestTightensSemantics(t *testing.T) {
	ops := []Op{OpLT, OpLE, OpEQ, OpGE, OpGT}
	f := func(ai, bi, xi int8) bool {
		a, b, x := Num(float64(ai)), Num(float64(bi)), Num(float64(xi))
		for _, op := range ops {
			if op.Tightens(a, b) && op.Apply(x, b) && !op.Apply(x, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// Transitivity over a random mixed-kind sample.
	vals := []Value{Null, Bool(false), Bool(true), Num(-1), Num(0), Num(math.Pi), Str(""), Str("a"), Str("z")}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Fatalf("Compare not transitive on %v, %v, %v", a, b, c)
				}
			}
		}
	}
}
