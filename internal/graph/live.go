package graph

import (
	"fmt"
	"sync"
)

// Live wraps a frozen graph with a mutation head: Apply merges batches
// into successive frozen generations (see ApplyBatch), readers acquire a
// consistent generation and keep it for as long as they like, and Compact
// re-freezes the accumulated copy-on-write state into a canonical layout
// in one shot. Live serializes writers; any number of readers proceed
// concurrently against the generations they acquired.
type Live struct {
	mu  sync.Mutex
	cur *Graph
	// ops counts mutations applied since construction or the last
	// Compact; the server's compaction policy reads it.
	ops int
}

// NewLive wraps a frozen graph. Live takes over the caller's backing
// reference: Live.Close releases it, and every Apply hands the reference
// chain forward (readers that need the graph to outlive the Live must
// Acquire it).
func NewLive(g *Graph) *Live {
	if !g.Frozen() {
		panic("graph: NewLive requires a frozen graph; call Freeze first")
	}
	return &Live{cur: g}
}

// Graph returns the current generation without retaining it. The result
// is immutable and safe to read concurrently with Apply, but for mapped
// graphs it may be unmapped once the Live drops it — use Acquire when the
// read outlives the call frame.
func (l *Live) Graph() *Graph {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur
}

// Acquire returns the current generation with one backing reference added
// (no-op for heap graphs); the caller must Close it. The retain happens
// under the same lock Apply swaps under, so a mapped base can never be
// unmapped between the read and the retain.
func (l *Live) Acquire() *Graph {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cur.Retain()
	return l.cur
}

// Version returns the current generation's version.
func (l *Live) Version() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur.version
}

// OpsSinceCompact returns the number of mutations applied since the last
// Compact (or construction) — the input to compaction policies.
func (l *Live) OpsSinceCompact() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ops
}

// Apply validates and merges one mutation batch, making the merged graph
// the current generation. On success the previous generation's backing
// reference is released (readers that acquired it keep it alive); on
// validation error nothing changes.
func (l *Live) Apply(ops []Mutation) (*ApplyResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ng, res, err := ApplyBatch(l.cur, ops)
	if err != nil {
		return nil, err
	}
	old := l.cur
	l.cur = ng
	l.ops += len(ops)
	old.Close()
	return res, nil
}

// Compact re-freezes the current generation into a canonical heap layout:
// a full rebuild with identical dictionaries, NodeIDs, bucket and index
// orders — and therefore the identical version, since every cache
// coordinate is preserved — that drops the copy-on-write sharing chain
// (and, for mapped bases, the mapping reference) accumulated by Apply.
// Returns the compacted generation and the resurrected snapshot image
// described under Checkpoint; resurrected == compacted when the graph has
// no tombstones.
func (l *Live) Compact() (compacted, resurrected *Graph) {
	l.mu.Lock()
	defer l.mu.Unlock()
	old := l.cur
	res := old.resurrected()
	canon := res
	if ts := old.Tombstones(); len(ts) > 0 {
		batch := TombstoneBatch(ts)
		var err error
		canon, _, err = ApplyBatch(res, batch)
		if err != nil {
			// Cannot happen: every tombstoned slot is a live bare node of
			// the resurrected graph.
			panic(fmt.Sprintf("graph: compact re-tombstone failed: %v", err))
		}
	}
	// The rebuild reproduces every cache coordinate (dictionaries, bucket
	// ranks, permutation orders), so the compacted graph keeps the old
	// generation's identity: caches keyed by (lineage, version) stay valid.
	canon.version = old.version
	canon.lineage = old.lineage
	l.cur = canon
	l.ops = 0
	old.Close()
	return canon, res
}

// TombstoneBatch builds the RemoveNode batch that re-tombstones the given
// slots — the WAL's checkpoint batch (see Live.Compact and the wal.go
// file format notes).
func TombstoneBatch(ts []NodeID) []Mutation {
	batch := make([]Mutation, len(ts))
	for i, v := range ts {
		batch[i] = Mutation{Op: MutRemoveNode, Node: v}
	}
	return batch
}

// Close releases the Live's reference to the current generation. The
// Live must not be used afterwards.
func (l *Live) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur.Close()
}

// resurrected rebuilds the graph from scratch through the builder +
// Freeze, with tombstoned slots resurrected as bare nodes (their retained
// label, no attributes, no edges) so every slot is live — the only form
// the snapshot codecs can represent. Dictionaries are pre-interned in the
// source's order, so LabelIDs, AttrIDs, bucket ranks and permutation
// index orders all coincide with the source: re-tombstoning the dead
// slots afterwards reproduces the source's logical state and cache
// coordinates exactly.
func (g *Graph) resurrected() *Graph {
	g.mustFrozen("resurrected")
	nb := New()
	for _, s := range g.labels {
		nb.Intern(s)
	}
	for _, s := range g.attrTable {
		nb.internAttr(s)
	}
	n := g.NumNodes()
	nb.Grow(n)
	for v := 0; v < n; v++ {
		id := nb.AddNode(g.labels[g.nodeLabels[v]], nil)
		if !g.Alive(NodeID(v)) {
			continue
		}
		for _, p := range g.AttrPairs(NodeID(v)) {
			nb.SetAttr(id, p.Name, p.Value)
		}
	}
	for v := 0; v < n; v++ {
		for _, e := range g.out[v] {
			if err := nb.AddEdge(NodeID(v), e.To, g.labels[e.Label]); err != nil {
				panic(fmt.Sprintf("graph: resurrect edge %d->%d: %v", v, e.To, err))
			}
		}
	}
	nb.Freeze()
	return nb
}
