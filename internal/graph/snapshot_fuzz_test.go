package graph

import (
	"bytes"
	"testing"
)

// FuzzReadSnapshot hammers the binary snapshot decoder: truncated,
// bit-flipped, section-reordered and arbitrary inputs must produce an
// error, never a panic — and because every count is validated against the
// bytes that must back it, never an allocation out of proportion to the
// input. Anything the decoder accepts must re-encode and re-decode into
// the same frozen graph (the codec's round-trip contract), which also
// catches any accepted input that violates a frozen-graph invariant the
// encoder relies on.
func FuzzReadSnapshot(f *testing.F) {
	// Seeds: valid snapshots of graphs covering every column kind, plus
	// the mutation classes called out above so the corpus starts on the
	// interesting boundaries rather than waiting for the mutator to find
	// them.
	for _, gr := range []*Graph{
		fuzzSeedGraph(),
		snapshotTestGraph(f, 3, 25),
		func() *Graph { g := New(); g.Freeze(); return g }(),
	} {
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, gr); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid)
		f.Add(valid[:len(valid)/2])   // truncated mid-payload
		f.Add(valid[:snapHeaderBase]) // header only
		flipped := bytes.Clone(valid) // bit flip in a payload
		flipped[len(flipped)-1] ^= 0x01
		f.Add(flipped)
		hdrFlip := bytes.Clone(valid) // bit flip in the section table
		hdrFlip[snapHeaderBase+5] ^= 0x80
		f.Add(hdrFlip)
		reordered := bytes.Clone(valid) // swap two section-table entries
		a := reordered[snapHeaderBase : snapHeaderBase+snapTableEntry]
		b := reordered[snapHeaderBase+snapTableEntry : snapHeaderBase+2*snapTableEntry]
		tmp := bytes.Clone(a)
		copy(a, b)
		copy(b, tmp)
		f.Add(reordered)
		misaligned := bytes.Clone(valid) // nudge a section offset off 8-alignment
		misaligned[snapHeaderBase+snapTableEntry+4]++
		f.Add(misaligned)
		forged := bytes.Clone(valid) // forge the MET2 node count sky-high
		forged[snapHeaderBase+snapTableEntry*len(snapSectionOrderV2)+5] = 0xff
		f.Add(forged)

		// The version 1 layout stays readable through the fallback path;
		// keep its decoder in the fuzz corpus too.
		var v1 bytes.Buffer
		if err := WriteSnapshotV1(&v1, gr); err != nil {
			f.Fatal(err)
		}
		f.Add(v1.Bytes())
		f.Add(v1.Bytes()[:len(v1.Bytes())*3/4])
	}
	f.Add([]byte(snapMagic))
	f.Add([]byte("not a snapshot at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: the graph must be frozen and survive a write/read
		// cycle byte- and structure-identically.
		if !g.Frozen() {
			t.Fatal("ReadSnapshot returned an unfrozen graph")
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, g); err != nil {
			t.Fatalf("re-encoding accepted snapshot: %v", err)
		}
		g2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding re-encoded snapshot: %v", err)
		}
		assertGraphDeepEqual(t, g, g2)
	})
}
