package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"os"
	"sort"
	"sync"
)

// Snapshot version 2: the memory-mappable layout. The outer framing
// (magic, version, section table, contiguous payloads, per-section CRC) is
// shared with version 1; the difference is that every hot section is a
// little-endian fixed-width array whose file offset is a multiple of 8, so
// an open file can be mmap'd and the arrays used in place as typed slice
// views (views.go) with no decode pass. Each section is zero-padded to a
// multiple of 8 bytes, which keeps the contiguous offsets aligned; logical
// (pre-padding) lengths are carried in MET2.
//
// Varint encoding survives only in two cold sections: SPIL (the label and
// attribute-name dictionaries, which must be materialized at open anyway,
// plus the payloads of rare mixed-kind columns) and DOM2 (the active
// domains, decoded lazily on first ActiveDomain call). String column
// values live in a lazily-materialized string table: STRO/STRB hold
// offsets and blob, SREF holds fixed-width 1-based refs per node, and no
// string is copied to the heap until one is first read.
//
// The loader performs the same structural validation as the v1 decoder —
// every count, ID, sort order and bitmap invariant is checked before the
// graph is returned, so a corrupt or hostile file yields an error, never a
// panic or an out-of-bounds view. The mapped open path skips only the CRC
// pass (checksumming the whole file would cost a full read and defeat
// O(open) restore); the ReadSnapshot/ReadSnapshotFile heap path keeps it.

// snapSectionOrderV2 is the canonical section layout of version 2.
var snapSectionOrderV2 = []string{
	"MET2", // counts, degree and memory stats: snapMetaV2Fields × uint64
	"SPIL", // varint spill: dictionaries + mixed-kind column payloads
	"STRO", // string table offsets: []uint64, strCount+1
	"STRB", // string table blob bytes
	"NLBL", // per-node label ids: []int32
	"OOFF", // out-adjacency CSR offsets: []uint64, n+1
	"OEDG", // out-adjacency flat edges: []{to int32, label int32}
	"IOFF", // in-adjacency CSR offsets: []uint64, n+1
	"IEDG", // in-adjacency flat edges
	"BLBL", // label buckets, ascending label ids: []int32
	"BOFF", // label bucket CSR offsets: []uint64, buckets+1
	"BMEM", // label bucket members, flat: []int32 node ids
	"CHDR", // per-attribute column headers: []{kind uint32, count uint32}
	"PRES", // presence bitmaps: attrs × words × uint64
	"NUMS", // numeric column payloads: #numeric × n × float64
	"BOOL", // bool column bitmaps: #bool × words × uint64
	"SREF", // string column refs: #string × n × uint32 (1-based, 0 = absent)
	"IKEY", // sorted index keys: []{label int32, attr int32}
	"IPRM", // sorted index permutations, concatenated: []int32
	"LPOS", // packed label+rank table: []uint64, n
	"SIGO", // out-edge label signatures: []uint64, n
	"SIGI", // in-edge label signatures: []uint64, n
	"ORUN", // out run-start table: []int32, n × stride (empty if stride 0)
	"IRUN", // in run-start table
	"DOM2", // active domains, varint, lazily materialized
}

// snapMetaV2Fields is the number of uint64 fields in MET2, in order:
// nodes, edges, labels, attrs, maxOutDeg, maxInDeg, memColumnBytes,
// memIndexBytes, memIndexes, buckets, strCount, strBlobLen, runStride,
// spilLen, dom2Len.
const snapMetaV2Fields = 15

// ErrSnapshotVersion is returned (wrapped) by OpenSnapshotMapped when the
// file is a valid snapshot of a version that has no mapped layout (v1);
// callers fall back to the decode-to-heap path and count the fallback.
var ErrSnapshotVersion = errors.New("snapshot version has no mapped layout")

func pad8(n int) int { return (n + 7) &^ 7 }

// ---------------------------------------------------------------------------
// Encoder

// WriteSnapshot serializes a frozen graph in the mappable version 2
// snapshot layout. The write is deterministic: the same graph always
// produces the same bytes.
func WriteSnapshot(w io.Writer, g *Graph) error {
	if !g.frozen {
		return fmt.Errorf("graph: WriteSnapshot requires a frozen graph; call Freeze first")
	}
	if g.HasTombstones() {
		// The codecs represent every node slot as live; persisting a
		// tombstoned graph goes through Live.Checkpoint's resurrect
		// protocol (snapshot of the resurrected graph + a WAL tombstone
		// batch), never through a direct write.
		return fmt.Errorf("graph: WriteSnapshot on a graph with %d tombstoned node(s); checkpoint via the WAL instead", g.deadCount)
	}
	e := &snapV2Encoder{g: g, strIdx: make(map[string]uint32)}
	payloads := e.build()
	return writeSnapFraming(w, SnapshotVersion, snapSectionOrderV2, payloads)
}

// writeSnapFraming writes the shared header + section table + payloads.
func writeSnapFraming(w io.Writer, version uint32, order []string, payloads [][]byte) error {
	var hdr bytes.Buffer
	hdr.WriteString(snapMagic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], version)
	hdr.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(payloads)))
	hdr.Write(u32[:])
	offset := uint64(snapHeaderBase + snapTableEntry*len(payloads))
	for i, p := range payloads {
		hdr.WriteString(order[i])
		var u64 [8]byte
		binary.LittleEndian.PutUint64(u64[:], offset)
		hdr.Write(u64[:])
		binary.LittleEndian.PutUint64(u64[:], uint64(len(p)))
		hdr.Write(u64[:])
		binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(p))
		hdr.Write(u32[:])
		offset += uint64(len(p))
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("graph: writing snapshot header: %w", err)
	}
	for i, p := range payloads {
		if _, err := w.Write(p); err != nil {
			return fmt.Errorf("graph: writing snapshot section %s: %w", order[i], err)
		}
	}
	return nil
}

// snapV2Encoder carries the string-table interning state. Refs are
// 1-based: 0 is the absent marker in SREF.
type snapV2Encoder struct {
	g      *Graph
	strs   []string
	strIdx map[string]uint32
}

func (e *snapV2Encoder) ref(s string) uint32 {
	if i, ok := e.strIdx[s]; ok {
		return i
	}
	i := uint32(len(e.strs)) + 1
	e.strs = append(e.strs, s)
	e.strIdx[s] = i
	return i
}

// colStr reads one present string value regardless of representation
// (heap strings or mapped string-table refs).
func colStr(c *column, i int) string {
	if c.strs != nil {
		return c.strs[i]
	}
	return c.tab.str(c.refs[i])
}

func padded(b []byte) []byte {
	if rem := len(b) % 8; rem != 0 {
		b = append(b, make([]byte, 8-rem)...)
	}
	return b
}

func putU64s(buf *bytes.Buffer, xs ...uint64) {
	var b [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], x)
		buf.Write(b[:])
	}
}

func putI32(buf *bytes.Buffer, x int32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(x))
	buf.Write(b[:])
}

// putValueInline encodes one Value with strings inline (uvarint length +
// bytes), the form the SPIL and DOM2 sections use.
func putValueInline(buf *bytes.Buffer, v Value) {
	buf.WriteByte(byte(v.kind))
	switch v.kind {
	case KindBool:
		if v.num != 0 {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	case KindNumber:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.num))
		buf.Write(b[:])
	case KindString:
		putUvarint(buf, uint64(len(v.str)))
		buf.WriteString(v.str)
	}
}

func (e *snapV2Encoder) build() [][]byte {
	g := e.g
	n := len(g.nodeLabels)

	// SPIL: dictionaries first, then mixed-column payloads.
	var spil bytes.Buffer
	for _, s := range g.labels {
		putUvarint(&spil, uint64(len(s)))
		spil.WriteString(s)
	}
	for _, s := range g.attrTable {
		putUvarint(&spil, uint64(len(s)))
		spil.WriteString(s)
	}
	for a := range g.cols {
		c := &g.cols[a]
		if c.count == 0 || c.kind != KindNull {
			continue
		}
		for i := 0; i < n; i++ {
			if c.has(NodeID(i)) {
				putValueInline(&spil, c.vals[i])
			}
		}
	}
	spilLen := spil.Len()

	// NLBL.
	var nlbl bytes.Buffer
	for _, l := range g.nodeLabels {
		putI32(&nlbl, int32(l))
	}

	// Adjacency: CSR offsets + flat edges per direction.
	encodeAdj := func(adj [][]Edge) (offs, edges []byte) {
		var ob, eb bytes.Buffer
		total := uint64(0)
		putU64s(&ob, 0)
		for _, es := range adj {
			total += uint64(len(es))
			putU64s(&ob, total)
			for _, ed := range es {
				putI32(&eb, int32(ed.To))
				putI32(&eb, int32(ed.Label))
			}
		}
		return ob.Bytes(), eb.Bytes()
	}
	ooff, oedg := encodeAdj(g.out)
	ioff, iedg := encodeAdj(g.in)

	// Label buckets, ascending by label.
	bucketLabels := make([]LabelID, 0, len(g.byLabel))
	for l := range g.byLabel {
		bucketLabels = append(bucketLabels, l)
	}
	sort.Slice(bucketLabels, func(i, j int) bool { return bucketLabels[i] < bucketLabels[j] })
	var blbl, boff, bmem bytes.Buffer
	covered := uint64(0)
	putU64s(&boff, 0)
	for _, l := range bucketLabels {
		putI32(&blbl, int32(l))
		members := g.byLabel[l]
		covered += uint64(len(members))
		putU64s(&boff, covered)
		for _, v := range members {
			putI32(&bmem, int32(v))
		}
	}

	// Columns: headers + fixed-width payload sections. String columns
	// intern into the table here, in (attr, node) order — deterministic.
	var chdr, pres, nums, boolb, sref bytes.Buffer
	var u32b [4]byte
	for a := range g.cols {
		c := &g.cols[a]
		binary.LittleEndian.PutUint32(u32b[:], uint32(c.kind))
		chdr.Write(u32b[:])
		binary.LittleEndian.PutUint32(u32b[:], uint32(c.count))
		chdr.Write(u32b[:])
		for _, w := range c.present {
			putU64s(&pres, w)
		}
		if c.count == 0 {
			continue
		}
		switch c.kind {
		case KindNumber:
			for i := 0; i < n; i++ {
				putU64s(&nums, math.Float64bits(c.nums[i]))
			}
		case KindBool:
			for _, w := range c.bools {
				putU64s(&boolb, w)
			}
		case KindString:
			for i := 0; i < n; i++ {
				r := uint32(0)
				if c.has(NodeID(i)) {
					r = e.ref(colStr(c, i))
				}
				binary.LittleEndian.PutUint32(u32b[:], r)
				sref.Write(u32b[:])
			}
		}
	}

	// Sorted indexes: keys ascending by (label, attr), permutations
	// concatenated in key order.
	keys := make([]labelAttr, 0, len(g.indexes))
	for k := range g.indexes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].label != keys[j].label {
			return keys[i].label < keys[j].label
		}
		return keys[i].attr < keys[j].attr
	})
	var ikey, iprm bytes.Buffer
	for _, k := range keys {
		putI32(&ikey, int32(k.label))
		putI32(&ikey, int32(k.attr))
		for _, v := range g.indexes[k] {
			putI32(&iprm, int32(v))
		}
	}

	// Derived tables — serialized so mapped open skips buildDerived.
	var lpos, sigo, sigi bytes.Buffer
	putU64s(&lpos, g.labelPos...)
	putU64s(&sigo, g.sigOut...)
	putU64s(&sigi, g.sigIn...)
	var orun, irun bytes.Buffer
	for _, x := range g.outRunStart {
		putI32(&orun, x)
	}
	for _, x := range g.inRunStart {
		putI32(&irun, x)
	}

	// DOM2 (varint, inline strings).
	var dom2 bytes.Buffer
	for _, dom := range g.domainList() {
		putUvarint(&dom2, uint64(len(dom)))
		for _, v := range dom {
			putValueInline(&dom2, v)
		}
	}
	dom2Len := dom2.Len()

	// String table.
	var stro, strb bytes.Buffer
	blobLen := uint64(0)
	putU64s(&stro, 0)
	for _, s := range e.strs {
		blobLen += uint64(len(s))
		putU64s(&stro, blobLen)
		strb.WriteString(s)
	}

	var met2 bytes.Buffer
	putU64s(&met2,
		uint64(n), uint64(g.numEdges), uint64(len(g.labels)), uint64(len(g.attrTable)),
		uint64(g.maxOutDeg), uint64(g.maxInDeg),
		uint64(g.mem.ColumnBytes), uint64(g.mem.IndexBytes), uint64(g.mem.Indexes),
		uint64(len(bucketLabels)), uint64(len(e.strs)), blobLen,
		uint64(g.runStride), uint64(spilLen), uint64(dom2Len))

	return [][]byte{
		padded(met2.Bytes()), padded(spil.Bytes()), padded(stro.Bytes()), padded(strb.Bytes()),
		padded(nlbl.Bytes()), padded(ooff), padded(oedg), padded(ioff), padded(iedg),
		padded(blbl.Bytes()), padded(boff.Bytes()), padded(bmem.Bytes()),
		padded(chdr.Bytes()), padded(pres.Bytes()), padded(nums.Bytes()),
		padded(boolb.Bytes()), padded(sref.Bytes()),
		padded(ikey.Bytes()), padded(iprm.Bytes()),
		padded(lpos.Bytes()), padded(sigo.Bytes()), padded(sigi.Bytes()),
		padded(orun.Bytes()), padded(irun.Bytes()), padded(dom2.Bytes()),
	}
}

// ---------------------------------------------------------------------------
// Loader

// snapMetaV2 is the decoded MET2 section.
type snapMetaV2 struct {
	nodes, edges, labels, attrs int
	maxOutDeg, maxInDeg         int
	mem                         MemoryStats
	buckets                     int
	strCount                    int
	strBlobLen                  int
	runStride                   int
	spilLen, dom2Len            int
}

// varCursor is a bounds-checked cursor over one varint section.
type varCursor struct {
	sec string
	buf []byte
	pos int
}

func (c *varCursor) errf(format string, args ...any) error {
	return fmt.Errorf("graph: snapshot section %s: %s", c.sec, fmt.Sprintf(format, args...))
}

func (c *varCursor) remaining() int { return len(c.buf) - c.pos }

func (c *varCursor) uvarint() (uint64, error) {
	x, n := binary.Uvarint(c.buf[c.pos:])
	if n <= 0 {
		return 0, c.errf("bad uvarint at byte %d", c.pos)
	}
	c.pos += n
	return x, nil
}

func (c *varCursor) bytes(n int) ([]byte, error) {
	if c.remaining() < n {
		return nil, c.errf("truncated %d-byte field at byte %d", n, c.pos)
	}
	b := c.buf[c.pos : c.pos+n]
	c.pos += n
	return b, nil
}

// inlineString reads a uvarint-length-prefixed string, copying onto the
// heap (spill strings never alias the backing buffer).
func (c *varCursor) inlineString() (string, error) {
	l, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if l > uint64(c.remaining()) {
		return "", c.errf("string length %d exceeds the %d bytes left", l, c.remaining())
	}
	b, _ := c.bytes(int(l))
	return string(b), nil
}

// valueInline decodes one putValueInline-encoded Value.
func (c *varCursor) valueInline() (Value, error) {
	b, err := c.bytes(1)
	if err != nil {
		return Null, err
	}
	switch Kind(b[0]) {
	case KindNull:
		return Null, nil
	case KindBool:
		vb, err := c.bytes(1)
		if err != nil {
			return Null, err
		}
		if vb[0] > 1 {
			return Null, c.errf("bool value byte is %d, want 0 or 1", vb[0])
		}
		return Bool(vb[0] == 1), nil
	case KindNumber:
		vb, err := c.bytes(8)
		if err != nil {
			return Null, err
		}
		return Num(math.Float64frombits(binary.LittleEndian.Uint64(vb))), nil
	case KindString:
		s, err := c.inlineString()
		if err != nil {
			return Null, err
		}
		return Str(s), nil
	default:
		return Null, c.errf("unknown value kind %d", b[0])
	}
}

func secErr(tag, format string, args ...any) error {
	return fmt.Errorf("graph: snapshot section %s: %s", tag, fmt.Sprintf(format, args...))
}

func decodeMetaV2(payload []byte) (*snapMetaV2, error) {
	if len(payload) != snapMetaV2Fields*8 {
		return nil, secErr("MET2", "length %d, want %d", len(payload), snapMetaV2Fields*8)
	}
	f := make([]uint64, snapMetaV2Fields)
	for i := range f {
		f[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	const maxID = math.MaxInt32
	for i, x := range f[:4] {
		if x > maxID {
			return nil, secErr("MET2", "count %d is %d, beyond the int32 id space", i, x)
		}
	}
	m := &snapMetaV2{
		nodes: int(f[0]), edges: int(f[1]), labels: int(f[2]), attrs: int(f[3]),
		maxOutDeg: int(f[4]), maxInDeg: int(f[5]),
		mem: MemoryStats{ColumnBytes: int64(f[6]), IndexBytes: int64(f[7]), Indexes: int(f[8])},
	}
	if f[8] > maxID || f[9] > uint64(m.labels) || f[10] > maxID {
		return nil, secErr("MET2", "bucket/index/string counts out of range")
	}
	m.buckets, m.strCount = int(f[9]), int(f[10])
	if f[11] > uint64(math.MaxInt64/2) || f[13] > uint64(math.MaxInt64/2) || f[14] > uint64(math.MaxInt64/2) {
		return nil, secErr("MET2", "section lengths out of range")
	}
	m.strBlobLen, m.spilLen, m.dom2Len = int(f[11]), int(f[13]), int(f[14])
	if f[12] != 0 {
		if f[12] != uint64(m.labels)+1 {
			return nil, secErr("MET2", "run stride %d, want 0 or %d", f[12], m.labels+1)
		}
		if uint64(m.nodes)*f[12] > maxRunTableEntries {
			return nil, secErr("MET2", "run tables would hold %d entries, cap is %d", uint64(m.nodes)*f[12], maxRunTableEntries)
		}
		m.runStride = int(f[12])
	}
	if m.maxOutDeg > m.edges || m.maxInDeg > m.edges {
		return nil, secErr("MET2", "max degree exceeds edge count")
	}
	return m, nil
}

// decodeSnapshotV2 builds a frozen graph over the version 2 sections.
// Fixed-width sections become typed views aliasing the buffer (zero-copy
// on little-endian hosts); dictionaries and mixed columns are decoded from
// SPIL; strings and domains stay lazy. backing, when non-nil, is attached
// as the graph's ref-counted store (the mapped path); nil means the buffer
// is a plain heap allocation kept alive by the views themselves.
func decodeSnapshotV2(data []byte, sections map[string]*snapSection, backing *snapBacking, verifyCRC bool) (*Graph, error) {
	if verifyCRC {
		for _, tag := range snapSectionOrderV2 {
			s := sections[tag]
			if got := crc32.ChecksumIEEE(s.payload); got != s.crc {
				return nil, secErr(tag, "CRC mismatch (file has %08x, payload sums to %08x)", s.crc, got)
			}
		}
	}
	meta, err := decodeMetaV2(sections["MET2"].payload)
	if err != nil {
		return nil, err
	}
	n, words := meta.nodes, (meta.nodes+63)/64

	// Every fixed-width section's length is implied by MET2 (+ CHDR for
	// the per-kind payload sections, + the buckets for IPRM); check the
	// implied ones now so all view slicing below is in bounds.
	wantLen := func(tag string, logical int) error {
		if have := len(sections[tag].payload); have != pad8(logical) {
			return secErr(tag, "length %d, want %d (%d padded)", have, pad8(logical), logical)
		}
		return nil
	}
	for _, c := range []struct {
		tag     string
		logical int
	}{
		{"SPIL", meta.spilLen},
		{"STRO", 8 * (meta.strCount + 1)},
		{"STRB", meta.strBlobLen},
		{"NLBL", 4 * n},
		{"OOFF", 8 * (n + 1)},
		{"OEDG", 8 * meta.edges},
		{"IOFF", 8 * (n + 1)},
		{"IEDG", 8 * meta.edges},
		{"BLBL", 4 * meta.buckets},
		{"BOFF", 8 * (meta.buckets + 1)},
		{"BMEM", 4 * n},
		{"CHDR", 8 * meta.attrs},
		{"PRES", 8 * words * meta.attrs},
		{"IKEY", 8 * meta.mem.Indexes},
		{"LPOS", 8 * n},
		{"SIGO", 8 * n},
		{"SIGI", 8 * n},
		{"ORUN", 4 * n * meta.runStride},
		{"IRUN", 4 * n * meta.runStride},
		{"DOM2", meta.dom2Len},
	} {
		if err := wantLen(c.tag, c.logical); err != nil {
			return nil, err
		}
	}

	g := &Graph{
		numEdges:  meta.edges,
		maxOutDeg: meta.maxOutDeg,
		maxInDeg:  meta.maxInDeg,
		mem:       meta.mem,
		version:   1,
		lineage:   nextLineage(),
		frozen:    true,
	}

	// SPIL: dictionaries (always materialized — the API needs the maps).
	spil := &varCursor{sec: "SPIL", buf: sections["SPIL"].payload[:meta.spilLen]}
	decodeDict := func(count int, what string) ([]string, error) {
		var names []string
		if count > 0 {
			if count > spil.remaining() {
				return nil, spil.errf("%s count %d exceeds the %d bytes left", what, count, spil.remaining())
			}
			names = make([]string, count)
		}
		for i := range names {
			s, err := spil.inlineString()
			if err != nil {
				return nil, err
			}
			names[i] = s
		}
		return names, nil
	}
	if g.labels, err = decodeDict(meta.labels, "label"); err != nil {
		return nil, err
	}
	g.labelIDs = make(map[string]LabelID, meta.labels)
	for i, s := range g.labels {
		if _, dup := g.labelIDs[s]; dup {
			return nil, spil.errf("duplicate label dictionary entry %q", s)
		}
		g.labelIDs[s] = LabelID(i)
	}
	if g.attrTable, err = decodeDict(meta.attrs, "attribute"); err != nil {
		return nil, err
	}
	g.attrIDs = make(map[string]AttrID, meta.attrs)
	for i, s := range g.attrTable {
		if _, dup := g.attrIDs[s]; dup {
			return nil, spil.errf("duplicate attribute dictionary entry %q", s)
		}
		g.attrIDs[s] = AttrID(i)
	}

	// String table views; validated here, materialized lazily.
	offs := viewU64(sections["STRO"].payload[:8*(meta.strCount+1)])
	if offs[0] != 0 {
		return nil, secErr("STRO", "first offset %d, want 0", offs[0])
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return nil, secErr("STRO", "offsets not monotonic at entry %d", i)
		}
	}
	if offs[len(offs)-1] != uint64(meta.strBlobLen) {
		return nil, secErr("STRO", "final offset %d, blob has %d bytes", offs[len(offs)-1], meta.strBlobLen)
	}
	g.strTab = &strTable{offs: offs, blob: sections["STRB"].payload[:meta.strBlobLen]}

	// Node labels (range-checked in the parallel phase below).
	g.nodeLabels = viewLabelIDs(sections["NLBL"].payload[:4*n])

	// Adjacency: CSR views + per-node slice headers, validated against the
	// frozen sort order, the declared degrees, the signature tables and —
	// when a run table is present — the run starts, all in a single pass.
	// The run table partitions each node's edge list into one contiguous
	// run per label, so "boundaries go 0 → degree monotonically and every
	// edge inside run l carries label l with non-decreasing endpoints" is
	// exactly the v1 sort + run-start + signature invariant, checked with
	// one comparison per edge instead of a second full replay.
	sigOut := viewU64(sections["SIGO"].payload[:8*n])
	sigIn := viewU64(sections["SIGI"].payload[:8*n])
	g.sigOut, g.sigIn = sigOut, sigIn
	decodeAdj := func(offTag, edgeTag, sigTag, runTag string, sigs []uint64, starts []int32, wantMaxDeg int) ([][]Edge, error) {
		csr := viewU64(sections[offTag].payload[:8*(n+1)])
		edges := viewEdges(sections[edgeTag].payload[:8*meta.edges])
		// On little-endian hosts each Edge{To, Label} is the u64
		// Label<<32|To, so inside a label-l run "label == l, endpoint in
		// [0,n), endpoints non-decreasing" collapses to two unsigned u64
		// compares per edge against the raw section words.
		var eu []uint64
		if hostLittleEndian {
			eu = viewU64(sections[edgeTag].payload[:8*meta.edges])
		}
		if csr[0] != 0 {
			return nil, secErr(offTag, "first offset %d, want 0", csr[0])
		}
		if csr[n] != uint64(meta.edges) {
			return nil, secErr(offTag, "edge lists sum to %d, MET2 declares %d", csr[n], meta.edges)
		}
		var adj [][]Edge
		if n > 0 {
			adj = make([][]Edge, n)
		}
		maxDeg := 0
		stride := meta.runStride
		for v := 0; v < n; v++ {
			lo, hi := csr[v], csr[v+1]
			if lo > hi {
				return nil, secErr(offTag, "offsets not monotonic at node %d", v)
			}
			es := edges[lo:hi]
			sig := uint64(0)
			if starts != nil {
				seg := starts[v*stride : v*stride+stride]
				if seg[0] != 0 {
					return nil, secErr(runTag, "node %d label 0 run starts at %d, want 0", v, seg[0])
				}
				if seg[stride-1] != int32(len(es)) {
					return nil, secErr(runTag, "node %d terminating boundary %d, degree is %d", v, seg[stride-1], len(es))
				}
				s := int32(0)
				for l := 1; l < stride; l++ {
					e := seg[l]
					if e < s {
						return nil, secErr(runTag, "node %d label %d run boundaries inverted (%d > %d)", v, l-1, s, e)
					}
					if e == s {
						continue
					}
					sig |= 1 << (uint(l-1) & 63)
					// Hot loop: one fused branch per edge; the precise
					// diagnosis happens on the (cold) failure path.
					if eu != nil {
						base64 := uint64(uint32(l-1)) << 32
						prev := base64
						un := uint64(n)
						for k, x := range eu[lo+uint64(s) : lo+uint64(e)] {
							if x-base64 >= un || x < prev {
								return nil, badRunEdge(edgeTag, v, l-1, int(s)+k, es[int(s)+k], n)
							}
							prev = x
						}
					} else {
						prevTo := NodeID(-1)
						for j, ed := range es[s:e] {
							if int(ed.Label) != l-1 || uint32(ed.To) >= uint32(n) || ed.To < prevTo {
								return nil, badRunEdge(edgeTag, v, l-1, int(s)+j, ed, n)
							}
							prevTo = ed.To
						}
					}
					s = e
				}
			} else {
				for j, ed := range es {
					if uint32(ed.To) >= uint32(n) {
						return nil, secErr(edgeTag, "node %d edge %d endpoint %d out of range [0,%d)", v, j, ed.To, n)
					}
					if uint32(ed.Label) >= uint32(meta.labels) {
						return nil, secErr(edgeTag, "node %d edge %d label %d out of range [0,%d)", v, j, ed.Label, meta.labels)
					}
					if j > 0 {
						prev := es[j-1]
						if prev.Label > ed.Label || (prev.Label == ed.Label && prev.To > ed.To) {
							return nil, secErr(edgeTag, "node %d edges not sorted by (label, endpoint) at position %d", v, j)
						}
					}
					sig |= LabelSigBit(ed.Label)
				}
			}
			if sig != sigs[v] {
				return nil, secErr(sigTag, "node %d signature %016x, edges imply %016x", v, sigs[v], sig)
			}
			if len(es) > 0 {
				adj[v] = es
			}
			if len(es) > maxDeg {
				maxDeg = len(es)
			}
		}
		if maxDeg != wantMaxDeg {
			return nil, secErr(offTag, "maximum degree %d, MET2 declares %d", maxDeg, wantMaxDeg)
		}
		return adj, nil
	}
	// Bucket, position and run-table views; contents are validated in the
	// parallel phase.
	lpos := viewU64(sections["LPOS"].payload[:8*n])
	g.labelPos = lpos
	bucketLabels := viewLabelIDs(sections["BLBL"].payload[:4*meta.buckets])
	boff := viewU64(sections["BOFF"].payload[:8*(meta.buckets+1)])
	bmem := viewNodeIDs(sections["BMEM"].payload[:4*n])
	if meta.runStride > 0 {
		g.runStride = meta.runStride
		g.outRunStart = viewI32(sections["ORUN"].payload[:4*n*meta.runStride])
		g.inRunStart = viewI32(sections["IRUN"].payload[:4*n*meta.runStride])
	}

	// Columns: headers, presence bitmaps and typed payload views are
	// assigned here (the spill cursor is sequential, so mixed columns must
	// decode in order); the O(n) per-column content checks run in the
	// parallel phase.
	chdr := sections["CHDR"].payload
	presAll := sections["PRES"].payload
	numsAll := sections["NUMS"].payload
	boolAll := sections["BOOL"].payload
	srefAll := sections["SREF"].payload
	g.cols = make([]column, meta.attrs)
	numOff, boolOff, srefOff := 0, 0, 0
	for a := range g.cols {
		c := &g.cols[a]
		kind := Kind(binary.LittleEndian.Uint32(chdr[8*a:]))
		cnt := binary.LittleEndian.Uint32(chdr[8*a+4:])
		if kind > KindString {
			return nil, secErr("CHDR", "attribute %d: unknown column kind %d", a, kind)
		}
		if cnt > uint32(n) {
			return nil, secErr("CHDR", "attribute %d: count %d exceeds %d nodes", a, cnt, n)
		}
		c.kind, c.count = kind, int(cnt)
		c.present = viewU64(presAll[8*words*a : 8*words*(a+1)])
		if c.count == 0 {
			if kind != KindNull {
				return nil, secErr("CHDR", "attribute %d: kind %d with zero count", a, kind)
			}
			continue
		}
		switch kind {
		case KindNumber:
			if len(numsAll) < numOff+8*n {
				return nil, secErr("NUMS", "attribute %d: truncated float payload", a)
			}
			c.nums = viewF64(numsAll[numOff : numOff+8*n])
			numOff += 8 * n
		case KindBool:
			if len(boolAll) < boolOff+8*words {
				return nil, secErr("BOOL", "attribute %d: truncated bool bitmap", a)
			}
			c.bools = viewU64(boolAll[boolOff : boolOff+8*words])
			boolOff += 8 * words
		case KindString:
			if len(srefAll) < srefOff+4*n {
				return nil, secErr("SREF", "attribute %d: truncated ref payload", a)
			}
			c.refs = viewU32(srefAll[srefOff : srefOff+4*n])
			c.tab = g.strTab
			srefOff += 4 * n
		default: // KindNull with count > 0: mixed values from the spill
			c.vals = make([]Value, n)
			for i := 0; i < n; i++ {
				if bitGet(c.present, i) {
					if c.vals[i], err = spil.valueInline(); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if spil.remaining() != 0 {
		return nil, spil.errf("%d undecoded trailing bytes", spil.remaining())
	}
	if pad8(numOff) != len(numsAll) {
		return nil, secErr("NUMS", "section holds %d bytes, columns need %d", len(numsAll), numOff)
	}
	if pad8(boolOff) != len(boolAll) {
		return nil, secErr("BOOL", "section holds %d bytes, columns need %d", len(boolAll), boolOff)
	}
	if pad8(srefOff) != len(srefAll) {
		return nil, secErr("SREF", "section holds %d bytes, columns need %d", len(srefAll), srefOff)
	}

	ikey := viewI32(sections["IKEY"].payload[:8*meta.mem.Indexes])
	iprm := viewNodeIDs(sections["IPRM"].payload)

	// Parallel validation phase. Every invariant the v1 decoder enforces is
	// still enforced, but the scans are independent of each other: each
	// task only reads the immutable views assigned above and writes its own
	// disjoint set of Graph fields, so the open costs the slowest task, not
	// the sum. This is what keeps the mapped open fast without trusting the
	// file.
	var wg sync.WaitGroup
	taskErrs := make([]error, 5)
	task := func(slot int, f func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			taskErrs[slot] = f()
		}()
	}

	// Out- and in-adjacency, each validated jointly with its run table.
	task(0, func() error {
		adj, err := decodeAdj("OOFF", "OEDG", "SIGO", "ORUN", sigOut, g.outRunStart, meta.maxOutDeg)
		if err == nil {
			g.out = adj
		}
		return err
	})
	task(1, func() error {
		adj, err := decodeAdj("IOFF", "IEDG", "SIGI", "IRUN", sigIn, g.inRunStart, meta.maxInDeg)
		if err == nil {
			g.in = adj
		}
		return err
	})

	// Label buckets + the packed label-position table (checked in one
	// scan: lpos[v] must pack the bucket label with v's rank). This scan
	// also subsumes the NLBL range check: the buckets cover exactly n
	// members, each strictly ascending under a strictly ascending
	// range-checked label, and nodeLabels[v] must equal that label — so
	// every node appears in exactly one bucket and its label is in range.
	task(2, func() error {
		if boff[0] != 0 {
			return secErr("BOFF", "first offset %d, want 0", boff[0])
		}
		if boff[meta.buckets] != uint64(n) {
			return secErr("BOFF", "buckets cover %d nodes, graph has %d", boff[meta.buckets], n)
		}
		g.byLabel = make(map[LabelID][]NodeID, meta.buckets)
		for i, l := range bucketLabels {
			if uint32(l) >= uint32(meta.labels) {
				return secErr("BLBL", "bucket %d label %d out of range [0,%d)", i, l, meta.labels)
			}
			if i > 0 && bucketLabels[i-1] >= l {
				return secErr("BLBL", "bucket labels not strictly ascending at entry %d", i)
			}
			lo, hi := boff[i], boff[i+1]
			if lo >= hi || hi > uint64(n) {
				return secErr("BOFF", "bucket for label %d has bad bounds [%d, %d)", l, lo, hi)
			}
			members := bmem[lo:hi]
			for j, v := range members {
				if uint32(v) >= uint32(n) {
					return secErr("BMEM", "label %d member %d out of range [0,%d)", l, v, n)
				}
				if g.nodeLabels[v] != l {
					return secErr("BMEM", "node %d filed under label %d but carries label %d", v, l, g.nodeLabels[v])
				}
				if j > 0 && members[j-1] >= v {
					return secErr("BMEM", "label %d members not strictly ascending at position %d", l, j)
				}
				if lpos[v] != PackLabelPos(l, int32(j)) {
					return secErr("LPOS", "node %d packs %016x, bucket scan implies %016x", v, lpos[v], PackLabelPos(l, int32(j)))
				}
			}
			g.byLabel[l] = members
		}
		return nil
	})

	// Column contents: presence popcounts and the per-kind payload
	// invariants (absent slots zero, bool ⊆ present, ref ⇔ present).
	task(3, func() error {
		for a := range g.cols {
			c := &g.cols[a]
			pop := 0
			for _, w := range c.present {
				pop += bits.OnesCount64(w)
			}
			if n%64 != 0 && words > 0 && c.present[words-1]>>(uint(n%64)) != 0 {
				return secErr("PRES", "attribute %d: presence bitmap has bits beyond node %d", a, n-1)
			}
			if pop != c.count {
				return secErr("PRES", "attribute %d: presence bitmap has %d bits, count says %d", a, pop, c.count)
			}
			switch {
			case c.nums != nil:
				// Word-at-a-time: only absent slots are inspected, so a
				// dense column costs one popcounted word per 64 nodes.
				for w, pw := range c.present {
					absent := ^pw
					if w == words-1 && n%64 != 0 {
						absent &= 1<<uint(n%64) - 1
					}
					for absent != 0 {
						i := w*64 + bits.TrailingZeros64(absent)
						if math.Float64bits(c.nums[i]) != 0 {
							return secErr("NUMS", "attribute %d: nonzero payload at absent node %d", a, i)
						}
						absent &= absent - 1
					}
				}
			case c.bools != nil:
				for w := range c.bools {
					if c.bools[w]&^c.present[w] != 0 {
						return secErr("BOOL", "attribute %d: bool bitmap sets bits outside the presence bitmap", a)
					}
				}
			case c.refs != nil:
				for i := 0; i < n; i++ {
					r := c.refs[i]
					if (r != 0) != bitGet(c.present, i) {
						return secErr("SREF", "attribute %d: ref/presence mismatch at node %d", a, i)
					}
					if r > uint32(meta.strCount) {
						return secErr("SREF", "attribute %d: node %d ref %d out of range [1,%d]", a, i, r, meta.strCount)
					}
				}
			}
		}
		return nil
	})

	// Sorted indexes. Bucket extents come straight from the BOFF view, not
	// g.byLabel (task 2 is building that concurrently); any file where the
	// two could disagree fails task 2, so whenever the open succeeds the
	// extents used here are the bucket contents.
	task(4, func() error {
		g.indexes = make(map[labelAttr][]NodeID, meta.mem.Indexes)
		prmOff := 0
		var prevKey labelAttr
		for i := 0; i < meta.mem.Indexes; i++ {
			key := labelAttr{LabelID(ikey[2*i]), AttrID(ikey[2*i+1])}
			if uint32(key.label) >= uint32(meta.labels) || uint32(key.attr) >= uint32(meta.attrs) {
				return secErr("IKEY", "index %d key (%d, %d) out of range", i, key.label, key.attr)
			}
			if i > 0 && (prevKey.label > key.label || (prevKey.label == key.label && prevKey.attr >= key.attr)) {
				return secErr("IKEY", "keys not strictly ascending at entry %d", i)
			}
			prevKey = key
			b, found := sort.Find(meta.buckets, func(j int) int { return int(key.label) - int(bucketLabels[j]) })
			if !found {
				return secErr("IKEY", "index %d label %d has no bucket", i, key.label)
			}
			lo, hi := boff[b], boff[b+1]
			if lo > hi || hi > uint64(n) {
				return secErr("BOFF", "bucket for label %d has bad bounds [%d, %d)", key.label, lo, hi)
			}
			size := int(hi - lo)
			if prmOff+size > len(iprm) {
				return secErr("IPRM", "index %d permutation truncated", i)
			}
			perm := iprm[prmOff : prmOff+size]
			prmOff += size
			c := &g.cols[key.attr]
			if c.kind == KindNumber && c.nums != nil {
				if err := checkNumPerm(c, perm, g.nodeLabels, key, n); err != nil {
					return err
				}
			} else if c.kind == KindString && c.refs != nil {
				if err := checkStrPerm(c, g.strTab, perm, g.nodeLabels, key, n); err != nil {
					return err
				}
			} else {
				for j, v := range perm {
					if uint32(v) >= uint32(n) {
						return secErr("IPRM", "index (%d, %d) entry %d out of range [0,%d)", key.label, key.attr, v, n)
					}
					if g.nodeLabels[v] != key.label {
						return secErr("IPRM", "index (%d, %d) lists node %d of label %d", key.label, key.attr, v, g.nodeLabels[v])
					}
					if j > 0 {
						cmp := compareColNodes(c, g.strTab, perm[j-1], v)
						if cmp > 0 || (cmp == 0 && perm[j-1] >= v) {
							return secErr("IPRM", "index (%d, %d) not sorted at position %d", key.label, key.attr, j)
						}
					}
				}
			}
			g.indexes[key] = perm
		}
		if pad8(4*prmOff) != len(sections["IPRM"].payload) {
			return secErr("IPRM", "section holds %d entries, indexes need %d", len(iprm), prmOff)
		}
		return nil
	})

	// Wait for every task even on error: the goroutines hold reads into
	// data, which on the mapped path the caller will munmap the moment we
	// return an error.
	wg.Wait()
	for _, e := range taskErrs {
		if e != nil {
			return nil, e
		}
	}

	// Active domains: lazy. The closure decodes DOM2 on first use; if the
	// section is corrupt (possible on the mapped path, which skips CRC)
	// the domains are recomputed from the columns instead — never a panic,
	// never a wrong result.
	dom2 := sections["DOM2"].payload[:meta.dom2Len]
	g.domFill = func() {
		doms, err := decodeDomainsV2(dom2, g.cols)
		if err != nil {
			doms = g.computeDomains()
		}
		g.domains = doms
	}

	g.attrNames = make([]string, len(g.attrTable))
	copy(g.attrNames, g.attrTable)
	sort.Strings(g.attrNames)
	g.backing = backing
	return g, nil
}

// checkNumPerm validates a numeric index permutation without per-pair
// comparator calls. Under the Value total order a sorted run over a
// numeric column is three phases — absent (Null) nodes, then NaN nodes,
// then finite numbers ascending — with node IDs strictly ascending inside
// every tie, so one pass with a phase counter enforces exactly what
// pairwise compareColNodes would.
func checkNumPerm(c *column, perm []NodeID, nodeLabels []LabelID, key labelAttr, n int) error {
	const (
		phAbsent = iota
		phNaN
		phNum
	)
	ph := phAbsent
	prevNum := 0.0
	for j, v := range perm {
		if uint32(v) >= uint32(n) {
			return secErr("IPRM", "index (%d, %d) entry %d out of range [0,%d)", key.label, key.attr, v, n)
		}
		if nodeLabels[v] != key.label {
			return secErr("IPRM", "index (%d, %d) lists node %d of label %d", key.label, key.attr, v, nodeLabels[v])
		}
		bad := false
		switch x := c.nums[v]; {
		case !bitGet(c.present, int(v)):
			bad = ph != phAbsent || (j > 0 && perm[j-1] >= v)
		case math.IsNaN(x):
			bad = ph > phNaN || (ph == phNaN && perm[j-1] >= v)
			ph = phNaN
		default:
			bad = ph == phNum && (x < prevNum || (x == prevNum && perm[j-1] >= v))
			ph, prevNum = phNum, x
		}
		if bad {
			return secErr("IPRM", "index (%d, %d) not sorted at position %d", key.label, key.attr, j)
		}
	}
	return nil
}

// checkStrPerm validates a string index permutation. Refs are interned, so
// equal refs mean equal strings and the blob is only consulted when the
// adjacent refs differ; within ties node IDs must strictly ascend.
func checkStrPerm(c *column, tab *strTable, perm []NodeID, nodeLabels []LabelID, key labelAttr, n int) error {
	prevRef := uint32(0)
	for j, v := range perm {
		if uint32(v) >= uint32(n) {
			return secErr("IPRM", "index (%d, %d) entry %d out of range [0,%d)", key.label, key.attr, v, n)
		}
		if nodeLabels[v] != key.label {
			return secErr("IPRM", "index (%d, %d) lists node %d of label %d", key.label, key.attr, v, nodeLabels[v])
		}
		r := c.refs[v]
		// Ref range is task 3's job, but that task runs concurrently with
		// this one — bound the lookup here too so a corrupt file can't
		// push bytesAt out of the offset view before task 3 rejects it.
		if int64(r) >= int64(len(tab.offs)) {
			return secErr("SREF", "attribute %d: node %d ref %d out of range [1,%d]", key.attr, v, r, len(tab.offs)-1)
		}
		if j > 0 {
			cmp := 0
			switch {
			case prevRef == r:
			case prevRef == 0: // Null sorts before any string
				cmp = -1
			case r == 0:
				cmp = 1
			default:
				cmp = bytes.Compare(tab.bytesAt(int(prevRef)-1), tab.bytesAt(int(r)-1))
			}
			if cmp > 0 || (cmp == 0 && perm[j-1] >= v) {
				return secErr("IPRM", "index (%d, %d) not sorted at position %d", key.label, key.attr, j)
			}
		}
		prevRef = r
	}
	return nil
}

// badRunEdge reports which invariant an edge inside a label run broke;
// only reached when the fused hot-loop check in decodeAdj fails.
func badRunEdge(edgeTag string, v, l, j int, ed Edge, n int) error {
	switch {
	case int(ed.Label) != l:
		return secErr(edgeTag, "node %d edge %d label %d inside the label-%d run", v, j, ed.Label, l)
	case uint32(ed.To) >= uint32(n):
		return secErr(edgeTag, "node %d edge %d endpoint %d out of range [0,%d)", v, j, ed.To, n)
	default:
		return secErr(edgeTag, "node %d edges not sorted by (label, endpoint) at position %d", v, j)
	}
}

// compareColNodes orders two nodes by their value in column c under the
// Value total order, without materializing the string table or boxing
// Values: string columns compare raw blob bytes (Go string order is byte
// order), numeric and bool columns compare their packed payloads with the
// same Null-first, NaN-first order Value.Compare defines.
func compareColNodes(c *column, tab *strTable, u, v NodeID) int {
	switch {
	case c.refs != nil:
		ru, rv := c.refs[u], c.refs[v]
		switch {
		case ru == rv: // interned: same ref is same string (or both Null)
			return 0
		case ru == 0: // Null sorts before any string
			return -1
		case rv == 0:
			return 1
		default:
			return bytes.Compare(tab.bytesAt(int(ru)-1), tab.bytesAt(int(rv)-1))
		}
	case c.nums != nil:
		pu, pv := c.has(u), c.has(v)
		if !pu || !pv {
			return boolCmp(pu, pv) // Null sorts before any number
		}
		nu, nv := c.nums[u], c.nums[v]
		un, vn := math.IsNaN(nu), math.IsNaN(nv)
		switch {
		case un || vn:
			return boolCmp(vn, un) // NaN sorts before any other number
		case nu < nv:
			return -1
		case nu > nv:
			return 1
		default:
			return 0
		}
	case c.bools != nil:
		pu, pv := c.has(u), c.has(v)
		if !pu || !pv {
			return boolCmp(pu, pv)
		}
		return boolCmp(bitGet(c.bools, int(u)), bitGet(c.bools, int(v)))
	default:
		return c.value(u).Compare(c.value(v))
	}
}

// boolCmp orders false before true.
func boolCmp(u, v bool) int {
	switch {
	case u == v:
		return 0
	case v:
		return -1
	default:
		return 1
	}
}

// decodeDomainsV2 decodes and validates the DOM2 section.
func decodeDomainsV2(payload []byte, cols []column) ([][]Value, error) {
	cur := &varCursor{sec: "DOM2", buf: payload}
	doms := make([][]Value, len(cols))
	for a := range doms {
		l, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		if l > uint64(cur.remaining()) {
			return nil, cur.errf("attribute %d: domain count %d exceeds the %d bytes left", a, l, cur.remaining())
		}
		dom := make([]Value, l)
		for i := range dom {
			if dom[i], err = cur.valueInline(); err != nil {
				return nil, err
			}
			if i > 0 && dom[i-1].Compare(dom[i]) >= 0 {
				return nil, cur.errf("attribute %d: active domain not sorted and distinct at position %d", a, i)
			}
		}
		doms[a] = dom
	}
	if cur.remaining() != 0 {
		return nil, cur.errf("%d undecoded trailing bytes", cur.remaining())
	}
	return doms, nil
}

// ---------------------------------------------------------------------------
// Mapped open

// OpenSnapshotMapped opens a version 2 snapshot file and serves the graph
// directly from the page cache: the file is mmap'd read-only, every
// fixed-width section becomes a typed view over the mapping, and only the
// dictionaries plus any mixed-kind columns are decoded to the heap. The
// open performs the full structural validation of ReadSnapshot but skips
// the CRC pass (which would read the whole file and defeat O(open)
// restore); use the heap path when end-to-end integrity checking of
// untrusted files matters.
//
// The returned graph holds one reference to the mapping; Close releases
// it and Retain/Close brackets add readers (see the Registry). After the
// last Close every slice previously returned by the graph's accessors is
// invalid. Strings are exempt: they are copied to the heap on first use
// and stay valid forever.
//
// A version 1 file yields an error wrapping ErrSnapshotVersion so callers
// can fall back to ReadSnapshotFile. On platforms without mmap support the
// file is decoded to the heap instead (Mapped reports false).
func OpenSnapshotMapped(path string) (*Graph, error) {
	if !mmapSupported {
		return ReadSnapshotFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: opening snapshot %s: %w", path, err)
	}
	defer f.Close()
	data, err := mmapFile(f)
	if err != nil {
		return nil, fmt.Errorf("graph: mapping snapshot %s: %w", path, err)
	}
	g, err := openMappedBytes(data)
	if err != nil {
		_ = munmapBytes(data)
		return nil, fmt.Errorf("graph: snapshot %s: %w", path, err)
	}
	return g, nil
}

func openMappedBytes(data []byte) (*Graph, error) {
	version, err := snapVersionOf(data)
	if err != nil {
		return nil, err
	}
	switch version {
	case SnapshotVersion:
	case snapVersionV1:
		return nil, fmt.Errorf("version %d: %w", version, ErrSnapshotVersion)
	default:
		return nil, fmt.Errorf("graph: unsupported snapshot version %d (this build reads versions %d and %d)", version, snapVersionV1, SnapshotVersion)
	}
	sections, err := parseSnapSections(data, snapSectionOrderV2)
	if err != nil {
		return nil, err
	}
	backing := &snapBacking{data: data, mapped: true, unmap: munmapBytes}
	backing.refs.Store(1)
	return decodeSnapshotV2(data, sections, backing, false)
}
