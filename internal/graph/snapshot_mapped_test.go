package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeSnapshotTemp writes g as a v2 snapshot into a fresh temp file and
// returns the path.
func writeSnapshotTemp(t testing.TB, g *Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.fsnap")
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenSnapshotMappedDifferential: the three ways of obtaining a frozen
// graph — parse+Freeze, heap-decode of the snapshot, mapped open of the
// same file — must be indistinguishable through the whole read API,
// including bit-identical floats, NaN payloads, mixed-kind columns, sorted
// indexes and lazily-materialized strings and domains.
func TestOpenSnapshotMappedDifferential(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		n    int
	}{{21, 0}, {22, 1}, {23, 64}, {24, 300}} {
		t.Run(fmt.Sprintf("seed%d_n%d", tc.seed, tc.n), func(t *testing.T) {
			g := snapshotTestGraph(t, tc.seed, tc.n)
			path := writeSnapshotTemp(t, g)

			heap, err := ReadSnapshotFile(path)
			if err != nil {
				t.Fatalf("ReadSnapshotFile: %v", err)
			}
			mapped, err := OpenSnapshotMapped(path)
			if err != nil {
				t.Fatalf("OpenSnapshotMapped: %v", err)
			}
			defer mapped.Close()
			if mmapSupported && !mapped.Mapped() {
				t.Fatal("OpenSnapshotMapped returned a heap graph on a mmap-capable platform")
			}
			if mapped.Mapped() && mapped.MappedBytes() == 0 {
				t.Fatal("mapped graph reports zero mapped bytes")
			}
			assertGraphDeepEqual(t, g, heap)
			assertGraphDeepEqual(t, g, mapped)
			assertGraphDeepEqual(t, heap, mapped)
		})
	}
}

// TestMappedRefCounting: Retain/Close pairs nest, the mapping survives
// until the last release, and over-release panics (a paired-call bug).
func TestMappedRefCounting(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	g := snapshotTestGraph(t, 31, 50)
	path := writeSnapshotTemp(t, g)
	m, err := OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.mappedRefs(); got != 1 {
		t.Fatalf("fresh mapped graph has %d refs, want 1", got)
	}
	m.Retain()
	m.Retain()
	if got := m.mappedRefs(); got != 3 {
		t.Fatalf("after two Retains: %d refs, want 3", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Still one ref: reads must still work.
	if m.NumNodes() != g.NumNodes() {
		t.Fatal("mapped graph unreadable while references remain")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Close past zero references did not panic")
			}
		}()
		m.Close()
	}()
}

// TestMappedStringsOutliveClose: strings are the one representation allowed
// to escape the graph handle's lifetime, so they must be heap copies, valid
// after the mapping is gone.
func TestMappedStringsOutliveClose(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	g := snapshotTestGraph(t, 33, 80)
	path := writeSnapshotTemp(t, g)
	m, err := OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for v := 0; v < m.NumNodes(); v++ {
		want = append(want, m.Attr(NodeID(v), "gender").Text())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for v, w := range want {
		if len(w) > 64 {
			t.Fatalf("node %d string looks corrupt after munmap: %q", v, w)
		}
	}
}

// TestOpenSnapshotMappedV1Fallback: a version 1 file has no mapped layout;
// the mapped open must fail with ErrSnapshotVersion (so callers fall back
// to the heap decoder) and the heap decoder must still read it.
func TestOpenSnapshotMappedV1Fallback(t *testing.T) {
	g := snapshotTestGraph(t, 35, 40)
	path := filepath.Join(t.TempDir(), "v1.fsnap")
	var buf bytes.Buffer
	if err := WriteSnapshotV1(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if mmapSupported {
		_, err := OpenSnapshotMapped(path)
		if !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("mapped open of a v1 file gave %v; want ErrSnapshotVersion", err)
		}
	}
	heap, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("v1 heap fallback: %v", err)
	}
	assertGraphDeepEqual(t, g, heap)
}

// TestMappedDomainsFallback: the mapped path skips CRC verification, so a
// corrupt DOM2 section reaches the lazy domain decoder — which must detect
// it and recompute the domains from the columns instead of returning
// garbage.
func TestMappedDomainsFallback(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	g := snapshotTestGraph(t, 37, 60)
	path := writeSnapshotTemp(t, g)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find DOM2 in the section table and trash its payload.
	count := int(binary.LittleEndian.Uint32(data[12:16]))
	for i := 0; i < count; i++ {
		ent := data[snapHeaderBase+snapTableEntry*i:]
		if string(ent[:4]) != "DOM2" {
			continue
		}
		off := binary.LittleEndian.Uint64(ent[4:12])
		l := binary.LittleEndian.Uint64(ent[12:20])
		for j := uint64(0); j < l; j++ {
			data[off+j] = 0xff
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenSnapshotMapped(path)
	if err != nil {
		t.Fatalf("mapped open with corrupt DOM2: %v", err)
	}
	defer m.Close()
	wantDoms, gotDoms := g.domainList(), m.domainList()
	if len(wantDoms) != len(gotDoms) {
		t.Fatalf("domain count %d vs %d", len(wantDoms), len(gotDoms))
	}
	for a := range wantDoms {
		if !valueSlicesBitEqual(wantDoms[a], gotDoms[a]) {
			t.Fatalf("recomputed domain of %q differs", g.attrTable[a])
		}
	}
}

// TestMappedReencode: WriteSnapshot of a mapped graph must produce the
// exact bytes of the original file (the coordinator re-serializes possibly
// mapped graphs onto the wire).
func TestMappedReencode(t *testing.T) {
	g := snapshotTestGraph(t, 39, 70)
	path := writeSnapshotTemp(t, g)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, m); err != nil {
		t.Fatalf("re-encoding mapped graph: %v", err)
	}
	if !bytes.Equal(orig, buf.Bytes()) {
		t.Fatal("re-encoded mapped graph differs from the original snapshot bytes")
	}
}
