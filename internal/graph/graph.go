// Package graph implements the attributed directed graph substrate used by
// the FairSQG query-generation algorithms: nodes and edges carry labels,
// nodes carry typed attribute tuples, and the graph maintains the label,
// active-domain and sorted attribute indexes the matcher and the spawners
// rely on. Storage is columnar once frozen: attribute names are interned
// into dense AttrIDs and Freeze transposes the per-node tuples into typed
// per-attribute columns (value array + presence bitmap) plus per-(label,
// attribute) sorted permutation indexes.
package graph

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node; IDs are dense and assigned in insertion order.
type NodeID int32

// InvalidNode is returned by lookups that find no node.
const InvalidNode NodeID = -1

// Edge is one directed, labeled edge as seen from one endpoint.
type Edge struct {
	To    NodeID // the neighbor (target for Out, source for In)
	Label LabelID
}

// LabelID is an interned node or edge label. Node labels and edge labels
// share one dictionary.
type LabelID int32

// InvalidLabel is returned when a label has never been interned.
const InvalidLabel LabelID = -1

// Graph is an attributed directed graph G = (V, E, L, T). Build it with
// AddNode/AddEdge, then call Freeze to construct the indexes; a frozen
// graph is immutable and safe for concurrent readers.
//
// Storage seam: every frozen field below the comment lines is a plain
// slice (or a map of plain slices), so it can be served either from heap
// arrays built by Freeze / the v1 snapshot decoder, or — for snapshot-v2
// files opened with OpenSnapshotMapped — from views directly over the
// memory-mapped file (see storage.go). The read API is identical either
// way; only Close semantics differ.
type Graph struct {
	labels    []string
	labelIDs  map[string]LabelID
	attrTable []string // AttrID -> name, intern order
	attrIDs   map[string]AttrID
	// nodeLabels is the per-node label array — the frozen truth about V.
	// nodeAttrs carries the per-node attribute tuples only while the graph
	// is under construction; Freeze transposes them into columns and drops
	// the whole array.
	nodeLabels []LabelID
	nodeAttrs  [][]attrKV
	out        [][]Edge
	in         [][]Edge
	numEdges   int
	frozen     bool
	byLabel    map[LabelID][]NodeID
	cols       []column  // by AttrID; built at Freeze
	domains    [][]Value // by AttrID; sorted distinct values
	indexes    map[labelAttr][]NodeID
	attrNames  []string // sorted, for AttrNames
	mem        MemoryStats
	maxOutDeg  int
	maxInDeg   int

	// version is the graph's logical mutation version: Freeze and the
	// snapshot decoders produce version 1, and every applyDelta merge (see
	// mutate.go) bumps it by one. Caches keyed by (version, query) never
	// serve a pre-mutation entry for a post-mutation graph.
	version uint64
	// lineage is a process-unique identity for the graph's mutation
	// lineage: Freeze and the snapshot decoders draw a fresh value, every
	// mutation merge inherits it, and compaction preserves it (together
	// with the version — see Live.Compact). (lineage, version) therefore
	// uniquely identifies one logical graph state within the process, the
	// key prefix shared caches use to stay correct across graphs and
	// mutations.
	lineage uint64
	// dead marks tombstoned node slots (see mutate.go): a set bit means the
	// NodeID was removed by a mutation. Dead slots keep their label (the
	// checkpoint resurrect path needs it) but carry no attributes or edges
	// and appear in no bucket or index, so the matcher never sees them.
	// NodeIDs are never reused. nil on graphs that were never mutated.
	dead      []uint64
	deadCount int

	// backing, when non-nil, owns the byte buffer (heap or mmap) the
	// frozen slices above alias; see storage.go. domFill/strTab implement
	// the lazily-materialized domain and string sections of snapshot v2.
	backing *snapBacking
	strTab  *strTable
	domOnce sync.Once
	domFill func()

	// Derived tables computed once per frozen graph (by Freeze or by the
	// snapshot decoder — they are cheap to rebuild, so they are never
	// serialized): labelPos packs each node's label (high 32 bits) with its
	// rank inside that label's bucket (low 32 bits), the backing coordinate
	// for the matcher's label-local candidate bitsets; sigOut/sigIn hold
	// per-node neighborhood label signatures (bit label&63 set when an
	// incident edge carries that label), consulted for O(1) structural
	// candidate pruning; outRunStart/inRunStart (nil on graphs where
	// nodes×labels exceeds maxRunTableEntries) give every (node, label)
	// adjacency run in O(1) instead of two binary searches.
	labelPos    []uint64
	sigOut      []uint64
	sigIn       []uint64
	runStride   int
	outRunStart []int32
	inRunStart  []int32
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{labelIDs: make(map[string]LabelID), attrIDs: make(map[string]AttrID)}
}

// Intern returns the LabelID for s, creating it if needed.
func (g *Graph) Intern(s string) LabelID {
	if id, ok := g.labelIDs[s]; ok {
		return id
	}
	id := LabelID(len(g.labels))
	g.labels = append(g.labels, s)
	g.labelIDs[s] = id
	return id
}

// LabelOf returns the string form of an interned label.
func (g *Graph) LabelOf(id LabelID) string {
	if id < 0 || int(id) >= len(g.labels) {
		return ""
	}
	return g.labels[id]
}

// LookupLabel returns the LabelID for s without interning, or InvalidLabel.
func (g *Graph) LookupLabel(s string) LabelID {
	if id, ok := g.labelIDs[s]; ok {
		return id
	}
	return InvalidLabel
}

// AddNode appends a node with the given label and attribute tuple and
// returns its ID. The attrs map is copied (keys interned in sorted order,
// so AttrID assignment is deterministic); the caller keeps ownership and
// may reuse or mutate it afterwards. AddNode panics on a frozen graph.
// maxPreallocEntries caps how many entries a declared count (a TSV or
// JSON header, or any other untrusted hint) may pre-allocate through
// Grow. Graphs larger than the cap still load fine — append takes over —
// but a forged multi-billion count can never turn into a multi-GB
// up-front allocation.
const maxPreallocEntries = 1 << 20

// Grow pre-allocates capacity for about n more nodes, clamped to
// maxPreallocEntries; a hint, never a limit. No-op on frozen graphs and
// non-positive counts.
func (g *Graph) Grow(n int) {
	if g.frozen || n <= 0 {
		return
	}
	if n > maxPreallocEntries {
		n = maxPreallocEntries
	}
	if want := len(g.nodeLabels) + n; want > cap(g.nodeLabels) {
		labels := make([]LabelID, len(g.nodeLabels), want)
		copy(labels, g.nodeLabels)
		g.nodeLabels = labels
		attrs := make([][]attrKV, len(g.nodeAttrs), want)
		copy(attrs, g.nodeAttrs)
		g.nodeAttrs = attrs
		out := make([][]Edge, len(g.out), want)
		copy(out, g.out)
		g.out = out
		in := make([][]Edge, len(g.in), want)
		copy(in, g.in)
		g.in = in
	}
}

func (g *Graph) AddNode(label string, attrs map[string]Value) NodeID {
	g.mustMutable("AddNode")
	id := NodeID(len(g.nodeLabels))
	var kvs []attrKV
	if len(attrs) > 0 {
		names := make([]string, 0, len(attrs))
		for a := range attrs {
			names = append(names, a)
		}
		sort.Strings(names)
		kvs = make([]attrKV, 0, len(names))
		for _, a := range names {
			kvs = append(kvs, attrKV{id: g.internAttr(a), val: attrs[a]})
		}
	}
	g.nodeLabels = append(g.nodeLabels, g.Intern(label))
	g.nodeAttrs = append(g.nodeAttrs, kvs)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge inserts a directed labeled edge from → to.
func (g *Graph) AddEdge(from, to NodeID, label string) error {
	g.mustMutable("AddEdge")
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("graph: AddEdge(%d, %d): node out of range [0,%d)", from, to, len(g.nodeLabels))
	}
	l := g.Intern(label)
	g.out[from] = append(g.out[from], Edge{To: to, Label: l})
	g.in[to] = append(g.in[to], Edge{To: from, Label: l})
	g.numEdges++
	return nil
}

func (g *Graph) valid(v NodeID) bool { return v >= 0 && int(v) < len(g.nodeLabels) }

func (g *Graph) mustMutable(op string) {
	if g.frozen {
		panic("graph: " + op + " on frozen graph")
	}
}

// Freeze builds the label index, the attribute columns with their active
// domains, and the per-(label, attribute) sorted indexes, then marks the
// graph immutable. Freeze is idempotent.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	g.byLabel = make(map[LabelID][]NodeID)
	for i, l := range g.nodeLabels {
		g.byLabel[l] = append(g.byLabel[l], NodeID(i))
	}
	g.buildColumns()
	g.buildIndexes()
	for i := range g.out {
		sortEdges(g.out[i])
		sortEdges(g.in[i])
		if len(g.out[i]) > g.maxOutDeg {
			g.maxOutDeg = len(g.out[i])
		}
		if len(g.in[i]) > g.maxInDeg {
			g.maxInDeg = len(g.in[i])
		}
	}
	g.buildDerived()
	g.version = 1
	g.lineage = nextLineage()
	g.frozen = true
}

// lineageCounter issues process-unique lineage identities; see the
// lineage field.
var lineageCounter atomic.Uint64

func nextLineage() uint64 { return lineageCounter.Add(1) }

// Version returns the graph's logical mutation version (1 for a freshly
// frozen or snapshot-loaded graph; +1 per applied mutation batch). Caches
// that outlive one graph generation must key their entries by it.
func (g *Graph) Version() uint64 {
	g.mustFrozen("Version")
	return g.version
}

// Lineage returns the graph's process-unique lineage identity: fresh per
// Freeze or snapshot load, inherited by mutation merges, preserved by
// compaction. The (Lineage, Version) pair uniquely identifies one logical
// graph state within the process — shared caches key entries by it.
func (g *Graph) Lineage() uint64 {
	g.mustFrozen("Lineage")
	return g.lineage
}

// GenKey renders the (lineage, version) pair as a compact string prefix
// for cache keys; see Lineage.
func (g *Graph) GenKey() string {
	g.mustFrozen("GenKey")
	return strconv.FormatUint(g.lineage, 36) + ":" + strconv.FormatUint(g.version, 36)
}

// Alive reports whether v is a live node: in range and not tombstoned by a
// RemoveNode mutation. On never-mutated graphs every in-range node is live.
func (g *Graph) Alive(v NodeID) bool {
	if !g.valid(v) {
		return false
	}
	return g.dead == nil || !bitGet(g.dead, int(v))
}

// NumLive returns the number of live nodes: NumNodes minus tombstones.
func (g *Graph) NumLive() int { return len(g.nodeLabels) - g.deadCount }

// HasTombstones reports whether any node slot was removed by a mutation.
// Tombstoned graphs cannot be snapshotted directly (the snapshot codecs
// represent every slot as live); see Live.Checkpoint for the resurrect
// protocol that persists them.
func (g *Graph) HasTombstones() bool { return g.deadCount > 0 }

// DictLabels returns the label dictionary in intern order (index i holds
// the string of LabelID i). The slice is shared; callers must not mutate
// it. The differential suites use it to align dictionaries between a
// mutated graph and its rebuild-from-scratch oracle, so Bloom-signature
// bit assignments (LabelSigBit is LabelID-modulo-64) coincide.
func (g *Graph) DictLabels() []string { return g.labels }

// DictAttrs returns the attribute-name dictionary in intern order (index
// i holds the name of AttrID i). Shared; callers must not mutate it.
func (g *Graph) DictAttrs() []string { return g.attrTable }

// buildDerived computes the label-position and neighborhood-signature
// tables from the frozen layout. Freeze calls it after sorting adjacency;
// the snapshot decoder calls it after restoring the frozen sections, so a
// restored graph carries identical tables without serializing them.
func (g *Graph) buildDerived() {
	g.labelPos = make([]uint64, len(g.nodeLabels))
	for label, nodes := range g.byLabel {
		for i, v := range nodes {
			g.labelPos[v] = PackLabelPos(label, int32(i))
		}
	}
	if g.deadCount > 0 {
		// Tombstoned slots belong to no bucket; poison their packed entry so
		// a stray probe can never alias (label 0, rank 0).
		for v := range g.nodeLabels {
			if bitGet(g.dead, v) {
				g.labelPos[v] = PackLabelPos(InvalidLabel, -1)
			}
		}
	}
	g.sigOut = make([]uint64, len(g.nodeLabels))
	g.sigIn = make([]uint64, len(g.nodeLabels))
	for v := range g.out {
		for _, e := range g.out[v] {
			g.sigOut[v] |= LabelSigBit(e.Label)
		}
		for _, e := range g.in[v] {
			g.sigIn[v] |= LabelSigBit(e.Label)
		}
	}
	g.buildRunTables()
}

// maxRunTableEntries caps the dense (node × label) run-boundary tables at
// 32 MiB apiece; graphs beyond the cap keep the binary-search EdgeRun path.
const maxRunTableEntries = 1 << 23

// buildRunTables precomputes, for every (node, label) pair, where the
// label's run starts inside the node's sorted adjacency: run(v, l) =
// es[start[v*stride+l]:start[v*stride+l+1]]. One extra column per node
// holds the terminating boundary.
func (g *Graph) buildRunTables() {
	g.runStride, g.outRunStart, g.inRunStart = 0, nil, nil
	stride := len(g.labels) + 1
	if len(g.nodeLabels) == 0 || len(g.nodeLabels)*stride > maxRunTableEntries {
		return
	}
	g.runStride = stride
	g.outRunStart = buildRunStarts(g.out, stride)
	g.inRunStart = buildRunStarts(g.in, stride)
}

func buildRunStarts(adj [][]Edge, stride int) []int32 {
	starts := make([]int32, len(adj)*stride)
	for v, es := range adj {
		base := v * stride
		pos := 0
		for l := 0; l < stride-1; l++ {
			starts[base+l] = int32(pos)
			for pos < len(es) && int(es[pos].Label) == l {
				pos++
			}
		}
		starts[base+stride-1] = int32(len(es))
	}
	return starts
}

// LabelSigBit returns the signature bit an edge label hashes to. The
// signature is a 64-bit Bloom filter with one hash: a clear bit proves the
// label absent, a set bit is inconclusive (labels collide modulo 64).
func LabelSigBit(l LabelID) uint64 { return 1 << (uint(l) & 63) }

// OutSignature returns node v's out-edge label signature: for every
// out-edge label l of v, the LabelSigBit(l) bit is set. Matcher hot path:
// valid only on frozen graphs.
func (g *Graph) OutSignature(v NodeID) uint64 { return g.sigOut[v] }

// InSignature is OutSignature over v's in-edges.
func (g *Graph) InSignature(v NodeID) uint64 { return g.sigIn[v] }

// PackLabelPos packs a node's label (high 32 bits) with its label-bucket
// rank (low 32 bits) — the layout PackedLabelPos reads back.
func PackLabelPos(l LabelID, pos int32) uint64 {
	return uint64(uint32(l))<<32 | uint64(uint32(pos))
}

// PackedLabelPos returns PackLabelPos(label of v, LabelPos(v)) in a single
// load — the matcher's membership probe resolves label equality and bitset
// position from it without touching the node records. Matcher hot path:
// valid only on frozen graphs.
func (g *Graph) PackedLabelPos(v NodeID) uint64 { return g.labelPos[v] }

// LabelPos returns v's rank within its label bucket: NodesByLabel of v's
// label lists v at exactly this index. Together with NodesByLabelID it
// defines the label-local coordinate space the matcher's candidate bitsets
// are indexed by.
func (g *Graph) LabelPos(v NodeID) int32 {
	g.mustFrozen("LabelPos")
	return int32(uint32(g.labelPos[v]))
}

// NodesByLabelID is NodesByLabel for an already-interned label. The slice
// is shared; callers must not mutate it.
func (g *Graph) NodesByLabelID(id LabelID) []NodeID {
	g.mustFrozen("NodesByLabelID")
	return g.byLabel[id]
}

// EdgeRun returns the contiguous run of v's out-edges (or in-edges when
// outgoing is false) carrying the given label. Frozen adjacency is sorted
// by (label, endpoint), so the run is located with two binary searches and
// its endpoints are in ascending NodeID order. The slice is shared; callers
// must not mutate it.
// Matcher hot path: valid only on frozen graphs.
func (g *Graph) EdgeRun(v NodeID, label LabelID, outgoing bool) []Edge {
	if outgoing {
		return edgeRun(g.out[v], g.outRunStart, g.runStride, v, label)
	}
	return edgeRun(g.in[v], g.inRunStart, g.runStride, v, label)
}

// Adjacency exposes the frozen adjacency lists (out when outgoing, in
// otherwise), indexed by NodeID and sorted by (label, endpoint). Shared,
// read-only: the matcher captures them once so its inner loops run on
// direct slice indexing instead of per-edge accessor calls.
func (g *Graph) Adjacency(outgoing bool) [][]Edge {
	g.mustFrozen("Adjacency")
	if outgoing {
		return g.out
	}
	return g.in
}

// RunStarts exposes the dense run-boundary table for one direction along
// with its stride: run (v, l) spans starts[v*stride+l:v*stride+l+1] of the
// node's adjacency. starts is nil on graphs past maxRunTableEntries —
// callers must fall back to EdgeRun. Shared, read-only.
func (g *Graph) RunStarts(outgoing bool) (starts []int32, stride int) {
	g.mustFrozen("RunStarts")
	if outgoing {
		return g.outRunStart, g.runStride
	}
	return g.inRunStart, g.runStride
}

// LabelPosTable exposes the packed label+rank table (see PackedLabelPos),
// indexed by NodeID. Shared, read-only.
func (g *Graph) LabelPosTable() []uint64 {
	g.mustFrozen("LabelPosTable")
	return g.labelPos
}

// SignatureTables exposes the out- and in-edge label signature tables (see
// OutSignature), indexed by NodeID. Shared, read-only.
func (g *Graph) SignatureTables() (sigOut, sigIn []uint64) {
	g.mustFrozen("SignatureTables")
	return g.sigOut, g.sigIn
}

func edgeRun(es []Edge, starts []int32, stride int, v NodeID, label LabelID) []Edge {
	if starts == nil {
		return edgeRunSearch(es, label)
	}
	if uint32(label) >= uint32(stride-1) {
		return nil
	}
	base := int(v) * stride
	return es[starts[base+int(label)]:starts[base+int(label)+1]]
}

// edgeRunSearch is the binary-search fallback for graphs too large for the
// dense run tables.
func edgeRunSearch(es []Edge, label LabelID) []Edge {
	lo := sort.Search(len(es), func(i int) bool { return es[i].Label >= label })
	hi := lo + sort.Search(len(es)-lo, func(i int) bool { return es[lo+i].Label > label })
	return es[lo:hi]
}

// RunLen is len(EdgeRun(v, label, outgoing)) without materializing the
// slice — the matcher's ordering heuristic reads run lengths far more
// often than run contents.
func (g *Graph) RunLen(v NodeID, label LabelID, outgoing bool) int {
	starts := g.outRunStart
	if !outgoing {
		starts = g.inRunStart
	}
	if starts == nil || uint32(label) >= uint32(g.runStride-1) {
		return len(g.EdgeRun(v, label, outgoing))
	}
	base := int(v) * g.runStride
	return int(starts[base+int(label)+1] - starts[base+int(label)])
}

// LabelDegree counts v's out- (or in-) edges carrying the given label;
// parallel edges each count once.
func (g *Graph) LabelDegree(v NodeID, label LabelID, outgoing bool) int {
	return len(g.EdgeRun(v, label, outgoing))
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Label != es[j].Label {
			return es[i].Label < es[j].Label
		}
		return es[i].To < es[j].To
	})
}

// Frozen reports whether Freeze has been called.
func (g *Graph) Frozen() bool { return g.frozen }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodeLabels) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.numEdges }

// Label returns the node's label string.
func (g *Graph) Label(v NodeID) string { return g.labels[g.nodeLabels[v]] }

// LabelID returns the node's interned label.
func (g *Graph) NodeLabelID(v NodeID) LabelID { return g.nodeLabels[v] }

// Attr returns the node's value for attribute a (Null when absent). Hot
// paths should resolve the name once via AttrIDOf and use AttrValue.
func (g *Graph) Attr(v NodeID, a string) Value {
	return g.AttrValue(v, g.AttrIDOf(a))
}

// AttrPair is one (name, value) entry of a node's attribute tuple.
type AttrPair struct {
	Name  string
	Value Value
}

// AttrPairs returns the node's attribute tuple sorted by name. The slice
// is freshly assembled (from columns once frozen); callers own it.
func (g *Graph) AttrPairs(v NodeID) []AttrPair {
	if g.frozen {
		var out []AttrPair
		for _, name := range g.attrNames {
			a := g.attrIDs[name]
			if g.cols[a].has(v) {
				out = append(out, AttrPair{Name: name, Value: g.cols[a].value(v)})
			}
		}
		return out
	}
	kvs := g.nodeAttrs[v]
	out := make([]AttrPair, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, AttrPair{Name: g.attrTable[kv.id], Value: kv.val})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Attrs returns a copy of the node's attribute tuple as a map. Mutating
// the result never affects the graph: once frozen the tuple is assembled
// from the immutable columns.
func (g *Graph) Attrs(v NodeID) map[string]Value {
	pairs := g.AttrPairs(v)
	out := make(map[string]Value, len(pairs))
	for _, p := range pairs {
		out[p.Name] = p.Value
	}
	return out
}

// SetAttr sets or overwrites one attribute of a node; only valid before
// Freeze (columns and active domains are built at freeze time).
func (g *Graph) SetAttr(v NodeID, a string, val Value) {
	g.mustMutable("SetAttr")
	id := g.internAttr(a)
	for i := range g.nodeAttrs[v] {
		if g.nodeAttrs[v][i].id == id {
			g.nodeAttrs[v][i].val = val
			return
		}
	}
	g.nodeAttrs[v] = append(g.nodeAttrs[v], attrKV{id: id, val: val})
}

// Out returns the out-edges of v sorted by (label, target).
func (g *Graph) Out(v NodeID) []Edge { return g.out[v] }

// In returns the in-edges of v sorted by (label, source).
func (g *Graph) In(v NodeID) []Edge { return g.in[v] }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// HasEdge reports whether an edge from → to with the given label exists.
func (g *Graph) HasEdge(from, to NodeID, label LabelID) bool {
	es := g.out[from]
	// Edges are sorted by (label, target) once frozen; binary search then.
	if g.frozen {
		i := sort.Search(len(es), func(i int) bool {
			if es[i].Label != label {
				return es[i].Label > label
			}
			return es[i].To >= to
		})
		return i < len(es) && es[i].Label == label && es[i].To == to
	}
	for _, e := range es {
		if e.Label == label && e.To == to {
			return true
		}
	}
	return false
}

// NodesByLabel returns the set V(u) = {v | L(v) = label}. The slice is
// shared; callers must not mutate it. Requires a frozen graph.
func (g *Graph) NodesByLabel(label string) []NodeID {
	g.mustFrozen("NodesByLabel")
	id, ok := g.labelIDs[label]
	if !ok {
		return nil
	}
	return g.byLabel[id]
}

// CountLabel returns |V(label)| on a frozen graph.
func (g *Graph) CountLabel(label string) int { return len(g.NodesByLabel(label)) }

// domainList returns the per-attribute active domains, materializing them
// on first use for graphs loaded from a v2 snapshot (the DOM2 section is
// decoded lazily; see storage.go).
func (g *Graph) domainList() [][]Value {
	if g.domFill != nil {
		g.domOnce.Do(g.domFill)
	}
	return g.domains
}

// ActiveDomain returns adom(a): the sorted distinct values attribute a takes
// over V. The slice is shared; callers must not mutate it.
func (g *Graph) ActiveDomain(a string) []Value {
	g.mustFrozen("ActiveDomain")
	id, ok := g.attrIDs[a]
	if !ok {
		return nil
	}
	return g.domainList()[id]
}

// ActiveDomainByID is ActiveDomain for an already-interned attribute.
func (g *Graph) ActiveDomainByID(a AttrID) []Value {
	g.mustFrozen("ActiveDomainByID")
	doms := g.domainList()
	if a < 0 || int(a) >= len(doms) {
		return nil
	}
	return doms[a]
}

// AttrNames returns the sorted names of all node attributes present in G.
func (g *Graph) AttrNames() []string {
	g.mustFrozen("AttrNames")
	return g.attrNames
}

// MaxActiveDomain returns |adom_m|, the size of the largest active domain.
func (g *Graph) MaxActiveDomain() int {
	g.mustFrozen("MaxActiveDomain")
	m := 0
	for _, d := range g.domainList() {
		if len(d) > m {
			m = len(d)
		}
	}
	return m
}

// NodeLabels returns the distinct node labels present in G.
func (g *Graph) NodeLabels() []string {
	g.mustFrozen("NodeLabels")
	out := make([]string, 0, len(g.byLabel))
	for id := range g.byLabel {
		out = append(out, g.labels[id])
	}
	sort.Strings(out)
	return out
}

func (g *Graph) mustFrozen(op string) {
	if !g.frozen {
		panic("graph: " + op + " requires a frozen graph; call Freeze first")
	}
}
