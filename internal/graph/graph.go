// Package graph implements the attributed directed graph substrate used by
// the FairSQG query-generation algorithms: nodes and edges carry labels,
// nodes carry typed attribute tuples, and the graph maintains the label and
// active-domain indexes the matcher and the spawners rely on.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node; IDs are dense and assigned in insertion order.
type NodeID int32

// InvalidNode is returned by lookups that find no node.
const InvalidNode NodeID = -1

// Edge is one directed, labeled edge as seen from one endpoint.
type Edge struct {
	To    NodeID // the neighbor (target for Out, source for In)
	Label LabelID
}

// LabelID is an interned node or edge label. Node labels and edge labels
// share one dictionary.
type LabelID int32

// InvalidLabel is returned when a label has never been interned.
const InvalidLabel LabelID = -1

// nodeData is the per-node record.
type nodeData struct {
	label LabelID
	attrs map[string]Value
}

// Graph is an attributed directed graph G = (V, E, L, T). Build it with
// AddNode/AddEdge, then call Freeze to construct the indexes; a frozen
// graph is immutable and safe for concurrent readers.
type Graph struct {
	labels    []string
	labelIDs  map[string]LabelID
	nodes     []nodeData
	out       [][]Edge
	in        [][]Edge
	numEdges  int
	frozen    bool
	byLabel   map[LabelID][]NodeID
	domains   map[string][]Value
	attrNames []string
	maxOutDeg int
	maxInDeg  int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{labelIDs: make(map[string]LabelID)}
}

// Intern returns the LabelID for s, creating it if needed.
func (g *Graph) Intern(s string) LabelID {
	if id, ok := g.labelIDs[s]; ok {
		return id
	}
	id := LabelID(len(g.labels))
	g.labels = append(g.labels, s)
	g.labelIDs[s] = id
	return id
}

// LabelOf returns the string form of an interned label.
func (g *Graph) LabelOf(id LabelID) string {
	if id < 0 || int(id) >= len(g.labels) {
		return ""
	}
	return g.labels[id]
}

// LookupLabel returns the LabelID for s without interning, or InvalidLabel.
func (g *Graph) LookupLabel(s string) LabelID {
	if id, ok := g.labelIDs[s]; ok {
		return id
	}
	return InvalidLabel
}

// AddNode appends a node with the given label and attribute tuple and
// returns its ID. The attrs map is retained; callers must not mutate it
// afterwards. AddNode panics on a frozen graph.
func (g *Graph) AddNode(label string, attrs map[string]Value) NodeID {
	g.mustMutable("AddNode")
	if attrs == nil {
		attrs = map[string]Value{}
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, nodeData{label: g.Intern(label), attrs: attrs})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge inserts a directed labeled edge from → to.
func (g *Graph) AddEdge(from, to NodeID, label string) error {
	g.mustMutable("AddEdge")
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("graph: AddEdge(%d, %d): node out of range [0,%d)", from, to, len(g.nodes))
	}
	l := g.Intern(label)
	g.out[from] = append(g.out[from], Edge{To: to, Label: l})
	g.in[to] = append(g.in[to], Edge{To: from, Label: l})
	g.numEdges++
	return nil
}

func (g *Graph) valid(v NodeID) bool { return v >= 0 && int(v) < len(g.nodes) }

func (g *Graph) mustMutable(op string) {
	if g.frozen {
		panic("graph: " + op + " on frozen graph")
	}
}

// Freeze builds the label index and per-attribute active domains and marks
// the graph immutable. Freeze is idempotent.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	g.byLabel = make(map[LabelID][]NodeID)
	for i := range g.nodes {
		l := g.nodes[i].label
		g.byLabel[l] = append(g.byLabel[l], NodeID(i))
	}
	domains := make(map[string][]Value)
	for i := range g.nodes {
		for a, v := range g.nodes[i].attrs {
			domains[a] = append(domains[a], v)
		}
	}
	g.domains = make(map[string][]Value, len(domains))
	g.attrNames = g.attrNames[:0]
	for a, vs := range domains {
		sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
		dedup := vs[:0]
		for i, v := range vs {
			if i == 0 || !v.Equal(vs[i-1]) {
				dedup = append(dedup, v)
			}
		}
		g.domains[a] = dedup
		g.attrNames = append(g.attrNames, a)
	}
	sort.Strings(g.attrNames)
	for i := range g.out {
		sortEdges(g.out[i])
		sortEdges(g.in[i])
		if len(g.out[i]) > g.maxOutDeg {
			g.maxOutDeg = len(g.out[i])
		}
		if len(g.in[i]) > g.maxInDeg {
			g.maxInDeg = len(g.in[i])
		}
	}
	g.frozen = true
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Label != es[j].Label {
			return es[i].Label < es[j].Label
		}
		return es[i].To < es[j].To
	})
}

// Frozen reports whether Freeze has been called.
func (g *Graph) Frozen() bool { return g.frozen }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.numEdges }

// Label returns the node's label string.
func (g *Graph) Label(v NodeID) string { return g.labels[g.nodes[v].label] }

// LabelID returns the node's interned label.
func (g *Graph) NodeLabelID(v NodeID) LabelID { return g.nodes[v].label }

// Attr returns the node's value for attribute a (Null when absent).
func (g *Graph) Attr(v NodeID, a string) Value {
	if val, ok := g.nodes[v].attrs[a]; ok {
		return val
	}
	return Null
}

// Attrs returns the node's attribute tuple. Callers must not mutate it.
func (g *Graph) Attrs(v NodeID) map[string]Value { return g.nodes[v].attrs }

// SetAttr sets or overwrites one attribute of a node; only valid before
// Freeze (active domains are built at freeze time).
func (g *Graph) SetAttr(v NodeID, a string, val Value) {
	g.mustMutable("SetAttr")
	g.nodes[v].attrs[a] = val
}

// Out returns the out-edges of v sorted by (label, target).
func (g *Graph) Out(v NodeID) []Edge { return g.out[v] }

// In returns the in-edges of v sorted by (label, source).
func (g *Graph) In(v NodeID) []Edge { return g.in[v] }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// HasEdge reports whether an edge from → to with the given label exists.
func (g *Graph) HasEdge(from, to NodeID, label LabelID) bool {
	es := g.out[from]
	// Edges are sorted by (label, target) once frozen; binary search then.
	if g.frozen {
		i := sort.Search(len(es), func(i int) bool {
			if es[i].Label != label {
				return es[i].Label > label
			}
			return es[i].To >= to
		})
		return i < len(es) && es[i].Label == label && es[i].To == to
	}
	for _, e := range es {
		if e.Label == label && e.To == to {
			return true
		}
	}
	return false
}

// NodesByLabel returns the set V(u) = {v | L(v) = label}. The slice is
// shared; callers must not mutate it. Requires a frozen graph.
func (g *Graph) NodesByLabel(label string) []NodeID {
	g.mustFrozen("NodesByLabel")
	id, ok := g.labelIDs[label]
	if !ok {
		return nil
	}
	return g.byLabel[id]
}

// CountLabel returns |V(label)| on a frozen graph.
func (g *Graph) CountLabel(label string) int { return len(g.NodesByLabel(label)) }

// ActiveDomain returns adom(a): the sorted distinct values attribute a takes
// over V. The slice is shared; callers must not mutate it.
func (g *Graph) ActiveDomain(a string) []Value {
	g.mustFrozen("ActiveDomain")
	return g.domains[a]
}

// AttrNames returns the sorted names of all node attributes present in G.
func (g *Graph) AttrNames() []string {
	g.mustFrozen("AttrNames")
	return g.attrNames
}

// MaxActiveDomain returns |adom_m|, the size of the largest active domain.
func (g *Graph) MaxActiveDomain() int {
	g.mustFrozen("MaxActiveDomain")
	m := 0
	for _, d := range g.domains {
		if len(d) > m {
			m = len(d)
		}
	}
	return m
}

// NodeLabels returns the distinct node labels present in G.
func (g *Graph) NodeLabels() []string {
	g.mustFrozen("NodeLabels")
	out := make([]string, 0, len(g.byLabel))
	for id := range g.byLabel {
		out = append(out, g.labels[id])
	}
	sort.Strings(out)
	return out
}

func (g *Graph) mustFrozen(op string) {
	if !g.frozen {
		panic("graph: " + op + " requires a frozen graph; call Freeze first")
	}
}
