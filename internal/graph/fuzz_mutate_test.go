package graph

import (
	"testing"
)

// FuzzMutateEquivalence drives a byte-decoded mutation stream through
// three parallel systems — the incremental merge (Live/ApplyBatch), the
// map-based oracle rebuilt via builder+Freeze, and a shadow Live fed only
// through the WAL codec — and asserts they never disagree: same
// accept/reject verdict per batch, equivalent observable state, intact
// internal invariants, faithful wire round-trips, and version-preserving
// compaction.
func FuzzMutateEquivalence(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x20, 0x13, 0x24, 0x85, 0x06, 0x37})
	f.Add([]byte{0x10, 0x11, 0x12, 0x93, 0x14, 0x15, 0x96, 0x17, 0x07, 0x07})
	f.Add([]byte{0x02, 0x42, 0x82, 0xc2, 0x03, 0x43, 0x83, 0xc3})
	f.Add([]byte{0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa})
	f.Fuzz(func(t *testing.T, data []byte) {
		base := fuzzSeedGraph()
		l := NewLive(base)
		defer l.Close()
		shadow := NewLive(fuzzSeedGraph())
		defer shadow.Close()
		m := modelFrom(base)

		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		pickNode := func() NodeID {
			// Mostly in-range (dead or alive), sometimes out of range.
			return NodeID(int(next())%(len(m.nodes)+2)) - 1
		}
		// Kept name-sorted: the wire codec canonicalizes attrs by name, and
		// the round-trip equality check below compares batches verbatim.
		attrNames := []string{"gender", "k0", "k1", "name", "score"}
		labels := []string{"Person", "Org", "Tag"}
		elabels := []string{"recommend", "worksAt", "x"}
		pickVal := func() Value {
			switch b := next(); b % 7 {
			case 0:
				return Null
			case 1:
				return Str("12") // lossy if re-parsed: must stay a string
			case 2:
				return Str("true")
			case 3:
				return Bool(b&0x80 != 0)
			case 4:
				return Num(float64(b) / 8)
			case 5:
				return Str("")
			default:
				return Int(int64(b % 16))
			}
		}

		flush := func(batch []Mutation) {
			if len(batch) == 0 {
				return
			}
			// Wire faithfulness: the encoded batch decodes back to an
			// equal batch (attrs are generated unique + name-sorted).
			wire, err := EncodeMutations(batch)
			if err != nil {
				t.Fatalf("encode: %v (%+v)", err, batch)
			}
			decoded, derr := DecodeMutations(wire)
			if derr != nil {
				// The only undecodable generated content is an out-of-range
				// NodeID — which the in-process path must reject as well.
				if err := m.applyBatch(batch); err == nil {
					t.Fatalf("oracle accepted a batch the wire codec rejects (%v): %+v", derr, batch)
				}
				if _, err := l.Apply(batch); err == nil {
					t.Fatalf("ApplyBatch accepted a batch the wire codec rejects (%v): %+v", derr, batch)
				}
				return
			}
			if !mutationsEqual(batch, decoded) {
				t.Fatalf("wire round trip changed the batch:\n in: %+v\nout: %+v", batch, decoded)
			}
			modelErr := m.applyBatch(batch)
			_, applyErr := l.Apply(batch)
			_, shadowErr := shadow.Apply(decoded)
			if (modelErr == nil) != (applyErr == nil) || (applyErr == nil) != (shadowErr == nil) {
				t.Fatalf("verdicts disagree: oracle=%v apply=%v shadow=%v\nbatch: %+v", modelErr, applyErr, shadowErr, batch)
			}
		}

		var batch []Mutation
		for steps := 0; pos < len(data) && steps < 128; steps++ {
			b := next()
			switch b % 9 {
			case 0:
				if len(m.nodes) < 200 {
					var attrs []AttrPair
					sel := next()
					for i, name := range attrNames {
						if sel&(1<<i) != 0 {
							attrs = append(attrs, AttrPair{Name: name, Value: pickVal()})
						}
					}
					batch = append(batch, Mutation{Op: MutAddNode, Label: labels[int(next())%len(labels)], Attrs: attrs})
				}
			case 1:
				batch = append(batch, Mutation{Op: MutRemoveNode, Node: pickNode()})
			case 2, 3:
				batch = append(batch, Mutation{Op: MutAddEdge, From: pickNode(), To: pickNode(), Label: elabels[int(next())%len(elabels)]})
			case 4:
				batch = append(batch, Mutation{Op: MutRemoveEdge, From: pickNode(), To: pickNode(), Label: elabels[int(next())%len(elabels)]})
			case 5, 6:
				batch = append(batch, Mutation{Op: MutSetAttr, Node: pickNode(), Attr: attrNames[int(next())%len(attrNames)], Value: pickVal()})
			case 7:
				flush(batch)
				batch = nil
			default:
				flush(batch)
				batch = nil
				v := l.Version()
				compacted, resurrected := l.Compact()
				if compacted.Version() != v {
					t.Fatalf("compaction changed version %d -> %d", v, compacted.Version())
				}
				if resurrected.HasTombstones() {
					t.Fatal("resurrected image has tombstones")
				}
			}
			if len(batch) >= 12 {
				flush(batch)
				batch = nil
			}
		}
		flush(batch)
		if l.Version() != shadow.Version() {
			t.Fatalf("live %d vs shadow %d versions", l.Version(), shadow.Version())
		}
		if err := Equivalent(l.Graph(), shadow.Graph()); err != nil {
			t.Fatalf("live vs WAL-codec shadow: %v", err)
		}
		checkAgainstModel(t, l.Graph(), m)
	})
}
