package graph

import (
	"sync"
	"sync/atomic"
)

// The backing-store seam: a frozen Graph's slices — adjacency, label
// buckets, permutation indexes, typed columns, presence bitmaps, derived
// tables — are plain Go slices either allocated on the heap (Freeze, the
// v1 snapshot decoder, ReadSnapshot of a v2 file) or aliasing a single
// byte buffer (OpenSnapshotMapped, where the buffer is the mmap'd file).
// snapBacking owns that buffer and ref-counts its users so the last Close
// can munmap without any reader left holding a view.
//
// Strings are the one representation that never aliases the buffer: a
// string handed out by the graph can escape into job results, caches and
// pareto archives that outlive the registry handle that produced it, so
// strTable copies bytes onto the heap at first materialization. Only
// numeric, bitmap, adjacency and permutation views — which are read
// exclusively under an acquired handle — point into the map.
type snapBacking struct {
	data   []byte
	mapped bool
	refs   atomic.Int64
	unmap  func([]byte) error
}

func (b *snapBacking) retain() { b.refs.Add(1) }

// release drops one reference; the last one unmaps. Returns the munmap
// error, which is nil for heap backings.
func (b *snapBacking) release() error {
	if n := b.refs.Add(-1); n == 0 && b.mapped && b.unmap != nil {
		data := b.data
		b.data = nil
		return b.unmap(data)
	} else if n < 0 {
		panic("graph: snapshot backing released more times than retained")
	}
	return nil
}

// Retain adds a reference to the graph's backing store. Every Retain must
// be paired with exactly one Close; the graph returned by
// OpenSnapshotMapped starts with one reference (the caller's). No-op for
// heap-backed graphs.
func (g *Graph) Retain() {
	if g.backing != nil {
		g.backing.retain()
	}
}

// Close releases one reference to the graph's backing store; when the
// last reference is released the underlying file mapping is unmapped and
// every view served by this graph becomes invalid. Heap-backed graphs
// (built, v1-decoded or v2-decoded from a reader) have no backing store
// and Close is a no-op returning nil.
func (g *Graph) Close() error {
	if g.backing == nil {
		return nil
	}
	return g.backing.release()
}

// Mapped reports whether the graph's frozen sections are served from a
// memory-mapped snapshot rather than heap slices.
func (g *Graph) Mapped() bool { return g.backing != nil && g.backing.mapped }

// MappedBytes returns the size of the memory-mapped region backing the
// graph, or 0 for heap-backed graphs.
func (g *Graph) MappedBytes() int64 {
	if !g.Mapped() {
		return 0
	}
	return int64(len(g.backing.data))
}

// mappedRefs exposes the backing reference count to tests.
func (g *Graph) mappedRefs() int64 {
	if g.backing == nil {
		return 0
	}
	return g.backing.refs.Load()
}

// strTable is the snapshot v2 string table: offsets and blob alias the
// backing buffer until the first string is needed, at which point every
// string is copied onto the heap in one pass. Materialization is
// all-or-nothing — per-string laziness would cost a branch and an atomic
// on the column read path for little benefit, since the first string read
// almost always implies many more.
type strTable struct {
	once sync.Once
	offs []uint64 // count+1 cumulative byte offsets into blob
	blob []byte
	strs []string
}

func (t *strTable) count() int { return len(t.offs) - 1 }

func (t *strTable) materialize() {
	strs := make([]string, t.count())
	for i := range strs {
		strs[i] = string(t.blob[t.offs[i]:t.offs[i+1]])
	}
	t.strs = strs
	// Drop the aliases: after materialization the table must not keep the
	// mapped region reachable through stale views.
	t.offs, t.blob = nil, nil
}

// str returns the string for a 1-based column ref (0, the absent marker,
// reads as "" — callers check the presence bitmap first).
func (t *strTable) str(ref uint32) string {
	if ref == 0 {
		return ""
	}
	t.once.Do(t.materialize)
	return t.strs[ref-1]
}

// bytesAt returns the raw bytes of 0-based entry i without materializing
// the table; only valid before materialization drops the views (the v2
// loader's validation pass uses it to check index sort order).
func (t *strTable) bytesAt(i int) []byte {
	return t.blob[t.offs[i]:t.offs[i+1]]
}
