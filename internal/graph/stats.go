package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a frozen graph; it backs the Table II "dataset overview"
// experiment and the graphgen CLI output.
type Stats struct {
	Nodes        int
	Edges        int
	NodeLabels   int
	EdgeLabels   int
	AvgAttrs     float64
	AvgOutDegree float64
	MaxOutDegree int
	MaxInDegree  int
	MaxAdom      int
	TopLabels    []LabelCount
}

// LabelCount pairs a node label with its population.
type LabelCount struct {
	Label string
	Count int
}

// Summarize computes Stats for a frozen graph.
func Summarize(g *Graph) Stats {
	g.mustFrozen("Summarize")
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	totalAttrs := 0
	for i := range g.cols {
		totalAttrs += g.cols[i].count
	}
	if s.Nodes > 0 {
		s.AvgAttrs = float64(totalAttrs) / float64(s.Nodes)
		s.AvgOutDegree = float64(s.Edges) / float64(s.Nodes)
	}
	s.MaxOutDegree = g.maxOutDeg
	s.MaxInDegree = g.maxInDeg
	s.MaxAdom = g.MaxActiveDomain()
	edgeLabels := map[LabelID]bool{}
	for i := range g.out {
		for _, e := range g.out[i] {
			edgeLabels[e.Label] = true
		}
	}
	s.EdgeLabels = len(edgeLabels)
	s.NodeLabels = len(g.byLabel)
	for id, vs := range g.byLabel {
		s.TopLabels = append(s.TopLabels, LabelCount{Label: g.labels[id], Count: len(vs)})
	}
	sort.Slice(s.TopLabels, func(i, j int) bool {
		if s.TopLabels[i].Count != s.TopLabels[j].Count {
			return s.TopLabels[i].Count > s.TopLabels[j].Count
		}
		return s.TopLabels[i].Label < s.TopLabels[j].Label
	})
	if len(s.TopLabels) > 8 {
		s.TopLabels = s.TopLabels[:8]
	}
	return s
}

// String renders the stats as a one-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "|V|=%d |E|=%d nodeLabels=%d edgeLabels=%d avgAttrs=%.1f avgOutDeg=%.2f maxAdom=%d",
		s.Nodes, s.Edges, s.NodeLabels, s.EdgeLabels, s.AvgAttrs, s.AvgOutDegree, s.MaxAdom)
	return b.String()
}

// KHopNeighborhood returns the set of nodes within d hops (ignoring edge
// direction) of any seed node. It implements the G_q^d structure used by the
// Spawn template-refinement optimization (Section IV-A): the subgraph
// induced by the d-hop neighbors of the current match set.
func KHopNeighborhood(g *Graph, seeds []NodeID, d int) map[NodeID]bool {
	seen := make(map[NodeID]bool, len(seeds)*4)
	frontier := make([]NodeID, 0, len(seeds))
	for _, v := range seeds {
		if !seen[v] {
			seen[v] = true
			frontier = append(frontier, v)
		}
	}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, v := range frontier {
			for _, e := range g.Out(v) {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, e := range g.In(v) {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return seen
}
