package graph

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the dynamic type of an attribute Value.
type Kind uint8

const (
	// KindNull is the zero Kind; it marks an absent value.
	KindNull Kind = iota
	// KindBool marks a boolean value.
	KindBool
	// KindNumber marks a numeric value (integers and floats share one kind).
	KindNumber
	// KindString marks a string value.
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed attribute value attached to a graph node.
// The zero Value is the null value. Values are comparable with Compare and
// totally ordered within a kind; across kinds the order is
// null < bool < number < string, which keeps active domains well defined
// even for mixed-typed attributes.
type Value struct {
	kind Kind
	num  float64
	str  string
}

// Null is the absent value.
var Null = Value{}

// Num returns a numeric Value.
func Num(f float64) Value { return Value{kind: KindNumber, num: f} }

// Int returns a numeric Value holding an integer.
func Int(i int64) Value { return Value{kind: KindNumber, num: float64(i)} }

// Str returns a string Value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Bool returns a boolean Value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.num = 1
	}
	return v
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Float returns the numeric content of v. It is 0 for non-numeric values
// except bools, where it is 0 or 1.
func (v Value) Float() float64 {
	if v.kind == KindNumber || v.kind == KindBool {
		return v.num
	}
	return 0
}

// Text returns the string content of v, or "" when v is not a string.
func (v Value) Text() string {
	if v.kind == KindString {
		return v.str
	}
	return ""
}

// IsTrue reports whether v is the boolean true.
func (v Value) IsTrue() bool { return v.kind == KindBool && v.num != 0 }

// Compare totally orders values: negative when v < w, zero when equal,
// positive when v > w. Within KindNumber the order is numeric with NaN
// sorting before every other number (and equal to itself) — IEEE
// comparisons alone would make NaN "equal" to everything, breaking the
// transitivity the sorted attribute indexes rely on. Within KindString the
// order is lexicographic; across kinds null < bool < number < string.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		return int(v.kind) - int(w.kind)
	}
	switch v.kind {
	case KindNumber, KindBool:
		vn, wn := math.IsNaN(v.num), math.IsNaN(w.num)
		switch {
		case vn && wn:
			return 0
		case vn:
			return -1
		case wn:
			return 1
		case v.num < w.num:
			return -1
		case v.num > w.num:
			return 1
		default:
			return 0
		}
	case KindString:
		return strings.Compare(v.str, w.str)
	default:
		return 0
	}
}

// Equal reports whether v and w are the same value.
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

// String renders the value for display and serialization.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindNumber:
		if v.num == math.Trunc(v.num) && math.Abs(v.num) < 1e15 {
			return strconv.FormatInt(int64(v.num), 10)
		}
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindString:
		return v.str
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// ParseValue converts a textual representation into a Value. Numbers parse
// as KindNumber, "true"/"false" as KindBool, everything else as KindString.
func ParseValue(s string) Value {
	switch s {
	case "", "null":
		return Null
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Num(f)
	}
	return Str(s)
}

// Op is a comparison operator used in query literals.
type Op uint8

const (
	// OpInvalid is the zero Op.
	OpInvalid Op = iota
	// OpLT is <.
	OpLT
	// OpLE is <=.
	OpLE
	// OpEQ is =.
	OpEQ
	// OpGE is >=.
	OpGE
	// OpGT is >.
	OpGT
)

// String returns the operator's source form.
func (op Op) String() string {
	switch op {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpEQ:
		return "="
	case OpGE:
		return ">="
	case OpGT:
		return ">"
	default:
		return "?"
	}
}

// ParseOp parses the source form of a comparison operator.
func ParseOp(s string) (Op, error) {
	switch s {
	case "<":
		return OpLT, nil
	case "<=", "≤":
		return OpLE, nil
	case "=", "==":
		return OpEQ, nil
	case ">=", "≥":
		return OpGE, nil
	case ">":
		return OpGT, nil
	default:
		return OpInvalid, fmt.Errorf("graph: unknown operator %q", s)
	}
}

// Apply evaluates "left op right" under the total order of Compare.
func (op Op) Apply(left, right Value) bool {
	c := left.Compare(right)
	switch op {
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpEQ:
		return c == 0
	case OpGE:
		return c >= 0
	case OpGT:
		return c > 0
	default:
		return false
	}
}

// Tightens reports whether binding value b to a literal with operator op is
// at least as selective as binding value a: every node satisfying
// "attr op b" also satisfies "attr op a". This is the single-variable
// refinement test of the paper (Section IV, "Refinement").
func (op Op) Tightens(a, b Value) bool {
	c := b.Compare(a)
	switch op {
	case OpGT, OpGE:
		return c >= 0
	case OpLT, OpLE:
		return c <= 0
	case OpEQ:
		return c == 0
	default:
		return false
	}
}
