package graph

import (
	"fmt"
	"math/bits"
	"sort"
)

// Mutations on frozen graphs.
//
// A frozen Graph never changes in place — every reader (matchers, engines,
// in-flight jobs) holds an immutable generation. ApplyBatch instead merges
// one validated batch of mutations into a NEW frozen graph that shares
// every untouched slice, bucket, column and permutation index with its
// base (copy-on-write): the batch is the "unsorted tail", and the merge
// cost is proportional to the rows, columns and (label, attribute)
// indexes the batch touches — never to graph size beyond O(|V|) slice
// headers — so a small batch lands in milliseconds where a re-parse +
// re-Freeze takes seconds.
//
// Semantics:
//
//   - Batches are atomic: validation runs against the base graph plus the
//     batch's own earlier ops, and any invalid op rejects the whole batch
//     with no state change.
//   - AddNode assigns the next dense NodeID (tombstoned slots included in
//     the count — IDs are never reused); later ops in the same batch may
//     reference it.
//   - RemoveNode tombstones the slot and cascades away every incident
//     edge. The slot keeps its label (checkpointing needs it) but leaves
//     every bucket, index and column.
//   - RemoveEdge removes exactly one instance of a (from, to, label)
//     parallel edge and fails when none remains.
//   - SetAttr writes one attribute; a Null value deletes it.

// MutOp enumerates the mutation kinds.
type MutOp uint8

const (
	MutAddNode MutOp = iota + 1
	MutRemoveNode
	MutAddEdge
	MutRemoveEdge
	MutSetAttr
)

// String returns the JSON wire name of the op ("addNode", ...).
func (op MutOp) String() string {
	switch op {
	case MutAddNode:
		return "addNode"
	case MutRemoveNode:
		return "removeNode"
	case MutAddEdge:
		return "addEdge"
	case MutRemoveEdge:
		return "removeEdge"
	case MutSetAttr:
		return "setAttr"
	}
	return fmt.Sprintf("MutOp(%d)", uint8(op))
}

// Mutation is one edit in a batch. Which fields apply depends on Op:
//
//	MutAddNode:    Label, Attrs (initial tuple; applied in slice order)
//	MutRemoveNode: Node
//	MutAddEdge:    From, To, Label
//	MutRemoveEdge: From, To, Label
//	MutSetAttr:    Node, Attr, Value (Null deletes the attribute)
type Mutation struct {
	Op    MutOp
	Node  NodeID
	From  NodeID
	To    NodeID
	Label string
	Attr  string
	Attrs []AttrPair
	Value Value
}

// ApplyResult reports what one applied batch did.
type ApplyResult struct {
	// Version is the new graph's version (base version + 1).
	Version uint64
	// AddedNodes lists the NodeIDs assigned to the batch's AddNode ops,
	// in op order.
	AddedNodes []NodeID
	// NodesRemoved / EdgesAdded / EdgesRemoved count the batch's net
	// effect; EdgesRemoved includes RemoveNode cascades.
	NodesRemoved int
	EdgesAdded   int
	EdgesRemoved int
	// Ops is the number of mutations in the batch.
	Ops int
}

// edgeKey identifies a parallel-edge class during validation.
type edgeKey struct {
	from, to NodeID
	label    string
}

type plannedNode struct {
	label string
	attrs []AttrPair
}

type attrWrite struct {
	node NodeID
	name string
	val  Value // Null = delete
}

// batchPlan is the validated, normalized form of one batch.
type batchPlan struct {
	base     *Graph
	adds     []plannedNode
	addIDs   []NodeID
	removed  map[NodeID]bool // finally-dead this batch (base or batch-added)
	edgeAdds []edgeKey       // one instance each, in op order
	edgeDels []edgeKey       // explicit RemoveEdge instances
	writes   []attrWrite     // in op order (last write per (node, attr) wins)
}

func (p *batchPlan) baseN() int { return p.base.NumNodes() }
func (p *batchPlan) newN() int  { return p.base.NumNodes() + len(p.adds) }

// alive reports whether v is live under base + this batch's earlier ops.
func (p *batchPlan) alive(v NodeID) bool {
	if p.removed[v] {
		return false
	}
	if int(v) < p.baseN() {
		return p.base.Alive(v)
	}
	return int(v) < p.newN()
}

// countEdges counts the (to, label) parallel instances in base.out[from].
func countBaseEdges(g *Graph, from, to NodeID, label string) int {
	l := g.LookupLabel(label)
	if l == InvalidLabel {
		return 0
	}
	n := 0
	for _, e := range g.EdgeRun(from, l, true) {
		if e.To == to {
			n++
		}
	}
	return n
}

// planBatch validates ops against base and returns the normalized plan.
// It never modifies base.
func planBatch(base *Graph, ops []Mutation) (*batchPlan, error) {
	if !base.frozen {
		return nil, fmt.Errorf("graph: mutations require a frozen graph; call Freeze first")
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("graph: empty mutation batch")
	}
	p := &batchPlan{base: base, removed: make(map[NodeID]bool)}
	// delta tracks this batch's parallel-edge count adjustments on top of
	// the base multiset, so RemoveEdge can be validated mid-batch.
	delta := make(map[edgeKey]int)
	avail := func(k edgeKey) int {
		n := delta[k]
		if int(k.from) < p.baseN() && int(k.to) < p.baseN() &&
			base.Alive(k.from) && base.Alive(k.to) {
			n += countBaseEdges(base, k.from, k.to, k.label)
		}
		return n
	}
	for i, m := range ops {
		switch m.Op {
		case MutAddNode:
			id := NodeID(p.newN())
			attrs := make([]AttrPair, len(m.Attrs))
			copy(attrs, m.Attrs)
			p.adds = append(p.adds, plannedNode{label: m.Label, attrs: attrs})
			p.addIDs = append(p.addIDs, id)
		case MutRemoveNode:
			if !p.alive(m.Node) {
				return nil, fmt.Errorf("graph: op %d: removeNode %d: no such live node", i, m.Node)
			}
			p.removed[m.Node] = true
			// Cascade inside the batch: pending edge deltas touching the
			// node die with it (base edges cascade at apply time).
			for k := range delta {
				if k.from == m.Node || k.to == m.Node {
					delete(delta, k)
				}
			}
		case MutAddEdge:
			if !p.alive(m.From) {
				return nil, fmt.Errorf("graph: op %d: addEdge: source %d is not a live node", i, m.From)
			}
			if !p.alive(m.To) {
				return nil, fmt.Errorf("graph: op %d: addEdge: target %d is not a live node", i, m.To)
			}
			k := edgeKey{m.From, m.To, m.Label}
			p.edgeAdds = append(p.edgeAdds, k)
			delta[k]++
		case MutRemoveEdge:
			if !p.alive(m.From) || !p.alive(m.To) {
				return nil, fmt.Errorf("graph: op %d: removeEdge: endpoint of %d->%d is not a live node", i, m.From, m.To)
			}
			k := edgeKey{m.From, m.To, m.Label}
			if avail(k) <= 0 {
				return nil, fmt.Errorf("graph: op %d: removeEdge: no edge %d->%d labeled %q", i, m.From, m.To, m.Label)
			}
			p.edgeDels = append(p.edgeDels, k)
			delta[k]--
		case MutSetAttr:
			if !p.alive(m.Node) {
				return nil, fmt.Errorf("graph: op %d: setAttr %q: node %d is not a live node", i, m.Attr, m.Node)
			}
			if m.Attr == "" {
				return nil, fmt.Errorf("graph: op %d: setAttr: empty attribute name", i)
			}
			p.writes = append(p.writes, attrWrite{node: m.Node, name: m.Attr, val: m.Value})
		default:
			return nil, fmt.Errorf("graph: op %d: unknown mutation op %d", i, m.Op)
		}
	}
	return p, nil
}

// ApplyBatch validates ops against base and, if the whole batch is valid,
// merges it into a new frozen graph sharing every untouched structure
// with base (base itself is never modified and stays fully usable). The
// new graph's version is base's + 1. For memory-mapped bases the new
// graph retains the mapping; release it with Close as usual.
func ApplyBatch(base *Graph, ops []Mutation) (*Graph, *ApplyResult, error) {
	p, err := planBatch(base, ops)
	if err != nil {
		return nil, nil, err
	}
	ng, res := applyPlan(p)
	res.Ops = len(ops)
	return ng, res, nil
}

// applyPlan executes a validated plan: the copy-on-write merge.
func applyPlan(p *batchPlan) (*Graph, *ApplyResult) {
	base := p.base
	base.domainList() // force lazy v2 domains before sharing them
	n0, n := p.baseN(), p.newN()
	words := (n + 63) / 64
	res := &ApplyResult{Version: base.version + 1, AddedNodes: p.addIDs}

	ng := &Graph{
		numEdges: base.numEdges,
		frozen:   true,
		version:  base.version + 1,
		lineage:  base.lineage,
		backing:  base.backing,
		strTab:   base.strTab,
	}
	if ng.backing != nil {
		ng.backing.retain()
	}

	// Dictionaries: copy-on-extend only when the batch introduces new
	// label or attribute strings; otherwise both generations share the
	// read-only dictionaries.
	ng.labels, ng.labelIDs = base.labels, base.labelIDs
	needLabel := func(s string) {
		if _, ok := ng.labelIDs[s]; ok {
			return
		}
		if len(ng.labels) == len(base.labels) { // first extension: copy
			ng.labels = append([]string(nil), base.labels...)
			ids := make(map[string]LabelID, len(base.labelIDs)+1)
			for k, v := range base.labelIDs {
				ids[k] = v
			}
			ng.labelIDs = ids
		}
		ng.labelIDs[s] = LabelID(len(ng.labels))
		ng.labels = append(ng.labels, s)
	}
	for _, a := range p.adds {
		needLabel(a.label)
	}
	for _, k := range p.edgeAdds {
		needLabel(k.label)
	}
	ng.attrTable, ng.attrIDs = base.attrTable, base.attrIDs
	needAttr := func(s string) {
		if _, ok := ng.attrIDs[s]; ok {
			return
		}
		if len(ng.attrTable) == len(base.attrTable) {
			ng.attrTable = append([]string(nil), base.attrTable...)
			ids := make(map[string]AttrID, len(base.attrIDs)+1)
			for k, v := range base.attrIDs {
				ids[k] = v
			}
			ng.attrIDs = ids
		}
		ng.attrIDs[s] = AttrID(len(ng.attrTable))
		ng.attrTable = append(ng.attrTable, s)
	}
	for _, a := range p.adds {
		for _, kv := range a.attrs {
			needAttr(kv.Name)
		}
	}
	for _, w := range p.writes {
		needAttr(w.name)
	}
	if len(ng.attrTable) == len(base.attrTable) {
		ng.attrNames = base.attrNames
	} else {
		ng.attrNames = append([]string(nil), ng.attrTable...)
		sort.Strings(ng.attrNames)
	}

	// Node slots: labels and tombstones.
	ng.nodeLabels = make([]LabelID, n)
	copy(ng.nodeLabels, base.nodeLabels)
	for i, a := range p.adds {
		ng.nodeLabels[n0+i] = ng.labelIDs[a.label]
	}
	ng.dead = make([]uint64, words)
	copy(ng.dead, base.dead)
	ng.deadCount = base.deadCount
	for v := range p.removed {
		bitSet(ng.dead, int(v))
		ng.deadCount++
	}
	res.NodesRemoved = len(p.removed)
	finallyAlive := func(v NodeID) bool { return !bitGet(ng.dead, int(v)) }

	// Net edge churn per parallel-edge class: drop planned adds/dels whose
	// endpoint died later in the batch (the cascade below subsumes them)
	// and cancel add/del pairs, so row rebuilds only ever delete instances
	// that exist in the base row.
	net := make(map[edgeKey]int)
	for _, k := range p.edgeAdds {
		if finallyAlive(k.from) && finallyAlive(k.to) {
			net[k]++
		}
	}
	for _, k := range p.edgeDels {
		if finallyAlive(k.from) && finallyAlive(k.to) {
			net[k]--
		}
	}

	// Adjacency: copy the row-header arrays, then rebuild only touched
	// rows. Every edit is expressed as per-row add/del instance lists.
	ng.out = make([][]Edge, n)
	copy(ng.out, base.out)
	ng.in = make([][]Edge, n)
	copy(ng.in, base.in)
	outAdd := make(map[NodeID][]Edge)
	inAdd := make(map[NodeID][]Edge)
	outDel := make(map[NodeID][]Edge)
	inDel := make(map[NodeID][]Edge)
	for k, d := range net {
		l := ng.labelIDs[k.label]
		for ; d > 0; d-- {
			outAdd[k.from] = append(outAdd[k.from], Edge{To: k.to, Label: l})
			inAdd[k.to] = append(inAdd[k.to], Edge{To: k.from, Label: l})
			res.EdgesAdded++
		}
		for ; d < 0; d++ {
			outDel[k.from] = append(outDel[k.from], Edge{To: k.to, Label: l})
			inDel[k.to] = append(inDel[k.to], Edge{To: k.from, Label: l})
			res.EdgesRemoved++
		}
	}
	// RemoveNode cascade over base edges: clear the dead node's rows and
	// drop its instances from every neighbor's opposite row.
	for v := range p.removed {
		if int(v) >= n0 {
			continue // batch-added: never had base rows
		}
		for _, e := range base.out[v] {
			res.EdgesRemoved++
			if finallyAlive(e.To) {
				inDel[e.To] = append(inDel[e.To], Edge{To: v, Label: e.Label})
			}
		}
		for _, e := range base.in[v] {
			if finallyAlive(e.To) {
				outDel[e.To] = append(outDel[e.To], Edge{To: v, Label: e.Label})
				res.EdgesRemoved++
			}
			// dead->dead edges were already counted from the out side
		}
		ng.out[v], ng.in[v] = nil, nil
	}
	ng.numEdges += res.EdgesAdded - res.EdgesRemoved
	rebuildRow := func(rows [][]Edge, baseRows [][]Edge, v NodeID, adds, dels []Edge) {
		var row []Edge
		if int(v) < len(baseRows) {
			row = baseRows[v]
		}
		nr := make([]Edge, 0, len(row)+len(adds)-len(dels))
		if len(dels) > 0 {
			drop := make(map[Edge]int, len(dels))
			for _, e := range dels {
				drop[e]++
			}
			for _, e := range row {
				if drop[e] > 0 {
					drop[e]--
					continue
				}
				nr = append(nr, e)
			}
		} else {
			nr = append(nr, row...)
		}
		nr = append(nr, adds...)
		sortEdges(nr)
		rows[v] = nr
	}
	for v := range outAdd {
		if finallyAlive(v) {
			rebuildRow(ng.out, base.out, v, outAdd[v], outDel[v])
			delete(outDel, v)
		}
	}
	for v := range outDel {
		if finallyAlive(v) {
			rebuildRow(ng.out, base.out, v, nil, outDel[v])
		}
	}
	for v := range inAdd {
		if finallyAlive(v) {
			rebuildRow(ng.in, base.in, v, inAdd[v], inDel[v])
			delete(inDel, v)
		}
	}
	for v := range inDel {
		if finallyAlive(v) {
			rebuildRow(ng.in, base.in, v, nil, inDel[v])
		}
	}

	// Label buckets: copy the map, rebuild buckets whose membership
	// changed. Buckets stay in ascending NodeID order (batch-added IDs are
	// all greater than every base ID).
	touchedLabels := make(map[LabelID]bool)
	for v := range p.removed {
		if int(v) < n0 {
			touchedLabels[base.nodeLabels[v]] = true
		}
	}
	addsByLabel := make(map[LabelID][]NodeID)
	for i := range p.adds {
		id := p.addIDs[i]
		if !finallyAlive(id) {
			continue
		}
		l := ng.nodeLabels[id]
		touchedLabels[l] = true
		addsByLabel[l] = append(addsByLabel[l], id)
	}
	ng.byLabel = base.byLabel
	if len(touchedLabels) > 0 {
		ng.byLabel = make(map[LabelID][]NodeID, len(base.byLabel)+len(touchedLabels))
		for l, bucket := range base.byLabel {
			ng.byLabel[l] = bucket
		}
		for l := range touchedLabels {
			old := base.byLabel[l]
			nb := make([]NodeID, 0, len(old)+len(addsByLabel[l]))
			for _, v := range old {
				if finallyAlive(v) {
					nb = append(nb, v)
				}
			}
			nb = append(nb, addsByLabel[l]...)
			if len(nb) == 0 {
				delete(ng.byLabel, l)
				continue
			}
			ng.byLabel[l] = nb
		}
	}

	// Columns: a column is touched when the batch writes it, an added node
	// carries it, or a removed node carried it. Touched columns are
	// rebuilt logically (restoring the exact kind-uniformity layout Freeze
	// would produce); untouched columns are shared, with the presence
	// bitmap extended when the slot count crossed a word boundary.
	touchedAttrs := make(map[AttrID]bool)
	// Last-write-wins view of the batch's attribute writes.
	writeVal := make(map[[2]int32]Value)
	hasWrite := make(map[[2]int32]bool)
	for _, w := range p.writes {
		if !finallyAlive(w.node) {
			continue
		}
		a := ng.attrIDs[w.name]
		touchedAttrs[a] = true
		writeVal[[2]int32{int32(w.node), int32(a)}] = w.val
		hasWrite[[2]int32{int32(w.node), int32(a)}] = true
	}
	addVal := make(map[[2]int32]Value)
	for i, an := range p.adds {
		id := p.addIDs[i]
		if !finallyAlive(id) {
			continue
		}
		for _, kv := range an.attrs {
			a := ng.attrIDs[kv.Name]
			touchedAttrs[a] = true
			k := [2]int32{int32(id), int32(a)}
			if !hasWrite[k] { // explicit write later in the batch wins
				addVal[k] = kv.Value
			}
		}
	}
	for v := range p.removed {
		if int(v) >= n0 {
			continue
		}
		for a := range base.cols {
			if base.cols[a].has(v) {
				touchedAttrs[AttrID(a)] = true
			}
		}
	}
	// logicalValue is the post-batch value of (v, a): the merge's source
	// of truth for rebuilding touched columns, domains and indexes.
	logicalValue := func(v NodeID, a AttrID) (Value, bool) {
		if !finallyAlive(v) {
			return Null, false
		}
		k := [2]int32{int32(v), int32(a)}
		if hasWrite[k] {
			val := writeVal[k]
			return val, val.Kind() != KindNull
		}
		if val, ok := addVal[k]; ok {
			return val, val.Kind() != KindNull
		}
		if int(v) < n0 && int(a) < len(base.cols) && base.cols[a].has(v) {
			return base.cols[a].value(v), true
		}
		return Null, false
	}
	ng.cols = make([]column, len(ng.attrTable))
	copy(ng.cols, base.cols)
	for a := range ng.cols {
		c := &ng.cols[a]
		if touchedAttrs[AttrID(a)] {
			*c = rebuildColumn(ng, AttrID(a), n, words, logicalValue)
			continue
		}
		if len(c.present) < words {
			np := make([]uint64, words)
			copy(np, c.present)
			c.present = np
		} else if c.present == nil {
			c.present = make([]uint64, words)
		}
	}

	// Active domains: recompute only touched attributes.
	ng.domains = make([][]Value, len(ng.attrTable))
	copy(ng.domains, base.domains)
	for a := range touchedAttrs {
		ng.domains[a] = computeDomain(&ng.cols[a], n)
	}

	// Permutation indexes: a (label, attr) pair is touched when the
	// label's bucket changed (adds join every index of their label with a
	// Null-or-better rank; removals leave all of them) or the attribute
	// was written on a node of that label. Touched pairs merge the sorted
	// tail of changed nodes into the filtered old permutation; untouched
	// pairs are shared.
	type pairTail struct{ changed map[NodeID]bool }
	touchedPairs := make(map[labelAttr]*pairTail)
	touch := func(l LabelID, a AttrID) *pairTail {
		k := labelAttr{l, a}
		t := touchedPairs[k]
		if t == nil {
			t = &pairTail{changed: make(map[NodeID]bool)}
			touchedPairs[k] = t
		}
		return t
	}
	for l := range touchedLabels {
		for k := range base.indexes {
			if k.label == l {
				t := touch(l, k.attr)
				for _, v := range addsByLabel[l] {
					t.changed[v] = true
				}
			}
		}
		// Newly-added nodes can create pairs that never existed.
		for _, v := range addsByLabel[l] {
			for a := range ng.cols {
				if ng.cols[a].has(v) {
					t := touch(l, AttrID(a))
					for _, w := range addsByLabel[l] {
						t.changed[w] = true
					}
				}
			}
		}
	}
	for k := range hasWrite {
		v, a := NodeID(k[0]), AttrID(k[1])
		t := touch(ng.nodeLabels[v], a)
		t.changed[v] = true
		for _, w := range addsByLabel[ng.nodeLabels[v]] {
			t.changed[w] = true
		}
	}
	ng.indexes = base.indexes
	if len(touchedPairs) > 0 {
		ng.indexes = make(map[labelAttr][]NodeID, len(base.indexes))
		for k, perm := range base.indexes {
			ng.indexes[k] = perm
		}
		for k, t := range touchedPairs {
			perm := mergeIndex(ng, base.indexes[k], ng.byLabel[k.label], k.attr, t.changed)
			if perm == nil {
				delete(ng.indexes, k)
			} else {
				ng.indexes[k] = perm
			}
		}
	}

	// Footprint and degree stats, then the derived matcher tables.
	for a := range ng.cols {
		ng.mem.ColumnBytes += ng.cols[a].bytes()
	}
	for _, perm := range ng.indexes {
		ng.mem.IndexBytes += int64(len(perm)) * 4
	}
	ng.mem.Indexes = len(ng.indexes)
	for v := 0; v < n; v++ {
		if d := len(ng.out[v]); d > ng.maxOutDeg {
			ng.maxOutDeg = d
		}
		if d := len(ng.in[v]); d > ng.maxInDeg {
			ng.maxInDeg = d
		}
	}
	ng.buildDerived()
	return ng, res
}

// rebuildColumn constructs one attribute column from the post-batch
// logical values, reproducing buildColumns' layout exactly: presence
// bitmap + count, kind-uniform typed array (floats, strings, bool bitmap)
// or the mixed []Value fallback.
func rebuildColumn(g *Graph, a AttrID, n, words int, logical func(NodeID, AttrID) (Value, bool)) column {
	c := column{present: make([]uint64, words)}
	// One logical() pass: the closure resolves each (node, attr) through
	// several batch maps, so stash the values for the typed fill below
	// instead of resolving every present node twice.
	tmp := make([]Value, n)
	first := true
	for v := 0; v < n; v++ {
		val, ok := logical(NodeID(v), a)
		if !ok {
			continue
		}
		bitSet(c.present, v)
		tmp[v] = val
		c.count++
		if first {
			c.kind = val.Kind()
			first = false
		} else if c.kind != val.Kind() {
			c.kind = KindNull // mixed
		}
	}
	if c.count == 0 {
		c.kind = KindNull
		return c
	}
	switch c.kind {
	case KindNumber:
		c.nums = make([]float64, n)
	case KindString:
		c.strs = make([]string, n)
	case KindBool:
		c.bools = make([]uint64, words)
	default:
		c.vals = make([]Value, n)
	}
	for v := 0; v < n; v++ {
		if !bitGet(c.present, v) {
			continue
		}
		val := tmp[v]
		switch {
		case c.nums != nil:
			c.nums[v] = val.Float()
		case c.strs != nil:
			c.strs[v] = val.Text()
		case c.bools != nil:
			if val.IsTrue() {
				bitSet(c.bools, v)
			}
		default:
			c.vals[v] = val
		}
	}
	return c
}

// computeDomain is computeDomains for a single rebuilt column. Uniform
// typed columns dedup before sorting — domains are usually tiny relative
// to the column, so hashing the distinct values first turns the dominant
// O(count·log count) Value sort into O(count) + O(d·log d) — producing
// exactly the order the generic path yields within one kind (numeric,
// lexicographic, false<true). Mixed, interned-ref, and NaN-bearing
// columns take the generic sort (NaN keys don't dedup in a map; the
// generic comparator sorts NaN first and equal to itself).
func computeDomain(c *column, n int) []Value {
	switch {
	case c.vals != nil || c.refs != nil:
		// generic below
	case c.nums != nil:
		seen := make(map[float64]struct{}, 64)
		nan := false
		for i := 0; i < n && !nan; i++ {
			if c.has(NodeID(i)) {
				f := c.nums[i]
				if f != f {
					nan = true
					break
				}
				seen[f] = struct{}{}
			}
		}
		if !nan {
			fs := make([]float64, 0, len(seen))
			for f := range seen {
				fs = append(fs, f)
			}
			sort.Float64s(fs)
			out := make([]Value, len(fs))
			for i, f := range fs {
				out[i] = Num(f)
			}
			return out
		}
	case c.strs != nil:
		seen := make(map[string]struct{}, 64)
		for i := 0; i < n; i++ {
			if c.has(NodeID(i)) {
				seen[c.strs[i]] = struct{}{}
			}
		}
		ss := make([]string, 0, len(seen))
		for s := range seen {
			ss = append(ss, s)
		}
		sort.Strings(ss)
		out := make([]Value, len(ss))
		for i, s := range ss {
			out[i] = Str(s)
		}
		return out
	case c.bools != nil:
		var hasF, hasT bool
		for i := 0; i < n && !(hasF && hasT); i++ {
			if c.has(NodeID(i)) {
				if bitGet(c.bools, i) {
					hasT = true
				} else {
					hasF = true
				}
			}
		}
		out := make([]Value, 0, 2)
		if hasF {
			out = append(out, Bool(false))
		}
		if hasT {
			out = append(out, Bool(true))
		}
		return out
	}
	vs := make([]Value, 0, c.count)
	for i := 0; i < n; i++ {
		if c.has(NodeID(i)) {
			vs = append(vs, c.value(NodeID(i)))
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
	dedup := vs[:0]
	for i, v := range vs {
		if i == 0 || !v.Equal(vs[i-1]) {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// mergeIndex produces the new permutation for one touched (label, attr)
// pair: the old permutation minus dead and changed nodes (still sorted —
// untouched values didn't move) merged with the sorted tail of changed
// bucket members, ties by NodeID exactly as buildIndexes orders them.
// Returns nil when the attribute no longer occurs on any bucket node (the
// index is dropped, as a fresh Freeze would).
func mergeIndex(g *Graph, oldPerm, bucket []NodeID, a AttrID, changed map[NodeID]bool) []NodeID {
	if len(bucket) == 0 {
		return nil
	}
	c := &g.cols[a]
	occupancy := 0
	for _, v := range bucket {
		if c.has(v) {
			occupancy++
		}
	}
	if occupancy == 0 {
		return nil
	}
	less := func(x, y NodeID) bool {
		if cmp := c.value(x).Compare(c.value(y)); cmp != 0 {
			return cmp < 0
		}
		return x < y
	}
	if oldPerm == nil {
		perm := make([]NodeID, len(bucket))
		copy(perm, bucket)
		sort.Slice(perm, func(i, j int) bool { return less(perm[i], perm[j]) })
		return perm
	}
	stable := make([]NodeID, 0, len(oldPerm))
	for _, v := range oldPerm {
		if g.Alive(v) && !changed[v] {
			stable = append(stable, v)
		}
	}
	tail := make([]NodeID, 0, len(changed))
	for _, v := range bucket {
		if changed[v] {
			tail = append(tail, v)
		}
	}
	sort.Slice(tail, func(i, j int) bool { return less(tail[i], tail[j]) })
	perm := make([]NodeID, 0, len(stable)+len(tail))
	i, j := 0, 0
	for i < len(stable) && j < len(tail) {
		if less(tail[j], stable[i]) {
			perm = append(perm, tail[j])
			j++
		} else {
			perm = append(perm, stable[i])
			i++
		}
	}
	perm = append(perm, stable[i:]...)
	perm = append(perm, tail[j:]...)
	return perm
}

// Tombstones returns the tombstoned NodeIDs in ascending order (nil when
// the graph has none).
func (g *Graph) Tombstones() []NodeID {
	if g.deadCount == 0 {
		return nil
	}
	out := make([]NodeID, 0, g.deadCount)
	for w, word := range g.dead {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			out = append(out, NodeID(w*64+b))
		}
	}
	return out
}
