package graph

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestTSVCountHeader: WriteTSV emits the count header and ReadTSV uses
// it without it changing the parsed graph.
func TestTSVCountHeader(t *testing.T) {
	g := fuzzSeedGraph()
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	header := fmt.Sprintf("# fairsqg-graph nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	if !strings.HasPrefix(buf.String(), header+"\n") {
		t.Fatalf("TSV output missing count header %q:\n%s", header, buf.String())
	}
	back, err := ReadTSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip %d/%d nodes/edges, want %d/%d",
			back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

// TestForgedCountsBounded is the robustness regression: a hostile header
// declaring trillions of nodes must neither fail the parse nor drive the
// pre-allocation — Grow clamps it to maxPreallocEntries.
func TestForgedCountsBounded(t *testing.T) {
	const forged = 1 << 40
	tsv := fmt.Sprintf("# fairsqg-graph nodes=%d edges=%d\nN\t0\tPerson\tage=3\nN\t1\tPerson\nE\t0\t1\tknows\n", forged, forged)
	g, err := ReadTSV(strings.NewReader(tsv))
	if err != nil {
		t.Fatalf("forged TSV header rejected: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("parsed %d/%d nodes/edges, want 2/1", g.NumNodes(), g.NumEdges())
	}

	jsonDoc := fmt.Sprintf(`{"counts":{"nodes":%d,"edges":%d},"nodes":[{"id":0,"label":"Person"}],"edges":[]}`, forged, forged)
	gj, err := ReadJSON(strings.NewReader(jsonDoc))
	if err != nil {
		t.Fatalf("forged JSON counts rejected: %v", err)
	}
	if gj.NumNodes() != 1 {
		t.Fatalf("parsed %d nodes, want 1", gj.NumNodes())
	}

	// Negative and garbage counts are ignored outright.
	for _, hdr := range []string{
		"# fairsqg-graph nodes=-7 edges=-9",
		"# fairsqg-graph nodes=zzz edges=1",
		"# some unrelated comment",
	} {
		if _, err := ReadTSV(strings.NewReader(hdr + "\nN\t0\tPerson\n")); err != nil {
			t.Errorf("header %q broke the parse: %v", hdr, err)
		}
	}
}

// TestGrowClamped checks the clamp directly: capacity never exceeds
// len + maxPreallocEntries no matter the hint, and Grow is a no-op on
// frozen graphs.
func TestGrowClamped(t *testing.T) {
	g := New()
	g.Grow(1 << 40)
	if c := cap(g.nodeLabels); c > maxPreallocEntries {
		t.Fatalf("cap(nodeLabels) = %d after huge Grow, clamp is %d", c, maxPreallocEntries)
	}
	if cap(g.out) != cap(g.nodeLabels) || cap(g.in) != cap(g.nodeLabels) {
		t.Fatalf("adjacency capacity %d/%d diverges from nodes %d", cap(g.out), cap(g.in), cap(g.nodeLabels))
	}
	g.AddNode("Person", nil)
	g.Freeze()
	g.Grow(100) // must not panic or mutate a frozen graph
	if g.NumNodes() != 1 {
		t.Fatal("Grow mutated a frozen graph")
	}
}
