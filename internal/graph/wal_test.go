package graph

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mutationsEqual compares batches field by field; Values compare by kind
// and Compare (so NaN == NaN, and Str("12") != Num(12)).
func mutationsEqual(a, b []Mutation) bool {
	if len(a) != len(b) {
		return false
	}
	valEq := func(x, y Value) bool { return x.Kind() == y.Kind() && x.Equal(y) }
	for i := range a {
		x, y := a[i], b[i]
		if x.Op != y.Op || x.Node != y.Node || x.From != y.From || x.To != y.To ||
			x.Label != y.Label || x.Attr != y.Attr || !valEq(x.Value, y.Value) ||
			len(x.Attrs) != len(y.Attrs) {
			return false
		}
		for j := range x.Attrs {
			if x.Attrs[j].Name != y.Attrs[j].Name || !valEq(x.Attrs[j].Value, y.Attrs[j].Value) {
				return false
			}
		}
	}
	return true
}

func sampleBatch() []Mutation {
	return []Mutation{
		{Op: MutAddNode, Label: "Person", Attrs: []AttrPair{
			{Name: "age", Value: Int(30)},
			{Name: "name", Value: Str("ann")},
		}},
		{Op: MutRemoveNode, Node: 3},
		{Op: MutAddEdge, From: 0, To: 1, Label: "knows"},
		{Op: MutRemoveEdge, From: 1, To: 2, Label: "knows"},
		{Op: MutSetAttr, Node: 0, Attr: "age", Value: Int(31)},
		{Op: MutSetAttr, Node: 0, Attr: "name", Value: Null}, // delete
	}
}

func TestMutationCodecRoundTrip(t *testing.T) {
	batch := sampleBatch()
	data, err := EncodeMutations(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMutations(data)
	if err != nil {
		t.Fatal(err)
	}
	if !mutationsEqual(batch, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", batch, got)
	}
	// Deterministic: encoding twice yields identical bytes.
	data2, _ := EncodeMutations(batch)
	if string(data) != string(data2) {
		t.Error("encoding is not deterministic")
	}
}

func TestMutationCodecFaithfulValues(t *testing.T) {
	// Values whose String() form would be re-parsed as a different kind
	// must survive via the typed-object escape; plain values stay plain.
	tricky := []Value{
		Str("12"), Str("3.5"), Str("true"), Str("false"), Str("null"), Str(""),
		Str("NaN"), Str("plain"), Int(12), Num(0.5), Num(math.NaN()),
		Num(math.Inf(1)), Num(math.Inf(-1)), Bool(true), Bool(false),
	}
	for _, v := range tricky {
		batch := []Mutation{{Op: MutSetAttr, Node: 0, Attr: "x", Value: v}}
		data, err := EncodeMutations(batch)
		if err != nil {
			t.Fatalf("%v (%v): %v", v, v.Kind(), err)
		}
		got, err := DecodeMutations(data)
		if err != nil {
			t.Fatalf("%v (%v): decode: %v (wire %s)", v, v.Kind(), err, data)
		}
		w := got[0].Value
		if w.Kind() != v.Kind() || !w.Equal(v) {
			t.Errorf("value %v (%v) round-tripped to %v (%v); wire %s", v, v.Kind(), w, w.Kind(), data)
		}
	}
	// Null SetAttr (deletion) round-trips as an absent value field.
	batch := []Mutation{{Op: MutSetAttr, Node: 0, Attr: "x", Value: Null}}
	data, _ := EncodeMutations(batch)
	got, err := DecodeMutations(data)
	if err != nil || got[0].Value.Kind() != KindNull {
		t.Errorf("Null deletion round trip: %v, %v", got, err)
	}
}

func TestDecodeMutationsErrors(t *testing.T) {
	bad := map[string]string{
		"not json":       "{",
		"not array":      `{"op":"addNode"}`,
		"unknown op":     `[{"op":"frobnicate"}]`,
		"missing node":   `[{"op":"removeNode"}]`,
		"negative node":  `[{"op":"removeNode","node":-1}]`,
		"huge node":      `[{"op":"removeNode","node":4294967296}]`,
		"missing from":   `[{"op":"addEdge","to":1,"label":"e"}]`,
		"missing attr":   `[{"op":"setAttr","node":0}]`,
		"bad value kind": `[{"op":"setAttr","node":0,"attr":"a","value":{"kind":"vector","value":"1"}}]`,
		"bad number":     `[{"op":"setAttr","node":0,"attr":"a","value":{"kind":"number","value":"zz"}}]`,
	}
	for name, wire := range bad {
		if _, err := DecodeMutations([]byte(wire)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.fdelta")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	b1 := sampleBatch()
	b2 := []Mutation{{Op: MutAddNode, Label: "Org"}}
	if err := w.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(b2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated || len(rep.Batches) != 2 {
		t.Fatalf("replay: %d batches, truncated=%v", len(rep.Batches), rep.Truncated)
	}
	if !mutationsEqual(rep.Batches[0], b1) || !mutationsEqual(rep.Batches[1], b2) {
		t.Fatal("replayed batches differ from appended ones")
	}
	// Reopening an existing log appends after the previous frames.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	b3 := []Mutation{{Op: MutRemoveNode, Node: 0}}
	if err := w2.Append(b3); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	rep, err = ReplayWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Batches) != 3 || !mutationsEqual(rep.Batches[2], b3) {
		t.Fatalf("after reopen: %d batches", len(rep.Batches))
	}
}

func TestWALReplayAppliesCleanly(t *testing.T) {
	// End-to-end: base graph + logged batches == the live graph state.
	base := buildSample(t)
	l := NewLive(base)
	defer l.Close()
	path := filepath.Join(t.TempDir(), "g.fdelta")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Mutation{
		{{Op: MutAddNode, Label: "Person", Attrs: []AttrPair{{Name: "age", Value: Int(22)}}}},
		{{Op: MutAddEdge, From: 5, To: 0, Label: "knows"}, {Op: MutSetAttr, Node: 5, Attr: "name", Value: Str("eve")}},
		{{Op: MutRemoveNode, Node: 1}},
	}
	for _, b := range batches {
		if _, err := l.Apply(b); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	rep, err := ReplayWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewLive(buildSample(t))
	defer restored.Close()
	for _, b := range rep.Batches {
		if _, err := restored.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if restored.Version() != l.Version() {
		t.Errorf("restored version %d, want %d", restored.Version(), l.Version())
	}
	if err := Equivalent(restored.Graph(), l.Graph()); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.fdelta")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(sampleBatch())
	sizeAfterFirst := w.Size()
	w.Append([]Mutation{{Op: MutAddNode, Label: "Org"}})
	w.Close()

	// Tear the last frame mid-payload, as a crash mid-write would.
	if err := os.Truncate(path, sizeAfterFirst+5); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || len(rep.Batches) != 1 || rep.TruncatedBytes != 5 {
		t.Fatalf("torn replay: batches=%d truncated=%v bytes=%d", len(rep.Batches), rep.Truncated, rep.TruncatedBytes)
	}
	// Repair trims the torn bytes so the log is appendable again.
	rep, err = ReplayWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || len(rep.Batches) != 1 {
		t.Fatalf("repair replay: batches=%d truncated=%v", len(rep.Batches), rep.Truncated)
	}
	fi, _ := os.Stat(path)
	if fi.Size() != sizeAfterFirst {
		t.Fatalf("repaired size %d, want %d", fi.Size(), sizeAfterFirst)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]Mutation{{Op: MutRemoveNode, Node: 0}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	rep, err = ReplayWAL(path, false)
	if err != nil || rep.Truncated || len(rep.Batches) != 2 {
		t.Fatalf("after repair+append: batches=%d truncated=%v err=%v", len(rep.Batches), rep.Truncated, err)
	}
}

func TestWALCorruptFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.fdelta")
	w, _ := OpenWAL(path)
	w.Append(sampleBatch())
	off := w.Size()
	w.Append([]Mutation{{Op: MutAddNode, Label: "Org"}})
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off+9] ^= 0xFF // flip a payload byte inside the second frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || len(rep.Batches) != 1 {
		t.Fatalf("corrupt frame: batches=%d truncated=%v", len(rep.Batches), rep.Truncated)
	}
}

func TestWALBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.fdelta")
	if err := os.WriteFile(path, []byte("NOTDELTA"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayWAL(path, false); err == nil {
		t.Error("ReplayWAL accepted a log with a bad magic")
	}
	if _, err := OpenWAL(path); err == nil {
		t.Error("OpenWAL accepted a log with a bad magic")
	}
	// A missing log reports the os error so callers can distinguish
	// fresh-start from corruption.
	if _, err := ReplayWAL(filepath.Join(t.TempDir(), "nope.fdelta"), false); !os.IsNotExist(err) {
		t.Errorf("missing log: %v", err)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.fdelta")
	w, _ := OpenWAL(path)
	for i := 0; i < 4; i++ {
		if err := w.Append(sampleBatch()); err != nil {
			t.Fatal(err)
		}
	}
	grew := w.Size()
	// Checkpoint: truncate and (optionally) seed with a tombstone batch.
	ckpt := TombstoneBatch([]NodeID{2, 7})
	if err := w.Reset(ckpt); err != nil {
		t.Fatal(err)
	}
	if w.Size() >= grew {
		t.Errorf("Reset did not shrink the log: %d -> %d", grew, w.Size())
	}
	w.Close()
	rep, err := ReplayWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Batches) != 1 || !mutationsEqual(rep.Batches[0], ckpt) {
		t.Fatalf("after reset: %d batches", len(rep.Batches))
	}

	// Reset with no batches empties the log entirely.
	w2, _ := OpenWAL(path)
	if err := w2.Reset(); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	rep, err = ReplayWAL(path, false)
	if err != nil || len(rep.Batches) != 0 || rep.Truncated {
		t.Fatalf("empty reset: batches=%d err=%v", len(rep.Batches), err)
	}
}

func TestWALEmptyLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.fdelta")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	rep, err := ReplayWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Batches) != 0 || rep.Truncated {
		t.Fatalf("fresh log: batches=%d truncated=%v", len(rep.Batches), rep.Truncated)
	}
	// A log torn inside the magic itself replays as empty + truncated.
	if err := os.Truncate(path, int64(len(WALMagic))-3); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayWAL(path, false); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("short magic: %v", err)
	}
}

func TestWALEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.fdelta")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Epoch() != 0 {
		t.Fatalf("fresh log epoch %d, want 0", w.Epoch())
	}
	if err := w.Append(sampleBatch()); err != nil {
		t.Fatal(err)
	}
	// Checkpoint: rotate to epoch 3 with a tombstone batch.
	ckpt := TombstoneBatch([]NodeID{1})
	if err := w.ResetEpoch(3, ckpt); err != nil {
		t.Fatal(err)
	}
	if w.Epoch() != 3 {
		t.Fatalf("epoch after reset %d, want 3", w.Epoch())
	}
	// The adopted fd keeps appending to the renamed file.
	if err := w.Append(sampleBatch()); err != nil {
		t.Fatal(err)
	}
	w.Close()

	rep, err := ReplayWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 3 || len(rep.Batches) != 2 || !mutationsEqual(rep.Batches[0], ckpt) {
		t.Fatalf("replay: epoch=%d batches=%d", rep.Epoch, len(rep.Batches))
	}
	// Reopen reads the epoch back from the header.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Epoch() != 3 {
		t.Fatalf("reopened epoch %d, want 3", w2.Epoch())
	}
	// Reset without an epoch keeps the current one.
	if err := w2.Reset(); err != nil {
		t.Fatal(err)
	}
	if w2.Epoch() != 3 {
		t.Fatalf("epoch after plain reset %d, want 3", w2.Epoch())
	}
	w2.Close()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("reset left its tmp file behind: %v", err)
	}
}

func TestWALTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.fdelta")
	w, _ := OpenWAL(path)
	w.Close()
	// Tear the file inside the epoch field: magic intact, header short.
	if err := os.Truncate(path, int64(len(WALMagic))+3); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.TruncatedBytes != 3 || len(rep.Batches) != 0 {
		t.Fatalf("torn header: %+v", rep)
	}
	// Repair rewrote a fresh epoch-0 header; the log is usable again.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Epoch() != 0 {
		t.Fatalf("repaired epoch %d, want 0", w2.Epoch())
	}
	if err := w2.Append(sampleBatch()); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if rep, err := ReplayWAL(path, false); err != nil || len(rep.Batches) != 1 {
		t.Fatalf("after repair: batches=%d err=%v", len(rep.Batches), err)
	}
}
