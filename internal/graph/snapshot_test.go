package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// snapshotTestGraph generates a graph that exercises every column kind
// (float64, string, bool, mixed-Value), Null holes (attributes missing on
// a random subset of nodes), NaN and infinities in numeric columns, an
// explicit all-Null attribute, multigraph edges (parallel edges with the
// same and with different labels) and self-loops.
func snapshotTestGraph(t testing.TB, seed int64, n int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New()
	labels := []string{"Person", "Org", "Paper"}
	genders := []string{"female", "male", "nonbinary"}
	for i := 0; i < n; i++ {
		attrs := map[string]Value{}
		if rng.Float64() < 0.9 { // Null hole otherwise
			switch rng.Intn(4) {
			case 0:
				attrs["score"] = Num(math.NaN())
			case 1:
				attrs["score"] = Num(math.Inf(1 - 2*rng.Intn(2)))
			default:
				attrs["score"] = Num(rng.NormFloat64() * 100)
			}
		}
		if rng.Float64() < 0.8 {
			attrs["gender"] = Str(genders[rng.Intn(len(genders))])
		}
		if rng.Float64() < 0.7 {
			attrs["active"] = Bool(rng.Intn(2) == 0)
		}
		if rng.Float64() < 0.6 { // mixed-kind column
			switch rng.Intn(4) {
			case 0:
				attrs["misc"] = Num(float64(rng.Intn(10)))
			case 1:
				attrs["misc"] = Str(fmt.Sprintf("m%d", rng.Intn(5)))
			case 2:
				attrs["misc"] = Bool(true)
			default:
				attrs["misc"] = Null
			}
		}
		if rng.Float64() < 0.3 { // all-Null column
			attrs["ghost"] = Null
		}
		g.AddNode(labels[rng.Intn(len(labels))], attrs)
	}
	edgeLabels := []string{"knows", "cites", "worksAt"}
	for i := 0; i < n*3; i++ {
		from := NodeID(rng.Intn(n))
		to := NodeID(rng.Intn(n)) // self-loops allowed
		if err := g.AddEdge(from, to, edgeLabels[rng.Intn(len(edgeLabels))]); err != nil {
			t.Fatal(err)
		}
		if rng.Float64() < 0.1 { // parallel duplicate, same label
			if err := g.AddEdge(from, to, edgeLabels[0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	g.Freeze()
	return g
}

// valuesBitEqual compares Values treating NaN as equal to itself bit-for-
// bit, which reflect.DeepEqual would not.
func valuesBitEqual(a, b Value) bool {
	return a.kind == b.kind && a.str == b.str &&
		math.Float64bits(a.num) == math.Float64bits(b.num)
}

func valueSlicesBitEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !valuesBitEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func floatsBitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// assertGraphDeepEqual asserts every piece of the frozen representation —
// dictionaries, nodes, both adjacency directions, columns with presence
// bitmaps, active domains, label index, sorted permutation indexes,
// memory and degree stats — is identical between want and got.
func assertGraphDeepEqual(t testing.TB, want, got *Graph) {
	t.Helper()
	if !got.frozen {
		t.Fatal("reconstructed graph is not frozen")
	}
	if !reflect.DeepEqual(want.labels, got.labels) {
		t.Fatalf("labels differ: %v vs %v", want.labels, got.labels)
	}
	if !reflect.DeepEqual(want.labelIDs, got.labelIDs) {
		t.Fatalf("labelIDs differ")
	}
	if !reflect.DeepEqual(want.attrTable, got.attrTable) {
		t.Fatalf("attrTable differs: %v vs %v", want.attrTable, got.attrTable)
	}
	if !reflect.DeepEqual(want.attrIDs, got.attrIDs) {
		t.Fatalf("attrIDs differ")
	}
	if !reflect.DeepEqual(want.attrNames, got.attrNames) {
		t.Fatalf("attrNames differ: %v vs %v", want.attrNames, got.attrNames)
	}
	if !reflect.DeepEqual(want.nodeLabels, got.nodeLabels) {
		t.Fatalf("per-node labels differ")
	}
	if !reflect.DeepEqual(want.out, got.out) {
		t.Fatalf("out-adjacency differs")
	}
	if !reflect.DeepEqual(want.in, got.in) {
		t.Fatalf("in-adjacency differs")
	}
	if want.numEdges != got.numEdges {
		t.Fatalf("numEdges %d vs %d", want.numEdges, got.numEdges)
	}
	if want.maxOutDeg != got.maxOutDeg || want.maxInDeg != got.maxInDeg {
		t.Fatalf("degree stats (%d,%d) vs (%d,%d)", want.maxOutDeg, want.maxInDeg, got.maxOutDeg, got.maxInDeg)
	}
	if want.mem != got.mem {
		t.Fatalf("Memory() %+v vs %+v", want.mem, got.mem)
	}
	if !reflect.DeepEqual(want.byLabel, got.byLabel) {
		t.Fatalf("label index differs")
	}
	if len(want.cols) != len(got.cols) {
		t.Fatalf("column count %d vs %d", len(want.cols), len(got.cols))
	}
	for a := range want.cols {
		w, g := &want.cols[a], &got.cols[a]
		name := want.attrTable[a]
		if w.kind != g.kind || w.count != g.count {
			t.Fatalf("column %q kind/count (%v,%d) vs (%v,%d)", name, w.kind, w.count, g.kind, g.count)
		}
		if !reflect.DeepEqual(w.present, g.present) {
			t.Fatalf("column %q presence bitmap differs", name)
		}
		if !floatsBitEqual(w.nums, g.nums) {
			t.Fatalf("column %q float payload differs", name)
		}
		if w.refs != nil || g.refs != nil {
			// Mapped graphs keep string columns as string-table refs;
			// compare what nodes actually read instead of the raw arrays.
			for v := 0; v < len(want.nodeLabels); v++ {
				if w.value(NodeID(v)) != g.value(NodeID(v)) {
					t.Fatalf("column %q string value differs at node %d", name, v)
				}
			}
		} else if !reflect.DeepEqual(w.strs, g.strs) {
			t.Fatalf("column %q string payload differs", name)
		}
		if !reflect.DeepEqual(w.bools, g.bools) {
			t.Fatalf("column %q bool bitmap differs", name)
		}
		if !valueSlicesBitEqual(w.vals, g.vals) {
			t.Fatalf("column %q mixed payload differs", name)
		}
	}
	wantDoms, gotDoms := want.domainList(), got.domainList()
	if len(wantDoms) != len(gotDoms) {
		t.Fatalf("domains count %d vs %d", len(wantDoms), len(gotDoms))
	}
	for a := range wantDoms {
		if !valueSlicesBitEqual(wantDoms[a], gotDoms[a]) {
			t.Fatalf("active domain of %q differs:\n%v\n%v", want.attrTable[a], wantDoms[a], gotDoms[a])
		}
	}
	if len(want.indexes) != len(got.indexes) {
		t.Fatalf("index count %d vs %d", len(want.indexes), len(got.indexes))
	}
	for k, wp := range want.indexes {
		gp, ok := got.indexes[k]
		if !ok {
			t.Fatalf("index (%d,%d) missing", k.label, k.attr)
		}
		if !reflect.DeepEqual(wp, gp) {
			t.Fatalf("index (%d,%d) permutation differs", k.label, k.attr)
		}
	}
	// The derived read API must agree too.
	if !reflect.DeepEqual(Summarize(want), Summarize(got)) {
		t.Fatalf("Summarize differs:\n%v\n%v", Summarize(want), Summarize(got))
	}
}

func snapshotRoundTrip(t testing.TB, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	g2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	return g2
}

// TestSnapshotRoundTripDifferential is the codec's differential
// equivalence suite: across seeds and sizes, ReadSnapshot(WriteSnapshot(g))
// must be deep-equal to the Freeze-built graph.
func TestSnapshotRoundTripDifferential(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		n    int
	}{{1, 0}, {2, 1}, {3, 37}, {4, 200}, {5, 500}} {
		t.Run(fmt.Sprintf("seed%d_n%d", tc.seed, tc.n), func(t *testing.T) {
			g := snapshotTestGraph(t, tc.seed, tc.n)
			assertGraphDeepEqual(t, g, snapshotRoundTrip(t, g))
		})
	}
}

// TestSnapshotDeterministic asserts WriteSnapshot is byte-deterministic,
// both across repeated writes and across a read/write cycle — the property
// the registry relies on to treat snapshots as stable cache artifacts.
func TestSnapshotDeterministic(t *testing.T) {
	g := snapshotTestGraph(t, 11, 120)
	var a, b bytes.Buffer
	if err := WriteSnapshot(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same graph differ")
	}
	g2, err := ReadSnapshot(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := WriteSnapshot(&c, g2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("write after read differs from original write")
	}
}

// TestSnapshotRejectsUnfrozen: the codec serializes the frozen layout, so
// an unfrozen graph is a caller bug, reported as an error.
func TestSnapshotRejectsUnfrozen(t *testing.T) {
	g := New()
	g.AddNode("A", nil)
	if err := WriteSnapshot(&bytes.Buffer{}, g); err == nil {
		t.Fatal("WriteSnapshot accepted an unfrozen graph")
	}
}

// TestSnapshotCRCNamesSection flips one byte in each section's payload and
// asserts the decoder reports a CRC mismatch naming that exact section.
func TestSnapshotCRCNamesSection(t *testing.T) {
	g := snapshotTestGraph(t, 7, 60)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	count := int(binary.LittleEndian.Uint32(data[12:16]))
	for i := 0; i < count; i++ {
		ent := data[snapHeaderBase+snapTableEntry*i:]
		tag := string(ent[:4])
		offset := binary.LittleEndian.Uint64(ent[4:12])
		length := binary.LittleEndian.Uint64(ent[12:20])
		if length == 0 {
			continue
		}
		corrupt := make([]byte, len(data))
		copy(corrupt, data)
		corrupt[offset+length/2] ^= 0x40
		_, err := ReadSnapshot(bytes.NewReader(corrupt))
		if err == nil {
			t.Fatalf("bit flip in %s accepted", tag)
		}
		if !strings.Contains(err.Error(), tag) || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("bit flip in %s reported as %q; want a CRC error naming the section", tag, err)
		}
	}
}

// TestSnapshotRejectsTruncation: every prefix must fail cleanly.
func TestSnapshotRejectsTruncation(t *testing.T) {
	g := snapshotTestGraph(t, 9, 40)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut += 1 + cut/16 {
		if _, err := ReadSnapshot(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(data))
		}
	}
}

// TestSnapshotRejectsReorderedSections swaps two section-table entries
// (with their payloads untouched): offsets are then non-contiguous, which
// the strict canonical layout rejects.
func TestSnapshotRejectsReorderedSections(t *testing.T) {
	g := snapshotTestGraph(t, 13, 40)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	swapped := make([]byte, len(data))
	copy(swapped, data)
	a := swapped[snapHeaderBase : snapHeaderBase+snapTableEntry]
	b := swapped[snapHeaderBase+snapTableEntry : snapHeaderBase+2*snapTableEntry]
	tmp := make([]byte, snapTableEntry)
	copy(tmp, a)
	copy(a, b)
	copy(b, tmp)
	if _, err := ReadSnapshot(bytes.NewReader(swapped)); err == nil {
		t.Fatal("section-reordered snapshot accepted")
	}
}

// TestSnapshotRejectsForgedCounts forges the MET2 node count upward and
// asserts the decoder fails validation instead of allocating or slicing
// for the forged count. (CRCs are recomputed so the forgery reaches the
// semantic checks, not the checksum pass.)
func TestSnapshotRejectsForgedCounts(t *testing.T) {
	g := snapshotTestGraph(t, 17, 30)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	forge := func(nodes uint64) []byte {
		count := int(binary.LittleEndian.Uint32(data[12:16]))
		var sections []rawSection
		for i := 0; i < count; i++ {
			ent := data[snapHeaderBase+snapTableEntry*i:]
			off := binary.LittleEndian.Uint64(ent[4:12])
			l := binary.LittleEndian.Uint64(ent[12:20])
			payload := data[off : off+l]
			if string(ent[:4]) == "MET2" {
				forged := make([]byte, len(payload))
				copy(forged, payload)
				binary.LittleEndian.PutUint64(forged, nodes) // field 0: node count
				payload = forged
			}
			sections = append(sections, rawSection{tag: string(ent[:4]), payload: payload})
		}
		return rebuildSnapshot(t, sections)
	}

	// A huge forgery must die on the id-space range check, naming MET2,
	// before any forged-sized allocation happens.
	_, err := ReadSnapshot(bytes.NewReader(forge(1 << 40)))
	if err == nil {
		t.Fatal("forged node count accepted")
	}
	if !strings.Contains(err.Error(), "MET2") {
		t.Fatalf("forged count reported as %q; want a MET2 validation error", err)
	}

	// An off-by-one forgery passes the range check and must instead fail
	// the cross-check against the real fixed-width section sizes.
	if _, err := ReadSnapshot(bytes.NewReader(forge(uint64(len(g.nodeLabels)) + 1))); err == nil {
		t.Fatal("off-by-one forged node count accepted")
	}
}

// rawSection is one (tag, payload) pair of a snapshot being reassembled.
type rawSection struct {
	tag     string
	payload []byte
}

// rebuildSnapshot reassembles a snapshot file from modified sections,
// recomputing offsets and CRCs so structural validation passes and the
// decoder exercises its semantic checks.
func rebuildSnapshot(t testing.TB, sections []rawSection) []byte {
	t.Helper()
	var out bytes.Buffer
	out.WriteString(snapMagic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], SnapshotVersion)
	out.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(sections)))
	out.Write(u32[:])
	offset := uint64(snapHeaderBase + snapTableEntry*len(sections))
	for _, s := range sections {
		out.WriteString(s.tag)
		var u64 [8]byte
		binary.LittleEndian.PutUint64(u64[:], offset)
		out.Write(u64[:])
		binary.LittleEndian.PutUint64(u64[:], uint64(len(s.payload)))
		out.Write(u64[:])
		binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(s.payload))
		out.Write(u32[:])
		offset += uint64(len(s.payload))
	}
	for _, s := range sections {
		out.Write(s.payload)
	}
	return out.Bytes()
}

// TestSnapshotRejectsBadVersion bumps the version field.
func TestSnapshotRejectsBadVersion(t *testing.T) {
	g := snapshotTestGraph(t, 19, 10)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint32(data[8:12], SnapshotVersion+1)
	_, err := ReadSnapshot(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version gave %v; want a version error", err)
	}
}
