package graph

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randValue is a quick-generatable Value covering every kind.
type randValue struct{ V Value }

func (randValue) Generate(r *rand.Rand, _ int) reflect.Value {
	var v Value
	switch r.Intn(5) {
	case 0:
		v = Null
	case 1:
		v = Bool(r.Intn(2) == 1)
	case 2:
		v = Int(int64(r.Intn(2001) - 1000))
	case 3:
		v = Num(math.Round(r.NormFloat64()*1000) / 16) // representable fractions
	default:
		letters := []rune("abcxyz 123")
		n := r.Intn(8)
		s := make([]rune, n)
		for i := range s {
			s[i] = letters[r.Intn(len(letters))]
		}
		v = Str(string(s))
	}
	return reflect.ValueOf(randValue{V: v})
}

// TestQuickCompareTotalOrder: antisymmetry and transitivity over random
// mixed-kind values.
func TestQuickCompareTotalOrder(t *testing.T) {
	anti := func(a, b randValue) bool {
		x, y := a.V.Compare(b.V), b.V.Compare(a.V)
		if x == 0 {
			return y == 0 && a.V.Equal(b.V)
		}
		return (x > 0) == (y < 0)
	}
	if err := quick.Check(anti, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error("antisymmetry:", err)
	}
	trans := func(a, b, c randValue) bool {
		if a.V.Compare(b.V) <= 0 && b.V.Compare(c.V) <= 0 {
			return a.V.Compare(c.V) <= 0
		}
		return true
	}
	if err := quick.Check(trans, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error("transitivity:", err)
	}
}

// TestQuickValueStringRoundTrip: ParseValue(v.String()) returns a value
// equal to v for non-string kinds, and a value with the same String for
// strings that don't collide with other kinds' renderings.
func TestQuickValueStringRoundTrip(t *testing.T) {
	f := func(rv randValue) bool {
		v := rv.V
		got := ParseValue(v.String())
		if v.Kind() == KindString {
			if v.Text() == "" || v.Text() == "null" {
				// "" and "null" render to the null value's forms; the DSL
				// quotes them to preserve kind.
				return got.IsNull()
			}
			// Strings that look like numbers/bools intentionally reparse
			// as those kinds; the DSL quotes them to preserve kind.
			return got.String() == v.String()
		}
		return got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickOpApplyTightensConsistency: refined bindings never admit nodes
// the relaxed binding rejected.
func TestQuickOpApplyTightensConsistency(t *testing.T) {
	ops := []Op{OpLT, OpLE, OpEQ, OpGE, OpGT}
	f := func(a, b, x randValue, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		if !op.Tightens(a.V, b.V) {
			return true
		}
		// x satisfies "x op b" ⇒ x satisfies "x op a".
		if op.Apply(x.V, b.V) && !op.Apply(x.V, a.V) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
