package graph

import (
	"math/rand"
	"testing"
)

// bitsetEqualsOracle compares every observable of the bitset — Get, Count,
// ForEach order and content — against the map oracle.
func bitsetEqualsOracle(t *testing.T, b Bitset, oracle map[int]bool) {
	t.Helper()
	if b.Count() != len(oracle) {
		t.Fatalf("Count = %d, oracle has %d", b.Count(), len(oracle))
	}
	for i := 0; i < b.Len(); i++ {
		if b.Get(i) != oracle[i] {
			t.Fatalf("Get(%d) = %v, oracle %v", i, b.Get(i), oracle[i])
		}
	}
	prev, seen := -1, 0
	b.ForEach(func(i int) {
		if i <= prev {
			t.Fatalf("ForEach not ascending: %d after %d", i, prev)
		}
		if !oracle[i] {
			t.Fatalf("ForEach visited %d, not in oracle", i)
		}
		prev = i
		seen++
	})
	if seen != len(oracle) {
		t.Fatalf("ForEach visited %d positions, oracle has %d", seen, len(oracle))
	}
}

// TestBitsetAgainstMapOracle drives random Set/Clear/Get/IntersectWith
// sequences against a map oracle across many sizes, including the 64-bit
// word boundaries.
func TestBitsetAgainstMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4117))
	sizes := []int{1, 63, 64, 65, 127, 128, 129}
	for trial := 0; trial < 40; trial++ {
		n := sizes[trial%len(sizes)] + rng.Intn(100)
		b := NewBitset(n)
		oracle := make(map[int]bool)
		for op := 0; op < 400; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				b.Set(i)
				oracle[i] = true
			case 1:
				b.Clear(i)
				delete(oracle, i)
			default:
				if b.Get(i) != oracle[i] {
					t.Fatalf("n=%d op=%d: Get(%d) = %v, oracle %v", n, op, i, b.Get(i), oracle[i])
				}
			}
		}
		bitsetEqualsOracle(t, b, oracle)

		o := NewBitset(n)
		other := make(map[int]bool)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				o.Set(i)
				other[i] = true
			}
		}
		b.IntersectWith(o)
		for i := range oracle {
			if !other[i] {
				delete(oracle, i)
			}
		}
		bitsetEqualsOracle(t, b, oracle)
	}
}

// TestBitsetEdgeCases pins the contract edges: out-of-range Get reads false
// (foreign-index probes), out-of-range mutation panics, capacity mismatch
// panics, Words aliases the storage, and negative capacity clamps to empty.
func TestBitsetEdgeCases(t *testing.T) {
	b := NewBitset(70)
	if b.Len() != 70 {
		t.Errorf("Len = %d, want 70", b.Len())
	}
	if b.Get(-1) || b.Get(70) {
		t.Error("out-of-range Get must read false")
	}
	mustPanic(t, "Set(70)", func() { b.Set(70) })
	mustPanic(t, "Set(-1)", func() { b.Set(-1) })
	mustPanic(t, "Clear(70)", func() { b.Clear(70) })
	mustPanic(t, "Clear(-1)", func() { b.Clear(-1) })
	mustPanic(t, "IntersectWith mismatch", func() { b.IntersectWith(NewBitset(71)) })

	// Words is aliased storage: writes through it are visible to Get.
	b.Words()[1] |= 1 << 3 // position 67
	if !b.Get(67) {
		t.Error("write through Words not visible to Get")
	}
	b.Set(5)
	if b.Words()[0]&(1<<5) == 0 {
		t.Error("Set not visible through Words")
	}

	z := NewBitset(-5)
	if z.Len() != 0 || z.Count() != 0 {
		t.Errorf("NewBitset(-5): Len %d Count %d, want empty", z.Len(), z.Count())
	}
	z.ForEach(func(int) { t.Error("empty bitset visited a position") })
}
