//go:build !unix

package graph

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File) ([]byte, error) {
	return nil, errors.New("graph: memory-mapped snapshots are not supported on this platform")
}

func munmapBytes(b []byte) error { return nil }
