package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// buildSample creates a small professional network used across the tests.
func buildSample(t *testing.T) *Graph {
	t.Helper()
	g := New()
	p0 := g.AddNode("Person", map[string]Value{"name": Str("ann"), "age": Int(30)})
	p1 := g.AddNode("Person", map[string]Value{"name": Str("bob"), "age": Int(40)})
	p2 := g.AddNode("Person", map[string]Value{"name": Str("cyn"), "age": Int(25)})
	o0 := g.AddNode("Org", map[string]Value{"employees": Int(100)})
	o1 := g.AddNode("Org", map[string]Value{"employees": Int(5000)})
	for _, e := range []struct {
		from, to NodeID
		label    string
	}{
		{p0, p1, "knows"}, {p1, p2, "knows"}, {p2, p0, "knows"},
		{p0, o0, "worksAt"}, {p1, o1, "worksAt"}, {p2, o1, "worksAt"},
	} {
		if err := g.AddEdge(e.from, e.to, e.label); err != nil {
			t.Fatal(err)
		}
	}
	g.Freeze()
	return g
}

func TestGraphBasics(t *testing.T) {
	g := buildSample(t)
	if g.NumNodes() != 5 || g.NumEdges() != 6 {
		t.Fatalf("got |V|=%d |E|=%d, want 5, 6", g.NumNodes(), g.NumEdges())
	}
	if g.Label(0) != "Person" || g.Label(3) != "Org" {
		t.Error("labels wrong")
	}
	if got := g.Attr(0, "age"); !got.Equal(Int(30)) {
		t.Errorf("Attr(0, age) = %v", got)
	}
	if got := g.Attr(0, "missing"); !got.IsNull() {
		t.Errorf("missing attr = %v", got)
	}
	if len(g.NodesByLabel("Person")) != 3 || len(g.NodesByLabel("Org")) != 2 {
		t.Error("label index wrong")
	}
	if g.NodesByLabel("Nope") != nil {
		t.Error("unknown label should return nil")
	}
	if g.CountLabel("Person") != 3 {
		t.Error("CountLabel wrong")
	}
}

func TestGraphAdjacency(t *testing.T) {
	g := buildSample(t)
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Errorf("degrees of node 0: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	knows := g.LookupLabel("knows")
	works := g.LookupLabel("worksAt")
	if !g.HasEdge(0, 1, knows) {
		t.Error("HasEdge(0,1,knows) = false")
	}
	if g.HasEdge(1, 0, knows) {
		t.Error("HasEdge(1,0,knows) = true; edges are directed")
	}
	if !g.HasEdge(2, 4, works) {
		t.Error("HasEdge(2,4,worksAt) = false")
	}
	if g.HasEdge(0, 1, works) {
		t.Error("HasEdge label mismatch accepted")
	}
}

func TestActiveDomains(t *testing.T) {
	g := buildSample(t)
	ages := g.ActiveDomain("age")
	want := []Value{Int(25), Int(30), Int(40)}
	if len(ages) != len(want) {
		t.Fatalf("adom(age) = %v", ages)
	}
	for i := range want {
		if !ages[i].Equal(want[i]) {
			t.Errorf("adom(age)[%d] = %v, want %v", i, ages[i], want[i])
		}
	}
	if got := g.MaxActiveDomain(); got != 3 {
		t.Errorf("MaxActiveDomain = %d", got)
	}
	if got := g.AttrNames(); !reflect.DeepEqual(got, []string{"age", "employees", "name"}) {
		t.Errorf("AttrNames = %v", got)
	}
	if got := g.NodeLabels(); !reflect.DeepEqual(got, []string{"Org", "Person"}) {
		t.Errorf("NodeLabels = %v", got)
	}
}

func TestFreezeGuards(t *testing.T) {
	g := New()
	g.AddNode("A", nil)
	mustPanic(t, "NodesByLabel before freeze", func() { g.NodesByLabel("A") })
	g.Freeze()
	mustPanic(t, "AddNode after freeze", func() { g.AddNode("B", nil) })
	mustPanic(t, "AddEdge after freeze", func() { _ = g.AddEdge(0, 0, "x") })
	mustPanic(t, "SetAttr after freeze", func() { g.SetAttr(0, "a", Int(1)) })
	g.Freeze() // idempotent
}

func TestAddEdgeOutOfRange(t *testing.T) {
	g := New()
	g.AddNode("A", nil)
	if err := g.AddEdge(0, 5, "x"); err == nil {
		t.Error("AddEdge out of range should fail")
	}
	if err := g.AddEdge(-1, 0, "x"); err == nil {
		t.Error("AddEdge negative should fail")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestSummarize(t *testing.T) {
	g := buildSample(t)
	s := Summarize(g)
	if s.Nodes != 5 || s.Edges != 6 || s.NodeLabels != 2 || s.EdgeLabels != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.AvgAttrs <= 0 || s.MaxAdom != 3 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "|V|=5") {
		t.Errorf("Stats.String() = %q", s.String())
	}
	if len(s.TopLabels) == 0 || s.TopLabels[0].Label != "Person" {
		t.Errorf("TopLabels = %v", s.TopLabels)
	}
}

func TestKHopNeighborhood(t *testing.T) {
	g := buildSample(t)
	h0 := KHopNeighborhood(g, []NodeID{0}, 0)
	if len(h0) != 1 || !h0[0] {
		t.Errorf("0-hop = %v", h0)
	}
	h1 := KHopNeighborhood(g, []NodeID{0}, 1)
	// node 0 reaches 1, 3 (out) and 2 (in) in one undirected hop.
	for _, v := range []NodeID{0, 1, 2, 3} {
		if !h1[v] {
			t.Errorf("1-hop missing %d: %v", v, h1)
		}
	}
	if h1[4] {
		t.Errorf("1-hop should not include 4")
	}
	h2 := KHopNeighborhood(g, []NodeID{0}, 2)
	if len(h2) != 5 {
		t.Errorf("2-hop should reach everything, got %v", h2)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildSample(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestTSVRoundTrip(t *testing.T) {
	g := buildSample(t)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	for i := 0; i < a.NumNodes(); i++ {
		v := NodeID(i)
		if a.Label(v) != b.Label(v) {
			t.Fatalf("node %d label %q vs %q", i, a.Label(v), b.Label(v))
		}
		if len(a.Attrs(v)) != len(b.Attrs(v)) {
			t.Fatalf("node %d attrs %v vs %v", i, a.Attrs(v), b.Attrs(v))
		}
		for k, av := range a.Attrs(v) {
			if !b.Attr(v, k).Equal(av) {
				t.Fatalf("node %d attr %s: %v vs %v", i, k, av, b.Attr(v, k))
			}
		}
		if len(a.Out(v)) != len(b.Out(v)) {
			t.Fatalf("node %d out-degree differs", i)
		}
		for j, e := range a.Out(v) {
			e2 := b.Out(v)[j]
			if e.To != e2.To || a.LabelOf(e.Label) != b.LabelOf(e2.Label) {
				t.Fatalf("node %d edge %d differs", i, j)
			}
		}
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"N\t0",                // missing label
		"N\tx\tA",             // bad id
		"N\t5\tA",             // out of order
		"N\t0\tA\tnoequals",   // bad attribute
		"E\t0\t1",             // short edge
		"N\t0\tA\nE\t0\t9\tx", // edge out of range
		"X\t0",                // unknown record
		"N\t0\tA\nE\ta\t0\tx", // bad from
		"N\t0\tA\nE\t0\tb\tx", // bad to
	}
	for _, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadTSV(%q) should fail", c)
		}
	}
	// Comments and blank lines are fine.
	g, err := ReadTSV(strings.NewReader("# comment\n\nN\t0\tA\tx=1\n"))
	if err != nil || g.NumNodes() != 1 {
		t.Errorf("comment handling: %v", err)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[{"id":3,"label":"A"}]}`)); err == nil {
		t.Error("non-dense ids should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[{"id":0,"label":"A"}],"edges":[{"from":0,"to":9,"label":"x"}]}`)); err == nil {
		t.Error("edge out of range should fail")
	}
}
