package graph

import "testing"

func TestInduce(t *testing.T) {
	g := buildSample(t)                           // 3 persons (0,1,2), 2 orgs (3,4)
	sub, remap := Induce(g, []NodeID{2, 0, 1, 2}) // dup + unsorted
	if sub.NumNodes() != 3 {
		t.Fatalf("|V| = %d", sub.NumNodes())
	}
	// The knows-triangle among persons survives; worksAt edges drop.
	if sub.NumEdges() != 3 {
		t.Fatalf("|E| = %d, want 3", sub.NumEdges())
	}
	for old, idx := range map[NodeID]NodeID{0: 0, 1: 1, 2: 2} {
		if remap[old] != idx {
			t.Errorf("remap[%d] = %d, want %d", old, remap[old], idx)
		}
	}
	// Attributes are deep-copied.
	if !sub.Attr(0, "name").Equal(Str("ann")) {
		t.Error("attributes lost")
	}
	knows := sub.LookupLabel("knows")
	if !sub.HasEdge(0, 1, knows) || !sub.HasEdge(1, 2, knows) || !sub.HasEdge(2, 0, knows) {
		t.Error("induced edges wrong")
	}
	// Out-of-range and empty selections.
	empty, _ := Induce(g, []NodeID{99, -1})
	if empty.NumNodes() != 0 || empty.NumEdges() != 0 {
		t.Error("out-of-range nodes should be dropped")
	}
	// Mixed selection keeps only internal edges.
	mixed, remap2 := Induce(g, []NodeID{0, 3})
	if mixed.NumEdges() != 1 { // 0 -worksAt-> 3 survives
		t.Errorf("mixed |E| = %d", mixed.NumEdges())
	}
	works := mixed.LookupLabel("worksAt")
	if !mixed.HasEdge(remap2[0], remap2[3], works) {
		t.Error("worksAt edge lost")
	}
}
