package graph

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// The write-ahead delta log (".fdelta"): a crash-consistent record of
// every mutation batch applied to a graph since its last snapshot.
//
// File layout:
//
//	8 bytes  magic "FDELTA1\n"
//	8 bytes  u64 LE epoch — identifies the base snapshot the log extends
//	frames   [u32 LE payload length][u32 LE CRC-32 (IEEE) of payload][payload]
//
// Each frame holds exactly one batch, encoded as the JSON mutation array
// also accepted by the HTTP mutate endpoint, and is fsync'd before the
// append returns — restart recovers to the last acknowledged batch.
// Replay verifies length and CRC per frame; the first bad frame (torn
// write, flipped bits, garbage tail) ends the log, and the repair mode
// truncates the file back to the last good frame so the next append
// starts clean.
//
// The epoch makes checkpoints crash-atomic. A checkpoint first writes the
// resurrected snapshot under an epoch-qualified name, then atomically
// replaces the log (tmp + rename, see ResetEpoch) with one carrying the
// new epoch and just the tombstone batch of the snapshot's resurrected
// image (empty when the graph has no tombstones). The log rename is the
// commit point: on restore, the epoch in the log header names the one
// snapshot the batches are relative to, so a crash on either side of the
// rename leaves a consistent (snapshot, log) pair plus an orphan snapshot
// file that restore sweeps away.

// WALMagic is the delta-log file magic.
const WALMagic = "FDELTA1\n"

// walHeaderSize is the fixed prefix before the first frame: the magic
// plus the little-endian epoch.
const walHeaderSize = len(WALMagic) + 8

// walMaxPayload bounds a frame's declared payload length; a corrupt
// header can therefore never force a giant allocation.
const walMaxPayload = 1 << 28

// --------------------------------------------------------------------------
// Mutation JSON codec (shared by the WAL frames and the HTTP endpoint)

// jsonMut is the wire form of one Mutation. Numeric node fields are
// pointers so a missing field is distinguishable from node 0.
type jsonMut struct {
	Op    string               `json:"op"`
	Node  *int64               `json:"node,omitempty"`
	From  *int64               `json:"from,omitempty"`
	To    *int64               `json:"to,omitempty"`
	Label string               `json:"label,omitempty"`
	Attr  string               `json:"attr,omitempty"`
	Value *jsonValue           `json:"value,omitempty"`
	Attrs map[string]jsonValue `json:"attrs,omitempty"`
}

// jsonValue carries one attribute Value. The compact form is a JSON
// string in the ParseValue syntax ("30", "true", "alice"); values that
// syntax cannot round-trip exactly (the string "12", the string "true",
// "null", the empty string, ...) use the typed object form
// {"kind":"string","value":"12"}. MarshalJSON picks the shortest faithful
// form automatically.
type jsonValue struct{ v Value }

func (j jsonValue) MarshalJSON() ([]byte, error) {
	s := j.v.String()
	if rt := ParseValue(s); rt.Kind() == j.v.Kind() && rt.Equal(j.v) {
		return json.Marshal(s)
	}
	return json.Marshal(struct {
		Kind  string `json:"kind"`
		Value string `json:"value"`
	}{j.v.Kind().String(), s})
}

func (j *jsonValue) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		j.v = ParseValue(s)
		return nil
	}
	var typed struct {
		Kind  string `json:"kind"`
		Value string `json:"value"`
	}
	if err := json.Unmarshal(data, &typed); err != nil {
		return fmt.Errorf("graph: attribute value must be a string or {kind, value}: %w", err)
	}
	switch typed.Kind {
	case "null":
		j.v = Null
	case "bool":
		switch typed.Value {
		case "true":
			j.v = Bool(true)
		case "false":
			j.v = Bool(false)
		default:
			return fmt.Errorf("graph: bad bool value %q", typed.Value)
		}
	case "number":
		f, err := parseFloatValue(typed.Value)
		if err != nil {
			return fmt.Errorf("graph: bad number value %q", typed.Value)
		}
		j.v = Num(f)
	case "string":
		j.v = Str(typed.Value)
	default:
		return fmt.Errorf("graph: unknown value kind %q", typed.Kind)
	}
	return nil
}

// EncodeMutations renders a batch in the JSON wire form (a JSON array,
// one object per mutation). The encoding is deterministic — attrs maps
// marshal with sorted keys — and faithful: DecodeMutations returns a
// batch with identical semantics, including attribute value kinds.
func EncodeMutations(ops []Mutation) ([]byte, error) {
	wire := make([]jsonMut, len(ops))
	for i, m := range ops {
		jm := jsonMut{Op: m.Op.String()}
		switch m.Op {
		case MutAddNode:
			jm.Label = m.Label
			if len(m.Attrs) > 0 {
				jm.Attrs = make(map[string]jsonValue, len(m.Attrs))
				for _, kv := range m.Attrs {
					jm.Attrs[kv.Name] = jsonValue{kv.Value}
				}
			}
		case MutRemoveNode:
			n := int64(m.Node)
			jm.Node = &n
		case MutAddEdge, MutRemoveEdge:
			f, t := int64(m.From), int64(m.To)
			jm.From, jm.To, jm.Label = &f, &t, m.Label
		case MutSetAttr:
			n := int64(m.Node)
			jm.Node, jm.Attr = &n, m.Attr
			if m.Value.Kind() != KindNull {
				jm.Value = &jsonValue{m.Value}
			}
		default:
			return nil, fmt.Errorf("graph: op %d: unknown mutation op %d", i, m.Op)
		}
		wire[i] = jm
	}
	return json.Marshal(wire)
}

// DecodeMutations parses the JSON wire form back into a batch. Structural
// problems (unknown op, missing fields, out-of-range IDs) error here;
// semantic validity against a particular graph is ApplyBatch's job.
func DecodeMutations(data []byte) ([]Mutation, error) {
	var wire []jsonMut
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("graph: decoding mutation batch: %w", err)
	}
	ops := make([]Mutation, len(wire))
	node := func(i int, what string, p *int64) (NodeID, error) {
		if p == nil {
			return 0, fmt.Errorf("graph: op %d (%s): missing %q field", i, wire[i].Op, what)
		}
		if *p < 0 || *p > 1<<31-1 {
			return 0, fmt.Errorf("graph: op %d (%s): %s %d out of range", i, wire[i].Op, what, *p)
		}
		return NodeID(*p), nil
	}
	for i, jm := range wire {
		m := Mutation{}
		var err error
		switch jm.Op {
		case "addNode":
			m.Op, m.Label = MutAddNode, jm.Label
			if len(jm.Attrs) > 0 {
				names := make([]string, 0, len(jm.Attrs))
				for a := range jm.Attrs {
					names = append(names, a)
				}
				sort.Strings(names)
				m.Attrs = make([]AttrPair, 0, len(names))
				for _, a := range names {
					m.Attrs = append(m.Attrs, AttrPair{Name: a, Value: jm.Attrs[a].v})
				}
			}
		case "removeNode":
			m.Op = MutRemoveNode
			if m.Node, err = node(i, "node", jm.Node); err != nil {
				return nil, err
			}
		case "addEdge", "removeEdge":
			m.Op, m.Label = MutAddEdge, jm.Label
			if jm.Op == "removeEdge" {
				m.Op = MutRemoveEdge
			}
			if m.From, err = node(i, "from", jm.From); err != nil {
				return nil, err
			}
			if m.To, err = node(i, "to", jm.To); err != nil {
				return nil, err
			}
		case "setAttr":
			m.Op, m.Attr = MutSetAttr, jm.Attr
			if m.Node, err = node(i, "node", jm.Node); err != nil {
				return nil, err
			}
			if m.Attr == "" {
				return nil, fmt.Errorf("graph: op %d (setAttr): missing \"attr\" field", i)
			}
			if jm.Value != nil {
				m.Value = jm.Value.v
			}
		default:
			return nil, fmt.Errorf("graph: op %d: unknown mutation op %q", i, jm.Op)
		}
		ops[i] = m
	}
	return ops, nil
}

// --------------------------------------------------------------------------
// Log writer

// WALWriter appends CRC-framed, fsync'd mutation batches to a delta log.
// Not goroutine-safe; callers serialize (the registry holds its per-graph
// lock across Apply + Append).
type WALWriter struct {
	f     *os.File
	path  string
	size  int64
	epoch uint64
}

// OpenWAL opens (or creates) the delta log at path for appending. A new
// log starts at epoch 0. An existing file must start with the magic; its
// tail is NOT validated here — recover first with ReplayWAL(path, true),
// which truncates any torn tail, then open. A file torn inside the header
// itself (created but never fully written — it can hold no batches) is
// rewritten as a fresh epoch-0 log.
func OpenWAL(path string) (*WALWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &WALWriter{f: f, path: path, size: st.Size()}
	if st.Size() >= int64(len(WALMagic)) {
		var magic [len(WALMagic)]byte
		if _, err := f.ReadAt(magic[:], 0); err != nil || string(magic[:]) != WALMagic {
			f.Close()
			return nil, fmt.Errorf("graph: %s is not a delta log (bad magic)", path)
		}
	}
	if st.Size() < int64(walHeaderSize) {
		if err := w.writeHeader(0); err != nil {
			f.Close()
			return nil, err
		}
		return w, nil
	}
	var eb [8]byte
	if _, err := f.ReadAt(eb[:], int64(len(WALMagic))); err != nil {
		f.Close()
		return nil, err
	}
	w.epoch = binary.LittleEndian.Uint64(eb[:])
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *WALWriter) writeHeader(epoch uint64) error {
	hdr := walHeader(epoch)
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		return err
	}
	if err := w.f.Truncate(int64(walHeaderSize)); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(walHeaderSize), io.SeekStart); err != nil {
		return err
	}
	w.size = int64(walHeaderSize)
	w.epoch = epoch
	return w.f.Sync()
}

func walHeader(epoch uint64) []byte {
	hdr := make([]byte, walHeaderSize)
	copy(hdr, WALMagic)
	binary.LittleEndian.PutUint64(hdr[len(WALMagic):], epoch)
	return hdr
}

// Append encodes one batch as a frame and fsyncs. On success the batch is
// durable: a crash any time after Append returns replays it.
func (w *WALWriter) Append(ops []Mutation) error {
	payload, err := EncodeMutations(ops)
	if err != nil {
		return err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size += int64(len(frame))
	return nil
}

// Reset restarts the log at its current epoch with just the given batches
// (empty batches are dropped). See ResetEpoch.
func (w *WALWriter) Reset(batches ...[]Mutation) error {
	return w.ResetEpoch(w.epoch, batches...)
}

// ResetEpoch atomically replaces the log with one carrying the given
// epoch and batches: the new content is written to a sibling ".tmp" file,
// fsync'd, and renamed over the log, so a crash at any point leaves
// either the complete old log or the complete new one — never a torn
// truncation. This is the checkpoint commit point: the caller writes the
// epoch-qualified snapshot first, then ResetEpoch(epoch, tombstoneBatch)
// switches restores over to it.
func (w *WALWriter) ResetEpoch(epoch uint64, batches ...[]Mutation) error {
	tmp := w.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	nw := &WALWriter{f: nf, path: w.path, epoch: epoch}
	fail := func(err error) error {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	if err := nw.writeHeader(epoch); err != nil {
		return fail(err)
	}
	for _, b := range batches {
		if len(b) == 0 {
			continue
		}
		if err := nw.Append(b); err != nil {
			return fail(err)
		}
	}
	if err := os.Rename(tmp, w.path); err != nil {
		return fail(err)
	}
	syncDir(w.path)
	// The renamed fd stays valid; retire the old one and adopt the new.
	w.f.Close()
	w.f, w.size, w.epoch = nf, nw.size, epoch
	return nil
}

// syncDir best-effort fsyncs the directory containing path, making a
// preceding rename durable.
func syncDir(path string) {
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
}

// Size returns the log's current byte length.
func (w *WALWriter) Size() int64 { return w.size }

// Epoch returns the log's epoch — the identifier of the base snapshot its
// batches extend (0 for a log opened fresh against the original upload).
func (w *WALWriter) Epoch() uint64 { return w.epoch }

// Close closes the underlying file.
func (w *WALWriter) Close() error { return w.f.Close() }

// --------------------------------------------------------------------------
// Replay

// WALReplay is the result of reading a delta log back.
type WALReplay struct {
	// Epoch is the base-snapshot identifier from the log header.
	Epoch uint64
	// Batches holds every intact batch in append order.
	Batches [][]Mutation
	// Truncated reports that the log ended in a torn or corrupt frame;
	// TruncatedBytes is how many bytes past the last good frame were
	// dropped (or would be, without repair).
	Truncated      bool
	TruncatedBytes int64
}

// ReplayWAL reads the delta log at path, verifying each frame's length
// and CRC and decoding its batch. The first bad frame ends the replay:
// everything before it is returned, and with repair set the file is
// truncated back to the last good frame so subsequent appends start
// clean. A missing file is an error (callers decide whether that's an
// orphan or a fresh graph).
func ReplayWAL(path string, repair bool) (*WALReplay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &WALReplay{}
	if len(data) < len(WALMagic) || string(data[:len(WALMagic)]) != WALMagic {
		return nil, fmt.Errorf("graph: %s is not a delta log (bad magic)", path)
	}
	if len(data) < walHeaderSize {
		// Torn inside the header: the log was created but never completed
		// a single append, so there is nothing to lose by starting over.
		rep.Truncated = true
		rep.TruncatedBytes = int64(len(data) - len(WALMagic))
		if repair {
			if err := os.WriteFile(path, walHeader(0), 0o644); err != nil {
				return rep, fmt.Errorf("graph: rewriting torn delta-log header: %w", err)
			}
		}
		return rep, nil
	}
	rep.Epoch = binary.LittleEndian.Uint64(data[len(WALMagic):walHeaderSize])
	off := int64(walHeaderSize)
	good := off
	for int64(len(data))-off >= 8 {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > walMaxPayload || off+8+n > int64(len(data)) {
			break
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		ops, err := DecodeMutations(payload)
		if err != nil {
			break
		}
		off += 8 + n
		good = off
		rep.Batches = append(rep.Batches, ops)
	}
	if good < int64(len(data)) {
		rep.Truncated = true
		rep.TruncatedBytes = int64(len(data)) - good
		if repair {
			if err := os.Truncate(path, good); err != nil {
				return rep, fmt.Errorf("graph: truncating torn delta-log tail: %w", err)
			}
		}
	}
	return rep, nil
}

// parseFloatValue parses the WAL's number rendering (Value.String of a
// KindNumber: decimal integers, 'g'-format floats, NaN, ±Inf).
func parseFloatValue(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
