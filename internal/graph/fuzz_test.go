package graph

import (
	"bytes"
	"io"
	"math"
	"testing"
)

// fuzzSeedGraph builds a small graph exercising every value type and both
// record kinds, so the serialized seeds cover the full grammar.
func fuzzSeedGraph() *Graph {
	g := New()
	a := g.AddNode("Person", map[string]Value{
		"gender":     Str("female"),
		"name":       Str("tab\tand=equals"),
		"yearsOfExp": Int(7),
		"score":      Num(0.25),
	})
	b := g.AddNode("Person", map[string]Value{"gender": Str("male")})
	o := g.AddNode("Org", map[string]Value{"employees": Int(120)})
	_ = g.AddEdge(a, b, "recommend")
	_ = g.AddEdge(a, o, "worksAt")
	_ = g.AddEdge(b, o, "worksAt")
	g.Freeze()
	return g
}

// FuzzReadTSV asserts the TSV reader never panics and that anything it
// accepts survives a write/read round trip unchanged in shape.
func FuzzReadTSV(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteTSV(&buf, fuzzSeedGraph()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("N\t0\tPerson\tgender=female\nN\t1\tOrg\nE\t0\t1\tworksAt\n"))
	f.Add([]byte("# comment\n\nN\t0\tA\n"))
	f.Add([]byte("N\t1\tA\n"))       // out-of-order id
	f.Add([]byte("E\t0\t1\tx\n"))    // edge before nodes
	f.Add([]byte("X\tjunk\n"))       // unknown record
	f.Add([]byte("N\t0\tA\tbroken")) // attribute without '='
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadTSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		roundTrip(t, g, WriteTSV, ReadTSV)
	})
}

// FuzzReadJSON is the same property for the JSON format.
func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fuzzSeedGraph()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"label":"A"}],"edges":[{"from":0,"to":0,"label":"x"}]}`))
	f.Add([]byte(`{"nodes":[{"label":"A"}],"edges":[{"from":5,"to":0,"label":"x"}]}`)) // bad endpoint
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		roundTrip(t, g, WriteJSON, ReadJSON)
	})
}

// fuzzValue decodes one Value from raw fuzz inputs, covering every kind
// including NaN, infinities and the empty string.
func fuzzValue(kind uint8, num float64, str string) Value {
	switch kind % 4 {
	case 0:
		return Null
	case 1:
		return Bool(num != 0)
	case 2:
		return Num(num)
	default:
		return Str(str)
	}
}

// FuzzValueTotalOrder checks that Compare is a total order on random value
// triples — reflexivity, antisymmetry, transitivity, Equal consistency and
// Op.Apply agreement. The sorted attribute indexes binary-search over this
// order, so any violation (the classic one: NaN comparing "equal" to
// everything) silently corrupts index-backed candidate selection.
func FuzzValueTotalOrder(f *testing.F) {
	f.Add(uint8(2), 1.5, "", uint8(2), math.NaN(), "", uint8(2), 2.5, "")
	f.Add(uint8(0), 0.0, "", uint8(1), 1.0, "", uint8(3), 0.0, "a")
	f.Add(uint8(3), 0.0, "a", uint8(3), 0.0, "ab", uint8(3), 0.0, "b")
	f.Add(uint8(2), math.Inf(-1), "", uint8(2), 0.0, "", uint8(2), math.Inf(1), "")
	f.Fuzz(func(t *testing.T, k1 uint8, n1 float64, s1 string,
		k2 uint8, n2 float64, s2 string, k3 uint8, n3 float64, s3 string) {
		u, v, w := fuzzValue(k1, n1, s1), fuzzValue(k2, n2, s2), fuzzValue(k3, n3, s3)
		for _, x := range []Value{u, v, w} {
			if x.Compare(x) != 0 {
				t.Fatalf("Compare(%v, %v) = %d, want 0 (reflexivity)", x, x, x.Compare(x))
			}
		}
		for _, p := range [][2]Value{{u, v}, {u, w}, {v, w}} {
			a, b := p[0], p[1]
			if sign(a.Compare(b)) != -sign(b.Compare(a)) {
				t.Fatalf("antisymmetry broken: Compare(%v,%v)=%d, Compare(%v,%v)=%d",
					a, b, a.Compare(b), b, a, b.Compare(a))
			}
			if a.Equal(b) != (a.Compare(b) == 0) {
				t.Fatalf("Equal(%v,%v) disagrees with Compare", a, b)
			}
			// Op.Apply must agree with Compare for every operator.
			for _, op := range []Op{OpLT, OpLE, OpEQ, OpGE, OpGT} {
				c := a.Compare(b)
				want := false
				switch op {
				case OpLT:
					want = c < 0
				case OpLE:
					want = c <= 0
				case OpEQ:
					want = c == 0
				case OpGE:
					want = c >= 0
				case OpGT:
					want = c > 0
				}
				if op.Apply(a, b) != want {
					t.Fatalf("Op %s disagrees with Compare on (%v, %v)", op, a, b)
				}
			}
		}
		if u.Compare(v) <= 0 && v.Compare(w) <= 0 && u.Compare(w) > 0 {
			t.Fatalf("transitivity broken: %v <= %v <= %v but Compare(%v,%v) > 0", u, v, w, u, w)
		}
	})
}

// roundTrip writes an accepted graph back out and reads it again; the
// copy must parse and match node/edge counts and per-node labels.
func roundTrip(t *testing.T, g *Graph, write func(io.Writer, *Graph) error, read func(io.Reader) (*Graph, error)) {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf, g); err != nil {
		t.Fatalf("rewriting accepted graph: %v", err)
	}
	g2, err := read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("rereading rewritten graph: %v\n%s", err, buf.Bytes())
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
			g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		if g.Label(NodeID(i)) != g2.Label(NodeID(i)) {
			t.Fatalf("node %d label %q -> %q", i, g.Label(NodeID(i)), g2.Label(NodeID(i)))
		}
	}
}
