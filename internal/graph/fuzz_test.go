package graph

import (
	"bytes"
	"io"
	"testing"
)

// fuzzSeedGraph builds a small graph exercising every value type and both
// record kinds, so the serialized seeds cover the full grammar.
func fuzzSeedGraph() *Graph {
	g := New()
	a := g.AddNode("Person", map[string]Value{
		"gender":     Str("female"),
		"name":       Str("tab\tand=equals"),
		"yearsOfExp": Int(7),
		"score":      Num(0.25),
	})
	b := g.AddNode("Person", map[string]Value{"gender": Str("male")})
	o := g.AddNode("Org", map[string]Value{"employees": Int(120)})
	_ = g.AddEdge(a, b, "recommend")
	_ = g.AddEdge(a, o, "worksAt")
	_ = g.AddEdge(b, o, "worksAt")
	g.Freeze()
	return g
}

// FuzzReadTSV asserts the TSV reader never panics and that anything it
// accepts survives a write/read round trip unchanged in shape.
func FuzzReadTSV(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteTSV(&buf, fuzzSeedGraph()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("N\t0\tPerson\tgender=female\nN\t1\tOrg\nE\t0\t1\tworksAt\n"))
	f.Add([]byte("# comment\n\nN\t0\tA\n"))
	f.Add([]byte("N\t1\tA\n"))        // out-of-order id
	f.Add([]byte("E\t0\t1\tx\n"))    // edge before nodes
	f.Add([]byte("X\tjunk\n"))       // unknown record
	f.Add([]byte("N\t0\tA\tbroken")) // attribute without '='
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadTSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		roundTrip(t, g, WriteTSV, ReadTSV)
	})
}

// FuzzReadJSON is the same property for the JSON format.
func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fuzzSeedGraph()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"label":"A"}],"edges":[{"from":0,"to":0,"label":"x"}]}`))
	f.Add([]byte(`{"nodes":[{"label":"A"}],"edges":[{"from":5,"to":0,"label":"x"}]}`)) // bad endpoint
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		roundTrip(t, g, WriteJSON, ReadJSON)
	})
}

// roundTrip writes an accepted graph back out and reads it again; the
// copy must parse and match node/edge counts and per-node labels.
func roundTrip(t *testing.T, g *Graph, write func(io.Writer, *Graph) error, read func(io.Reader) (*Graph, error)) {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf, g); err != nil {
		t.Fatalf("rewriting accepted graph: %v", err)
	}
	g2, err := read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("rereading rewritten graph: %v\n%s", err, buf.Bytes())
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
			g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		if g.Label(NodeID(i)) != g2.Label(NodeID(i)) {
			t.Fatalf("node %d label %q -> %q", i, g.Label(NodeID(i)), g2.Label(NodeID(i)))
		}
	}
}
