package graph

import (
	"math"
	"sort"
)

// AttrID is an interned attribute name. IDs are dense and assigned in
// first-use order; the dictionary is per graph.
type AttrID int32

// InvalidAttr is returned when an attribute name has never been interned.
const InvalidAttr AttrID = -1

// attrKV is the builder-time attribute record: nodes under construction
// carry a small slice of these, which Freeze transposes into columns.
type attrKV struct {
	id  AttrID
	val Value
}

// column is one attribute's values over all nodes in columnar form: a
// presence bitmap plus a typed dense array. When every present value shares
// one kind the column stores raw floats, strings or a bool bitmap; mixed
// attributes fall back to a []Value array. Columns are built at Freeze and
// immutable afterwards.
type column struct {
	kind    Kind // uniform kind of present values; KindNull when mixed
	count   int  // number of nodes carrying the attribute
	present []uint64
	nums    []float64 // kind == KindNumber
	strs    []string  // kind == KindString
	bools   []uint64  // kind == KindBool: value bitmap
	vals    []Value   // mixed kinds

	// refs/tab replace strs for string columns served from a mapped
	// snapshot: refs[v] is a 1-based reference into the graph's lazily
	// materialized string table (0 = absent). See storage.go.
	refs []uint32
	tab  *strTable
}

func bitGet(bm []uint64, i int) bool { return bm[i>>6]&(1<<uint(i&63)) != 0 }
func bitSet(bm []uint64, i int)      { bm[i>>6] |= 1 << uint(i&63) }

// has reports whether node v carries the attribute.
func (c *column) has(v NodeID) bool { return bitGet(c.present, int(v)) }

// value reads node v's value from the column (Null when absent).
func (c *column) value(v NodeID) Value {
	if !bitGet(c.present, int(v)) {
		return Null
	}
	switch {
	case c.vals != nil:
		return c.vals[v]
	case c.nums != nil:
		return Num(c.nums[v])
	case c.strs != nil:
		return Str(c.strs[v])
	case c.refs != nil:
		return Str(c.tab.str(c.refs[v]))
	default:
		return Bool(bitGet(c.bools, int(v)))
	}
}

// bytes estimates the column's memory footprint.
func (c *column) bytes() int64 {
	b := int64(len(c.present)+len(c.bools))*8 + int64(len(c.nums))*8
	for _, s := range c.strs {
		b += int64(len(s)) + 16
	}
	b += int64(len(c.vals))*32 + int64(len(c.refs))*4
	return b
}

// AppendMatching appends to dst the nodes of base whose attribute a
// satisfies "value op bound" — node for node exactly op.Apply(AttrValue(v,
// a), bound), but specialized for uniform numeric columns, where the
// three-way comparison reduces to two float compares per node instead of a
// boxed Value round trip (the matcher's literal scan path). Absent values
// read Null, which Compare orders before every number; NaN values order
// before every non-NaN number.
func (g *Graph) AppendMatching(dst, base []NodeID, a AttrID, op Op, bound Value) []NodeID {
	var minC, maxC int
	switch op {
	case OpLT:
		minC, maxC = -1, -1
	case OpLE:
		minC, maxC = -1, 0
	case OpEQ:
		minC, maxC = 0, 0
	case OpGE:
		minC, maxC = 0, 1
	case OpGT:
		minC, maxC = 1, 1
	default:
		return dst // OpInvalid matches nothing, as in Op.Apply
	}
	if g.frozen && a >= 0 && int(a) < len(g.cols) {
		if c := &g.cols[a]; c.nums != nil && bound.kind == KindNumber && !math.IsNaN(bound.num) {
			b := bound.num
			for _, v := range base {
				cmp := -1 // Null and NaN both sort below the bound
				if bitGet(c.present, int(v)) {
					switch x := c.nums[v]; {
					case x < b || math.IsNaN(x):
					case x > b:
						cmp = 1
					default:
						cmp = 0
					}
				}
				if cmp >= minC && cmp <= maxC {
					dst = append(dst, v)
				}
			}
			return dst
		}
	}
	for _, v := range base {
		if op.Apply(g.AttrValue(v, a), bound) {
			dst = append(dst, v)
		}
	}
	return dst
}

// labelAttr keys the per-(label, attribute) sorted indexes.
type labelAttr struct {
	label LabelID
	attr  AttrID
}

// MemoryStats reports the footprint of a frozen graph's columnar storage
// and sorted attribute indexes; the server surfaces it per graph.
type MemoryStats struct {
	// ColumnBytes is the estimated size of the attribute columns
	// (presence bitmaps plus typed value arrays).
	ColumnBytes int64 `json:"columnBytes"`
	// IndexBytes is the size of the sorted permutation indexes.
	IndexBytes int64 `json:"indexBytes"`
	// Indexes is the number of (label, attribute) indexes built.
	Indexes int `json:"indexes"`
}

// Memory returns the storage footprint computed at Freeze.
func (g *Graph) Memory() MemoryStats {
	g.mustFrozen("Memory")
	return g.mem
}

// internAttr returns the AttrID for name, creating it if needed.
func (g *Graph) internAttr(name string) AttrID {
	if id, ok := g.attrIDs[name]; ok {
		return id
	}
	if g.attrIDs == nil {
		g.attrIDs = make(map[string]AttrID)
	}
	id := AttrID(len(g.attrTable))
	g.attrTable = append(g.attrTable, name)
	g.attrIDs[name] = id
	return id
}

// AttrIDOf returns the interned ID of an attribute name, or InvalidAttr
// when the attribute never occurs in the graph.
func (g *Graph) AttrIDOf(name string) AttrID {
	if id, ok := g.attrIDs[name]; ok {
		return id
	}
	return InvalidAttr
}

// AttrNameOf returns the string form of an interned attribute.
func (g *Graph) AttrNameOf(id AttrID) string {
	if id < 0 || int(id) >= len(g.attrTable) {
		return ""
	}
	return g.attrTable[id]
}

// NumAttrs returns the number of distinct attribute names in the graph.
func (g *Graph) NumAttrs() int { return len(g.attrTable) }

// AttrValue returns node v's value for the interned attribute (Null when
// absent or when a == InvalidAttr). On a frozen graph this is a direct
// column read — the hot path literal evaluation compiles down to.
func (g *Graph) AttrValue(v NodeID, a AttrID) Value {
	if a < 0 || int(a) >= len(g.attrTable) {
		return Null
	}
	if g.frozen {
		return g.cols[a].value(v)
	}
	for _, kv := range g.nodeAttrs[v] {
		if kv.id == a {
			return kv.val
		}
	}
	return Null
}

// buildColumns transposes the builder-time per-node attribute slices into
// typed columns and computes the active domains; it releases the row
// storage afterwards (columns are the only post-freeze representation).
func (g *Graph) buildColumns() {
	n := len(g.nodeLabels)
	words := (n + 63) / 64
	g.cols = make([]column, len(g.attrTable))
	// First pass: presence, counts and kind uniformity.
	for i := range g.nodeAttrs {
		for _, kv := range g.nodeAttrs[i] {
			c := &g.cols[kv.id]
			if c.present == nil {
				c.present = make([]uint64, words)
				c.kind = kv.val.Kind()
			} else if c.kind != kv.val.Kind() {
				c.kind = KindNull // mixed
			}
			bitSet(c.present, i)
			c.count++
		}
	}
	for a := range g.cols {
		c := &g.cols[a]
		if c.present == nil {
			c.present = make([]uint64, words)
			continue
		}
		switch c.kind {
		case KindNumber:
			c.nums = make([]float64, n)
		case KindString:
			c.strs = make([]string, n)
		case KindBool:
			c.bools = make([]uint64, words)
		default:
			c.vals = make([]Value, n)
		}
	}
	// Second pass: fill the typed arrays, then release the row storage.
	for i := range g.nodeAttrs {
		for _, kv := range g.nodeAttrs[i] {
			c := &g.cols[kv.id]
			switch {
			case c.nums != nil:
				c.nums[i] = kv.val.Float()
			case c.strs != nil:
				c.strs[i] = kv.val.Text()
			case c.bools != nil:
				if kv.val.IsTrue() {
					bitSet(c.bools, i)
				}
			default:
				c.vals[i] = kv.val
			}
		}
	}
	g.nodeAttrs = nil
	g.domains = g.computeDomains()
	for a := range g.cols {
		g.mem.ColumnBytes += g.cols[a].bytes()
	}
	g.attrNames = make([]string, len(g.attrTable))
	copy(g.attrNames, g.attrTable)
	sort.Strings(g.attrNames)
}

// computeDomains derives the active domains — sorted distinct present
// values per attribute — by scanning the columns. Freeze calls it once;
// the snapshot v2 loader keeps it as the fallback when the serialized
// DOM2 section fails validation.
func (g *Graph) computeDomains() [][]Value {
	n := len(g.nodeLabels)
	domains := make([][]Value, len(g.cols))
	for a := range g.cols {
		c := &g.cols[a]
		vs := make([]Value, 0, c.count)
		for i := 0; i < n; i++ {
			if c.has(NodeID(i)) {
				vs = append(vs, c.value(NodeID(i)))
			}
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
		dedup := vs[:0]
		for i, v := range vs {
			if i == 0 || !v.Equal(vs[i-1]) {
				dedup = append(dedup, v)
			}
		}
		domains[a] = dedup
	}
	return domains
}

// buildIndexes constructs, for every (label, attribute) pair where the
// attribute occurs on at least one node of the label, a permutation of the
// label's nodes sorted by the attribute value under the Value total order
// (ties by NodeID). Nodes missing the attribute are included — Null sorts
// before everything, so a single binary search answers every comparison
// operator, including ones whose bound a missing value satisfies.
func (g *Graph) buildIndexes() {
	g.indexes = make(map[labelAttr][]NodeID)
	for label, nodes := range g.byLabel {
		// Which attributes occur on this label at all.
		seen := make(map[AttrID]bool)
		for _, v := range nodes {
			for a := range g.cols {
				if g.cols[a].has(v) {
					seen[AttrID(a)] = true
				}
			}
		}
		for a := range seen {
			c := &g.cols[a]
			perm := make([]NodeID, len(nodes))
			copy(perm, nodes)
			sort.Slice(perm, func(i, j int) bool {
				if cmp := c.value(perm[i]).Compare(c.value(perm[j])); cmp != 0 {
					return cmp < 0
				}
				return perm[i] < perm[j]
			})
			g.indexes[labelAttr{label, a}] = perm
			g.mem.IndexBytes += int64(len(perm)) * 4
			g.mem.Indexes++
		}
	}
}

// SortedIndex is a read-only view over one (label, attribute) permutation:
// the label's nodes ordered by attribute value. Obtain one from
// Graph.SortedIndex; the zero value is invalid.
type SortedIndex struct {
	col  *column
	perm []NodeID
}

// SortedIndex returns the sorted index for (label, attr), or an invalid
// view when the attribute never occurs on nodes with that label (every
// such node reads Null, so callers can evaluate the predicate once).
func (g *Graph) SortedIndex(label LabelID, attr AttrID) SortedIndex {
	g.mustFrozen("SortedIndex")
	if attr < 0 || int(attr) >= len(g.cols) {
		return SortedIndex{}
	}
	perm, ok := g.indexes[labelAttr{label, attr}]
	if !ok {
		return SortedIndex{}
	}
	return SortedIndex{col: &g.cols[attr], perm: perm}
}

// Valid reports whether the view is backed by an index.
func (ix SortedIndex) Valid() bool { return ix.perm != nil }

// Len returns the number of nodes in the index (the label's population).
func (ix SortedIndex) Len() int { return len(ix.perm) }

// At returns the i-th node in value order.
func (ix SortedIndex) At(i int) NodeID { return ix.perm[i] }

// ValueAt returns the attribute value of the i-th node in value order.
func (ix SortedIndex) ValueAt(i int) Value { return ix.col.value(ix.perm[i]) }

// Range binary-searches the half-open subrange [lo, hi) of the permutation
// whose values satisfy "value op bound" under the Value total order.
// Duplicate values at the boundaries resolve via lower/upper bound, so the
// range is exact. OpInvalid yields the empty range, matching Op.Apply.
func (ix SortedIndex) Range(op Op, bound Value) (lo, hi int) {
	n := len(ix.perm)
	lower := sort.Search(n, func(i int) bool {
		return ix.col.value(ix.perm[i]).Compare(bound) >= 0
	})
	switch op {
	case OpLT:
		return 0, lower
	case OpGE:
		return lower, n
	}
	upper := lower + sort.Search(n-lower, func(i int) bool {
		return ix.col.value(ix.perm[lower+i]).Compare(bound) > 0
	})
	switch op {
	case OpEQ:
		return lower, upper
	case OpLE:
		return 0, upper
	case OpGT:
		return upper, n
	default:
		return 0, 0
	}
}
