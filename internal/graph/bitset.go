package graph

import "math/bits"

// Bitset is a dense fixed-capacity bitset. The matcher uses bitsets over
// label-local node positions (see Graph.LabelPos) as candidate sets:
// membership tests and deletions are O(1) word operations instead of map
// probes, and the backing array is a fraction of a map's footprint. The
// zero value is an empty bitset of capacity 0; allocate with NewBitset.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset holding positions [0, n).
func NewBitset(n int) Bitset {
	if n < 0 {
		n = 0
	}
	return Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitset's capacity n.
func (b Bitset) Len() int { return b.n }

// Set marks position i. Panics when i is out of [0, n).
func (b Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		panic("graph: Bitset.Set out of range")
	}
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear unmarks position i. Panics when i is out of [0, n).
func (b Bitset) Clear(i int) {
	if i < 0 || i >= b.n {
		panic("graph: Bitset.Clear out of range")
	}
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports whether position i is marked; out-of-range positions read
// false so callers can probe with foreign indexes safely.
func (b Bitset) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of marked positions.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IntersectWith keeps only positions marked in both b and o. The two
// bitsets must have the same capacity.
func (b Bitset) IntersectWith(o Bitset) {
	if b.n != o.n {
		panic("graph: Bitset.IntersectWith capacity mismatch")
	}
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Words exposes the backing word array (aliased, not copied): word i>>6
// bit i&63 is position i. The matcher's propagation loop intersects
// candidate sets against scratch masks word-at-a-time through it.
func (b Bitset) Words() []uint64 { return b.words }

// ForEach calls fn for every marked position in ascending order.
func (b Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
