package graph

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// View helpers: reinterpret a fixed-width little-endian section of a
// snapshot v2 buffer as a typed slice. On little-endian hosts (every
// supported production target) the cast is zero-copy — the returned slice
// aliases the buffer, which is what makes mapped open O(open). On a
// big-endian host the helpers transparently decode into a fresh heap
// slice instead, trading the zero-copy property for correctness.
//
// Callers guarantee 8-byte alignment of b's base: v2 section offsets are
// multiples of 8 from the file start, the mmap base is page-aligned, and
// heap buffers go through alignSnapshotBuffer.

// hostLittleEndian reports whether the host's native integer byte order
// matches the snapshot's on-disk order.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// alignSnapshotBuffer returns data 8-byte aligned, copying into a fresh
// uint64-backed buffer in the (allocator-dependent, practically never
// taken) case the byte slice's base is misaligned.
func alignSnapshotBuffer(data []byte) []byte {
	if len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))%8 == 0 {
		return data
	}
	buf := make([]uint64, (len(data)+7)/8)
	aligned := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(buf)*8)[:len(data)]
	copy(aligned, data)
	return aligned
}

func viewU64(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

func viewF64(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func viewI32(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func viewU32(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func viewLabelIDs(b []byte) []LabelID {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*LabelID)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]LabelID, n)
	for i := range out {
		out[i] = LabelID(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func viewNodeIDs(b []byte) []NodeID {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*NodeID)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// viewEdges reinterprets 8-byte {To int32, Label int32} records. Edge is
// exactly that layout in memory, so the little-endian cast is direct.
func viewEdges(b []byte) []Edge {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*Edge)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]Edge, n)
	for i := range out {
		out[i].To = NodeID(binary.LittleEndian.Uint32(b[8*i:]))
		out[i].Label = LabelID(binary.LittleEndian.Uint32(b[8*i+4:]))
	}
	return out
}
