//go:build unix && !linux

package graph

// mmapExtraFlags: no portable pre-fault flag outside Linux; pages fault
// in on first access.
const mmapExtraFlags = 0
