package graph

import (
	"math"
	"testing"
)

// buildColumnSample exercises every storage shape the columnar layer has:
// a uniform numeric attribute, a uniform string attribute, a bool
// attribute, a mixed-kind attribute, and attributes missing from some
// nodes of the label.
func buildColumnSample(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddNode("P", map[string]Value{"age": Int(30), "name": Str("ann"), "vip": Bool(true)})
	g.AddNode("P", map[string]Value{"age": Int(40), "name": Str("bob"), "mix": Int(3)})
	g.AddNode("P", map[string]Value{"age": Int(25), "mix": Str("x")})
	g.AddNode("P", map[string]Value{"age": Int(40), "vip": Bool(false)})
	g.AddNode("P", nil)
	g.AddNode("Q", map[string]Value{"age": Int(99)})
	g.Freeze()
	return g
}

func TestColumnsPreserveValues(t *testing.T) {
	g := buildColumnSample(t)
	want := []map[string]Value{
		{"age": Int(30), "name": Str("ann"), "vip": Bool(true)},
		{"age": Int(40), "name": Str("bob"), "mix": Int(3)},
		{"age": Int(25), "mix": Str("x")},
		{"age": Int(40), "vip": Bool(false)},
		{},
		{"age": Int(99)},
	}
	for v, attrs := range want {
		got := g.Attrs(NodeID(v))
		if len(got) != len(attrs) {
			t.Fatalf("node %d: got %d attrs, want %d (%v)", v, len(got), len(attrs), got)
		}
		for name, val := range attrs {
			if !g.Attr(NodeID(v), name).Equal(val) {
				t.Errorf("node %d attr %q = %v, want %v", v, name, g.Attr(NodeID(v), name), val)
			}
			id := g.AttrIDOf(name)
			if !g.AttrValue(NodeID(v), id).Equal(val) {
				t.Errorf("node %d AttrValue(%q) = %v, want %v", v, name, g.AttrValue(NodeID(v), id), val)
			}
		}
	}
	// Absent attributes read Null through every accessor.
	if !g.Attr(4, "age").IsNull() || !g.AttrValue(4, g.AttrIDOf("age")).IsNull() {
		t.Error("absent attribute should read Null")
	}
	if !g.AttrValue(0, InvalidAttr).IsNull() || !g.AttrValue(0, AttrID(1000)).IsNull() {
		t.Error("out-of-range AttrID should read Null")
	}
}

func TestSortedIndexRangeMatchesScan(t *testing.T) {
	g := buildColumnSample(t)
	label := g.LookupLabel("P")
	base := g.NodesByLabel("P")
	ops := []Op{OpLT, OpLE, OpEQ, OpGE, OpGT}
	for _, attr := range []string{"age", "name", "vip", "mix"} {
		id := g.AttrIDOf(attr)
		ix := g.SortedIndex(label, id)
		if !ix.Valid() {
			t.Fatalf("no index for (P, %s)", attr)
		}
		if ix.Len() != len(base) {
			t.Fatalf("(P, %s) index has %d entries, want the full label population %d",
				attr, ix.Len(), len(base))
		}
		// Bounds probe below, at, between and above the data, duplicate
		// values, the Null value, and every kind.
		bounds := []Value{
			Null, Bool(false), Bool(true),
			Int(0), Int(25), Int(30), Int(33), Int(40), Int(100),
			Str(""), Str("ann"), Str("bob"), Str("zzz"), Num(math.NaN()),
		}
		for _, op := range ops {
			for _, bound := range bounds {
				lo, hi := ix.Range(op, bound)
				inRange := map[NodeID]bool{}
				for i := lo; i < hi; i++ {
					inRange[ix.At(i)] = true
				}
				for _, v := range base {
					want := op.Apply(g.AttrValue(v, id), bound)
					if inRange[v] != want {
						t.Errorf("(%s %s %v) node %d: index says %v, scan says %v",
							attr, op, bound, v, inRange[v], want)
					}
				}
			}
		}
		// OpInvalid yields the empty range, matching Op.Apply.
		if lo, hi := ix.Range(OpInvalid, Int(1)); lo != hi {
			t.Errorf("OpInvalid range = [%d,%d), want empty", lo, hi)
		}
	}
	// No index exists for an attribute absent from the label.
	if g.SortedIndex(g.LookupLabel("Q"), g.AttrIDOf("name")).Valid() {
		t.Error("(Q, name) should have no index")
	}
	if g.SortedIndex(label, InvalidAttr).Valid() {
		t.Error("InvalidAttr should have no index")
	}
}

func TestSortedIndexValueOrder(t *testing.T) {
	g := buildColumnSample(t)
	ix := g.SortedIndex(g.LookupLabel("P"), g.AttrIDOf("age"))
	for i := 1; i < ix.Len(); i++ {
		prev, cur := ix.ValueAt(i-1), ix.ValueAt(i)
		if c := prev.Compare(cur); c > 0 || (c == 0 && ix.At(i-1) >= ix.At(i)) {
			t.Fatalf("index not sorted by (value, NodeID) at %d: (%v,%d) then (%v,%d)",
				i, prev, ix.At(i-1), cur, ix.At(i))
		}
	}
	// Missing attributes sort first as Null.
	if !ix.ValueAt(0).IsNull() {
		t.Errorf("first entry should be the attribute-less node, got %v", ix.ValueAt(0))
	}
}

// TestAttrsReturnsCopy is the regression test for the encapsulation leak:
// Attrs used to hand out the node's internal map, so callers could corrupt
// the graph.
func TestAttrsReturnsCopy(t *testing.T) {
	for _, frozen := range []bool{false, true} {
		g := New()
		v := g.AddNode("P", map[string]Value{"age": Int(30)})
		if frozen {
			g.Freeze()
		}
		m := g.Attrs(v)
		m["age"] = Int(99)
		m["injected"] = Str("nope")
		if got := g.Attr(v, "age"); !got.Equal(Int(30)) {
			t.Errorf("frozen=%v: mutating Attrs() result changed the graph: age = %v", frozen, got)
		}
		if got := g.Attr(v, "injected"); !got.IsNull() {
			t.Errorf("frozen=%v: mutating Attrs() result injected an attribute: %v", frozen, got)
		}
	}
}

// TestAddNodeCopiesCallerMap is the regression test for the retention
// leak: AddNode used to keep the caller's map, so later caller mutations
// changed the node.
func TestAddNodeCopiesCallerMap(t *testing.T) {
	g := New()
	attrs := map[string]Value{"age": Int(30)}
	v := g.AddNode("P", attrs)
	attrs["age"] = Int(99)
	attrs["injected"] = Str("nope")
	if got := g.Attr(v, "age"); !got.Equal(Int(30)) {
		t.Errorf("caller mutation changed the node: age = %v", got)
	}
	if got := g.Attr(v, "injected"); !got.IsNull() {
		t.Errorf("caller mutation injected an attribute: %v", got)
	}
}

func TestMemoryStats(t *testing.T) {
	g := buildColumnSample(t)
	m := g.Memory()
	if m.ColumnBytes <= 0 {
		t.Errorf("ColumnBytes = %d, want > 0", m.ColumnBytes)
	}
	// P carries age, name, vip and mix; Q carries age: five indexes.
	if m.Indexes != 5 {
		t.Errorf("Indexes = %d, want 5", m.Indexes)
	}
	if m.IndexBytes <= 0 {
		t.Errorf("IndexBytes = %d, want > 0", m.IndexBytes)
	}
}

func TestAttrInterning(t *testing.T) {
	g := buildColumnSample(t)
	if g.AttrIDOf("no-such-attr") != InvalidAttr {
		t.Error("unknown attribute should intern to InvalidAttr")
	}
	if g.NumAttrs() != 4 {
		t.Errorf("NumAttrs = %d, want 4", g.NumAttrs())
	}
	for _, name := range []string{"age", "name", "vip", "mix"} {
		id := g.AttrIDOf(name)
		if id == InvalidAttr {
			t.Fatalf("attribute %q not interned", name)
		}
		if got := g.AttrNameOf(id); got != name {
			t.Errorf("AttrNameOf(%d) = %q, want %q", id, got, name)
		}
	}
}

func TestActiveDomainByID(t *testing.T) {
	g := buildColumnSample(t)
	byName := g.ActiveDomain("age")
	byID := g.ActiveDomainByID(g.AttrIDOf("age"))
	if len(byName) != len(byID) {
		t.Fatalf("domain lengths differ: %d vs %d", len(byName), len(byID))
	}
	for i := range byName {
		if !byName[i].Equal(byID[i]) {
			t.Errorf("domain[%d]: %v vs %v", i, byName[i], byID[i])
		}
	}
	want := []Value{Int(25), Int(30), Int(40), Int(99)}
	if len(byName) != len(want) {
		t.Fatalf("age domain = %v, want %v", byName, want)
	}
	for i := range want {
		if !byName[i].Equal(want[i]) {
			t.Fatalf("age domain = %v, want %v", byName, want)
		}
	}
	if g.ActiveDomainByID(InvalidAttr) != nil {
		t.Error("InvalidAttr domain should be nil")
	}
}
