package core

import (
	"fmt"
	"runtime"
	"testing"

	"fairsqg/internal/pareto"
)

// differentialConfigs enumerates the engine knob settings the core
// differential suite compares against the sequential reference: workers in
// {1, 4, GOMAXPROCS} with the candidate cache on and off. Workers=1 with
// cache on exercises the cached sequential path.
func differentialConfigs() []struct {
	name    string
	workers int
	cache   int
} {
	var out []struct {
		name    string
		workers int
		cache   int
	}
	seen := map[int]bool{}
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		if seen[w] {
			continue
		}
		seen[w] = true
		for _, cache := range []int{0, -1} {
			label := fmt.Sprintf("workers=%d/cache=%d", w, cache)
			out = append(out, struct {
				name    string
				workers int
				cache   int
			}{label, w, cache})
		}
	}
	return out
}

// archiveFingerprint renders a result set into a canonical comparable form:
// instance keys with their points and match sets, in collectSet order.
func archiveFingerprint(set []*Verified) []string {
	out := make([]string, len(set))
	for i, v := range set {
		out[i] = fmt.Sprintf("%s|%.9f|%.9f|%v", v.Q.Key(), v.Point.Div, v.Point.Cov, v.Matches)
	}
	return out
}

// runAll exercises every offline algorithm on one config and returns the
// per-algorithm fingerprints.
func runAll(t *testing.T, cfg *Config) map[string][]string {
	t.Helper()
	r := newRunnerT(t, cfg)
	out := map[string][]string{}
	for _, alg := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"enum", r.EnumQGen},
		{"rf", r.RfQGen},
		{"bi", r.BiQGen},
		// One slab worker keeps archive arrival order deterministic (slab
		// concurrency reorders same-box ties); the match-engine fan-out
		// under test runs inside verification and merges deterministically.
		{"par", func() (*Result, error) { return r.ParQGen(1) }},
	} {
		res, err := alg.run()
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		out[alg.name] = archiveFingerprint(res.Set)
	}
	return out
}

// TestDifferentialEngineVsSequential runs the full algorithm suite on the
// canonical fixture under every engine configuration and asserts the
// ε-Pareto archives (instance keys, points, match sets, order) are
// identical to the sequential reference. The fixture seed is logged so a
// divergence reproduces.
func TestDifferentialEngineVsSequential(t *testing.T) {
	const seed = 4
	g := fixtureGraph(t, seed)
	base := fixtureConfig(t, g, 0.3, 3)
	ref := runAll(t, base)
	for _, dc := range differentialConfigs() {
		cfg := *base
		cfg.MatchWorkers = dc.workers
		cfg.CandCacheSize = dc.cache
		got := runAll(t, &cfg)
		for alg, want := range ref {
			if !equalStrings(got[alg], want) {
				t.Errorf("seed %d: %s: %s archive diverged from sequential reference:\ngot  %v\nwant %v",
					seed, dc.name, alg, got[alg], want)
			}
		}
	}
}

// TestDifferentialOnline asserts OnlineQGen yields the identical final set,
// ε and eps history under every engine configuration: the stream order is
// fixed, so verification results are the only way configurations could
// diverge.
func TestDifferentialOnline(t *testing.T) {
	const seed = 4
	g := fixtureGraph(t, seed)
	base := fixtureConfig(t, g, 0.3, 3)
	run := func(cfg *Config) ([]string, float64) {
		r := newRunnerT(t, cfg)
		stream := NewRandomStream(cfg.Template, 120, 99)
		res, err := r.OnlineQGen(stream, OnlineOptions{K: 5, Window: 20})
		if err != nil {
			t.Fatal(err)
		}
		return archiveFingerprint(res.Set), res.Eps
	}
	wantSet, wantEps := run(base)
	for _, dc := range differentialConfigs() {
		cfg := *base
		cfg.MatchWorkers = dc.workers
		cfg.CandCacheSize = dc.cache
		gotSet, gotEps := run(&cfg)
		if gotEps != wantEps || !equalStrings(gotSet, wantSet) {
			t.Errorf("seed %d: %s: online run diverged (eps %v vs %v)\ngot  %v\nwant %v",
				seed, dc.name, gotEps, wantEps, gotSet, wantSet)
		}
	}
}

// TestDifferentialMultiOutput covers the multi-output verification path,
// which routes through ParEvalNodeFiltered when the engine is enabled.
func TestDifferentialMultiOutput(t *testing.T) {
	const seed = 50
	base := multiOutputConfig(t, seed)
	run := func(cfg *Config) []string {
		r := newRunnerT(t, cfg)
		res, err := r.RfQGen()
		if err != nil {
			t.Fatal(err)
		}
		return archiveFingerprint(res.Set)
	}
	want := run(base)
	for _, dc := range differentialConfigs() {
		cfg := *base
		cfg.MatchWorkers = dc.workers
		cfg.CandCacheSize = dc.cache
		if got := run(&cfg); !equalStrings(got, want) {
			t.Errorf("seed %d: %s: multi-output archive diverged:\ngot  %v\nwant %v",
				seed, dc.name, got, want)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParetoArchiveParityParQGen double-checks that ParQGen with the
// concurrent engine still satisfies the ε-Pareto contract against the full
// feasible space (Theorem 2), not just equality with the sequential run.
func TestParetoArchiveParityParQGen(t *testing.T) {
	g := fixtureGraph(t, 4)
	cfg := fixtureConfig(t, g, 0.3, 3)
	cfg.MatchWorkers = 4
	r := newRunnerT(t, cfg)
	all, err := r.AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]pareto.Point, len(all))
	for i, v := range all {
		ref[i] = v.Point
	}
	res, err := r.ParQGen(4)
	if err != nil {
		t.Fatal(err)
	}
	a := pareto.NewArchive[*Verified](cfg.Eps)
	for _, v := range res.Set {
		a.Update(v.Point, v)
	}
	if !a.EpsDominatesAll(ref) {
		t.Error("ParQGen(engine) set does not ε-dominate the feasible space")
	}
}
