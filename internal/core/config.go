// Package core implements the FairSQG query-generation algorithms: the
// naive EnumQGen, the exact-Pareto Kungs baseline, the refinement-driven
// RfQGen, the bidirectional BiQGen with sandwich pruning, the fixed-size
// OnlineQGen, and the ε-constraint CBM baseline. All operate on one shared
// configuration C = (G, Q(u_o), P, ε).
package core

import (
	"context"
	"fmt"
	"time"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/match"
	"fairsqg/internal/measure"
	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// DefaultMaxPairs is the pairwise-evaluation cap selected when
// Config.MaxPairs is zero; pass a negative MaxPairs for exact scoring.
const DefaultMaxPairs = 200000

// Config is the query-generation configuration C = (G, Q(u_o), P, ε)
// together with the evaluation knobs shared by all algorithms.
type Config struct {
	G        *graph.Graph
	Template *query.Template
	Groups   groups.Set
	// Eps is the ε-dominance tolerance (> 0).
	Eps float64

	// Ctx, when non-nil, bounds the run: every algorithm polls it between
	// verifications and hands it to the matcher so deadline expiry or
	// cancellation also aborts an in-flight instance evaluation. A cancelled
	// run returns the context's error instead of a partial result.
	Ctx context.Context
	// Engine, when non-nil, routes verification through this externally
	// owned match engine instead of a per-run one (MatchWorkers is then
	// ignored). The engine — and crucially its candidate cache — persists
	// across runs, which is how a long-lived service shares one warm cache
	// per graph across jobs. The engine's graph must be G, and the per-run
	// Stats report the engine's cumulative (not per-run) counters.
	Engine *match.Engine

	// Mode selects matching semantics (default Isomorphism).
	Mode match.Mode
	// Order selects the matcher's backtracking variable-ordering policy
	// (default match.OrderDynamic; match.OrderStatic is the ablation knob).
	// Results are identical in both settings.
	Order match.Order
	// ExtraOutputs names additional template nodes whose match sets join
	// the answer (the paper's multiple-output-nodes extension): the
	// diversity and coverage objectives are computed over the union of
	// q(u_o, G) and q(u, G) for each named node. Each named node must be
	// connected to the output node through fixed edges (Template
	// AlwaysActive) so the union stays refinement-monotone and the
	// pruning lemmas keep holding. The candidate-bound infeasibility
	// check is disabled in this mode.
	ExtraOutputs []string
	// Lambda balances relevance against dissimilarity in δ. The zero value
	// selects the default 0.5; set LambdaSet to request λ = 0 (the
	// pure-relevance objective) explicitly.
	Lambda float64
	// LambdaSet marks Lambda as explicitly chosen, distinguishing a
	// requested λ = 0 from an unset field.
	LambdaSet bool
	// Relevance overrides the default degree-based relevance r(u_o, ·).
	Relevance measure.RelevanceFunc
	// Distance overrides the default tuple edit distance d(·,·). The
	// function must be pure and symmetric: distances are memoized in a
	// pair cache and reused by the incremental scorer.
	Distance measure.DistanceFunc
	// DistanceAttrs restricts the default tuple distance to these
	// attributes (nil means all attributes of G).
	DistanceAttrs []string
	// MaxPairs caps pairwise distance evaluations per instance: 0 selects
	// the default cap (DefaultMaxPairs), a negative value requests exact
	// scoring with no cap, and a positive value caps evaluations at that
	// many sampled pairs.
	MaxPairs int
	// MaxBacktrackNodes bounds matcher search per candidate (0 unbounded).
	MaxBacktrackNodes int
	// MatchWorkers selects how instance verification runs: 0 or 1 keeps
	// the sequential reference Matcher; > 1 routes evaluation through a
	// concurrent match.Engine that partitions each instance's output-node
	// candidates across that many workers; < 0 selects GOMAXPROCS workers.
	// Results are identical in all settings.
	MatchWorkers int
	// CandCacheSize bounds the shared candidate cache that memoizes the
	// label+literal filtering phase across instances (refinement siblings
	// share most of their predicate sets): 0 selects the default size
	// (match.DefaultCandCacheSize entries), a negative value disables
	// caching. Results are identical in all settings.
	CandCacheSize int
	// TemplateRefinement enables the Spawn optimization that restricts
	// variable ladders to the d-hop neighborhood of the current matches.
	// Enabled by default through NewRunner; set DisableTemplateRefinement
	// to turn it off for ablations.
	DisableTemplateRefinement bool
	// DisableIncremental forces from-scratch verification even when a
	// verified parent's match set is available (ablation).
	DisableIncremental bool
	// DisableSandwich turns off BiQGen's sandwich pruning (ablation).
	DisableSandwich bool
	// DisableBoundPrune turns off the cheap infeasibility check that
	// rejects an instance when the per-group counts of its arc-consistent
	// candidate superset already violate a constraint (ablation).
	DisableBoundPrune bool
	// DisableAttrIndex forces candidate selection onto the linear-scan
	// reference path instead of the sorted per-(label, attribute) indexes
	// built at graph freeze (ablation). Results are identical in both
	// settings; only the access path changes.
	DisableAttrIndex bool
	// DisableIncScore forces every diversity evaluation to run from
	// scratch instead of deriving a child's score from its verified
	// parent's (the subset-delta path exploiting Lemma 2). Results are
	// bit-identical in both settings — both paths accumulate the same
	// fixed-point pair units — so this is an ablation knob, mirroring
	// DisableAttrIndex.
	DisableIncScore bool

	// OnVerified, when set, is invoked after every instance verification —
	// the hook behind the anytime-quality experiments (Fig. 9(e), 11(b)).
	OnVerified func(ev VerifyEvent)
}

// VerifyEvent describes one instance verification.
type VerifyEvent struct {
	// Seq is the 1-based verification sequence number.
	Seq int
	// Instance is the verified instance.
	Instance *query.Instance
	// Point holds (δ, f); valid only when Feasible.
	Point pareto.Point
	// Feasible reports whether the instance meets all coverage constraints.
	Feasible bool
	// Matches is |q(G)|.
	Matches int
}

// Validate checks the configuration; algorithms call it on entry.
func (c *Config) Validate() error {
	if c.G == nil || !c.G.Frozen() {
		return fmt.Errorf("core: config needs a frozen graph")
	}
	if c.Template == nil {
		return fmt.Errorf("core: config needs a template")
	}
	if err := c.Template.Validate(); err != nil {
		return err
	}
	for i := range c.Template.Vars {
		v := &c.Template.Vars[i]
		if v.Kind == query.RangeVar && len(v.Ladder) == 0 {
			return fmt.Errorf("core: range variable %q has no value ladder; call Template.BindDomains", v.Name)
		}
	}
	if len(c.Groups) == 0 {
		return fmt.Errorf("core: config needs at least one group")
	}
	if err := c.Groups.Validate(); err != nil {
		return err
	}
	if c.Eps <= 0 {
		return fmt.Errorf("core: eps must be positive, got %g", c.Eps)
	}
	if c.Engine != nil && c.Engine.Graph() != c.G {
		return fmt.Errorf("core: config engine is bound to a different graph")
	}
	if c.Lambda < 0 || c.Lambda > 1 {
		return fmt.Errorf("core: lambda must be in [0,1], got %g", c.Lambda)
	}
	if len(c.ExtraOutputs) > 0 {
		alwaysActive := map[int]bool{}
		for _, ni := range c.Template.AlwaysActive() {
			alwaysActive[ni] = true
		}
		for _, name := range c.ExtraOutputs {
			ni := c.Template.Node(name)
			if ni < 0 {
				return fmt.Errorf("core: extra output %q is not a template node", name)
			}
			if ni == c.Template.Output {
				return fmt.Errorf("core: extra output %q is already the output node", name)
			}
			if !alwaysActive[ni] {
				return fmt.Errorf("core: extra output %q must be connected to the output node via fixed edges; "+
					"a node behind an edge variable can activate mid-refinement, which breaks the union's monotonicity", name)
			}
		}
	}
	return nil
}

// Stats aggregates the work an algorithm performed.
type Stats struct {
	// Spawned counts instances generated (lattice nodes touched).
	Spawned int
	// Verified counts instances actually evaluated against G.
	Verified int
	// Feasible counts verified instances meeting all constraints.
	Feasible int
	// Pruned counts instances skipped without verification (infeasibility
	// backtracking, sandwich pruning, template-refinement caps).
	Pruned int
	// SandwichPairs counts sandwich bounds recorded (BiQGen only).
	SandwichPairs int
	// IncScores counts diversity evaluations served by the subset-delta
	// incremental path instead of a from-scratch pair loop.
	IncScores int
	// Matcher carries the matcher's counters (sequential and engine work
	// combined).
	Matcher match.Stats
	// Cache reports candidate-cache effectiveness; zero when disabled.
	Cache match.CacheStats
	// DistCache reports pair-distance cache effectiveness. With an
	// external Config.Engine the counters are the engine's cumulative ones
	// (like Cache), since the cache outlives the run by design.
	DistCache measure.PairCacheStats
}

// Verified is an evaluated instance: its answer and quality coordinates.
type Verified struct {
	Q *query.Instance
	// Matches is the answer: q(u_o, G), or in multi-output mode the union
	// of the per-node match sets.
	Matches  []graph.NodeID
	Point    pareto.Point
	Feasible bool
	// PerNode holds each output node's match set in multi-output mode
	// (keyed by template node index); nil otherwise.
	PerNode map[int][]graph.NodeID
	// score carries the diversity scorer's reusable state (relevance sum,
	// fixed-point pair sum and per-node contribution sums S(v)); children
	// whose matches subset this instance's re-score from the difference.
	// nil when the instance was sampled or infeasible.
	score *measure.ScoreState
}

// Result is the outcome of a generation run.
type Result struct {
	// Set is the computed ε-Pareto instance set (or exact Pareto set for
	// Kungs), ordered by decreasing diversity.
	Set []*Verified
	// Eps is the tolerance the set satisfies; for OnlineQGen this is the
	// final, possibly enlarged ε.
	Eps float64
	// Stats aggregates the run's work counters.
	Stats Stats
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Points extracts the quality coordinates of the result set.
func (r *Result) Points() []pareto.Point {
	ps := make([]pareto.Point, len(r.Set))
	for i, v := range r.Set {
		ps[i] = v.Point
	}
	return ps
}
