package core

import (
	"testing"

	"fairsqg/internal/match"
)

// TestIncScoreDifferential is the lattice-wide bit-compatibility check for
// the subset-delta diversity scorer: every algorithm, with and without the
// concurrent match engine, must produce exactly the same point sets whether
// the incremental path is on or off — the fixed-point accumulation makes
// the two scoring paths bit-identical, so samePointSets compares with ==.
func TestIncScoreDifferential(t *testing.T) {
	g := fixtureGraph(t, 21)
	algorithms := []struct {
		name string
		run  func(r *Runner) (*Result, error)
	}{
		{"enum", func(r *Runner) (*Result, error) { return r.EnumQGen() }},
		{"rf", func(r *Runner) (*Result, error) { return r.RfQGen() }},
		{"bi", func(r *Runner) (*Result, error) { return r.BiQGen() }},
		{"par", func(r *Runner) (*Result, error) { return r.ParQGen(2) }},
	}
	for _, workers := range []int{0, 2} {
		for _, alg := range algorithms {
			mk := func(disable bool) *Result {
				cfg := fixtureConfig(t, g, 0.3, 3)
				cfg.MatchWorkers = workers
				cfg.MaxPairs = -1 // exact scoring end to end
				cfg.DisableIncScore = disable
				res, err := alg.run(newRunnerT(t, cfg))
				if err != nil {
					t.Fatalf("%s workers=%d disable=%v: %v", alg.name, workers, disable, err)
				}
				return res
			}
			inc, noInc := mk(false), mk(true)
			if !samePointSets(inc.Points(), noInc.Points()) {
				t.Errorf("%s workers=%d: incremental scoring changed results:\n%v\nvs\n%v",
					alg.name, workers, inc.Points(), noInc.Points())
			}
			if alg.name != "enum" && inc.Stats.IncScores == 0 {
				t.Errorf("%s workers=%d: refinement run took no incremental scores", alg.name, workers)
			}
			if noInc.Stats.IncScores != 0 {
				t.Errorf("%s workers=%d: ablated run counted %d incremental scores",
					alg.name, workers, noInc.Stats.IncScores)
			}
		}
	}
}

// TestIncScoreDifferentialMultiOutput extends the differential to the
// multiple-output-nodes mode, where the scored set is a union of per-node
// match sets (still refinement-monotone, so the delta path applies).
func TestIncScoreDifferentialMultiOutput(t *testing.T) {
	mk := func(disable bool) *Result {
		cfg := multiOutputConfig(t, 22)
		cfg.MaxPairs = -1
		cfg.DisableIncScore = disable
		res, err := newRunnerT(t, cfg).RfQGen()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	inc, noInc := mk(false), mk(true)
	if !samePointSets(inc.Points(), noInc.Points()) {
		t.Errorf("multi-output incremental scoring changed results:\n%v\nvs\n%v",
			inc.Points(), noInc.Points())
	}
	if inc.Stats.IncScores == 0 {
		t.Error("multi-output run took no incremental scores")
	}
}

// TestIncScoreSampledBoundary: with a tiny MaxPairs every large set is
// sampled (nil scorer state), so the delta path must quietly stand down
// without changing any score.
func TestIncScoreSampledBoundary(t *testing.T) {
	g := fixtureGraph(t, 23)
	mk := func(disable bool) *Result {
		cfg := fixtureConfig(t, g, 0.3, 3)
		cfg.MaxPairs = 25
		cfg.DisableIncScore = disable
		res, err := newRunnerT(t, cfg).RfQGen()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	inc, noInc := mk(false), mk(true)
	if !samePointSets(inc.Points(), noInc.Points()) {
		t.Errorf("sampled-boundary runs diverged:\n%v\nvs\n%v", inc.Points(), noInc.Points())
	}
}

// TestLambdaSentinels: λ = 0 must be requestable (LambdaSet) while the
// plain zero value keeps selecting the documented default 0.5.
func TestLambdaSentinels(t *testing.T) {
	g := fixtureGraph(t, 24)
	lam := func(cfg *Config) float64 { return newRunnerT(t, cfg).div.Lambda }

	cfg := fixtureConfig(t, g, 0.3, 3)
	if got := lam(cfg); got != 0.5 {
		t.Errorf("unset Lambda → λ = %v, want default 0.5", got)
	}
	cfg = fixtureConfig(t, g, 0.3, 3)
	cfg.Lambda, cfg.LambdaSet = 0, true
	if got := lam(cfg); got != 0 {
		t.Errorf("explicit λ = 0 rewritten to %v", got)
	}
	cfg = fixtureConfig(t, g, 0.3, 3)
	cfg.Lambda = 0.3
	if got := lam(cfg); got != 0.3 {
		t.Errorf("λ = 0.3 became %v", got)
	}

	// λ = 0 must actually drop the pairwise term: every feasible point's
	// diversity is then the pure relevance sum, which the root maximizes.
	cfg = fixtureConfig(t, g, 0.3, 3)
	cfg.Lambda, cfg.LambdaSet = 0, true
	r := newRunnerT(t, cfg)
	all, err := r.AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no feasible instances in fixture")
	}
	for _, v := range all {
		rel := 0.0
		for _, m := range v.Matches {
			rel += r.scoreRel(m)
		}
		if diff := v.Point.Div - rel; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("λ=0 diversity %v != relevance sum %v", v.Point.Div, rel)
		}
	}
}

// TestMaxPairsSentinels: 0 selects the default cap, negative requests
// exact scoring, positive passes through.
func TestMaxPairsSentinels(t *testing.T) {
	g := fixtureGraph(t, 25)
	mp := func(v int) int {
		cfg := fixtureConfig(t, g, 0.3, 3)
		cfg.MaxPairs = v
		return newRunnerT(t, cfg).div.MaxPairs
	}
	if got := mp(0); got != DefaultMaxPairs {
		t.Errorf("MaxPairs 0 → %d, want default %d", got, DefaultMaxPairs)
	}
	if got := mp(-1); got != 0 {
		t.Errorf("MaxPairs -1 → %d, want 0 (exact)", got)
	}
	if got := mp(7); got != 7 {
		t.Errorf("MaxPairs 7 → %d", got)
	}
}

// TestEngineSharedDistCache: two runs over one external engine must share
// the pair-distance cache — the second run's distances are warm.
func TestEngineSharedDistCache(t *testing.T) {
	g := fixtureGraph(t, 26)
	engine := match.NewEngine(g, match.EngineOptions{Workers: 2})
	run := func() Stats {
		cfg := fixtureConfig(t, g, 0.3, 3)
		cfg.Engine = engine
		cfg.MaxPairs = -1
		res, err := newRunnerT(t, cfg).RfQGen()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	first := run()
	if first.DistCache.Evals == 0 {
		t.Fatal("first run evaluated no distances")
	}
	second := run()
	if second.DistCache.Hits <= first.DistCache.Hits {
		t.Errorf("second run gained no cache hits (first %+v, second %+v)",
			first.DistCache, second.DistCache)
	}
	if second.DistCache.Misses != first.DistCache.Misses {
		t.Errorf("second run missed on already-cached pairs: first %d, second %d misses",
			first.DistCache.Misses, second.DistCache.Misses)
	}
	if es := engine.Stats(); es.Dist != second.DistCache {
		t.Errorf("engine stats %+v diverge from run stats %+v", es.Dist, second.DistCache)
	}
}

// TestPerRunDistCacheCounters: without an external engine the pair-cache
// counters are per run — a second invocation on one Runner starts cold.
func TestPerRunDistCacheCounters(t *testing.T) {
	g := fixtureGraph(t, 27)
	cfg := fixtureConfig(t, g, 0.3, 3)
	cfg.MaxPairs = -1
	r := newRunnerT(t, cfg)
	a, err := r.RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.DistCache.Evals == 0 || b.Stats.DistCache.Evals == 0 {
		t.Fatalf("runs reported no distance evals: %+v, %+v", a.Stats.DistCache, b.Stats.DistCache)
	}
	if b.Stats.DistCache.Evals > a.Stats.DistCache.Evals {
		t.Errorf("second run evaluated more than the first from cold: %+v vs %+v",
			a.Stats.DistCache, b.Stats.DistCache)
	}
	if !samePointSets(a.Points(), b.Points()) {
		t.Error("repeated runs diverged")
	}
}
