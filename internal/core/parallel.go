package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// ParQGen is the parallel query generator the paper's conclusion sketches
// as future work: it partitions the instance lattice into slabs along the
// variable with the most binding options (each slab fixes that variable to
// one level) and explores the slabs concurrently with the RfQGen strategy.
// Slab sub-lattices are disjoint and each retains the monotonicity
// properties of Lemma 2, so per-slab infeasibility pruning stays sound;
// results merge through one mutex-guarded Update archive, which keeps the
// ε-Pareto invariant because Update is correct under any arrival order.
//
// workers <= 0 selects GOMAXPROCS. The result carries aggregated stats.
func (r *Runner) ParQGen(workers int) (*Result, error) {
	if err := r.cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r.resetStats()
	start := time.Now()
	plan := PlanSlabs(r.cfg.Template)
	if plan.SplitVar < 0 {
		// No variables at all: a single instance.
		res, err := r.RfQGen()
		if err != nil {
			return nil, err
		}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	var (
		mu      sync.Mutex
		archive = pareto.NewArchive[*Verified](r.cfg.Eps)
		total   Stats
		firstMu sync.Mutex
		callErr error
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns an independent Runner (the sequential matcher
			// scratch and the verification cache are not safe for concurrent
			// use) but adopts the parent's engine and candidate cache, which
			// are: slab workers share one warm filter cache and one pool of
			// matcher scratch states.
			local, err := NewRunner(r.cfg)
			if err != nil {
				firstMu.Lock()
				if callErr == nil {
					callErr = err
				}
				firstMu.Unlock()
				return
			}
			local.adoptEngine(r)
			sp := newSpawner(local)
			for level := range jobs {
				exploreSlab(local, sp, plan.SplitVar, level, archive, &mu)
			}
			mu.Lock()
			// Sum the worker-private counters only; shared engine/cache
			// counters are folded in once after all workers finish.
			total.Spawned += local.stats.Spawned
			total.Verified += local.stats.Verified
			total.Feasible += local.stats.Feasible
			total.Pruned += local.stats.Pruned
			total.IncScores += local.stats.IncScores
			total.Matcher.Evals += local.matcher.Stats.Evals
			total.Matcher.CandidatesChecked += local.matcher.Stats.CandidatesChecked
			total.Matcher.BacktrackNodes += local.matcher.Stats.BacktrackNodes
			mu.Unlock()
		}()
	}
	for _, l := range plan.Levels {
		jobs <- l
	}
	close(jobs)
	wg.Wait()
	if callErr != nil {
		return nil, fmt.Errorf("core: ParQGen worker: %w", callErr)
	}
	if err := r.err(); err != nil {
		return nil, err
	}
	if r.engine != nil {
		es := r.engine.Stats()
		total.Matcher.Evals += int(es.Evals)
		total.Matcher.CandidatesChecked += int(es.CandidatesChecked)
		total.Matcher.BacktrackNodes += int(es.BacktrackNodes)
		total.Cache = es.Cache
	} else if r.matcher.Cache != nil {
		total.Cache = r.matcher.Cache.Stats()
	}
	if r.pairCache != nil {
		// Workers share the parent's pair cache through adoptEngine, so one
		// snapshot covers every slab's distance evaluations.
		total.DistCache = r.pairCache.Stats()
	}
	mu.Lock()
	set := collectSet(archive)
	mu.Unlock()
	return &Result{
		Set:     set,
		Eps:     r.cfg.Eps,
		Stats:   total,
		Elapsed: time.Since(start),
	}, nil
}

// pickSplitVariable selects the variable with the largest number of
// binding options, or -1 when the template has no variables.
func pickSplitVariable(t *query.Template) int {
	best, bestOpts := -1, 0
	for vi := range t.Vars {
		opts := 2 // edge variable: absent/present
		if t.Vars[vi].Kind == query.RangeVar {
			opts = len(t.Vars[vi].Ladder) + 1
		}
		if opts > bestOpts {
			best, bestOpts = vi, opts
		}
	}
	return best
}

// exploreSlab runs the RfQGen depth-first strategy inside one slab: the
// split variable is pinned to level, and spawned children never touch it.
// The archive may be shared across goroutines (ParQGen: mu is a real
// mutex) or slab-private (RunSlab: mu is a no-op locker).
func exploreSlab(r *Runner, sp *spawner, splitVar, level int,
	archive *pareto.Archive[*Verified], mu sync.Locker) {
	t := r.cfg.Template
	visited := make(map[string]bool)
	var explore func(in query.Instantiation, parent *Verified)
	explore = func(in query.Instantiation, parent *Verified) {
		if r.err() != nil {
			return
		}
		q := query.MustInstance(t, in)
		if visited[q.Key()] {
			return
		}
		visited[q.Key()] = true
		r.stats.Spawned++
		v := r.verify(q, parent)
		if !v.Feasible {
			r.stats.Pruned += len(query.RefineSteps(t, in))
			return
		}
		mu.Lock()
		archive.Update(v.Point, v)
		mu.Unlock()
		for _, child := range sp.refine(v) {
			if child[splitVar] != level {
				continue // stay inside the slab
			}
			explore(child, v)
		}
	}
	rootIn := query.Root(t)
	rootIn[splitVar] = level
	explore(rootIn, nil)
}
