package core

import (
	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/match"
)

// MutationEvent announces that the runner's graph advanced to a new
// generation. The event owns a reference to the generation (retained by
// the source); OnlineQGen adopts it and releases superseded ones.
type MutationEvent struct {
	// Graph is the generation that resulted from the mutation batch.
	Graph *graph.Graph
}

// MutationSource yields pending mutation events without blocking: Poll
// returns nil when nothing happened since the last call. OnlineQGen polls
// it between stream arrivals and re-scores its archived instances against
// the newest generation (coalescing a burst of batches into one re-score).
type MutationSource interface {
	Poll() *MutationEvent
}

// ChanMutations adapts a channel of events into a MutationSource, e.g.
// one fed from the server's Options.OnMutate hook.
type ChanMutations struct {
	C <-chan MutationEvent
}

// Poll implements MutationSource.
func (s *ChanMutations) Poll() *MutationEvent {
	select {
	case ev, ok := <-s.C:
		if !ok {
			return nil
		}
		return &ev
	default:
		return nil
	}
}

// LiveMutations adapts a graph.Live into a MutationSource by version
// polling: Poll reports an event whenever the live graph's current
// generation is newer than the one last reported. The returned event
// carries a retained reference (ownership passes to the consumer).
type LiveMutations struct {
	L    *graph.Live
	last uint64
}

// Poll implements MutationSource.
func (s *LiveMutations) Poll() *MutationEvent {
	if s.L.Version() == s.last {
		return nil
	}
	g := s.L.Acquire()
	if g.Version() == s.last { // raced with a concurrent Poll
		g.Close()
		return nil
	}
	s.last = g.Version()
	return &MutationEvent{Graph: g}
}

// Retarget rebinds the runner to a new generation of its graph: matcher,
// engine, group counter, population and scoring functions are rebuilt
// over g, and the verification memo is dropped (its entries scored the
// old generation). The candidate and distance caches carry over — their
// keys are scoped by the generation key, so pre-mutation entries can
// never answer post-mutation queries, while entries the new generation
// re-derives stay warm. An external Config.Engine bound to another
// generation is abandoned (the runner builds its own); generation
// lifetimes stay with the caller — Retarget never closes g.
func (r *Runner) Retarget(g *graph.Graph) {
	if g == r.cfg.G {
		return
	}
	cfg := *r.cfg
	cfg.G = g
	if cfg.Engine != nil && cfg.Engine.Graph() != g {
		cfg.Engine = nil
	}
	r.cfg = &cfg

	m := match.New(g)
	m.Mode = cfg.Mode
	m.Order = cfg.Order
	m.MaxBacktrackNodes = cfg.MaxBacktrackNodes
	m.DisableAttrIndex = cfg.DisableAttrIndex
	m.Stats = r.matcher.Stats // counters span generations within one run
	if cfg.Ctx != nil {
		m.BindContext(r.ctx)
	}
	oldEngine, oldCache := r.engine, r.matcher.Cache
	r.matcher = m
	if oldEngine != nil {
		r.engine = match.NewEngine(g, match.EngineOptions{
			Mode:              cfg.Mode,
			Order:             cfg.Order,
			MaxBacktrackNodes: cfg.MaxBacktrackNodes,
			Workers:           cfg.MatchWorkers,
			CandCacheSize:     cfg.CandCacheSize,
			DisableAttrIndex:  cfg.DisableAttrIndex,
			SharedCache:       oldEngine.Cache(),
			SharedDistCache:   oldEngine.DistCache(),
		})
		m.Cache = r.engine.Cache()
	} else {
		m.Cache = oldCache
	}
	r.counter = groups.NewCounter(g.NumNodes(), cfg.Groups)

	outLabel := cfg.Template.Nodes[cfg.Template.Output].Label
	population := g.CountLabel(outLabel)
	seen := map[string]bool{outLabel: true}
	for _, ni := range r.extraNodes {
		if l := cfg.Template.Nodes[ni].Label; !seen[l] {
			seen[l] = true
			population += g.CountLabel(l)
		}
	}
	r.population = population
	r.cache = make(map[string]*Verified)
	r.initScoring()
}

// Close releases the graph generation the runner adopted from a mutation
// source, if any. Runners that never consumed a MutationSource need no
// Close; calling it twice is safe.
func (r *Runner) Close() error {
	if r.ownedG == nil {
		return nil
	}
	err := r.ownedG.Close()
	r.ownedG = nil
	return err
}
