package core

import (
	"testing"

	"fairsqg/internal/match"
	"fairsqg/internal/query"
)

// TestVerifyCache: repeated verification of the same instance hits the
// cache (one matcher eval, one verified counter increment).
func TestVerifyCache(t *testing.T) {
	g := fixtureGraph(t, 40)
	cfg := fixtureConfig(t, g, 0.3, 3)
	r := newRunnerT(t, cfg)
	root := query.MustInstance(cfg.Template, query.Root(cfg.Template))
	v1 := r.verify(root, nil)
	evalsAfterFirst := r.Stats().Matcher.Evals
	v2 := r.verify(root, nil)
	if v1 != v2 {
		t.Error("cache miss on identical instance")
	}
	if r.Stats().Matcher.Evals != evalsAfterFirst {
		t.Error("cached verification re-ran the matcher")
	}
	if r.Stats().Verified != 1 {
		t.Errorf("verified counter = %d", r.Stats().Verified)
	}
}

// TestRunnerReuse: running two algorithms on one Runner resets counters and
// caches between runs and produces equal-quality sets.
func TestRunnerReuse(t *testing.T) {
	g := fixtureGraph(t, 41)
	cfg := fixtureConfig(t, g, 0.3, 3)
	r := newRunnerT(t, cfg)
	res1, err := r.RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.EnumQGen()
	if err != nil {
		t.Fatal(err)
	}
	// Counters reset between runs: the enumerator's count equals the
	// instance space, not the sum of both runs.
	if res2.Stats.Verified > cfg.Template.InstanceSpaceSize() {
		t.Errorf("stats leaked across runs: %d > %d", res2.Stats.Verified, cfg.Template.InstanceSpaceSize())
	}
	if res1.Stats.Verified > res2.Stats.Verified {
		t.Errorf("RfQGen verified more than Enum: %d vs %d", res1.Stats.Verified, res2.Stats.Verified)
	}
	if !samePointSets(res1.Points(), res2.Points()) {
		t.Error("algorithms disagree after reuse")
	}
}

// TestHomomorphismMode: homomorphism matching admits at least the
// isomorphism answers and the pipeline stays valid end to end.
func TestHomomorphismMode(t *testing.T) {
	g := fixtureGraph(t, 42)
	iso := fixtureConfig(t, g, 0.3, 3)
	hom := fixtureConfig(t, g, 0.3, 3)
	hom.Mode = match.Homomorphism
	isoRes, err := newRunnerT(t, iso).RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	homRes, err := newRunnerT(t, hom).RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	if len(homRes.Set) == 0 || len(isoRes.Set) == 0 {
		t.Fatal("empty results")
	}
	// The most relaxed feasible instance must not lose matches when
	// injectivity is dropped.
	isoRoot := isoRes.Set[0]
	homRoot := homRes.Set[0]
	if len(homRoot.Matches) < len(isoRoot.Matches) {
		t.Errorf("homomorphism lost matches: %d < %d", len(homRoot.Matches), len(isoRoot.Matches))
	}
}

// TestResultPoints: Points mirrors the set's coordinates.
func TestResultPoints(t *testing.T) {
	g := fixtureGraph(t, 43)
	cfg := fixtureConfig(t, g, 0.3, 3)
	res, err := newRunnerT(t, cfg).RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points()
	if len(pts) != len(res.Set) {
		t.Fatal("length mismatch")
	}
	for i := range pts {
		if pts[i] != res.Set[i].Point {
			t.Fatal("points drifted")
		}
	}
	// collectSet orders by decreasing diversity.
	for i := 1; i < len(res.Set); i++ {
		if res.Set[i].Point.Div > res.Set[i-1].Point.Div {
			t.Fatal("result not ordered by diversity")
		}
	}
}

// TestOnVerifiedSeesBoundPrunedInstances: the trace hook fires for
// bound-pruned (certainly infeasible) instances too, with Feasible=false.
func TestOnVerifiedSeesBoundPrunedInstances(t *testing.T) {
	g := fixtureGraph(t, 44)
	cfg := fixtureConfig(t, g, 0.3, 3)
	infeasibleSeen := 0
	cfg.OnVerified = func(ev VerifyEvent) {
		if !ev.Feasible {
			infeasibleSeen++
		}
	}
	if _, err := newRunnerT(t, cfg).EnumQGen(); err != nil {
		t.Fatal(err)
	}
	if infeasibleSeen == 0 {
		t.Error("no infeasible instances traced; fixture too easy or hook broken")
	}
}
