package core

import (
	"math/rand"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/measure"
	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// fixtureGraph builds a seeded professional network small enough for
// exhaustive enumeration in tests: ~300 persons with gender/experience
// attributes, 15 orgs, recommend/worksAt edges.
func fixtureGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	numPersons, numOrgs := 300, 15
	persons := make([]graph.NodeID, numPersons)
	titles := []string{"Director", "Engineer", "Manager", "Analyst"}
	majors := []string{"cs", "math", "bio", "econ", "art", "law"}
	for i := range persons {
		gender := "male"
		if rng.Float64() < 0.4 {
			gender = "female"
		}
		title := titles[rng.Intn(len(titles))]
		if i%4 == 0 {
			title = "Director" // keep the output label populated
		}
		persons[i] = g.AddNode("Person", map[string]graph.Value{
			"gender":     graph.Str(gender),
			"title":      graph.Str(title),
			"major":      graph.Str(majors[rng.Intn(len(majors))]),
			"yearsOfExp": graph.Int(int64(rng.Intn(20))),
		})
	}
	orgs := make([]graph.NodeID, numOrgs)
	for i := range orgs {
		orgs[i] = g.AddNode("Org", map[string]graph.Value{
			"employees": graph.Int(int64(10 + rng.Intn(5000))),
		})
	}
	for _, p := range persons {
		if err := g.AddEdge(p, orgs[rng.Intn(numOrgs)], "worksAt"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < numPersons*5; i++ {
		from := persons[rng.Intn(numPersons)]
		to := persons[rng.Intn(numPersons)]
		if from != to {
			if err := g.AddEdge(from, to, "recommend"); err != nil {
				t.Fatal(err)
			}
		}
	}
	g.Freeze()
	return g
}

// fixtureConfig builds the canonical test configuration: talent template
// with 2 range variables and 1 edge variable, gender groups with equal
// opportunity constraints.
func fixtureConfig(t testing.TB, g *graph.Graph, eps float64, want int) *Config {
	t.Helper()
	tpl, err := query.NewBuilder("talent").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").RangeVar("x1", "u1", "yearsOfExp", graph.OpGE).
		Node("o", "Org").RangeVar("x2", "o", "employees", graph.OpGE).
		VarEdge("e1", "u1", "u_o", "recommend").
		Edge("u1", "o", "worksAt").
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, query.DomainOptions{MaxValues: 5}); err != nil {
		t.Fatal(err)
	}
	set := groups.EqualOpportunity(groups.ByAttribute(g, "Person", "gender"), want)
	return &Config{G: g, Template: tpl, Groups: set, Eps: eps}
}

func TestConfigValidate(t *testing.T) {
	g := fixtureGraph(t, 1)
	good := fixtureConfig(t, g, 0.3, 3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := *good
	bad.Eps = 0
	if err := bad.Validate(); err == nil {
		t.Error("eps=0 accepted")
	}
	bad = *good
	bad.Groups = nil
	if err := bad.Validate(); err == nil {
		t.Error("no groups accepted")
	}
	bad = *good
	bad.Lambda = 2
	if err := bad.Validate(); err == nil {
		t.Error("lambda=2 accepted")
	}
	bad = *good
	bad.G = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil graph accepted")
	}
	// Unbound ladders are rejected.
	tpl2, err := query.NewBuilder("t").
		Node("a", "Person").RangeVar("x", "a", "yearsOfExp", graph.OpGE).
		Output("a").Build()
	if err != nil {
		t.Fatal(err)
	}
	bad = *good
	bad.Template = tpl2
	if err := bad.Validate(); err == nil {
		t.Error("unbound ladder accepted")
	}
}

func TestEnumerateInstantiations(t *testing.T) {
	g := fixtureGraph(t, 1)
	cfg := fixtureConfig(t, g, 0.3, 3)
	count := 0
	seen := map[string]bool{}
	EnumerateInstantiations(cfg.Template, func(in query.Instantiation) bool {
		count++
		seen[in.Key()] = true
		return true
	})
	want := cfg.Template.InstanceSpaceSize() // (5+1)*(5+1)*2 = 72
	if count != want || len(seen) != want {
		t.Errorf("enumerated %d (%d unique), want %d", count, len(seen), want)
	}
	// Early stop.
	count = 0
	EnumerateInstantiations(cfg.Template, func(query.Instantiation) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop at %d", count)
	}
}

// newRunnerT builds a runner or fails the test.
func newRunnerT(t testing.TB, cfg *Config) *Runner {
	t.Helper()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestAlgorithmsProduceValidEpsParetoSets is the central cross-check: for
// several seeds, EnumQGen, RfQGen and BiQGen must all return sets that
// ε-dominate every feasible instance of I(Q), and Kungs must return the
// exact Pareto front.
func TestAlgorithmsProduceValidEpsParetoSets(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := fixtureGraph(t, seed)
		cfg := fixtureConfig(t, g, 0.3, 3)
		ref, err := newRunnerT(t, cfg).AllFeasible()
		if err != nil {
			t.Fatal(err)
		}
		if len(ref) == 0 {
			t.Fatalf("seed %d: fixture has no feasible instances", seed)
		}
		refPoints := make([]pareto.Point, len(ref))
		for i, v := range ref {
			refPoints[i] = v.Point
		}

		runs := []struct {
			name string
			run  func(*Runner) (*Result, error)
		}{
			{"EnumQGen", (*Runner).EnumQGen},
			{"RfQGen", (*Runner).RfQGen},
			{"BiQGen", (*Runner).BiQGen},
		}
		for _, alg := range runs {
			res, err := alg.run(newRunnerT(t, cfg))
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, alg.name, err)
			}
			if len(res.Set) == 0 {
				t.Fatalf("seed %d %s: empty result", seed, alg.name)
			}
			em := pareto.MinEps(res.Points(), refPoints)
			if em > cfg.Eps+1e-9 {
				t.Errorf("seed %d %s: ε_m = %v exceeds ε = %v", seed, alg.name, em, cfg.Eps)
			}
			// Every returned instance must be feasible and mutually
			// non-dominated.
			for i, v := range res.Set {
				if !v.Feasible {
					t.Errorf("seed %d %s: infeasible instance in result", seed, alg.name)
				}
				for j, w := range res.Set {
					if i != j && pareto.Dominates(w.Point, v.Point) {
						t.Errorf("seed %d %s: result contains dominated instance", seed, alg.name)
					}
				}
			}
		}

		// Kungs: exact Pareto front of the feasible instances.
		kres, err := newRunnerT(t, cfg).Kungs()
		if err != nil {
			t.Fatal(err)
		}
		naive := pareto.NaiveParetoSet(refPoints)
		if len(kres.Set) != len(naive) {
			t.Errorf("seed %d Kungs: |front| = %d, want %d", seed, len(kres.Set), len(naive))
		}
		if em := pareto.MinEps(kres.Points(), refPoints); em > 1e-9 {
			t.Errorf("seed %d Kungs: ε_m = %v, want 0", seed, em)
		}
	}
}

// TestPruningSavesVerifications: the guided algorithms must verify no more
// instances than the enumerator, and the pruned counters must be populated.
func TestPruningSavesVerifications(t *testing.T) {
	g := fixtureGraph(t, 4)
	cfg := fixtureConfig(t, g, 0.3, 6)
	enum, err := newRunnerT(t, cfg).EnumQGen()
	if err != nil {
		t.Fatal(err)
	}
	rf, err := newRunnerT(t, cfg).RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	bi, err := newRunnerT(t, cfg).BiQGen()
	if err != nil {
		t.Fatal(err)
	}
	if rf.Stats.Verified > enum.Stats.Verified {
		t.Errorf("RfQGen verified %d > EnumQGen %d", rf.Stats.Verified, enum.Stats.Verified)
	}
	if bi.Stats.Verified > enum.Stats.Verified {
		t.Errorf("BiQGen verified %d > EnumQGen %d", bi.Stats.Verified, enum.Stats.Verified)
	}
	if rf.Stats.Feasible == 0 || bi.Stats.Feasible == 0 {
		t.Error("feasible counters empty")
	}
}

// TestIncrementalAblation: disabling incremental verification must not
// change RfQGen's result set.
func TestIncrementalAblation(t *testing.T) {
	g := fixtureGraph(t, 5)
	cfg := fixtureConfig(t, g, 0.3, 3)
	base, err := newRunnerT(t, cfg).RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := fixtureConfig(t, g, 0.3, 3)
	cfg2.DisableIncremental = true
	noInc, err := newRunnerT(t, cfg2).RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	if !samePointSets(base.Points(), noInc.Points()) {
		t.Errorf("incremental changed results:\n%v\nvs\n%v", base.Points(), noInc.Points())
	}
}

// TestTemplateRefinementAblation: disabling the Spawn restriction must not
// shrink the quality of the ε-Pareto set.
func TestTemplateRefinementAblation(t *testing.T) {
	g := fixtureGraph(t, 6)
	cfg := fixtureConfig(t, g, 0.3, 3)
	ref, err := newRunnerT(t, cfg).AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	refPoints := make([]pareto.Point, len(ref))
	for i, v := range ref {
		refPoints[i] = v.Point
	}
	for _, disable := range []bool{false, true} {
		c := fixtureConfig(t, g, 0.3, 3)
		c.DisableTemplateRefinement = disable
		res, err := newRunnerT(t, c).RfQGen()
		if err != nil {
			t.Fatal(err)
		}
		if em := pareto.MinEps(res.Points(), refPoints); em > c.Eps+1e-9 {
			t.Errorf("refinement=%v: ε_m = %v", !disable, em)
		}
	}
}

// TestVerifyEventHook checks the anytime-trace hook fires once per
// verification with increasing sequence numbers.
func TestVerifyEventHook(t *testing.T) {
	g := fixtureGraph(t, 7)
	cfg := fixtureConfig(t, g, 0.3, 3)
	var events []VerifyEvent
	cfg.OnVerified = func(ev VerifyEvent) { events = append(events, ev) }
	res, err := newRunnerT(t, cfg).RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Stats.Verified {
		t.Errorf("hook fired %d times, verified %d", len(events), res.Stats.Verified)
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Instance == nil {
			t.Error("event without instance")
		}
	}
}

// TestCoverageMonotonicity verifies Lemma 2 (2) empirically: along every
// verified refinement edge, diversity does not increase and, between
// feasible endpoints, coverage does not decrease.
func TestCoverageMonotonicity(t *testing.T) {
	g := fixtureGraph(t, 8)
	cfg := fixtureConfig(t, g, 0.3, 3)
	r := newRunnerT(t, cfg)
	all, err := r.AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]*Verified{}
	for _, v := range all {
		byKey[v.Q.Key()] = v
	}
	for _, v := range all {
		for _, childIn := range query.RefineSteps(cfg.Template, v.Q.I) {
			c, ok := byKey[childIn.Key()]
			if !ok {
				continue // infeasible child
			}
			if c.Point.Div > v.Point.Div+1e-9 {
				t.Errorf("diversity grew on refinement: %v -> %v", v.Point.Div, c.Point.Div)
			}
			if c.Point.Cov < v.Point.Cov-1e-9 {
				t.Errorf("coverage shrank between feasible instances: %v -> %v", v.Point.Cov, c.Point.Cov)
			}
		}
	}
}

func TestCBM(t *testing.T) {
	g := fixtureGraph(t, 9)
	cfg := fixtureConfig(t, g, 0.3, 3)
	res, err := newRunnerT(t, cfg).CBM(CBMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) == 0 {
		t.Fatal("CBM returned nothing")
	}
	// Anchors must include the max-diversity and max-coverage instances.
	ref, err := newRunnerT(t, cfg).AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	var maxDiv, maxCov float64
	for _, v := range ref {
		if v.Point.Div > maxDiv {
			maxDiv = v.Point.Div
		}
		if v.Point.Cov > maxCov {
			maxCov = v.Point.Cov
		}
	}
	var gotDiv, gotCov float64
	for _, v := range res.Set {
		if v.Point.Div > gotDiv {
			gotDiv = v.Point.Div
		}
		if v.Point.Cov > gotCov {
			gotCov = v.Point.Cov
		}
	}
	if gotDiv < maxDiv-1e-9 || gotCov < maxCov-1e-9 {
		t.Errorf("CBM anchors miss extremes: div %v/%v cov %v/%v", gotDiv, maxDiv, gotCov, maxCov)
	}
	// MaxAnchors bounds the result.
	res2, err := newRunnerT(t, cfg).CBM(CBMOptions{MaxAnchors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Set) > 2 {
		t.Errorf("MaxAnchors=2 returned %d", len(res2.Set))
	}
}

// TestEmptyFeasibleSpace: unsatisfiable coverage constraints produce empty
// results without error.
func TestEmptyFeasibleSpace(t *testing.T) {
	g := fixtureGraph(t, 10)
	cfg := fixtureConfig(t, g, 0.3, 3)
	// Demand more female directors than exist anywhere.
	for i := range cfg.Groups {
		cfg.Groups[i].Want = len(cfg.Groups[i].Members)
	}
	for _, alg := range []func(*Runner) (*Result, error){
		(*Runner).EnumQGen, (*Runner).RfQGen, (*Runner).BiQGen, (*Runner).Kungs,
	} {
		res, err := alg(newRunnerT(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Set) != 0 {
			t.Errorf("expected empty set, got %d", len(res.Set))
		}
	}
}

func samePointSets(a, b []pareto.Point) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, p := range a {
		found := false
		for j, q := range b {
			if !used[j] && p == q {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestMeasureIntegration sanity-checks the runner's measure wiring: the
// root instance of a selective template has the largest diversity.
func TestMeasureIntegration(t *testing.T) {
	g := fixtureGraph(t, 11)
	cfg := fixtureConfig(t, g, 0.3, 3)
	r := newRunnerT(t, cfg)
	all, err := r.AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	rootKey := query.Root(cfg.Template).Key()
	var root *Verified
	maxDiv := 0.0
	for _, v := range all {
		if v.Q.Key() == rootKey {
			root = v
		}
		if v.Point.Div > maxDiv {
			maxDiv = v.Point.Div
		}
	}
	if root == nil {
		t.Fatal("root not feasible in this fixture")
	}
	if root.Point.Div < maxDiv-1e-9 {
		t.Errorf("root diversity %v below max %v", root.Point.Div, maxDiv)
	}
	if root.Point.Div > r.DivMax() {
		t.Errorf("diversity %v exceeds bound %v", root.Point.Div, r.DivMax())
	}
	if r.CovMax() != measure.CoverageMax(cfg.Groups) {
		t.Error("CovMax mismatch")
	}
}
