package core

import (
	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// maxNeighborhoodSeeds caps the match-set size above which the spawner
// skips the d-hop neighborhood computation: with that many matches the
// restriction barely prunes anything (the neighborhood approaches the
// whole graph) while the BFS would dominate the per-instance cost. Deeply
// refined instances — where the restriction actually bites — have small
// match sets and stay under the cap.
const maxNeighborhoodSeeds = 400

// spawner produces the front set Q_F for a verified instance, implementing
// the paper's Spawn procedure with the template-refinement optimization:
// the values a range variable can still take are restricted to those
// realized in the d-hop neighborhood G_q^d of the current match set, and an
// edge variable is frozen at absent when its label does not occur around
// the matches.
type spawner struct {
	r        *Runner
	diameter int
	// edgeLabelIDs caches the interned label per parameterized edge.
	edgeLabelIDs map[int]graph.LabelID
}

func newSpawner(r *Runner) *spawner {
	s := &spawner{r: r, diameter: r.cfg.Template.Diameter(), edgeLabelIDs: map[int]graph.LabelID{}}
	if s.diameter == 0 {
		s.diameter = 1
	}
	for vi := range r.cfg.Template.Vars {
		v := &r.cfg.Template.Vars[vi]
		if v.Kind == query.EdgeVar {
			s.edgeLabelIDs[vi] = r.cfg.G.LookupLabel(r.cfg.Template.Edges[v.Edge].Label)
		}
	}
	return s
}

// refine returns the one-step refinements of v's instantiation, restricted
// by the template-refinement analysis when enabled and affordable.
func (s *spawner) refine(v *Verified) []query.Instantiation {
	t := s.r.cfg.Template
	if s.r.cfg.DisableTemplateRefinement || len(v.Matches) == 0 || len(v.Matches) > maxNeighborhoodSeeds {
		return query.RefineSteps(t, v.Q.I)
	}
	hood := graph.KHopNeighborhood(s.r.cfg.G, v.Matches, s.diameter)
	maxLevel, fixedEdges := s.restrictions(v, hood)
	return query.RefineStepsRestricted(t, v.Q.I, maxLevel, fixedEdges)
}

// restrictions derives per-variable ladder caps and frozen edge variables
// from the neighborhood.
func (s *spawner) restrictions(v *Verified, hood map[graph.NodeID]bool) (map[int]int, map[int]bool) {
	t := s.r.cfg.Template
	g := s.r.cfg.G
	maxLevel := map[int]int{}
	fixedEdges := map[int]bool{}
	// Per-label attribute extrema over the neighborhood, computed lazily
	// per (label, attr) pair.
	type extrema struct {
		lo, hi graph.Value
		any    bool
	}
	ext := map[[2]string]extrema{}
	extremaOf := func(label, attr string) extrema {
		key := [2]string{label, attr}
		if e, ok := ext[key]; ok {
			return e
		}
		var e extrema
		aid := g.AttrIDOf(attr)
		for n := range hood {
			if g.Label(n) != label {
				continue
			}
			val := g.AttrValue(n, aid)
			if val.IsNull() {
				continue
			}
			if !e.any {
				e = extrema{lo: val, hi: val, any: true}
				continue
			}
			if val.Compare(e.lo) < 0 {
				e.lo = val
			}
			if val.Compare(e.hi) > 0 {
				e.hi = val
			}
		}
		ext[key] = e
		return e
	}
	labelSeen := map[graph.LabelID]bool{}
	labelChecked := map[graph.LabelID]bool{}
	edgeLabelOccurs := func(label graph.LabelID) bool {
		if label == graph.InvalidLabel {
			return false
		}
		if labelChecked[label] {
			return labelSeen[label]
		}
		labelChecked[label] = true
		for n := range hood {
			for _, e := range g.Out(n) {
				if e.Label == label {
					labelSeen[label] = true
					return true
				}
			}
		}
		return false
	}
	for vi := range t.Vars {
		tv := &t.Vars[vi]
		switch tv.Kind {
		case query.EdgeVar:
			if v.Q.I[vi] != 1 && !edgeLabelOccurs(s.edgeLabelIDs[vi]) {
				fixedEdges[vi] = true
			}
		case query.RangeVar:
			if tv.Op == graph.OpEQ {
				continue // set-membership restriction not modeled by caps
			}
			e := extremaOf(t.Nodes[tv.Node].Label, tv.Attr)
			if !e.any {
				maxLevel[vi] = -1 // no values at all: suppress every step
				continue
			}
			cap := -1
			for l := len(tv.Ladder) - 1; l >= 0; l-- {
				if predicateSatisfiable(tv.Op, tv.Ladder[l], e.lo, e.hi) {
					cap = l
					break
				}
			}
			maxLevel[vi] = cap
		}
	}
	return maxLevel, fixedEdges
}

// predicateSatisfiable reports whether "A op bound" can hold for some value
// in [lo, hi].
func predicateSatisfiable(op graph.Op, bound, lo, hi graph.Value) bool {
	switch op {
	case graph.OpGE:
		return hi.Compare(bound) >= 0
	case graph.OpGT:
		return hi.Compare(bound) > 0
	case graph.OpLE:
		return lo.Compare(bound) <= 0
	case graph.OpLT:
		return lo.Compare(bound) < 0
	case graph.OpEQ:
		return lo.Compare(bound) <= 0 && hi.Compare(bound) >= 0
	default:
		return true
	}
}
