package core

import (
	"time"

	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// sandwichPair is one entry of SBounds: lo ≺_I hi, both feasible, with
// equal box-diversity or box-coverage. By Lemma 3 every instance strictly
// between lo and hi in the refinement preorder is ε-dominated and can be
// skipped without verification.
type sandwichPair struct {
	lo, hi query.Instantiation
}

// sBounds maintains the sandwich pairs with the paper's widening rule: a
// new pair replaces any pair it covers, and is dropped when an existing
// pair already covers it.
type sBounds struct {
	t     *query.Template
	pairs []sandwichPair
}

// add inserts (lo, hi), widening or subsuming existing pairs.
func (s *sBounds) add(lo, hi query.Instantiation) bool {
	for i := range s.pairs {
		p := &s.pairs[i]
		// An existing pair covers the new one: nothing to record.
		if query.RefinesInstantiation(s.t, p.lo, lo) && query.RefinesInstantiation(s.t, hi, p.hi) {
			return false
		}
	}
	kept := s.pairs[:0]
	for _, p := range s.pairs {
		// Drop pairs the new one covers.
		if query.RefinesInstantiation(s.t, lo, p.lo) && query.RefinesInstantiation(s.t, p.hi, hi) {
			continue
		}
		kept = append(kept, p)
	}
	s.pairs = append(kept, sandwichPair{lo: lo.Clone(), hi: hi.Clone()})
	return true
}

// prunes reports whether in lies strictly between some recorded pair.
func (s *sBounds) prunes(in query.Instantiation) bool {
	for i := range s.pairs {
		p := &s.pairs[i]
		if query.StrictlyRefinesInstantiation(s.t, p.lo, in) &&
			query.StrictlyRefinesInstantiation(s.t, in, p.hi) {
			return true
		}
	}
	return false
}

// biItem is one queued lattice node with its verified parent (forward
// direction only; backward items verify from scratch).
type biItem struct {
	in     query.Instantiation
	parent *Verified
}

// BiQGen computes an ε-Pareto instance set with the bidirectional strategy
// (Fig. 6): a forward refinement-based exploration from the root q_r
// (SpawnF) interleaved with a backward relaxation-based exploration from
// the most refined instance q_b (SpawnB). Feasible forward/backward pairs
// that share a box coordinate become "sandwich" bounds (Lemma 3) that prune
// every instance strictly between them. The backward exploration stops
// expanding at feasible instances: their relaxations are feasible with
// lower coverage and are reached by the forward search.
func (r *Runner) BiQGen() (*Result, error) {
	r.resetStats()
	start := time.Now()
	t := r.cfg.Template
	archive := pareto.NewArchive[*Verified](r.cfg.Eps)
	sp := newSpawner(r)
	visited := make(map[string]bool)
	bounds := &sBounds{t: t}

	var fwdFeasible, bwdFeasible []*Verified

	// recordSandwich checks a freshly verified feasible instance against
	// the opposite direction's feasible instances and records new bounds.
	recordSandwich := func(v *Verified, forward bool) {
		if r.cfg.DisableSandwich {
			return
		}
		vb := pareto.BoxOf(v.Point, r.cfg.Eps)
		opposite := bwdFeasible
		if !forward {
			opposite = fwdFeasible
		}
		for _, o := range opposite {
			ob := pareto.BoxOf(o.Point, r.cfg.Eps)
			if ob.DI != vb.DI && ob.FI != vb.FI {
				continue
			}
			var lo, hi *Verified
			if forward {
				lo, hi = v, o
			} else {
				lo, hi = o, v
			}
			if !query.StrictlyRefinesInstantiation(t, lo.Q.I, hi.Q.I) {
				continue
			}
			if bounds.add(lo.Q.I, hi.Q.I) {
				r.stats.SandwichPairs++
			}
		}
		if forward {
			fwdFeasible = append(fwdFeasible, v)
		} else {
			bwdFeasible = append(bwdFeasible, v)
		}
	}

	fwd := []biItem{{in: query.Root(t)}}
	bwd := []biItem{{in: query.Bottom(t)}}

	// Every instance refines the root, so the root's match set is a valid
	// incremental-verification superset for the backward direction too.
	var rootV *Verified

	for len(fwd) > 0 || len(bwd) > 0 {
		if r.err() != nil {
			break
		}
		// Forward step.
		if len(fwd) > 0 {
			item := fwd[0]
			fwd = fwd[1:]
			key := item.in.Key()
			if !visited[key] {
				visited[key] = true
				r.stats.Spawned++
				if bounds.prunes(item.in) {
					// ε-dominated by a sandwich bound: skip verification but
					// keep exploring so refinements outside the band stay
					// reachable. Any verified ancestor's match set remains a
					// valid superset for the children (refinement is
					// transitive), so the parent is carried through.
					r.stats.Pruned++
					for _, child := range query.RefineSteps(t, item.in) {
						if !visited[child.Key()] {
							fwd = append(fwd, biItem{in: child, parent: item.parent})
						}
					}
				} else {
					q := query.MustInstance(t, item.in)
					v := r.verify(q, item.parent)
					if rootV == nil {
						rootV = v // the first forward item is the root
					}
					if v.Feasible {
						archive.Update(v.Point, v)
						recordSandwich(v, true)
						for _, child := range sp.refine(v) {
							if !visited[child.Key()] {
								fwd = append(fwd, biItem{in: child, parent: v})
							}
						}
					} else {
						r.stats.Pruned += len(query.RefineSteps(t, item.in))
					}
				}
			}
		}
		// Backward step: relax towards the root, passing through the
		// feasibility frontier and the feasible region — the backward
		// feasible instances are what pairs up with forward ones to form
		// sandwich bounds.
		if len(bwd) > 0 {
			item := bwd[0]
			bwd = bwd[1:]
			key := item.in.Key()
			if !visited[key] {
				visited[key] = true
				r.stats.Spawned++
				if bounds.prunes(item.in) {
					// ε-dominated by a sandwich bound: skip the verification
					// but keep relaxing so the backward frontier continues
					// past the band.
					r.stats.Pruned++
				} else {
					q := query.MustInstance(t, item.in)
					var parent *Verified
					if rootV != nil && rootV.Feasible {
						parent = rootV
					}
					v := r.verify(q, parent)
					if v.Feasible {
						archive.Update(v.Point, v)
						recordSandwich(v, false)
					}
				}
				for _, up := range query.RelaxSteps(t, item.in) {
					if !visited[up.Key()] {
						bwd = append(bwd, biItem{in: up})
					}
				}
			}
		}
	}
	if err := r.err(); err != nil {
		return nil, err
	}

	return &Result{
		Set:     collectSet(archive),
		Eps:     r.cfg.Eps,
		Stats:   r.Stats(),
		Elapsed: time.Since(start),
	}, nil
}
