package core

import (
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// multiOutputConfig builds a template where the recommender u1 is wired to
// the output via a FIXED edge (so it is always active) plus a
// parameterized coreview branch, and marks u1 as a second output: the
// answer is the union of matched directors and matched recommenders.
func multiOutputConfig(t *testing.T, seed int64) *Config {
	t.Helper()
	g := fixtureGraph(t, seed)
	tpl, err := query.NewBuilder("multi").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").RangeVar("x1", "u1", "yearsOfExp", graph.OpGE).
		Node("u2", "Person").
		Node("o", "Org").RangeVar("x2", "o", "employees", graph.OpGE).
		Edge("u1", "u_o", "recommend").
		Edge("u1", "o", "worksAt").
		VarEdge("e1", "u2", "u_o", "coreview").
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, query.DomainOptions{MaxValues: 4}); err != nil {
		t.Fatal(err)
	}
	set := groups.EqualOpportunity(groups.ByAttribute(g, "Person", "gender"), 3)
	return &Config{G: g, Template: tpl, Groups: set, Eps: 0.3, ExtraOutputs: []string{"u1"}}
}

func TestMultiOutputValidation(t *testing.T) {
	cfg := multiOutputConfig(t, 50)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid multi-output config rejected: %v", err)
	}
	bad := *cfg
	bad.ExtraOutputs = []string{"nope"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown extra output accepted")
	}
	bad = *cfg
	bad.ExtraOutputs = []string{"u_o"}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate output accepted")
	}
	// A node behind an edge variable is rejected: its activation
	// mid-refinement would break the union's monotonicity.
	bad = *cfg
	bad.ExtraOutputs = []string{"u2"}
	if err := bad.Validate(); err == nil {
		t.Error("edge-variable-gated extra output accepted")
	}
}

// TestMultiOutputUnion: the answer is exactly the union of the per-node
// match sets, and per-node sets match independent evaluation.
func TestMultiOutputUnion(t *testing.T) {
	cfg := multiOutputConfig(t, 51)
	r := newRunnerT(t, cfg)
	root := query.MustInstance(cfg.Template, query.Root(cfg.Template))
	v := r.verify(root, nil)
	if v.PerNode == nil {
		t.Fatal("PerNode missing in multi-output mode")
	}
	union := map[int32]bool{}
	for _, set := range v.PerNode {
		for _, m := range set {
			union[int32(m)] = true
		}
	}
	if len(union) != len(v.Matches) {
		t.Fatalf("union size %d != matches %d", len(union), len(v.Matches))
	}
	for _, m := range v.Matches {
		if !union[int32(m)] {
			t.Fatal("matches not the union of per-node sets")
		}
	}
	// Per-node sets agree with independent single-node evaluation.
	u1 := cfg.Template.Node("u1")
	indep := r.matcher.EvalNode(root, u1)
	got := v.PerNode[u1]
	if len(indep) != len(got) {
		t.Fatalf("u1 matches differ: %d vs %d", len(got), len(indep))
	}
}

// TestMultiOutputGeneration: the full pipeline stays valid — every
// algorithm returns ε-Pareto sets over the multi-output objective, and
// incremental evaluation equals from-scratch.
func TestMultiOutputGeneration(t *testing.T) {
	cfg := multiOutputConfig(t, 52)
	ref, err := newRunnerT(t, cfg).AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("no feasible multi-output instances")
	}
	refPoints := make([]pareto.Point, len(ref))
	for i, v := range ref {
		refPoints[i] = v.Point
	}
	for _, alg := range []struct {
		name string
		run  func(*Runner) (*Result, error)
	}{
		{"RfQGen", (*Runner).RfQGen},
		{"BiQGen", (*Runner).BiQGen},
	} {
		res, err := alg.run(newRunnerT(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Set) == 0 {
			t.Fatalf("%s: empty", alg.name)
		}
		if em := pareto.MinEps(res.Points(), refPoints); em > cfg.Eps+1e-9 {
			t.Errorf("%s: ε_m = %v", alg.name, em)
		}
	}
	// Incremental vs from-scratch.
	cfg2 := multiOutputConfig(t, 52)
	cfg2.DisableIncremental = true
	a, err := newRunnerT(t, cfg).RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	b, err := newRunnerT(t, cfg2).RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	if !samePointSets(a.Points(), b.Points()) {
		t.Error("incremental multi-output evaluation changed results")
	}
}

// TestMultiOutputMonotone: per-node match sets shrink along refinement.
func TestMultiOutputMonotone(t *testing.T) {
	cfg := multiOutputConfig(t, 53)
	r := newRunnerT(t, cfg)
	rootIn := query.Root(cfg.Template)
	root := r.verify(query.MustInstance(cfg.Template, rootIn), nil)
	for _, childIn := range query.RefineSteps(cfg.Template, rootIn) {
		child := r.verify(query.MustInstance(cfg.Template, childIn), root)
		for ni, childSet := range child.PerNode {
			parentSet := map[int32]bool{}
			for _, m := range root.PerNode[ni] {
				parentSet[int32(m)] = true
			}
			for _, m := range childSet {
				if !parentSet[int32(m)] {
					t.Fatalf("node %d gained match %d under refinement", ni, m)
				}
			}
		}
	}
}
