package core

import (
	"testing"

	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

func TestRandomStream(t *testing.T) {
	g := fixtureGraph(t, 20)
	cfg := fixtureConfig(t, g, 0.3, 3)
	s := NewRandomStream(cfg.Template, 25, 7)
	count := 0
	for q := s.Next(); q != nil; q = s.Next() {
		count++
		if len(q.I) != len(cfg.Template.Vars) {
			t.Fatal("malformed instance")
		}
	}
	if count != 25 {
		t.Errorf("stream emitted %d", count)
	}
	// Determinism.
	a := NewRandomStream(cfg.Template, 5, 7)
	b := NewRandomStream(cfg.Template, 5, 7)
	for i := 0; i < 5; i++ {
		if a.Next().Key() != b.Next().Key() {
			t.Fatal("stream not deterministic")
		}
	}
}

func TestSliceStream(t *testing.T) {
	g := fixtureGraph(t, 21)
	cfg := fixtureConfig(t, g, 0.3, 3)
	q := query.MustInstance(cfg.Template, query.Root(cfg.Template))
	s := &SliceStream{Items: []*query.Instance{q, q}}
	if s.Next() == nil || s.Next() == nil || s.Next() != nil {
		t.Error("SliceStream wrong")
	}
}

func TestOnlineQGenValidation(t *testing.T) {
	g := fixtureGraph(t, 22)
	cfg := fixtureConfig(t, g, 0.3, 3)
	r := newRunnerT(t, cfg)
	if _, err := r.OnlineQGen(&SliceStream{}, OnlineOptions{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := r.OnlineQGen(&SliceStream{}, OnlineOptions{K: 3, Window: -1}); err == nil {
		t.Error("negative window accepted")
	}
}

// TestOnlineQGenMaintainsSizeAndEps: across a stream, |set| <= k always,
// ε never decreases, and the final set ε-dominates every feasible instance
// seen under the final ε.
func TestOnlineQGenMaintainsSizeAndEps(t *testing.T) {
	g := fixtureGraph(t, 23)
	cfg := fixtureConfig(t, g, 0.05, 3)
	for _, k := range []int{2, 4, 8} {
		for _, w := range []int{0, 5, 20} {
			r := newRunnerT(t, cfg)
			// Collect the stream's feasible points for the final check.
			var seen []pareto.Point
			cfg.OnVerified = func(ev VerifyEvent) {
				if ev.Feasible {
					seen = append(seen, ev.Point)
				}
			}
			stream := NewRandomStream(cfg.Template, 150, 99)
			res, err := r.OnlineQGen(stream, OnlineOptions{K: k, Window: w, InitialEps: 0.05})
			cfg.OnVerified = nil
			if err != nil {
				t.Fatal(err)
			}
			if res.Processed != 150 {
				t.Fatalf("processed %d", res.Processed)
			}
			if len(res.Set) > k {
				t.Errorf("k=%d w=%d: |set| = %d", k, w, len(res.Set))
			}
			if len(res.Set) == 0 {
				t.Fatalf("k=%d w=%d: empty online set", k, w)
			}
			prev := 0.0
			for _, e := range res.EpsHistory {
				if e < prev-1e-12 {
					t.Fatalf("ε decreased: %v -> %v", prev, e)
				}
				prev = e
			}
			if res.Eps < 0.05 {
				t.Errorf("final ε %v below initial", res.Eps)
			}
			if em := pareto.MinEps(pointsOf(res.Set), seen); em > res.Eps+1e-9 {
				t.Errorf("k=%d w=%d: final set needs ε_m=%v > ε=%v", k, w, em, res.Eps)
			}
			if len(res.Delays) != res.Processed {
				t.Errorf("delays %d != processed %d", len(res.Delays), res.Processed)
			}
		}
	}
}

// TestOnlineKOne: the degenerate k=1 case must still work and keep the
// single best representative.
func TestOnlineKOne(t *testing.T) {
	g := fixtureGraph(t, 24)
	cfg := fixtureConfig(t, g, 0.1, 3)
	r := newRunnerT(t, cfg)
	stream := NewRandomStream(cfg.Template, 80, 5)
	res, err := r.OnlineQGen(stream, OnlineOptions{K: 1, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 1 {
		t.Fatalf("|set| = %d", len(res.Set))
	}
}

// TestOnlineEmptyStream returns an empty set without error.
func TestOnlineEmptyStream(t *testing.T) {
	g := fixtureGraph(t, 25)
	cfg := fixtureConfig(t, g, 0.1, 3)
	r := newRunnerT(t, cfg)
	res, err := r.OnlineQGen(&SliceStream{}, OnlineOptions{K: 5, Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 0 || res.Processed != 0 {
		t.Errorf("empty stream: %+v", res)
	}
}

// TestOnlineWindowReadmission: an instance rejected early (dominated under
// a small archive) can re-enter from the window after evictions.
func TestOnlineWindowReadmission(t *testing.T) {
	g := fixtureGraph(t, 26)
	cfg := fixtureConfig(t, g, 0.05, 3)
	// Replay the full enumeration twice shuffled differently; with a large
	// window the second pass gives cached re-admission opportunities. The
	// check is behavioural: the run completes and respects the invariants
	// (size, ε monotone), exercising the refill path.
	r := newRunnerT(t, cfg)
	var items []*query.Instance
	EnumerateInstantiations(cfg.Template, func(in query.Instantiation) bool {
		items = append(items, query.MustInstance(cfg.Template, in.Clone()))
		return true
	})
	res, err := r.OnlineQGen(&SliceStream{Items: items}, OnlineOptions{K: 3, Window: len(items)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) == 0 || len(res.Set) > 3 {
		t.Fatalf("|set| = %d", len(res.Set))
	}
}

func pointsOf(set []*Verified) []pareto.Point {
	ps := make([]pareto.Point, len(set))
	for i, v := range set {
		ps[i] = v.Point
	}
	return ps
}
