package core

import (
	"time"

	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// CBMOptions parameterizes the constraint-based baseline.
type CBMOptions struct {
	// Separation is the minimum vertical (coverage) distance between
	// consecutive anchor points; bisection stops below it. Defaults to
	// ε·C when zero.
	Separation float64
	// MaxAnchors bounds the result size (0 = unbounded).
	MaxAnchors int
}

// CBM implements the constraint-based bi-objective baseline [Chircop &
// Zammit-Mangion]: it verifies the instance space, finds the two anchor
// instances that individually maximize diversity and coverage, and then
// repeatedly bisects the coverage interval between adjacent anchors,
// solving the ε-constraint problem "maximize δ(q) subject to f(q) ≥ mid"
// for each midpoint. Every constrained solve rescans the feasible
// instances — the more expensive bi-level iteration the paper observes
// makes CBM slower than Kungs.
func (r *Runner) CBM(opts CBMOptions) (*Result, error) {
	r.resetStats()
	start := time.Now()
	feasible, err := r.allFeasibleKeepStats()
	if err != nil {
		return nil, err
	}
	if len(feasible) == 0 {
		return &Result{Eps: r.cfg.Eps, Stats: r.Stats(), Elapsed: time.Since(start)}, nil
	}
	sep := opts.Separation
	if sep <= 0 {
		sep = r.cfg.Eps * r.CovMax()
		if sep <= 0 {
			sep = 1
		}
	}
	// Anchor 1: maximize diversity; Anchor 2: maximize coverage.
	maxDiv := feasible[0]
	maxCov := feasible[0]
	for _, v := range feasible[1:] {
		if v.Point.Div > maxDiv.Point.Div {
			maxDiv = v
		}
		if v.Point.Cov > maxCov.Point.Cov {
			maxCov = v
		}
	}
	anchors := map[string]*Verified{maxDiv.Q.Key(): maxDiv, maxCov.Q.Key(): maxCov}

	// maximizeDivSubjectTo scans for argmax δ among instances with f ≥ bound.
	maximizeDivSubjectTo := func(bound float64) *Verified {
		var best *Verified
		for _, v := range feasible {
			if v.Point.Cov < bound {
				continue
			}
			if best == nil || v.Point.Div > best.Point.Div {
				best = v
			}
		}
		return best
	}

	type segment struct{ lo, hi float64 }
	stack := []segment{{lo: maxDiv.Point.Cov, hi: maxCov.Point.Cov}}
	for len(stack) > 0 {
		if opts.MaxAnchors > 0 && len(anchors) >= opts.MaxAnchors {
			break
		}
		seg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seg.hi-seg.lo <= sep {
			continue
		}
		mid := (seg.lo + seg.hi) / 2
		m := maximizeDivSubjectTo(mid)
		if m == nil {
			continue
		}
		if _, seen := anchors[m.Q.Key()]; !seen {
			anchors[m.Q.Key()] = m
		}
		stack = append(stack, segment{lo: seg.lo, hi: mid}, segment{lo: mid, hi: seg.hi})
	}

	// Keep only mutually non-dominated anchors, presented like the other
	// algorithms' results.
	var list []*Verified
	for _, v := range anchors {
		list = append(list, v)
	}
	points := make([]pareto.Point, len(list))
	for i, v := range list {
		points[i] = v.Point
	}
	var set []*Verified
	for _, idx := range pareto.NaiveParetoSet(points) {
		set = append(set, list[idx])
	}
	archive := pareto.NewArchive[*Verified](r.cfg.Eps)
	for _, v := range set {
		archive.Update(v.Point, v)
	}
	return &Result{
		Set:     collectSet(archive),
		Eps:     r.cfg.Eps,
		Stats:   r.Stats(),
		Elapsed: time.Since(start),
	}, nil
}

// allFeasibleKeepStats is AllFeasible without resetting counters.
func (r *Runner) allFeasibleKeepStats() ([]*Verified, error) {
	var feasible []*Verified
	EnumerateInstantiations(r.cfg.Template, func(in query.Instantiation) bool {
		if r.err() != nil {
			return false
		}
		q := query.MustInstance(r.cfg.Template, in)
		if r.verifiedKey(q.Key()) {
			return true
		}
		r.stats.Spawned++
		v := r.verify(q, nil)
		if v.Feasible {
			feasible = append(feasible, v)
		}
		return true
	})
	if err := r.err(); err != nil {
		return nil, err
	}
	return feasible, nil
}
