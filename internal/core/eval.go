package core

import (
	"context"
	"sort"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/match"
	"fairsqg/internal/measure"
	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// Runner owns the shared evaluation state of one generation run: the
// matcher, the diversity/coverage scorers and the verification cache. All
// algorithms in this package are methods on Runner so repeated runs over
// one configuration reuse the cache only when the caller wants it (each
// algorithm entry point starts a fresh Runner unless invoked on one).
type Runner struct {
	cfg *Config
	// ctx is the run's cancellation context (cfg.Ctx, or Background when
	// unset). Algorithms poll it between verifications; the matcher and
	// engine poll it inside the backtracking search.
	ctx     context.Context
	matcher *match.Matcher
	// engine, when non-nil (Config.MatchWorkers > 1 or < 0), evaluates
	// instances concurrently; the sequential matcher stays the reference
	// implementation and still handles multi-output evaluation. Matcher and
	// engine share one candidate cache so either path warms the other.
	engine *match.Engine
	div    *measure.Diversity
	// pairCache memoizes pairwise diversity distances. It is the engine's
	// shared cache when one exists and the default tuple distance is in
	// use (so jobs on one graph reuse each other's distances), and a
	// run-private cache otherwise.
	pairCache *measure.PairCache
	// counter answers per-group count queries over answers in O(|answer|)
	// via a dense node→group array; built once per Runner.
	counter *groups.Counter
	cache   map[string]*Verified
	stats   Stats
	verSeq  int
	// extraNodes are the resolved multi-output template node indices.
	extraNodes []int
	// population is |V_uo| (summed over distinct output labels in
	// multi-output mode); kept with the resolved scoring functions so the
	// evaluator can be rebound to a fresh pair cache on reset.
	population int
	scoreRel   measure.RelevanceFunc
	scoreDist  measure.DistanceFunc
	scoreFP    string
	// ownedG is the graph generation adopted from a MutationSource during
	// OnlineQGen, released by Close (generations from Retarget itself stay
	// caller-owned).
	ownedG *graph.Graph
}

// NewRunner validates the configuration and prepares shared state.
func NewRunner(cfg *Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	m := match.New(cfg.G)
	m.Mode = cfg.Mode
	m.Order = cfg.Order
	m.MaxBacktrackNodes = cfg.MaxBacktrackNodes
	m.DisableAttrIndex = cfg.DisableAttrIndex
	if cfg.Ctx != nil {
		m.BindContext(ctx)
	}
	engine := newConfigEngine(cfg)
	if engine != nil {
		m.Cache = engine.Cache()
	} else if cfg.CandCacheSize >= 0 {
		m.Cache = match.NewCandidateCache(cfg.CandCacheSize)
	}
	outLabel := cfg.Template.Nodes[cfg.Template.Output].Label
	var extraNodes []int
	population := cfg.G.CountLabel(outLabel)
	seenLabels := map[string]bool{outLabel: true}
	for _, name := range cfg.ExtraOutputs {
		ni := cfg.Template.Node(name)
		extraNodes = append(extraNodes, ni)
		if l := cfg.Template.Nodes[ni].Label; !seenLabels[l] {
			seenLabels[l] = true
			population += cfg.G.CountLabel(l)
		}
	}
	r := &Runner{
		cfg:        cfg,
		ctx:        ctx,
		matcher:    m,
		engine:     engine,
		counter:    groups.NewCounter(cfg.G.NumNodes(), cfg.Groups),
		cache:      make(map[string]*Verified),
		extraNodes: extraNodes,
		population: population,
	}
	r.initScoring()
	return r, nil
}

// initScoring resolves the scoring functions once per Runner: the
// relevance function and the base distance — feature-compiled from the
// columnar storage when the default tuple distance is in use — then binds
// them to a pair cache via bindScoring.
func (r *Runner) initScoring() {
	cfg := r.cfg
	outLabel := cfg.Template.Nodes[cfg.Template.Output].Label
	r.scoreRel = cfg.Relevance
	if r.scoreRel == nil {
		r.scoreRel = measure.DegreeRelevance(cfg.G, outLabel)
	}
	if cfg.Distance != nil {
		r.scoreDist = cfg.Distance
		// Custom functions are opaque: their fingerprint cannot prove two
		// jobs compute the same distance, so never share them through an
		// engine-owned cache.
		r.scoreFP = "custom"
	} else {
		feats := measure.NewDistanceFeatures(cfg.G, cfg.DistanceAttrs)
		r.scoreDist = feats.Func()
		// Distances are computed from the graph's attribute columns, so
		// the cache scope carries the graph generation ((lineage, version))
		// alongside the feature fingerprint: a mutation that changes
		// attribute values moves jobs to a fresh scope instead of serving
		// stale pre-mutation distances out of a shared cache.
		r.scoreFP = cfg.G.GenKey() + "\x02" + feats.Fingerprint()
	}
	r.bindScoring()
}

// bindScoring (re)builds the Diversity evaluator over the current pair
// cache: the engine's shared cache when one exists and the default tuple
// distance is in use, a fresh run-private cache otherwise. Zero-valued
// knobs select documented defaults through explicit sentinels: MaxPairs <
// 0 means exact (no sampling cap) and LambdaSet marks λ = 0 as a
// deliberate pure-relevance request — the previous code silently rewrote
// both zeros.
func (r *Runner) bindScoring() {
	cfg := r.cfg
	if r.engine != nil && r.engine.DistCache() != nil && cfg.Distance == nil {
		r.pairCache = r.engine.DistCache()
	} else {
		r.pairCache = measure.NewPairCache(0)
	}
	maxPairs := cfg.MaxPairs
	switch {
	case maxPairs < 0:
		maxPairs = 0 // exact: Diversity treats 0 as "no sampling cap"
	case maxPairs == 0:
		maxPairs = DefaultMaxPairs
	}
	lambda := 0.5
	if cfg.Lambda != 0 || cfg.LambdaSet {
		lambda = cfg.Lambda
	}
	r.div = &measure.Diversity{
		Lambda:          lambda,
		Relevance:       r.scoreRel,
		Distance:        r.pairCache.Scope(r.scoreFP).Wrap(r.scoreDist),
		LabelPopulation: r.population,
		MaxPairs:        maxPairs,
	}
}

// newConfigEngine builds the concurrent match engine a configuration asks
// for, or nil when the sequential reference path is selected. An external
// Config.Engine always wins: it outlives the run so its candidate cache
// stays warm across runs.
func newConfigEngine(cfg *Config) *match.Engine {
	if cfg.Engine != nil {
		return cfg.Engine
	}
	if cfg.MatchWorkers == 0 || cfg.MatchWorkers == 1 {
		return nil
	}
	return match.NewEngine(cfg.G, match.EngineOptions{
		Mode:              cfg.Mode,
		Order:             cfg.Order,
		MaxBacktrackNodes: cfg.MaxBacktrackNodes,
		Workers:           cfg.MatchWorkers,
		CandCacheSize:     cfg.CandCacheSize,
		DisableAttrIndex:  cfg.DisableAttrIndex,
	})
}

// adoptEngine makes a worker Runner share the parent's engine and
// candidate cache, so concurrent lattice exploration (ParQGen) reuses one
// pool of matcher scratch states and one warm filter cache instead of
// rebuilding per-node candidate sets cache-cold in every worker.
func (r *Runner) adoptEngine(parent *Runner) {
	r.engine = parent.engine
	r.matcher.Cache = parent.matcher.Cache
	// Share the scorer too: the Diversity evaluator is read-only and its
	// wrapped distance (features + pair cache) is goroutine-safe, so slab
	// workers memoize pairwise distances into one shared cache.
	r.div = parent.div
	r.pairCache = parent.pairCache
}

// Config returns the runner's configuration.
func (r *Runner) Config() *Config { return r.cfg }

// DivMax returns the diversity upper bound |V_{u_o}|.
func (r *Runner) DivMax() float64 { return r.div.MaxValue() }

// CovMax returns the coverage upper bound C = Σ c_i.
func (r *Runner) CovMax() float64 { return measure.CoverageMax(r.cfg.Groups) }

// Stats returns the counters accumulated so far (matcher, engine and
// candidate-cache stats included).
func (r *Runner) Stats() Stats {
	s := r.stats
	s.Matcher = r.matcher.Stats
	if r.engine != nil {
		es := r.engine.Stats()
		s.Matcher.Evals += int(es.Evals)
		s.Matcher.CandidatesChecked += int(es.CandidatesChecked)
		s.Matcher.BacktrackNodes += int(es.BacktrackNodes)
		s.Matcher.IndexSelections += int(es.IndexSelections)
		s.Matcher.ScanSelections += int(es.ScanSelections)
		s.Matcher.SigPruned += int(es.SigPruned)
		s.Cache = es.Cache
	} else if r.matcher.Cache != nil {
		s.Cache = r.matcher.Cache.Stats()
	}
	if r.pairCache != nil {
		s.DistCache = r.pairCache.Stats()
	}
	return s
}

// resetStats clears counters between algorithm invocations on one Runner.
// The engine is rebuilt (its counters are cumulative) and the candidate
// cache dropped, so every run reports its own, cold-start numbers. An
// external Config.Engine is kept as-is: cross-run cache warmth is exactly
// what injecting an engine is for.
func (r *Runner) resetStats() {
	r.stats = Stats{}
	r.matcher.Stats = match.Stats{}
	r.verSeq = 0
	r.cache = make(map[string]*Verified)
	if r.cfg.Ctx != nil {
		r.matcher.BindContext(r.ctx)
	}
	if r.engine != nil {
		if r.cfg.Engine == nil {
			r.engine = newConfigEngine(r.cfg)
		}
		r.matcher.Cache = r.engine.Cache()
	} else if r.matcher.Cache != nil {
		r.matcher.Cache.Reset()
	}
	if r.cfg.Engine == nil {
		// Rebind the scorer so per-run pair-cache counters start cold (the
		// rebuilt engine carries a fresh distance cache; a private cache is
		// simply replaced). An external engine keeps its warm cache — the
		// point of injecting one.
		r.bindScoring()
	}
}

// err reports the run context's cancellation state; algorithms poll it
// between verifications and abort with this error.
func (r *Runner) err() error { return r.ctx.Err() }

// verify evaluates an instance: q(G), δ(q), f(q) and feasibility. When the
// instance was already verified the cached record returns without work.
// parent, when non-nil and enabled, supplies the verified parent's match
// set for incremental verification (incVerify): since q refines its parent,
// q(G) is a subset of the parent's matches and only those candidates are
// re-checked.
func (r *Runner) verify(q *query.Instance, parent *Verified) *Verified {
	if v, ok := r.cache[q.Key()]; ok {
		return v
	}
	var v *Verified
	// counts holds the answer's per-group tally, computed once per
	// verification: feasibility and coverage both derive from it (the
	// slice is the counter's reusable buffer — read before any Counts
	// call, which the paths below never make after filling it).
	var counts []int
	if len(r.extraNodes) > 0 {
		v, counts = r.verifyMultiOutput(q, parent)
	} else {
		var within []graph.NodeID
		if parent != nil && !r.cfg.DisableIncremental {
			within = parent.Matches
		}
		// The arc-consistent candidate set of u_o is a superset of q(G), so
		// its per-group counts upper-bound the coverage counts: when some
		// group's bound is already below c_i the instance is certainly
		// infeasible and backtracking is skipped (cheap infeasibility check).
		var accept func([]graph.NodeID) bool
		if !r.cfg.DisableBoundPrune {
			accept = func(cands []graph.NodeID) bool {
				return measure.FeasibleCounts(r.cfg.Groups, r.counter.Counts(cands))
			}
		}
		var matches []graph.NodeID
		var ok bool
		if r.engine != nil {
			matches, ok, _ = r.engine.ParEvalOutputFiltered(r.ctx, q, within, accept)
		} else {
			matches, ok = r.matcher.EvalOutputFiltered(q, within, accept)
		}
		v = &Verified{Q: q, Matches: matches}
		counts = r.counter.Counts(matches)
		v.Feasible = ok && measure.FeasibleCounts(r.cfg.Groups, counts)
	}
	if r.ctx.Err() != nil {
		// The evaluation was cut short: its result is partial. Don't cache
		// or count it — the caller's next cancellation poll ends the run,
		// so the placeholder never influences a returned set.
		return &Verified{Q: q}
	}
	if v.Feasible {
		v.Point = pareto.Point{
			Div: r.scoreDiversity(v, parent),
			Cov: measure.CoverageCounts(r.cfg.Groups, counts),
		}
	}
	r.cache[q.Key()] = v
	r.stats.Verified++
	if v.Feasible {
		r.stats.Feasible++
	}
	r.verSeq++
	if r.cfg.OnVerified != nil {
		r.cfg.OnVerified(VerifyEvent{
			Seq:      r.verSeq,
			Instance: q,
			Point:    v.Point,
			Feasible: v.Feasible,
			Matches:  len(v.Matches),
		})
	}
	return v
}

// scoreDiversity evaluates δ for a feasible instance. When the parent was
// exactly scored and the child's matches subset it (Lemma 2: refinement
// only shrinks match sets), the subset-delta path derives the child's pair
// sum from the parent's per-node contribution sums instead of re-running
// the O(n²) pair loop; both paths accumulate identical fixed-point units,
// so scores are bit-equal regardless of DisableIncScore. The resulting
// scorer state rides along in Verified for the instance's own children.
func (r *Runner) scoreDiversity(v *Verified, parent *Verified) float64 {
	if !r.cfg.DisableIncScore && parent != nil && parent.score != nil {
		if div, st, ok := r.div.EvalDelta(parent.score, v.Matches); ok {
			r.stats.IncScores++
			v.score = st
			return div
		}
	}
	div, st := r.div.EvalState(v.Matches)
	v.score = st
	return div
}

// verified reports whether the instance key has been evaluated already.
func (r *Runner) verifiedKey(key string) bool {
	_, ok := r.cache[key]
	return ok
}

// collectSet extracts the archive's payloads ordered by decreasing
// diversity (ties by increasing coverage) for stable presentation.
func collectSet(a *pareto.Archive[*Verified]) []*Verified {
	set := a.Payloads()
	sort.Slice(set, func(i, j int) bool {
		if set[i].Point.Div != set[j].Point.Div {
			return set[i].Point.Div > set[j].Point.Div
		}
		return set[i].Point.Cov < set[j].Point.Cov
	})
	return set
}

// verifyMultiOutput evaluates an instance under the multiple-output-nodes
// extension: each designated node's match set is computed (incrementally
// within the parent's per-node set when available — refinement shrinks
// every node's matches, Lemma 2's argument applies per node), and the
// objectives are taken over the sorted union. The candidate-bound pruning
// is not applied: a single node's candidate shortfall cannot prove the
// union infeasible. The returned counts are the union's per-group tally,
// for the caller's coverage computation.
func (r *Runner) verifyMultiOutput(q *query.Instance, parent *Verified) (*Verified, []int) {
	nodes := append([]int{q.T.Output}, r.extraNodes...)
	v := &Verified{Q: q, PerNode: make(map[int][]graph.NodeID, len(nodes))}
	unionSet := make(map[graph.NodeID]bool)
	for _, ni := range nodes {
		var within []graph.NodeID
		if parent != nil && !r.cfg.DisableIncremental && parent.PerNode != nil {
			within = parent.PerNode[ni]
			if within == nil && q.NodeActive(ni) {
				// The node was inactive in the parent but is active here:
				// impossible under refinement of the same edge set shape,
				// but guard by evaluating from scratch.
				within = nil
			}
		}
		var matches []graph.NodeID
		if r.engine != nil {
			matches, _, _ = r.engine.ParEvalNodeFiltered(r.ctx, q, ni, within, nil)
		} else {
			matches, _ = r.matcher.EvalNodeFiltered(q, ni, within, nil)
		}
		v.PerNode[ni] = matches
		for _, m := range matches {
			unionSet[m] = true
		}
	}
	v.Matches = make([]graph.NodeID, 0, len(unionSet))
	for m := range unionSet {
		v.Matches = append(v.Matches, m)
	}
	sort.Slice(v.Matches, func(i, j int) bool { return v.Matches[i] < v.Matches[j] })
	counts := r.counter.Counts(v.Matches)
	v.Feasible = measure.FeasibleCounts(r.cfg.Groups, counts)
	return v, counts
}
