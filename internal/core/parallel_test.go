package core

import (
	"testing"

	"fairsqg/internal/pareto"
)

// TestParQGenQuality: the parallel generator must produce a valid ε-Pareto
// set (its representatives may differ from the sequential run's — Update
// is order-sensitive in which box representative it keeps — but the
// ε-domination contract must hold).
func TestParQGenQuality(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		g := fixtureGraph(t, 30)
		cfg := fixtureConfig(t, g, 0.3, 3)
		ref, err := newRunnerT(t, cfg).AllFeasible()
		if err != nil {
			t.Fatal(err)
		}
		refPoints := make([]pareto.Point, len(ref))
		for i, v := range ref {
			refPoints[i] = v.Point
		}
		res, err := newRunnerT(t, cfg).ParQGen(workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Set) == 0 {
			t.Fatalf("workers=%d: empty result", workers)
		}
		if em := pareto.MinEps(res.Points(), refPoints); em > cfg.Eps+1e-9 {
			t.Errorf("workers=%d: ε_m = %v > ε", workers, em)
		}
		for i, v := range res.Set {
			if !v.Feasible {
				t.Errorf("workers=%d: infeasible instance", workers)
			}
			for j, w := range res.Set {
				if i != j && pareto.Dominates(w.Point, v.Point) {
					t.Errorf("workers=%d: dominated instance kept", workers)
				}
			}
		}
		if res.Stats.Verified == 0 || res.Stats.Feasible == 0 {
			t.Errorf("workers=%d: stats not aggregated: %+v", workers, res.Stats)
		}
	}
}

// TestParQGenDefaultWorkers: workers <= 0 selects GOMAXPROCS.
func TestParQGenDefaultWorkers(t *testing.T) {
	g := fixtureGraph(t, 31)
	cfg := fixtureConfig(t, g, 0.3, 3)
	res, err := newRunnerT(t, cfg).ParQGen(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) == 0 {
		t.Fatal("empty result")
	}
}

func TestPickSplitVariable(t *testing.T) {
	g := fixtureGraph(t, 32)
	cfg := fixtureConfig(t, g, 0.3, 3)
	vi := pickSplitVariable(cfg.Template)
	if vi < 0 {
		t.Fatal("no split variable found")
	}
	// The fixture's range variables have 5-value ladders (6 options),
	// beating the edge variable's 2.
	if cfg.Template.Vars[vi].Kind != 0 { // RangeVar
		t.Errorf("split variable should be a range variable, got %v", cfg.Template.Vars[vi].Name)
	}
}
