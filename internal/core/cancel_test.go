package core

import (
	"context"
	"errors"
	"testing"

	"fairsqg/internal/match"
)

// TestCancelledContextAborts verifies every algorithm honors a cancelled
// run context: it returns the context's error instead of a partial set.
func TestCancelledContextAborts(t *testing.T) {
	g := fixtureGraph(t, 7)
	cfg := fixtureConfig(t, g, 0.2, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Ctx = ctx

	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	algs := map[string]func() (*Result, error){
		"enum":  r.EnumQGen,
		"rf":    r.RfQGen,
		"bi":    r.BiQGen,
		"kungs": r.Kungs,
		"par":   func() (*Result, error) { return r.ParQGen(2) },
		"cbm":   func() (*Result, error) { return r.CBM(CBMOptions{}) },
	}
	for name, run := range algs {
		res, err := run()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got result=%v err=%v", name, res, err)
		}
	}
	if _, err := r.AllFeasible(); !errors.Is(err, context.Canceled) {
		t.Errorf("AllFeasible: want context.Canceled, got %v", err)
	}
}

// TestDeadlineStopsMidRun cancels after the first verification and checks
// the run stops early rather than exploring the whole lattice — through
// both the sequential matcher and the concurrent engine path.
func TestDeadlineStopsMidRun(t *testing.T) {
	for _, workers := range []int{0, 2} {
		g := fixtureGraph(t, 8)
		cfg := fixtureConfig(t, g, 0.05, 2)
		cfg.MatchWorkers = workers
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg.Ctx = ctx
		seen := 0
		cfg.OnVerified = func(ev VerifyEvent) {
			seen++
			if seen == 1 {
				cancel()
			}
		}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RfQGen(); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if seen > 2 {
			t.Errorf("workers=%d: run kept verifying after cancel: %d verifications", workers, seen)
		}
	}
}

// TestExternalEngineSharedAcrossRuns checks that an injected Config.Engine
// survives resetStats, keeps its candidate cache warm across runs, and
// yields results identical to the reference path.
func TestExternalEngineSharedAcrossRuns(t *testing.T) {
	g := fixtureGraph(t, 9)
	ref := fixtureConfig(t, g, 0.2, 3)
	rr, err := NewRunner(ref)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rr.BiQGen()
	if err != nil {
		t.Fatal(err)
	}

	engine := match.NewEngine(g, match.EngineOptions{Workers: 2})
	cfg := fixtureConfig(t, g, 0.2, 3)
	cfg.Engine = engine
	r1, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := r1.BiQGen()
	if err != nil {
		t.Fatal(err)
	}
	hitsAfter1 := engine.Stats().Cache.Hits

	cfg2 := fixtureConfig(t, g, 0.2, 3)
	cfg2.Engine = engine
	r2, err := NewRunner(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := r2.BiQGen()
	if err != nil {
		t.Fatal(err)
	}
	if engine.Stats().Cache.Hits <= hitsAfter1 {
		t.Errorf("second run added no candidate-cache hits: %d then %d", hitsAfter1, engine.Stats().Cache.Hits)
	}
	for i, got := range [][]*Verified{got1.Set, got2.Set} {
		if len(got) != len(want.Set) {
			t.Fatalf("run %d: set size %d != reference %d", i+1, len(got), len(want.Set))
		}
		for j := range got {
			if got[j].Q.Key() != want.Set[j].Q.Key() || got[j].Point != want.Set[j].Point {
				t.Errorf("run %d: entry %d differs from reference", i+1, j)
			}
		}
	}

	// An engine over a different graph is rejected up front.
	other := fixtureGraph(t, 10)
	bad := fixtureConfig(t, other, 0.2, 3)
	bad.Engine = engine
	if _, err := NewRunner(bad); err == nil {
		t.Error("engine bound to a different graph accepted")
	}
}
