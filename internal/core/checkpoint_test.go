package core

import (
	"testing"
)

// TestOnlineCheckpoints: checkpoints fire at the requested cadence plus a
// final one, sizes respect k, and ε is non-decreasing across checkpoints.
func TestOnlineCheckpoints(t *testing.T) {
	g := fixtureGraph(t, 70)
	cfg := fixtureConfig(t, g, 0.05, 3)
	r := newRunnerT(t, cfg)
	var cps []OnlineCheckpoint
	stream := NewRandomStream(cfg.Template, 50, 3)
	res, err := r.OnlineQGen(stream, OnlineOptions{
		K: 4, Window: 8, CheckpointEvery: 10,
		OnCheckpoint: func(cp OnlineCheckpoint) { cps = append(cps, cp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// 50 instances / 10 = 5 checkpoints, all on multiples of 10; no extra
	// final one since 50 % 10 == 0.
	if len(cps) != 5 {
		t.Fatalf("checkpoints = %d", len(cps))
	}
	prevEps := 0.0
	for i, cp := range cps {
		if cp.Processed != (i+1)*10 {
			t.Errorf("checkpoint %d at %d", i, cp.Processed)
		}
		if len(cp.Points) > 4 {
			t.Errorf("checkpoint %d holds %d > k points", i, len(cp.Points))
		}
		if cp.Eps < prevEps {
			t.Errorf("ε decreased at checkpoint %d", i)
		}
		prevEps = cp.Eps
	}
	if res.Processed != 50 {
		t.Errorf("processed = %d", res.Processed)
	}
	// A stream not divisible by the cadence gets a final checkpoint.
	cps = nil
	r2 := newRunnerT(t, cfg)
	_, err = r2.OnlineQGen(NewRandomStream(cfg.Template, 25, 4), OnlineOptions{
		K: 4, Window: 8, CheckpointEvery: 10,
		OnCheckpoint: func(cp OnlineCheckpoint) { cps = append(cps, cp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 3 || cps[len(cps)-1].Processed != 25 {
		t.Fatalf("trailing checkpoint missing: %+v", cps)
	}
}

// TestOnlineDelayAccounting: one delay sample per processed instance, all
// non-negative.
func TestOnlineDelayAccounting(t *testing.T) {
	g := fixtureGraph(t, 71)
	cfg := fixtureConfig(t, g, 0.1, 3)
	r := newRunnerT(t, cfg)
	res, err := r.OnlineQGen(NewRandomStream(cfg.Template, 30, 5), OnlineOptions{K: 3, Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delays) != 30 || len(res.EpsHistory) != 30 {
		t.Fatalf("delays %d, history %d", len(res.Delays), len(res.EpsHistory))
	}
	for _, d := range res.Delays {
		if d < 0 {
			t.Fatal("negative delay")
		}
	}
}
