package core

import (
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// mutatingStream fires a side effect just before handing out arrival
// number `at` — the harness for interleaving graph mutations with an
// online instance stream.
type mutatingStream struct {
	inner InstanceStream
	at    int
	n     int
	fire  func()
}

func (s *mutatingStream) Next() *query.Instance {
	s.n++
	if s.n == s.at {
		s.fire()
	}
	return s.inner.Next()
}

// TestOnlineQGenConsumesMutations: a mutation landing mid-stream makes
// OnlineQGen retarget and re-score its archive — the invariants (|set| ≤
// K, ε monotone) hold across the re-score, and every member of the final
// set carries exactly the score a cold verifier computes on the final
// generation (no stale pre-mutation points survive).
func TestOnlineQGenConsumesMutations(t *testing.T) {
	g := fixtureGraph(t, 30)
	cfg := fixtureConfig(t, g, 0.05, 3)
	live := graph.NewLive(g)
	defer live.Close()
	r := newRunnerT(t, cfg)
	defer r.Close()

	// The fixture forces title=Director on every fourth Person (IDs
	// 0,4,8,…); removing 25 of them guts a big slice of the output label,
	// so archived instances must shrink or die under the new generation.
	var batch []graph.Mutation
	for id := graph.NodeID(0); len(batch) < 25; id += 4 {
		batch = append(batch, graph.Mutation{Op: graph.MutRemoveNode, Node: id})
	}
	stream := &mutatingStream{
		inner: NewRandomStream(cfg.Template, 120, 11),
		at:    60,
		fire: func() {
			if _, err := live.Apply(batch); err != nil {
				t.Fatal(err)
			}
		},
	}
	res, err := r.OnlineQGen(stream, OnlineOptions{
		K: 4, Window: 20, InitialEps: 0.05,
		Mutations: &LiveMutations{L: live},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescores != 1 {
		t.Fatalf("Rescores = %d, want 1", res.Rescores)
	}
	if res.Processed != 120 || len(res.Set) == 0 || len(res.Set) > 4 {
		t.Fatalf("processed %d |set| %d", res.Processed, len(res.Set))
	}
	prev := 0.0
	for _, e := range res.EpsHistory {
		if e < prev-1e-12 {
			t.Fatalf("ε decreased across re-score: %v -> %v", prev, e)
		}
		prev = e
	}

	// Cold-verify the final set against the final generation: feasibility
	// and points must agree bit-for-bit with what the online run kept.
	final := live.Acquire()
	defer final.Close()
	if final.Version() != 2 {
		t.Fatalf("final generation version %d, want 2", final.Version())
	}
	cfg2 := *cfg
	cfg2.G = final
	r2 := newRunnerT(t, &cfg2)
	for _, v := range res.Set {
		nv := r2.verify(v.Q, nil)
		if !nv.Feasible {
			t.Errorf("final set member %s infeasible on final generation", v.Q.Key())
			continue
		}
		if nv.Point != v.Point {
			t.Errorf("stale score survived re-score: %s kept %+v, cold verify %+v",
				v.Q.Key(), v.Point, nv.Point)
		}
	}
}

// TestOnlineQGenCoalescesMutationBurst: a burst of events drains into a
// single re-score of the newest generation, and superseded event
// generations are released along the way.
func TestOnlineQGenCoalescesMutationBurst(t *testing.T) {
	g := fixtureGraph(t, 31)
	cfg := fixtureConfig(t, g, 0.05, 3)
	live := graph.NewLive(g)
	defer live.Close()
	ch := make(chan MutationEvent, 4)
	for i := 0; i < 3; i++ {
		if _, err := live.Apply([]graph.Mutation{{
			Op: graph.MutSetAttr, Node: graph.NodeID(i + 1),
			Attr: "yearsOfExp", Value: graph.Int(int64(i)),
		}}); err != nil {
			t.Fatal(err)
		}
		ch <- MutationEvent{Graph: live.Acquire()}
	}
	r := newRunnerT(t, cfg)
	defer r.Close()
	res, err := r.OnlineQGen(NewRandomStream(cfg.Template, 30, 7), OnlineOptions{
		K: 3, Window: 10, InitialEps: 0.05,
		Mutations: &ChanMutations{C: ch},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescores != 1 {
		t.Fatalf("Rescores = %d, want 1 (burst must coalesce)", res.Rescores)
	}
	if got := r.Config().G.Version(); got != 4 {
		t.Fatalf("runner bound to version %d, want 4", got)
	}
	if err := r.Close(); err != nil { // idempotent with the deferred Close
		t.Fatal(err)
	}
}

// TestRetargetSameGraphNoop: retargeting to the generation already bound
// changes nothing, and a runner that never consumed mutations needs no
// cleanup.
func TestRetargetSameGraphNoop(t *testing.T) {
	g := fixtureGraph(t, 32)
	cfg := fixtureConfig(t, g, 0.1, 3)
	r := newRunnerT(t, cfg)
	m := r.matcher
	r.Retarget(g)
	if r.matcher != m || r.cfg.G != g {
		t.Fatal("Retarget to the bound generation rebuilt state")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
