package core

import (
	"reflect"
	"sort"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// TestPlanSlabs: the plan pins the variable with the most options and
// enumerates every level exactly once (wildcard + full ladder).
func TestPlanSlabs(t *testing.T) {
	g := fixtureGraph(t, 40)
	cfg := fixtureConfig(t, g, 0.3, 3)
	plan := PlanSlabs(cfg.Template)
	if plan.SplitVar != pickSplitVariable(cfg.Template) {
		t.Fatalf("plan split %d != pickSplitVariable %d", plan.SplitVar, pickSplitVariable(cfg.Template))
	}
	v := cfg.Template.Vars[plan.SplitVar]
	if v.Kind != query.RangeVar {
		t.Fatalf("fixture plan should split a range variable")
	}
	want := append([]int{query.Wildcard}, 0, 1, 2, 3, 4)
	if !reflect.DeepEqual(plan.Levels, want[:len(v.Ladder)+1]) {
		t.Fatalf("levels %v, want wildcard + ladder indices", plan.Levels)
	}
	if plan.NumSlabs() != len(v.Ladder)+1 {
		t.Fatalf("NumSlabs %d, want %d", plan.NumSlabs(), len(v.Ladder)+1)
	}
}

// runAllSlabs executes every slab of the plan in a fresh Runner each and
// merges the results in plan order — the single-process analogue of what
// the cluster coordinator does across workers.
func runAllSlabs(t *testing.T, cfg *Config) (*pareto.Archive[SlabEntry], SlabStats) {
	t.Helper()
	plan := PlanSlabs(cfg.Template)
	merged := pareto.NewArchive[SlabEntry](cfg.Eps)
	var stats SlabStats
	for _, level := range plan.Levels {
		res, err := newRunnerT(t, cfg).RunSlab(plan.SplitVar, level)
		if err != nil {
			t.Fatalf("RunSlab(%d, %d): %v", plan.SplitVar, level, err)
		}
		for _, e := range res.Entries {
			merged.Update(e.Point(), e)
		}
		stats.Add(res.Stats)
	}
	return merged, stats
}

// TestRunSlabUnionEquivalence: merging every slab's local archive is
// equivalent to the single-process ParQGen archive — identical box sets
// (the order-independent invariant) and mutual ε-domination, with the same
// private work counters. This is the correctness core of the distributed
// path: a coordinator that runs each slab in a different process and
// merges the results loses nothing against one process sharing an archive.
func TestRunSlabUnionEquivalence(t *testing.T) {
	for _, seed := range []int64{41, 42, 43} {
		g := fixtureGraph(t, seed)
		cfg := fixtureConfig(t, g, 0.3, 3)
		merged, stats := runAllSlabs(t, cfg)

		ref, err := newRunnerT(t, cfg).ParQGen(4)
		if err != nil {
			t.Fatal(err)
		}
		wantBoxes := make(map[pareto.Box]bool)
		for _, p := range ref.Points() {
			wantBoxes[pareto.BoxOf(p, cfg.Eps)] = true
		}
		gotBoxes := make(map[pareto.Box]bool)
		for _, e := range merged.Entries() {
			gotBoxes[e.Box] = true
		}
		if !reflect.DeepEqual(gotBoxes, wantBoxes) {
			t.Errorf("seed %d: slab-union box set %v != ParQGen box set %v", seed, gotBoxes, wantBoxes)
		}
		mergedPoints := merged.Points()
		if em := pareto.MinEps(mergedPoints, ref.Points()); em > cfg.Eps+1e-9 {
			t.Errorf("seed %d: merged set does not ε-dominate ParQGen set: ε_m = %v", seed, em)
		}
		if em := pareto.MinEps(ref.Points(), mergedPoints); em > cfg.Eps+1e-9 {
			t.Errorf("seed %d: ParQGen set does not ε-dominate merged set: ε_m = %v", seed, em)
		}
		if stats.Spawned != ref.Stats.Spawned || stats.Verified != ref.Stats.Verified ||
			stats.Feasible != ref.Stats.Feasible || stats.Pruned != ref.Stats.Pruned {
			t.Errorf("seed %d: slab stats %+v != ParQGen private counters spawned=%d verified=%d feasible=%d pruned=%d",
				seed, stats, ref.Stats.Spawned, ref.Stats.Verified, ref.Stats.Feasible, ref.Stats.Pruned)
		}
	}
}

// TestRunSlabDeterminism: the same slab run twice produces byte-identical
// entry sequences — the property the coordinator's deterministic merge
// order builds on, and what makes cross-process retry safe.
func TestRunSlabDeterminism(t *testing.T) {
	g := fixtureGraph(t, 44)
	cfg := fixtureConfig(t, g, 0.3, 3)
	plan := PlanSlabs(cfg.Template)
	for _, level := range plan.Levels {
		a, err := newRunnerT(t, cfg).RunSlab(plan.SplitVar, level)
		if err != nil {
			t.Fatal(err)
		}
		b, err := newRunnerT(t, cfg).RunSlab(plan.SplitVar, level)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Entries, b.Entries) {
			t.Fatalf("level %d: slab re-run diverged:\n%v\n%v", level, a.Entries, b.Entries)
		}
		if a.Stats != b.Stats {
			t.Fatalf("level %d: slab re-run stats diverged: %+v vs %+v", level, a.Stats, b.Stats)
		}
	}
}

// TestRunSlabEntriesSerializable: entries carry everything a remote
// merge needs — bindings that re-instantiate to the same rendered text.
func TestRunSlabEntriesSerializable(t *testing.T) {
	g := fixtureGraph(t, 45)
	cfg := fixtureConfig(t, g, 0.3, 3)
	plan := PlanSlabs(cfg.Template)
	found := 0
	for _, level := range plan.Levels {
		res, err := newRunnerT(t, cfg).RunSlab(plan.SplitVar, level)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.Entries {
			found++
			q := query.MustInstance(cfg.Template, query.Instantiation(e.Bindings))
			if q.String() != e.Text {
				t.Fatalf("bindings %v render %q, entry says %q", e.Bindings, q.String(), e.Text)
			}
			if e.Bindings[plan.SplitVar] != level {
				t.Fatalf("entry %v escaped its slab (level %d)", e.Bindings, level)
			}
		}
	}
	if found == 0 {
		t.Fatal("no slab produced entries")
	}
}

// TestRunSlabValidation: out-of-range split variables and levels error.
func TestRunSlabValidation(t *testing.T) {
	g := fixtureGraph(t, 46)
	cfg := fixtureConfig(t, g, 0.3, 3)
	r := newRunnerT(t, cfg)
	if _, err := r.RunSlab(99, 0); err == nil {
		t.Error("split variable out of range accepted")
	}
	if _, err := r.RunSlab(-2, 0); err == nil {
		t.Error("negative split variable accepted")
	}
	plan := PlanSlabs(cfg.Template)
	if _, err := r.RunSlab(plan.SplitVar, 99); err == nil {
		t.Error("level out of range accepted")
	}
}

// TestRunSlabNoVariables: a template without variables plans one slab with
// SplitVar -1, and RunSlab evaluates the single root instance.
func TestRunSlabNoVariables(t *testing.T) {
	g := fixtureGraph(t, 47)
	tpl, err := query.NewBuilder("fixed").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanSlabs(tpl)
	if plan.SplitVar != -1 || plan.NumSlabs() != 1 {
		t.Fatalf("no-variable plan %+v, want SplitVar -1 with one slab", plan)
	}
	cfg := &Config{
		G: g, Template: tpl,
		Groups: groups.EqualOpportunity(groups.ByAttribute(g, "Person", "gender"), 3),
		Eps:    0.3,
	}
	res, err := newRunnerT(t, cfg).RunSlab(plan.SplitVar, plan.Levels[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Verified != 1 {
		t.Fatalf("verified %d instances, want 1", res.Stats.Verified)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("entries %v, want the single feasible root", res.Entries)
	}
	sort.Ints(res.Entries[0].Bindings) // no variables: bindings must be empty
	if len(res.Entries[0].Bindings) != 0 {
		t.Fatalf("no-variable instance has bindings %v", res.Entries[0].Bindings)
	}
}
