package core

import (
	"fmt"
	"math/rand"
	"time"

	"fairsqg/internal/graph"
	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// InstanceStream supplies query instances to OnlineQGen; Next returns nil
// when the stream is exhausted.
type InstanceStream interface {
	Next() *query.Instance
}

// RandomStream emits Count random instantiations of a template, drawn
// uniformly over each variable's options with a seeded generator — the
// paper's Exp-3 setup ("simulate instance streams by randomly instantiating
// fixed query templates").
type RandomStream struct {
	T     *query.Template
	Count int
	rng   *rand.Rand
}

// NewRandomStream returns a deterministic random stream.
func NewRandomStream(t *query.Template, count int, seed int64) *RandomStream {
	return &RandomStream{T: t, Count: count, rng: rand.New(rand.NewSource(seed))}
}

// Next implements InstanceStream.
func (s *RandomStream) Next() *query.Instance {
	if s.Count <= 0 {
		return nil
	}
	s.Count--
	in := make(query.Instantiation, len(s.T.Vars))
	for vi := range s.T.Vars {
		v := &s.T.Vars[vi]
		switch v.Kind {
		case query.EdgeVar:
			in[vi] = s.rng.Intn(2)
		case query.RangeVar:
			in[vi] = s.rng.Intn(len(v.Ladder)+1) - 1 // Wildcard..len-1
		}
	}
	return query.MustInstance(s.T, in)
}

// SliceStream replays a fixed list of instances.
type SliceStream struct {
	Items []*query.Instance
	pos   int
}

// Next implements InstanceStream.
func (s *SliceStream) Next() *query.Instance {
	if s.pos >= len(s.Items) {
		return nil
	}
	q := s.Items[s.pos]
	s.pos++
	return q
}

// OnlineOptions parameterizes OnlineQGen.
type OnlineOptions struct {
	// K is the fixed result-set size to maintain.
	K int
	// Window is the cache size w: a rejected instance stays eligible for
	// re-admission for Window arrivals before it expires.
	Window int
	// InitialEps is the starting tolerance ε_m (> 0); defaults to the
	// configuration's Eps when zero.
	InitialEps float64
	// CheckpointEvery, when positive, invokes OnCheckpoint after every
	// that many processed instances (and once more at stream end).
	CheckpointEvery int
	// OnCheckpoint receives periodic snapshots for anytime-quality
	// experiments (Fig. 11(b)).
	OnCheckpoint func(cp OnlineCheckpoint)
	// Mutations, when non-nil, is polled between stream arrivals: on a new
	// graph generation the runner retargets and re-scores every archived
	// and window-cached instance against it at the current tolerance
	// (instances that became infeasible drop out; ε never shrinks). A burst
	// of batches coalesces into one re-score of the newest generation.
	// Callers should Close the runner afterwards to release the last
	// adopted generation.
	Mutations MutationSource
}

// OnlineCheckpoint is a periodic snapshot of the online run.
type OnlineCheckpoint struct {
	// Processed is the number of stream instances consumed so far.
	Processed int
	// Points are the current set's quality coordinates.
	Points []pareto.Point
	// Eps is the current tolerance.
	Eps float64
}

// OnlineResult is the outcome of an online run.
type OnlineResult struct {
	// Set is the final ε-Pareto instance set (|Set| ≤ K).
	Set []*Verified
	// Eps is the final, possibly enlarged tolerance.
	Eps float64
	// EpsHistory records the tolerance after each processed instance.
	EpsHistory []float64
	// Delays records the per-instance maintenance time.
	Delays []time.Duration
	// Processed counts stream instances consumed.
	Processed int
	// Rescores counts graph-mutation events that triggered an archive
	// re-score (coalesced: one per burst, not one per batch).
	Rescores int
	// RescoreDropped counts archived or window-cached instances that
	// became infeasible under a mutated generation and fell out.
	RescoreDropped int
	// Stats aggregates verification work.
	Stats Stats
}

type windowEntry struct {
	v  *Verified
	ts int
}

// OnlineQGen maintains a size-k ε-Pareto instance set over a stream of
// instances (Fig. 8): while the set is below k it admits instances through
// Update, caching rejected ones in a sliding window W_Q; once full, an
// arrival that would grow the set (Update Case 3) instead replaces its
// nearest neighbor in the normalized (δ, f) space, enlarging ε to their
// distance so the previous ε-dominance relations are preserved (Lemma 4).
// After every eviction the window is rescanned for cached instances that
// can re-enter without growing ε.
func (r *Runner) OnlineQGen(stream InstanceStream, opts OnlineOptions) (*OnlineResult, error) {
	if err := r.cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: OnlineQGen requires K > 0, got %d", opts.K)
	}
	if opts.Window < 0 {
		return nil, fmt.Errorf("core: OnlineQGen requires Window >= 0, got %d", opts.Window)
	}
	eps := opts.InitialEps
	if eps <= 0 {
		eps = r.cfg.Eps
	}
	r.resetStats()
	archive := pareto.NewArchive[*Verified](eps)
	divMax, covMax := r.DivMax(), r.CovMax()
	var window []windowEntry
	res := &OnlineResult{}
	now := 0

	expire := func() {
		kept := window[:0]
		for _, e := range window {
			if e.ts >= now-opts.Window+1 {
				kept = append(kept, e)
			}
		}
		window = kept
	}
	cache := func(v *Verified) {
		if opts.Window > 0 {
			window = append(window, windowEntry{v: v, ts: now})
		}
	}
	// rescore drains the mutation source and, when the graph advanced,
	// retargets the runner and re-verifies the whole working state — the
	// archive's payloads and the window cache — against the newest
	// generation. The archive is rebuilt at its current ε (Lemma 4's
	// monotonicity is per-tolerance; re-scored points land wherever the
	// new graph puts them, but the tolerance itself never shrinks).
	var refill func()
	rescore := func() {
		if opts.Mutations == nil {
			return
		}
		var next *graph.Graph
		for ev := opts.Mutations.Poll(); ev != nil; ev = opts.Mutations.Poll() {
			if ev.Graph == nil {
				continue
			}
			if next != nil {
				next.Close()
			}
			next = ev.Graph
		}
		if next == nil {
			return
		}
		if next == r.cfg.G {
			next.Close()
			return
		}
		r.Retarget(next)
		if r.ownedG != nil {
			r.ownedG.Close()
		}
		r.ownedG = next
		divMax, covMax = r.DivMax(), r.CovMax()
		res.Rescores++
		old := archive.Payloads()
		oldWindow := window
		archive = pareto.NewArchive[*Verified](archive.Eps())
		window = nil
		for _, v := range old {
			nv := r.verify(v.Q, nil)
			if !nv.Feasible {
				res.RescoreDropped++
				continue
			}
			out := archive.Update(nv.Point, nv)
			if !out.Accepted {
				cache(nv)
			}
			for _, ev := range out.Evicted {
				cache(ev)
			}
		}
		for _, e := range oldWindow {
			nv := r.verify(e.v.Q, nil)
			if !nv.Feasible {
				res.RescoreDropped++
				continue
			}
			window = append(window, windowEntry{v: nv, ts: e.ts})
		}
		refill()
	}
	// refill re-offers cached instances while they can join without
	// growing the set past K.
	refill = func() {
		kept := window[:0]
		for _, e := range window {
			c := archive.Classify(e.v.Point)
			admit := c == pareto.ReplacedBoxes || c == pareto.ReplacedInstance ||
				(c == pareto.AddedBox && archive.Len() < opts.K)
			if admit {
				out := archive.Update(e.v.Point, e.v)
				for _, ev := range out.Evicted {
					kept = append(kept, windowEntry{v: ev, ts: now})
				}
				continue
			}
			kept = append(kept, e)
		}
		window = kept
	}

	for q := stream.Next(); q != nil; q = stream.Next() {
		start := time.Now()
		now++
		rescore()
		v := r.verify(q, nil)
		expire()
		if !v.Feasible {
			res.Delays = append(res.Delays, time.Since(start))
			res.EpsHistory = append(res.EpsHistory, archive.Eps())
			res.Processed++
			if opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil && res.Processed%opts.CheckpointEvery == 0 {
				opts.OnCheckpoint(OnlineCheckpoint{Processed: res.Processed, Points: archive.Points(), Eps: archive.Eps()})
			}
			continue
		}
		if archive.Len() < opts.K {
			out := archive.Update(v.Point, v)
			if !out.Accepted {
				cache(v)
			}
			for _, ev := range out.Evicted {
				cache(ev)
			}
		} else {
			switch archive.Classify(v.Point) {
			case pareto.Rejected:
				cache(v)
			case pareto.ReplacedBoxes, pareto.ReplacedInstance:
				out := archive.Update(v.Point, v)
				for _, ev := range out.Evicted {
					cache(ev)
				}
				refill()
			case pareto.AddedBox:
				// Replace the nearest neighbor, enlarging ε to their
				// distance; ε never shrinks (Lemma 4).
				ni, dist := archive.NearestNeighbor(v.Point, divMax, covMax)
				if ni >= 0 {
					cache(archive.Remove(ni))
				}
				if dist > archive.Eps() {
					for _, dropped := range archive.SetEps(dist) {
						cache(dropped)
					}
				}
				out := archive.Update(v.Point, v)
				if !out.Accepted {
					cache(v)
				}
				for _, ev := range out.Evicted {
					cache(ev)
				}
				refill()
			}
		}
		res.Delays = append(res.Delays, time.Since(start))
		res.EpsHistory = append(res.EpsHistory, archive.Eps())
		res.Processed++
		if opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil && res.Processed%opts.CheckpointEvery == 0 {
			opts.OnCheckpoint(OnlineCheckpoint{Processed: res.Processed, Points: archive.Points(), Eps: archive.Eps()})
		}
	}
	rescore() // mutations that landed after the last arrival still count
	if opts.OnCheckpoint != nil && (opts.CheckpointEvery <= 0 || res.Processed%opts.CheckpointEvery != 0) {
		opts.OnCheckpoint(OnlineCheckpoint{Processed: res.Processed, Points: archive.Points(), Eps: archive.Eps()})
	}

	res.Set = collectSetFromArchive(archive)
	res.Eps = archive.Eps()
	res.Stats = r.Stats()
	return res, nil
}

func collectSetFromArchive(a *pareto.Archive[*Verified]) []*Verified {
	return collectSet(a)
}
