package core

import (
	"testing"
)

func benchConfig(b *testing.B) *Config {
	g := fixtureGraph(b, 1)
	return fixtureConfig(b, g, 0.1, 3)
}

func BenchmarkEnumQGen(b *testing.B) {
	for _, noIndex := range []bool{false, true} {
		name := "index"
		if noIndex {
			name = "scan"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(b)
			cfg.DisableAttrIndex = noIndex
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := NewRunner(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.EnumQGen(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRfQGen(b *testing.B) {
	cfg := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewRunner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.RfQGen(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBiQGen(b *testing.B) {
	for _, noIndex := range []bool{false, true} {
		name := "index"
		if noIndex {
			name = "scan"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(b)
			cfg.DisableAttrIndex = noIndex
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := NewRunner(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.BiQGen(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncScore measures the end-to-end effect of the incremental
// diversity scorer on whole generation runs with exact (uncapped) pairwise
// scoring, where the pair loop is the dominant per-verification cost.
func BenchmarkIncScore(b *testing.B) {
	for _, alg := range []string{"enum", "bi"} {
		for _, disable := range []bool{false, true} {
			name := alg + "/inc"
			if disable {
				name = alg + "/noinc"
			}
			b.Run(name, func(b *testing.B) {
				cfg := benchConfig(b)
				cfg.MaxPairs = -1
				cfg.DisableIncScore = disable
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := NewRunner(cfg)
					if err != nil {
						b.Fatal(err)
					}
					switch alg {
					case "enum":
						_, err = r.EnumQGen()
					case "bi":
						_, err = r.BiQGen()
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkOnlineQGen(b *testing.B) {
	cfg := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewRunner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		stream := NewRandomStream(cfg.Template, 64, 9)
		if _, err := r.OnlineQGen(stream, OnlineOptions{K: 5, Window: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
