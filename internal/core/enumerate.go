package core

import (
	"time"

	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// EnumerateInstantiations walks the full instance space I(Q) — the
// cartesian product of every variable's binding options (wildcard plus each
// ladder value for range variables; absent/present for edge variables) —
// invoking yield for each. Enumeration stops early when yield returns
// false. The instantiation passed to yield is reused; clone it to retain.
func EnumerateInstantiations(t *query.Template, yield func(query.Instantiation) bool) {
	options := make([][]int, len(t.Vars))
	for vi := range t.Vars {
		v := &t.Vars[vi]
		switch v.Kind {
		case query.EdgeVar:
			options[vi] = []int{0, 1}
		case query.RangeVar:
			opts := make([]int, 0, len(v.Ladder)+1)
			opts = append(opts, query.Wildcard)
			for l := range v.Ladder {
				opts = append(opts, l)
			}
			options[vi] = opts
		}
	}
	in := make(query.Instantiation, len(t.Vars))
	var rec func(vi int) bool
	rec = func(vi int) bool {
		if vi == len(t.Vars) {
			return yield(in)
		}
		for _, o := range options[vi] {
			in[vi] = o
			if !rec(vi + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// EnumQGen is the naive baseline of Theorem 1: it enumerates up to
// 2^|X_E| · |adom_m|^|X_L| instances, verifies every one, and applies the
// Update procedure (the nested-loop ε-Pareto computation) over the feasible
// ones.
func (r *Runner) EnumQGen() (*Result, error) {
	r.resetStats()
	start := time.Now()
	archive := pareto.NewArchive[*Verified](r.cfg.Eps)
	EnumerateInstantiations(r.cfg.Template, func(in query.Instantiation) bool {
		if r.err() != nil {
			return false
		}
		r.stats.Spawned++
		q := query.MustInstance(r.cfg.Template, in)
		if r.verifiedKey(q.Key()) {
			// Distinct instantiations can project to one instance (an edge
			// bound present outside u_o's component); count as pruned.
			r.stats.Pruned++
			return true
		}
		v := r.verify(q, nil)
		if v.Feasible {
			archive.Update(v.Point, v)
		}
		return true
	})
	if err := r.err(); err != nil {
		return nil, err
	}
	return &Result{
		Set:     collectSet(archive),
		Eps:     r.cfg.Eps,
		Stats:   r.Stats(),
		Elapsed: time.Since(start),
	}, nil
}

// Kungs enumerates and verifies the full instance space and computes the
// exact Pareto instance set with Kung's algorithm — the quality reference
// of the paper's evaluation (its I_ε is 1 by construction).
func (r *Runner) Kungs() (*Result, error) {
	r.resetStats()
	start := time.Now()
	var feasible []*Verified
	EnumerateInstantiations(r.cfg.Template, func(in query.Instantiation) bool {
		if r.err() != nil {
			return false
		}
		r.stats.Spawned++
		q := query.MustInstance(r.cfg.Template, in)
		if r.verifiedKey(q.Key()) {
			r.stats.Pruned++
			return true
		}
		v := r.verify(q, nil)
		if v.Feasible {
			feasible = append(feasible, v)
		}
		return true
	})
	if err := r.err(); err != nil {
		return nil, err
	}
	points := make([]pareto.Point, len(feasible))
	for i, v := range feasible {
		points[i] = v.Point
	}
	front := pareto.Kung(points)
	set := make([]*Verified, 0, len(front))
	for _, idx := range front {
		set = append(set, feasible[idx])
	}
	return &Result{
		Set:     set,
		Eps:     0,
		Stats:   r.Stats(),
		Elapsed: time.Since(start),
	}, nil
}

// AllFeasible enumerates and verifies the full instance space and returns
// every feasible instance — the reference set I(Q) that indicators are
// computed against in the experiments.
func (r *Runner) AllFeasible() ([]*Verified, error) {
	r.resetStats()
	var feasible []*Verified
	EnumerateInstantiations(r.cfg.Template, func(in query.Instantiation) bool {
		if r.err() != nil {
			return false
		}
		q := query.MustInstance(r.cfg.Template, in)
		if r.verifiedKey(q.Key()) {
			return true
		}
		v := r.verify(q, nil)
		if v.Feasible {
			feasible = append(feasible, v)
		}
		return true
	})
	if err := r.err(); err != nil {
		return nil, err
	}
	return feasible, nil
}
