package core

import (
	"time"

	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// RfQGen computes an ε-Pareto instance set with the "refine as always"
// strategy (Fig. 3): a depth-first exploration of the instance lattice from
// the most relaxed root q_r. Each visited instance is verified
// incrementally against its parent's match set; infeasible instances cut
// their entire refinement subtree (Lemma 2: refinement only shrinks match
// sets, so no descendant can regain feasibility). Feasible instances pass
// through the Update archive and spawn their restricted front set.
func (r *Runner) RfQGen() (*Result, error) {
	r.resetStats()
	start := time.Now()
	archive := pareto.NewArchive[*Verified](r.cfg.Eps)
	sp := newSpawner(r)
	visited := make(map[string]bool)

	var explore func(in query.Instantiation, parent *Verified)
	explore = func(in query.Instantiation, parent *Verified) {
		if r.err() != nil {
			return
		}
		q := query.MustInstance(r.cfg.Template, in)
		if visited[q.Key()] {
			return
		}
		visited[q.Key()] = true
		r.stats.Spawned++
		v := r.verify(q, parent)
		if !v.Feasible {
			// Backtrack: every refinement of an infeasible instance is
			// infeasible. Count the immediate children as pruned.
			r.stats.Pruned += len(query.RefineSteps(r.cfg.Template, in))
			return
		}
		archive.Update(v.Point, v)
		for _, child := range sp.refine(v) {
			explore(child, v)
		}
	}
	explore(query.Root(r.cfg.Template), nil)
	if err := r.err(); err != nil {
		return nil, err
	}

	return &Result{
		Set:     collectSet(archive),
		Eps:     r.cfg.Eps,
		Stats:   r.Stats(),
		Elapsed: time.Since(start),
	}, nil
}
