package core

import (
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/query"
)

// spawnFixture builds a tiny graph where the template-refinement caps are
// hand-checkable: two directors, recommenders with experience 5 and 9, and
// a distant person with experience 50 who is outside every neighborhood of
// the directors.
func spawnFixture(t *testing.T) (*Runner, *Verified) {
	t.Helper()
	g := graph.New()
	d1 := g.AddNode("Person", map[string]graph.Value{"title": graph.Str("Director"), "gender": graph.Str("female")})
	d2 := g.AddNode("Person", map[string]graph.Value{"title": graph.Str("Director"), "gender": graph.Str("male")})
	r1 := g.AddNode("Person", map[string]graph.Value{"yearsOfExp": graph.Int(5), "gender": graph.Str("male")})
	r2 := g.AddNode("Person", map[string]graph.Value{"yearsOfExp": graph.Int(9), "gender": graph.Str("female")})
	far := g.AddNode("Person", map[string]graph.Value{"yearsOfExp": graph.Int(50), "gender": graph.Str("male")})
	other := g.AddNode("Person", map[string]graph.Value{"gender": graph.Str("male")})
	if err := g.AddEdge(r1, d1, "recommend"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(r2, d2, "recommend"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(far, other, "recommend"); err != nil {
		t.Fatal(err)
	}
	g.Freeze()

	tpl, err := query.NewBuilder("t").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").RangeVar("x", "u1", "yearsOfExp", graph.OpGE).
		Edge("u1", "u_o", "recommend").
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, query.DomainOptions{}); err != nil {
		t.Fatal(err)
	}
	// The global ladder includes 50 (from the far person).
	x := tpl.Vars[tpl.Var("x")]
	if len(x.Ladder) != 3 || !x.Ladder[2].Equal(graph.Int(50)) {
		t.Fatalf("ladder = %v", x.Ladder)
	}
	set := groups.EqualOpportunity(groups.ByAttribute(g, "Person", "gender"), 1)
	cfg := &Config{G: g, Template: tpl, Groups: set, Eps: 0.3}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := query.MustInstance(tpl, query.Root(tpl))
	v := r.verify(root, nil)
	if !v.Feasible {
		t.Fatal("root infeasible in spawn fixture")
	}
	return r, v
}

// TestSpawnRestrictsLadder: the d-hop neighborhood of the directors
// contains experience values 5 and 9 only, so refinement must never spawn
// the binding x = 50 even though it is in the global ladder.
func TestSpawnRestrictsLadder(t *testing.T) {
	r, v := spawnFixture(t)
	sp := newSpawner(r)
	var sawLevels []int
	queue := []*Verified{v}
	seen := map[string]bool{v.Q.Key(): true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, child := range sp.refine(cur) {
			if seen[child.Key()] {
				continue
			}
			seen[child.Key()] = true
			sawLevels = append(sawLevels, child[0])
			cv := r.verify(query.MustInstance(r.cfg.Template, child), cur)
			if cv.Feasible {
				queue = append(queue, cv)
			}
		}
	}
	for _, l := range sawLevels {
		if l == 2 { // ladder index of the value 50
			t.Fatal("spawner offered the unreachable binding x = 50")
		}
	}
	if len(sawLevels) == 0 {
		t.Fatal("spawner produced nothing")
	}
	// The unrestricted spawner would offer level 0 first; make sure the
	// restriction did not remove the useful steps.
	found := false
	for _, l := range sawLevels {
		if l == 0 || l == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("restriction removed reachable bindings")
	}
}

// TestSpawnDisabled: with the optimization off the full ladder is offered.
func TestSpawnDisabled(t *testing.T) {
	r, v := spawnFixture(t)
	r.cfg.DisableTemplateRefinement = true
	sp := newSpawner(r)
	kids := sp.refine(v)
	// Root has x = wildcard; RefineSteps offers level 0 plus the edge-less
	// structure (no edge vars here), so exactly one child: x -> 5.
	if len(kids) != 1 || kids[0][0] != 0 {
		t.Fatalf("unrestricted children = %v", kids)
	}
}

// TestSpawnFixesDeadEdgeVar: an edge variable whose label never occurs
// around the current matches is frozen at absent.
func TestSpawnFixesDeadEdgeVar(t *testing.T) {
	g := graph.New()
	d := g.AddNode("Person", map[string]graph.Value{"title": graph.Str("Director"), "gender": graph.Str("female")})
	r1 := g.AddNode("Person", map[string]graph.Value{"gender": graph.Str("male")})
	if err := g.AddEdge(r1, d, "recommend"); err != nil {
		t.Fatal(err)
	}
	// A "mentors" edge exists only in a far corner of the graph.
	a := g.AddNode("Person", map[string]graph.Value{"gender": graph.Str("male")})
	b := g.AddNode("Person", map[string]graph.Value{"gender": graph.Str("female")})
	if err := g.AddEdge(a, b, "mentors"); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	tpl, err := query.NewBuilder("t").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").
		Node("u2", "Person").
		VarEdge("rec", "u1", "u_o", "recommend").
		VarEdge("men", "u2", "u_o", "mentors").
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	set := groups.EqualOpportunity(groups.ByAttribute(g, "Person", "gender"), 1)
	// Relax the constraint so the root (just the director) is feasible.
	set[1].Want = 0
	cfg := &Config{G: g, Template: tpl, Groups: set, Eps: 0.3}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := query.MustInstance(tpl, query.Root(tpl))
	v := r.verify(root, nil)
	if !v.Feasible {
		t.Fatal("root infeasible")
	}
	sp := newSpawner(r)
	for _, child := range sp.refine(v) {
		if child[tpl.Var("men")] == 1 {
			t.Fatal("dead edge variable was not frozen")
		}
	}
}

// TestPredicateSatisfiable covers the bound test used by the spawner.
func TestPredicateSatisfiable(t *testing.T) {
	lo, hi := graph.Int(5), graph.Int(9)
	cases := []struct {
		op    graph.Op
		bound int64
		want  bool
	}{
		{graph.OpGE, 9, true}, {graph.OpGE, 10, false},
		{graph.OpGT, 8, true}, {graph.OpGT, 9, false},
		{graph.OpLE, 5, true}, {graph.OpLE, 4, false},
		{graph.OpLT, 6, true}, {graph.OpLT, 5, false},
		{graph.OpEQ, 7, true}, {graph.OpEQ, 4, false}, {graph.OpEQ, 10, false},
	}
	for _, c := range cases {
		if got := predicateSatisfiable(c.op, graph.Int(c.bound), lo, hi); got != c.want {
			t.Errorf("satisfiable(%s %d in [5,9]) = %v, want %v", c.op, c.bound, got, c.want)
		}
	}
}
