package core

import (
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// chainTemplate builds a single-variable template whose lattice is a pure
// chain — the adversarial case for sandwich pruning (a pruned middle must
// not disconnect the exploration).
func chainTemplate(t *testing.T, ladder int) (*Config, *graph.Graph) {
	t.Helper()
	g := graph.New()
	// Directors recommended by people with varying experience; experience
	// thresholds form the chain.
	for i := 0; i < 8; i++ {
		gender := "male"
		if i%2 == 0 {
			gender = "female"
		}
		g.AddNode("Person", map[string]graph.Value{
			"title":  graph.Str("Director"),
			"gender": graph.Str(gender),
		})
	}
	for i := 0; i < ladder; i++ {
		p := g.AddNode("Person", map[string]graph.Value{
			"yearsOfExp": graph.Int(int64(i + 1)),
			"gender":     graph.Str("male"),
		})
		// Recommender with experience i+1 recommends directors 0..7-i: the
		// chain loses one director per refinement step.
		for d := 0; d < 8-i; d++ {
			if err := g.AddEdge(p, graph.NodeID(d), "recommend"); err != nil {
				t.Fatal(err)
			}
		}
	}
	g.Freeze()
	tpl, err := query.NewBuilder("chain").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").RangeVar("x", "u1", "yearsOfExp", graph.OpGE).
		Edge("u1", "u_o", "recommend").
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, query.DomainOptions{}); err != nil {
		t.Fatal(err)
	}
	set := groups.EqualOpportunity(groups.ByAttribute(g, "Person", "gender"), 1)
	return &Config{G: g, Template: tpl, Groups: set, Eps: 0.5}, g
}

func TestBiQGenChainLattice(t *testing.T) {
	cfg, _ := chainTemplate(t, 6)
	ref, err := newRunnerT(t, cfg).AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	refPoints := make([]pareto.Point, len(ref))
	for i, v := range ref {
		refPoints[i] = v.Point
	}
	res, err := newRunnerT(t, cfg).BiQGen()
	if err != nil {
		t.Fatal(err)
	}
	if em := pareto.MinEps(res.Points(), refPoints); em > cfg.Eps+1e-9 {
		t.Errorf("chain lattice: ε_m = %v > ε = %v", em, cfg.Eps)
	}
}

func TestSBounds(t *testing.T) {
	cfg, _ := chainTemplate(t, 6)
	tpl := cfg.Template
	b := &sBounds{t: tpl}
	lo := query.Instantiation{0}
	hi := query.Instantiation{4}
	if !b.add(lo, hi) {
		t.Fatal("first pair rejected")
	}
	// Strictly inside: pruned; endpoints: not pruned.
	if !b.prunes(query.Instantiation{2}) {
		t.Error("middle not pruned")
	}
	if b.prunes(lo) || b.prunes(hi) {
		t.Error("endpoints pruned")
	}
	if b.prunes(query.Instantiation{5}) {
		t.Error("outside pruned")
	}
	// A covered pair is not recorded.
	if b.add(query.Instantiation{1}, query.Instantiation{3}) {
		t.Error("covered pair recorded")
	}
	// A wider pair replaces the existing one.
	if !b.add(query.Instantiation{query.Wildcard}, query.Instantiation{5}) {
		t.Fatal("wider pair rejected")
	}
	if len(b.pairs) != 1 {
		t.Errorf("pairs = %d, want 1 after widening", len(b.pairs))
	}
	if !b.prunes(query.Instantiation{4}) {
		t.Error("widened band does not prune")
	}
}

// TestBiQGenSandwichAblation: disabling sandwich pruning must not change
// the quality of the result (only the cost).
func TestBiQGenSandwichAblation(t *testing.T) {
	g := fixtureGraph(t, 12)
	cfg := fixtureConfig(t, g, 0.3, 3)
	base, err := newRunnerT(t, cfg).BiQGen()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := fixtureConfig(t, g, 0.3, 3)
	cfg2.DisableSandwich = true
	noSand, err := newRunnerT(t, cfg2).BiQGen()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := newRunnerT(t, cfg).AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	refPoints := make([]pareto.Point, len(ref))
	for i, v := range ref {
		refPoints[i] = v.Point
	}
	for name, res := range map[string]*Result{"sandwich": base, "no-sandwich": noSand} {
		if em := pareto.MinEps(res.Points(), refPoints); em > cfg.Eps+1e-9 {
			t.Errorf("%s: ε_m = %v", name, em)
		}
	}
	if noSand.Stats.Verified < base.Stats.Verified {
		t.Errorf("sandwich pruning increased verifications: %d vs %d",
			base.Stats.Verified, noSand.Stats.Verified)
	}
}

// TestBoundPruneAblation: the cheap infeasibility check must not change
// feasibility decisions.
func TestBoundPruneAblation(t *testing.T) {
	g := fixtureGraph(t, 13)
	cfg := fixtureConfig(t, g, 0.3, 6)
	withBound, err := newRunnerT(t, cfg).AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := fixtureConfig(t, g, 0.3, 6)
	cfg2.DisableBoundPrune = true
	without, err := newRunnerT(t, cfg2).AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	if len(withBound) != len(without) {
		t.Fatalf("bound prune changed feasibility: %d vs %d feasible", len(withBound), len(without))
	}
	for i := range withBound {
		if withBound[i].Q.Key() != without[i].Q.Key() {
			t.Fatalf("feasible instance %d differs", i)
		}
		if withBound[i].Point != without[i].Point {
			t.Fatalf("instance %d points differ", i)
		}
	}
}
