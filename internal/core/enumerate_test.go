package core

import (
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/query"
)

// TestEnumerationDeduplicatesProjections: instantiations that differ only
// in a range variable on a node outside the output component project to
// distinct keys but identical effective queries; the enumerator verifies
// both (keys differ) while algorithms exploring the lattice reach both
// too. This test pins the bookkeeping: Enum's Spawned equals the space and
// its verified count never exceeds it.
func TestEnumerationBookkeeping(t *testing.T) {
	g := fixtureGraph(t, 60)
	cfg := fixtureConfig(t, g, 0.3, 3)
	r := newRunnerT(t, cfg)
	res, err := r.EnumQGen()
	if err != nil {
		t.Fatal(err)
	}
	space := cfg.Template.InstanceSpaceSize()
	if res.Stats.Spawned != space {
		t.Errorf("spawned %d, space %d", res.Stats.Spawned, space)
	}
	if res.Stats.Verified > space {
		t.Errorf("verified %d > space %d", res.Stats.Verified, space)
	}
	if res.Stats.Verified+res.Stats.Pruned != space {
		t.Errorf("verified %d + pruned %d != space %d", res.Stats.Verified, res.Stats.Pruned, space)
	}
}

// TestKungsSubsetOfFeasible: every Kungs result instance appears among the
// feasible reference set with identical coordinates.
func TestKungsSubsetOfFeasible(t *testing.T) {
	g := fixtureGraph(t, 61)
	cfg := fixtureConfig(t, g, 0.3, 3)
	ref, err := newRunnerT(t, cfg).AllFeasible()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]*Verified{}
	for _, v := range ref {
		byKey[v.Q.Key()] = v
	}
	res, err := newRunnerT(t, cfg).Kungs()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Set {
		w, ok := byKey[v.Q.Key()]
		if !ok {
			t.Fatalf("Kungs returned unknown instance %s", v.Q)
		}
		if w.Point != v.Point {
			t.Fatalf("Kungs point drifted for %s", v.Q)
		}
	}
}

// TestSingleNodeTemplate: a template whose only node is the output — the
// degenerate but legal case (no edges, one range variable).
func TestSingleNodeTemplate(t *testing.T) {
	g := fixtureGraph(t, 62)
	tpl, err := query.NewBuilder("solo").
		Node("u_o", "Person").RangeVar("x", "u_o", "yearsOfExp", graph.OpGE).
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, query.DomainOptions{MaxValues: 5}); err != nil {
		t.Fatal(err)
	}
	set := groups.EqualOpportunity(groups.ByAttribute(g, "Person", "gender"), 3)
	cfg := &Config{G: g, Template: tpl, Groups: set, Eps: 0.3}
	for _, alg := range []func(*Runner) (*Result, error){
		(*Runner).EnumQGen, (*Runner).RfQGen, (*Runner).BiQGen,
	} {
		res, err := alg(newRunnerT(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Set) == 0 {
			t.Fatal("single-node template produced nothing")
		}
	}
}

// TestStressLargerTemplate: a 4-variable template over a denser fixture;
// checks the algorithms stay consistent at a few hundred instances.
func TestStressLargerTemplate(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := fixtureGraph(t, 63)
	tpl, err := query.NewBuilder("stress").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").RangeVar("x1", "u1", "yearsOfExp", graph.OpGE).
		Node("u2", "Person").RangeVar("x2", "u2", "yearsOfExp", graph.OpLE).
		Node("o", "Org").RangeVar("x3", "o", "employees", graph.OpGE).
		VarEdge("e1", "u1", "u_o", "recommend").
		VarEdge("e2", "u2", "u_o", "recommend").
		Edge("u1", "o", "worksAt").
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, query.DomainOptions{MaxValues: 4}); err != nil {
		t.Fatal(err)
	}
	set := groups.EqualOpportunity(groups.ByAttribute(g, "Person", "gender"), 2)
	cfg := &Config{G: g, Template: tpl, Groups: set, Eps: 0.2, MaxPairs: 2000}
	enum, err := newRunnerT(t, cfg).EnumQGen()
	if err != nil {
		t.Fatal(err)
	}
	rf, err := newRunnerT(t, cfg).RfQGen()
	if err != nil {
		t.Fatal(err)
	}
	bi, err := newRunnerT(t, cfg).BiQGen()
	if err != nil {
		t.Fatal(err)
	}
	if !samePointSets(enum.Points(), rf.Points()) || !samePointSets(enum.Points(), bi.Points()) {
		t.Errorf("algorithms disagree on the stress template:\nenum %v\nrf %v\nbi %v",
			enum.Points(), rf.Points(), bi.Points())
	}
}
