package core

import (
	"fmt"
	"time"

	"fairsqg/internal/pareto"
	"fairsqg/internal/query"
)

// SlabPlan is the partition of a template's instance lattice into disjoint
// slabs: the split variable is pinned to one of Levels per slab, and every
// instance of the lattice lives in exactly one slab. ParQGen explores the
// slabs concurrently in one process; the cluster coordinator ships them to
// worker daemons, which is why the plan — unlike the rest of a run's state
// — is a plain serializable value.
type SlabPlan struct {
	// SplitVar is the template variable index each slab pins, or -1 when
	// the template has no variables (the lattice is a single instance and
	// the plan has exactly one slab with level 0).
	SplitVar int `json:"splitVar"`
	// Levels holds one entry per slab: the pinned level of SplitVar
	// (query.Wildcard or a ladder index for range variables; 0/1 for edge
	// variables).
	Levels []int `json:"levels"`
}

// NumSlabs returns the number of slabs in the plan.
func (p SlabPlan) NumSlabs() int { return len(p.Levels) }

// PlanSlabs partitions the template's instance lattice along the variable
// with the most binding options. Slab sub-lattices are disjoint and each
// retains the monotonicity properties of Lemma 2, so per-slab
// infeasibility pruning stays sound regardless of which process executes
// the slab.
func PlanSlabs(t *query.Template) SlabPlan {
	splitVar := pickSplitVariable(t)
	if splitVar < 0 {
		return SlabPlan{SplitVar: -1, Levels: []int{0}}
	}
	var levels []int
	switch t.Vars[splitVar].Kind {
	case query.EdgeVar:
		levels = []int{0, 1}
	default:
		levels = append(levels, query.Wildcard)
		for l := range t.Vars[splitVar].Ladder {
			levels = append(levels, l)
		}
	}
	return SlabPlan{SplitVar: splitVar, Levels: levels}
}

// SlabEntry is one archived representative of a slab run, reduced to what
// crosses a process boundary: the instantiation, its rendered text, the
// answer size and the quality point. A coordinator merges entries from
// many workers through pareto.Archive.Update / Merge without ever needing
// the match sets themselves.
type SlabEntry struct {
	// Bindings is the instance's lattice coordinate (query.Instantiation).
	Bindings []int `json:"bindings"`
	// Text is the instance rendered in the template DSL.
	Text string `json:"text"`
	// Matches is |q(u_o, G)|.
	Matches int `json:"matches"`
	// Div and Cov are the quality coordinates (δ(q), f(q)).
	Div float64 `json:"div"`
	Cov float64 `json:"cov"`
}

// Point returns the entry's quality coordinates.
func (e SlabEntry) Point() pareto.Point { return pareto.Point{Div: e.Div, Cov: e.Cov} }

// SlabStats is the portion of a run's counters a slab execution owns
// privately. Shared engine/cache counters are deliberately excluded: on a
// long-lived worker daemon they are cumulative across slabs and jobs, so
// including them would double-count in any cross-slab aggregation. They
// stay visible on the worker's own /metrics.
type SlabStats struct {
	Spawned   int `json:"spawned"`
	Verified  int `json:"verified"`
	Feasible  int `json:"feasible"`
	Pruned    int `json:"pruned"`
	IncScores int `json:"incScores"`
}

// add folds another slab's counters in.
func (s *SlabStats) Add(o SlabStats) {
	s.Spawned += o.Spawned
	s.Verified += o.Verified
	s.Feasible += o.Feasible
	s.Pruned += o.Pruned
	s.IncScores += o.IncScores
}

// SlabResult is the serializable outcome of one slab execution: the
// slab-local ε-Pareto archive (entries in deterministic insertion order —
// the slab's depth-first exploration order, which makes coordinator-side
// merges reproducible) plus the slab's private work counters.
type SlabResult struct {
	Entries []SlabEntry   `json:"entries"`
	Stats   SlabStats     `json:"stats"`
	Elapsed time.Duration `json:"elapsedNs"`
}

// RunSlab executes one slab of the instance lattice: the RfQGen
// depth-first strategy with splitVar pinned to level, archiving into a
// slab-local ε-Pareto archive. splitVar -1 (the no-variable plan) runs the
// single root instance. The execution is deterministic for a given
// configuration, so two processes running the same slab over the same
// graph produce identical results.
func (r *Runner) RunSlab(splitVar, level int) (*SlabResult, error) {
	if err := r.cfg.Validate(); err != nil {
		return nil, err
	}
	t := r.cfg.Template
	if splitVar != -1 {
		if splitVar < 0 || splitVar >= len(t.Vars) {
			return nil, fmt.Errorf("core: slab split variable %d out of range (template has %d variables)", splitVar, len(t.Vars))
		}
		if !validSlabLevel(t, splitVar, level) {
			return nil, fmt.Errorf("core: slab level %d invalid for variable %q", level, t.Vars[splitVar].Name)
		}
	}
	r.resetStats()
	start := time.Now()
	archive := pareto.NewArchive[*Verified](r.cfg.Eps)
	if splitVar == -1 {
		// No variables: the lattice is the single root instance.
		q := query.MustInstance(t, query.Root(t))
		r.stats.Spawned++
		if v := r.verify(q, nil); v.Feasible {
			archive.Update(v.Point, v)
		}
	} else {
		var mu noopLocker
		exploreSlab(r, newSpawner(r), splitVar, level, archive, &mu)
	}
	if err := r.err(); err != nil {
		return nil, err
	}
	res := &SlabResult{
		Entries: make([]SlabEntry, 0, archive.Len()),
		Stats: SlabStats{
			Spawned:   r.stats.Spawned,
			Verified:  r.stats.Verified,
			Feasible:  r.stats.Feasible,
			Pruned:    r.stats.Pruned,
			IncScores: r.stats.IncScores,
		},
		Elapsed: time.Since(start),
	}
	for _, e := range archive.Entries() {
		v := e.Payload
		res.Entries = append(res.Entries, SlabEntry{
			Bindings: append([]int(nil), v.Q.I...),
			Text:     v.Q.String(),
			Matches:  len(v.Matches),
			Div:      v.Point.Div,
			Cov:      v.Point.Cov,
		})
	}
	return res, nil
}

// validSlabLevel reports whether level is a legal pin for the variable.
func validSlabLevel(t *query.Template, vi, level int) bool {
	if t.Vars[vi].Kind == query.EdgeVar {
		return level == 0 || level == 1
	}
	return level == query.Wildcard || (level >= 0 && level < len(t.Vars[vi].Ladder))
}

// noopLocker satisfies sync.Locker for the single-goroutine slab path,
// where exploreSlab's archive needs no real mutex.
type noopLocker struct{}

func (noopLocker) Lock()   {}
func (noopLocker) Unlock() {}
