package match

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// DefaultCandCacheSize is the candidate-cache capacity used when a caller
// asks for a cache without choosing a size.
const DefaultCandCacheSize = 4096

// CacheStats reports candidate-cache effectiveness.
type CacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits int64
	// Misses counts lookups that had to fall back to a full scan.
	Misses int64
	// Evictions counts entries dropped to stay within capacity.
	Evictions int64
	// Entries is the current number of cached candidate lists.
	Entries int
}

// CandidateCache memoizes the label+literal filtering phase of plan
// construction: the key canonicalizes a template node's (label, bound
// literals) pair, the value is the filtered candidate list over one frozen
// graph. Refinement siblings share most of their bound-literal sets, so a
// shared cache lets them reuse nodeSatisfies scans instead of re-filtering
// the label's whole node list. The cache is bounded (LRU) and safe for
// concurrent use; cached slices are treated as immutable and callers must
// copy before mutating.
type CandidateCache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key   string
	cands []graph.NodeID
}

// NewCandidateCache returns an empty cache holding at most capacity
// candidate lists; capacity <= 0 selects DefaultCandCacheSize.
func NewCandidateCache(capacity int) *CandidateCache {
	if capacity <= 0 {
		capacity = DefaultCandCacheSize
	}
	return &CandidateCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// candKey canonicalizes a (node label, compiled literals) pair: literals
// are sorted by (attr, op, value) so textual permutations of the same
// predicate set share one entry. Value kinds are encoded to keep Str("1")
// distinct from Int(1). The interned AttrID is deliberately excluded — it
// is a per-graph artifact of the attribute name already in the key.
func candKey(label string, lits []query.CompiledLiteral) string {
	parts := make([]string, len(lits))
	for i, l := range lits {
		parts[i] = l.Attr + "\x01" + l.Op.String() + "\x01" +
			strconv.Itoa(int(l.Value.Kind())) + "\x01" + l.Value.String()
	}
	sort.Strings(parts)
	var b strings.Builder
	b.Grow(len(label) + 16*len(parts))
	b.WriteString(label)
	for _, p := range parts {
		b.WriteByte('\x00')
		b.WriteString(p)
	}
	return b.String()
}

// lookup returns the cached candidate list for key; the returned slice must
// not be mutated.
func (c *CandidateCache) lookup(key string) ([]graph.NodeID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).cands, true
}

// store records a candidate list for key, evicting the least recently used
// entry when over capacity. The slice is retained; callers must not mutate
// it afterwards.
func (c *CandidateCache) store(key string, cands []graph.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent eval computed the same list; keep the incumbent.
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, cands: cands})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *CandidateCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.order.Len(),
	}
}

// Reset drops every entry and zeroes the counters.
func (c *CandidateCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.order.Init()
	c.hits, c.misses, c.evictions = 0, 0, 0
}
