package match

import (
	"math/rand"
	"reflect"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// bruteForceOutput computes q(u_o, G) by enumerating every assignment of
// active template nodes to graph nodes — the obviously correct oracle the
// production matcher is checked against on small inputs.
func bruteForceOutput(g *graph.Graph, q *query.Instance, mode Mode) []graph.NodeID {
	active := q.ActiveNodes()
	t := q.T
	n := g.NumNodes()
	assign := make(map[int]graph.NodeID, len(active))
	found := map[graph.NodeID]bool{}

	valid := func() bool {
		// Labels and literals.
		for _, ni := range active {
			v := assign[ni]
			if g.Label(v) != t.Nodes[ni].Label {
				return false
			}
			for _, l := range q.BoundLiterals(ni) {
				if !l.Matches(g, v) {
					return false
				}
			}
		}
		// Injectivity.
		if mode == Isomorphism {
			seen := map[graph.NodeID]bool{}
			for _, ni := range active {
				if seen[assign[ni]] {
					return false
				}
				seen[assign[ni]] = true
			}
		}
		// Edges.
		for _, ei := range q.ActiveEdges() {
			e := t.Edges[ei]
			label := g.LookupLabel(e.Label)
			if label == graph.InvalidLabel || !g.HasEdge(assign[e.From], assign[e.To], label) {
				return false
			}
		}
		return true
	}

	var rec func(i int)
	rec = func(i int) {
		if i == len(active) {
			if valid() {
				found[assign[t.Output]] = true
			}
			return
		}
		for v := 0; v < n; v++ {
			assign[active[i]] = graph.NodeID(v)
			rec(i + 1)
		}
	}
	rec(0)
	out := make([]graph.NodeID, 0, len(found))
	for v := range found {
		out = append(out, v)
	}
	sortNodeIDs(out)
	return out
}

func sortNodeIDs(vs []graph.NodeID) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// tinyRandomGraph builds graphs small enough for brute force (≤ 9 nodes).
func tinyRandomGraph(rng *rand.Rand) *graph.Graph {
	g := graph.New()
	n := 5 + rng.Intn(4)
	labels := []string{"A", "B"}
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(2)], map[string]graph.Value{
			"x": graph.Int(int64(rng.Intn(4))),
		})
	}
	edgeLabels := []string{"r", "s"}
	for e := 0; e < n*2; e++ {
		from := graph.NodeID(rng.Intn(n))
		to := graph.NodeID(rng.Intn(n))
		if from != to {
			_ = g.AddEdge(from, to, edgeLabels[rng.Intn(2)])
		}
	}
	g.Freeze()
	return g
}

// tinyRandomTemplate builds 2-3 node templates over the tiny schema.
func tinyRandomTemplate(rng *rand.Rand) *query.Template {
	b := query.NewBuilder("tiny")
	labels := []string{"A", "B"}
	b.Node("o", labels[rng.Intn(2)])
	b.Node("p", labels[rng.Intn(2)])
	edgeLabels := []string{"r", "s"}
	if rng.Intn(2) == 0 {
		b.Edge("p", "o", edgeLabels[rng.Intn(2)])
	} else {
		b.VarEdge("e", "p", "o", edgeLabels[rng.Intn(2)])
	}
	if rng.Intn(2) == 0 {
		b.Node("q", labels[rng.Intn(2)])
		b.Edge("o", "q", edgeLabels[rng.Intn(2)])
	}
	ops := []graph.Op{graph.OpGE, graph.OpLE, graph.OpEQ}
	b.RangeVar("x", "p", "x", ops[rng.Intn(len(ops))])
	b.Output("o")
	tpl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tpl
}

// TestMatcherAgainstBruteForce fuzzes the production matcher against the
// exhaustive oracle over random tiny graphs, templates and instantiations,
// in both matching modes.
func TestMatcherAgainstBruteForce(t *testing.T) {
	const seed = 2024 // fixed and logged so a failing trial reproduces
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 250; trial++ {
		g := tinyRandomGraph(rng)
		tpl := tinyRandomTemplate(rng)
		if err := tpl.BindDomains(g, query.DomainOptions{}); err != nil {
			continue // label/attr combination absent in this tiny graph
		}
		in := make(query.Instantiation, len(tpl.Vars))
		for vi := range tpl.Vars {
			v := &tpl.Vars[vi]
			if v.Kind == query.EdgeVar {
				in[vi] = rng.Intn(2)
			} else {
				in[vi] = rng.Intn(len(v.Ladder)+1) - 1
			}
		}
		q := query.MustInstance(tpl, in)
		for _, mode := range []Mode{Isomorphism, Homomorphism} {
			m := New(g)
			m.Mode = mode
			got := m.EvalOutput(q)
			want := bruteForceOutput(g, q, mode)
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d trial %d mode %d:\ninstance %s\ngot  %v\nwant %v\ngraph: %d nodes",
					seed, trial, mode, q, got, want, g.NumNodes())
			}
		}
	}
}
