package match

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

func allInstantiations(t *query.Template) []query.Instantiation {
	var out []query.Instantiation
	var rec func(in query.Instantiation, vi int)
	rec = func(in query.Instantiation, vi int) {
		if vi == len(t.Vars) {
			out = append(out, in.Clone())
			return
		}
		v := &t.Vars[vi]
		if v.Kind == query.EdgeVar {
			for _, l := range []int{0, 1} {
				in[vi] = l
				rec(in, vi+1)
			}
			return
		}
		for l := query.Wildcard; l < len(v.Ladder); l++ {
			in[vi] = l
			rec(in, vi+1)
		}
	}
	rec(make(query.Instantiation, len(t.Vars)), 0)
	return out
}

func TestParEvalOutputMatchesSequentialTalent(t *testing.T) {
	g := talentGraph(t)
	tpl := talentTpl(t)
	m := New(g)
	e := NewEngine(g, EngineOptions{Workers: 4})
	for _, in := range allInstantiations(tpl) {
		q := query.MustInstance(tpl, in)
		want := m.EvalOutput(q)
		got, err := e.ParEvalOutput(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: engine %v, matcher %v", q, got, want)
		}
	}
}

func TestParEvalOutputWithin(t *testing.T) {
	g := talentGraph(t)
	tpl := talentTpl(t)
	e := NewEngine(g, EngineOptions{Workers: 4})
	q := query.MustInstance(tpl, query.Instantiation{0, 0, 1})
	full, err := e.ParEvalOutput(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	within, err := e.ParEvalOutputWithin(context.Background(), q, full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, within) {
		t.Errorf("within(full) = %v, want %v", within, full)
	}
	sub, err := e.ParEvalOutputWithin(context.Background(), q, ids(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sub, ids(1)) {
		t.Errorf("within([1]) = %v", sub)
	}
}

func TestParEvalOutputFilteredVeto(t *testing.T) {
	g := talentGraph(t)
	tpl := talentTpl(t)
	e := NewEngine(g, EngineOptions{Workers: 4})
	q := query.MustInstance(tpl, query.Instantiation{0, 0, 1})
	var sawCands int
	matches, ok, err := e.ParEvalOutputFiltered(context.Background(), q, nil,
		func(cands []graph.NodeID) bool { sawCands = len(cands); return false })
	if err != nil {
		t.Fatal(err)
	}
	if ok || matches != nil {
		t.Errorf("vetoed eval returned ok=%v matches=%v", ok, matches)
	}
	if sawCands == 0 {
		t.Error("accept saw no candidates")
	}
}

func TestParEvalCancellation(t *testing.T) {
	g := randomGraph(t, 1000, 4000, 11)
	tpl := randomTemplate(t, g)
	e := NewEngine(g, EngineOptions{Workers: 4})
	q := query.MustInstance(tpl, query.Instantiation{0, 0, 1, 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the evaluation must abort, not complete
	if _, err := e.ParEvalOutput(ctx, q); err != context.Canceled {
		t.Fatalf("cancelled eval returned err=%v, want context.Canceled", err)
	}
	// The abort is prompt: each of the 4 worker matchers expands at most one
	// polling window of search nodes before unwinding — the counter is
	// incremented only after the abort check, so the unwinding frames and
	// the untried candidates add nothing.
	if bt := e.Stats().BacktrackNodes; bt > int64(4*(cancelCheckMask+1)) {
		t.Errorf("pre-cancelled eval expanded %d nodes, want <= %d", bt, 4*(cancelCheckMask+1))
	}
	// The engine stays usable after an aborted evaluation.
	m := New(g)
	want := m.EvalOutput(q)
	got, err := e.ParEvalOutput(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-abort eval %v, want %v", got, want)
	}
}

func TestEngineCacheStats(t *testing.T) {
	g := talentGraph(t)
	tpl := talentTpl(t)
	e := NewEngine(g, EngineOptions{Workers: 2})
	q := query.MustInstance(tpl, query.Instantiation{0, 0, 1})
	if _, err := e.ParEvalOutput(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	first := e.Stats()
	if first.Cache.Misses == 0 {
		t.Fatalf("first eval recorded no cache misses: %+v", first.Cache)
	}
	if _, err := e.ParEvalOutput(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	second := e.Stats()
	if second.Cache.Hits == 0 {
		t.Fatalf("repeat eval recorded no cache hits: %+v", second.Cache)
	}
	if second.Cache.Misses != first.Cache.Misses {
		t.Errorf("repeat eval missed: %d -> %d", first.Cache.Misses, second.Cache.Misses)
	}
	if second.ParEvals != 2 || second.Evals != 2 {
		t.Errorf("counters: %+v", second)
	}
}

func TestEngineCacheDisabled(t *testing.T) {
	g := talentGraph(t)
	e := NewEngine(g, EngineOptions{Workers: 2, CandCacheSize: -1})
	if e.Cache() != nil {
		t.Fatal("CandCacheSize < 0 should disable the cache")
	}
	q := query.MustInstance(talentTpl(t), query.Instantiation{0, 0, 1})
	want := New(g).EvalOutput(q)
	got, err := e.ParEvalOutput(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("uncached engine %v, want %v", got, want)
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	g := randomGraph(t, 300, 900, 7)
	tpl := randomTemplate(t, g)
	e := NewEngine(g, EngineOptions{Workers: 4, CandCacheSize: 64})
	ins := allInstantiations(tpl)
	want := make([][]graph.NodeID, len(ins))
	m := New(g)
	qs := make([]*query.Instance, len(ins))
	for i, in := range ins {
		qs[i] = query.MustInstance(tpl, in)
		want[i] = m.EvalOutput(qs[i])
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, q := range qs {
				got, err := e.ParEvalOutput(context.Background(), q)
				if err != nil {
					errs[w] = err
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					t.Errorf("goroutine %d: %s: %v != %v", w, q, got, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCandidateCacheLRUEviction(t *testing.T) {
	c := NewCandidateCache(2)
	c.store("a", ids(1))
	c.store("b", ids(2))
	if _, ok := c.lookup("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.store("c", ids(3))
	if _, ok := c.lookup("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.lookup("a"); !ok {
		t.Error("a should have survived")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestCandKeyCanonicalizesLiteralOrder(t *testing.T) {
	a := query.CompiledLiteral{Attr: "x", Op: graph.OpGE, Value: graph.Int(3)}
	b := query.CompiledLiteral{Attr: "y", Op: graph.OpLE, Value: graph.Str("q")}
	k1 := candKey("Person", []query.CompiledLiteral{a, b})
	k2 := candKey("Person", []query.CompiledLiteral{b, a})
	if k1 != k2 {
		t.Errorf("literal order changed the key:\n%q\n%q", k1, k2)
	}
	// Distinct value kinds must stay distinct even with equal renderings.
	k3 := candKey("Person", []query.CompiledLiteral{{Attr: "x", Op: graph.OpEQ, Value: graph.Str("1")}})
	k4 := candKey("Person", []query.CompiledLiteral{{Attr: "x", Op: graph.OpEQ, Value: graph.Int(1)}})
	if k3 == k4 {
		t.Error("Str(\"1\") and Int(1) share a cache key")
	}
}
