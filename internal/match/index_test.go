package match

import (
	"math"
	"reflect"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// indexSelectionGraph covers the shapes index-backed selection must get
// right: duplicate values at range boundaries, attributes missing on some
// nodes of the label, every Value kind (including a mixed-kind column),
// an attribute entirely absent from one label, and an empty label
// neighborhood for provably-empty results.
func indexSelectionGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	// "score" has duplicates at both ends (10, 10, ..., 50, 50), "name"
	// strings, "flag" booleans, "mix" mixes numbers and strings, and both
	// "score" and "name" are missing on some Person nodes.
	add := func(attrs map[string]graph.Value) { g.AddNode("Person", attrs) }
	add(map[string]graph.Value{"score": graph.Int(10), "name": graph.Str("ann"), "flag": graph.Bool(true)})
	add(map[string]graph.Value{"score": graph.Int(10), "name": graph.Str("bob"), "mix": graph.Int(1)})
	add(map[string]graph.Value{"score": graph.Int(20), "name": graph.Str("bob"), "flag": graph.Bool(false)})
	add(map[string]graph.Value{"score": graph.Int(30), "mix": graph.Str("x")})
	add(map[string]graph.Value{"score": graph.Int(50), "name": graph.Str("eve")})
	add(map[string]graph.Value{"score": graph.Int(50), "mix": graph.Num(math.NaN())})
	add(map[string]graph.Value{"name": graph.Str("ann")})
	add(nil)
	g.AddNode("Org", map[string]graph.Value{"employees": graph.Int(10)})
	g.Freeze()
	return g
}

// TestIndexSelectionMatchesScan sweeps every operator, every value kind,
// missing attributes, boundary duplicates and empty results through
// index-backed selection and asserts the candidate list is byte-identical
// to the linear-scan reference path.
func TestIndexSelectionMatchesScan(t *testing.T) {
	g := indexSelectionGraph(t)
	indexed := New(g)
	scanning := New(g)
	scanning.DisableAttrIndex = true

	bounds := map[string][]graph.Value{
		"score": {graph.Int(5), graph.Int(10), graph.Int(15), graph.Int(20),
			graph.Int(50), graph.Int(99), graph.Null, graph.Num(math.NaN())},
		"name": {graph.Str(""), graph.Str("ann"), graph.Str("bob"), graph.Str("zzz"), graph.Null},
		"flag": {graph.Bool(false), graph.Bool(true), graph.Null},
		"mix":  {graph.Int(1), graph.Str("x"), graph.Num(math.NaN()), graph.Null},
		// "employees" never occurs on Person: the uniform-literal shortcut
		// must prove the result empty or pass everything through.
		"employees": {graph.Int(10), graph.Null},
	}
	ops := []graph.Op{graph.OpLT, graph.OpLE, graph.OpEQ, graph.OpGE, graph.OpGT}
	for attr, bs := range bounds {
		for _, op := range ops {
			for _, bound := range bs {
				lits := query.CompileLiterals(g, []query.BoundLiteral{{Attr: attr, Op: op, Value: bound}})
				got := indexed.selectCandidates("Person", lits)
				want := scanning.selectCandidates("Person", lits)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("Person[%s %s %v]: index %v, scan %v", attr, op, bound, got, want)
				}
			}
		}
	}
	// Conjunctions: the most selective literal drives the gather and the
	// rest verify against columns.
	multi := [][]query.BoundLiteral{
		{{Attr: "score", Op: graph.OpGE, Value: graph.Int(20)}, {Attr: "name", Op: graph.OpEQ, Value: graph.Str("bob")}},
		{{Attr: "score", Op: graph.OpLE, Value: graph.Int(10)}, {Attr: "flag", Op: graph.OpEQ, Value: graph.Bool(true)}},
		{{Attr: "employees", Op: graph.OpGE, Value: graph.Int(1)}, {Attr: "score", Op: graph.OpGT, Value: graph.Int(15)}},
		{{Attr: "score", Op: graph.OpGT, Value: graph.Int(99)}, {Attr: "name", Op: graph.OpEQ, Value: graph.Str("ann")}},
	}
	for _, raw := range multi {
		lits := query.CompileLiterals(g, raw)
		got := indexed.selectCandidates("Person", lits)
		want := scanning.selectCandidates("Person", lits)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Person[%v]: index %v, scan %v", raw, got, want)
		}
	}
	// Both matchers counted their access paths.
	if indexed.Stats.IndexSelections == 0 {
		t.Error("index matcher never took the index path")
	}
	if indexed.Stats.ScanSelections == 0 {
		t.Error("index matcher never fell back to a scan (cutoff untested)")
	}
	if scanning.Stats.IndexSelections != 0 {
		t.Error("DisableAttrIndex matcher took the index path")
	}
}

// TestIndexSelectionOrdering asserts index-gathered candidates come back
// in ascending NodeID order (the permutation is value-ordered, so the
// re-sort is load-bearing for the byte-identical contract).
func TestIndexSelectionOrdering(t *testing.T) {
	g := indexSelectionGraph(t)
	m := New(g)
	lits := query.CompileLiterals(g, []query.BoundLiteral{
		{Attr: "score", Op: graph.OpGE, Value: graph.Int(50)},
	})
	got := m.selectCandidates("Person", lits)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("candidates out of NodeID order: %v", got)
		}
	}
	if m.Stats.IndexSelections != 1 {
		t.Fatalf("expected the index path, stats: %+v", m.Stats)
	}
}
