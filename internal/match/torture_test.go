package match

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// multiNullGraph is a deliberately hostile fixture: a multigraph (parallel
// edges with identical endpoints and label must dedup, not double-count) in
// which attribute values include Null (absent) and NaN — the bottom of the
// value total order — on both template-constrained attributes.
//
//	p0 Person exp 10      p0 -rec-> p3 (x2), p0 -rec-> p1, p0 -works-> o4 (x2)
//	p1 Person exp NaN     p1 -rec-> p3, p1 -works-> o4
//	p2 Person (no exp)    p2 -rec-> p3 (x3), p2 -works-> o5
//	p3 Person exp 3       p3 -rec-> p0, p3 -works-> o5
//	o4 Org size 100
//	o5 Org (no size)
func multiNullGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	p0 := g.AddNode("Person", map[string]graph.Value{"exp": graph.Int(10)})
	p1 := g.AddNode("Person", map[string]graph.Value{"exp": graph.Num(math.NaN())})
	p2 := g.AddNode("Person", map[string]graph.Value{})
	p3 := g.AddNode("Person", map[string]graph.Value{"exp": graph.Int(3)})
	o4 := g.AddNode("Org", map[string]graph.Value{"size": graph.Int(100)})
	o5 := g.AddNode("Org", map[string]graph.Value{})
	for _, e := range []struct {
		from, to graph.NodeID
		label    string
	}{
		{p0, p3, "rec"}, {p0, p3, "rec"}, {p0, p1, "rec"},
		{p1, p3, "rec"},
		{p2, p3, "rec"}, {p2, p3, "rec"}, {p2, p3, "rec"},
		{p3, p0, "rec"},
		{p0, o4, "works"}, {p0, o4, "works"},
		{p1, o4, "works"},
		{p2, o5, "works"}, {p3, o5, "works"},
	} {
		if err := g.AddEdge(e.from, e.to, e.label); err != nil {
			t.Fatal(err)
		}
	}
	g.Freeze()
	return g
}

// multiNullTpl ranges over both hostile attributes; the edge variable turns
// the recommender off entirely, exercising projection.
func multiNullTpl(t testing.TB, g *graph.Graph) *query.Template {
	t.Helper()
	tpl, err := query.NewBuilder("multinull").
		Node("u_o", "Person").
		Node("u1", "Person").RangeVar("x", "u1", "exp", graph.OpGE).
		Node("org", "Org").RangeVar("y", "org", "size", graph.OpLE).
		VarEdge("e1", "u1", "u_o", "rec").
		Edge("u1", "org", "works").
		Output("u_o").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, query.DomainOptions{MaxValues: 3}); err != nil {
		t.Fatal(err)
	}
	return tpl
}

// TestDifferentialMultigraphNullNaN runs the hostile fixture through the
// full engine matrix AND the exhaustive brute-force oracle: parallel edges,
// Null and NaN attribute values must not change anyone's answer.
func TestDifferentialMultigraphNullNaN(t *testing.T) {
	g := multiNullGraph(t)
	tpl := multiNullTpl(t, g)
	for _, mode := range []Mode{Isomorphism, Homomorphism} {
		engines := engineMatrix(g, mode)
		for _, in := range allInstantiations(tpl) {
			q := query.MustInstance(tpl, in)
			checkDifferential(t, g, q, mode, engines)
			m := New(g)
			m.Mode = mode
			got := m.EvalOutput(q)
			want := bruteForceOutput(g, q, mode)
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("mode %d: %s: matcher %v, brute force %v", mode, q, got, want)
			}
		}
	}
}

// TestOrderParityCounters drives two long-lived matchers — one per order —
// through every instantiation of the mid-size random fixture and demands
// bit-identical results plus identical cumulative work counters for every
// phase that runs before ordering: candidate selection access paths and
// structural pruning cannot depend on the order knob.
func TestOrderParityCounters(t *testing.T) {
	g := randomGraph(t, 300, 900, differentialSeed+3)
	tpl := randomTemplate(t, g)
	for _, mode := range []Mode{Isomorphism, Homomorphism} {
		dyn := New(g)
		dyn.Mode = mode
		st := New(g)
		st.Mode = mode
		st.Order = OrderStatic
		for _, in := range allInstantiations(tpl) {
			q := query.MustInstance(tpl, in)
			got, want := dyn.EvalOutput(q), st.EvalOutput(q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("mode %d: %s: dynamic %v, static %v", mode, q, got, want)
			}
		}
		if dyn.Stats.Evals != st.Stats.Evals ||
			dyn.Stats.IndexSelections != st.Stats.IndexSelections ||
			dyn.Stats.ScanSelections != st.Stats.ScanSelections ||
			dyn.Stats.SigPruned != st.Stats.SigPruned {
			t.Errorf("mode %d: pre-ordering counters diverged:\ndynamic %+v\nstatic  %+v",
				mode, dyn.Stats, st.Stats)
		}
	}
}

// TestDisconnectedFallback covers the defensive disconnected-remainder
// branches in matchingOrder and pickNext (both the mask fast path and the
// scan fallback): projected instances are connected by construction, so the
// branches are reached through a hand-built two-component plan.
func TestDisconnectedFallback(t *testing.T) {
	g := talentGraph(t)
	m := New(g)
	person, org := g.LookupLabel("Person"), g.LookupLabel("Org")
	p := &plan{
		nodes:    []int{0, 1},
		nodePos:  []int{0, 1},
		rootIdx:  0,
		adj:      make([][]planEdge, 2),
		adjMask:  []uint64{0, 0},
		fullMask: 3,
		cands:    [][]graph.NodeID{{2}, {4}}, // a (Person), big (Org)
		candBits: make([]graph.Bitset, 2),
		labels:   []graph.LabelID{person, org},
	}
	if got := matchingOrder(p, 0); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("matchingOrder fallback = %v, want [0 1]", got)
	}

	// pickNext with node 0 assigned and node 1 unreachable: the mask fast
	// path must fall back to the lowest unassigned node with no pivot.
	m.assign = []graph.NodeID{2, graph.InvalidNode}
	m.assignedMask, m.reachMask = 1, 0
	ui, pivot, _, _ := m.pickNext(p)
	if ui != 1 || pivot != graph.InvalidNode {
		t.Errorf("mask fallback picked (%d, pivot %d), want (1, InvalidNode)", ui, pivot)
	}
	// The scan path (plans of > 64 nodes run it) must agree.
	p.adjMask = nil
	ui, pivot, _, _ = m.pickNext(p)
	if ui != 1 || pivot != graph.InvalidNode {
		t.Errorf("scan fallback picked (%d, pivot %d), want (1, InvalidNode)", ui, pivot)
	}
	p.adjMask = []uint64{0, 0}

	// The full embedding succeeds through the fallback under both orders:
	// with no constraint edges any candidate pair embeds.
	p.order = matchingOrder(p, 0)
	for _, order := range []Order{OrderDynamic, OrderStatic} {
		mm := New(g)
		mm.Order = order
		if !mm.embedFrom(p, 2) {
			t.Errorf("order=%s: embedFrom failed on the disconnected plan", order)
		}
	}
}

// budgetChainGraph is A0 -r-> B1 -r-> C2 plus an edge-free A3 distractor
// (structurally pruned from the root candidates).
func budgetChainGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	a0 := g.AddNode("A", map[string]graph.Value{})
	b1 := g.AddNode("B", map[string]graph.Value{})
	c2 := g.AddNode("C", map[string]graph.Value{})
	g.AddNode("A", map[string]graph.Value{})
	if err := g.AddEdge(a0, b1, "r"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b1, c2, "r"); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	return g
}

func chainTpl(t testing.TB, labels ...string) *query.Template {
	t.Helper()
	names := []string{"o", "b", "c"}
	b := query.NewBuilder("chain")
	for i, l := range labels {
		b.Node(names[i], l)
	}
	for i := 1; i < len(labels); i++ {
		b.Edge(names[i-1], names[i], "r")
	}
	b.Output("o")
	tpl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

// TestBudgetSemantics pins the MaxBacktrackNodes contract: a budget of N
// admits exactly N search-node expansions per root candidate — in
// particular budget 1 completes a two-node plan (one expansion suffices; the
// historical off-by-one spent the whole budget reaching the first expansion
// and reported a false non-match) — and 0 stays the unbounded sentinel.
func TestBudgetSemantics(t *testing.T) {
	g := budgetChainGraph(t)
	two := query.MustInstance(chainTpl(t, "A", "B"), query.Instantiation{})
	three := query.MustInstance(chainTpl(t, "A", "B", "C"), query.Instantiation{})

	eval := func(q *query.Instance, budget int) ([]graph.NodeID, int) {
		m := New(g)
		m.MaxBacktrackNodes = budget
		res := m.EvalOutput(q)
		return res, m.Stats.BacktrackNodes
	}

	// budget=1: the two-node plan needs exactly one expansion and matches.
	if res, bt := eval(two, 1); !reflect.DeepEqual(res, ids(0)) || bt != 1 {
		t.Errorf("two-node budget=1: res %v (want [0]), backtrack %d (want 1)", res, bt)
	}
	// The three-node plan needs two; budget=1 is a conservative non-match.
	if res, _ := eval(three, 1); res != nil {
		t.Errorf("three-node budget=1: res %v, want nil (budget exhausted)", res)
	}
	// budget=N: two expansions complete the three-node chain exactly.
	if res, bt := eval(three, 2); !reflect.DeepEqual(res, ids(0)) || bt != 2 {
		t.Errorf("three-node budget=2: res %v (want [0]), backtrack %d (want 2)", res, bt)
	}
	// budget=0 is unbounded, not "no budget left".
	if res, bt := eval(three, 0); !reflect.DeepEqual(res, ids(0)) || bt != 2 {
		t.Errorf("three-node budget=0: res %v (want [0]), backtrack %d (want 2)", res, bt)
	}
	// The budget is per root candidate, not per evaluation: a second eval on
	// the same matcher gets a fresh allowance.
	m := New(g)
	m.MaxBacktrackNodes = 1
	for i := 0; i < 2; i++ {
		if res := m.EvalOutput(two); !reflect.DeepEqual(res, ids(0)) {
			t.Errorf("eval %d with budget=1: res %v, want [0]", i, res)
		}
	}

	// The engine plumbs the budget through to its pooled matchers.
	e := NewEngine(g, EngineOptions{Workers: 2, MaxBacktrackNodes: 1})
	if res, err := e.ParEvalOutput(context.Background(), two); err != nil || !reflect.DeepEqual(res, ids(0)) {
		t.Errorf("engine budget=1: res %v err %v, want [0]", res, err)
	}
}

// TestCancellationCounterStability pins the abort bookkeeping: with a
// pre-cancelled context the search may expand at most one polling window of
// nodes (the counter is incremented only after the abort check, so the
// unwinding frames and the remaining root candidates add nothing).
func TestCancellationCounterStability(t *testing.T) {
	g := randomGraph(t, 1000, 4000, 11)
	tpl := randomTemplate(t, g)
	q := query.MustInstance(tpl, query.Instantiation{0, 0, 1, 1})

	m := New(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.BindContext(ctx)
	if res := m.EvalOutput(q); !m.Aborted() {
		t.Fatalf("pre-cancelled eval completed with %d matches instead of aborting", len(res))
	}
	if bt := m.Stats.BacktrackNodes; bt > cancelCheckMask+1 {
		t.Errorf("aborted eval expanded %d nodes, want <= %d", bt, cancelCheckMask+1)
	}

	// Unbinding restores a fully working matcher with correct answers.
	m.BindContext(nil)
	want := New(g).EvalOutput(q)
	if got := m.EvalOutput(q); m.Aborted() || !reflect.DeepEqual(got, want) {
		t.Errorf("post-abort eval: aborted=%v got %v, want %v", m.Aborted(), got, want)
	}
}

// bruteForceNodeMatches enumerates every assignment like bruteForceOutput
// but collects the graph nodes one specific template node maps to across all
// embeddings — the oracle for per-node pruning soundness.
func bruteForceNodeMatches(g *graph.Graph, q *query.Instance, mode Mode, node int) map[graph.NodeID]bool {
	active := q.ActiveNodes()
	t := q.T
	n := g.NumNodes()
	assign := make(map[int]graph.NodeID, len(active))
	found := map[graph.NodeID]bool{}

	valid := func() bool {
		for _, ni := range active {
			v := assign[ni]
			if g.Label(v) != t.Nodes[ni].Label {
				return false
			}
			for _, l := range q.BoundLiterals(ni) {
				if !l.Matches(g, v) {
					return false
				}
			}
		}
		if mode == Isomorphism {
			seen := map[graph.NodeID]bool{}
			for _, ni := range active {
				if seen[assign[ni]] {
					return false
				}
				seen[assign[ni]] = true
			}
		}
		for _, ei := range q.ActiveEdges() {
			e := t.Edges[ei]
			label := g.LookupLabel(e.Label)
			if label == graph.InvalidLabel || !g.HasEdge(assign[e.From], assign[e.To], label) {
				return false
			}
		}
		return true
	}

	var rec func(i int)
	rec = func(i int) {
		if i == len(active) {
			if valid() {
				found[assign[node]] = true
			}
			return
		}
		for v := 0; v < n; v++ {
			assign[active[i]] = graph.NodeID(v)
			rec(i + 1)
		}
	}
	rec(0)
	return found
}

// TestSignaturePruneSoundness is the property behind structurePrune: any
// candidate the degree/signature check rejects must fail every brute-force
// embedding at that plan node. The sweep runs tiny random fixtures until a
// quota of actually-pruned candidates has been verified against the oracle.
func TestSignaturePruneSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(differentialSeed + 9))
	prunedChecked := 0
	for trial := 0; trial < 150 && prunedChecked < 60; trial++ {
		g := tinyRandomGraph(rng)
		tpl := tinyRandomTemplate(rng)
		if err := tpl.BindDomains(g, query.DomainOptions{}); err != nil {
			continue
		}
		for _, in := range allInstantiations(tpl) {
			q := query.MustInstance(tpl, in)
			for _, mode := range []Mode{Isomorphism, Homomorphism} {
				m := New(g)
				m.Mode = mode
				p := m.buildPlan(q, q.T.Output, nil)
				if p == nil {
					continue
				}
				for i, ni := range p.nodes {
					if len(p.adj[i]) == 0 {
						continue
					}
					req := m.structureReq(p, i)
					var oracle map[graph.NodeID]bool
					for _, v := range m.filteredCandidates(q.T.Nodes[ni].Label, q.CompiledLiterals(m.G, ni)) {
						if m.structureAdmits(req, v) {
							continue
						}
						if oracle == nil {
							oracle = bruteForceNodeMatches(g, q, mode, ni)
						}
						if oracle[v] {
							t.Fatalf("trial %d mode %d: %s: node %d candidate %d pruned but embeds",
								trial, mode, q, ni, v)
						}
						prunedChecked++
					}
				}
			}
		}
	}
	if prunedChecked == 0 {
		t.Fatal("the sweep never exercised the pruning path; fixture generator changed?")
	}
}

// TestIsoDegreePruneSoundness pins the isomorphism edge-count requirement: a
// node with two distinct same-label template children needs two incident
// graph edges in that run. a4 (one r-edge) is count-pruned under
// isomorphism; a3 (two parallel r-edges to ONE child) survives the count but
// fails injectivity in the search; under homomorphism both match.
func TestIsoDegreePruneSoundness(t *testing.T) {
	g := graph.New()
	a0 := g.AddNode("A", map[string]graph.Value{})
	b1 := g.AddNode("B", map[string]graph.Value{})
	b2 := g.AddNode("B", map[string]graph.Value{})
	a3 := g.AddNode("A", map[string]graph.Value{})
	a4 := g.AddNode("A", map[string]graph.Value{})
	for _, e := range []struct{ from, to graph.NodeID }{
		{a0, b1}, {a0, b2}, // two distinct children
		{a3, b1}, {a3, b1}, // parallel edges, one child
		{a4, b1}, // single edge
	} {
		if err := g.AddEdge(e.from, e.to, "r"); err != nil {
			t.Fatal(err)
		}
	}
	g.Freeze()

	tpl, err := query.NewBuilder("twins").
		Node("o", "A").Node("p", "B").Node("q", "B").
		Edge("o", "p", "r").Edge("o", "q", "r").
		Output("o").Build()
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustInstance(tpl, query.Instantiation{})

	for _, c := range []struct {
		mode Mode
		want []graph.NodeID
	}{
		{Isomorphism, ids(int(a0))},
		{Homomorphism, ids(int(a0), int(a3), int(a4))},
	} {
		m := New(g)
		m.Mode = c.mode
		got := m.EvalOutput(q)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("mode %d: got %v, want %v", c.mode, got, c.want)
		}
		want := bruteForceOutput(g, q, c.mode)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("mode %d: matcher %v, brute force %v", c.mode, got, want)
		}
		if c.mode == Isomorphism && m.Stats.SigPruned == 0 {
			t.Error("isomorphism eval pruned nothing; the count requirement is dead")
		}
	}
}
