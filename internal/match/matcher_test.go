package match

import (
	"math/rand"
	"reflect"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// talentGraph builds a small professional network with known matches.
//
//	directors: d1 (id 0), d2 (id 1)
//	users:     a (id 2, exp 12), b (id 3, exp 4)
//	orgs:      big (id 4, 2000 employees), small (id 5, 50)
//	edges:     a recommend d1, a recommend d2, b recommend d2,
//	           a worksAt big, b worksAt small
func talentGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	d1 := g.AddNode("Person", map[string]graph.Value{"title": graph.Str("Director"), "name": graph.Str("dee")})
	d2 := g.AddNode("Person", map[string]graph.Value{"title": graph.Str("Director"), "name": graph.Str("dan")})
	a := g.AddNode("Person", map[string]graph.Value{"title": graph.Str("Engineer"), "yearsOfExp": graph.Int(12)})
	b := g.AddNode("Person", map[string]graph.Value{"title": graph.Str("Engineer"), "yearsOfExp": graph.Int(4)})
	big := g.AddNode("Org", map[string]graph.Value{"employees": graph.Int(2000)})
	small := g.AddNode("Org", map[string]graph.Value{"employees": graph.Int(50)})
	for _, e := range []struct {
		from, to graph.NodeID
		label    string
	}{
		{a, d1, "recommend"}, {a, d2, "recommend"}, {b, d2, "recommend"},
		{a, big, "worksAt"}, {b, small, "worksAt"},
	} {
		if err := g.AddEdge(e.from, e.to, e.label); err != nil {
			t.Fatal(err)
		}
	}
	g.Freeze()
	return g
}

// talentTpl is a template over talentGraph: directors recommended by a user
// with parameterized experience who works at a parameterized-size org; the
// recommend edge carries an edge variable.
func talentTpl(t testing.TB) *query.Template {
	t.Helper()
	tpl, err := query.NewBuilder("talent").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").RangeVar("x1", "u1", "yearsOfExp", graph.OpGE).
		Node("o", "Org").RangeVar("x2", "o", "employees", graph.OpGE).
		VarEdge("e1", "u1", "u_o", "recommend").
		Edge("u1", "o", "worksAt").
		Output("u_o").
		SetLadder("x1", graph.Int(4), graph.Int(12)).
		SetLadder("x2", graph.Int(50), graph.Int(2000)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

func ids(vs ...int) []graph.NodeID {
	out := make([]graph.NodeID, len(vs))
	for i, v := range vs {
		out[i] = graph.NodeID(v)
	}
	return out
}

func TestEvalOutputNodeOnly(t *testing.T) {
	g := talentGraph(t)
	tpl := talentTpl(t)
	m := New(g)
	// Edge variable off: instance collapses to the output node alone —
	// every director matches.
	q := query.MustInstance(tpl, query.Instantiation{query.Wildcard, query.Wildcard, 0})
	got := m.EvalOutput(q)
	if !reflect.DeepEqual(got, ids(0, 1)) {
		t.Errorf("q(G) = %v, want [0 1]", got)
	}
}

func TestEvalOutputFullPattern(t *testing.T) {
	g := talentGraph(t)
	tpl := talentTpl(t)
	m := New(g)
	cases := []struct {
		name string
		in   query.Instantiation
		want []graph.NodeID
	}{
		// exp >= 4, employees >= 50: both recommenders qualify; d1 and d2.
		{"relaxed", query.Instantiation{0, 0, 1}, ids(0, 1)},
		// exp >= 12: only user a qualifies; a recommends both.
		{"exp12", query.Instantiation{1, 0, 1}, ids(0, 1)},
		// employees >= 2000: only a (works at big); both directors.
		{"bigorg", query.Instantiation{0, 1, 1}, ids(0, 1)},
		// exp >= 12 AND employees >= 2000: a only; both directors.
		{"both", query.Instantiation{1, 1, 1}, ids(0, 1)},
		// wildcards with edge on: same as relaxed.
		{"wild", query.Instantiation{query.Wildcard, query.Wildcard, 1}, ids(0, 1)},
	}
	for _, c := range cases {
		q := query.MustInstance(tpl, c.in)
		if got := m.EvalOutput(q); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: q(G) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEvalOutputSelectiveRecommender(t *testing.T) {
	g := talentGraph(t)
	// Template without the org branch: u1 --recommend--> u_o only.
	tpl, err := query.NewBuilder("rec").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").RangeVar("x1", "u1", "yearsOfExp", graph.OpGE).
		Edge("u1", "u_o", "recommend").
		Output("u_o").
		SetLadder("x1", graph.Int(4), graph.Int(12)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(g)
	// exp >= 12: only a recommends → d1, d2.
	q := query.MustInstance(tpl, query.Instantiation{1})
	if got := m.EvalOutput(q); !reflect.DeepEqual(got, ids(0, 1)) {
		t.Errorf("exp>=12: %v", got)
	}
	// Make it harder: d1 is only recommended by a.
	// exp >= 4 gives both directors too; check a label-mismatch literal.
	tpl2, err := query.NewBuilder("rec2").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").Literal("u1", "yearsOfExp", graph.OpLE, graph.Int(4)).
		Edge("u1", "u_o", "recommend").
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	// Only b has exp <= 4; b recommends d2 only.
	q2 := query.MustInstance(tpl2, query.Instantiation{})
	if got := m.EvalOutput(q2); !reflect.DeepEqual(got, ids(1)) {
		t.Errorf("exp<=4: %v, want [1]", got)
	}
}

func TestEvalOutputWithin(t *testing.T) {
	g := talentGraph(t)
	tpl := talentTpl(t)
	m := New(g)
	q := query.MustInstance(tpl, query.Instantiation{0, 0, 1})
	full := m.EvalOutput(q)
	within := m.EvalOutputWithin(q, full)
	if !reflect.DeepEqual(full, within) {
		t.Errorf("within(full) = %v, want %v", within, full)
	}
	// Restricting to a subset yields the subset's members only.
	sub := m.EvalOutputWithin(q, ids(1))
	if !reflect.DeepEqual(sub, ids(1)) {
		t.Errorf("within([1]) = %v", sub)
	}
	// Restricting to a non-matching node yields nothing.
	if got := m.EvalOutputWithin(q, ids(3)); got != nil {
		t.Errorf("within([3]) = %v, want nil", got)
	}
}

func TestIsomorphismVsHomomorphism(t *testing.T) {
	// Triangle pattern requiring two distinct recommenders of one node.
	g := graph.New()
	d := g.AddNode("Person", map[string]graph.Value{"title": graph.Str("Director")})
	a := g.AddNode("Person", nil)
	if err := g.AddEdge(a, d, "recommend"); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	tpl, err := query.NewBuilder("two").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").
		Node("u2", "Person").
		Edge("u1", "u_o", "recommend").
		Edge("u2", "u_o", "recommend").
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustInstance(tpl, query.Instantiation{})
	iso := New(g)
	if got := iso.EvalOutput(q); got != nil {
		t.Errorf("isomorphism: %v, want nil (only one recommender exists)", got)
	}
	hom := New(g)
	hom.Mode = Homomorphism
	if got := hom.EvalOutput(q); !reflect.DeepEqual(got, ids(0)) {
		t.Errorf("homomorphism: %v, want [0]", got)
	}
}

func TestEdgeLabelNeverInGraph(t *testing.T) {
	g := talentGraph(t)
	tpl, err := query.NewBuilder("none").
		Node("u_o", "Person").
		Node("u1", "Person").
		Edge("u1", "u_o", "mentors"). // label absent from G
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(g)
	if got := m.EvalOutput(query.MustInstance(tpl, query.Instantiation{})); got != nil {
		t.Errorf("unknown edge label: %v, want nil", got)
	}
}

func TestMatcherStats(t *testing.T) {
	g := talentGraph(t)
	tpl := talentTpl(t)
	m := New(g)
	q := query.MustInstance(tpl, query.Instantiation{0, 0, 1})
	m.EvalOutput(q)
	if m.Stats.Evals != 1 || m.Stats.CandidatesChecked == 0 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestNewRequiresFrozen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New on unfrozen graph should panic")
		}
	}()
	New(graph.New())
}

// TestIncrementalEqualsScratch is the incVerify correctness property: for
// random refinement chains, evaluating a child restricted to its parent's
// match set equals evaluating it from scratch.
func TestIncrementalEqualsScratch(t *testing.T) {
	const graphSeed, chainSeed = 42, 99 // fixed and logged so failures reproduce
	g := randomGraph(t, 300, 900, graphSeed)
	tpl := randomTemplate(t, g)
	m := New(g)
	rng := rand.New(rand.NewSource(chainSeed))
	for trial := 0; trial < 60; trial++ {
		in := query.Root(tpl)
		parentMatches := m.EvalOutput(query.MustInstance(tpl, in))
		for step := 0; step < 6; step++ {
			kids := query.RefineSteps(tpl, in)
			if len(kids) == 0 {
				break
			}
			in = kids[rng.Intn(len(kids))]
			q := query.MustInstance(tpl, in)
			scratch := m.EvalOutput(q)
			inc := m.EvalOutputWithin(q, parentMatches)
			if !reflect.DeepEqual(scratch, inc) {
				t.Fatalf("seeds %d/%d trial %d step %d: scratch %v != incremental %v for %s",
					graphSeed, chainSeed, trial, step, scratch, inc, q)
			}
			// Lemma 2: matches shrink along refinement.
			if len(scratch) > len(parentMatches) {
				t.Fatalf("refinement grew the match set: %d > %d", len(scratch), len(parentMatches))
			}
			parentMatches = scratch
		}
	}
}

// randomGraph builds a random two-label graph with numeric attributes.
func randomGraph(t testing.TB, nodes, edges int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < nodes; i++ {
		label := "Person"
		attrs := map[string]graph.Value{"yearsOfExp": graph.Int(int64(rng.Intn(20)))}
		if i%5 == 0 {
			label = "Org"
			attrs = map[string]graph.Value{"employees": graph.Int(int64(10 + rng.Intn(5000)))}
		}
		g.AddNode(label, attrs)
	}
	for i := 0; i < edges; i++ {
		from := graph.NodeID(rng.Intn(nodes))
		to := graph.NodeID(rng.Intn(nodes))
		label := "recommend"
		if g.Label(to) == "Org" {
			label = "worksAt"
		} else if g.Label(from) == "Org" {
			label = "employs"
		}
		if from != to {
			if err := g.AddEdge(from, to, label); err != nil {
				t.Fatal(err)
			}
		}
	}
	g.Freeze()
	return g
}

func randomTemplate(t testing.TB, g *graph.Graph) *query.Template {
	t.Helper()
	tpl, err := query.NewBuilder("rand").
		Node("u_o", "Person").
		Node("u1", "Person").RangeVar("x1", "u1", "yearsOfExp", graph.OpGE).
		Node("o", "Org").RangeVar("x2", "o", "employees", graph.OpGE).
		VarEdge("e1", "u1", "u_o", "recommend").
		VarEdge("e2", "u1", "o", "worksAt").
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, query.DomainOptions{MaxValues: 6}); err != nil {
		t.Fatal(err)
	}
	return tpl
}
