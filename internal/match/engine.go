package match

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fairsqg/internal/graph"
	"fairsqg/internal/measure"
	"fairsqg/internal/query"
)

// EngineOptions configures NewEngine.
type EngineOptions struct {
	// Mode selects the matching semantics (default Isomorphism).
	Mode Mode
	// MaxBacktrackNodes bounds matcher search per candidate (0 unbounded).
	MaxBacktrackNodes int
	// Workers is the per-evaluation fan-out; <= 0 selects GOMAXPROCS.
	Workers int
	// CandCacheSize bounds the shared candidate cache: 0 selects
	// DefaultCandCacheSize, a negative value disables caching entirely.
	CandCacheSize int
	// Order selects the backtracking variable-ordering policy for pooled
	// matchers (default OrderDynamic; see Order). Results are identical in
	// both settings.
	Order Order
	// DisableAttrIndex forces pooled matchers onto the linear-scan
	// reference path for candidate selection (see Matcher.DisableAttrIndex).
	DisableAttrIndex bool
	// DistCacheSize bounds the shared pair-distance cache that memoizes
	// diversity distances d(v,w) across the jobs evaluating on this engine:
	// 0 selects the default size (measure.DefaultPairCacheSize entries), a
	// negative value disables the cache. Results are identical in all
	// settings.
	DistCacheSize int
	// SharedCache, when non-nil, is used as the engine's candidate cache
	// instead of constructing one (CandCacheSize is then ignored). Entries
	// are keyed by graph generation, so one cache can safely back the
	// successive engines a mutating graph goes through — the warm entries
	// of untouched generations keep hitting. Same-graph sharing only;
	// callers pass the previous engine's Cache().
	SharedCache *CandidateCache
	// SharedDistCache is the analogous injection for the pair-distance
	// cache; see SharedCache.
	SharedDistCache *measure.PairCache
}

// EngineStats aggregates the work done through an Engine.
type EngineStats struct {
	// ParEvals counts ParEval* invocations.
	ParEvals int64
	// Evals, CandidatesChecked and BacktrackNodes sum the pooled matchers'
	// counters (see Stats).
	Evals             int64
	CandidatesChecked int64
	BacktrackNodes    int64
	// IndexSelections and ScanSelections sum the pooled matchers' candidate
	// access-path counters (see Stats).
	IndexSelections int64
	ScanSelections  int64
	// SigPruned sums the pooled matchers' degree/signature pruning counter
	// (see Stats.SigPruned).
	SigPruned int64
	// Cache reports candidate-cache effectiveness; zero when disabled.
	Cache CacheStats
	// Dist reports pair-distance cache effectiveness; zero when disabled.
	Dist measure.PairCacheStats
}

// Engine is a concurrent match engine over one frozen graph: it owns a
// shared, bounded candidate cache and a pool of per-goroutine Matcher
// scratch states, and evaluates instances by partitioning the output
// node's candidate list across a worker fan-out. Results are byte-for-byte
// identical to the sequential Matcher's (the reference implementation) —
// candidates are verified independently and merged in sorted order.
//
// An Engine is safe for concurrent use: any number of goroutines may call
// ParEval* simultaneously (each call fans out up to Workers goroutines of
// its own).
type Engine struct {
	g                 *graph.Graph
	mode              Mode
	order             Order
	maxBacktrackNodes int
	workers           int
	cache             *CandidateCache
	dist              *measure.PairCache
	disableAttrIndex  bool
	pool              sync.Pool

	parEvals          atomic.Int64
	evals             atomic.Int64
	candidatesChecked atomic.Int64
	backtrackNodes    atomic.Int64
	indexSelections   atomic.Int64
	scanSelections    atomic.Int64
	sigPruned         atomic.Int64
}

// NewEngine returns an engine over a frozen graph.
func NewEngine(g *graph.Graph, opts EngineOptions) *Engine {
	if !g.Frozen() {
		panic("match: graph must be frozen")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := opts.SharedCache
	if cache == nil && opts.CandCacheSize >= 0 {
		cache = NewCandidateCache(opts.CandCacheSize)
	}
	dist := opts.SharedDistCache
	if dist == nil && opts.DistCacheSize >= 0 {
		dist = measure.NewPairCache(opts.DistCacheSize)
	}
	e := &Engine{
		g:                 g,
		mode:              opts.Mode,
		order:             opts.Order,
		maxBacktrackNodes: opts.MaxBacktrackNodes,
		workers:           workers,
		cache:             cache,
		dist:              dist,
		disableAttrIndex:  opts.DisableAttrIndex,
	}
	e.pool.New = func() any {
		m := New(g)
		m.Mode = e.mode
		m.Order = e.order
		m.MaxBacktrackNodes = e.maxBacktrackNodes
		m.Cache = e.cache
		m.DisableAttrIndex = e.disableAttrIndex
		return m
	}
	return e
}

// Graph returns the engine's frozen graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Workers returns the configured per-evaluation fan-out.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the shared candidate cache, or nil when disabled. The
// cache is goroutine-safe and may be attached to external sequential
// Matchers (Matcher.Cache) so they share filter results with the engine.
func (e *Engine) Cache() *CandidateCache { return e.cache }

// DistCache returns the shared pair-distance cache, or nil when disabled.
// The cache is goroutine-safe; runners evaluating diversity on this
// engine's graph memoize their pairwise distances here, so a long-lived
// engine keeps the distances warm across jobs the way the candidate cache
// keeps the filter scans warm.
func (e *Engine) DistCache() *measure.PairCache { return e.dist }

// Stats returns a snapshot of the engine's aggregated counters. Work done
// by matchers currently mid-evaluation is included only once they finish.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		ParEvals:          e.parEvals.Load(),
		Evals:             e.evals.Load(),
		CandidatesChecked: e.candidatesChecked.Load(),
		BacktrackNodes:    e.backtrackNodes.Load(),
		IndexSelections:   e.indexSelections.Load(),
		ScanSelections:    e.scanSelections.Load(),
		SigPruned:         e.sigPruned.Load(),
	}
	if e.cache != nil {
		s.Cache = e.cache.Stats()
	}
	if e.dist != nil {
		s.Dist = e.dist.Stats()
	}
	return s
}

// acquire checks a Matcher out of the pool.
func (e *Engine) acquire() *Matcher { return e.pool.Get().(*Matcher) }

// release folds a Matcher's counters into the engine aggregate and returns
// it to the pool.
func (e *Engine) release(m *Matcher) {
	e.evals.Add(int64(m.Stats.Evals))
	e.candidatesChecked.Add(int64(m.Stats.CandidatesChecked))
	e.backtrackNodes.Add(int64(m.Stats.BacktrackNodes))
	e.indexSelections.Add(int64(m.Stats.IndexSelections))
	e.scanSelections.Add(int64(m.Stats.ScanSelections))
	e.sigPruned.Add(int64(m.Stats.SigPruned))
	m.Stats = Stats{}
	m.bindContext(nil)
	e.pool.Put(m)
}

// ParEvalOutput computes q(G) = q(u_o, G) concurrently; the result is
// sorted and identical to Matcher.EvalOutput. It returns ctx's error when
// the evaluation was cancelled before completing.
func (e *Engine) ParEvalOutput(ctx context.Context, q *query.Instance) ([]graph.NodeID, error) {
	matches, _, err := e.ParEvalOutputFiltered(ctx, q, nil, nil)
	return matches, err
}

// ParEvalOutputWithin is ParEvalOutput restricted to output-node candidates
// drawn from within (nil means all nodes with the output label); passing a
// verified parent's match set implements incVerify.
func (e *Engine) ParEvalOutputWithin(ctx context.Context, q *query.Instance, within []graph.NodeID) ([]graph.NodeID, error) {
	matches, _, err := e.ParEvalOutputFiltered(ctx, q, within, nil)
	return matches, err
}

// ParEvalOutputFiltered mirrors Matcher.EvalOutputFiltered: accept, when
// non-nil, sees the output node's arc-consistent candidate superset and may
// veto the backtracking phase (ok reports false).
func (e *Engine) ParEvalOutputFiltered(ctx context.Context, q *query.Instance, within []graph.NodeID,
	accept func(candidates []graph.NodeID) bool) (matches []graph.NodeID, ok bool, err error) {
	return e.ParEvalNodeFiltered(ctx, q, q.T.Output, within, accept)
}

// ParEvalNodeFiltered generalizes ParEvalOutputFiltered to any template
// node, mirroring Matcher.EvalNodeFiltered.
func (e *Engine) ParEvalNodeFiltered(ctx context.Context, q *query.Instance, node int, within []graph.NodeID,
	accept func(candidates []graph.NodeID) bool) (matches []graph.NodeID, ok bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.parEvals.Add(1)
	planner := e.acquire()
	defer e.release(planner)
	planner.bindContext(ctx)
	planner.Stats.Evals++
	if !q.NodeActive(node) {
		return nil, true, nil
	}
	p := planner.buildPlan(q, node, within)
	if p == nil {
		return nil, true, ctx.Err()
	}
	rootIdx := p.nodePos[node]
	rootCands := p.cands[rootIdx]
	if accept != nil && !accept(rootCands) {
		return nil, false, nil
	}
	if len(p.nodes) == 1 {
		// rootCands is private to this plan (filteredCandidates copies on
		// cache hits) and the plan is discarded here, so it can be returned
		// without another copy.
		sortIDs(rootCands)
		return rootCands, true, nil
	}

	workers := e.workers
	if workers > len(rootCands) {
		workers = len(rootCands)
	}
	if workers < 1 {
		workers = 1
	}
	// Contiguous static blocks: each worker verifies an independent slice
	// of the candidate list against the shared read-only plan with its own
	// Matcher scratch state. Per-chunk results keep candidate order, so the
	// final sort makes the merge deterministic under any scheduling.
	chunk := (len(rootCands) + workers - 1) / workers
	results := make([][]graph.NodeID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(rootCands) {
			hi = len(rootCands)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m := e.acquire()
			defer e.release(m)
			m.bindContext(ctx)
			var local []graph.NodeID
			for _, v := range rootCands[lo:hi] {
				if m.aborted || ctx.Err() != nil {
					return
				}
				m.Stats.CandidatesChecked++
				if m.embedFrom(p, v) {
					local = append(local, v)
				}
			}
			results[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	total := 0
	for _, rs := range results {
		total += len(rs)
	}
	out := make([]graph.NodeID, 0, total)
	for _, rs := range results {
		out = append(out, rs...)
	}
	sortIDs(out)
	if len(out) == 0 {
		return nil, true, nil
	}
	return out, true, nil
}

// sortIDs restores ascending order. Candidate lists come off the label
// index in ascending NodeID order and the contiguous chunks are merged in
// that same order, so in practice this is a linear verification; the sort
// fallback keeps the deterministic-merge guarantee for caller-supplied
// unsorted within-sets.
func sortIDs(ids []graph.NodeID) {
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			return
		}
	}
}
