package match

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// rebuildLive reconstructs a mutated graph's live content from scratch
// through the ordinary builder + Freeze path, with the label dictionary
// pre-interned in the mutated graph's order so LabelIDs (and therefore
// signature bits and bucket identities) coincide. Returns the rebuilt
// graph and the monotone live-node remap (mutated NodeID → rebuilt
// NodeID).
func rebuildLive(t testing.TB, g *graph.Graph) (*graph.Graph, map[graph.NodeID]graph.NodeID) {
	t.Helper()
	nb := graph.New()
	for _, l := range g.DictLabels() {
		nb.Intern(l)
	}
	remap := make(map[graph.NodeID]graph.NodeID, g.NumLive())
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if g.Alive(id) {
			remap[id] = nb.AddNode(g.Label(id), g.Attrs(id))
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		for _, e := range g.Out(id) {
			if err := nb.AddEdge(remap[id], remap[e.To], g.LabelOf(e.Label)); err != nil {
				t.Fatal(err)
			}
		}
	}
	nb.Freeze()
	return nb, remap
}

// mutationRounds drives the random fixture through a few batches that
// reshape candidate sets: attribute rewrites crossing the templates' range
// bounds, node churn in both labels, and edge churn on both edge labels.
func mutationRounds(t testing.TB, l *graph.Live, rng *rand.Rand, rounds int) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		g := l.Graph()
		var batch []graph.Mutation
		people := g.NodesByLabel("Person")
		orgs := g.NodesByLabel("Org")
		for i := 0; i < 4 && len(people) > 0; i++ {
			v := people[rng.Intn(len(people))]
			batch = append(batch, graph.Mutation{
				Op: graph.MutSetAttr, Node: v, Attr: "yearsOfExp", Value: graph.Int(int64(rng.Intn(20))),
			})
		}
		if len(orgs) > 0 {
			batch = append(batch, graph.Mutation{
				Op: graph.MutSetAttr, Node: orgs[rng.Intn(len(orgs))], Attr: "employees",
				Value: graph.Int(int64(10 + rng.Intn(5000))),
			})
		}
		batch = append(batch, graph.Mutation{
			Op: graph.MutAddNode, Label: "Person",
			Attrs: []graph.AttrPair{{Name: "yearsOfExp", Value: graph.Int(int64(rng.Intn(20)))}},
		})
		if len(people) > 1 {
			from, to := people[rng.Intn(len(people))], people[rng.Intn(len(people))]
			if from != to {
				batch = append(batch, graph.Mutation{Op: graph.MutAddEdge, From: from, To: to, Label: "recommend"})
			}
		}
		if len(people) > 0 && len(orgs) > 0 {
			batch = append(batch, graph.Mutation{
				Op: graph.MutAddEdge, From: people[rng.Intn(len(people))],
				To: orgs[rng.Intn(len(orgs))], Label: "worksAt",
			})
		}
		if round%2 == 1 && len(people) > 0 {
			batch = append(batch, graph.Mutation{Op: graph.MutRemoveNode, Node: people[rng.Intn(len(people))]})
		}
		if _, err := l.Apply(batch); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round == rounds/2 {
			l.Compact()
		}
	}
}

// TestMutatedGraphDifferential is the matcher-level equivalence suite for
// the mutation layer: after a series of batches (with a compaction in the
// middle), the mutated graph and a from-scratch rebuild of the same
// content must produce identical results — and identical Stats, proving
// candidate selection takes the same access paths — for every instance,
// across the full order × index × cache engine matrix.
func TestMutatedGraphDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(differentialSeed + 11))
	base := randomGraph(t, 200, 600, differentialSeed+11)
	l := graph.NewLive(base)
	defer l.Close()
	mutationRounds(t, l, rng, 6)

	g := l.Graph()
	rebuilt, remap := rebuildLive(t, g)
	if err := graph.Equivalent(g, rebuilt); err != nil {
		t.Fatalf("structural equivalence: %v", err)
	}

	tpl := randomTemplate(t, g)
	tplR := randomTemplate(t, rebuilt)
	engines := engineMatrix(g, Isomorphism)
	insts := allInstantiations(tpl)
	instsR := allInstantiations(tplR)
	if len(insts) != len(instsR) {
		t.Fatalf("instantiation counts differ: %d vs %d (domains diverged)", len(insts), len(instsR))
	}
	for i := range insts {
		q := query.MustInstance(tpl, insts[i])
		qr := query.MustInstance(tplR, instsR[i])

		m := New(g)
		want := m.EvalOutput(q)
		mr := New(rebuilt)
		gotR := mr.EvalOutput(qr)

		var mapped []graph.NodeID
		for _, v := range want {
			mapped = append(mapped, remap[v])
		}
		if !reflect.DeepEqual(mapped, gotR) {
			t.Fatalf("%s: mutated %v (mapped %v) vs rebuilt %v", q, want, mapped, gotR)
		}
		if m.Stats != mr.Stats {
			t.Errorf("%s: stats diverged:\nmutated %+v\nrebuilt %+v", q, m.Stats, mr.Stats)
		}
		for name, e := range engines {
			got, err := e.ParEvalOutput(context.Background(), q)
			if err != nil {
				t.Fatalf("%s: %s: %v", name, q, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: %s: engine %v vs sequential %v", name, q, got, want)
			}
		}
	}
}

// TestSharedCacheAcrossGenerations is the cache-invalidation regression
// suite: one candidate cache shared by the successive engines of a
// mutating graph must never serve a pre-mutation entry (zero cross-
// generation hits), while a second graph sharing the same cache keeps
// hitting its own warm entries throughout.
func TestSharedCacheAcrossGenerations(t *testing.T) {
	base := talentGraph(t)
	l := graph.NewLive(base)
	defer l.Close()
	other := randomGraph(t, 60, 150, 99)

	shared := NewCandidateCache(0)
	tpl := talentTpl(t)
	inst := allInstantiations(tpl)[0]

	run := func(e *Engine) []graph.NodeID {
		t.Helper()
		got, err := e.ParEvalOutput(context.Background(), query.MustInstance(tpl, inst))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	e1 := NewEngine(l.Graph(), EngineOptions{SharedCache: shared, Workers: 1})
	first := run(e1)
	afterFirst := shared.Stats()
	if afterFirst.Misses == 0 || afterFirst.Entries == 0 {
		t.Fatalf("first run should populate the cache: %+v", afterFirst)
	}
	run(e1)
	warmed := shared.Stats()
	if warmed.Hits <= afterFirst.Hits {
		t.Fatalf("same-generation rerun should hit: %+v -> %+v", afterFirst, warmed)
	}

	// Warm the unrelated graph's entries through the same shared cache.
	eOther := NewEngine(other, EngineOptions{SharedCache: shared, Workers: 1})
	tplO := randomTemplate(t, other)
	instO := allInstantiations(tplO)[0]
	qO := query.MustInstance(tplO, instO)
	if _, err := eOther.ParEvalOutput(context.Background(), qO); err != nil {
		t.Fatal(err)
	}
	otherWarm := shared.Stats()

	// Mutate: drop one director the first run returned.
	if len(first) == 0 {
		t.Fatal("fixture returned no results")
	}
	if _, err := l.Apply([]graph.Mutation{{Op: graph.MutRemoveNode, Node: first[0]}}); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(l.Graph(), EngineOptions{SharedCache: shared, Workers: 1})
	second := run(e2)
	afterMutate := shared.Stats()
	if afterMutate.Hits != otherWarm.Hits {
		t.Errorf("cross-generation cache hits: %d after mutation, want %d (stale candidates served)",
			afterMutate.Hits, otherWarm.Hits)
	}
	for _, v := range second {
		if v == first[0] {
			t.Errorf("removed node %d still in results %v", first[0], second)
		}
	}
	// New generation's entries are cached under their own keys.
	run(e2)
	if s := shared.Stats(); s.Hits <= afterMutate.Hits {
		t.Errorf("post-mutation rerun should hit the fresh entries: %+v -> %+v", afterMutate, s)
	}
	// The unrelated graph's warm entries survived the other graph's
	// mutation: rerunning it hits without new misses.
	beforeOther := shared.Stats()
	if _, err := eOther.ParEvalOutput(context.Background(), qO); err != nil {
		t.Fatal(err)
	}
	afterOther := shared.Stats()
	if afterOther.Misses != beforeOther.Misses {
		t.Errorf("unrelated graph's entries were invalidated: misses %d -> %d", beforeOther.Misses, afterOther.Misses)
	}
	if afterOther.Hits <= beforeOther.Hits {
		t.Errorf("unrelated graph's rerun should hit: %+v -> %+v", beforeOther, afterOther)
	}
}

// TestCompactionKeepsCacheWarm asserts the flip side of invalidation: a
// compaction rebuilds the representation without changing the logical
// generation, so cached candidate lists stay valid and keep hitting.
func TestCompactionKeepsCacheWarm(t *testing.T) {
	base := talentGraph(t)
	l := graph.NewLive(base)
	defer l.Close()
	if _, err := l.Apply([]graph.Mutation{{Op: graph.MutAddNode, Label: "Person",
		Attrs: []graph.AttrPair{{Name: "title", Value: graph.Str("Director")}}}}); err != nil {
		t.Fatal(err)
	}
	shared := NewCandidateCache(0)
	tpl := talentTpl(t)
	q := query.MustInstance(tpl, allInstantiations(tpl)[0])

	e1 := NewEngine(l.Graph(), EngineOptions{SharedCache: shared, Workers: 1})
	want, err := e1.ParEvalOutput(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	before := shared.Stats()
	l.Compact()
	e2 := NewEngine(l.Graph(), EngineOptions{SharedCache: shared, Workers: 1})
	got, err := e2.ParEvalOutput(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	after := shared.Stats()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("results changed across compaction: %v vs %v", got, want)
	}
	if after.Misses != before.Misses {
		t.Errorf("compaction invalidated the cache: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Errorf("post-compaction run should hit the warm entries: %+v -> %+v", before, after)
	}
}
