package match

import (
	"testing"

	"fairsqg/internal/query"
)

// BenchmarkEvalOutputScratch measures from-scratch verification of a mid
// lattice instance on a 3000-node random graph.
func BenchmarkEvalOutputScratch(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	mid := query.MustInstance(tpl, query.Instantiation{1, 1, 1, 1})
	m := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalOutput(mid)
	}
}

// BenchmarkEvalOutputIncremental measures incVerify: the same instance
// verified within its parent's match set.
func BenchmarkEvalOutputIncremental(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	parent := query.MustInstance(tpl, query.Instantiation{0, 0, 1, 1})
	mid := query.MustInstance(tpl, query.Instantiation{1, 1, 1, 1})
	m := New(g)
	within := m.EvalOutput(parent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalOutputWithin(mid, within)
	}
}

// BenchmarkEvalOutputNodeOnlyLarge measures the degenerate single-node
// instance (pure label+literal scan).
func BenchmarkEvalOutputNodeOnlyLarge(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	solo := query.MustInstance(tpl, query.Instantiation{1, 1, 0, 0})
	m := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalOutput(solo)
	}
}
