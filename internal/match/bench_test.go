package match

import (
	"context"
	"fmt"
	"testing"

	"fairsqg/internal/query"
)

// BenchmarkEvalOutputScratch measures from-scratch verification of a mid
// lattice instance on a 3000-node random graph.
func BenchmarkEvalOutputScratch(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	mid := query.MustInstance(tpl, query.Instantiation{1, 1, 1, 1})
	m := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalOutput(mid)
	}
}

// BenchmarkEvalOutputIncremental measures incVerify: the same instance
// verified within its parent's match set.
func BenchmarkEvalOutputIncremental(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	parent := query.MustInstance(tpl, query.Instantiation{0, 0, 1, 1})
	mid := query.MustInstance(tpl, query.Instantiation{1, 1, 1, 1})
	m := New(g)
	within := m.EvalOutput(parent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalOutputWithin(mid, within)
	}
}

// BenchmarkEngineWorkload sweeps the full instantiation lattice of the
// largest bench graph — the unit of work one generation run performs —
// through the sequential matcher and the engine at several worker/cache
// settings. The shared candidate cache is what pays off here: the lattice
// re-filters the same label+literal candidate lists for every instance
// that shares bound predicates.
func BenchmarkEngineWorkload(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	var qs []*query.Instance
	for _, in := range allInstantiations(tpl) {
		qs = append(qs, query.MustInstance(tpl, in))
	}
	b.Run("sequential", func(b *testing.B) {
		m := New(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				m.EvalOutput(q)
			}
		}
	})
	for _, c := range []struct {
		workers, cache int
	}{{1, -1}, {1, 0}, {4, -1}, {4, 0}} {
		name := fmt.Sprintf("engine/workers=%d/cache=%v", c.workers, c.cache >= 0)
		b.Run(name, func(b *testing.B) {
			e := NewEngine(g, EngineOptions{Workers: c.workers, CandCacheSize: c.cache})
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if _, err := e.ParEvalOutput(ctx, q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkEngineNodeOnly isolates the scan-bound path on the largest
// bench graph: single-node instances are pure label+literal filters, so
// the candidate cache converts each repeat evaluation from a full label
// scan into a lookup plus copy.
func BenchmarkEngineNodeOnly(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	solo := query.MustInstance(tpl, query.Instantiation{1, 1, 0, 0})
	for _, c := range []struct {
		workers, cache int
	}{{4, -1}, {4, 0}} {
		name := fmt.Sprintf("workers=%d/cache=%v", c.workers, c.cache >= 0)
		b.Run(name, func(b *testing.B) {
			e := NewEngine(g, EngineOptions{Workers: c.workers, CandCacheSize: c.cache})
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.ParEvalOutput(ctx, solo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalOutputNodeOnlyLarge measures the degenerate single-node
// instance (pure label+literal scan).
func BenchmarkEvalOutputNodeOnlyLarge(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	solo := query.MustInstance(tpl, query.Instantiation{1, 1, 0, 0})
	m := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalOutput(solo)
	}
}
