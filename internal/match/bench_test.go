package match

import (
	"context"
	"fmt"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// candidateBenchGraph builds a 100k-node single-label graph whose "score"
// attribute spreads uniformly over [0, n): the candidate-selection
// benchmarks sweep literal selectivity against it.
func candidateBenchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	g := graph.New()
	for i := 0; i < n; i++ {
		// 7919 is coprime with n=100000, so scores permute [0, n) and the
		// sorted index is a genuine shuffle of the insertion order.
		g.AddNode("Person", map[string]graph.Value{"score": graph.Int(int64(i * 7919 % n))})
	}
	g.Freeze()
	return g
}

// BenchmarkCandidates measures one candidate selection — the label's nodes
// filtered by a range literal — through the sorted attribute index and
// through the linear-scan reference path, across selectivities. The CI
// smoke job runs this family with -benchtime=1x; BENCH.md records the
// index-vs-scan crossover.
func BenchmarkCandidates(b *testing.B) {
	const n = 100000
	g := candidateBenchGraph(b, n)
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5} {
		bound := graph.Int(int64(float64(n) * (1 - sel)))
		lits := query.CompileLiterals(g, []query.BoundLiteral{
			{Attr: "score", Op: graph.OpGE, Value: bound},
		})
		for _, noIndex := range []bool{false, true} {
			path := "index"
			if noIndex {
				path = "scan"
			}
			b.Run(fmt.Sprintf("%s/sel=%g", path, sel), func(b *testing.B) {
				m := New(g)
				m.DisableAttrIndex = noIndex
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := m.selectCandidates("Person", lits); len(got) == 0 {
						b.Fatal("selection came back empty")
					}
				}
			})
		}
	}
}

// BenchmarkEvalOutputScratch measures from-scratch verification of a mid
// lattice instance on a 3000-node random graph.
func BenchmarkEvalOutputScratch(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	mid := query.MustInstance(tpl, query.Instantiation{1, 1, 1, 1})
	m := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalOutput(mid)
	}
}

// BenchmarkEvalOutputIncremental measures incVerify: the same instance
// verified within its parent's match set.
func BenchmarkEvalOutputIncremental(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	parent := query.MustInstance(tpl, query.Instantiation{0, 0, 1, 1})
	mid := query.MustInstance(tpl, query.Instantiation{1, 1, 1, 1})
	m := New(g)
	within := m.EvalOutput(parent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalOutputWithin(mid, within)
	}
}

// BenchmarkEngineWorkload sweeps the full instantiation lattice of the
// largest bench graph — the unit of work one generation run performs —
// through the sequential matcher and the engine at several worker/cache
// settings. The shared candidate cache is what pays off here: the lattice
// re-filters the same label+literal candidate lists for every instance
// that shares bound predicates.
func BenchmarkEngineWorkload(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	var qs []*query.Instance
	for _, in := range allInstantiations(tpl) {
		qs = append(qs, query.MustInstance(tpl, in))
	}
	for _, order := range []Order{OrderDynamic, OrderStatic} {
		name := "sequential"
		if order == OrderStatic {
			name += "/order=static"
		}
		order := order
		b.Run(name, func(b *testing.B) {
			m := New(g)
			m.Order = order
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					m.EvalOutput(q)
				}
			}
		})
	}
	for _, c := range []struct {
		workers, cache int
	}{{1, -1}, {1, 0}, {4, -1}, {4, 0}} {
		for _, order := range []Order{OrderDynamic, OrderStatic} {
			name := fmt.Sprintf("engine/workers=%d/cache=%v", c.workers, c.cache >= 0)
			if order == OrderStatic {
				name += "/order=static"
			}
			c, order := c, order
			b.Run(name, func(b *testing.B) {
				e := NewEngine(g, EngineOptions{Workers: c.workers, CandCacheSize: c.cache, Order: order})
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, q := range qs {
						if _, err := e.ParEvalOutput(ctx, q); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkEngineNodeOnly isolates the scan-bound path on the largest
// bench graph: single-node instances are pure label+literal filters, so
// the candidate cache converts each repeat evaluation from a full label
// scan into a lookup plus copy.
func BenchmarkEngineNodeOnly(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	solo := query.MustInstance(tpl, query.Instantiation{1, 1, 0, 0})
	for _, c := range []struct {
		workers, cache int
	}{{4, -1}, {4, 0}} {
		name := fmt.Sprintf("workers=%d/cache=%v", c.workers, c.cache >= 0)
		b.Run(name, func(b *testing.B) {
			e := NewEngine(g, EngineOptions{Workers: c.workers, CandCacheSize: c.cache})
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.ParEvalOutput(ctx, solo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalOutputNodeOnlyLarge measures the degenerate single-node
// instance (pure label+literal scan).
func BenchmarkEvalOutputNodeOnlyLarge(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 7)
	tpl := randomTemplate(b, g)
	solo := query.MustInstance(tpl, query.Instantiation{1, 1, 0, 0})
	m := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalOutput(solo)
	}
}
