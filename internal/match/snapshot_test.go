package match

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// snapshotCopy round-trips a frozen graph through the binary snapshot
// codec, returning the decoded copy the differential tests below run
// against. Matching on the copy must be indistinguishable from matching
// on the original — same results, same access-path counters — because the
// snapshot serializes the frozen layout (columns, indexes, adjacency)
// rather than the source data.
func snapshotCopy(t testing.TB, g *graph.Graph) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteSnapshot(&buf, g); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, err := graph.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	return got
}

// mappedCopy round-trips a frozen graph through a snapshot file opened
// with OpenSnapshotMapped, so the differential tests below also prove the
// zero-copy storage layer: matching over mmap-backed sections must be
// indistinguishable from matching over heap slices.
func mappedCopy(t testing.TB, g *graph.Graph) *graph.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.fsnap")
	var buf bytes.Buffer
	if err := graph.WriteSnapshot(&buf, g); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := graph.OpenSnapshotMapped(path)
	if err != nil {
		t.Fatalf("OpenSnapshotMapped: %v", err)
	}
	t.Cleanup(func() {
		if err := m.Close(); err != nil {
			t.Errorf("closing mapped graph: %v", err)
		}
	})
	return m
}

// TestMatcherMappedDifferential: the talent grid over a mapped graph must
// produce byte-identical results and identical access-path counters to the
// heap-built original.
func TestMatcherMappedDifferential(t *testing.T) {
	orig := talentGraph(t)
	mapped := mappedCopy(t, orig)
	tpl := talentTpl(t)

	mOrig := New(orig)
	mMap := New(mapped)
	for _, in := range []query.Instantiation{
		{query.Wildcard, query.Wildcard, 0},
		{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
		{query.Wildcard, query.Wildcard, 1},
	} {
		q := query.MustInstance(tpl, in)
		want := mOrig.EvalOutput(q)
		got := mMap.EvalOutput(q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("instantiation %v: mapped copy returned %v, original %v", in, got, want)
		}
	}
	if mOrig.Stats != mMap.Stats {
		t.Errorf("matcher stats diverge: original %+v, mapped %+v", mOrig.Stats, mMap.Stats)
	}
}

// TestSelectCandidatesMappedDifferential sweeps the index-selection matrix
// against a mapped copy: same candidates, same Index/ScanSelections split.
func TestSelectCandidatesMappedDifferential(t *testing.T) {
	orig := indexSelectionGraph(t)
	mapped := mappedCopy(t, orig)
	mOrig := New(orig)
	mMap := New(mapped)

	bounds := map[string][]graph.Value{
		"score": {graph.Int(5), graph.Int(15), graph.Int(99), graph.Null, graph.Num(math.NaN())},
		"name":  {graph.Str(""), graph.Str("ann"), graph.Str("zzz"), graph.Null},
		"flag":  {graph.Bool(false), graph.Bool(true), graph.Null},
		"mix":   {graph.Int(1), graph.Str("x"), graph.Null},
	}
	for attr, bs := range bounds {
		for _, op := range []graph.Op{graph.OpLT, graph.OpLE, graph.OpEQ, graph.OpGE, graph.OpGT} {
			for _, bound := range bs {
				raw := []query.BoundLiteral{{Attr: attr, Op: op, Value: bound}}
				want := mOrig.selectCandidates("Person", query.CompileLiterals(orig, raw))
				got := mMap.selectCandidates("Person", query.CompileLiterals(mapped, raw))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("Person[%s %s %v]: mapped %v, original %v", attr, op, bound, got, want)
				}
			}
		}
	}
	if mOrig.Stats.IndexSelections != mMap.Stats.IndexSelections ||
		mOrig.Stats.ScanSelections != mMap.Stats.ScanSelections {
		t.Errorf("access paths diverge: original %+v, mapped %+v", mOrig.Stats, mMap.Stats)
	}
}

// TestMatcherSnapshotDifferential runs the full talent instantiation grid
// through sequential matchers over the original graph and its snapshot
// copy, asserting identical outputs and identical Stats — candidate
// selection must take the same access path (index vs scan) on both.
func TestMatcherSnapshotDifferential(t *testing.T) {
	orig := talentGraph(t)
	snap := snapshotCopy(t, orig)
	tpl := talentTpl(t)

	mOrig := New(orig)
	mSnap := New(snap)
	for _, in := range []query.Instantiation{
		{query.Wildcard, query.Wildcard, 0},
		{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
		{query.Wildcard, query.Wildcard, 1},
	} {
		q := query.MustInstance(tpl, in)
		want := mOrig.EvalOutput(q)
		got := mSnap.EvalOutput(q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("instantiation %v: snapshot copy returned %v, original %v", in, got, want)
		}
	}
	if mOrig.Stats != mSnap.Stats {
		t.Errorf("matcher stats diverge: original %+v, snapshot %+v", mOrig.Stats, mSnap.Stats)
	}
}

// TestSelectCandidatesSnapshotDifferential sweeps the index-selection
// matrix (every operator and value kind, Null/NaN bounds, conjunctions)
// on both copies and requires byte-identical candidate lists and equal
// Index/ScanSelections counters.
func TestSelectCandidatesSnapshotDifferential(t *testing.T) {
	orig := indexSelectionGraph(t)
	snap := snapshotCopy(t, orig)
	mOrig := New(orig)
	mSnap := New(snap)

	bounds := map[string][]graph.Value{
		"score": {graph.Int(5), graph.Int(10), graph.Int(15), graph.Int(20),
			graph.Int(50), graph.Int(99), graph.Null, graph.Num(math.NaN())},
		"name":      {graph.Str(""), graph.Str("ann"), graph.Str("bob"), graph.Str("zzz"), graph.Null},
		"flag":      {graph.Bool(false), graph.Bool(true), graph.Null},
		"mix":       {graph.Int(1), graph.Str("x"), graph.Num(math.NaN()), graph.Null},
		"employees": {graph.Int(10), graph.Null},
	}
	ops := []graph.Op{graph.OpLT, graph.OpLE, graph.OpEQ, graph.OpGE, graph.OpGT}
	for attr, bs := range bounds {
		for _, op := range ops {
			for _, bound := range bs {
				raw := []query.BoundLiteral{{Attr: attr, Op: op, Value: bound}}
				want := mOrig.selectCandidates("Person", query.CompileLiterals(orig, raw))
				got := mSnap.selectCandidates("Person", query.CompileLiterals(snap, raw))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("Person[%s %s %v]: snapshot %v, original %v", attr, op, bound, got, want)
				}
			}
		}
	}
	if mOrig.Stats.IndexSelections != mSnap.Stats.IndexSelections ||
		mOrig.Stats.ScanSelections != mSnap.Stats.ScanSelections {
		t.Errorf("access paths diverge: original %+v, snapshot %+v", mOrig.Stats, mSnap.Stats)
	}
	if mSnap.Stats.IndexSelections == 0 {
		t.Error("snapshot copy never took the index path — indexes not restored?")
	}
}

// TestEngineSnapshotDifferential evaluates the talent grid through
// concurrent engines on both copies (exercised under -race in CI) and
// asserts identical results and identical work counters.
func TestEngineSnapshotDifferential(t *testing.T) {
	orig := talentGraph(t)
	snap := snapshotCopy(t, orig)
	tpl := talentTpl(t)

	eOrig := NewEngine(orig, EngineOptions{Workers: 4})
	eSnap := NewEngine(snap, EngineOptions{Workers: 4})
	ctx := context.Background()
	for _, in := range []query.Instantiation{
		{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
		{query.Wildcard, query.Wildcard, 1},
	} {
		q := query.MustInstance(tpl, in)
		want, err := eOrig.ParEvalOutput(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eSnap.ParEvalOutput(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("instantiation %v: snapshot engine %v, original %v", in, got, want)
		}
	}
	so, ss := eOrig.Stats(), eSnap.Stats()
	if so.Evals != ss.Evals || so.CandidatesChecked != ss.CandidatesChecked ||
		so.IndexSelections != ss.IndexSelections || so.ScanSelections != ss.ScanSelections {
		t.Errorf("engine stats diverge: original %+v, snapshot %+v", so, ss)
	}
}
