package match

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"strconv"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// differentialSeed fixes the randomized fixture generation; it is logged on
// every failure so a differential divergence reproduces exactly.
const differentialSeed = 7321

// engineMatrix enumerates the engine configurations the differential suite
// checks against the sequential reference: workers 1, 4 and GOMAXPROCS,
// each with the candidate cache on and off, each with the sorted attribute
// indexes on and off, each under dynamic and static backtracking order.
func engineMatrix(g *graph.Graph, mode Mode) map[string]*Engine {
	workerSet := []int{1, 4, runtime.GOMAXPROCS(0)}
	m := make(map[string]*Engine)
	for _, w := range workerSet {
		for _, cacheSize := range []int{0, -1} {
			for _, noIndex := range []bool{false, true} {
				for _, order := range []Order{OrderDynamic, OrderStatic} {
					name := "workers=" + strconv.Itoa(w) + "/cache=on"
					if cacheSize < 0 {
						name = "workers=" + strconv.Itoa(w) + "/cache=off"
					}
					if noIndex {
						name += "/index=off"
					}
					name += "/order=" + order.String()
					if _, dup := m[name]; dup {
						continue // GOMAXPROCS may coincide with 1 or 4
					}
					m[name] = NewEngine(g, EngineOptions{
						Mode: mode, Workers: w, CandCacheSize: cacheSize,
						DisableAttrIndex: noIndex, Order: order,
					})
				}
			}
		}
	}
	return m
}

// checkDifferential asserts every engine configuration reproduces the
// sequential matcher's result for one instance, that the static-order
// sequential matcher agrees with the dynamic one, and that both orders
// drive the candidate-selection access paths identically (selection happens
// before ordering, so the Index/ScanSelections counters must not depend on
// the order knob).
func checkDifferential(t *testing.T, g *graph.Graph, q *query.Instance, mode Mode, engines map[string]*Engine) {
	t.Helper()
	m := New(g)
	m.Mode = mode
	want := m.EvalOutput(q)
	ms := New(g)
	ms.Mode = mode
	ms.Order = OrderStatic
	if got := ms.EvalOutput(q); !reflect.DeepEqual(got, want) {
		t.Errorf("seed %d: %s: static order diverged:\nstatic  %v\ndynamic %v",
			differentialSeed, q, got, want)
	}
	if ms.Stats.IndexSelections != m.Stats.IndexSelections ||
		ms.Stats.ScanSelections != m.Stats.ScanSelections {
		t.Errorf("seed %d: %s: selection counters depend on order: static index=%d scan=%d, dynamic index=%d scan=%d",
			differentialSeed, q, ms.Stats.IndexSelections, ms.Stats.ScanSelections,
			m.Stats.IndexSelections, m.Stats.ScanSelections)
	}
	for name, e := range engines {
		got, err := e.ParEvalOutput(context.Background(), q)
		if err != nil {
			t.Fatalf("seed %d: %s: %s: %v", differentialSeed, name, q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: %s: %s:\nengine     %v\nsequential %v",
				differentialSeed, name, q, got, want)
		}
	}
}

// TestDifferentialTalentFixture runs every instantiation of the canonical
// talent fixture through the full engine matrix in both matching modes.
func TestDifferentialTalentFixture(t *testing.T) {
	g := talentGraph(t)
	tpl := talentTpl(t)
	for _, mode := range []Mode{Isomorphism, Homomorphism} {
		engines := engineMatrix(g, mode)
		for _, in := range allInstantiations(tpl) {
			checkDifferential(t, g, query.MustInstance(tpl, in), mode, engines)
		}
	}
}

// TestDifferentialRandomGraph covers the mid-size random fixture: every
// instantiation of the 4-variable random template, one engine matrix reused
// across instances so the shared cache is exercised with mixed keys.
func TestDifferentialRandomGraph(t *testing.T) {
	g := randomGraph(t, 300, 900, differentialSeed)
	tpl := randomTemplate(t, g)
	engines := engineMatrix(g, Isomorphism)
	for _, in := range allInstantiations(tpl) {
		checkDifferential(t, g, query.MustInstance(tpl, in), Isomorphism, engines)
	}
}

// TestDifferentialTinyRandom sweeps many tiny random graph/template pairs
// (the brute-force oracle fixtures) through the matrix; fresh engines per
// graph, shared across that graph's instances.
func TestDifferentialTinyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(differentialSeed))
	for trial := 0; trial < 40; trial++ {
		g := tinyRandomGraph(rng)
		tpl := tinyRandomTemplate(rng)
		if err := tpl.BindDomains(g, query.DomainOptions{}); err != nil {
			continue
		}
		for _, mode := range []Mode{Isomorphism, Homomorphism} {
			engines := engineMatrix(g, mode)
			for _, in := range allInstantiations(tpl) {
				checkDifferential(t, g, query.MustInstance(tpl, in), mode, engines)
			}
		}
	}
}

// TestDifferentialIncremental checks the engine's within-restricted path
// (incVerify) against the sequential one along random refinement chains.
func TestDifferentialIncremental(t *testing.T) {
	g := randomGraph(t, 300, 900, differentialSeed+1)
	tpl := randomTemplate(t, g)
	m := New(g)
	engines := engineMatrix(g, Isomorphism)
	rng := rand.New(rand.NewSource(differentialSeed + 2))
	for trial := 0; trial < 20; trial++ {
		in := query.Root(tpl)
		parent := m.EvalOutput(query.MustInstance(tpl, in))
		for step := 0; step < 5; step++ {
			kids := query.RefineSteps(tpl, in)
			if len(kids) == 0 {
				break
			}
			in = kids[rng.Intn(len(kids))]
			q := query.MustInstance(tpl, in)
			want := m.EvalOutputWithin(q, parent)
			for name, e := range engines {
				got, err := e.ParEvalOutputWithin(context.Background(), q, parent)
				if err != nil {
					t.Fatalf("seed %d: %s: %v", differentialSeed, name, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d trial %d step %d: %s: %s: engine %v, sequential %v",
						differentialSeed, trial, step, name, q, got, want)
				}
			}
			parent = want
		}
	}
}
