package match

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// fuzzSchemaGraph builds a seeded random graph speaking the template's own
// schema — its node labels, edge labels and literal attributes — so parsed
// templates get graphs they can plausibly match. Attribute values include
// absent (Null), NaN and mixed string/int kinds to exercise the value total
// order, and duplicate edges are kept: the result is a multigraph.
func fuzzSchemaGraph(tpl *query.Template, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var labels, attrs, edgeLabels []string
	seenL, seenA, seenE := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for i := range tpl.Nodes {
		if l := tpl.Nodes[i].Label; !seenL[l] {
			seenL[l] = true
			labels = append(labels, l)
		}
		for _, lit := range tpl.Nodes[i].Literals {
			if !seenA[lit.Attr] {
				seenA[lit.Attr] = true
				attrs = append(attrs, lit.Attr)
			}
		}
	}
	for i := range tpl.Edges {
		if l := tpl.Edges[i].Label; !seenE[l] {
			seenE[l] = true
			edgeLabels = append(edgeLabels, l)
		}
	}
	g := graph.New()
	n := 6 + rng.Intn(6)
	for i := 0; i < n; i++ {
		av := map[string]graph.Value{}
		for _, a := range attrs {
			switch rng.Intn(6) {
			case 0: // absent: the matcher reads Null
			case 1:
				av[a] = graph.Num(math.NaN())
			case 2:
				av[a] = graph.Str("s" + strconv.Itoa(rng.Intn(3)))
			default:
				av[a] = graph.Int(int64(rng.Intn(5)))
			}
		}
		g.AddNode(labels[rng.Intn(len(labels))], av)
	}
	for e := 0; e < 3*n && len(edgeLabels) > 0; e++ {
		_ = g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)),
			edgeLabels[rng.Intn(len(edgeLabels))])
	}
	g.Freeze()
	return g
}

// FuzzMatcherEquivalence fuzzes template DSL source plus a graph seed and an
// instantiation selector: any template the parser accepts is bound against a
// schema-matched random graph and evaluated under BOTH ordering policies in
// both matching modes. Dynamic and static order must return byte-identical
// match sets and drive candidate selection identically — and nothing may
// panic on the way.
func FuzzMatcherEquivalence(f *testing.F) {
	seeds := []string{
		"template talent\nnode u_o Person title = \"Director\"\nnode u1 Person yearsOfExp >= $x1\nnode o Org employees >= $x2\nedge u1 u_o recommend ?e1\nedge u1 o worksAt\noutput u_o\n",
		"template t\nnode a A x >= $v\nnode b B\nedge a b r ?e\noutput a\n",
		"template x\nnode a A\nedge a a self\noutput a\n",
		"template t\nnode a A x = 1 , y = 2\nnode b B y <= $w\nedge a b r\nedge b a s\noutput a\n",
		"template t\nnode a A\nnode b A\nnode c A\nedge a b r\nedge b c r\nedge c a r\noutput a\n",
	}
	for i, s := range seeds {
		f.Add(s, int64(i+1), uint64(i)*7919)
	}
	f.Fuzz(func(t *testing.T, src string, graphSeed int64, instPick uint64) {
		tpl, err := query.ParseString(src)
		if err != nil {
			return
		}
		if len(tpl.Nodes) > 6 || len(tpl.Edges) > 8 || len(tpl.Vars) > 8 {
			return // keep the per-input search space small enough to explore
		}
		g := fuzzSchemaGraph(tpl, graphSeed)
		if err := tpl.BindDomains(g, query.DomainOptions{MaxValues: 3}); err != nil {
			return
		}
		// Derive one instantiation from the selector, mixed-radix over the
		// per-variable level counts so every combination stays reachable.
		in := make(query.Instantiation, len(tpl.Vars))
		r := instPick
		for vi := range tpl.Vars {
			v := &tpl.Vars[vi]
			if v.Kind == query.EdgeVar {
				in[vi] = int(r % 2)
				r /= 2
				continue
			}
			k := uint64(len(v.Ladder) + 1)
			in[vi] = int(r%k) - 1
			r /= k
		}
		q, err := query.NewInstance(tpl, in)
		if err != nil {
			t.Fatalf("derived instantiation rejected: %v (template %q, pick %d)", err, src, instPick)
		}
		for _, mode := range []Mode{Isomorphism, Homomorphism} {
			dyn := New(g)
			dyn.Mode = mode
			st := New(g)
			st.Mode = mode
			st.Order = OrderStatic
			got, want := dyn.EvalOutput(q), st.EvalOutput(q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("mode %d: dynamic %v != static %v\ntemplate %q graphSeed %d pick %d instance %s",
					mode, got, want, src, graphSeed, instPick, q)
			}
			if dyn.Stats.IndexSelections != st.Stats.IndexSelections ||
				dyn.Stats.ScanSelections != st.Stats.ScanSelections {
				t.Fatalf("mode %d: selection counters depend on order: dynamic %+v, static %+v\ntemplate %q graphSeed %d pick %d",
					mode, dyn.Stats, st.Stats, src, graphSeed, instPick)
			}
		}
	})
}
