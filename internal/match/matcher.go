// Package match implements the subgraph-matching substrate of FairSQG:
// given a query instance and an attributed graph it computes the output
// node's match set q(u_o, G) under subgraph isomorphism (injective) or
// homomorphism semantics. It supports incremental verification — when an
// instance refines an already-verified parent, only the parent's match set
// needs to be re-checked (Lemma 2 of the paper).
package match

import (
	"context"
	"sort"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// Mode selects the matching semantics.
type Mode uint8

const (
	// Isomorphism requires the matching h to be injective on query nodes.
	Isomorphism Mode = iota
	// Homomorphism allows two query nodes to map to the same graph node.
	Homomorphism
)

// Stats counts work done by the matcher; cumulative across calls.
type Stats struct {
	// Evals is the number of instance evaluations performed.
	Evals int
	// CandidatesChecked counts output-node candidates tested.
	CandidatesChecked int
	// BacktrackNodes counts search-tree nodes expanded.
	BacktrackNodes int
	// IndexSelections counts candidate selections answered through a
	// sorted per-(label, attribute) index; ScanSelections counts linear
	// label scans (the reference path, also taken when no literal's index
	// range is selective enough).
	IndexSelections int
	ScanSelections  int
}

// Matcher evaluates query instances against one frozen graph.
//
// A Matcher's mutable state (Stats, the backtracking scratch) is NOT safe
// for concurrent use: create one Matcher per goroutine, or use Engine,
// which maintains a pool of per-goroutine Matchers behind a goroutine-safe
// API. The frozen Graph and an attached CandidateCache are themselves safe
// to share between any number of Matchers.
type Matcher struct {
	G    *graph.Graph
	Mode Mode
	// MaxBacktrackNodes bounds the search tree expanded per output-node
	// candidate; 0 means unbounded. When the bound trips the candidate is
	// conservatively reported as a non-match.
	MaxBacktrackNodes int
	// Cache, when non-nil, memoizes the label+literal candidate filtering
	// phase across evaluations (and across Matchers sharing the cache).
	// Results are unchanged; only repeated nodeSatisfies scans are skipped.
	Cache *CandidateCache
	// DisableAttrIndex forces the linear-scan reference path for candidate
	// selection instead of the sorted per-(label, attribute) indexes.
	// Results are identical; only the access path changes (ablation knob).
	DisableAttrIndex bool

	Stats Stats

	// ctx, when non-nil, is polled during backtracking so deadline/cancel
	// aborts propagate through extend; set via bind or by Engine.
	ctx context.Context
	// aborted records that ctx fired mid-evaluation: the evaluation's
	// result is a conservative partial answer and must be discarded.
	aborted bool

	// scratch reused across evaluations
	used map[graph.NodeID]bool
}

// New returns a Matcher over a frozen graph with isomorphism semantics.
func New(g *graph.Graph) *Matcher {
	if !g.Frozen() {
		panic("match: graph must be frozen")
	}
	return &Matcher{G: g, used: make(map[graph.NodeID]bool)}
}

// plan is the per-instance evaluation plan: active structure, candidate
// sets and a matching order rooted at the output node.
type plan struct {
	q         *query.Instance
	nodes     []int        // active template nodes
	nodePos   map[int]int  // template node -> index in nodes
	adj       [][]planEdge // per active-node adjacency over active edges
	order     []int        // matching order (indices into nodes), order[0] = output
	cands     [][]graph.NodeID
	candSet   []map[graph.NodeID]bool
	edgeCount int
}

// planEdge is one incident active edge from the perspective of a node.
type planEdge struct {
	other    int // index into plan.nodes
	label    graph.LabelID
	outgoing bool // true when the edge leaves this node
}

// EvalOutput computes q(G) = q(u_o, G): the distinct graph nodes the output
// node matches to. The result is sorted.
func (m *Matcher) EvalOutput(q *query.Instance) []graph.NodeID {
	return m.EvalOutputWithin(q, nil)
}

// EvalOutputWithin is EvalOutput restricted to output-node candidates drawn
// from within (nil means all nodes with the output label). Passing the
// verified parent's match set implements the paper's incVerify: a refined
// instance's matches are a subset of its parent's.
func (m *Matcher) EvalOutputWithin(q *query.Instance, within []graph.NodeID) []graph.NodeID {
	matches, _ := m.EvalOutputFiltered(q, within, nil)
	return matches
}

// EvalOutputFiltered is EvalOutputWithin with an admission check: after the
// cheap candidate-filtering phase, accept is offered the arc-consistent
// candidate superset of q(u_o, G). When accept returns false the expensive
// backtracking phase is skipped and ok is false — the caller learned the
// instance cannot meet its requirements (any monotone predicate over
// candidate supersets, e.g. coverage upper bounds, is sound here). A nil
// accept admits everything.
func (m *Matcher) EvalOutputFiltered(q *query.Instance, within []graph.NodeID,
	accept func(candidates []graph.NodeID) bool) (matches []graph.NodeID, ok bool) {
	return m.EvalNodeFiltered(q, q.T.Output, within, accept)
}

// EvalNode computes q(u, G) for an arbitrary template node: the graph
// nodes u maps to across all matchings. An inactive node (projected out of
// the output component) has no matches.
func (m *Matcher) EvalNode(q *query.Instance, node int) []graph.NodeID {
	matches, _ := m.EvalNodeFiltered(q, node, nil, nil)
	return matches
}

// EvalNodeFiltered generalizes EvalOutputFiltered to any template node:
// within restricts that node's candidates (a verified parent's match set
// for the same node is a valid superset under refinement), and accept sees
// the node's arc-consistent candidates.
func (m *Matcher) EvalNodeFiltered(q *query.Instance, node int, within []graph.NodeID,
	accept func(candidates []graph.NodeID) bool) (matches []graph.NodeID, ok bool) {
	m.Stats.Evals++
	if !q.NodeActive(node) {
		return nil, true
	}
	p := m.buildPlan(q, node, within)
	if p == nil {
		return nil, true
	}
	rootIdx := p.nodePos[node]
	rootCands := p.cands[rootIdx]
	if accept != nil && !accept(rootCands) {
		return nil, false
	}
	if len(p.nodes) == 1 {
		// The instance collapsed to this node alone: every candidate is a
		// match.
		res := make([]graph.NodeID, len(rootCands))
		copy(res, rootCands)
		sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
		return res, true
	}
	var result []graph.NodeID
	for _, v := range rootCands {
		m.Stats.CandidatesChecked++
		if m.embedFrom(p, v) {
			result = append(result, v)
		}
	}
	sort.Slice(result, func(i, j int) bool { return result[i] < result[j] })
	return result, true
}

// buildPlan computes candidate sets with label/literal filtering plus
// arc-consistency pruning, and a connectivity-first matching order rooted
// at pin (the node whose matches are being computed). It returns nil when
// some active node has no candidates (empty q(G)).
func (m *Matcher) buildPlan(q *query.Instance, pin int, within []graph.NodeID) *plan {
	t := q.T
	p := &plan{q: q, nodes: q.ActiveNodes(), nodePos: make(map[int]int)}
	for i, ni := range p.nodes {
		p.nodePos[ni] = i
	}
	p.adj = make([][]planEdge, len(p.nodes))
	for _, ei := range q.ActiveEdges() {
		e := &t.Edges[ei]
		fi, ti := p.nodePos[e.From], p.nodePos[e.To]
		label := m.G.LookupLabel(e.Label)
		if label == graph.InvalidLabel {
			// The edge label never occurs in G: no embedding exists.
			return nil
		}
		p.adj[fi] = append(p.adj[fi], planEdge{other: ti, label: label, outgoing: true})
		p.adj[ti] = append(p.adj[ti], planEdge{other: fi, label: label, outgoing: false})
		p.edgeCount++
	}
	p.cands = make([][]graph.NodeID, len(p.nodes))
	p.candSet = make([]map[graph.NodeID]bool, len(p.nodes))
	pinIdx := p.nodePos[pin]
	for i, ni := range p.nodes {
		lits := q.CompiledLiterals(m.G, ni)
		var cands []graph.NodeID
		if i == pinIdx && within != nil {
			cands = make([]graph.NodeID, 0, len(within))
			for _, v := range within {
				if m.G.Label(v) != t.Nodes[ni].Label {
					continue
				}
				if nodeSatisfies(m.G, v, lits) {
					cands = append(cands, v)
				}
			}
		} else {
			cands = m.filteredCandidates(t.Nodes[ni].Label, lits)
		}
		if len(cands) == 0 {
			return nil
		}
		p.cands[i] = cands
	}
	if !m.propagate(p) {
		return nil
	}
	p.order = matchingOrder(p, pinIdx)
	return p
}

// filteredCandidates returns the label's nodes filtered by lits, consulting
// the candidate cache when attached. Cached lists are immutable, so both
// the stored list and the returned list are private copies (propagate
// prunes plan candidate slices in place).
func (m *Matcher) filteredCandidates(label string, lits []query.CompiledLiteral) []graph.NodeID {
	if m.Cache == nil {
		return m.selectCandidates(label, lits)
	}
	key := candKey(label, lits)
	if cached, ok := m.Cache.lookup(key); ok {
		out := make([]graph.NodeID, len(cached))
		copy(out, cached)
		return out
	}
	cands := m.selectCandidates(label, lits)
	stored := make([]graph.NodeID, len(cands))
	copy(stored, cands)
	m.Cache.store(key, stored)
	return cands
}

// indexScanCutoff is the inverse fraction of the label's population above
// which the narrowest index range stops paying: gathering k index entries
// costs k column reads plus a k·log k NodeID re-sort, so for wide ranges a
// straight scan (already in NodeID order) wins. BENCH.md records the
// measured crossover backing this constant: the index is ahead below ~10%
// selectivity and behind above ~25%, so ranges wider than a quarter of the
// label fall back to the scan.
const indexScanCutoff = 4

// selectCandidates picks the access path for one (label, literals) pair:
// the most selective sorted-index range when one is narrow enough, the
// linear label scan otherwise. Both paths return the identical list in
// ascending NodeID order.
func (m *Matcher) selectCandidates(label string, lits []query.CompiledLiteral) []graph.NodeID {
	base := m.G.NodesByLabel(label)
	if !m.DisableAttrIndex && len(lits) > 0 && len(base) > 0 {
		if cands, ok := m.indexCandidates(base, label, lits); ok {
			m.Stats.IndexSelections++
			return cands
		}
	}
	m.Stats.ScanSelections++
	cands := make([]graph.NodeID, 0, len(base))
	for _, v := range base {
		if nodeSatisfies(m.G, v, lits) {
			cands = append(cands, v)
		}
	}
	return cands
}

// indexCandidates resolves the literal set through the sorted attribute
// indexes: every literal's satisfying subrange is binary-searched, the
// narrowest range drives the gather, and the remaining literals verify
// against the columns. ok is false when no range is selective enough and
// the caller should fall back to the scan.
func (m *Matcher) indexCandidates(base []graph.NodeID, label string, lits []query.CompiledLiteral) ([]graph.NodeID, bool) {
	labelID := m.G.LookupLabel(label)
	best := -1
	var bestIx graph.SortedIndex
	bestLo, bestHi := 0, 0
	for i, l := range lits {
		ix := m.G.SortedIndex(labelID, l.ID)
		if !ix.Valid() {
			// The attribute never occurs on this label: every candidate
			// reads Null, so the literal is uniform — either it rejects
			// everything (provably empty result) or it filters nothing.
			// The empty slice (not nil) matches the scan path's result.
			if !l.Op.Apply(graph.Null, l.Value) {
				return []graph.NodeID{}, true
			}
			continue
		}
		lo, hi := ix.Range(l.Op, l.Value)
		if best < 0 || hi-lo < bestHi-bestLo {
			best, bestIx, bestLo, bestHi = i, ix, lo, hi
		}
	}
	if best < 0 {
		// Every literal is uniformly true for this label.
		out := make([]graph.NodeID, len(base))
		copy(out, base)
		return out, true
	}
	if (bestHi-bestLo)*indexScanCutoff > len(base) {
		return nil, false
	}
	out := make([]graph.NodeID, 0, bestHi-bestLo)
	for i := bestLo; i < bestHi; i++ {
		v := bestIx.At(i)
		ok := true
		for j, l := range lits {
			if j != best && !l.Matches(m.G, v) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	// The permutation is in value order; restore the ascending NodeID
	// order every other path produces.
	sortIDs(out)
	return out, true
}

// nodeSatisfies checks all compiled literals of a template node against v.
func nodeSatisfies(g *graph.Graph, v graph.NodeID, lits []query.CompiledLiteral) bool {
	for _, l := range lits {
		if !l.Matches(g, v) {
			return false
		}
	}
	return true
}

// propagate runs arc-consistency over candidate sets: a candidate of u
// survives only if every incident active edge can be matched by some
// candidate of the neighbor. Iterates to fixpoint. Returns false when a
// candidate set empties.
func (m *Matcher) propagate(p *plan) bool {
	for i := range p.cands {
		// Only nodes referenced by a constraint edge need the set form;
		// skipping the rest makes single-node plans map-free.
		if len(p.adj[i]) == 0 {
			p.candSet[i] = nil
			continue
		}
		set := make(map[graph.NodeID]bool, len(p.cands[i]))
		for _, v := range p.cands[i] {
			set[v] = true
		}
		p.candSet[i] = set
	}
	changed := true
	for changed {
		changed = false
		for i := range p.nodes {
			if len(p.adj[i]) == 0 {
				continue
			}
			kept := p.cands[i][:0]
			for _, v := range p.cands[i] {
				ok := true
				for _, pe := range p.adj[i] {
					if !hasNeighborIn(m.G, v, pe, p.candSet[pe.other]) {
						ok = false
						break
					}
				}
				if ok {
					kept = append(kept, v)
				} else {
					delete(p.candSet[i], v)
					changed = true
				}
			}
			p.cands[i] = kept
			if len(kept) == 0 {
				return false
			}
		}
	}
	return true
}

// hasNeighborIn reports whether v has an edge matching pe whose endpoint
// lies in allowed.
func hasNeighborIn(g *graph.Graph, v graph.NodeID, pe planEdge, allowed map[graph.NodeID]bool) bool {
	var es []graph.Edge
	if pe.outgoing {
		es = g.Out(v)
	} else {
		es = g.In(v)
	}
	for _, e := range es {
		if e.Label == pe.label && allowed[e.To] {
			return true
		}
	}
	return false
}

// matchingOrder returns a connectivity-first order starting at the output
// node: each subsequent node is adjacent to an already-ordered node and has
// the smallest candidate set among the frontier (fail-first heuristic).
// Active instances are connected by construction, so the order covers all
// active nodes.
func matchingOrder(p *plan, outIdx int) []int {
	n := len(p.nodes)
	order := make([]int, 0, n)
	placed := make([]bool, n)
	order = append(order, outIdx)
	placed[outIdx] = true
	for len(order) < n {
		best, bestSize := -1, int(^uint(0)>>1)
		for _, oi := range order {
			for _, pe := range p.adj[oi] {
				if placed[pe.other] {
					continue
				}
				if s := len(p.cands[pe.other]); s < bestSize {
					best, bestSize = pe.other, s
				}
			}
		}
		if best < 0 {
			// Disconnected remainder; should not happen for projected
			// instances, but fall back to any unplaced node.
			for i := 0; i < n; i++ {
				if !placed[i] {
					best = i
					break
				}
			}
		}
		order = append(order, best)
		placed[best] = true
	}
	return order
}

// cancelCheckMask throttles context polling to one check per 256 expanded
// search-tree nodes: frequent enough for prompt deadline aborts, rare
// enough to keep the uncancellable hot path unaffected.
const cancelCheckMask = 255

// bindContext attaches a cancellation context for subsequent evaluations
// and clears any prior abort; Engine calls it before driving a pooled
// Matcher. A nil ctx disables polling.
func (m *Matcher) bindContext(ctx context.Context) {
	m.ctx = ctx
	m.aborted = false
}

// BindContext attaches a cancellation context to subsequent sequential
// evaluations: the backtracking search polls it (throttled by
// cancelCheckMask) and unwinds when it fires, leaving Aborted set. A nil
// ctx disables polling. Core binds the run context here so server-side
// deadlines abort an in-flight evaluation instead of waiting for the next
// instance boundary.
func (m *Matcher) BindContext(ctx context.Context) { m.bindContext(ctx) }

// Aborted reports whether the last evaluation was cut short by context
// cancellation; an aborted evaluation's result is partial and must be
// discarded.
func (m *Matcher) Aborted() bool { return m.aborted }

// embedFrom checks whether a full matching exists with the output node
// pinned to v.
func (m *Matcher) embedFrom(p *plan, v graph.NodeID) bool {
	assign := make([]graph.NodeID, len(p.nodes))
	for i := range assign {
		assign[i] = graph.InvalidNode
	}
	for k := range m.used {
		delete(m.used, k)
	}
	assign[p.order[0]] = v
	if m.Mode == Isomorphism {
		m.used[v] = true
	}
	budget := m.MaxBacktrackNodes
	ok, _ := m.extend(p, assign, 1, budget)
	return ok
}

// extend recursively assigns p.order[depth:]; it returns (found, remaining
// budget). A zero starting budget means unbounded.
func (m *Matcher) extend(p *plan, assign []graph.NodeID, depth, budget int) (bool, int) {
	if depth == len(p.order) {
		return true, budget
	}
	ui := p.order[depth]
	m.Stats.BacktrackNodes++
	if m.aborted {
		return false, budget
	}
	if m.ctx != nil && m.Stats.BacktrackNodes&cancelCheckMask == 0 {
		select {
		case <-m.ctx.Done():
			// Unwind the whole search: every ancestor sees aborted and
			// stops trying siblings, so the abort propagates in O(depth).
			m.aborted = true
			return false, budget
		default:
		}
	}
	if budget != 0 {
		budget--
		if budget == 0 {
			return false, 0
		}
	}
	// Pick the assigned neighbor whose adjacency is cheapest to scan.
	var pivot graph.NodeID = graph.InvalidNode
	var pivotEdge planEdge
	for _, pe := range p.adj[ui] {
		if w := assign[pe.other]; w != graph.InvalidNode {
			pivot = w
			// The stored edge is from ui's perspective; flip it to pivot's.
			pivotEdge = planEdge{other: ui, label: pe.label, outgoing: !pe.outgoing}
			break
		}
	}
	try := func(v graph.NodeID) (bool, int) {
		if !p.candSet[ui][v] {
			return false, budget
		}
		if m.Mode == Isomorphism && m.used[v] {
			return false, budget
		}
		if !m.consistent(p, assign, ui, v) {
			return false, budget
		}
		assign[ui] = v
		if m.Mode == Isomorphism {
			m.used[v] = true
		}
		found, rem := m.extend(p, assign, depth+1, budget)
		budget = rem
		assign[ui] = graph.InvalidNode
		if m.Mode == Isomorphism {
			delete(m.used, v)
		}
		return found, budget
	}
	if pivot != graph.InvalidNode {
		var es []graph.Edge
		if pivotEdge.outgoing {
			es = m.G.Out(pivot)
		} else {
			es = m.G.In(pivot)
		}
		for _, e := range es {
			if e.Label != pivotEdge.label {
				continue
			}
			if found, rem := try(e.To); found {
				return true, rem
			} else if budget = rem; budget == 0 && m.MaxBacktrackNodes != 0 {
				return false, 0
			}
		}
		return false, budget
	}
	for _, v := range p.cands[ui] {
		if found, rem := try(v); found {
			return true, rem
		} else if budget = rem; budget == 0 && m.MaxBacktrackNodes != 0 {
			return false, 0
		}
	}
	return false, budget
}

// consistent checks every active edge between ui and already-assigned nodes.
func (m *Matcher) consistent(p *plan, assign []graph.NodeID, ui int, v graph.NodeID) bool {
	for _, pe := range p.adj[ui] {
		w := assign[pe.other]
		if w == graph.InvalidNode {
			continue
		}
		if pe.outgoing {
			if !m.G.HasEdge(v, w, pe.label) {
				return false
			}
		} else {
			if !m.G.HasEdge(w, v, pe.label) {
				return false
			}
		}
	}
	return true
}
