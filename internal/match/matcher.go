// Package match implements the subgraph-matching substrate of FairSQG:
// given a query instance and an attributed graph it computes the output
// node's match set q(u_o, G) under subgraph isomorphism (injective) or
// homomorphism semantics. It supports incremental verification — when an
// instance refines an already-verified parent, only the parent's match set
// needs to be re-checked (Lemma 2 of the paper).
package match

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// Mode selects the matching semantics.
type Mode uint8

const (
	// Isomorphism requires the matching h to be injective on query nodes.
	Isomorphism Mode = iota
	// Homomorphism allows two query nodes to map to the same graph node.
	Homomorphism
)

// Order selects the backtracking variable-ordering policy.
type Order uint8

const (
	// OrderDynamic (the default) picks the next query node at every search
	// depth: the cheapest frontier node by live candidate supply — the
	// smaller of its filtered candidate count and the shortest adjacency
	// run from an already-assigned neighbor.
	OrderDynamic Order = iota
	// OrderStatic keeps the connectivity-first order fixed per plan (the
	// pre-dynamic reference policy, retained as an ablation knob). Results
	// are identical in both settings; only the exploration order changes.
	OrderStatic
)

// String renders the order knob the way the -order CLI flag spells it.
func (o Order) String() string {
	if o == OrderStatic {
		return "static"
	}
	return "dynamic"
}

// ParseOrder parses the -order flag value.
func ParseOrder(s string) (Order, error) {
	switch s {
	case "dynamic":
		return OrderDynamic, nil
	case "static":
		return OrderStatic, nil
	}
	return OrderDynamic, fmt.Errorf("match: unknown order %q (want static or dynamic)", s)
}

// Stats counts work done by the matcher; cumulative across calls.
type Stats struct {
	// Evals is the number of instance evaluations performed.
	Evals int
	// CandidatesChecked counts output-node candidates tested.
	CandidatesChecked int
	// BacktrackNodes counts search-tree nodes expanded.
	BacktrackNodes int
	// IndexSelections counts candidate selections answered through a
	// sorted per-(label, attribute) index; ScanSelections counts linear
	// label scans (the reference path, also taken when no literal's index
	// range is selective enough).
	IndexSelections int
	ScanSelections  int
	// SigPruned counts candidates rejected by the degree and
	// neighborhood-label-signature check before entering a candidate set.
	SigPruned int
}

// Matcher evaluates query instances against one frozen graph.
//
// A Matcher's mutable state (Stats, the backtracking scratch) is NOT safe
// for concurrent use: create one Matcher per goroutine, or use Engine,
// which maintains a pool of per-goroutine Matchers behind a goroutine-safe
// API. The frozen Graph and an attached CandidateCache are themselves safe
// to share between any number of Matchers.
type Matcher struct {
	G    *graph.Graph
	Mode Mode
	// Order selects the backtracking variable-ordering policy (default
	// OrderDynamic); see Order. With an unbounded budget the two policies
	// return identical results.
	Order Order
	// MaxBacktrackNodes bounds the search tree expanded per output-node
	// candidate; 0 means unbounded. When the bound trips the candidate is
	// conservatively reported as a non-match.
	MaxBacktrackNodes int
	// Cache, when non-nil, memoizes the label+literal candidate filtering
	// phase across evaluations (and across Matchers sharing the cache).
	// Results are unchanged; only repeated nodeSatisfies scans are skipped.
	Cache *CandidateCache
	// DisableAttrIndex forces the linear-scan reference path for candidate
	// selection instead of the sorted per-(label, attribute) indexes.
	// Results are identical; only the access path changes (ablation knob).
	DisableAttrIndex bool

	Stats Stats

	// ctx, when non-nil, is polled during backtracking so deadline/cancel
	// aborts propagate through extend; set via bind or by Engine.
	ctx context.Context
	// aborted records that ctx fired mid-evaluation: the evaluation's
	// result is a conservative partial answer and must be discarded.
	aborted bool

	// Backtracking scratch reused across evaluations: used is an
	// isomorphism-injectivity bitset over all of V, assign the current
	// partial matching indexed by plan node, nodesLeft/exhausted the
	// explicit search budget (exhausted distinguishes "budget spent" from
	// the MaxBacktrackNodes == 0 "unbounded" zero).
	used      []uint64
	assign    []graph.NodeID
	nodesLeft int
	exhausted bool
	// assignedMask mirrors assign as a bitmask over plan indexes, and
	// reachMask is the union of adjMask over the assigned prefix, so
	// reachMask &^ assignedMask is exactly the frontier pickNext chooses
	// from — no per-node scan. Both are maintained only while adjMask is
	// non-nil (plans of ≤ 64 nodes); larger plans fall back to the scan.
	assignedMask uint64
	reachMask    uint64
	// scratch is the propagation semijoin mask, reused across arcs.
	scratch []uint64
	// dirtyPrev/dirtyNext drive the propagation worklist.
	dirtyPrev, dirtyNext []bool

	// Frozen-graph tables captured at New (shared, read-only). The inner
	// loops index them directly so the compiler keeps them register- and
	// inline-friendly: outAdj/inAdj are the sorted adjacency lists,
	// outRuns/inRuns the run-boundary tables (nil past the graph's size
	// cap, in which case Graph.EdgeRun is the fallback), labelPos the
	// packed label+rank table, sigOut/sigIn the neighborhood signatures.
	outAdj, inAdj   [][]graph.Edge
	outRuns, inRuns []int32
	runStride       int
	labelPos        []uint64
	sigOut, sigIn   []uint64
}

// New returns a Matcher over a frozen graph with isomorphism semantics.
func New(g *graph.Graph) *Matcher {
	if !g.Frozen() {
		panic("match: graph must be frozen")
	}
	m := &Matcher{G: g, used: make([]uint64, (g.NumNodes()+63)/64)}
	m.outAdj, m.inAdj = g.Adjacency(true), g.Adjacency(false)
	m.outRuns, m.runStride = g.RunStarts(true)
	m.inRuns, _ = g.RunStarts(false)
	m.labelPos = g.LabelPosTable()
	m.sigOut, m.sigIn = g.SignatureTables()
	return m
}

// runLen is len(EdgeRun(v, label, outgoing)) via the boundary tables.
func (m *Matcher) runLen(v graph.NodeID, label graph.LabelID, outgoing bool) int {
	starts := m.outRuns
	if !outgoing {
		starts = m.inRuns
	}
	if starts == nil {
		return len(m.G.EdgeRun(v, label, outgoing))
	}
	b := int(v)*m.runStride + int(label)
	return int(starts[b+1] - starts[b])
}

func (m *Matcher) usedGet(v graph.NodeID) bool { return m.used[v>>6]&(1<<uint(v&63)) != 0 }
func (m *Matcher) usedSet(v graph.NodeID)      { m.used[v>>6] |= 1 << uint(v&63) }
func (m *Matcher) usedClear(v graph.NodeID)    { m.used[v>>6] &^= 1 << uint(v&63) }

// plan is the per-instance evaluation plan: active structure, candidate
// sets and a matching order rooted at the output node.
type plan struct {
	q       *query.Instance
	nodes   []int // active template nodes
	nodePos []int // template node -> index in nodes (-1 when inactive)
	rootIdx int   // index (into nodes) of the pinned node
	adj     [][]planEdge
	// adjMask is a neighbor bitmask per node (bit j set when some active
	// edge joins nodes i and j) and fullMask has one bit per plan node,
	// valid for plans of ≤ 64 nodes (adjMask is nil beyond that); pickNext
	// derives the search frontier from them and the matcher's assignedMask
	// without scanning nodes or edge lists.
	adjMask  []uint64
	fullMask uint64
	order    []int // static matching order (OrderStatic), order[0] = rootIdx
	cands    [][]graph.NodeID
	// candBits mirrors cands as dense bitsets over label-local positions
	// (graph.LabelPos); nil for nodes without constraint edges, which never
	// need membership tests.
	candBits  []graph.Bitset
	labels    []graph.LabelID // per plan node: interned node label
	edgeCount int
}

// planEdge is one incident active edge from the perspective of a node.
type planEdge struct {
	other    int // index into plan.nodes
	label    graph.LabelID
	outgoing bool // true when the edge leaves this node
}

// inSet reports whether v is in plan node i's candidate set: the label must
// match (bitset positions are label-local) and the bit at v's label rank
// must be set. The packed label+rank table resolves both in one load.
func (m *Matcher) inSet(p *plan, i int, v graph.NodeID) bool {
	lp := m.labelPos[v]
	return graph.LabelID(lp>>32) == p.labels[i] && p.candBits[i].Get(int(uint32(lp)))
}

// EvalOutput computes q(G) = q(u_o, G): the distinct graph nodes the output
// node matches to. The result is sorted.
func (m *Matcher) EvalOutput(q *query.Instance) []graph.NodeID {
	return m.EvalOutputWithin(q, nil)
}

// EvalOutputWithin is EvalOutput restricted to output-node candidates drawn
// from within (nil means all nodes with the output label). Passing the
// verified parent's match set implements the paper's incVerify: a refined
// instance's matches are a subset of its parent's.
func (m *Matcher) EvalOutputWithin(q *query.Instance, within []graph.NodeID) []graph.NodeID {
	matches, _ := m.EvalOutputFiltered(q, within, nil)
	return matches
}

// EvalOutputFiltered is EvalOutputWithin with an admission check: after the
// cheap candidate-filtering phase, accept is offered the arc-consistent
// candidate superset of q(u_o, G). When accept returns false the expensive
// backtracking phase is skipped and ok is false — the caller learned the
// instance cannot meet its requirements (any monotone predicate over
// candidate supersets, e.g. coverage upper bounds, is sound here). A nil
// accept admits everything.
func (m *Matcher) EvalOutputFiltered(q *query.Instance, within []graph.NodeID,
	accept func(candidates []graph.NodeID) bool) (matches []graph.NodeID, ok bool) {
	return m.EvalNodeFiltered(q, q.T.Output, within, accept)
}

// EvalNode computes q(u, G) for an arbitrary template node: the graph
// nodes u maps to across all matchings. An inactive node (projected out of
// the output component) has no matches.
func (m *Matcher) EvalNode(q *query.Instance, node int) []graph.NodeID {
	matches, _ := m.EvalNodeFiltered(q, node, nil, nil)
	return matches
}

// EvalNodeFiltered generalizes EvalOutputFiltered to any template node:
// within restricts that node's candidates (a verified parent's match set
// for the same node is a valid superset under refinement), and accept sees
// the node's arc-consistent candidates.
func (m *Matcher) EvalNodeFiltered(q *query.Instance, node int, within []graph.NodeID,
	accept func(candidates []graph.NodeID) bool) (matches []graph.NodeID, ok bool) {
	m.Stats.Evals++
	if !q.NodeActive(node) {
		return nil, true
	}
	p := m.buildPlan(q, node, within)
	if p == nil {
		return nil, true
	}
	rootCands := p.cands[p.rootIdx]
	if accept != nil && !accept(rootCands) {
		return nil, false
	}
	if len(p.nodes) == 1 {
		// The instance collapsed to this node alone: every candidate is a
		// match.
		res := make([]graph.NodeID, len(rootCands))
		copy(res, rootCands)
		sortIDs(res)
		return res, true
	}
	var result []graph.NodeID
	for _, v := range rootCands {
		m.Stats.CandidatesChecked++
		if m.embedFrom(p, v) {
			result = append(result, v)
		}
	}
	// rootCands is ascending, so the appends usually are too; sortIDs is a
	// linear verification with a sort fallback for unsorted within-sets.
	sortIDs(result)
	return result, true
}

// buildPlan computes candidate sets with label/literal filtering, degree
// and neighborhood-signature pruning, and arc-consistency propagation over
// label-local bitsets, plus a static connectivity-first matching order
// rooted at pin (the node whose matches are being computed). It returns nil
// when some active node has no candidates (empty q(G)).
func (m *Matcher) buildPlan(q *query.Instance, pin int, within []graph.NodeID) *plan {
	t := q.T
	p := &plan{q: q, nodes: q.ActiveNodes(), nodePos: make([]int, len(t.Nodes))}
	for i := range p.nodePos {
		p.nodePos[i] = -1
	}
	for i, ni := range p.nodes {
		p.nodePos[ni] = i
	}
	p.adj = make([][]planEdge, len(p.nodes))
	if n := len(p.nodes); n <= 64 {
		p.adjMask = make([]uint64, n)
		p.fullMask = ^uint64(0)
		if n < 64 {
			p.fullMask = 1<<uint(n) - 1
		}
	}
	for _, ei := range q.ActiveEdges() {
		e := &t.Edges[ei]
		fi, ti := p.nodePos[e.From], p.nodePos[e.To]
		label := m.G.LookupLabel(e.Label)
		if label == graph.InvalidLabel {
			// The edge label never occurs in G: no embedding exists.
			return nil
		}
		p.adj[fi] = append(p.adj[fi], planEdge{other: ti, label: label, outgoing: true})
		p.adj[ti] = append(p.adj[ti], planEdge{other: fi, label: label, outgoing: false})
		if p.adjMask != nil {
			p.adjMask[fi] |= 1 << uint(ti)
			p.adjMask[ti] |= 1 << uint(fi)
		}
		p.edgeCount++
	}
	p.labels = make([]graph.LabelID, len(p.nodes))
	p.cands = make([][]graph.NodeID, len(p.nodes))
	p.candBits = make([]graph.Bitset, len(p.nodes))
	p.rootIdx = p.nodePos[pin]
	for i, ni := range p.nodes {
		p.labels[i] = m.G.LookupLabel(t.Nodes[ni].Label)
		lits := q.CompiledLiterals(m.G, ni)
		var cands []graph.NodeID
		if i == p.rootIdx && within != nil {
			cands = make([]graph.NodeID, 0, len(within))
			for _, v := range within {
				if m.G.NodeLabelID(v) != p.labels[i] {
					continue
				}
				if nodeSatisfies(m.G, v, lits) {
					cands = append(cands, v)
				}
			}
		} else {
			cands = m.filteredCandidates(t.Nodes[ni].Label, lits)
		}
		if len(p.adj[i]) > 0 {
			cands = m.structurePrune(p, i, cands)
		}
		if len(cands) == 0 {
			return nil
		}
		p.cands[i] = cands
	}
	for i := range p.nodes {
		// Only nodes referenced by a constraint edge need the set form;
		// skipping the rest keeps single-node plans bitset-free.
		if len(p.adj[i]) == 0 {
			continue
		}
		bits := graph.NewBitset(len(m.G.NodesByLabelID(p.labels[i])))
		for _, v := range p.cands[i] {
			bits.Set(int(m.G.LabelPos(v)))
		}
		p.candBits[i] = bits
	}
	if !m.propagate(p) {
		return nil
	}
	p.order = matchingOrder(p, p.rootIdx)
	return p
}

// nodeReq is the structural requirement profile of one plan node: the
// signature bits its candidates must carry and, per (label, direction), the
// minimum incident-edge count an embedding needs.
type nodeReq struct {
	sigOut, sigIn uint64
	counts        []labelCount
}

// labelCount is one (label, direction) requirement with the minimum number
// of graph edges a candidate must offer.
type labelCount struct {
	label    graph.LabelID
	outgoing bool
	need     int
}

// structureReq derives plan node i's requirement from its incident active
// edges. Under isomorphism, k distinct template neighbors over one (label,
// direction) map to k distinct graph neighbors, each contributing at least
// one edge, so a candidate needs ≥ k edges in that run; under homomorphism
// neighbors may coincide, so one edge suffices (the signature bit covers
// it). Adjacency lists are template-sized, so the quadratic scans are a
// handful of comparisons.
func (m *Matcher) structureReq(p *plan, i int) nodeReq {
	var req nodeReq
	adj := p.adj[i]
	for ei, pe := range adj {
		bit := graph.LabelSigBit(pe.label)
		if pe.outgoing {
			req.sigOut |= bit
		} else {
			req.sigIn |= bit
		}
		// Emit one count per (label, direction): skip if an earlier edge
		// already covered this pair.
		dup := false
		for _, oe := range adj[:ei] {
			if oe.label == pe.label && oe.outgoing == pe.outgoing {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		need := 1
		if m.Mode == Isomorphism {
			need = 0
			for oi, oe := range adj {
				if oe.label != pe.label || oe.outgoing != pe.outgoing {
					continue
				}
				first := true
				for _, ee := range adj[:oi] {
					if ee.label == pe.label && ee.outgoing == pe.outgoing && ee.other == oe.other {
						first = false
						break
					}
				}
				if first {
					need++
				}
			}
		}
		req.counts = append(req.counts, labelCount{label: pe.label, outgoing: pe.outgoing, need: need})
	}
	return req
}

// structurePrune drops candidates that provably cannot embed: a required
// signature bit missing from the node's neighborhood proves a needed edge
// label absent (the signature is one-sided — set bits are inconclusive),
// and an edge count below the isomorphism-distinct-neighbor requirement
// proves an injective assignment impossible. Pruned candidates are counted
// in Stats.SigPruned; results never change (propagate and the backtracking
// search would reject the same candidates later, at higher cost).
func (m *Matcher) structurePrune(p *plan, i int, cands []graph.NodeID) []graph.NodeID {
	req := m.structureReq(p, i)
	kept := cands[:0]
	for _, v := range cands {
		if m.structureAdmits(req, v) {
			kept = append(kept, v)
		} else {
			m.Stats.SigPruned++
		}
	}
	return kept
}

// structureAdmits reports whether v passes node requirement req.
func (m *Matcher) structureAdmits(req nodeReq, v graph.NodeID) bool {
	if req.sigOut&^m.sigOut[v] != 0 || req.sigIn&^m.sigIn[v] != 0 {
		return false
	}
	for _, c := range req.counts {
		if c.need > 1 && m.runLen(v, c.label, c.outgoing) < c.need {
			return false
		}
	}
	return true
}

// filteredCandidates returns the label's nodes filtered by lits, consulting
// the candidate cache when attached. Cached lists are immutable, so both
// the stored list and the returned list are private copies (propagate
// prunes plan candidate slices in place).
func (m *Matcher) filteredCandidates(label string, lits []query.CompiledLiteral) []graph.NodeID {
	if m.Cache == nil {
		return m.selectCandidates(label, lits)
	}
	// The graph generation prefix ((lineage, version), see graph.GenKey)
	// makes a shared cache safe across graphs and across mutations: a
	// post-mutation matcher can never be served a pre-mutation candidate
	// list, and two graphs sharing one cache never collide.
	key := m.G.GenKey() + "\x02" + candKey(label, lits)
	if cached, ok := m.Cache.lookup(key); ok {
		out := make([]graph.NodeID, len(cached))
		copy(out, cached)
		return out
	}
	cands := m.selectCandidates(label, lits)
	stored := make([]graph.NodeID, len(cands))
	copy(stored, cands)
	m.Cache.store(key, stored)
	return cands
}

// indexScanCutoff is the inverse fraction of the label's population above
// which the narrowest index range stops paying: gathering k index entries
// costs k column reads plus a k·log k NodeID re-sort, so for wide ranges a
// straight scan (already in NodeID order) wins. BENCH.md records the
// measured crossover backing this constant: the index is ahead below ~10%
// selectivity and behind above ~25%, so ranges wider than a quarter of the
// label fall back to the scan.
const indexScanCutoff = 4

// selectCandidates picks the access path for one (label, literals) pair:
// the most selective sorted-index range when one is narrow enough, the
// linear label scan otherwise. Both paths return the identical list in
// ascending NodeID order.
func (m *Matcher) selectCandidates(label string, lits []query.CompiledLiteral) []graph.NodeID {
	base := m.G.NodesByLabel(label)
	if len(lits) == 0 {
		// Unconstrained node: the scan degenerates to a copy of the label
		// bucket (the counter still records it as a scan selection).
		m.Stats.ScanSelections++
		out := make([]graph.NodeID, len(base))
		copy(out, base)
		return out
	}
	if !m.DisableAttrIndex && len(lits) > 0 && len(base) > 0 {
		if cands, ok := m.indexCandidates(base, label, lits); ok {
			m.Stats.IndexSelections++
			return cands
		}
	}
	m.Stats.ScanSelections++
	cands := make([]graph.NodeID, 0, len(base))
	if len(lits) == 1 {
		// Single-literal scans take the column-specialized compare.
		return m.G.AppendMatching(cands, base, lits[0].ID, lits[0].Op, lits[0].Value)
	}
	for _, v := range base {
		if nodeSatisfies(m.G, v, lits) {
			cands = append(cands, v)
		}
	}
	return cands
}

// indexCandidates resolves the literal set through the sorted attribute
// indexes: every literal's satisfying subrange is binary-searched, the
// narrowest range drives the gather, and the remaining literals verify
// against the columns. ok is false when no range is selective enough and
// the caller should fall back to the scan.
func (m *Matcher) indexCandidates(base []graph.NodeID, label string, lits []query.CompiledLiteral) ([]graph.NodeID, bool) {
	labelID := m.G.LookupLabel(label)
	best := -1
	var bestIx graph.SortedIndex
	bestLo, bestHi := 0, 0
	for i, l := range lits {
		ix := m.G.SortedIndex(labelID, l.ID)
		if !ix.Valid() {
			// The attribute never occurs on this label: every candidate
			// reads Null, so the literal is uniform — either it rejects
			// everything (provably empty result) or it filters nothing.
			// The empty slice (not nil) matches the scan path's result.
			if !l.Op.Apply(graph.Null, l.Value) {
				return []graph.NodeID{}, true
			}
			continue
		}
		lo, hi := ix.Range(l.Op, l.Value)
		if best < 0 || hi-lo < bestHi-bestLo {
			best, bestIx, bestLo, bestHi = i, ix, lo, hi
		}
	}
	if best < 0 {
		// Every literal is uniformly true for this label.
		out := make([]graph.NodeID, len(base))
		copy(out, base)
		return out, true
	}
	if (bestHi-bestLo)*indexScanCutoff > len(base) {
		return nil, false
	}
	out := make([]graph.NodeID, 0, bestHi-bestLo)
	for i := bestLo; i < bestHi; i++ {
		v := bestIx.At(i)
		ok := true
		for j, l := range lits {
			if j != best && !l.Matches(m.G, v) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	// The permutation is in value order; restore the ascending NodeID
	// order every other path produces.
	sortIDs(out)
	return out, true
}

// nodeSatisfies checks all compiled literals of a template node against v.
func nodeSatisfies(g *graph.Graph, v graph.NodeID, lits []query.CompiledLiteral) bool {
	for _, l := range lits {
		if !l.Matches(g, v) {
			return false
		}
	}
	return true
}

// propagate runs arc-consistency over the candidate bitsets: a candidate
// of u survives only if every incident active edge can be matched by some
// candidate of the neighbor. Each arc is revised by a reverse semijoin —
// the neighbor's candidates mark their adjacency-run endpoints in a
// scratch mask, then u's bitset is intersected against it word-at-a-time —
// so a whole candidate set is pruned at the cost of scanning the
// neighbor's edges once, instead of per-candidate neighborhood probes. A
// worklist re-revises only arcs whose source set shrank; the fixpoint (the
// unique greatest arc-consistent subset) is the same one the per-candidate
// reference loop reaches. Returns false when a candidate set empties.
func (m *Matcher) propagate(p *plan) bool {
	n := len(p.nodes)
	if cap(m.dirtyPrev) < n {
		m.dirtyPrev = make([]bool, n)
		m.dirtyNext = make([]bool, n)
	}
	dirtyPrev, dirtyNext := m.dirtyPrev[:n], m.dirtyNext[:n]
	for i := range dirtyPrev {
		dirtyPrev[i] = true // first sweep revises every arc
		dirtyNext[i] = false
	}
	for sweep := true; sweep; {
		sweep = false
		for i := 0; i < n; i++ {
			if len(p.adj[i]) == 0 {
				continue
			}
			shrunk := false
			for _, pe := range p.adj[i] {
				if !dirtyPrev[pe.other] {
					continue
				}
				// Revise in whichever direction is cheaper: the reverse
				// semijoin walks the neighbor's candidates once, the
				// forward probe walks this node's candidates with an
				// early-exit membership test. Both compute the identical
				// revision.
				var s, nonEmpty bool
				if len(p.cands[i]) < len(p.cands[pe.other]) {
					s, nonEmpty = m.probeArc(p, i, pe)
				} else {
					s, nonEmpty = m.reviseArc(p, i, pe)
				}
				if !nonEmpty {
					return false
				}
				shrunk = shrunk || s
			}
			if shrunk {
				// Rebuild the slice form in place from the surviving bits.
				kept := p.cands[i][:0]
				for _, v := range p.cands[i] {
					if p.candBits[i].Get(int(uint32(m.labelPos[v]))) {
						kept = append(kept, v)
					}
				}
				p.cands[i] = kept
				dirtyNext[i] = true
				sweep = true
			}
		}
		dirtyPrev, dirtyNext = dirtyNext, dirtyPrev
		for i := range dirtyNext {
			dirtyNext[i] = false
		}
	}
	return true
}

// reviseArc prunes plan node i's candidates to those with a pe-matching
// edge into the current candidate set of pe.other. It reports whether the
// set shrank and whether it remains non-empty.
func (m *Matcher) reviseArc(p *plan, i int, pe planEdge) (shrunk, nonEmpty bool) {
	words := p.candBits[i].Words()
	if cap(m.scratch) < len(words) {
		m.scratch = make([]uint64, len(words))
	}
	scratch := m.scratch[:len(words)]
	for k := range scratch {
		scratch[k] = 0
	}
	lbl := p.labels[i]
	// The arc's edges seen from the neighbor side: flip the direction.
	adj, starts := m.outAdj, m.outRuns
	if pe.outgoing {
		adj, starts = m.inAdj, m.inRuns
	}
	if starts != nil {
		// Manually inlined run lookup — this is the propagation kernel.
		for _, w := range p.cands[pe.other] {
			b := int(w)*m.runStride + int(pe.label)
			for _, e := range adj[w][starts[b]:starts[b+1]] {
				lp := m.labelPos[e.To]
				if graph.LabelID(lp>>32) == lbl {
					scratch[uint32(lp)>>6] |= 1 << (uint32(lp) & 63)
				}
			}
		}
	} else {
		for _, w := range p.cands[pe.other] {
			for _, e := range m.G.EdgeRun(w, pe.label, !pe.outgoing) {
				lp := m.labelPos[e.To]
				if graph.LabelID(lp>>32) == lbl {
					scratch[uint32(lp)>>6] |= 1 << (uint32(lp) & 63)
				}
			}
		}
	}
	for k := range words {
		masked := words[k] & scratch[k]
		if masked != words[k] {
			shrunk = true
			words[k] = masked
		}
		if masked != 0 {
			nonEmpty = true
		}
	}
	return shrunk, nonEmpty
}

// probeArc is reviseArc with the loop inverted: each candidate of i scans
// its own pe-run for an endpoint inside pe.other's candidate set. Cheaper
// than the semijoin when i's set is the smaller side.
func (m *Matcher) probeArc(p *plan, i int, pe planEdge) (shrunk, nonEmpty bool) {
	bits := p.candBits[i]
	adj, starts := m.inAdj, m.inRuns
	if pe.outgoing {
		adj, starts = m.outAdj, m.outRuns
	}
	for _, v := range p.cands[i] {
		es := adj[v]
		if starts != nil {
			b := int(v)*m.runStride + int(pe.label)
			es = es[starts[b]:starts[b+1]]
		} else {
			es = m.G.EdgeRun(v, pe.label, pe.outgoing)
		}
		ok := false
		for _, e := range es {
			if m.inSet(p, pe.other, e.To) {
				ok = true
				break
			}
		}
		if ok {
			nonEmpty = true
		} else {
			bits.Clear(int(uint32(m.labelPos[v])))
			shrunk = true
		}
	}
	return shrunk, nonEmpty
}

// matchingOrder returns a connectivity-first order starting at the output
// node: each subsequent node is adjacent to an already-ordered node and has
// the smallest candidate set among the frontier (fail-first heuristic).
// Active instances are connected by construction, so the order covers all
// active nodes.
func matchingOrder(p *plan, outIdx int) []int {
	n := len(p.nodes)
	order := make([]int, 0, n)
	placed := make([]bool, n)
	order = append(order, outIdx)
	placed[outIdx] = true
	for len(order) < n {
		best, bestSize := -1, int(^uint(0)>>1)
		for _, oi := range order {
			for _, pe := range p.adj[oi] {
				if placed[pe.other] {
					continue
				}
				if s := len(p.cands[pe.other]); s < bestSize {
					best, bestSize = pe.other, s
				}
			}
		}
		if best < 0 {
			// Disconnected remainder; should not happen for projected
			// instances, but fall back to any unplaced node.
			for i := 0; i < n; i++ {
				if !placed[i] {
					best = i
					break
				}
			}
		}
		order = append(order, best)
		placed[best] = true
	}
	return order
}

// cancelCheckMask throttles context polling to one check per 256 expanded
// search-tree nodes: frequent enough for prompt deadline aborts, rare
// enough to keep the uncancellable hot path unaffected.
const cancelCheckMask = 255

// bindContext attaches a cancellation context for subsequent evaluations
// and clears any prior abort; Engine calls it before driving a pooled
// Matcher. A nil ctx disables polling.
func (m *Matcher) bindContext(ctx context.Context) {
	m.ctx = ctx
	m.aborted = false
}

// BindContext attaches a cancellation context to subsequent sequential
// evaluations: the backtracking search polls it (throttled by
// cancelCheckMask) and unwinds when it fires, leaving Aborted set. A nil
// ctx disables polling. Core binds the run context here so server-side
// deadlines abort an in-flight evaluation instead of waiting for the next
// instance boundary.
func (m *Matcher) BindContext(ctx context.Context) { m.bindContext(ctx) }

// Aborted reports whether the last evaluation was cut short by context
// cancellation; an aborted evaluation's result is partial and must be
// discarded.
func (m *Matcher) Aborted() bool { return m.aborted }

// embedFrom checks whether a full matching exists with the pinned node
// mapped to v.
func (m *Matcher) embedFrom(p *plan, v graph.NodeID) bool {
	if cap(m.assign) < len(p.nodes) {
		m.assign = make([]graph.NodeID, len(p.nodes))
	}
	m.assign = m.assign[:len(p.nodes)]
	for i := range m.assign {
		m.assign[i] = graph.InvalidNode
	}
	m.assign[p.rootIdx] = v
	if p.adjMask != nil {
		m.assignedMask = 1 << uint(p.rootIdx)
		m.reachMask = p.adjMask[p.rootIdx]
	}
	if m.Mode == Isomorphism {
		m.usedSet(v)
	}
	m.nodesLeft = m.MaxBacktrackNodes
	m.exhausted = false
	ok := m.extend(p, 1)
	// extend unwinds its own assignments (also on success), so clearing the
	// root restores the scratch for the next candidate.
	if m.Mode == Isomorphism {
		m.usedClear(v)
	}
	return ok
}

// extend recursively assigns the remaining plan nodes, depth counting how
// many are assigned already. The per-candidate budget is explicit matcher
// state: nodesLeft counts expansions remaining and exhausted marks the
// bound tripping, so a budget of 1 admits exactly one expansion instead of
// colliding with the 0 = unbounded sentinel.
func (m *Matcher) extend(p *plan, depth int) bool {
	if depth == len(p.nodes) {
		return true
	}
	if m.aborted {
		return false
	}
	// Count the node only after the abort check: an unwinding search must
	// not inflate the counter with nodes it never actually expanded.
	m.Stats.BacktrackNodes++
	if m.ctx != nil && m.Stats.BacktrackNodes&cancelCheckMask == 0 {
		select {
		case <-m.ctx.Done():
			// Unwind the whole search: every ancestor sees aborted and
			// stops trying siblings, so the abort propagates in O(depth).
			m.aborted = true
			return false
		default:
		}
	}
	if m.MaxBacktrackNodes != 0 {
		if m.nodesLeft == 0 {
			m.exhausted = true
			return false
		}
		m.nodesLeft--
	}

	var ui int
	var pivot graph.NodeID = graph.InvalidNode
	var pivotAt int // index into p.adj[ui] of the edge reaching the pivot
	var pivotEdge planEdge
	if m.Order == OrderStatic {
		ui = p.order[depth]
		// Pick the assigned neighbor whose adjacency run is cheapest to
		// scan as the candidate generator.
		bestLen := 0
		for ei, pe := range p.adj[ui] {
			w := m.assign[pe.other]
			if w == graph.InvalidNode {
				continue
			}
			if l := m.runLen(w, pe.label, !pe.outgoing); pivot == graph.InvalidNode || l < bestLen {
				pivot, pivotAt, bestLen = w, ei, l
				pivotEdge = planEdge{other: ui, label: pe.label, outgoing: !pe.outgoing}
			}
		}
	} else {
		ui, pivot, pivotAt, pivotEdge = m.pickNext(p)
	}

	found := false
	if pivot != graph.InvalidNode {
		// Generate candidates from the pivot's adjacency run: every entry
		// already satisfies the pivot edge, so consistent skips it. Runs
		// are sorted by endpoint, letting multigraph parallel edges dedup
		// by adjacency. When the run dwarfs the candidate list, gallop the
		// other way: walk the (sorted) candidates and binary-search each in
		// the run — both directions enumerate the same ascending sequence.
		run := m.G.EdgeRun(pivot, pivotEdge.label, pivotEdge.outgoing)
		if len(p.cands[ui])*8 < len(run) {
			for _, v := range p.cands[ui] {
				if !runContains(run, v) {
					continue
				}
				if m.try(p, depth, ui, v, pivotAt) {
					found = true
					break
				}
				if m.exhausted || m.aborted {
					break
				}
			}
			return found
		}
		var last graph.NodeID = graph.InvalidNode
		for _, e := range run {
			if e.To == last {
				continue
			}
			last = e.To
			if m.try(p, depth, ui, e.To, pivotAt) {
				found = true
				break
			}
			if m.exhausted || m.aborted {
				break
			}
		}
	} else {
		for _, v := range p.cands[ui] {
			if m.try(p, depth, ui, v, -1) {
				found = true
				break
			}
			if m.exhausted || m.aborted {
				break
			}
		}
	}
	return found
}

// pickNext chooses the next node to assign under dynamic ordering: among
// unassigned nodes with an assigned neighbor, the one whose candidate
// supply is cheapest right now — the smaller of its filtered candidate
// count and the shortest adjacency run offered by an assigned neighbor
// (live counts; the filtered counts already encode literal selectivity).
// Ties break toward the lowest plan index so the choice is deterministic.
// It returns the chosen node and its cheapest assigned-neighbor pivot
// (InvalidNode when the remainder is disconnected, falling back to the
// lowest unassigned node).
func (m *Matcher) pickNext(p *plan) (ui int, pivot graph.NodeID, pivotAt int, pivotEdge planEdge) {
	bestNode, bestCost := -1, int(^uint(0)>>1)
	var bestPivot graph.NodeID = graph.InvalidNode
	bestAt := -1
	var bestEdge planEdge
	if p.adjMask != nil {
		// Mask fast path: the frontier is unassigned nodes adjacent to the
		// assigned prefix, read straight off the masks; only those nodes'
		// edge lists are scanned. Bit order is ascending plan index, so the
		// tie-break matches the full scan below.
		frontier := m.reachMask &^ m.assignedMask
		if frontier == 0 {
			// Disconnected remainder; should not happen for projected
			// instances, but fall back to the lowest unassigned node.
			return bits.TrailingZeros64(p.fullMask &^ m.assignedMask),
				graph.InvalidNode, -1, planEdge{}
		}
		for f := frontier; f != 0; f &= f - 1 {
			i := bits.TrailingZeros64(f)
			pv, pvAt, pvLen, pvEdge := m.cheapestPivot(p, i)
			cost := len(p.cands[i])
			if pvLen < cost {
				cost = pvLen
			}
			if cost < bestCost {
				bestNode, bestCost = i, cost
				bestPivot, bestAt, bestEdge = pv, pvAt, pvEdge
				if cost == 0 {
					break // an empty pivot run: this branch fails right away
				}
			}
		}
		return bestNode, bestPivot, bestAt, bestEdge
	}
	firstUnassigned := -1
	for i := range p.nodes {
		if m.assign[i] != graph.InvalidNode {
			continue
		}
		if firstUnassigned < 0 {
			firstUnassigned = i
		}
		pv, pvAt, pvLen, pvEdge := m.cheapestPivot(p, i)
		if pv == graph.InvalidNode {
			continue // not adjacent to the assigned prefix
		}
		cost := len(p.cands[i])
		if pvLen < cost {
			cost = pvLen
		}
		if cost < bestCost {
			bestNode, bestCost = i, cost
			bestPivot, bestAt, bestEdge = pv, pvAt, pvEdge
		}
	}
	if bestNode < 0 {
		// Disconnected remainder; see above.
		return firstUnassigned, graph.InvalidNode, -1, planEdge{}
	}
	return bestNode, bestPivot, bestAt, bestEdge
}

// cheapestPivot returns node i's cheapest assigned-neighbor pivot: the
// assigned neighbor whose adjacency run toward i is shortest, with the run
// length and the (flipped) generator edge. pv is InvalidNode when i has no
// assigned neighbor.
func (m *Matcher) cheapestPivot(p *plan, i int) (pv graph.NodeID, pvAt, pvLen int, pvEdge planEdge) {
	pv, pvAt = graph.InvalidNode, -1
	for ei, pe := range p.adj[i] {
		w := m.assign[pe.other]
		if w == graph.InvalidNode {
			continue
		}
		l := m.runLen(w, pe.label, !pe.outgoing)
		if pv == graph.InvalidNode || l < pvLen {
			pv, pvAt, pvLen = w, ei, l
			pvEdge = planEdge{other: i, label: pe.label, outgoing: !pe.outgoing}
		}
	}
	return pv, pvAt, pvLen, pvEdge
}

// try attempts assigning plan node ui to v and recursing. skipEdge is the
// index into p.adj[ui] of the pivot edge the candidate was generated from
// (already satisfied by construction), or -1.
func (m *Matcher) try(p *plan, depth, ui int, v graph.NodeID, skipEdge int) bool {
	if m.Mode == Isomorphism && m.usedGet(v) {
		return false
	}
	// A candidate drawn from p.cands[ui] itself (skipEdge < 0) is a member
	// by construction; pivot-generated candidates must pass the bitset.
	if skipEdge >= 0 && !m.inSet(p, ui, v) {
		return false
	}
	if !m.consistent(p, ui, v, skipEdge) {
		return false
	}
	m.assign[ui] = v
	savedReach := m.reachMask
	if p.adjMask != nil {
		m.assignedMask |= 1 << uint(ui)
		m.reachMask |= p.adjMask[ui]
	}
	if m.Mode == Isomorphism {
		m.usedSet(v)
	}
	found := m.extend(p, depth+1)
	m.assign[ui] = graph.InvalidNode
	if p.adjMask != nil {
		m.assignedMask &^= 1 << uint(ui)
		m.reachMask = savedReach
	}
	if m.Mode == Isomorphism {
		m.usedClear(v)
	}
	return found
}

// runContains binary-searches a label run (sorted by endpoint) for an edge
// to v — one step of the galloping run-∩-candidates intersection.
func runContains(run []graph.Edge, v graph.NodeID) bool {
	i := sort.Search(len(run), func(k int) bool { return run[k].To >= v })
	return i < len(run) && run[i].To == v
}

// consistent checks every active edge between ui and already-assigned
// nodes, except the skipEdge the candidate was generated from.
func (m *Matcher) consistent(p *plan, ui int, v graph.NodeID, skipEdge int) bool {
	for ei, pe := range p.adj[ui] {
		if ei == skipEdge {
			continue
		}
		w := m.assign[pe.other]
		if w == graph.InvalidNode {
			continue
		}
		if pe.outgoing {
			if !m.G.HasEdge(v, w, pe.label) {
				return false
			}
		} else {
			if !m.G.HasEdge(w, v, pe.label) {
				return false
			}
		}
	}
	return true
}
