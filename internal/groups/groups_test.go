package groups

import (
	"testing"

	"fairsqg/internal/graph"
)

func genderGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	genders := []string{"male", "male", "female", "male", "female", "male"}
	for _, gd := range genders {
		g.AddNode("Person", map[string]graph.Value{"gender": graph.Str(gd)})
	}
	g.AddNode("Person", nil) // no gender: joins no group
	g.AddNode("Org", map[string]graph.Value{"gender": graph.Str("male")})
	g.Freeze()
	return g
}

func TestByAttribute(t *testing.T) {
	g := genderGraph(t)
	set := ByAttribute(g, "Person", "gender")
	if len(set) != 2 {
		t.Fatalf("got %d groups", len(set))
	}
	// Sorted by value: female first.
	if set[0].Name != "gender=female" || set[0].Size() != 2 {
		t.Errorf("group 0 = %q size %d", set[0].Name, set[0].Size())
	}
	if set[1].Name != "gender=male" || set[1].Size() != 4 {
		t.Errorf("group 1 = %q size %d", set[1].Name, set[1].Size())
	}
	// The Org node must not leak into Person groups.
	if set[1].Members[7] {
		t.Error("wrong-label node in group")
	}
}

func TestByValues(t *testing.T) {
	g := genderGraph(t)
	set := ByValues(g, "Person", "gender", "male", "nonexistent")
	if len(set) != 1 || set[0].Name != "gender=male" {
		t.Errorf("ByValues = %v", set)
	}
}

func TestEqualOpportunityAndSplit(t *testing.T) {
	g := genderGraph(t)
	set := EqualOpportunity(ByAttribute(g, "Person", "gender"), 2)
	if set[0].Want != 2 || set[1].Want != 2 {
		t.Errorf("equal opportunity wants = %d, %d", set[0].Want, set[1].Want)
	}
	if set.TotalWant() != 4 {
		t.Errorf("TotalWant = %d", set.TotalWant())
	}
	set = SplitEvenly(set, 5)
	if set[0].Want+set[1].Want != 5 || set[0].Want != 3 {
		t.Errorf("SplitEvenly = %d, %d", set[0].Want, set[1].Want)
	}
	if s := SplitEvenly(Set{}, 5); len(s) != 0 {
		t.Error("SplitEvenly on empty set")
	}
}

func TestDisparateImpact(t *testing.T) {
	g := genderGraph(t)
	set, err := DisparateImpact(ByAttribute(g, "Person", "gender"), "gender=male", 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	var male, female int
	for _, gr := range set {
		if gr.Name == "gender=male" {
			male = gr.Want
		} else {
			female = gr.Want
		}
	}
	if male != 2 || female != 2 { // ceil(0.8*2) = 2
		t.Errorf("80%% rule wants = male %d, female %d", male, female)
	}
	if _, err := DisparateImpact(set, "gender=other", 2, 0.8); err == nil {
		t.Error("unknown majority should fail")
	}
}

func TestValidate(t *testing.T) {
	good := Set{
		{Name: "a", Members: map[graph.NodeID]bool{0: true}, Want: 1},
		{Name: "b", Members: map[graph.NodeID]bool{1: true}, Want: 0},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	bad := []Set{
		{{Name: "empty", Members: map[graph.NodeID]bool{}}},
		{{Name: "neg", Members: map[graph.NodeID]bool{0: true}, Want: -1}},
		{{Name: "big", Members: map[graph.NodeID]bool{0: true}, Want: 2}},
		{
			{Name: "x", Members: map[graph.NodeID]bool{0: true}},
			{Name: "y", Members: map[graph.NodeID]bool{0: true}},
		},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad set %d accepted", i)
		}
	}
}

func TestCount(t *testing.T) {
	set := Set{
		{Name: "a", Members: map[graph.NodeID]bool{0: true, 1: true}},
		{Name: "b", Members: map[graph.NodeID]bool{2: true}},
	}
	counts := set.Count([]graph.NodeID{0, 1, 2, 3})
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if c := set.Count(nil); c[0] != 0 || c[1] != 0 {
		t.Errorf("empty counts = %v", c)
	}
}
