// Package groups models the disjoint node groups P = {P_1..P_m} of the
// FairSQG problem together with their per-group coverage constraints c_i,
// and provides builders for the fairness policies the paper instantiates
// (equal opportunity and the 80%-rule disparate-impact constraint).
package groups

import (
	"fmt"
	"sort"

	"fairsqg/internal/graph"
)

// Group is one node group P_i with its coverage constraint c_i.
type Group struct {
	Name    string
	Members map[graph.NodeID]bool
	// Want is the coverage constraint c_i: an instance is feasible only if
	// its answer covers at least Want members, and the coverage measure
	// penalizes deviation from exactly Want.
	Want int
}

// Size returns |P_i|.
func (g *Group) Size() int { return len(g.Members) }

// Set is an ordered collection of disjoint groups.
type Set []Group

// TotalWant returns C = Σ c_i.
func (s Set) TotalWant() int {
	c := 0
	for i := range s {
		c += s[i].Want
	}
	return c
}

// Validate checks that groups are non-empty, pairwise disjoint and that
// each constraint satisfies 0 <= c_i <= |P_i|.
func (s Set) Validate() error {
	seen := make(map[graph.NodeID]string)
	for i := range s {
		g := &s[i]
		if len(g.Members) == 0 {
			return fmt.Errorf("groups: group %q is empty", g.Name)
		}
		if g.Want < 0 || g.Want > len(g.Members) {
			return fmt.Errorf("groups: group %q: constraint %d outside [0,%d]", g.Name, g.Want, len(g.Members))
		}
		for v := range g.Members {
			if other, dup := seen[v]; dup {
				return fmt.Errorf("groups: node %d belongs to both %q and %q; groups must be disjoint", v, other, g.Name)
			}
			seen[v] = g.Name
		}
	}
	return nil
}

// Count returns, for each group, |answer ∩ P_i|.
func (s Set) Count(answer []graph.NodeID) []int {
	counts := make([]int, len(s))
	for _, v := range answer {
		for i := range s {
			if s[i].Members[v] {
				counts[i]++
				break // groups are disjoint
			}
		}
	}
	return counts
}

// ByAttribute partitions the nodes with the given label into one group per
// distinct value of attr. Nodes lacking the attribute join no group. Groups
// are returned sorted by value; constraints are left at zero.
func ByAttribute(g *graph.Graph, label, attr string) Set {
	byVal := map[string]map[graph.NodeID]bool{}
	aid := g.AttrIDOf(attr)
	for _, v := range g.NodesByLabel(label) {
		val := g.AttrValue(v, aid)
		if val.IsNull() {
			continue
		}
		key := val.String()
		if byVal[key] == nil {
			byVal[key] = map[graph.NodeID]bool{}
		}
		byVal[key][v] = true
	}
	names := make([]string, 0, len(byVal))
	for k := range byVal {
		names = append(names, k)
	}
	sort.Strings(names)
	set := make(Set, 0, len(names))
	for _, n := range names {
		set = append(set, Group{Name: attr + "=" + n, Members: byVal[n]})
	}
	return set
}

// ByValues is ByAttribute restricted to the listed attribute values, in the
// given order; values with no members are skipped.
func ByValues(g *graph.Graph, label, attr string, values ...string) Set {
	all := ByAttribute(g, label, attr)
	var set Set
	for _, want := range values {
		for i := range all {
			if all[i].Name == attr+"="+want {
				set = append(set, all[i])
			}
		}
	}
	return set
}

// EqualOpportunity assigns the same constraint c to every group: the
// "Equal Opportunity" policy of the paper. It returns the set for chaining.
func EqualOpportunity(s Set, c int) Set {
	for i := range s {
		s[i].Want = c
	}
	return s
}

// SplitEvenly distributes a total coverage budget C evenly across the
// groups (the paper's Fig. 9(f)/(g)/(h) setting); any remainder goes to the
// earliest groups.
func SplitEvenly(s Set, total int) Set {
	if len(s) == 0 {
		return s
	}
	base, rem := total/len(s), total%len(s)
	for i := range s {
		s[i].Want = base
		if i < rem {
			s[i].Want++
		}
	}
	return s
}

// DisparateImpact configures constraints implementing the "80% rule": given
// a majority-group target c, every other group must be covered with at
// least ceil(ratio*c) nodes. majority names the majority group.
func DisparateImpact(s Set, majority string, c int, ratio float64) (Set, error) {
	found := false
	minor := int(ratio*float64(c) + 0.999999)
	for i := range s {
		if s[i].Name == majority {
			s[i].Want = c
			found = true
		} else {
			s[i].Want = minor
		}
	}
	if !found {
		return nil, fmt.Errorf("groups: majority group %q not in set", majority)
	}
	return s, nil
}
