package groups

import (
	"math/rand"
	"testing"

	"fairsqg/internal/graph"
)

// TestCounterMatchesSetCount: the dense-array Counter must agree with the
// map-probing Set.Count on random answers, including nodes outside every
// group and repeated IDs.
func TestCounterMatchesSetCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const numNodes = 200
	set := Set{
		{Name: "a", Members: map[graph.NodeID]bool{}, Want: 1},
		{Name: "b", Members: map[graph.NodeID]bool{}, Want: 1},
		{Name: "c", Members: map[graph.NodeID]bool{}, Want: 1},
	}
	for v := graph.NodeID(0); v < numNodes; v++ {
		switch rng.Intn(4) {
		case 0:
			set[0].Members[v] = true
		case 1:
			set[1].Members[v] = true
		case 2:
			set[2].Members[v] = true
		default: // no group
		}
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	c := NewCounter(numNodes, set)
	for trial := 0; trial < 50; trial++ {
		var answer []graph.NodeID
		for k := rng.Intn(60); k > 0; k-- {
			answer = append(answer, graph.NodeID(rng.Intn(numNodes)))
		}
		want := set.Count(answer)
		got := c.Counts(answer)
		for i := range set {
			if got[i] != want[i] {
				t.Fatalf("trial %d group %d: Counter %d, Set.Count %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCounterOutOfRangeIDs(t *testing.T) {
	set := Set{{Name: "a", Members: map[graph.NodeID]bool{0: true, 500: true}, Want: 1}}
	c := NewCounter(10, set) // member 500 is outside the graph
	got := c.Counts([]graph.NodeID{0, 500, 9})
	if got[0] != 1 {
		t.Errorf("counts = %v, want [1]: in-range member counted once, ID 500 ignored", got)
	}
}

func TestCounterBufferReuse(t *testing.T) {
	set := Set{{Name: "a", Members: map[graph.NodeID]bool{1: true, 2: true}, Want: 1}}
	c := NewCounter(4, set)
	first := c.Counts([]graph.NodeID{1, 2})
	if first[0] != 2 {
		t.Fatalf("counts = %v", first)
	}
	second := c.Counts(nil)
	if &first[0] != &second[0] {
		t.Error("Counts allocated a new buffer; the contract is reuse")
	}
	if second[0] != 0 {
		t.Error("buffer not zeroed between calls")
	}
}
