package groups

import "fairsqg/internal/graph"

// Counter answers group-count queries for one (graph, Set) pair. Set.Count
// probes every group's member map per answer node — O(|answer|·m) map
// lookups; a Counter instead builds a dense node→group array once, so each
// Counts call is one array read per answer node. Verification calls Count
// on every instance (twice, before this existed: feasibility then
// coverage), which made the probing the constant factor in front of every
// lattice node.
//
// A Counter is cheap to keep per Runner; it is not safe for concurrent use
// because the counts buffer is reused across calls.
type Counter struct {
	set Set
	// id[v] is 1+“index of the group containing v”, or 0 when v belongs to
	// no group. Groups are disjoint (Set.Validate enforces it), so one slot
	// suffices.
	id     []int32
	counts []int
}

// NewCounter indexes a group set over a graph with numNodes nodes. Nodes
// outside every group — including IDs past numNodes, which cannot occur in
// answers from the same graph — count toward no group.
func NewCounter(numNodes int, s Set) *Counter {
	c := &Counter{set: s, id: make([]int32, numNodes), counts: make([]int, len(s))}
	for i := range s {
		for v := range s[i].Members {
			if int(v) < numNodes {
				c.id[v] = int32(i) + 1
			}
		}
	}
	return c
}

// Counts returns, for each group, |answer ∩ P_i| — the same values as
// Set.Count. The returned slice is the Counter's internal buffer: it is
// valid until the next Counts call and must not be retained or mutated.
func (c *Counter) Counts(answer []graph.NodeID) []int {
	for i := range c.counts {
		c.counts[i] = 0
	}
	for _, v := range answer {
		if int(v) < len(c.id) {
			if g := c.id[v]; g != 0 {
				c.counts[g-1]++
			}
		}
	}
	return c.counts
}
