package gen

import (
	"fmt"
	"math"

	"fairsqg/internal/graph"
)

// LKI schema constants.
var (
	lkiTitles = []string{
		"Director", "Manager", "Engineer", "Analyst", "Consultant",
		"Designer", "Scientist", "Recruiter", "Intern", "Executive",
	}
	// Directors and managers are deliberately a visible minority so the
	// talent-search templates have selective output labels.
	lkiTitleWeights = []float64{5, 8, 30, 15, 10, 8, 8, 4, 8, 4}

	lkiMajors = []string{
		"ComputerScience", "Economics", "Mathematics", "Physics", "Biology",
		"Chemistry", "History", "Philosophy", "Linguistics", "Sociology",
		"Statistics", "Finance", "Marketing", "Design", "Law",
		"Medicine", "Psychology", "Education", "MechanicalEng", "CivilEng",
		"ElectricalEng", "Journalism", "Music", "Architecture", "Geology",
		"Astronomy", "Anthropology", "PoliticalScience", "Nursing", "Art",
	}
	lkiSkills = []string{
		"IT", "Sales", "Research", "Operations", "Strategy",
		"Data", "Cloud", "Security", "Product", "Support",
	}
	lkiIndustries = []string{
		"Software", "Banking", "Healthcare", "Retail", "Energy",
		"Education", "Media", "Logistics", "Insurance", "Manufacturing",
	}
)

// BuildLKI generates the professional-network dataset: Person and Org
// nodes, worksAt/recommend/coreview edges, and a skewed synthetic gender
// attribute (~60/40 male/female, mirroring the paper's skewed talent-search
// motivation). Every person works at one organization; recommendation and
// co-review edges follow a preferential-attachment skew.
func BuildLKI(opts Options) *graph.Graph {
	budget := opts.Nodes
	if budget <= 0 {
		budget = DefaultNodes(LKI)
	}
	r := newRNG(opts.Seed + 0x1f1)
	g := graph.New()

	numOrgs := budget / 20
	if numOrgs < 5 {
		numOrgs = 5
	}
	numPersons := budget - numOrgs

	orgs := make([]graph.NodeID, numOrgs)
	for i := range orgs {
		// Log-uniform employee counts between 10 and ~20000.
		emp := int64(10.0 * math.Pow(2000.0, r.Float64()))
		orgs[i] = g.AddNode("Org", map[string]graph.Value{
			"name":      graph.Str("org-" + name(r, 2) + fmt.Sprint(i%97)),
			"employees": graph.Int(emp),
			"industry":  graph.Str(pick(r, lkiIndustries)),
		})
	}

	persons := make([]graph.NodeID, numPersons)
	for i := range persons {
		gender := "male"
		if r.Float64() < 0.4 {
			gender = "female"
		}
		title := lkiTitles[pickWeighted(r, lkiTitleWeights)]
		persons[i] = g.AddNode("Person", map[string]graph.Value{
			"name":       graph.Str(name(r, 3)),
			"gender":     graph.Str(gender),
			"title":      graph.Str(title),
			"major":      graph.Str(pick(r, lkiMajors)),
			"skill":      graph.Str(pick(r, lkiSkills)),
			"yearsOfExp": graph.Int(int64(r.Intn(31))),
		})
	}

	for _, p := range persons {
		mustEdge(g, p, orgs[zipfTarget(r, numOrgs)], "worksAt")
	}
	// Recommendation edges: ~4 per person on average, skewed toward
	// low-index (popular) targets.
	numRec := numPersons * 4
	for i := 0; i < numRec; i++ {
		from := persons[r.Intn(numPersons)]
		to := persons[zipfTarget(r, numPersons)]
		if from != to {
			mustEdge(g, from, to, "recommend")
		}
	}
	// Co-review edges: ~2 per person, uniform.
	numCo := numPersons * 2
	for i := 0; i < numCo; i++ {
		from := persons[r.Intn(numPersons)]
		to := persons[r.Intn(numPersons)]
		if from != to {
			mustEdge(g, from, to, "coreview")
		}
	}
	g.Freeze()
	return g
}

func mustEdge(g *graph.Graph, from, to graph.NodeID, label string) {
	if err := g.AddEdge(from, to, label); err != nil {
		panic(err) // generator controls all IDs; out-of-range is a bug
	}
}
