package gen

import (
	"fairsqg/internal/graph"
)

// Cite schema constants.
var (
	citeTopics = []string{
		"MachineLearning", "Networking", "Databases", "Security",
		"Theory", "Systems", "Graphics", "HCI",
	}
	citeTopicWeights = []float64{25, 12, 15, 12, 10, 12, 7, 7}

	citeVenues = []string{
		"ICDE", "SIGMOD", "VLDB", "KDD", "WWW", "NeurIPS", "SOSP", "CCS",
	}
)

// BuildCite generates the citation-graph dataset: Paper and Author nodes
// with topic/citation-count/year attributes, connected by cites and
// authored edges. Citations point backwards in time with a
// preferential-attachment skew, giving the long-tailed numberOfCitations
// distribution of real bibliometric data.
func BuildCite(opts Options) *graph.Graph {
	budget := opts.Nodes
	if budget <= 0 {
		budget = DefaultNodes(Cite)
	}
	r := newRNG(opts.Seed + 0xc17e)
	g := graph.New()

	numPapers := budget * 7 / 10
	numAuthors := budget - numPapers

	authors := make([]graph.NodeID, numAuthors)
	for i := range authors {
		authors[i] = g.AddNode("Author", map[string]graph.Value{
			"name":   graph.Str(name(r, 3)),
			"hIndex": graph.Int(int64(zipfTarget(r, 60))),
		})
	}

	papers := make([]graph.NodeID, numPapers)
	cited := make([]int, numPapers) // citation counts accumulated below
	for i := range papers {
		papers[i] = g.AddNode("Paper", map[string]graph.Value{
			"title": graph.Str("on-" + name(r, 4)),
			"topic": graph.Str(citeTopics[pickWeighted(r, citeTopicWeights)]),
			"venue": graph.Str(pick(r, citeVenues)),
			"year":  graph.Int(int64(1990 + i*33/numPapers)),
		})
	}
	// Citations: each paper cites ~5 earlier papers, preferring early
	// (already well-cited) ones.
	for i := 1; i < numPapers; i++ {
		refs := 3 + r.Intn(5)
		for c := 0; c < refs; c++ {
			j := zipfTarget(r, i)
			mustEdge(g, papers[i], papers[j], "cites")
			cited[j]++
		}
	}
	// numberOfCitations is an attribute derived from the structure, like
	// the aggregate counters real bibliographic KGs materialize.
	for i, p := range papers {
		g.SetAttr(p, "numberOfCitations", graph.Int(int64(cited[i])))
	}
	// Authorship: each paper has 1-4 authors drawn with skew.
	for _, p := range papers {
		n := 1 + r.Intn(4)
		for a := 0; a < n; a++ {
			mustEdge(g, authors[zipfTarget(r, numAuthors)], p, "authored")
		}
	}
	g.Freeze()
	return g
}
