package gen

import (
	"testing"

	"fairsqg/internal/graph"
	"fairsqg/internal/groups"
	"fairsqg/internal/match"
	"fairsqg/internal/measure"
	"fairsqg/internal/query"
)

func TestBuildDatasets(t *testing.T) {
	for _, name := range []string{DBP, LKI, Cite} {
		g, err := Build(name, Options{Nodes: 3000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !g.Frozen() {
			t.Fatalf("%s: not frozen", name)
		}
		s := graph.Summarize(g)
		if s.Nodes < 2500 || s.Nodes > 3500 {
			t.Errorf("%s: |V| = %d, want ≈3000", name, s.Nodes)
		}
		if s.Edges < s.Nodes {
			t.Errorf("%s: |E| = %d < |V| = %d", name, s.Edges, s.Nodes)
		}
		if s.AvgAttrs < 1.5 {
			t.Errorf("%s: avgAttrs = %v", name, s.AvgAttrs)
		}
	}
	if _, err := Build("nope", Options{}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestBuildDeterminism(t *testing.T) {
	a := BuildLKI(Options{Nodes: 1000, Seed: 5})
	b := BuildLKI(Options{Nodes: 1000, Seed: 5})
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different sizes")
	}
	for i := 0; i < a.NumNodes(); i += 97 {
		v := graph.NodeID(i)
		if a.Label(v) != b.Label(v) {
			t.Fatalf("node %d labels differ", i)
		}
		for k, av := range a.Attrs(v) {
			if !b.Attr(v, k).Equal(av) {
				t.Fatalf("node %d attr %s differs", i, k)
			}
		}
	}
	c := BuildLKI(Options{Nodes: 1000, Seed: 6})
	if c.NumEdges() == a.NumEdges() {
		t.Log("warning: different seeds gave identical edge counts (possible but unlikely)")
	}
}

func TestLKIGroupStructure(t *testing.T) {
	g := BuildLKI(Options{Nodes: 4000, Seed: 2})
	set := groups.ByAttribute(g, "Person", "gender")
	if len(set) != 2 {
		t.Fatalf("gender groups = %d", len(set))
	}
	var male, female int
	for _, gr := range set {
		switch gr.Name {
		case "gender=male":
			male = gr.Size()
		case "gender=female":
			female = gr.Size()
		}
	}
	if male <= female {
		t.Errorf("expected male-skewed population, got %d/%d", male, female)
	}
	if float64(female)/float64(male) < 0.45 {
		t.Errorf("skew too extreme: %d/%d", male, female)
	}
	// Directors exist and are a minority.
	dirs := 0
	for _, v := range g.NodesByLabel("Person") {
		if g.Attr(v, "title").Equal(graph.Str("Director")) {
			dirs++
		}
	}
	total := g.CountLabel("Person")
	if dirs == 0 || dirs > total/5 {
		t.Errorf("directors = %d of %d", dirs, total)
	}
}

func TestSchemas(t *testing.T) {
	for _, name := range []string{DBP, LKI, Cite} {
		s, err := SchemaFor(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Output == "" || len(s.EdgeTypes) == 0 || len(s.NumericAttrs) == 0 {
			t.Errorf("%s schema incomplete: %+v", name, s)
		}
	}
	if _, err := SchemaFor("x"); err == nil {
		t.Error("unknown schema accepted")
	}
}

func TestGenerateTemplate(t *testing.T) {
	g := BuildLKI(Options{Nodes: 2000, Seed: 3})
	s, err := SchemaFor(LKI)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []TemplateParams{
		{Size: 3, RangeVars: 2, EdgeVars: 1, Seed: 1},
		{Size: 4, RangeVars: 1, EdgeVars: 2, Seed: 2, Selective: true},
		{Size: 5, RangeVars: 2, EdgeVars: 5, Seed: 3},
	} {
		tpl, err := GenerateTemplate(s, p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if err := tpl.Validate(); err != nil {
			t.Fatalf("%+v: invalid template: %v", p, err)
		}
		if len(tpl.Edges) != p.Size {
			t.Errorf("size = %d, want %d", len(tpl.Edges), p.Size)
		}
		if tpl.NumRangeVars() != p.RangeVars || tpl.NumEdgeVars() != p.EdgeVars {
			t.Errorf("|X_L|=%d |X_E|=%d, want %d/%d",
				tpl.NumRangeVars(), tpl.NumEdgeVars(), p.RangeVars, p.EdgeVars)
		}
		if err := tpl.BindDomains(g, query.DomainOptions{MaxValues: 6}); err != nil {
			t.Fatalf("%+v: BindDomains: %v", p, err)
		}
	}
	// Determinism.
	a, _ := GenerateTemplate(s, TemplateParams{Size: 4, RangeVars: 2, EdgeVars: 2, Seed: 9})
	b, _ := GenerateTemplate(s, TemplateParams{Size: 4, RangeVars: 2, EdgeVars: 2, Seed: 9})
	if query.Format(a) != query.Format(b) {
		t.Error("template generation not deterministic")
	}
	// Errors.
	if _, err := GenerateTemplate(s, TemplateParams{Size: 0}); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := GenerateTemplate(s, TemplateParams{Size: 2, EdgeVars: 3}); err == nil {
		t.Error("|X_E| > size accepted")
	}
	if _, err := GenerateTemplate(s, TemplateParams{Size: 1, RangeVars: 50}); err == nil {
		t.Error("excessive |X_L| accepted")
	}
}

func TestGenerateFeasibleTemplate(t *testing.T) {
	g := BuildLKI(Options{Nodes: 2000, Seed: 4})
	s, _ := SchemaFor(LKI)
	m := match.New(g)
	set := groups.EqualOpportunity(groups.ByAttribute(g, "Person", "gender"), 5)
	probe := func(tpl *query.Template) bool {
		root := query.MustInstance(tpl, query.Root(tpl))
		return measure.Feasible(set, m.EvalOutput(root))
	}
	tpl, err := GenerateFeasibleTemplate(g, s, TemplateParams{Size: 3, RangeVars: 1, EdgeVars: 1, Seed: 1}, 6, 20, probe)
	if err != nil {
		t.Fatal(err)
	}
	if !probe(tpl) {
		t.Error("returned template fails its own probe")
	}
	// A probe that always fails exhausts tries.
	if _, err := GenerateFeasibleTemplate(g, s, TemplateParams{Size: 3, RangeVars: 1, EdgeVars: 1}, 6, 3,
		func(*query.Template) bool { return false }); err == nil {
		t.Error("impossible probe should fail")
	}
}

func TestCanonicalTemplates(t *testing.T) {
	lki := BuildLKI(Options{Nodes: 2000, Seed: 5})
	dbp := BuildDBP(Options{Nodes: 2000, Seed: 5})
	cite := BuildCite(Options{Nodes: 2000, Seed: 5})
	cases := []struct {
		tpl *query.Template
		g   *graph.Graph
	}{
		{TalentTemplate(), lki},
		{MovieTemplate(), dbp},
		{PaperTemplate(), cite},
	}
	for _, c := range cases {
		if err := c.tpl.Validate(); err != nil {
			t.Fatalf("%s: %v", c.tpl.Name, err)
		}
		if err := c.tpl.BindDomains(c.g, query.DomainOptions{MaxValues: 8}); err != nil {
			t.Fatalf("%s: BindDomains: %v", c.tpl.Name, err)
		}
		// The root instance must return something on the matching dataset.
		m := match.New(c.g)
		root := query.MustInstance(c.tpl, query.Root(c.tpl))
		if got := m.EvalOutput(root); len(got) == 0 {
			t.Errorf("%s: root instance has no matches", c.tpl.Name)
		}
	}
}

func TestCiteCitationCounts(t *testing.T) {
	g := BuildCite(Options{Nodes: 2000, Seed: 6})
	// numberOfCitations must equal the cites in-degree.
	cites := g.LookupLabel("cites")
	for _, p := range g.NodesByLabel("Paper") {
		inCites := 0
		for _, e := range g.In(p) {
			if e.Label == cites {
				inCites++
			}
		}
		if got := int(g.Attr(p, "numberOfCitations").Float()); got != inCites {
			t.Fatalf("paper %d: numberOfCitations=%d, in-degree=%d", p, got, inCites)
		}
	}
}

func TestDBPStructure(t *testing.T) {
	g := BuildDBP(Options{Nodes: 4000, Seed: 7})
	movies := g.NodesByLabel("Movie")
	if len(movies) == 0 {
		t.Fatal("no movies")
	}
	// Genre skew: Drama (weight 18) clearly outnumbers Western (weight 2).
	counts := map[string]int{}
	for _, m := range movies {
		counts[g.Attr(m, "genre").Text()]++
	}
	if counts["Drama"] <= counts["Western"] {
		t.Errorf("genre skew missing: Drama=%d Western=%d", counts["Drama"], counts["Western"])
	}
	// Ratings live in [2, 10] with one decimal.
	for _, m := range movies[:200] {
		r := g.Attr(m, "rating").Float()
		if r < 2 || r > 10 {
			t.Fatalf("rating %v out of range", r)
		}
	}
	// Every movie has a director edge.
	directed := g.LookupLabel("directed")
	for _, m := range movies[:200] {
		found := false
		for _, e := range g.In(m) {
			if e.Label == directed {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("movie without director")
		}
	}
}

func TestCiteYearsMonotone(t *testing.T) {
	g := BuildCite(Options{Nodes: 3000, Seed: 8})
	// Citations point backwards in time: every cites edge goes to a paper
	// with year <= the citing paper's year.
	cites := g.LookupLabel("cites")
	for _, p := range g.NodesByLabel("Paper") {
		py := g.Attr(p, "year").Float()
		for _, e := range g.Out(p) {
			if e.Label != cites {
				continue
			}
			if qy := g.Attr(e.To, "year").Float(); qy > py {
				t.Fatalf("paper(year=%v) cites future paper(year=%v)", py, qy)
			}
		}
	}
}
