// Package gen builds the seeded synthetic datasets and query templates the
// experiments run on. The paper evaluates on three real-life graphs (a
// DBpedia movie knowledge graph, a LinkedIn-like professional network and a
// Microsoft-Academic-like citation graph); those datasets are not
// redistributable, so this package generates graphs with the same schema
// shape — labels, attribute types, group structure and degree skew — at a
// configurable scale (see DESIGN.md, "Substitutions").
package gen

import (
	"fmt"
	"math/rand"

	"fairsqg/internal/graph"
)

// Dataset names accepted by Build.
const (
	DBP  = "dbp"
	LKI  = "lki"
	Cite = "cite"
)

// Options scales a generated dataset.
type Options struct {
	// Nodes is the approximate node budget (the generator may add a few
	// percent for mandatory entities). Zero selects the dataset default.
	Nodes int
	// Seed makes generation deterministic.
	Seed int64
}

// Build generates the named dataset and freezes it.
func Build(name string, opts Options) (*graph.Graph, error) {
	switch name {
	case DBP:
		return BuildDBP(opts), nil
	case LKI:
		return BuildLKI(opts), nil
	case Cite:
		return BuildCite(opts), nil
	default:
		return nil, fmt.Errorf("gen: unknown dataset %q (want dbp, lki or cite)", name)
	}
}

// DefaultNodes returns the default node budget per dataset; ratios follow
// the paper's Table II with sizes reduced to laptop scale.
func DefaultNodes(name string) int {
	switch name {
	case DBP:
		return 20000
	case LKI:
		return 26000
	case Cite:
		return 24000
	default:
		return 20000
	}
}

// rng wraps math/rand with the helpers the generators share.
type rng struct{ *rand.Rand }

func newRNG(seed int64) rng { return rng{rand.New(rand.NewSource(seed))} }

// pick returns a uniformly random element.
func pick[T any](r rng, xs []T) T { return xs[r.Intn(len(xs))] }

// pickWeighted returns index i with probability weights[i]/Σweights.
func pickWeighted(r rng, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// zipfTarget returns a preferential-attachment-style target in [0, n): the
// probability of index i decays with rank, producing the skewed in-degree
// distributions of real social and citation graphs.
func zipfTarget(r rng, n int) int {
	if n <= 1 {
		return 0
	}
	// Square the uniform draw: quadratic bias toward low indices.
	f := r.Float64()
	return int(f * f * float64(n))
}

// syllables for synthetic names: varied strings keep the tuple edit
// distance informative.
var syllables = []string{
	"al", "ber", "cor", "dan", "el", "fra", "gor", "hua", "iri", "jon",
	"kel", "lor", "mar", "nor", "oli", "pet", "qui", "ros", "sam", "tia",
	"ulf", "vic", "wen", "xia", "yor", "zoe",
}

// name builds a pseudo-random name of 2-4 syllables.
func name(r rng, parts int) string {
	if parts < 2 {
		parts = 2
	}
	s := ""
	for i := 0; i < parts; i++ {
		s += pick(r, syllables)
	}
	return s
}
