package gen

import (
	"fmt"

	"fairsqg/internal/graph"
	"fairsqg/internal/query"
)

// EdgeType is one relationship the template generator may instantiate.
type EdgeType struct {
	From, To, Label string
}

// Selector is a fixed literal candidate for the output node that keeps the
// output population selective (e.g. title = Director for talent search).
type Selector struct {
	Attr  string
	Op    graph.Op
	Value graph.Value
}

// Schema describes the shape of a dataset for template generation.
type Schema struct {
	Name string
	// Output is the label of the designated output node.
	Output string
	// EdgeTypes lists the relationships templates may use.
	EdgeTypes []EdgeType
	// NumericAttrs maps a label to the attributes usable as range
	// variables.
	NumericAttrs map[string][]string
	// OutputSelectors are optional fixed literals for the output node.
	OutputSelectors []Selector
}

// SchemaFor returns the generation schema of a dataset.
func SchemaFor(dataset string) (*Schema, error) {
	switch dataset {
	case DBP:
		return &Schema{
			Name:   DBP,
			Output: "Movie",
			EdgeTypes: []EdgeType{
				{From: "Director", To: "Movie", Label: "directed"},
				{From: "Actor", To: "Movie", Label: "actsIn"},
				{From: "Movie", To: "Studio", Label: "producedBy"},
				{From: "Director", To: "Actor", Label: "collab"},
			},
			NumericAttrs: map[string][]string{
				"Movie":    {"rating", "year", "awards"},
				"Director": {"awards", "yearsActive"},
				"Actor":    {"popularity"},
			},
			OutputSelectors: []Selector{
				{Attr: "country", Op: graph.OpEQ, Value: graph.Str("US")},
				{Attr: "genre", Op: graph.OpEQ, Value: graph.Str("Drama")},
			},
		}, nil
	case LKI:
		return &Schema{
			Name:   LKI,
			Output: "Person",
			EdgeTypes: []EdgeType{
				{From: "Person", To: "Person", Label: "recommend"},
				{From: "Person", To: "Person", Label: "coreview"},
				{From: "Person", To: "Org", Label: "worksAt"},
			},
			NumericAttrs: map[string][]string{
				"Person": {"yearsOfExp"},
				"Org":    {"employees"},
			},
			OutputSelectors: []Selector{
				{Attr: "title", Op: graph.OpEQ, Value: graph.Str("Director")},
				{Attr: "title", Op: graph.OpEQ, Value: graph.Str("Manager")},
			},
		}, nil
	case Cite:
		return &Schema{
			Name:   Cite,
			Output: "Paper",
			EdgeTypes: []EdgeType{
				{From: "Paper", To: "Paper", Label: "cites"},
				{From: "Author", To: "Paper", Label: "authored"},
			},
			NumericAttrs: map[string][]string{
				"Paper":  {"numberOfCitations", "year"},
				"Author": {"hIndex"},
			},
			OutputSelectors: []Selector{
				{Attr: "venue", Op: graph.OpEQ, Value: graph.Str("ICDE")},
			},
		}, nil
	default:
		return nil, fmt.Errorf("gen: no schema for dataset %q", dataset)
	}
}

// TemplateParams controls template generation: |Q(u_o)| (edges), |X_L|,
// |X_E| and the topology draw.
type TemplateParams struct {
	// Size is the number of query edges (the paper's |Q(u_o)|).
	Size int
	// RangeVars is |X_L|; EdgeVars is |X_E|. EdgeVars must be <= Size.
	RangeVars int
	EdgeVars  int
	// Selective adds one fixed selector literal on the output node.
	Selective bool
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateTemplate builds a tree-shaped template over the schema: it grows
// Size edges outward from the output node (one fresh node per edge),
// parameterizes EdgeVars of them, and attaches RangeVars parameterized
// literals on numeric attributes. Ladders are NOT bound; call
// Template.BindDomains against the target graph afterwards.
func GenerateTemplate(s *Schema, p TemplateParams) (*query.Template, error) {
	if p.Size < 1 {
		return nil, fmt.Errorf("gen: template size must be >= 1")
	}
	if p.EdgeVars > p.Size {
		return nil, fmt.Errorf("gen: |X_E|=%d exceeds template size %d", p.EdgeVars, p.Size)
	}
	r := newRNG(p.Seed + 0x7e)
	b := query.NewBuilder(fmt.Sprintf("%s-q%d-xl%d-xe%d-s%d", s.Name, p.Size, p.RangeVars, p.EdgeVars, p.Seed))
	b.Node("u_o", s.Output)
	if p.Selective && len(s.OutputSelectors) > 0 {
		sel := pick(r, s.OutputSelectors)
		b.Literal("u_o", sel.Attr, sel.Op, sel.Value)
	}
	type qnode struct {
		name  string
		label string
	}
	nodes := []qnode{{name: "u_o", label: s.Output}}
	type qedge struct {
		from, to, label string
	}
	var edges []qedge
	for len(edges) < p.Size {
		// Pick an existing node and an edge type incident to its label.
		base := pick(r, nodes)
		var options []EdgeType
		for _, et := range s.EdgeTypes {
			if et.From == base.label || et.To == base.label {
				options = append(options, et)
			}
		}
		if len(options) == 0 {
			continue
		}
		et := pick(r, options)
		fresh := qnode{name: fmt.Sprintf("u%d", len(nodes)), label: ""}
		var e qedge
		if et.From == base.label && (et.To != base.label || r.Intn(2) == 0) {
			fresh.label = et.To
			e = qedge{from: base.name, to: fresh.name, label: et.Label}
		} else {
			fresh.label = et.From
			e = qedge{from: fresh.name, to: base.name, label: et.Label}
		}
		b.Node(fresh.name, fresh.label)
		nodes = append(nodes, fresh)
		edges = append(edges, e)
	}
	// Choose which edges are parameterized: a random subset of size
	// EdgeVars, preferring leaf-side edges (added later) so the root stays
	// connected under relaxed instantiations.
	varEdge := make([]bool, len(edges))
	for n, tries := 0, 0; n < p.EdgeVars && tries < 100*p.Size; tries++ {
		i := len(edges) - 1 - zipfTarget(r, len(edges))
		if !varEdge[i] {
			varEdge[i] = true
			n++
		}
	}
	for i, e := range edges {
		if varEdge[i] {
			b.VarEdge(fmt.Sprintf("e%d", i+1), e.from, e.to, e.label)
		} else {
			b.Edge(e.from, e.to, e.label)
		}
	}
	// Attach range variables over distinct (node, attr) slots.
	type slot struct{ node, attr string }
	var slots []slot
	for _, n := range nodes {
		for _, a := range s.NumericAttrs[n.label] {
			slots = append(slots, slot{node: n.name, attr: a})
		}
	}
	if p.RangeVars > len(slots) {
		return nil, fmt.Errorf("gen: |X_L|=%d exceeds the %d numeric (node, attr) slots of this topology",
			p.RangeVars, len(slots))
	}
	r.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	for i := 0; i < p.RangeVars; i++ {
		op := graph.OpGE
		if r.Float64() < 0.2 {
			op = graph.OpLE
		}
		b.RangeVar(fmt.Sprintf("x%d", i+1), slots[i].node, slots[i].attr, op)
	}
	b.Output("u_o")
	return b.Build()
}

// GenerateFeasibleTemplate retries GenerateTemplate over successive seeds
// until the template's most relaxed instance is feasible for the given
// groups when answered over g (checked by the caller-provided probe), or
// maxTries is exhausted. It returns the bound template.
func GenerateFeasibleTemplate(g *graph.Graph, s *Schema, p TemplateParams, maxDomain, maxTries int,
	probe func(t *query.Template) bool) (*query.Template, error) {
	if maxTries <= 0 {
		maxTries = 20
	}
	var lastErr error
	for try := 0; try < maxTries; try++ {
		params := p
		params.Seed = p.Seed + int64(try)
		t, err := GenerateTemplate(s, params)
		if err != nil {
			lastErr = err
			continue
		}
		if err := t.BindDomains(g, query.DomainOptions{MaxValues: maxDomain}); err != nil {
			lastErr = err
			continue
		}
		if probe == nil || probe(t) {
			return t, nil
		}
		lastErr = fmt.Errorf("gen: template seed %d has no feasible instances", params.Seed)
	}
	return nil, fmt.Errorf("gen: no feasible template after %d tries: %w", maxTries, lastErr)
}

// TalentTemplate is the paper's running talent-search template (Fig. 1):
// directors recommended by experienced users, one of whom works at a large
// organization. Range variables parameterize the recommenders' years of
// experience and the organization size; edge variables control the two
// recommendation edges.
func TalentTemplate() *query.Template {
	return query.NewBuilder("talent").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").RangeVar("x1", "u1", "yearsOfExp", graph.OpGE).
		Node("u2", "Person").RangeVar("x2", "u2", "yearsOfExp", graph.OpGE).
		Node("u4", "Org").RangeVar("x3", "u4", "employees", graph.OpGE).
		VarEdge("e1", "u1", "u_o", "recommend").
		VarEdge("e2", "u2", "u_o", "recommend").
		Edge("u1", "u4", "worksAt").
		Output("u_o").
		MustBuild()
}

// MovieTemplate is the Fig. 12 case-study template: US movies with
// parameterized rating and director awards, and parameterized
// direction/casting edges.
func MovieTemplate() *query.Template {
	return query.NewBuilder("movie").
		Node("m", "Movie").
		Literal("m", "country", graph.OpEQ, graph.Str("US")).
		RangeVar("r", "m", "rating", graph.OpGE).
		Node("d", "Director").RangeVar("aw", "d", "awards", graph.OpGE).
		Node("a", "Actor").
		VarEdge("e1", "d", "m", "directed").
		VarEdge("e2", "a", "m", "actsIn").
		Output("m").
		MustBuild()
}

// PaperTemplate is the academic-search template: highly cited papers with a
// parameterized citation threshold, cited by another paper and written by
// an author with a parameterized h-index.
func PaperTemplate() *query.Template {
	return query.NewBuilder("paper").
		Node("p", "Paper").RangeVar("c", "p", "numberOfCitations", graph.OpGE).
		Node("q", "Paper").
		Node("a", "Author").RangeVar("h", "a", "hIndex", graph.OpGE).
		VarEdge("e1", "q", "p", "cites").
		Edge("a", "p", "authored").
		Output("p").
		MustBuild()
}
