package gen

import (
	"fmt"

	"fairsqg/internal/graph"
)

// DBP schema constants.
var (
	dbpGenres = []string{
		"Action", "Romance", "Horror", "Comedy", "Drama",
		"SciFi", "Documentary", "Thriller", "Animation", "Western",
	}
	dbpGenreWeights = []float64{14, 16, 10, 15, 18, 8, 5, 8, 4, 2}

	dbpCountries = []string{
		"US", "UK", "France", "India", "Japan",
		"Germany", "Korea", "Italy", "Brazil", "Canada",
	}
	dbpCountryWeights = []float64{30, 12, 10, 14, 8, 7, 7, 5, 4, 3}

	dbpStudioCities = []string{
		"LosAngeles", "London", "Paris", "Mumbai", "Tokyo",
		"Berlin", "Seoul", "Rome", "SaoPaulo", "Toronto",
	}
)

// BuildDBP generates the movie-knowledge-graph dataset: Movie, Director,
// Actor and Studio nodes with rating/year/awards attributes, connected by
// directed/actsIn/producedBy/collab edges. Genre and country populations
// are skewed so that genre groups have the unequal sizes the fairness
// constraints react to.
func BuildDBP(opts Options) *graph.Graph {
	budget := opts.Nodes
	if budget <= 0 {
		budget = DefaultNodes(DBP)
	}
	r := newRNG(opts.Seed + 0xd8b)
	g := graph.New()

	numMovies := budget * 5 / 10
	numActors := budget * 3 / 10
	numDirectors := budget * 15 / 100
	numStudios := budget - numMovies - numActors - numDirectors
	if numStudios < 5 {
		numStudios = 5
	}

	studios := make([]graph.NodeID, numStudios)
	for i := range studios {
		studios[i] = g.AddNode("Studio", map[string]graph.Value{
			"name": graph.Str("studio-" + name(r, 2) + fmt.Sprint(i%89)),
			"city": graph.Str(pick(r, dbpStudioCities)),
		})
	}
	directors := make([]graph.NodeID, numDirectors)
	for i := range directors {
		directors[i] = g.AddNode("Director", map[string]graph.Value{
			"name":        graph.Str(name(r, 3)),
			"awards":      graph.Int(int64(zipfTarget(r, 12))),
			"yearsActive": graph.Int(int64(r.Intn(45))),
		})
	}
	actors := make([]graph.NodeID, numActors)
	for i := range actors {
		actors[i] = g.AddNode("Actor", map[string]graph.Value{
			"name":       graph.Str(name(r, 3)),
			"country":    graph.Str(dbpCountries[pickWeighted(r, dbpCountryWeights)]),
			"popularity": graph.Int(int64(zipfTarget(r, 100))),
		})
	}
	movies := make([]graph.NodeID, numMovies)
	for i := range movies {
		// Ratings cluster around 6.0 with one decimal of precision.
		rating := 2.0 + 8.0*r.Float64()*r.Float64()
		rating = float64(int(rating*10)) / 10
		movies[i] = g.AddNode("Movie", map[string]graph.Value{
			"title":   graph.Str("the-" + name(r, 3)),
			"genre":   graph.Str(dbpGenres[pickWeighted(r, dbpGenreWeights)]),
			"country": graph.Str(dbpCountries[pickWeighted(r, dbpCountryWeights)]),
			"rating":  graph.Num(rating),
			"year":    graph.Int(int64(1950 + r.Intn(73))),
			"awards":  graph.Int(int64(zipfTarget(r, 8))),
		})
	}

	for _, mv := range movies {
		mustEdge(g, directors[zipfTarget(r, numDirectors)], mv, "directed")
		mustEdge(g, mv, studios[zipfTarget(r, numStudios)], "producedBy")
		cast := 2 + r.Intn(4)
		for c := 0; c < cast; c++ {
			mustEdge(g, actors[zipfTarget(r, numActors)], mv, "actsIn")
		}
	}
	// Director-actor collaborations.
	numCollab := numDirectors * 3
	for i := 0; i < numCollab; i++ {
		mustEdge(g, directors[r.Intn(numDirectors)], actors[zipfTarget(r, numActors)], "collab")
	}
	g.Freeze()
	return g
}
