package query

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"fairsqg/internal/graph"
)

// Parse reads a template from its textual form. The grammar is line-based:
//
//	template NAME
//	node NAME LABEL [ATTR OP VALUE {, ATTR OP VALUE}]
//	edge FROM TO LABEL [?VAR]
//	ladder $VAR VALUE...
//	output NAME
//
// A VALUE of the form $name introduces a range variable; a quoted string or
// bare token is a fixed constant (numbers parse as numbers). An edge
// followed by ?name carries an edge variable. A ladder line pins a range
// variable's value ladder explicitly (values in relaxed→refined order),
// making the template self-contained; without one, call
// Template.BindDomains after parsing. '#' starts a comment.
//
// Example:
//
//	template talent
//	node u_o Person title = "Director"
//	node u1 Person yearsOfExp >= $x1
//	node u4 Org employees >= $x3
//	edge u1 u_o recommend ?e1
//	edge u1 u4 worksAt
//	output u_o
func Parse(r io.Reader) (*Template, error) {
	sc := bufio.NewScanner(r)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		tokens, err := tokenize(line)
		if err != nil {
			return nil, fmt.Errorf("query: line %d: %w", lineNo, err)
		}
		if len(tokens) == 0 {
			continue
		}
		switch tokens[0].text {
		case "template":
			if len(tokens) != 2 {
				return nil, fmt.Errorf("query: line %d: usage: template NAME", lineNo)
			}
			if b != nil {
				return nil, fmt.Errorf("query: line %d: duplicate template declaration", lineNo)
			}
			b = NewBuilder(tokens[1].text)
		case "node":
			if b == nil {
				return nil, fmt.Errorf("query: line %d: node before template declaration", lineNo)
			}
			if len(tokens) < 3 {
				return nil, fmt.Errorf("query: line %d: usage: node NAME LABEL [predicates]", lineNo)
			}
			name, label := tokens[1].text, tokens[2].text
			b.Node(name, label)
			if err := parsePredicates(b, name, tokens[3:], lineNo); err != nil {
				return nil, err
			}
		case "edge":
			if b == nil {
				return nil, fmt.Errorf("query: line %d: edge before template declaration", lineNo)
			}
			switch len(tokens) {
			case 4:
				b.Edge(tokens[1].text, tokens[2].text, tokens[3].text)
			case 5:
				if !strings.HasPrefix(tokens[4].text, "?") || len(tokens[4].text) < 2 || tokens[4].quoted {
					return nil, fmt.Errorf("query: line %d: edge variable must look like ?name, got %q", lineNo, tokens[4].text)
				}
				b.VarEdge(tokens[4].text[1:], tokens[1].text, tokens[2].text, tokens[3].text)
			default:
				return nil, fmt.Errorf("query: line %d: usage: edge FROM TO LABEL [?VAR]", lineNo)
			}
		case "ladder":
			if b == nil {
				return nil, fmt.Errorf("query: line %d: ladder before template declaration", lineNo)
			}
			if len(tokens) < 3 {
				return nil, fmt.Errorf("query: line %d: usage: ladder $VAR VALUE...", lineNo)
			}
			name := tokens[1].text
			if tokens[1].quoted || !strings.HasPrefix(name, "$") || len(name) < 2 {
				return nil, fmt.Errorf("query: line %d: ladder variable must look like $name, got %q", lineNo, name)
			}
			vals := make([]graph.Value, 0, len(tokens)-2)
			for _, tk := range tokens[2:] {
				if tk.text == "," {
					continue
				}
				if tk.quoted {
					vals = append(vals, graph.Str(tk.text))
				} else {
					vals = append(vals, graph.ParseValue(tk.text))
				}
			}
			b.SetLadder(name[1:], vals...)
		case "output":
			if b == nil {
				return nil, fmt.Errorf("query: line %d: output before template declaration", lineNo)
			}
			if len(tokens) != 2 {
				return nil, fmt.Errorf("query: line %d: usage: output NAME", lineNo)
			}
			b.Output(tokens[1].text)
		default:
			return nil, fmt.Errorf("query: line %d: unknown directive %q", lineNo, tokens[0].text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("query: no template declaration found")
	}
	return b.Build()
}

// ParseString is Parse over a string.
func ParseString(s string) (*Template, error) { return Parse(strings.NewReader(s)) }

// parsePredicates consumes "ATTR OP VALUE {, ATTR OP VALUE}" token runs.
func parsePredicates(b *Builder, node string, tokens []tok, lineNo int) error {
	for len(tokens) > 0 {
		if len(tokens) < 3 {
			return fmt.Errorf("query: line %d: incomplete predicate", lineNo)
		}
		attr, opTok, val := tokens[0].text, tokens[1].text, tokens[2]
		op, err := graph.ParseOp(opTok)
		if err != nil {
			return fmt.Errorf("query: line %d: %w", lineNo, err)
		}
		switch {
		case !val.quoted && strings.HasPrefix(val.text, "$"):
			if len(val.text) < 2 {
				return fmt.Errorf("query: line %d: empty variable name", lineNo)
			}
			b.RangeVar(val.text[1:], node, attr, op)
		case val.quoted:
			b.Literal(node, attr, op, graph.Str(val.text))
		default:
			b.Literal(node, attr, op, graph.ParseValue(val.text))
		}
		tokens = tokens[3:]
		if len(tokens) > 0 {
			if tokens[0].text != "," {
				return fmt.Errorf("query: line %d: expected ',' between predicates, got %q", lineNo, tokens[0].text)
			}
			tokens = tokens[1:]
		}
	}
	return nil
}

// tok is one lexical token; quoted marks double-quoted string literals so
// their values never reparse as numbers or booleans.
type tok struct {
	text   string
	quoted bool
}

// tokenize splits a line on whitespace, honoring double-quoted strings and
// splitting off commas as their own tokens.
func tokenize(line string) ([]tok, error) {
	var tokens []tok
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == ',':
			tokens = append(tokens, tok{text: ","})
			i++
		case c == '"':
			j := i + 1
			for j < len(line) && line[j] != '"' {
				j++
			}
			if j == len(line) {
				return nil, fmt.Errorf("unterminated string literal")
			}
			tokens = append(tokens, tok{text: line[i+1 : j], quoted: true})
			i = j + 1
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != ',' {
				j++
			}
			tokens = append(tokens, tok{text: line[i:j]})
			i = j
		}
	}
	return tokens, nil
}

// Format renders a template back into the Parse grammar, including ladder
// lines for range variables whose ladders are bound.
func Format(t *Template) string {
	var b strings.Builder
	fmt.Fprintf(&b, "template %s\n", t.Name)
	for ni := range t.Nodes {
		n := &t.Nodes[ni]
		fmt.Fprintf(&b, "node %s %s", n.Name, n.Label)
		for li, l := range n.Literals {
			if li > 0 {
				b.WriteString(" ,")
			}
			if l.Parameterized() {
				fmt.Fprintf(&b, " %s %s $%s", l.Attr, l.Op, t.Vars[l.Var].Name)
			} else {
				fmt.Fprintf(&b, " %s %s %s", l.Attr, l.Op, quoteIfNeeded(l.Const))
			}
		}
		b.WriteByte('\n')
	}
	for _, e := range t.Edges {
		fmt.Fprintf(&b, "edge %s %s %s", t.Nodes[e.From].Name, t.Nodes[e.To].Name, e.Label)
		if e.Parameterized() {
			fmt.Fprintf(&b, " ?%s", t.Vars[e.Var].Name)
		}
		b.WriteByte('\n')
	}
	for vi := range t.Vars {
		v := &t.Vars[vi]
		if v.Kind != RangeVar || len(v.Ladder) == 0 {
			continue
		}
		fmt.Fprintf(&b, "ladder $%s", v.Name)
		for _, val := range v.Ladder {
			fmt.Fprintf(&b, " %s", quoteIfNeeded(val))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "output %s\n", t.Nodes[t.Output].Name)
	return b.String()
}

func quoteIfNeeded(v graph.Value) string {
	s := v.String()
	if v.Kind() == graph.KindString && (strings.ContainsAny(s, " \t,") || s == "" ||
		strings.HasPrefix(s, "$") || strings.HasPrefix(s, "?")) {
		return `"` + s + `"`
	}
	if v.Kind() == graph.KindString {
		// Quote strings that would re-parse as numbers or booleans.
		if p := graph.ParseValue(s); p.Kind() != graph.KindString {
			return `"` + s + `"`
		}
	}
	return s
}
