package query

import (
	"strings"
	"testing"

	"fairsqg/internal/graph"
)

// talentTemplate builds the paper's Fig. 1 template with explicit ladders.
func talentTemplate(t *testing.T) *Template {
	t.Helper()
	tpl, err := NewBuilder("talent").
		Node("u_o", "Person").Literal("u_o", "title", graph.OpEQ, graph.Str("Director")).
		Node("u1", "Person").RangeVar("x1", "u1", "yearsOfExp", graph.OpGE).
		Node("u4", "Org").RangeVar("x3", "u4", "employees", graph.OpGE).
		VarEdge("e1", "u1", "u_o", "recommend").
		Edge("u1", "u4", "worksAt").
		Output("u_o").
		SetLadder("x1", graph.Int(5), graph.Int(10), graph.Int(15)).
		SetLadder("x3", graph.Int(100), graph.Int(500), graph.Int(1000)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

func TestBuilderAndValidate(t *testing.T) {
	tpl := talentTemplate(t)
	if tpl.NumRangeVars() != 2 || tpl.NumEdgeVars() != 1 {
		t.Errorf("|X_L|=%d |X_E|=%d", tpl.NumRangeVars(), tpl.NumEdgeVars())
	}
	if tpl.Node("u1") != 1 || tpl.Node("missing") != -1 {
		t.Error("Node lookup wrong")
	}
	if tpl.Var("x3") < 0 || tpl.Var("zz") != -1 {
		t.Error("Var lookup wrong")
	}
	if tpl.Diameter() != 2 {
		t.Errorf("Diameter = %d, want 2", tpl.Diameter())
	}
	// (3+1)*(3+1)*2 = 32 instantiations.
	if got := tpl.InstanceSpaceSize(); got != 32 {
		t.Errorf("InstanceSpaceSize = %d, want 32", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Template, error)
	}{
		{"duplicate node", func() (*Template, error) {
			return NewBuilder("t").Node("a", "A").Node("a", "A").Output("a").Build()
		}},
		{"unknown literal node", func() (*Template, error) {
			return NewBuilder("t").Node("a", "A").Literal("b", "x", graph.OpEQ, graph.Int(1)).Output("a").Build()
		}},
		{"unknown edge endpoint", func() (*Template, error) {
			return NewBuilder("t").Node("a", "A").Edge("a", "b", "e").Output("a").Build()
		}},
		{"duplicate variable", func() (*Template, error) {
			return NewBuilder("t").Node("a", "A").
				RangeVar("x", "a", "p", graph.OpGE).RangeVar("x", "a", "q", graph.OpGE).Output("a").Build()
		}},
		{"no output", func() (*Template, error) {
			return NewBuilder("t").Node("a", "A").Build()
		}},
		{"unknown output", func() (*Template, error) {
			return NewBuilder("t").Node("a", "A").Output("b").Build()
		}},
		{"disconnected", func() (*Template, error) {
			return NewBuilder("t").Node("a", "A").Node("b", "B").Output("a").Build()
		}},
		{"unknown ladder var", func() (*Template, error) {
			return NewBuilder("t").Node("a", "A").SetLadder("x", graph.Int(1)).Output("a").Build()
		}},
		{"ladder on edge var", func() (*Template, error) {
			return NewBuilder("t").Node("a", "A").Node("b", "B").
				VarEdge("e", "a", "b", "r").SetLadder("e", graph.Int(1)).Output("a").Build()
		}},
	}
	for _, c := range cases {
		if _, err := c.build(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestBindDomains(t *testing.T) {
	g := graph.New()
	for _, years := range []int64{3, 12, 7, 3, 20} {
		g.AddNode("Person", map[string]graph.Value{"yearsOfExp": graph.Int(years)})
	}
	g.AddNode("Org", map[string]graph.Value{"employees": graph.Int(50)})
	g.AddNode("Org", map[string]graph.Value{"employees": graph.Int(900)})
	// Connect with at least one edge of each label so templates validate.
	_ = g.AddEdge(0, 1, "recommend")
	_ = g.AddEdge(0, 5, "worksAt")
	g.Freeze()

	tpl, err := NewBuilder("t").
		Node("u_o", "Person").
		Node("u1", "Person").RangeVar("up", "u1", "yearsOfExp", graph.OpGE).
		Node("o", "Org").RangeVar("down", "o", "employees", graph.OpLE).
		Edge("u1", "u_o", "recommend").
		Edge("u1", "o", "worksAt").
		Output("u_o").Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, DomainOptions{}); err != nil {
		t.Fatal(err)
	}
	up := tpl.Vars[tpl.Var("up")]
	wantUp := []int64{3, 7, 12, 20}
	if len(up.Ladder) != len(wantUp) {
		t.Fatalf("GE ladder = %v", up.Ladder)
	}
	for i, w := range wantUp {
		if !up.Ladder[i].Equal(graph.Int(w)) {
			t.Errorf("GE ladder[%d] = %v, want %d (ascending, deduped)", i, up.Ladder[i], w)
		}
	}
	down := tpl.Vars[tpl.Var("down")]
	// LE ladders are descending: most relaxed (largest) first.
	if !down.Ladder[0].Equal(graph.Int(900)) || !down.Ladder[1].Equal(graph.Int(50)) {
		t.Errorf("LE ladder = %v", down.Ladder)
	}
}

func TestBindDomainsEmptyDomain(t *testing.T) {
	g := graph.New()
	g.AddNode("Person", nil)
	g.AddNode("Person", nil)
	_ = g.AddEdge(0, 1, "recommend")
	g.Freeze()
	tpl, err := NewBuilder("t").
		Node("a", "Person").Node("b", "Person").
		RangeVar("x", "b", "salary", graph.OpGE).
		Edge("b", "a", "recommend").Output("a").Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, DomainOptions{}); err == nil {
		t.Error("expected error for empty active domain")
	}
}

func TestBindDomainsSubsample(t *testing.T) {
	g := graph.New()
	for i := 0; i < 100; i++ {
		g.AddNode("Person", map[string]graph.Value{"yearsOfExp": graph.Int(int64(i))})
	}
	_ = g.AddEdge(0, 1, "recommend")
	g.Freeze()
	tpl, err := NewBuilder("t").
		Node("a", "Person").Node("b", "Person").
		RangeVar("x", "b", "yearsOfExp", graph.OpGE).
		Edge("b", "a", "recommend").Output("a").Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.BindDomains(g, DomainOptions{MaxValues: 10}); err != nil {
		t.Fatal(err)
	}
	lad := tpl.Vars[0].Ladder
	if len(lad) != 10 {
		t.Fatalf("subsampled ladder has %d values", len(lad))
	}
	if !lad[0].Equal(graph.Int(0)) || !lad[9].Equal(graph.Int(99)) {
		t.Errorf("subsample must keep extremes: %v", lad)
	}
	for i := 1; i < len(lad); i++ {
		if lad[i].Compare(lad[i-1]) <= 0 {
			t.Errorf("subsampled ladder not strictly ascending: %v", lad)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
# talent search template
template talent
node u_o Person title = "Director"
node u1 Person yearsOfExp >= $x1
node u4 Org employees >= $x3 , industry = Software
edge u1 u_o recommend ?e1
edge u1 u4 worksAt
output u_o
`
	tpl, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Name != "talent" || len(tpl.Nodes) != 3 || len(tpl.Edges) != 2 {
		t.Fatalf("parsed template = %+v", tpl)
	}
	if tpl.NumRangeVars() != 2 || tpl.NumEdgeVars() != 1 {
		t.Errorf("|X_L|=%d |X_E|=%d", tpl.NumRangeVars(), tpl.NumEdgeVars())
	}
	// The fixed literal on u4 must have survived with a string constant.
	u4 := tpl.Nodes[tpl.Node("u4")]
	found := false
	for _, l := range u4.Literals {
		if !l.Parameterized() && l.Attr == "industry" && l.Const.Equal(graph.Str("Software")) {
			found = true
		}
	}
	if !found {
		t.Error("fixed literal industry = Software missing")
	}
	// Round-trip through Format.
	tpl2, err := ParseString(Format(tpl))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, Format(tpl))
	}
	if Format(tpl2) != Format(tpl) {
		t.Errorf("Format not stable:\n%s\nvs\n%s", Format(tpl), Format(tpl2))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"node a A",                             // before template
		"template t\ntemplate t2",              // duplicate
		"template t\nnode a",                   // short node
		"template t\nnode a A x >",             // incomplete predicate
		"template t\nnode a A x ! 3",           // bad op
		"template t\nnode a A x = $",           // empty var
		"template t\nnode a A x = 1 y = 2",     // missing comma
		"template t\nedge a b",                 // short edge
		"template t\nnode a A\noutput",         // short output
		"template t\nnode a A\nwhat a",         // unknown directive
		"template t\nnode a A \"unterminated",  // bad string
		"template t\nnode a A\nedge a a e ?",   // empty edge var
		"template t\nnode a A\nedge a a e x y", // long edge
		"",                                     // no template
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestQuoteIfNeeded(t *testing.T) {
	// Strings that would reparse as numbers must be quoted by Format.
	tpl, err := NewBuilder("t").
		Node("a", "A").Literal("a", "code", graph.OpEQ, graph.Str("123")).
		Output("a").Build()
	if err != nil {
		t.Fatal(err)
	}
	out := Format(tpl)
	if !strings.Contains(out, `"123"`) {
		t.Errorf("numeric-looking string not quoted:\n%s", out)
	}
	tpl2, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	l := tpl2.Nodes[0].Literals[0]
	if l.Const.Kind() != graph.KindString {
		t.Errorf("round-tripped constant kind = %v", l.Const.Kind())
	}
}

func TestAlwaysActive(t *testing.T) {
	tpl := talentTemplate(t) // u1->u_o is an edge variable, u1->u4 fixed
	got := tpl.AlwaysActive()
	// Only the output survives: u1 and u4 hang off the parameterized edge.
	if len(got) != 1 || got[0] != tpl.Output {
		t.Fatalf("AlwaysActive = %v", got)
	}
	// With every edge fixed, everything is always active.
	tpl2, err := NewBuilder("fixed").
		Node("a", "A").Node("b", "B").Node("c", "C").
		Edge("a", "b", "e").Edge("b", "c", "f").
		Output("a").Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := tpl2.AlwaysActive(); len(got) != 3 {
		t.Fatalf("AlwaysActive = %v", got)
	}
}
