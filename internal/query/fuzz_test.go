package query

import (
	"os"
	"regexp"
	"testing"
)

// fuzzSeedTemplates are well-formed and near-well-formed DSL inputs drawn
// from the documented grammar and the runnable examples.
var fuzzSeedTemplates = []string{
	`template talent
node u_o Person title = "Director"
node u1 Person yearsOfExp >= $x1
node u4 Org employees >= $x3
edge u1 u_o recommend ?e1
edge u1 u4 worksAt
output u_o
`,
	`template movie
node m Movie rating >= $r , year >= $y
node d Person role = "director"
edge d m directed
ladder $r 5 7 9
ladder $y 1990 2000 2010
output m
`,
	"template t\nnode a A\noutput a\n",
	"template t\nnode a A x = 1 , y = 2\nnode b B\nedge a b r ?e\nladder $q 1 2\noutput a\n",
	"# comment only\n",
	"template t\nnode a A x >= $v\nladder $v \"one\" \"two\"\noutput a\n",
	"template x\nnode a A\nedge a a self\noutput a",
	"template q\nnode a A attr = \"unterminated\noutput a\n",
	"ladder $x 1 2 3\n",
	"output nowhere\n",
	"template t\nnode a A x >= $x , x <= $x\noutput a\n",
	"template t\nnode a A\nedge a b r\noutput a\n",
	"template \x00\nnode \xff A\noutput \xff\n",
}

// seedFromRepoFiles adds hostile non-DSL corpus lines: the recorded
// experiment transcript and the Go sources of the examples (both full files
// and template-looking fragments).
func seedFromRepoFiles(f *testing.F) {
	paths := []string{
		"../../experiments_default.txt",
		"../../examples/quickstart/main.go",
		"../../examples/workloadgen/main.go",
		"../../examples/talentsearch/main.go",
		"../../examples/moviesearch/main.go",
	}
	tplBlock := regexp.MustCompile("(?s)template .*?output [^\\n`\"]*")
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			continue // repo layout changed; the literal seeds still cover the grammar
		}
		s := string(data)
		if len(s) > 1<<14 {
			s = s[:1<<14]
		}
		f.Add(s)
		for _, m := range tplBlock.FindAllString(s, 4) {
			f.Add(m)
		}
	}
}

// FuzzParse asserts the template DSL parser is total: any input either
// yields a template or an error — it must never panic — and accepted
// templates round-trip through Format/Parse.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeedTemplates {
		f.Add(s)
	}
	seedFromRepoFiles(f)
	f.Fuzz(func(t *testing.T, src string) {
		tpl, err := ParseString(src)
		if err != nil {
			return
		}
		if tpl == nil {
			t.Fatalf("ParseString returned nil template and nil error for %q", src)
		}
		// Accepted templates must re-parse from their canonical rendering.
		out := Format(tpl)
		tpl2, err := ParseString(out)
		if err != nil {
			t.Fatalf("Format output does not re-parse: %v\ninput: %q\nformatted: %q", err, src, out)
		}
		if got := Format(tpl2); got != out {
			t.Fatalf("Format not idempotent:\nfirst:  %q\nsecond: %q", out, got)
		}
	})
}
