package query

import "fairsqg/internal/graph"

// RefineSteps returns the instantiations reachable from in by refining
// exactly one variable to its next value in the corresponding ladder: the
// children of in in the instance lattice (Section IV, "Instance Lattice").
// For chain-ordered range variables (<, <=, >=, >) the wildcard steps to
// ladder level 0 and level l to l+1. For equality variables the wildcard
// steps to every ladder value (each a one-step refinement) and a bound
// value has no further refinement. Edge variables step from absent (0) to
// present (1).
func RefineSteps(t *Template, in Instantiation) []Instantiation {
	var out []Instantiation
	for vi := range t.Vars {
		v := &t.Vars[vi]
		level := in[vi]
		switch v.Kind {
		case EdgeVar:
			if level == 0 || level == Wildcard {
				out = append(out, withBinding(in, vi, 1))
			}
		case RangeVar:
			if v.Op == graph.OpEQ {
				if level == Wildcard {
					for l := range v.Ladder {
						out = append(out, withBinding(in, vi, l))
					}
				}
				continue
			}
			switch {
			case level == Wildcard:
				if len(v.Ladder) > 0 {
					out = append(out, withBinding(in, vi, 0))
				}
			case level+1 < len(v.Ladder):
				out = append(out, withBinding(in, vi, level+1))
			}
		}
	}
	return out
}

// RelaxSteps returns the instantiations reachable from in by relaxing
// exactly one variable by one step: the parents of in in the instance
// lattice. It is the inverse of RefineSteps and drives the backward
// (SpawnB) exploration of BiQGen.
func RelaxSteps(t *Template, in Instantiation) []Instantiation {
	var out []Instantiation
	for vi := range t.Vars {
		v := &t.Vars[vi]
		level := in[vi]
		switch v.Kind {
		case EdgeVar:
			if level == 1 {
				out = append(out, withBinding(in, vi, 0))
			}
		case RangeVar:
			if v.Op == graph.OpEQ {
				if level != Wildcard {
					out = append(out, withBinding(in, vi, Wildcard))
				}
				continue
			}
			switch {
			case level == 0:
				out = append(out, withBinding(in, vi, Wildcard))
			case level > 0:
				out = append(out, withBinding(in, vi, level-1))
			}
		}
	}
	return out
}

func withBinding(in Instantiation, vi, level int) Instantiation {
	out := in.Clone()
	out[vi] = level
	return out
}

// RefineStepsRestricted is RefineSteps with per-variable ladder caps: for
// range variable vi only levels < maxLevel[vi] are spawned. It implements
// the Spawn template-refinement optimization, which restricts the values a
// variable can still take to those realized in the d-hop neighborhood of
// the current match set. A cap of -1 means "no values remain" (only the
// wildcard step, if any, is suppressed too); a missing entry means no cap.
// fixedEdges[vi] == true freezes edge variable vi at absent (its label does
// not occur around the matches).
func RefineStepsRestricted(t *Template, in Instantiation, maxLevel map[int]int, fixedEdges map[int]bool) []Instantiation {
	var out []Instantiation
	for vi := range t.Vars {
		v := &t.Vars[vi]
		level := in[vi]
		switch v.Kind {
		case EdgeVar:
			if fixedEdges != nil && fixedEdges[vi] {
				continue
			}
			if level == 0 || level == Wildcard {
				out = append(out, withBinding(in, vi, 1))
			}
		case RangeVar:
			cap, capped := -2, false
			if maxLevel != nil {
				if c, ok := maxLevel[vi]; ok {
					cap, capped = c, true
				}
			}
			if v.Op == graph.OpEQ {
				if level == Wildcard {
					for l := range v.Ladder {
						if capped && l > cap {
							continue
						}
						out = append(out, withBinding(in, vi, l))
					}
				}
				continue
			}
			next := -2
			switch {
			case level == Wildcard:
				if len(v.Ladder) > 0 {
					next = 0
				}
			case level+1 < len(v.Ladder):
				next = level + 1
			}
			if next >= 0 && (!capped || next <= cap) {
				out = append(out, withBinding(in, vi, next))
			}
		}
	}
	return out
}

// ChainLength returns, for chain-ordered variables, the number of
// refinement steps from the root to the most refined binding; used by cost
// models and tests.
func ChainLength(v *Variable) int {
	switch v.Kind {
	case EdgeVar:
		return 1
	default:
		if v.Op == graph.OpEQ {
			return 1
		}
		return len(v.Ladder)
	}
}
