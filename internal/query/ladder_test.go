package query

import (
	"strings"
	"testing"

	"fairsqg/internal/graph"
)

func TestParseLadderDirective(t *testing.T) {
	tpl, err := ParseString(`
template t
node a Person yearsOfExp >= $x
node b Person title = "Boss"
edge a b recommend
ladder $x 5 10 15
output b
`)
	if err != nil {
		t.Fatal(err)
	}
	x := tpl.Vars[tpl.Var("x")]
	if len(x.Ladder) != 3 || !x.Ladder[1].Equal(graph.Int(10)) {
		t.Fatalf("ladder = %v", x.Ladder)
	}
	// Quoted ladder values stay strings.
	tpl2, err := ParseString(`
template t
node a Person code = $c
ladder $c "1" "2"
output a
`)
	if err != nil {
		t.Fatal(err)
	}
	c := tpl2.Vars[tpl2.Var("c")]
	if c.Ladder[0].Kind() != graph.KindString {
		t.Errorf("quoted ladder value kind = %v", c.Ladder[0].Kind())
	}
}

func TestParseLadderErrors(t *testing.T) {
	cases := []string{
		"ladder $x 1",                                  // before template
		"template t\nnode a A\nladder $x",              // no values
		"template t\nnode a A\nladder x 1 2",           // missing $
		"template t\nnode a A\nladder $ 1",             // empty name
		"template t\nnode a A\nladder $zz 1\noutput a", // unknown variable
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestFormatEmitsLadders(t *testing.T) {
	tpl := talentTemplate(t) // has explicit ladders
	out := Format(tpl)
	if !strings.Contains(out, "ladder $x1 5 10 15") {
		t.Fatalf("Format missing ladder:\n%s", out)
	}
	// Round trip preserves the ladders without BindDomains.
	tpl2, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range tpl.Vars {
		if tpl.Vars[vi].Kind != RangeVar {
			continue
		}
		a, b := tpl.Vars[vi].Ladder, tpl2.Vars[vi].Ladder
		if len(a) != len(b) {
			t.Fatalf("ladder length drifted for %s", tpl.Vars[vi].Name)
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("ladder value drifted: %v vs %v", a[i], b[i])
			}
		}
	}
	if Format(tpl2) != out {
		t.Error("Format not stable with ladders")
	}
}
