package query

import (
	"fairsqg/internal/graph"

	"sync/atomic"
)

// CompiledLiteral is a BoundLiteral resolved against one graph's attribute
// dictionary: the attribute name is interned to an AttrID once, so Matches
// is a direct column read instead of a string-keyed map lookup per node.
type CompiledLiteral struct {
	// Attr is the attribute name (kept for cache keys and display).
	Attr string
	// ID is the graph's interned attribute, or graph.InvalidAttr when the
	// attribute never occurs in G (every node then reads Null).
	ID graph.AttrID
	// Op and Value are the comparison as in BoundLiteral.
	Op    graph.Op
	Value graph.Value
}

// Matches reports whether graph node v satisfies the literal. g must be
// the graph the literal was compiled against.
func (c CompiledLiteral) Matches(g *graph.Graph, v graph.NodeID) bool {
	return c.Op.Apply(g.AttrValue(v, c.ID), c.Value)
}

// CompileLiterals resolves a bound-literal list against g's dictionary.
func CompileLiterals(g *graph.Graph, lits []BoundLiteral) []CompiledLiteral {
	out := make([]CompiledLiteral, len(lits))
	for i, l := range lits {
		out[i] = CompiledLiteral{Attr: l.Attr, ID: g.AttrIDOf(l.Attr), Op: l.Op, Value: l.Value}
	}
	return out
}

// compiledSet caches one instance's literals compiled against one graph.
type compiledSet struct {
	g      *graph.Graph
	byNode [][]CompiledLiteral // indexed by template node
}

// CompiledLiterals returns the bound literals of template node ni resolved
// against g's attribute dictionary. The compilation covers every template
// node and is performed once per (instance, graph) — repeat evaluations,
// including concurrent ones, share the cached form. Evaluating the same
// instance against a different graph recompiles (last graph wins the
// cache slot; correctness never depends on a hit).
func (q *Instance) CompiledLiterals(g *graph.Graph, ni int) []CompiledLiteral {
	if cs := q.compiled.Load(); cs != nil && cs.g == g {
		return cs.byNode[ni]
	}
	cs := &compiledSet{g: g, byNode: make([][]CompiledLiteral, len(q.T.Nodes))}
	for n := range q.T.Nodes {
		cs.byNode[n] = CompileLiterals(g, q.BoundLiterals(n))
	}
	q.compiled.Store(cs)
	return cs.byNode[ni]
}

// compiledPtr is the cache slot type embedded in Instance.
type compiledPtr = atomic.Pointer[compiledSet]
