package query

import (
	"fmt"

	"fairsqg/internal/graph"
)

// Builder assembles templates programmatically. Errors are accumulated and
// reported by Build, so call sites can chain without per-call checks.
type Builder struct {
	t    Template
	errs []error
}

// NewBuilder starts a template with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{t: Template{Name: name, Output: -1}}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Node adds a query node with a label; returns the builder for chaining.
func (b *Builder) Node(name, label string) *Builder {
	if b.t.Node(name) >= 0 {
		b.errf("query: duplicate node %q", name)
		return b
	}
	b.t.Nodes = append(b.t.Nodes, TNode{Name: name, Label: label})
	return b
}

// Literal adds a fixed predicate "node.attr op value".
func (b *Builder) Literal(node, attr string, op graph.Op, value graph.Value) *Builder {
	ni := b.t.Node(node)
	if ni < 0 {
		b.errf("query: Literal: unknown node %q", node)
		return b
	}
	b.t.Nodes[ni].Literals = append(b.t.Nodes[ni].Literals,
		Literal{Attr: attr, Op: op, Var: -1, Const: value})
	return b
}

// RangeVar adds a parameterized predicate "node.attr op $varName" backed by
// a fresh range variable. The value ladder is installed later by
// Template.BindDomains (or set explicitly with SetLadder).
func (b *Builder) RangeVar(varName, node, attr string, op graph.Op) *Builder {
	ni := b.t.Node(node)
	if ni < 0 {
		b.errf("query: RangeVar: unknown node %q", node)
		return b
	}
	if b.t.Var(varName) >= 0 {
		b.errf("query: duplicate variable %q", varName)
		return b
	}
	vi := VarID(len(b.t.Vars))
	b.t.Vars = append(b.t.Vars, Variable{Name: varName, Kind: RangeVar, Node: ni, Attr: attr, Op: op})
	b.t.Nodes[ni].Literals = append(b.t.Nodes[ni].Literals, Literal{Attr: attr, Op: op, Var: vi})
	return b
}

// Edge adds a fixed (always present) edge.
func (b *Builder) Edge(from, to, label string) *Builder {
	fi, ti := b.t.Node(from), b.t.Node(to)
	if fi < 0 || ti < 0 {
		b.errf("query: Edge: unknown endpoint %q -> %q", from, to)
		return b
	}
	b.t.Edges = append(b.t.Edges, TEdge{From: fi, To: ti, Label: label, Var: -1})
	return b
}

// VarEdge adds a parameterized edge whose presence is controlled by a fresh
// edge variable.
func (b *Builder) VarEdge(varName, from, to, label string) *Builder {
	fi, ti := b.t.Node(from), b.t.Node(to)
	if fi < 0 || ti < 0 {
		b.errf("query: VarEdge: unknown endpoint %q -> %q", from, to)
		return b
	}
	if b.t.Var(varName) >= 0 {
		b.errf("query: duplicate variable %q", varName)
		return b
	}
	ei := len(b.t.Edges)
	vi := VarID(len(b.t.Vars))
	b.t.Vars = append(b.t.Vars, Variable{Name: varName, Kind: EdgeVar, Edge: ei})
	b.t.Edges = append(b.t.Edges, TEdge{From: fi, To: ti, Label: label, Var: vi})
	return b
}

// Output designates the output node u_o.
func (b *Builder) Output(name string) *Builder {
	ni := b.t.Node(name)
	if ni < 0 {
		b.errf("query: Output: unknown node %q", name)
		return b
	}
	b.t.Output = ni
	return b
}

// SetLadder installs an explicit value ladder for a range variable,
// bypassing BindDomains. Values must already be in relaxed→refined order
// for the variable's operator.
func (b *Builder) SetLadder(varName string, values ...graph.Value) *Builder {
	vi := b.t.Var(varName)
	if vi < 0 {
		b.errf("query: SetLadder: unknown variable %q", varName)
		return b
	}
	if b.t.Vars[vi].Kind != RangeVar {
		b.errf("query: SetLadder: %q is not a range variable", varName)
		return b
	}
	b.t.Vars[vi].Ladder = values
	return b
}

// Build validates and returns the template.
func (b *Builder) Build() (*Template, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.t.Output < 0 {
		return nil, fmt.Errorf("query: template %q: no output node designated", b.t.Name)
	}
	t := b.t
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Template {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
