package query

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fairsqg/internal/graph"
)

func TestNewInstanceValidation(t *testing.T) {
	tpl := talentTemplate(t)
	if _, err := NewInstance(tpl, Instantiation{0, 0}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := NewInstance(tpl, Instantiation{5, 0, 0}); err == nil {
		t.Error("range level out of bounds accepted")
	}
	// Variable order: x1 (range), x3 (range), e1 (edge).
	if _, err := NewInstance(tpl, Instantiation{0, 0, 2}); err == nil {
		t.Error("edge level 2 accepted")
	}
	q, err := NewInstance(tpl, Instantiation{Wildcard, Wildcard, 0})
	if err != nil {
		t.Fatal(err)
	}
	if q.Key() != "-1,-1,0" {
		t.Errorf("Key = %q", q.Key())
	}
}

func TestInstanceProjection(t *testing.T) {
	tpl := talentTemplate(t)
	// Edge e1 (u1 -> u_o) absent: u1 and u4 fall out of u_o's component.
	q := MustInstance(tpl, Instantiation{1, 1, 0})
	if len(q.ActiveNodes()) != 1 || q.ActiveNodes()[0] != tpl.Output {
		t.Errorf("active nodes = %v", q.ActiveNodes())
	}
	if len(q.ActiveEdges()) != 0 {
		t.Errorf("active edges = %v", q.ActiveEdges())
	}
	if q.NodeActive(tpl.Node("u1")) {
		t.Error("u1 should be inactive")
	}
	// Edge present: everything active (worksAt is fixed).
	q2 := MustInstance(tpl, Instantiation{1, 1, 1})
	if len(q2.ActiveNodes()) != 3 || len(q2.ActiveEdges()) != 2 {
		t.Errorf("active = %v / %v", q2.ActiveNodes(), q2.ActiveEdges())
	}
}

func TestBoundLiterals(t *testing.T) {
	tpl := talentTemplate(t)
	q := MustInstance(tpl, Instantiation{1, Wildcard, 1})
	u1 := tpl.Node("u1")
	lits := q.BoundLiterals(u1)
	if len(lits) != 1 || lits[0].Attr != "yearsOfExp" || !lits[0].Value.Equal(graph.Int(10)) {
		t.Errorf("u1 literals = %v", lits)
	}
	u4 := tpl.Node("u4")
	if lits := q.BoundLiterals(u4); len(lits) != 0 {
		t.Errorf("wildcarded literal bound: %v", lits)
	}
	uo := tpl.Node("u_o")
	lits = q.BoundLiterals(uo)
	if len(lits) != 1 || lits[0].Op != graph.OpEQ || !lits[0].Value.Equal(graph.Str("Director")) {
		t.Errorf("fixed literal lost: %v", lits)
	}
}

func TestInstanceStringAndDescribe(t *testing.T) {
	tpl := talentTemplate(t)
	q := MustInstance(tpl, Instantiation{0, Wildcard, 1})
	s := q.String()
	for _, want := range []string{"x1=5", "x3=_", "e1=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	d := q.Describe()
	for _, want := range []string{"node u_o: Person", "yearsOfExp >= 5", "edge u1 -> u_o : recommend"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() missing %q:\n%s", want, d)
		}
	}
}

func TestRefinesBasics(t *testing.T) {
	tpl := talentTemplate(t)
	root := MustInstance(tpl, Root(tpl))
	bottom := MustInstance(tpl, Bottom(tpl))
	if !Refines(bottom, root) {
		t.Error("bottom must refine root")
	}
	if Refines(root, bottom) {
		t.Error("root must not refine bottom")
	}
	if !Refines(root, root) {
		t.Error("refinement must be reflexive")
	}
	if !StrictlyRefines(bottom, root) || StrictlyRefines(root, root) {
		t.Error("strict refinement wrong")
	}
	mid := MustInstance(tpl, Instantiation{1, Wildcard, 1})
	if !Refines(mid, root) || !Refines(bottom, mid) {
		t.Error("chain root ≺ mid ≺ bottom broken")
	}
}

func TestRefinesEqualityVariable(t *testing.T) {
	tpl, err := NewBuilder("eq").
		Node("a", "A").RangeVar("g", "a", "genre", graph.OpEQ).
		Output("a").
		SetLadder("g", graph.Str("Action"), graph.Str("Romance")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	wild := MustInstance(tpl, Instantiation{Wildcard})
	action := MustInstance(tpl, Instantiation{0})
	romance := MustInstance(tpl, Instantiation{1})
	if !Refines(action, wild) || !Refines(romance, wild) {
		t.Error("bound EQ must refine wildcard")
	}
	if Refines(action, romance) || Refines(romance, action) {
		t.Error("distinct EQ constants must be incomparable")
	}
}

// TestRefinementPreorder property-checks reflexivity and transitivity
// (Lemma 2 (1)) over random instantiations.
func TestRefinementPreorder(t *testing.T) {
	tpl := talentTemplate(t)
	const seed = 7 // fixed and logged so a failing triple reproduces
	rng := rand.New(rand.NewSource(seed))
	randInst := func() Instantiation {
		in := make(Instantiation, len(tpl.Vars))
		for vi := range tpl.Vars {
			v := &tpl.Vars[vi]
			if v.Kind == EdgeVar {
				in[vi] = rng.Intn(2)
			} else {
				in[vi] = rng.Intn(len(v.Ladder)+1) - 1
			}
		}
		return in
	}
	for trial := 0; trial < 500; trial++ {
		a, b, c := randInst(), randInst(), randInst()
		if !RefinesInstantiation(tpl, a, a) {
			t.Fatalf("seed %d: not reflexive: %v", seed, a)
		}
		if RefinesInstantiation(tpl, a, b) && RefinesInstantiation(tpl, b, c) &&
			!RefinesInstantiation(tpl, a, c) {
			t.Fatalf("seed %d: not transitive: %v %v %v", seed, a, b, c)
		}
	}
}

// TestRefineStepsAreCovers verifies spawned children strictly refine their
// parent by exactly one variable step, and RelaxSteps inverts RefineSteps.
func TestRefineRelaxInverse(t *testing.T) {
	tpl := talentTemplate(t)
	var walk func(in Instantiation, depth int)
	seen := map[string]bool{}
	walk = func(in Instantiation, depth int) {
		if seen[in.Key()] {
			return
		}
		seen[in.Key()] = true
		for _, child := range RefineSteps(tpl, in) {
			if !StrictlyRefinesInstantiation(tpl, in, child) {
				t.Fatalf("child %v does not strictly refine parent %v", child, in)
			}
			diff := 0
			for vi := range in {
				if in[vi] != child[vi] {
					diff++
				}
			}
			if diff != 1 {
				t.Fatalf("child %v differs from %v in %d variables", child, in, diff)
			}
			// The parent must be among the child's relaxations.
			found := false
			for _, par := range RelaxSteps(tpl, child) {
				if par.Key() == in.Key() {
					found = true
				}
			}
			if !found {
				t.Fatalf("RelaxSteps(%v) misses parent %v", child, in)
			}
			walk(child, depth+1)
		}
	}
	walk(Root(tpl), 0)
	// Full lattice: (3+1)*(3+1)*2 = 32 instantiations all reachable.
	if len(seen) != 32 {
		t.Errorf("reached %d lattice nodes, want 32", len(seen))
	}
}

func TestRefineStepsRestricted(t *testing.T) {
	tpl := talentTemplate(t)
	root := Root(tpl)
	// Cap x1 (var 0) at level 0 and freeze e1 (var 2).
	kids := RefineStepsRestricted(tpl, root, map[int]int{0: 0}, map[int]bool{2: true})
	for _, k := range kids {
		if k[2] == 1 {
			t.Error("frozen edge variable was refined")
		}
	}
	// From level 0, x1 cannot go to level 1 under cap 0.
	at0 := Instantiation{0, Wildcard, 0}
	kids = RefineStepsRestricted(tpl, at0, map[int]int{0: 0}, nil)
	for _, k := range kids {
		if k[0] == 1 {
			t.Error("cap exceeded")
		}
	}
	// Cap -1 suppresses even the wildcard step.
	kids = RefineStepsRestricted(tpl, root, map[int]int{0: -1}, nil)
	for _, k := range kids {
		if k[0] != Wildcard {
			t.Error("cap -1 did not suppress the variable")
		}
	}
	// Nil maps mean unrestricted.
	if got, want := len(RefineStepsRestricted(tpl, root, nil, nil)), len(RefineSteps(tpl, root)); got != want {
		t.Errorf("unrestricted mismatch: %d vs %d", got, want)
	}
}

func TestChainLength(t *testing.T) {
	tpl := talentTemplate(t)
	if got := ChainLength(&tpl.Vars[0]); got != 3 {
		t.Errorf("range chain = %d", got)
	}
	if got := ChainLength(&tpl.Vars[2]); got != 1 {
		t.Errorf("edge chain = %d", got)
	}
}

// TestMonotoneBindings: RefinesBinding must agree with Tightens semantics
// for chain variables (quick property over levels).
func TestRefinesBindingProperty(t *testing.T) {
	tpl := talentTemplate(t)
	v := &tpl.Vars[0] // GE range var, ladder 5,10,15
	f := func(a, b int8) bool {
		la := int(a)%5 - 1 // -1..3 (includes an out-of-range 3; skip)
		lb := int(b)%5 - 1
		if la > 2 || lb > 2 {
			return true
		}
		got := RefinesBinding(v, la, lb)
		// Semantics: b refines a iff a is wildcard or b >= a (ascending GE ladder).
		want := la == Wildcard || (lb != Wildcard && lb >= la)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
