// Package query models FairSQG query templates and query instances: a
// template is a connected query graph whose node predicates carry range
// variables and whose edges may carry Boolean edge variables; an instance
// binds every variable to a constant or the wildcard '_'. The package also
// implements the refinement preorder over instantiations that the
// generation algorithms explore (Section IV of the paper).
package query

import (
	"fmt"
	"sort"

	"fairsqg/internal/graph"
)

// VarKind discriminates range variables from edge variables.
type VarKind uint8

const (
	// RangeVar parameterizes a node literal "u.A op x".
	RangeVar VarKind = iota
	// EdgeVar is the Boolean presence variable of a query edge.
	EdgeVar
)

// VarID indexes a template's variable table.
type VarID int

// Literal is one search predicate "u.A op rhs" on a template node. When Var
// is >= 0 the right-hand side is the range variable Var; otherwise Const is
// a fixed constant.
type Literal struct {
	Attr  string
	Op    graph.Op
	Var   VarID
	Const graph.Value
}

// Parameterized reports whether the literal's right-hand side is a variable.
func (l Literal) Parameterized() bool { return l.Var >= 0 }

// TNode is a template query node.
type TNode struct {
	Name     string
	Label    string
	Literals []Literal
}

// TEdge is a template query edge. Var >= 0 marks a parameterized edge whose
// presence is decided by the instantiation; Var < 0 marks a fixed edge.
type TEdge struct {
	From, To int
	Label    string
	Var      VarID
}

// Parameterized reports whether the edge carries an edge variable.
func (e TEdge) Parameterized() bool { return e.Var >= 0 }

// Variable is one entry of a template's variable table. Range variables own
// a selectivity-ordered value ladder (most relaxed first) installed by
// BindDomains; edge variables have an implicit {absent, present} ladder.
type Variable struct {
	Name string
	Kind VarKind
	// Range-variable fields.
	Node   int
	Attr   string
	Op     graph.Op
	Ladder []graph.Value
	// Edge-variable field.
	Edge int
}

// Template is a query template Q(u_o): a connected query graph with a
// designated output node and a variable table.
type Template struct {
	Name   string
	Nodes  []TNode
	Edges  []TEdge
	Output int
	Vars   []Variable
}

// NumRangeVars returns |X_L|.
func (t *Template) NumRangeVars() int {
	n := 0
	for i := range t.Vars {
		if t.Vars[i].Kind == RangeVar {
			n++
		}
	}
	return n
}

// NumEdgeVars returns |X_E|.
func (t *Template) NumEdgeVars() int { return len(t.Vars) - t.NumRangeVars() }

// Node returns the index of the named template node, or -1.
func (t *Template) Node(name string) int {
	for i := range t.Nodes {
		if t.Nodes[i].Name == name {
			return i
		}
	}
	return -1
}

// Var returns the index of the named variable, or -1.
func (t *Template) Var(name string) VarID {
	for i := range t.Vars {
		if t.Vars[i].Name == name {
			return VarID(i)
		}
	}
	return -1
}

// Validate checks structural well-formedness: the output node exists, edge
// endpoints are in range, variables are wired to existing nodes/edges, and
// the template graph (with every parameterized edge present) is connected.
func (t *Template) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("query: template %q has no nodes", t.Name)
	}
	if t.Output < 0 || t.Output >= len(t.Nodes) {
		return fmt.Errorf("query: template %q: output node %d out of range", t.Name, t.Output)
	}
	seen := map[string]bool{}
	for i, n := range t.Nodes {
		if n.Name == "" {
			return fmt.Errorf("query: template %q: node %d has no name", t.Name, i)
		}
		if seen[n.Name] {
			return fmt.Errorf("query: template %q: duplicate node name %q", t.Name, n.Name)
		}
		seen[n.Name] = true
		if n.Label == "" {
			return fmt.Errorf("query: template %q: node %q has no label", t.Name, n.Name)
		}
		for _, l := range n.Literals {
			if l.Op == graph.OpInvalid {
				return fmt.Errorf("query: template %q: node %q: literal on %q has no operator", t.Name, n.Name, l.Attr)
			}
			if l.Var >= 0 {
				if int(l.Var) >= len(t.Vars) {
					return fmt.Errorf("query: template %q: node %q references unknown variable %d", t.Name, n.Name, l.Var)
				}
				v := t.Vars[l.Var]
				if v.Kind != RangeVar || v.Node != i || v.Attr != l.Attr {
					return fmt.Errorf("query: template %q: variable %q not wired to node %q attribute %q", t.Name, v.Name, n.Name, l.Attr)
				}
			}
		}
	}
	for i, e := range t.Edges {
		if e.From < 0 || e.From >= len(t.Nodes) || e.To < 0 || e.To >= len(t.Nodes) {
			return fmt.Errorf("query: template %q: edge %d endpoint out of range", t.Name, i)
		}
		if e.Var >= 0 {
			if int(e.Var) >= len(t.Vars) {
				return fmt.Errorf("query: template %q: edge %d references unknown variable %d", t.Name, i, e.Var)
			}
			v := t.Vars[e.Var]
			if v.Kind != EdgeVar || v.Edge != i {
				return fmt.Errorf("query: template %q: variable %q not wired to edge %d", t.Name, v.Name, i)
			}
		}
	}
	for vi, v := range t.Vars {
		switch v.Kind {
		case RangeVar:
			if v.Node < 0 || v.Node >= len(t.Nodes) {
				return fmt.Errorf("query: template %q: range variable %q: node out of range", t.Name, v.Name)
			}
			found := false
			for _, l := range t.Nodes[v.Node].Literals {
				if l.Var == VarID(vi) {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("query: template %q: range variable %q not referenced by any literal", t.Name, v.Name)
			}
		case EdgeVar:
			if v.Edge < 0 || v.Edge >= len(t.Edges) || t.Edges[v.Edge].Var != VarID(vi) {
				return fmt.Errorf("query: template %q: edge variable %q not wired to its edge", t.Name, v.Name)
			}
		}
	}
	if !t.connectedWithAllEdges() {
		return fmt.Errorf("query: template %q is not connected", t.Name)
	}
	return nil
}

// connectedWithAllEdges checks connectivity treating every edge (fixed and
// parameterized) as present and undirected.
func (t *Template) connectedWithAllEdges() bool {
	if len(t.Nodes) == 0 {
		return false
	}
	adj := make([][]int, len(t.Nodes))
	for _, e := range t.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := make([]bool, len(t.Nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == len(t.Nodes)
}

// DomainOptions controls how BindDomains builds range-variable ladders.
type DomainOptions struct {
	// MaxValues caps the ladder length per variable; 0 means no cap. When a
	// label-restricted active domain exceeds the cap it is subsampled
	// evenly, always keeping the extremes.
	MaxValues int
}

// BindDomains installs a value ladder for every range variable from the
// label-restricted active domain of its attribute in g: the distinct values
// T(v).A takes over nodes v with L(v) equal to the variable's node label.
// Ladders are ordered from most relaxed to most refined (ascending for
// >=/>, descending for <=/<; ascending for = where every value is a
// one-step refinement of the wildcard). The graph must be frozen.
func (t *Template) BindDomains(g *graph.Graph, opts DomainOptions) error {
	for vi := range t.Vars {
		v := &t.Vars[vi]
		if v.Kind != RangeVar {
			continue
		}
		label := t.Nodes[v.Node].Label
		dom := labelRestrictedDomain(g, label, v.Attr)
		if len(dom) == 0 {
			return fmt.Errorf("query: template %q: variable %q: attribute %q has empty active domain for label %q",
				t.Name, v.Name, v.Attr, label)
		}
		if opts.MaxValues > 0 && len(dom) > opts.MaxValues {
			dom = subsample(dom, opts.MaxValues)
		}
		switch v.Op {
		case graph.OpLT, graph.OpLE:
			// Most relaxed binding is the largest value.
			rev := make([]graph.Value, len(dom))
			for i := range dom {
				rev[i] = dom[len(dom)-1-i]
			}
			v.Ladder = rev
		default:
			v.Ladder = dom
		}
	}
	return nil
}

// labelRestrictedDomain computes the sorted distinct values of attr over the
// nodes with the given label. When the graph carries a sorted index for the
// (label, attr) pair the values are read off it pre-sorted; otherwise a scan
// and sort does the same work.
func labelRestrictedDomain(g *graph.Graph, label, attr string) []graph.Value {
	aid := g.AttrIDOf(attr)
	if ix := g.SortedIndex(g.LookupLabel(label), aid); ix.Valid() {
		var out []graph.Value
		for i := 0; i < ix.Len(); i++ {
			v := ix.ValueAt(i)
			if v.IsNull() {
				continue // absent attributes sort first in the permutation
			}
			if len(out) == 0 || !v.Equal(out[len(out)-1]) {
				out = append(out, v)
			}
		}
		return out
	}
	var vals []graph.Value
	for _, v := range g.NodesByLabel(label) {
		if a := g.AttrValue(v, aid); !a.IsNull() {
			vals = append(vals, a)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || !v.Equal(vals[i-1]) {
			out = append(out, v)
		}
	}
	return out
}

// subsample keeps n values from dom spread evenly, including both extremes.
func subsample(dom []graph.Value, n int) []graph.Value {
	if n >= len(dom) || n < 2 {
		return dom
	}
	out := make([]graph.Value, n)
	step := float64(len(dom)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out[i] = dom[int(float64(i)*step+0.5)]
	}
	return out
}

// AlwaysActive returns the template nodes that belong to the output node's
// connected component under every instantiation: those reachable from the
// output via fixed (non-parameterized) edges. Only such nodes have
// refinement-monotone match sets — an edge variable flipping on can
// activate other nodes and grow their match sets from nothing.
func (t *Template) AlwaysActive() []int {
	adj := make([][]int, len(t.Nodes))
	for _, e := range t.Edges {
		if e.Parameterized() {
			continue
		}
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := make([]bool, len(t.Nodes))
	stack := []int{t.Output}
	seen[t.Output] = true
	var out []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Diameter returns the diameter of the template graph with all edges
// present, treated as undirected. It bounds the d-hop neighborhood used by
// the Spawn template-refinement optimization.
func (t *Template) Diameter() int {
	n := len(t.Nodes)
	adj := make([][]int, n)
	for _, e := range t.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	max := 0
	dist := make([]int, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					if dist[w] > max {
						max = dist[w]
					}
					queue = append(queue, w)
				}
			}
		}
	}
	return max
}

// InstanceSpaceSize returns |I(Q)| ≤ 2^|X_E| * Π(|ladder|+1): the number of
// instantiations distinguishable by the lattice (each range variable may be
// a wildcard or any ladder value; each edge variable absent or present).
func (t *Template) InstanceSpaceSize() int {
	size := 1
	for i := range t.Vars {
		switch t.Vars[i].Kind {
		case RangeVar:
			size *= len(t.Vars[i].Ladder) + 1
		case EdgeVar:
			size *= 2
		}
		if size < 0 { // overflow
			return int(^uint(0) >> 1)
		}
	}
	return size
}
