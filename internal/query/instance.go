package query

import (
	"fmt"
	"sort"
	"strings"

	"fairsqg/internal/graph"
)

// Wildcard is the binding level meaning "don't care": the parameterized
// predicate or edge is removed from the instance.
const Wildcard = -1

// Instantiation assigns every template variable a binding level. For a
// range variable, level l >= 0 selects Ladder[l] (ladders are ordered most
// relaxed → most refined); for an edge variable level 0 means the edge is
// absent and level 1 present. Wildcard removes the predicate (for an edge
// variable it is equivalent to absent).
type Instantiation []int

// Clone returns an independent copy.
func (in Instantiation) Clone() Instantiation {
	out := make(Instantiation, len(in))
	copy(out, in)
	return out
}

// Key encodes the instantiation as a compact map key.
func (in Instantiation) Key() string {
	var b strings.Builder
	b.Grow(len(in) * 3)
	for i, l := range in {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", l)
	}
	return b.String()
}

// Instance is a query instance q(u_o): a template plus a full
// instantiation. Instances are immutable once created.
type Instance struct {
	T *Template
	I Instantiation

	activeEdges []int // indices of present edges, restricted to u_o's component
	activeNodes []int // template nodes in u_o's component
	key         string
	// compiled caches the bound literals resolved against one graph's
	// attribute dictionary (see CompiledLiterals); it never affects the
	// instance's logical identity.
	compiled compiledPtr
}

// NewInstance materializes an instance: it resolves edge presence, keeps
// only the connected component of the output node, and caches the canonical
// key. The instantiation must have one entry per template variable.
func NewInstance(t *Template, in Instantiation) (*Instance, error) {
	if len(in) != len(t.Vars) {
		return nil, fmt.Errorf("query: instantiation has %d bindings; template %q has %d variables",
			len(in), t.Name, len(t.Vars))
	}
	for vi, level := range in {
		v := &t.Vars[vi]
		switch v.Kind {
		case RangeVar:
			if level < Wildcard || level >= len(v.Ladder) {
				return nil, fmt.Errorf("query: variable %q: binding level %d out of range [-1,%d)",
					v.Name, level, len(v.Ladder))
			}
		case EdgeVar:
			if level < Wildcard || level > 1 {
				return nil, fmt.Errorf("query: edge variable %q: binding level %d not in {-1,0,1}", v.Name, level)
			}
		}
	}
	q := &Instance{T: t, I: in.Clone()}
	q.project()
	q.key = q.I.Key()
	return q, nil
}

// MustInstance is NewInstance that panics on error; for tests and
// generators with known-good inputs.
func MustInstance(t *Template, in Instantiation) *Instance {
	q, err := NewInstance(t, in)
	if err != nil {
		panic(err)
	}
	return q
}

// project computes the edges present under I and restricts the instance to
// the connected component of the output node (undirected reachability).
func (q *Instance) project() {
	t := q.T
	present := make([]bool, len(t.Edges))
	for ei, e := range t.Edges {
		if !e.Parameterized() {
			present[ei] = true
			continue
		}
		present[ei] = q.I[e.Var] == 1
	}
	adj := make([][]int, len(t.Nodes))
	for ei, e := range t.Edges {
		if present[ei] {
			adj[e.From] = append(adj[e.From], e.To)
			adj[e.To] = append(adj[e.To], e.From)
		}
	}
	inComp := make([]bool, len(t.Nodes))
	stack := []int{t.Output}
	inComp[t.Output] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !inComp[w] {
				inComp[w] = true
				stack = append(stack, w)
			}
		}
	}
	q.activeEdges = q.activeEdges[:0]
	for ei, e := range t.Edges {
		if present[ei] && inComp[e.From] && inComp[e.To] {
			q.activeEdges = append(q.activeEdges, ei)
		}
	}
	q.activeNodes = q.activeNodes[:0]
	for ni := range t.Nodes {
		if inComp[ni] {
			q.activeNodes = append(q.activeNodes, ni)
		}
	}
}

// Key returns the canonical identity of the instance within its template's
// instance space.
func (q *Instance) Key() string { return q.key }

// ActiveEdges returns the template-edge indices present in the instance
// (restricted to the output node's component).
func (q *Instance) ActiveEdges() []int { return q.activeEdges }

// ActiveNodes returns the template-node indices in the output component.
func (q *Instance) ActiveNodes() []int { return q.activeNodes }

// NodeActive reports whether template node ni survives projection.
func (q *Instance) NodeActive(ni int) bool {
	for _, n := range q.activeNodes {
		if n == ni {
			return true
		}
	}
	return false
}

// BoundLiterals returns the concrete literals of template node ni under the
// instantiation: fixed literals plus parameterized ones whose variable is
// bound to a constant.
func (q *Instance) BoundLiterals(ni int) []BoundLiteral {
	var out []BoundLiteral
	for _, l := range q.T.Nodes[ni].Literals {
		if !l.Parameterized() {
			out = append(out, BoundLiteral{Attr: l.Attr, Op: l.Op, Value: l.Const})
			continue
		}
		level := q.I[l.Var]
		if level == Wildcard {
			continue
		}
		out = append(out, BoundLiteral{Attr: l.Attr, Op: l.Op, Value: q.T.Vars[l.Var].Ladder[level]})
	}
	return out
}

// BoundLiteral is a fully instantiated search predicate.
type BoundLiteral struct {
	Attr  string
	Op    graph.Op
	Value graph.Value
}

// Matches reports whether graph node v satisfies the literal.
func (b BoundLiteral) Matches(g *graph.Graph, v graph.NodeID) bool {
	return b.Op.Apply(g.Attr(v, b.Attr), b.Value)
}

// String renders the instance's bindings in a stable, human-readable form.
func (q *Instance) String() string {
	var b strings.Builder
	b.WriteString(q.T.Name)
	b.WriteByte('{')
	for vi := range q.T.Vars {
		if vi > 0 {
			b.WriteString(", ")
		}
		v := &q.T.Vars[vi]
		b.WriteString(v.Name)
		b.WriteByte('=')
		level := q.I[vi]
		switch {
		case v.Kind == EdgeVar:
			if level == 1 {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		case level == Wildcard:
			b.WriteByte('_')
		default:
			b.WriteString(v.Ladder[level].String())
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Describe renders the instance as executable query text: each active node
// with its bound literals and each active edge.
func (q *Instance) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instance of %s (output %s)\n", q.T.Name, q.T.Nodes[q.T.Output].Name)
	for _, ni := range q.activeNodes {
		n := &q.T.Nodes[ni]
		fmt.Fprintf(&b, "  node %s: %s", n.Name, n.Label)
		lits := q.BoundLiterals(ni)
		sort.Slice(lits, func(i, j int) bool { return lits[i].Attr < lits[j].Attr })
		for _, l := range lits {
			fmt.Fprintf(&b, " [%s %s %s]", l.Attr, l.Op, l.Value)
		}
		b.WriteByte('\n')
	}
	for _, ei := range q.activeEdges {
		e := &q.T.Edges[ei]
		fmt.Fprintf(&b, "  edge %s -> %s : %s\n", q.T.Nodes[e.From].Name, q.T.Nodes[e.To].Name, e.Label)
	}
	return b.String()
}

// RefinesBinding reports whether binding level b refines level a for
// variable v: every node satisfying the predicate under b also satisfies it
// under a (for edge variables: presence refines absence). Any binding
// refines the wildcard.
func RefinesBinding(v *Variable, a, b int) bool {
	if a == b {
		return true
	}
	if a == Wildcard {
		return true
	}
	if b == Wildcard {
		return false
	}
	switch v.Kind {
	case EdgeVar:
		return b >= a
	default:
		if v.Op == graph.OpEQ {
			return a == b
		}
		// Ladders are ordered most relaxed → most refined, so larger level
		// means a more selective predicate regardless of the operator.
		return b >= a
	}
}

// Refines reports whether q' = b refines q = a (b ⪰_I a): for every
// variable, b's binding is at least as selective as a's. Both instances
// must come from the same template.
func Refines(b, a *Instance) bool {
	if b.T != a.T {
		return false
	}
	return RefinesInstantiation(b.T, a.I, b.I)
}

// RefinesInstantiation reports whether instantiation b refines a under
// template t (b ⪰ a), without materializing instances.
func RefinesInstantiation(t *Template, a, b Instantiation) bool {
	for vi := range t.Vars {
		if !RefinesBinding(&t.Vars[vi], a[vi], b[vi]) {
			return false
		}
	}
	return true
}

// StrictlyRefinesInstantiation reports b ≻ a: refinement with a difference.
func StrictlyRefinesInstantiation(t *Template, a, b Instantiation) bool {
	if !RefinesInstantiation(t, a, b) {
		return false
	}
	for vi := range b {
		if b[vi] != a[vi] {
			return true
		}
	}
	return false
}

// StrictlyRefines reports b ≻_I a: Refines(b, a) and the instantiations
// differ.
func StrictlyRefines(b, a *Instance) bool {
	return Refines(b, a) && b.key != a.key
}

// Root returns the most relaxed instantiation: every range variable is a
// wildcard and every edge variable absent. This is the lattice root q_r.
func Root(t *Template) Instantiation {
	in := make(Instantiation, len(t.Vars))
	for vi := range t.Vars {
		switch t.Vars[vi].Kind {
		case RangeVar:
			in[vi] = Wildcard
		case EdgeVar:
			in[vi] = 0
		}
	}
	return in
}

// Bottom returns the most refined instantiation: every edge variable
// present and every range variable at the last (most selective) ladder
// level. For an equality variable — whose refinement order is flat — the
// first ladder value is used; this choice is documented in DESIGN.md.
// This is the lattice bottom q_b.
func Bottom(t *Template) Instantiation {
	in := make(Instantiation, len(t.Vars))
	for vi := range t.Vars {
		v := &t.Vars[vi]
		switch v.Kind {
		case RangeVar:
			if v.Op == graph.OpEQ {
				in[vi] = 0
			} else {
				in[vi] = len(v.Ladder) - 1
			}
		case EdgeVar:
			in[vi] = 1
		}
	}
	return in
}
