package server

import (
	"context"
	"time"

	"fairsqg/internal/cluster"
	"fairsqg/internal/core"
)

// ctxJobID keys the job ID into a running job's context; the distributed
// path reads it back as the cluster request ID so a job's slab fan-out
// correlates across the coordinator's and workers' logs.
type ctxJobID struct{}

// jobIDFrom extracts the running job's ID, empty when absent (tests
// driving runFuncs directly).
func jobIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxJobID{}).(string)
	return id
}

// runDistributed executes a par job over the cluster coordinator instead
// of the local lattice walk: slabs fan out to the worker fleet and the
// merged ε-Pareto archive is rendered exactly like a local result. Slab
// completions surface on the progress stream as "slab" events.
func (m *Manager) runDistributed(ctx context.Context, spec *JobSpec, handle *Handle, hub *progressHub) (*JobResult, error) {
	res, err := m.cluster.RunJob(ctx, cluster.JobRequest{
		Graph:     spec.Graph,
		G:         handle.Graph(),
		Payload:   specPayload(spec),
		RequestID: jobIDFrom(ctx),
		OnSlab: func(done, total int, worker string) {
			hub.publish(JobEvent{Type: "slab", Verified: done, Matches: total})
		},
	})
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Algorithm: spec.Algorithm,
		Eps:       res.Eps,
		ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
		Stats: core.Stats{
			Spawned:   res.Stats.Spawned,
			Verified:  res.Stats.Verified,
			Feasible:  res.Stats.Feasible,
			Pruned:    res.Stats.Pruned,
			IncScores: res.Stats.IncScores,
		},
		Queries: make([]ResultQuery, 0, len(res.Entries)),
	}
	for _, e := range res.Entries {
		out.Queries = append(out.Queries, ResultQuery{
			Bindings:  append([]int(nil), e.Bindings...),
			Text:      e.Text,
			Diversity: e.Div,
			Coverage:  e.Cov,
			Answers:   e.Matches,
		})
	}
	return out, nil
}
