package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fairsqg/internal/graph"
)

// startServer is newTestServer without the automatic cleanup: the
// crash-recovery test tears servers down (and deliberately doesn't, for
// the simulated crash) at specific points in the scenario.
func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Jobs.Workers == 0 {
		opts.Jobs.Workers = 2
	}
	s := New(opts)
	return s, httptest.NewServer(s.Handler())
}

func shutdown(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerCrashRecovery is the warm-restart e2e: a graph registered
// with snapshots enabled survives a full server teardown — a fresh Server
// on the same directory restores the registry from the binary snapshot
// (no source re-parse, no re-Freeze), a repeat job returns identical
// results, a partially-written .tmp file is ignored and cleaned, and a
// corrupt snapshot degrades to "not registered" instead of failing
// startup.
func TestServerCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 7)

	// Generation 1: register via upload, run a job to completion.
	s1, ts1 := startServer(t, Options{SnapshotDir: dir})
	uploadGraph(t, ts1.URL, "talent", g)
	st := submitJob(t, ts1.URL, testSpec("talent"))
	done := pollDone(t, ts1.URL, st.ID)
	if done.State != JobDone {
		t.Fatalf("gen-1 job state = %s: %s", done.State, done.Error)
	}
	var want JobResult
	doJSON(t, http.MethodGet, ts1.URL+"/v1/jobs/"+st.ID+"/result", nil, http.StatusOK, &want)

	snapPath := filepath.Join(dir, "talent"+snapExt)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot not persisted on register: %v", err)
	}
	shutdown(t, s1, ts1)

	// Simulate the crash debris a restart must tolerate: a partial .tmp
	// write and an unrelated corrupt snapshot.
	tmpPath := filepath.Join(dir, "talent"+snapTmpExt)
	if err := os.WriteFile(tmpPath, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "corrupt"+snapExt)
	if err := os.WriteFile(badPath, []byte("FSQGSNAPgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Generation 2: fresh server, same directory.
	s2, ts2 := startServer(t, Options{SnapshotDir: dir})
	defer shutdown(t, s2, ts2)

	if got := s2.RestoredGraphs(); !reflect.DeepEqual(got, []string{"talent"}) {
		t.Fatalf("RestoredGraphs = %v, want [talent]", got)
	}
	info, ok := s2.Registry().Info("talent")
	if !ok {
		t.Fatal("talent not restored into registry")
	}
	if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Fatalf("restored graph %d/%d nodes/edges, want %d/%d",
			info.Nodes, info.Edges, g.NumNodes(), g.NumEdges())
	}
	if _, ok := s2.Registry().Info("corrupt"); ok {
		t.Fatal("corrupt snapshot was registered")
	}
	if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
		t.Fatalf("partial %s not cleaned: stat err = %v", tmpPath, err)
	}

	// The repeat job on the restored graph must return byte-identical
	// results — the snapshot restored the exact frozen layout the
	// algorithms saw in generation 1.
	st2 := submitJob(t, ts2.URL, testSpec("talent"))
	done2 := pollDone(t, ts2.URL, st2.ID)
	if done2.State != JobDone {
		t.Fatalf("gen-2 job state = %s: %s", done2.State, done2.Error)
	}
	var got JobResult
	doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+st2.ID+"/result", nil, http.StatusOK, &got)
	got.ElapsedMs, want.ElapsedMs = 0, 0 // wall time is the one legitimate difference
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restored-graph job result differs from original:\n got %+v\nwant %+v", got, want)
	}

	// Storage metrics: one load (talent), one fallback (corrupt), one
	// cleaned tmp, and positive load latency.
	var met struct {
		Storage struct {
			Snapshots map[string]any `json:"snapshots"`
		} `json:"storage"`
	}
	doJSON(t, http.MethodGet, ts2.URL+"/metrics", nil, http.StatusOK, &met)
	snaps := met.Storage.Snapshots
	if snaps == nil {
		t.Fatal("/metrics storage.snapshots missing with SnapshotDir set")
	}
	for key, want := range map[string]float64{"loads": 1, "fallbacks": 1, "tmpCleaned": 1} {
		if got, _ := snaps[key].(float64); got != want {
			t.Errorf("storage.snapshots.%s = %v, want %v", key, snaps[key], want)
		}
	}
	if ms, _ := snaps["loadMs"].(float64); ms <= 0 {
		t.Errorf("storage.snapshots.loadMs = %v, want > 0", snaps["loadMs"])
	}
}

// TestRegistryRemoveDeletesSnapshot: unregistering a graph removes its
// snapshot so the next startup doesn't resurrect it.
func TestRegistryRemoveDeletesSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, ts := startServer(t, Options{SnapshotDir: dir})
	defer shutdown(t, s, ts)

	uploadGraph(t, ts.URL, "gone", testGraph(t, 3))
	snapPath := filepath.Join(dir, "gone"+snapExt)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/gone", nil, http.StatusOK, nil)
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived Remove: stat err = %v", err)
	}
}

// TestUploadSnapshotFormat: the HTTP surface accepts ?format=snapshot, so
// offline-converted .fsnap artifacts upload directly.
func TestUploadSnapshotFormat(t *testing.T) {
	s, ts := startServer(t, Options{})
	defer shutdown(t, s, ts)

	g := testGraph(t, 11)
	var buf bytes.Buffer
	if err := graph.WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	var info GraphInfo
	doJSON(t, http.MethodPut, ts.URL+"/v1/graphs/snap?format=snapshot", &buf, http.StatusCreated, &info)
	if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Fatalf("snapshot upload info %d/%d, want %d/%d", info.Nodes, info.Edges, g.NumNodes(), g.NumEdges())
	}
	// And a corrupt body is a client error, not a crash.
	doJSON(t, http.MethodPut, ts.URL+"/v1/graphs/snap2?format=snapshot",
		bytes.NewReader([]byte("FSQGSNAPnope")), http.StatusBadRequest, nil)
}
