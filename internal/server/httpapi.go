package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"fairsqg/internal/graph"
)

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// routes assembles the full handler tree on a Go 1.22 pattern mux.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)

	mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	mux.HandleFunc("GET /v1/graphs/{name}", s.handleGetGraph)
	mux.HandleFunc("PUT /v1/graphs/{name}", s.handleUploadGraph)
	mux.HandleFunc("POST /v1/graphs/{name}", s.handleUploadGraph)
	mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleDeleteGraph)
	mux.HandleFunc("POST /v1/graphs/{name}/mutate", s.handleMutateGraph)

	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("POST /v1/jobs/batch", s.handleBatchJobs)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)

	// pprof needs explicit wiring on a non-default mux.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/vars", s.handleVars)

	return s.withRequestLog(mux)
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes (the events endpoint needs it).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

var reqCounter atomic.Uint64

// withRequestLog wraps the tree with request IDs, logging, counters and
// panic recovery. An inbound X-Request-Id (e.g. from an upstream proxy or
// a cluster coordinator) is honored and echoed, so one logical request
// correlates across hops; otherwise an ID is assigned.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" || len(id) > 128 {
			id = fmt.Sprintf("r%08x", reqCounter.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.logf("req=%s PANIC %s %s: %v", id, r.Method, r.URL.Path, p)
				if rec.code == http.StatusOK {
					writeError(rec, http.StatusInternalServerError, "internal error (request %s)", id)
				}
				return
			}
			s.met.httpRequests.Add(1)
			s.met.httpByCode.Add(fmt.Sprintf("%d", rec.code), 1)
			s.logf("req=%s %s %s -> %d (%s)", id, r.Method, r.URL.Path, rec.code, time.Since(start).Round(time.Microsecond))
		}()
		next.ServeHTTP(rec, r)
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports ready once at least one graph is registered and
// the server is not draining — the signal a load balancer should gate on.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.opts.RequireGraph && len(s.reg.List()) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no graphs registered")
		return
	}
	if s.opts.Cluster != nil && s.opts.Cluster.LiveWorkers() == 0 {
		writeError(w, http.StatusServiceUnavailable, "coordinator has no live workers")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

// handleVars mirrors the default expvar endpoint on this mux.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\n")
	first := true
	expvarDo(func(name, value string) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", name, value)
	})
	fmt.Fprintf(w, "\n}\n")
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	info, ok := s.reg.Info(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "graph %q not registered", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleUploadGraph ingests a TSV, JSON or binary-snapshot graph body.
// The format comes from ?format=, else the Content-Type, defaulting to
// TSV. Bodies beyond MaxUploadBytes are refused with 413.
func (s *Server) handleUploadGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	format := r.URL.Query().Get("format")
	if format == "" {
		if ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err == nil {
			switch ct {
			case "application/json":
				format = "json"
			case "text/tab-separated-values":
				format = "tsv"
			}
		}
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	err := s.reg.Read(name, format, body)
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			writeError(w, http.StatusRequestEntityTooLarge, "graph body exceeds %d bytes", s.opts.MaxUploadBytes)
		case strings.Contains(err.Error(), "already registered"):
			writeError(w, http.StatusConflict, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	info, _ := s.reg.Info(name)
	writeJSON(w, http.StatusCreated, info)
}

// handleMutateGraph applies one mutation batch to a live graph. The body
// is the JSON mutation array shared with the delta-log frames (see
// graph.DecodeMutations): [{"op":"addNode","label":"Person","attrs":
// {"age":"30"}}, {"op":"removeEdge","from":1,"to":2,"label":"knows"}].
// The batch is all-or-nothing: any invalid op rejects the whole batch
// with 422 and the graph is unchanged. On success the batch is durable
// (fsync'd to the graph's delta log when snapshots are enabled) and
// subsequent jobs evaluate against the new generation.
func (s *Server) handleMutateGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "mutation body exceeds %d bytes", s.opts.MaxUploadBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	ops, err := graph.DecodeMutations(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.reg.Mutate(name, ops)
	if err != nil {
		if strings.Contains(err.Error(), "not registered") {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		// Validation failure: the batch named nodes/edges/kinds the graph
		// does not have, or was internally inconsistent.
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Remove(name); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if s.opts.Cluster != nil {
		// Drop the coordinator's snapshot cache so a later same-name
		// registration re-encodes and re-places.
		s.opts.Cluster.ForgetGraph(name)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
}

// handleSubmitJob validates and enqueues a generation job, answering 202
// with its ID, or 429 + Retry-After under load.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	job, err := s.jobs.Submit(&spec)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, ErrUnknownGraph):
			writeError(w, http.StatusNotFound, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	st, _ := s.jobs.Status(job.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// BatchItem is the per-spec outcome of a batch submission.
type BatchItem struct {
	// Accepted reports whether this spec was enqueued; ID and Location
	// identify the job when it was.
	Accepted bool   `json:"accepted"`
	ID       string `json:"id,omitempty"`
	Location string `json:"location,omitempty"`
	// Status is the HTTP code this spec would have received from a single
	// submit (202, 400, 404, 429, 503); Error explains non-2xx ones.
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
}

// handleBatchJobs accepts an array of job specs and submits each through
// the same validation, shedding and draining semantics as a single
// submit: items are processed in order, and a queue-full shed rejects
// that item (with per-item status 429 and a top-level Retry-After hint)
// without rolling back earlier accepts. The response is 200 whenever the
// batch itself was well-formed, regardless of item outcomes.
func (s *Server) handleBatchJobs(w http.ResponseWriter, r *http.Request) {
	var specs []JobSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch body (want a JSON array of job specs): %v", err)
		return
	}
	if len(specs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	const maxBatch = 256
	if len(specs) > maxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d specs exceeds the limit of %d", len(specs), maxBatch)
		return
	}
	items := make([]BatchItem, len(specs))
	accepted, shed := 0, false
	for i := range specs {
		job, err := s.jobs.Submit(&specs[i])
		switch {
		case err == nil:
			items[i] = BatchItem{Accepted: true, ID: job.ID, Location: "/v1/jobs/" + job.ID, Status: http.StatusAccepted}
			accepted++
		case errors.Is(err, ErrQueueFull):
			items[i] = BatchItem{Status: http.StatusTooManyRequests, Error: err.Error()}
			shed = true
		case errors.Is(err, ErrDraining):
			items[i] = BatchItem{Status: http.StatusServiceUnavailable, Error: err.Error()}
		case errors.Is(err, ErrUnknownGraph):
			items[i] = BatchItem{Status: http.StatusNotFound, Error: err.Error()}
		default:
			items[i] = BatchItem{Status: http.StatusBadRequest, Error: err.Error()}
		}
	}
	if shed {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"items":    items,
		"accepted": accepted,
		"rejected": len(items) - accepted,
	})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.jobs.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.jobs.Cancel(id); err != nil {
		if _, ok := s.jobs.Get(id); !ok {
			writeError(w, http.StatusNotFound, "%v", err)
		} else {
			writeError(w, http.StatusConflict, "%v", err)
		}
		return
	}
	st, _ := s.jobs.Status(id)
	writeJSON(w, http.StatusOK, st)
}

// handleJobResult serves a finished job's result; an unfinished job gets
// 409 so pollers can tell "not yet" from "gone".
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, state, ok := s.jobs.Result(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if !state.terminal() {
		writeError(w, http.StatusConflict, "job %q is %s; result not ready", id, state)
		return
	}
	if res == nil {
		st, _ := s.jobs.Status(id)
		writeJSON(w, http.StatusOK, map[string]any{"state": state, "error": st.Error})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleJobEvents streams a job's progress as NDJSON: the buffered
// history first, then live events until the job reaches a terminal state
// or the client goes away.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	replay, live, cancel, ok := s.jobs.Subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev JobEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	lastSeq := 0
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
		lastSeq = ev.Seq
	}
	if live == nil {
		return // stream already ended; replay was the whole story
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				return
			}
			if ev.Seq <= lastSeq {
				continue // duplicate of the replayed prefix
			}
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// logger is the minimal interface the server logs through; *log.Logger
// satisfies it.
type printfLogger interface {
	Printf(format string, args ...any)
}

var _ printfLogger = (*log.Logger)(nil)
