package server

import (
	"fmt"
	"time"

	"fairsqg/internal/cluster"
	"fairsqg/internal/core"
)

// JobSpec is the JSON body of a job submission: which graph, which
// template (in the DSL), which groups, which algorithm, and the knobs.
type JobSpec struct {
	// Graph names a registered graph.
	Graph string `json:"graph"`
	// Algorithm is one of enum, rf, bi, par, kungs or cbm.
	Algorithm string `json:"algorithm"`
	// Template is the query template in the textual DSL. Range variables
	// without explicit `ladder` lines get their value ladders bound
	// against the graph, capped at MaxDomain values.
	Template string `json:"template"`
	// Groups declares the fairness groups and coverage constraints.
	Groups GroupsSpec `json:"groups"`
	// Eps is the ε-dominance tolerance (default 0.05).
	Eps float64 `json:"eps,omitempty"`
	// Lambda balances relevance against dissimilarity (omitted selects the
	// default 0.5; an explicit 0 requests the pure-relevance objective).
	Lambda *float64 `json:"lambda,omitempty"`
	// MaxDomain caps each bound value ladder (default 8).
	MaxDomain int `json:"maxDomain,omitempty"`
	// MaxPairs caps pairwise diversity evaluations (default 20000; a
	// negative value requests exact scoring with no cap).
	MaxPairs int `json:"maxPairs,omitempty"`
	// DistanceAttrs restricts the tuple distance to these attributes.
	DistanceAttrs []string `json:"distanceAttrs,omitempty"`
	// Workers is the lattice fan-out for the par algorithm (<= 0 selects
	// GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// TimeoutMs bounds the run; 0 selects the server default, and the
	// server maximum always applies.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// ProgressEvery samples every Nth verification into the progress
	// stream (default 32; < 0 disables progress events).
	ProgressEvery int `json:"progressEvery,omitempty"`
}

// GroupsSpec selects the node groups P and their constraints c_i.
type GroupsSpec struct {
	// Label and Attr induce the groups: nodes with Label partitioned by
	// the values of Attr.
	Label string `json:"label"`
	Attr  string `json:"attr"`
	// Values restricts the partition to these attribute values (empty =
	// every value).
	Values []string `json:"values,omitempty"`
	// Cover is the per-group equal-opportunity constraint; Total, when
	// positive, overrides it by splitting a total budget evenly.
	Cover int `json:"cover,omitempty"`
	Total int `json:"total,omitempty"`
}

// validAlgorithms names the runnable generation strategies.
var validAlgorithms = map[string]bool{
	"enum": true, "rf": true, "bi": true, "par": true, "kungs": true, "cbm": true,
}

// ResultQuery is one suggested query in a job result, mirroring the
// workload format so results feed the same downstream drivers.
type ResultQuery struct {
	Bindings  []int   `json:"bindings"`
	Text      string  `json:"text"`
	Diversity float64 `json:"diversity"`
	Coverage  float64 `json:"coverage"`
	Answers   int     `json:"answers"`
}

// JobResult is the rendered outcome of a finished job.
type JobResult struct {
	Algorithm string        `json:"algorithm"`
	Eps       float64       `json:"eps"`
	ElapsedMs float64       `json:"elapsedMs"`
	Stats     core.Stats    `json:"stats"`
	Queries   []ResultQuery `json:"queries"`
}

// specPayload converts the HTTP job spec into the cluster package's
// algorithm-independent job payload — the same object a coordinator ships
// to its workers, which is what keeps local and distributed runs on one
// spec→config semantics.
func specPayload(spec *JobSpec) cluster.JobPayload {
	return cluster.JobPayload{
		Template: spec.Template,
		Groups: cluster.GroupsPayload{
			Label:  spec.Groups.Label,
			Attr:   spec.Groups.Attr,
			Values: spec.Groups.Values,
			Cover:  spec.Groups.Cover,
			Total:  spec.Groups.Total,
		},
		Eps:           spec.Eps,
		Lambda:        spec.Lambda,
		MaxDomain:     spec.MaxDomain,
		MaxPairs:      spec.MaxPairs,
		DistanceAttrs: spec.DistanceAttrs,
	}
}

// buildConfig validates a spec against its leased graph and produces the
// run configuration. Errors here are the caller's fault and surface as
// HTTP 400s at submit time, before the job is queued. The spec→config
// semantics live in cluster.BuildConfig, shared with cluster workers; the
// server only adds algorithm validation and the graph's shared engine.
func buildConfig(spec *JobSpec, h *Handle) (*core.Config, error) {
	if !validAlgorithms[spec.Algorithm] {
		return nil, fmt.Errorf("server: unknown algorithm %q (want enum, rf, bi, par, kungs or cbm)", spec.Algorithm)
	}
	cfg, err := cluster.BuildConfig(specPayload(spec), h.Graph())
	if err != nil {
		return nil, err
	}
	// The graph's shared engine: every job on this graph reuses one warm
	// candidate cache, one pair-distance cache and one matcher pool.
	cfg.Engine = h.Engine()
	return cfg, nil
}

// runSpec executes a job's algorithm over its prepared configuration and
// renders the result. The context carries the job deadline; hook, when
// non-nil, receives every verification event.
func runSpec(spec *JobSpec, cfg *core.Config, hook func(core.VerifyEvent)) (*JobResult, error) {
	cfg.OnVerified = hook
	runner, err := core.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	var res *core.Result
	switch spec.Algorithm {
	case "enum":
		res, err = runner.EnumQGen()
	case "rf":
		res, err = runner.RfQGen()
	case "bi":
		res, err = runner.BiQGen()
	case "par":
		res, err = runner.ParQGen(spec.Workers)
	case "kungs":
		res, err = runner.Kungs()
	case "cbm":
		res, err = runner.CBM(core.CBMOptions{})
	default:
		err = fmt.Errorf("server: unknown algorithm %q", spec.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Algorithm: spec.Algorithm,
		Eps:       res.Eps,
		ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
		Stats:     res.Stats,
		Queries:   make([]ResultQuery, 0, len(res.Set)),
	}
	for _, v := range res.Set {
		out.Queries = append(out.Queries, ResultQuery{
			Bindings:  append([]int(nil), v.Q.I...),
			Text:      v.Q.String(),
			Diversity: v.Point.Div,
			Coverage:  v.Point.Cov,
			Answers:   len(v.Matches),
		})
	}
	return out, nil
}
