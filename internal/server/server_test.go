package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fairsqg/internal/cluster"
	"fairsqg/internal/graph"
)

// testGraph mirrors the core package's professional-network fixture:
// persons with gender/experience, orgs, recommend/worksAt edges. Small
// enough that the bi algorithm finishes in milliseconds.
func testGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	numPersons, numOrgs := 200, 10
	persons := make([]graph.NodeID, numPersons)
	for i := range persons {
		gender := "male"
		if rng.Float64() < 0.4 {
			gender = "female"
		}
		title := "Engineer"
		if i%4 == 0 {
			title = "Director"
		}
		persons[i] = g.AddNode("Person", map[string]graph.Value{
			"gender":     graph.Str(gender),
			"title":      graph.Str(title),
			"yearsOfExp": graph.Int(int64(rng.Intn(20))),
		})
	}
	orgs := make([]graph.NodeID, numOrgs)
	for i := range orgs {
		orgs[i] = g.AddNode("Org", map[string]graph.Value{
			"employees": graph.Int(int64(10 + rng.Intn(5000))),
		})
	}
	for _, p := range persons {
		if err := g.AddEdge(p, orgs[rng.Intn(numOrgs)], "worksAt"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < numPersons*5; i++ {
		from := persons[rng.Intn(numPersons)]
		to := persons[rng.Intn(numPersons)]
		if from != to {
			if err := g.AddEdge(from, to, "recommend"); err != nil {
				t.Fatal(err)
			}
		}
	}
	g.Freeze()
	return g
}

const testTemplate = `
template talent
node u_o Person title = "Director"
node u1 Person yearsOfExp >= $x1
node o Org employees >= $x2
edge u1 u_o recommend ?e1
edge u1 o worksAt
output u_o
`

func testSpec(graphName string) JobSpec {
	return JobSpec{
		Graph:     graphName,
		Algorithm: "bi",
		Template:  testTemplate,
		Groups: GroupsSpec{
			Label: "Person", Attr: "gender", Cover: 3,
		},
		Eps:           0.3,
		MaxDomain:     5,
		ProgressEvery: 1,
	}
}

// tinySpec is a spec that validates against tinyGraph: no range
// variables, so no ladder binding is needed.
func tinySpec(graphName string) JobSpec {
	return JobSpec{
		Graph:     graphName,
		Algorithm: "enum",
		Template: `
template mini
node u_o Person
node u1 Person
edge u1 u_o knows
output u_o
`,
		Groups: GroupsSpec{Label: "Person", Attr: "gender", Cover: 1},
		Eps:    0.3,
	}
}

// newTestServer spins up a Server behind httptest with fast job-manager
// settings.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Jobs.Workers == 0 {
		opts.Jobs.Workers = 2
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body io.Reader, wantCode int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d; body: %s", method, url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
}

func uploadGraph(t *testing.T, baseURL, name string, g *graph.Graph) {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	var info GraphInfo
	doJSON(t, http.MethodPut, baseURL+"/v1/graphs/"+name+"?format=tsv", &buf, http.StatusCreated, &info)
	if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Fatalf("uploaded graph info %d/%d, want %d/%d", info.Nodes, info.Edges, g.NumNodes(), g.NumEdges())
	}
}

func submitJob(t *testing.T, baseURL string, spec JobSpec) JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	var st JobStatus
	doJSON(t, http.MethodPost, baseURL+"/v1/jobs", bytes.NewReader(body), http.StatusAccepted, &st)
	return st
}

func pollDone(t *testing.T, baseURL, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		doJSON(t, http.MethodGet, baseURL+"/v1/jobs/"+id, nil, http.StatusOK, &st)
		if st.State.terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

// TestEndToEnd uploads a graph, submits a bi job, streams its progress,
// fetches the result and checks it is identical to the same configuration
// run directly through the library.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	g := testGraph(t, 7)
	uploadGraph(t, ts.URL, "talent", g)

	spec := testSpec("talent")
	st := submitJob(t, ts.URL, spec)
	if st.State != JobQueued && st.State != JobRunning {
		t.Fatalf("submitted job state = %s", st.State)
	}

	// Stream the NDJSON events until the server closes the stream; the
	// last line must be a terminal state event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var events []JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != string(JobDone) {
		t.Fatalf("last event = %+v, want done state", last)
	}
	sawProgress := false
	for i, ev := range events {
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Fatalf("event seq not increasing: %d then %d", events[i-1].Seq, ev.Seq)
		}
		if ev.Type == "progress" {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Fatal("stream carried no progress events")
	}

	final := pollDone(t, ts.URL, st.ID)
	if final.State != JobDone {
		t.Fatalf("job state = %s (%s), want done", final.State, final.Error)
	}
	var got JobResult
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result", nil, http.StatusOK, &got)
	if len(got.Queries) == 0 {
		t.Fatal("empty result set")
	}
	if final.Queries != len(got.Queries) {
		t.Fatalf("status reports %d queries, result has %d", final.Queries, len(got.Queries))
	}

	// The same configuration through the library, on a fresh graph and
	// with the plain sequential matcher, must produce the identical set.
	want := directRun(t, spec)
	if len(want.Queries) != len(got.Queries) {
		t.Fatalf("server returned %d queries, library %d", len(got.Queries), len(want.Queries))
	}
	for i := range want.Queries {
		w, s := want.Queries[i], got.Queries[i]
		if w.Text != s.Text || w.Diversity != s.Diversity || w.Coverage != s.Coverage || w.Answers != s.Answers {
			t.Fatalf("query %d differs:\nserver : %+v\nlibrary: %+v", i, s, w)
		}
		if fmt.Sprint(w.Bindings) != fmt.Sprint(s.Bindings) {
			t.Fatalf("query %d bindings differ: %v vs %v", i, s.Bindings, w.Bindings)
		}
	}

	// A second identical job reuses the graph's warm candidate cache;
	// /metrics must show the hit counter climbing.
	hitsBefore := cacheHits(t, ts.URL)
	st2 := submitJob(t, ts.URL, spec)
	if f := pollDone(t, ts.URL, st2.ID); f.State != JobDone {
		t.Fatalf("second job state = %s (%s)", f.State, f.Error)
	}
	hitsAfter := cacheHits(t, ts.URL)
	if hitsAfter <= hitsBefore {
		t.Fatalf("candidate cache hits did not increase across identical jobs: %d -> %d", hitsBefore, hitsAfter)
	}
}

// directRun executes the spec's configuration through the library with no
// server, no shared engine and the sequential reference matcher.
func directRun(t *testing.T, spec JobSpec) *JobResult {
	t.Helper()
	g := testGraph(t, 7)
	cfg, err := cluster.BuildConfig(specPayload(&spec), g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runSpec(&spec, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// cacheHits scrapes the aggregate candidate-cache hit counter off
// /metrics.
func cacheHits(t *testing.T, baseURL string) int64 {
	t.Helper()
	var doc struct {
		Cache struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
	}
	doJSON(t, http.MethodGet, baseURL+"/metrics", nil, http.StatusOK, &doc)
	return doc.Cache.Hits
}

func TestHTTPErrorPaths(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxUploadBytes: 512, RequireGraph: true})

	// Not ready before any graph exists.
	doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, http.StatusServiceUnavailable, nil)
	doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, http.StatusOK, nil)

	// Upload larger than the cap -> 413 (comment lines parse fine, so
	// the reader runs into the byte limit rather than a syntax error).
	big := strings.NewReader(strings.Repeat("# padding\n", 200))
	doJSON(t, http.MethodPut, ts.URL+"/v1/graphs/big?format=tsv", big, http.StatusRequestEntityTooLarge, nil)

	g := tinyGraph(t)
	uploadSmall := func(name string) {
		var buf bytes.Buffer
		if err := graph.WriteTSV(&buf, g); err != nil {
			t.Fatal(err)
		}
		doJSON(t, http.MethodPut, ts.URL+"/v1/graphs/"+name+"?format=tsv", &buf, http.StatusCreated, nil)
	}
	uploadSmall("tiny")
	doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, http.StatusOK, nil)

	// Duplicate name -> 409; bad format -> 400; missing graph -> 404.
	var buf bytes.Buffer
	if err := graph.WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	doJSON(t, http.MethodPut, ts.URL+"/v1/graphs/tiny?format=tsv", &buf, http.StatusConflict, nil)
	doJSON(t, http.MethodPut, ts.URL+"/v1/graphs/x?format=xml", strings.NewReader("z"), http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/nope", nil, http.StatusNotFound, nil)

	// Jobs: malformed body, unknown graph, unknown algorithm.
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader("{nope"), http.StatusBadRequest, nil)
	spec := testSpec("nope")
	body, _ := json.Marshal(spec)
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body), http.StatusNotFound, nil)
	spec = testSpec("tiny")
	spec.Algorithm = "quantum"
	body, _ = json.Marshal(spec)
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body), http.StatusBadRequest, nil)

	// Unknown job -> 404 everywhere.
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j999999", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j999999/result", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j999999/events", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/j999999", nil, http.StatusNotFound, nil)

	// A running job's result is 409 until it finishes; DELETE cancels it.
	release := make(chan struct{})
	job, err := s.Jobs().enqueue(nil, nil, blockRun(release), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s.Jobs(), job.ID, JobRunning)
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+job.ID+"/result", nil, http.StatusConflict, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil, http.StatusOK, nil)
	waitState(t, s.Jobs(), job.ID, JobCancelled)
	close(release)

	// Queue shedding surfaces as 429 with Retry-After.
	s2, ts2 := newTestServer(t, Options{Jobs: ManagerOptions{Workers: 1, QueueDepth: 1}})
	uploadTo := func(ts *httptest.Server) {
		var b bytes.Buffer
		if err := graph.WriteTSV(&b, g); err != nil {
			t.Fatal(err)
		}
		doJSON(t, http.MethodPut, ts.URL+"/v1/graphs/tiny?format=tsv", &b, http.StatusCreated, nil)
	}
	uploadTo(ts2)
	rel2 := make(chan struct{})
	defer close(rel2)
	blocked, err := s2.Jobs().enqueue(nil, nil, blockRun(rel2), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s2.Jobs(), blocked.ID, JobRunning)
	if _, err := s2.Jobs().enqueue(nil, nil, blockRun(rel2), time.Minute); err != nil {
		t.Fatal(err)
	}
	spec2 := tinySpec("tiny")
	body2, _ := json.Marshal(spec2)
	req, _ := http.NewRequest(http.MethodPost, ts2.URL+"/v1/jobs", bytes.NewReader(body2))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestServerShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, Options{Jobs: ManagerOptions{Workers: 1}})
	uploadGraph(t, ts.URL, "tiny", tinyGraph(t))
	job, err := s.Jobs().enqueue(nil, nil, sleepRun(50*time.Millisecond), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s.Jobs(), job.ID, JobRunning)
	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	res, state, _ := s.Jobs().Result(job.ID)
	if state != JobDone || res == nil {
		t.Fatalf("after drain: state=%s res=%v", state, res)
	}
	// Draining server reports not-ready and refuses new jobs with 503.
	doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, http.StatusServiceUnavailable, nil)
	spec := testSpec("tiny")
	spec.Groups = GroupsSpec{Label: "Person", Attr: "gender", Cover: 1}
	body, _ := json.Marshal(spec)
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body), http.StatusServiceUnavailable, nil)
}

func TestMetricsAndVars(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var doc map[string]any
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, http.StatusOK, &doc)
	for _, key := range []string{"jobs", "cache", "http", "latencyMs", "graphs"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("/metrics missing %q: %v", key, doc)
		}
	}
	doJSON(t, http.MethodGet, ts.URL+"/debug/vars", nil, http.StatusOK, &doc)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d", resp.StatusCode)
	}
}
