package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"fairsqg/internal/graph"
)

// mutate POSTs a raw JSON mutation batch and decodes the result (for 200s).
func mutate(t *testing.T, baseURL, name, body string, wantCode int) *MutateResult {
	t.Helper()
	var res *MutateResult
	if wantCode == http.StatusOK {
		res = &MutateResult{}
	}
	if res != nil {
		doJSON(t, http.MethodPost, baseURL+"/v1/graphs/"+name+"/mutate", strings.NewReader(body), wantCode, res)
	} else {
		doJSON(t, http.MethodPost, baseURL+"/v1/graphs/"+name+"/mutate", strings.NewReader(body), wantCode, nil)
	}
	return res
}

// listDir returns the directory's file names, sorted.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// TestHTTPMutateEndpoint exercises POST /v1/graphs/{name}/mutate: a valid
// batch applies atomically and reports the new generation's shape, invalid
// batches are rejected whole with 422 and change nothing, and jobs keep
// running against the mutated graph.
func TestHTTPMutateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	g := testGraph(t, 31)
	uploadGraph(t, ts.URL, "talent", g)
	newID := g.NumNodes() // deterministic ID of the first added node

	batch := fmt.Sprintf(`[
		{"op":"addNode","label":"Person","attrs":{"gender":"female","title":"Director","yearsOfExp":"7"}},
		{"op":"addEdge","from":%d,"to":0,"label":"recommend"},
		{"op":"setAttr","node":1,"attr":"yearsOfExp","value":"19"}
	]`, newID)
	res := mutate(t, ts.URL, "talent", batch, http.StatusOK)
	if res.Version != 2 || res.Ops != 3 || res.EdgesAdded != 1 {
		t.Fatalf("mutate result %+v, want version 2, ops 3, edgesAdded 1", res)
	}
	if len(res.AddedNodes) != 1 || int(res.AddedNodes[0]) != newID {
		t.Fatalf("AddedNodes = %v, want [%d]", res.AddedNodes, newID)
	}
	if res.Nodes != g.NumNodes()+1 || res.Edges != g.NumEdges()+1 {
		t.Fatalf("post-batch shape %d/%d, want %d/%d", res.Nodes, res.Edges, g.NumNodes()+1, g.NumEdges()+1)
	}
	info := graphInfo(t, ts.URL, "talent")
	if info.Version != 2 || info.Mutations != 3 {
		t.Fatalf("graph info version=%d mutations=%d, want 2/3", info.Version, info.Mutations)
	}

	// A batch with one bad op is rejected whole: the removeNode below is
	// valid, but the dangling edge poisons the batch.
	bad := `[
		{"op":"removeNode","node":2},
		{"op":"addEdge","from":0,"to":999999,"label":"recommend"}
	]`
	mutate(t, ts.URL, "talent", bad, http.StatusUnprocessableEntity)
	if info := graphInfo(t, ts.URL, "talent"); info.Version != 2 {
		t.Fatalf("rejected batch advanced the version to %d", info.Version)
	}

	mutate(t, ts.URL, "talent", `not json`, http.StatusBadRequest)
	mutate(t, ts.URL, "talent", `[]`, http.StatusUnprocessableEntity)
	mutate(t, ts.URL, "nope", `[{"op":"removeNode","node":0}]`, http.StatusNotFound)

	// Jobs evaluate against the mutated generation.
	st := submitJob(t, ts.URL, testSpec("talent"))
	if done := pollDone(t, ts.URL, st.ID); done.State != JobDone {
		t.Fatalf("job on mutated graph: %s: %s", done.State, done.Error)
	}
}

// graphInfo fetches one graph's info over HTTP.
func graphInfo(t *testing.T, baseURL, name string) GraphInfo {
	t.Helper()
	var info GraphInfo
	doJSON(t, http.MethodGet, baseURL+"/v1/graphs/"+name, nil, http.StatusOK, &info)
	return info
}

// TestServerWALRecovery is the crash e2e for live graphs: mutation batches
// survive an unclean death through the delta log — a fresh server on the
// same directory replays them over the base snapshot and lands on the
// exact pre-crash state (byte-identical job results), a torn final frame
// (the simulated mid-batch kill) is truncated and counted, and all of it
// holds in mapped mode too.
func TestServerWALRecovery(t *testing.T) {
	for _, mapped := range []bool{false, true} {
		t.Run(fmt.Sprintf("mapped=%v", mapped), func(t *testing.T) {
			dir := t.TempDir()
			g := testGraph(t, 21)
			opts := Options{SnapshotDir: dir, MmapGraphs: mapped}

			s1, ts1 := startServer(t, opts)
			uploadGraph(t, ts1.URL, "talent", g)
			newID := g.NumNodes()
			mutate(t, ts1.URL, "talent", fmt.Sprintf(`[
				{"op":"addNode","label":"Person","attrs":{"gender":"female","title":"Director","yearsOfExp":"3"}},
				{"op":"addEdge","from":%d,"to":0,"label":"recommend"},
				{"op":"addEdge","from":1,"to":%d,"label":"recommend"}
			]`, newID, newID), http.StatusOK)
			mutate(t, ts1.URL, "talent", `[
				{"op":"removeNode","node":4},
				{"op":"setAttr","node":8,"attr":"title","value":"Director"}
			]`, http.StatusOK)

			st := submitJob(t, ts1.URL, testSpec("talent"))
			if done := pollDone(t, ts1.URL, st.ID); done.State != JobDone {
				t.Fatalf("pre-crash job: %s: %s", done.State, done.Error)
			}
			var want JobResult
			doJSON(t, http.MethodGet, ts1.URL+"/v1/jobs/"+st.ID+"/result", nil, http.StatusOK, &want)
			preInfo := graphInfo(t, ts1.URL, "talent")
			if preInfo.Version != 3 {
				t.Fatalf("pre-crash version %d, want 3", preInfo.Version)
			}
			shutdown(t, s1, ts1)

			// Simulate the kill mid-batch: a torn frame at the log's tail.
			// The 8 garbage bytes parse as an absurd frame header, so replay
			// must stop at the last fsync'd batch and repair must drop them.
			walPath := filepath.Join(dir, "talent"+walExt)
			f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("GARBAGE!")); err != nil {
				t.Fatal(err)
			}
			f.Close()
			tornSize := fileSize(t, walPath)

			s2, ts2 := startServer(t, opts)
			defer shutdown(t, s2, ts2)
			if got := s2.RestoredGraphs(); !reflect.DeepEqual(got, []string{"talent"}) {
				t.Fatalf("RestoredGraphs = %v", got)
			}
			info := graphInfo(t, ts2.URL, "talent")
			if info.Version != preInfo.Version || info.Nodes != preInfo.Nodes || info.Edges != preInfo.Edges {
				t.Fatalf("restored %d/%d v%d, want %d/%d v%d",
					info.Nodes, info.Edges, info.Version, preInfo.Nodes, preInfo.Edges, preInfo.Version)
			}
			if info.ReplayedBatches != 2 {
				t.Fatalf("replayedBatches = %d, want 2", info.ReplayedBatches)
			}
			if got := fileSize(t, walPath); got != tornSize-8 {
				t.Fatalf("torn tail not repaired: %d bytes, want %d", got, tornSize-8)
			}

			st2 := submitJob(t, ts2.URL, testSpec("talent"))
			if done := pollDone(t, ts2.URL, st2.ID); done.State != JobDone {
				t.Fatalf("post-crash job: %s: %s", done.State, done.Error)
			}
			var got JobResult
			doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+st2.ID+"/result", nil, http.StatusOK, &got)
			got.ElapsedMs, want.ElapsedMs = 0, 0
			if !reflect.DeepEqual(got, want) {
				t.Errorf("post-crash job result differs:\n got %+v\nwant %+v", got, want)
			}

			// And the graph is still live: a post-recovery mutation applies
			// and appends to the repaired log.
			res := mutate(t, ts2.URL, "talent", `[{"op":"setAttr","node":3,"attr":"yearsOfExp","value":"1"}]`, http.StatusOK)
			if res.Version != preInfo.Version+1 {
				t.Fatalf("post-recovery version %d, want %d", res.Version, preInfo.Version+1)
			}

			var met struct {
				Storage struct {
					WAL       map[string]float64 `json:"wal"`
					Mutations map[string]float64 `json:"mutations"`
				} `json:"storage"`
			}
			doJSON(t, http.MethodGet, ts2.URL+"/metrics", nil, http.StatusOK, &met)
			for key, want := range map[string]float64{"replays": 1, "replayBatches": 2, "truncations": 1, "appends": 1} {
				if met.Storage.WAL[key] != want {
					t.Errorf("storage.wal.%s = %v, want %v", key, met.Storage.WAL[key], want)
				}
			}
			if met.Storage.Mutations["batches"] != 1 {
				t.Errorf("storage.mutations.batches = %v, want 1", met.Storage.Mutations["batches"])
			}
		})
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestCheckpointFileLifecycle follows one graph's directory footprint
// through its whole life: upload → snapshot; mutation → delta log;
// checkpoint → epoch-qualified snapshot replaces the plain one and the
// log resets; second round rotates the epoch and retires the old file;
// restart restores from the rotated pair; Remove leaves nothing behind.
func TestCheckpointFileLifecycle(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := startServer(t, Options{SnapshotDir: dir})
	g := testGraph(t, 5)
	uploadGraph(t, ts1.URL, "lc", g)
	if got, want := listDir(t, dir), []string{"lc" + snapExt}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after upload: %v, want %v", got, want)
	}

	mutate(t, ts1.URL, "lc", `[{"op":"removeNode","node":0},{"op":"setAttr","node":1,"attr":"title","value":"Director"}]`, http.StatusOK)
	if got, want := listDir(t, dir), []string{"lc" + walExt, "lc" + snapExt}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after mutate: %v, want %v", got, want)
	}

	if err := s1.Registry().Checkpoint("lc"); err != nil {
		t.Fatal(err)
	}
	if got, want := listDir(t, dir), []string{"lc" + walExt, "lc@1" + snapExt}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after checkpoint: %v, want %v", got, want)
	}
	// The reset log carries the tombstone batch for the removed node:
	// replaying it over the epoch-1 snapshot reproduces the live state.
	rep, err := graph.ReplayWAL(filepath.Join(dir, "lc"+walExt), false)
	if err != nil || rep.Epoch != 1 || len(rep.Batches) != 1 {
		t.Fatalf("post-checkpoint log: epoch=%d batches=%d err=%v", rep.Epoch, len(rep.Batches), err)
	}
	infoBefore, _ := s1.Registry().Info("lc")
	if infoBefore.Epoch != 1 {
		t.Fatalf("entry epoch %d, want 1", infoBefore.Epoch)
	}

	mutate(t, ts1.URL, "lc", `[{"op":"addNode","label":"Org","attrs":{"employees":"42"}}]`, http.StatusOK)
	if err := s1.Registry().Checkpoint("lc"); err != nil {
		t.Fatal(err)
	}
	if got, want := listDir(t, dir), []string{"lc" + walExt, "lc@2" + snapExt}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after second checkpoint: %v, want %v", got, want)
	}
	infoBefore, _ = s1.Registry().Info("lc")
	shutdown(t, s1, ts1)

	// Restart restores from the epoch-2 pair.
	s2, ts2 := startServer(t, Options{SnapshotDir: dir})
	if got := s2.RestoredGraphs(); !reflect.DeepEqual(got, []string{"lc"}) {
		t.Fatalf("RestoredGraphs = %v", got)
	}
	info, _ := s2.Registry().Info("lc")
	if info.Nodes != infoBefore.Nodes || info.Edges != infoBefore.Edges || info.Epoch != 2 {
		t.Fatalf("restored %d/%d epoch %d, want %d/%d epoch 2",
			info.Nodes, info.Edges, info.Epoch, infoBefore.Nodes, infoBefore.Edges)
	}

	doJSON(t, http.MethodDelete, ts2.URL+"/v1/graphs/lc", nil, http.StatusOK, nil)
	if got := listDir(t, dir); len(got) != 0 {
		t.Fatalf("Remove left files behind: %v", got)
	}
	shutdown(t, s2, ts2)
}

// TestRestoreSweepsOrphans: files a crashed checkpoint can leave behind —
// an epoch snapshot the log never committed to, and a delta log whose
// base snapshot is gone — are deleted (and counted) on restore instead of
// accumulating forever.
func TestRestoreSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := startServer(t, Options{SnapshotDir: dir})
	uploadGraph(t, ts1.URL, "talent", testGraph(t, 13))
	mutate(t, ts1.URL, "talent", `[{"op":"removeNode","node":7}]`, http.StatusOK)
	shutdown(t, s1, ts1)

	// Uncommitted checkpoint: epoch snapshot exists but the log still says
	// epoch 0 (the crash hit between the snapshot write and the log reset).
	snap, err := os.ReadFile(filepath.Join(dir, "talent"+snapExt))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "talent@7"+snapExt), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	// Delta log whose graph was removed mid-crash: no base snapshot at all.
	w, err := graph.OpenWAL(filepath.Join(dir, "lost"+walExt))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]graph.Mutation{{Op: graph.MutRemoveNode, Node: 0}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Partial rotation temp from a crashed ResetEpoch.
	if err := os.WriteFile(filepath.Join(dir, "talent"+walTmpExt), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := startServer(t, Options{SnapshotDir: dir})
	defer shutdown(t, s2, ts2)
	if got := s2.RestoredGraphs(); !reflect.DeepEqual(got, []string{"talent"}) {
		t.Fatalf("RestoredGraphs = %v", got)
	}
	info, _ := s2.Registry().Info("talent")
	if info.ReplayedBatches != 1 || info.Epoch != 0 {
		t.Fatalf("talent restored with replayed=%d epoch=%d, want 1/0", info.ReplayedBatches, info.Epoch)
	}
	if got, want := listDir(t, dir), []string{"talent" + walExt, "talent" + snapExt}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after sweep: %v, want %v", got, want)
	}
	if n := s2.snaps.orphansCleaned.Load(); n != 2 {
		t.Errorf("orphansCleaned = %d, want 2 (talent@7 + lost%s)", n, walExt)
	}
	if n := s2.snaps.tmpCleaned.Load(); n != 1 {
		t.Errorf("tmpCleaned = %d, want 1", n)
	}
}

// TestHandleGenerationIsolation: a handle captures one consistent
// (generation, engine) pair — mutations and removal never swap the graph
// under an in-flight job, while new acquires see the new generation and
// successive engines share one candidate cache.
func TestHandleGenerationIsolation(t *testing.T) {
	reg := NewRegistry(1, 0)
	if err := reg.Put("g", testGraph(t, 9)); err != nil {
		t.Fatal(err)
	}
	h1, err := reg.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	victim := h1.Graph().NodesByLabel("Person")[0]
	if _, err := reg.Mutate("g", []graph.Mutation{{Op: graph.MutRemoveNode, Node: victim}}); err != nil {
		t.Fatal(err)
	}
	h2, err := reg.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	if h1.Graph().Version() != 1 || !h1.Graph().Alive(victim) {
		t.Errorf("h1 lost its generation: v%d alive=%v", h1.Graph().Version(), h1.Graph().Alive(victim))
	}
	if h2.Graph().Version() != 2 || h2.Graph().Alive(victim) {
		t.Errorf("h2 on stale generation: v%d alive=%v", h2.Graph().Version(), h2.Graph().Alive(victim))
	}
	if h1.Engine().Graph() != h1.Graph() || h2.Engine().Graph() != h2.Graph() {
		t.Error("handle engine and graph disagree on the generation")
	}
	if h1.Engine().Cache() != h2.Engine().Cache() {
		t.Error("successive engines do not share the candidate cache")
	}
	if err := reg.Remove("g"); err != nil {
		t.Fatal(err)
	}
	// Leases survive removal; release in either order.
	if got := len(h1.Graph().NodesByLabel("Person")); got == 0 {
		t.Error("h1 graph unreadable after Remove")
	}
	h2.Release()
	h1.Release()
}

// TestCompactAfterTriggersCheckpoint: crossing the CompactAfter threshold
// kicks off a background checkpoint that rotates the on-disk pair.
func TestCompactAfterTriggersCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := startServer(t, Options{SnapshotDir: dir, CompactAfter: 4})
	defer shutdown(t, s1, ts1)
	uploadGraph(t, ts1.URL, "auto", testGraph(t, 17))

	res := mutate(t, ts1.URL, "auto", `[
		{"op":"removeNode","node":0},
		{"op":"removeNode","node":1},
		{"op":"setAttr","node":2,"attr":"title","value":"Director"},
		{"op":"setAttr","node":3,"attr":"title","value":"Director"},
		{"op":"addNode","label":"Person","attrs":{"gender":"female","title":"Engineer","yearsOfExp":"2"}}
	]`, http.StatusOK)
	if !res.Compacting {
		t.Fatal("threshold batch did not report Compacting")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, _ := s1.Registry().Info("auto")
		if info.Epoch == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpoint never landed (epoch %d)", info.Epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got, want := listDir(t, dir), []string{"auto" + walExt, "auto@1" + snapExt}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after auto checkpoint: %v, want %v", got, want)
	}
	// The graph keeps serving and mutating across the rotation.
	if res := mutate(t, ts1.URL, "auto", `[{"op":"setAttr","node":5,"attr":"yearsOfExp","value":"9"}]`, http.StatusOK); res.Version == 0 {
		t.Fatal("post-checkpoint mutation failed")
	}
}
