package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// newTestManager builds a manager with no registry dependency; tests
// inject run functions directly through enqueue.
func newTestManager(t *testing.T, opts ManagerOptions) (*Manager, *metrics) {
	t.Helper()
	met := newMetrics()
	m := NewManager(NewRegistry(1, 0), met, opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return m, met
}

// waitState polls until the job reaches state or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Status(id)
		if !ok {
			t.Fatalf("job %s disappeared while waiting for %s", id, want)
		}
		if st.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := m.Status(id)
	t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
}

func sleepRun(d time.Duration) runFunc {
	return func(ctx context.Context, hub *progressHub) (*JobResult, error) {
		select {
		case <-time.After(d):
			return &JobResult{Algorithm: "test"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// blockRun blocks until released (or cancelled).
func blockRun(release <-chan struct{}) runFunc {
	return func(ctx context.Context, hub *progressHub) (*JobResult, error) {
		select {
		case <-release:
			return &JobResult{Algorithm: "test"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestQueueFullSheds(t *testing.T) {
	m, met := newTestManager(t, ManagerOptions{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer close(release)

	// First job occupies the lone worker...
	running, err := m.enqueue(nil, nil, blockRun(release), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, JobRunning)
	// ...second fills the queue...
	if _, err := m.enqueue(nil, nil, blockRun(release), time.Minute); err != nil {
		t.Fatal(err)
	}
	// ...third is shed.
	if _, err := m.enqueue(nil, nil, blockRun(release), time.Minute); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if got := met.jobsShed.Value(); got != 1 {
		t.Fatalf("jobsShed = %d, want 1", got)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m, met := newTestManager(t, ManagerOptions{Workers: 1})
	job, err := m.enqueue(nil, nil, sleepRun(time.Minute), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, job.ID, JobRunning)
	if err := m.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, job.ID, JobCancelled)
	if got := met.jobsCancelled.Value(); got != 1 {
		t.Fatalf("jobsCancelled = %d, want 1", got)
	}
	// A terminal job can't be cancelled again.
	if err := m.Cancel(job.ID); err == nil {
		t.Fatal("second cancel should fail")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m, _ := newTestManager(t, ManagerOptions{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	defer close(release)
	running, err := m.enqueue(nil, nil, blockRun(release), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, JobRunning)
	queued, err := m.enqueue(nil, nil, blockRun(release), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Still queued: the worker is occupied. Cancel resolves it instantly.
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status(queued.ID)
	if st.State != JobCancelled {
		t.Fatalf("queued job state = %s, want cancelled", st.State)
	}
	// The progress stream must have ended with the terminal event.
	replay, live, _, ok := m.Subscribe(queued.ID)
	if !ok || live != nil {
		t.Fatalf("subscribe after cancel: ok=%v live=%v, want closed stream", ok, live)
	}
	last := replay[len(replay)-1]
	if last.Type != "state" || last.State != string(JobCancelled) {
		t.Fatalf("last event = %+v, want terminal cancelled state", last)
	}
}

func TestDeadlineFailsJob(t *testing.T) {
	m, met := newTestManager(t, ManagerOptions{Workers: 1})
	job, err := m.enqueue(nil, nil, sleepRun(time.Minute), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, job.ID, JobFailed)
	st, _ := m.Status(job.ID)
	if st.Error == "" {
		t.Fatal("failed job should carry an error message")
	}
	if got := met.jobsFailed.Value(); got != 1 {
		t.Fatalf("jobsFailed = %d, want 1", got)
	}
}

func TestRetentionSweep(t *testing.T) {
	m, _ := newTestManager(t, ManagerOptions{Workers: 1, Retention: time.Minute, GCInterval: time.Hour})
	job, err := m.enqueue(nil, nil, sleepRun(0), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, job.ID, JobDone)

	// Young finished jobs survive the sweep...
	if n := m.sweep(time.Now()); n != 0 {
		t.Fatalf("sweep removed %d young jobs", n)
	}
	// ...expired ones don't.
	if n := m.sweep(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("sweep removed %d jobs, want 1", n)
	}
	if _, ok := m.Status(job.ID); ok {
		t.Fatal("swept job still visible")
	}
	// A running job is never swept, no matter how old.
	release := make(chan struct{})
	defer close(release)
	running, err := m.enqueue(nil, nil, blockRun(release), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, JobRunning)
	if n := m.sweep(time.Now().Add(24 * time.Hour)); n != 0 {
		t.Fatalf("sweep removed %d running jobs", n)
	}
}

func TestShutdownDrainsRunningJob(t *testing.T) {
	m, _ := newTestManager(t, ManagerOptions{Workers: 1})
	job, err := m.enqueue(nil, nil, sleepRun(50*time.Millisecond), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, job.ID, JobRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The running job finished normally with its result intact.
	res, state, ok := m.Result(job.ID)
	if !ok || state != JobDone || res == nil {
		t.Fatalf("after drain: ok=%v state=%s res=%v, want done with result", ok, state, res)
	}
	// Intake is closed.
	if _, err := m.enqueue(nil, nil, sleepRun(0), time.Minute); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining, got %v", err)
	}
}

func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	m, _ := newTestManager(t, ManagerOptions{Workers: 1})
	job, err := m.enqueue(nil, nil, sleepRun(time.Hour), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, job.ID, JobRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from cut-short drain, got %v", err)
	}
	st, _ := m.Status(job.ID)
	if st.State != JobCancelled {
		t.Fatalf("job state after forced drain = %s, want cancelled", st.State)
	}
}

func TestListNewestFirst(t *testing.T) {
	m, _ := newTestManager(t, ManagerOptions{Workers: 1, QueueDepth: 8})
	for i := 0; i < 3; i++ {
		if _, err := m.enqueue(nil, nil, sleepRun(0), time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("len(list) = %d, want 3", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID <= list[i].ID {
			t.Fatalf("list not newest-first: %s before %s", list[i-1].ID, list[i].ID)
		}
	}
}
