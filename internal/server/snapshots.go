package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"fairsqg/internal/graph"
)

// snapExt is the on-disk extension for binary graph snapshots; partially
// written files carry snapTmpExt until the final rename and are ignored
// (and cleaned up) by restore.
const (
	snapExt    = ".fsnap"
	snapTmpExt = ".fsnap.tmp"
)

// snapshotStore persists registered graphs as binary frozen-layout
// snapshots (graph.WriteSnapshot) in a flat directory, one file per graph
// name, and restores them into the registry on startup so a daemon
// restart does not re-parse or re-Freeze anything. Writes are atomic:
// temp file in the same directory, then rename. All operations are
// best-effort — a disk error never fails graph registration, it only
// shows up in the counters and the log.
type snapshotStore struct {
	dir    string
	logger printfLogger
	// mmap switches load from decode-to-heap to graph.OpenSnapshotMapped:
	// graphs are served straight from the page cache, restore cost is
	// O(open) instead of O(graph), and resident memory stays bounded by
	// what queries actually touch. Version 1 files, which have no mapped
	// layout, silently fall back to the heap decoder (counted).
	mmap bool

	loads       atomic.Int64 // snapshots decoded successfully
	writes      atomic.Int64 // snapshots persisted successfully
	writeFails  atomic.Int64 // persist attempts that errored
	fallbacks   atomic.Int64 // corrupt/unreadable snapshots skipped on restore
	tmpCleaned  atomic.Int64 // partial .tmp files removed on restore
	loadNanos   atomic.Int64 // cumulative decode wall time
	mmapLoads   atomic.Int64 // snapshots opened memory-mapped
	mappedBytes atomic.Int64 // bytes currently memory-mapped via this store
	v1Fallbacks atomic.Int64 // v1 snapshots decoded to heap in mmap mode
}

// newSnapshotStore creates dir if needed and returns a store over it.
func newSnapshotStore(dir string, mmap bool, logger printfLogger) (*snapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: snapshot dir: %w", err)
	}
	return &snapshotStore{dir: dir, mmap: mmap, logger: logger}, nil
}

// path maps a registry name to its snapshot file. Names already match
// graphNameRe ([A-Za-z0-9._-]{1,64}) and gain an extension, so the result
// is always a plain file inside dir.
func (st *snapshotStore) path(name string) string {
	return filepath.Join(st.dir, name+snapExt)
}

func (st *snapshotStore) logf(format string, args ...any) {
	if st.logger != nil {
		st.logger.Printf(format, args...)
	}
}

// save writes g's snapshot atomically under name, reporting success.
// Errors are counted and logged, not returned: persistence is an
// optimization, never a reason to reject a registration.
func (st *snapshotStore) save(name string, g *graph.Graph) bool {
	tmp := st.path(name) + ".tmp" // ends in snapTmpExt
	err := func() error {
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := graph.WriteSnapshot(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, st.path(name))
	}()
	if err != nil {
		st.writeFails.Add(1)
		os.Remove(tmp)
		st.logf("snapshot save %s: %v", name, err)
		return false
	}
	st.writes.Add(1)
	return true
}

// load materializes the snapshot for name, recording the wall time. In
// mmap mode the graph is opened mapped; a version 1 file — which has no
// mapped layout — falls back to the heap decoder and bumps v1Fallbacks.
func (st *snapshotStore) load(name string) (*graph.Graph, error) {
	start := time.Now()
	var g *graph.Graph
	var err error
	if st.mmap {
		g, err = graph.OpenSnapshotMapped(st.path(name))
		if errors.Is(err, graph.ErrSnapshotVersion) {
			st.v1Fallbacks.Add(1)
			st.logf("snapshot %s: version 1 file, decoding to heap (re-save to enable mapping)", name)
			g, err = graph.ReadSnapshotFile(st.path(name))
		}
	} else {
		g, err = graph.ReadSnapshotFile(st.path(name))
	}
	if err != nil {
		return nil, err
	}
	if g.Mapped() {
		st.mmapLoads.Add(1)
		st.mappedBytes.Add(g.MappedBytes())
	}
	st.loads.Add(1)
	st.loadNanos.Add(int64(time.Since(start)))
	return g, nil
}

// unmapped records that a mapped graph produced by load released its last
// reference (the registry calls it from entry teardown).
func (st *snapshotStore) unmapped(g *graph.Graph) {
	if g.Mapped() {
		st.mappedBytes.Add(-g.MappedBytes())
	}
}

// remove deletes name's snapshot file (no-op if absent).
func (st *snapshotStore) remove(name string) {
	if err := os.Remove(st.path(name)); err != nil && !os.IsNotExist(err) {
		st.logf("snapshot remove %s: %v", name, err)
	}
}

// restore scans the directory: partial .tmp files are deleted, every
// *.fsnap file is decoded and registered. A snapshot that fails to decode
// (truncated by a crash, bit rot, version skew) is skipped and counted —
// the caller falls back to the original source format, and the next
// successful registration overwrites the bad file. Returns the names
// restored, sorted.
func (st *snapshotStore) restore(reg *Registry) []string {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		st.logf("snapshot restore: %v", err)
		return nil
	}
	var restored []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fn := e.Name()
		if strings.HasSuffix(fn, snapTmpExt) {
			if err := os.Remove(filepath.Join(st.dir, fn)); err == nil {
				st.tmpCleaned.Add(1)
				st.logf("snapshot restore: removed partial %s", fn)
			}
			continue
		}
		if !strings.HasSuffix(fn, snapExt) {
			continue
		}
		name := strings.TrimSuffix(fn, snapExt)
		if !graphNameRe.MatchString(name) {
			continue
		}
		g, err := st.load(name)
		if err != nil {
			st.fallbacks.Add(1)
			st.logf("snapshot restore %s: %v (will fall back to source format)", name, err)
			continue
		}
		if err := reg.putRestored(name, g); err != nil {
			st.logf("snapshot restore %s: %v", name, err)
			continue
		}
		restored = append(restored, name)
	}
	sort.Strings(restored)
	return restored
}

// counters renders the store's state for the /metrics "storage" section.
func (st *snapshotStore) counters() map[string]any {
	return map[string]any{
		"loads":       st.loads.Load(),
		"writes":      st.writes.Load(),
		"writeFails":  st.writeFails.Load(),
		"fallbacks":   st.fallbacks.Load(),
		"tmpCleaned":  st.tmpCleaned.Load(),
		"loadMs":      float64(st.loadNanos.Load()) / 1e6,
		"mmapLoads":   st.mmapLoads.Load(),
		"mappedBytes": st.mappedBytes.Load(),
		"v1Fallbacks": st.v1Fallbacks.Load(),
	}
}
